#!/usr/bin/env python3
"""Validate a merged distributed-trace file from `tlrwse_cli cluster
--trace-merged-out`.

Checks the structural contract the merger (obs::merge_trace_json) promises:

  * top-level keys: traceEvents, traceId, droppedSpans, displayTimeUnit;
  * every complete ("X") event carries args.trace_id and they all agree
    with the top-level traceId (one request == one trace);
  * events are sorted by timestamp, timestamps are normalized (min == 0)
    and non-negative, durations are non-negative -- i.e. worker clocks were
    aligned into the frontend's timeline, not pasted in raw;
  * the span families that make a timeline readable are all present:
    the root request span, frontend stage spans (fft/gather), per-shard
    RPC spans, and worker-side apply + per-frequency MVM spans;
  * worker spans come from >= --min-worker-pids distinct processes
    (default 2: a single-pid "distributed" trace means the dump/merge
    path silently lost a worker).

Exit code 0 when every check passes, 1 with a message per failure.

Usage: check_trace_json.py TRACE.json [--min-worker-pids 2]
"""

import argparse
import json
import sys


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="merged chrome://tracing JSON file")
    ap.add_argument("--min-worker-pids", type=int, default=2,
                    help="distinct worker processes required (default 2)")
    args = ap.parse_args()

    with open(args.trace, "r", encoding="utf-8") as fh:
        doc = json.load(fh)

    failures = []

    def check(ok, message):
        if not ok:
            failures.append(message)

    for key in ("traceEvents", "traceId", "droppedSpans", "displayTimeUnit"):
        check(key in doc, f"missing top-level key {key!r}")
    events = doc.get("traceEvents", [])
    spans = [e for e in events if e.get("ph") == "X"]
    check(len(spans) > 0, "no complete (ph=X) events")

    # One request, one trace: every span agrees with the top-level id.
    trace_id = str(doc.get("traceId", ""))
    span_ids = {str(e.get("args", {}).get("trace_id", "")) for e in spans}
    check(span_ids == {trace_id},
          f"span trace ids {sorted(span_ids)} != traceId {trace_id!r}")
    check(trace_id not in ("", "0"), f"traceId {trace_id!r} is not a real id")

    # Aligned + normalized timeline: sorted, starts at 0, nothing negative.
    ts = [e.get("ts", -1) for e in spans]
    check(all(t >= 0 for t in ts), "negative timestamp after alignment")
    check(ts == sorted(ts), "events are not sorted by timestamp")
    if ts:
        check(min(ts) == 0, f"timeline is not normalized (min ts {min(ts)})")
    check(all(e.get("dur", -1) >= 0 for e in spans), "negative duration")

    # The span families a readable timeline needs, and worker fan-out.
    names = [e.get("name", "") for e in spans]
    for needed in ("request", "frontend.rfft", "frontend.gather"):
        check(needed in names, f"missing span {needed!r}")
    check(any(n.startswith("frontend.rpc") for n in names),
          "missing frontend.rpc shard spans")
    check(any(n == "frontend.apply" or n == "frontend.apply_adjoint"
              for n in names), "missing frontend.apply[_adjoint] span")
    worker_pids = {e.get("pid") for e in spans
                   if e.get("name", "").startswith("worker.")}
    check(any(n == "worker.apply" for n in names),
          "missing worker.apply spans")
    check(any(n.startswith("worker.mvm") for n in names),
          "missing per-frequency worker.mvm spans")
    check(len(worker_pids) >= args.min_worker_pids,
          f"worker spans from {len(worker_pids)} process(es), "
          f"need >= {args.min_worker_pids}")

    # Frontend spans live in pid 0, workers elsewhere (merge layout).
    frontend_pids = {e.get("pid") for e in spans
                     if e.get("name", "").startswith("frontend.")}
    check(frontend_pids == {0} if frontend_pids else False,
          f"frontend spans not confined to pid 0: {sorted(frontend_pids)}")
    check(0 not in worker_pids,
          "worker spans leaked into the frontend pid")

    if failures:
        for message in failures:
            print(f"check_trace_json: FAIL: {message}", file=sys.stderr)
        return 1
    print(f"check_trace_json: OK ({len(spans)} spans, "
          f"{len(worker_pids)} worker pids, trace {trace_id}, "
          f"{doc.get('droppedSpans', 0)} dropped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
