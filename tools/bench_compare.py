#!/usr/bin/env python3
"""Regression gate for the tlrwse benchmarks.

Compares a baseline bench run against a candidate run of the same bench
and fails when any tracked metric moved in the bad direction by more
than the threshold. Both inputs are the JSON-lines files the benches
emit (header line + data rows); rows are matched across the two runs by
a per-bench key so a reordered sweep still compares like with like.

Direction matters: bandwidth and throughput metrics regress when they
DROP, latencies and times regress when they RISE. Improvements of any
size never fail the gate.

Usage:
  bench_compare.py BASELINE CANDIDATE [--threshold PCT]
  bench_compare.py --self-test

Exit status: 0 when no metric regressed past the threshold (default
2%), 1 on a regression or malformed input. Stdlib only. CI runs this
against the committed baseline in bench/baselines/ — see ci.yml.
"""

import argparse
import json
import sys

# bench name -> row key fields, metrics that regress when they drop,
# metrics that regress when they rise. Metrics absent from a row are
# skipped so older runs stay comparable.
METRICS = {
    "table3_bandwidth": {
        "key": ("row", "nb", "stack_width"),
        "higher_better": ("relative_pbs", "absolute_pbs", "pflops"),
        "lower_better": (),
    },
    "mdc_throughput": {
        "key": ("threads",),
        "higher_better": ("applies_per_sec",),
        "lower_better": ("sec_per_apply_pair",),
    },
    "serve_throughput": {
        "key": ("clients",),
        "higher_better": ("requests_per_sec",),
        "lower_better": ("latency_p95_s",),
    },
    "obs_overhead": {
        "key": (),
        "higher_better": (),
        "lower_better": ("min_baseline_s", "min_sim_baseline_s",
                         "min_request_s"),
    },
    # Gated on the speedup RATIOS, not raw GFLOP/s: ratios cancel the
    # machine's absolute clock so a shared CI runner stays comparable.
    "kernels": {
        "key": ("row", "m", "n"),
        "higher_better": ("speedup", "speedup_8rhs"),
        "lower_better": (),
    },
    # storage_ratio is deterministic (same fit, same band) so any drift is
    # a real compression change; throughput_ratio cancels the machine's
    # clock like the kernel speedups; the shared path's accuracy must not
    # quietly degrade either.
    "shared_basis": {
        "key": ("row", "band_width"),
        "higher_better": ("storage_ratio", "throughput_ratio"),
        "lower_better": ("max_rel_err",),
    },
    # Gated on the ratios, not raw applies/s: pct_of_resident cancels the
    # runner's absolute clock (streamed and resident rows ride the same
    # machine), and prefetch_speedup is the overlap the background
    # prefetcher wins back over the synchronous path. The hard >=70%
    # quarter-budget bar and the bitwise requirement are enforced by
    # --check, not here.
    "oocache": {
        "key": ("budget",),
        "higher_better": ("pct_of_resident", "prefetch_speedup"),
        "lower_better": (),
    },
    # Both metrics are deterministic (same dataset, same quantization, no
    # timing): any drift in the storage saving is a real policy/packing
    # change, any NMSE rise is a real quality loss of the rounded tiles.
    "ablation_precision": {
        "key": ("row",),
        "higher_better": ("saving",),
        "lower_better": ("nmse",),
    },
    # Gated on the worker-scaling ratio, not raw requests/s: the ratio
    # cancels the runner's absolute clock, and the hard >=2.5x 1->4 bar
    # (on machines with >=4 cores) is enforced by --check, not here.
    "cluster_throughput": {
        "key": ("workers",),
        "higher_better": ("speedup_vs_1",),
        "lower_better": (),
    },
}


def read_run(path):
    with open(path, "r", encoding="utf-8") as fh:
        objs = [json.loads(ln) for ln in fh if ln.strip()]
    if not objs or "bench" not in objs[0]:
        raise ValueError(f"{path}: first line must be a bench header")
    return objs[0], objs[1:]


def row_key(spec, row):
    return tuple(row.get(field) for field in spec["key"])


def compare(bench, base_rows, cand_rows, threshold):
    """Returns (report_lines, regressions) for the two row sets."""
    spec = METRICS.get(bench)
    if spec is None:
        raise ValueError(
            f"no metric set for bench {bench!r} (known: {sorted(METRICS)})"
        )
    base_by_key = {row_key(spec, r): r for r in base_rows}
    lines, regressions = [], []
    for cand in cand_rows:
        key = row_key(spec, cand)
        base = base_by_key.get(key)
        if base is None:
            lines.append(f"  {key}: no baseline row, skipped")
            continue
        for metric, sign in [(m, +1) for m in spec["higher_better"]] + [
            (m, -1) for m in spec["lower_better"]
        ]:
            if metric not in base or metric not in cand:
                continue
            b, c = float(base[metric]), float(cand[metric])
            if b == 0.0:
                continue
            # Positive delta_pct always means "moved in the bad direction".
            delta_pct = sign * 100.0 * (b - c) / abs(b)
            verdict = "REGRESSED" if delta_pct > threshold else "ok"
            lines.append(
                f"  {key} {metric}: {b:g} -> {c:g} "
                f"({-delta_pct:+.2f}% good-direction) {verdict}"
            )
            if delta_pct > threshold:
                regressions.append((key, metric, b, c, delta_pct))
    return lines, regressions


def self_test():
    """Synthetic identical and 20%-slowdown pairs must pass and fail."""
    base = [
        {"row": "headline48", "nb": 70, "stack_width": 23, "relative_pbs": 92.6,
         "absolute_pbs": 245.6, "pflops": 40.5},
        {"row": "six_shard", "nb": 25, "stack_width": 64, "relative_pbs": 12.6,
         "absolute_pbs": 29.2, "pflops": 4.8},
    ]
    _, same = compare("table3_bandwidth", base, [dict(r) for r in base], 2.0)
    if same:
        print(f"self-test FAILED: identical runs flagged {same}", file=sys.stderr)
        return 1
    slow = [dict(r, relative_pbs=r["relative_pbs"] * 0.8) for r in base]
    _, regressed = compare("table3_bandwidth", base, slow, 2.0)
    if len(regressed) != len(base):
        print(
            f"self-test FAILED: 20% slowdown flagged {len(regressed)}/"
            f"{len(base)} rows",
            file=sys.stderr,
        )
        return 1
    faster = [dict(r, relative_pbs=r["relative_pbs"] * 1.5) for r in base]
    _, improved = compare("table3_bandwidth", base, faster, 2.0)
    if improved:
        print("self-test FAILED: improvement flagged", file=sys.stderr)
        return 1
    lat_base = [{"clients": 4, "requests_per_sec": 100.0, "latency_p95_s": 0.01}]
    lat_slow = [{"clients": 4, "requests_per_sec": 100.0, "latency_p95_s": 0.013}]
    _, lat = compare("serve_throughput", lat_base, lat_slow, 2.0)
    if len(lat) != 1:
        print("self-test FAILED: latency rise not flagged", file=sys.stderr)
        return 1
    print("self-test: ok (identical pass, 20% slowdown and latency rise flagged)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("candidate", nargs="?")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="regression threshold in percent (default 2)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the synthetic pass/fail pairs and exit")
    args = parser.parse_args(argv[1:])
    if args.self_test:
        return self_test()
    if not args.baseline or not args.candidate:
        parser.error("BASELINE and CANDIDATE are required (or --self-test)")
    try:
        base_header, base_rows = read_run(args.baseline)
        cand_header, cand_rows = read_run(args.candidate)
        if base_header["bench"] != cand_header["bench"]:
            raise ValueError(
                f"bench mismatch: {base_header['bench']!r} vs "
                f"{cand_header['bench']!r}"
            )
        lines, regressions = compare(
            base_header["bench"], base_rows, cand_rows, args.threshold
        )
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"bench: {base_header['bench']}  threshold: {args.threshold}%")
    for line in lines:
        print(line)
    if regressions:
        print(f"{len(regressions)} regression(s) past {args.threshold}%:",
              file=sys.stderr)
        for key, metric, b, c, delta in regressions:
            print(f"  {key} {metric}: {b:g} -> {c:g} ({delta:.2f}% worse)",
                  file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
