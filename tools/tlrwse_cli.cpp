// tlrwse command-line tool.
//
//   tlrwse_cli synth    --out K.bin [--nsx 16 --nsy 12 --nrx 12 --nry 9]
//                       [--freq-index q] [--ordering hilbert|morton|natural]
//   tlrwse_cli compress --in K.bin --out K.tlr [--nb 24] [--acc 1e-4]
//                       [--backend svd|rrqr|rsvd|aca]
//   tlrwse_cli info     --in K.tlr
//   tlrwse_cli mvm      --in K.tlr [--kernel fused|3phase|realsplit]
//   tlrwse_cli simulate [--nb 70] [--acc 1e-4] [--sw 23] [--strategy 1|2]
//                       [--systems 6]
//   tlrwse_cli mdd      [--nb 24] [--acc 1e-4] [--iters 30]
//   tlrwse_cli archive  --out survey.tlra [--nb 24] [--acc 1e-4] [geometry
//                       flags as for synth]   (compress a whole survey)
//   tlrwse_cli solve    --archive survey.tlra [--vsrc v] [--iters 30]
//                       [--stream-mb 0] [--stream-verify 0]
//                       (MDD from precompressed kernels; geometry flags
//                        must match the archive's survey. --stream-mb > 0
//                        runs out-of-core: kernels stream disk->RAM under
//                        that byte budget, grown to the plan's
//                        double-buffer window when too small;
//                        --stream-verify 1 re-solves fully resident and
//                        asserts the streamed solution is bitwise equal)
//   tlrwse_cli serve    --archive survey.tlra [--clients 8] [--requests 4]
//                       [--workers 4] [--queue 64] [--batch 8] [--iters 10]
//                       [--mode lsqr|adjoint|mixed] [--deadline-ms 0]
//                       [--cache-mb 512] [--verify 1] [--metrics-out FILE]
//                       [--health-out FILE] [--watch MS] [--slo-ms 0]
//                       [--exemplar-dir DIR] [geometry flags as for solve]
//                       (closed-loop multi-client solve service driver;
//                       verifies bitwise vs sequential; --metrics-out
//                       dumps the service registry in Prometheus text
//                       format; --health-out dumps metrics + the rolling
//                       SLO window as JSON; --watch MS repaints a live
//                       service view every MS milliseconds; --slo-ms sets
//                       the latency objective, with breach exemplars
//                       persisted under --exemplar-dir)
//   tlrwse_cli trace    --out trace.json [--iters 5] [--nb 24] [--acc 1e-4]
//                       [geometry flags as for synth]   (end-to-end demo:
//                       archive -> serve -> solve, captured as a
//                       chrome://tracing file plus a metrics JSON dump)
//   tlrwse_cli cluster  --archive survey.tlra [--workers 3] [--requests 6]
//                       [--iters 8] [--mode lsqr|adjoint] [--kill-worker 0]
//                       [--verify 1] [--replicate-mb 0]
//                       [--trace-merged-out FILE] [--health-out FILE]
//                       [--watch MS] [--slo-ms 0] [--exemplar-dir DIR]
//                       [geometry flags as for solve]   (multi-process
//                       smoke: forks real worker processes behind unix
//                       sockets, solves through the cluster frontend,
//                       verifies bitwise vs the single-process solve;
//                       --kill-worker 1 SIGKILLs one worker mid-run and
//                       asserts typed degradation; --trace-merged-out
//                       traces the first request end-to-end and writes one
//                       clock-aligned chrome://tracing timeline spanning
//                       the frontend and every worker process;
//                       --health-out dumps per-worker shard/bytes/stall
//                       health + the SLO window as JSON; --watch MS
//                       repaints a live fleet view)
//
// `serve` installs SIGINT/SIGTERM handlers: on the first signal admission
// stops (clients submit nothing new), in-flight requests drain, and the
// metrics/trace outputs are still flushed before exit.
//
// There is also a hidden `cluster-worker --socket PATH` subcommand: the
// worker half of `cluster`, exec'd by the driver — not for interactive use.
//
// Every command also accepts --trace-out FILE: the whole run is recorded
// with the scoped-span tracer and dumped as chrome://tracing JSON (load it
// at chrome://tracing or https://ui.perfetto.dev). Requires a build with
// TLRWSE_TRACING=ON (the default).
//
// Exit code 0 on success, 1 on usage error, 2 on runtime failure.
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tlrwse/cluster/frontend.hpp"
#include "tlrwse/cluster/transport.hpp"
#include "tlrwse/cluster/worker.hpp"
#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/common/units.hpp"
#include "tlrwse/io/archive.hpp"
#include "tlrwse/io/serialize.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/mdd/metrics.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/prometheus.hpp"
#include "tlrwse/obs/tracer.hpp"
#include "tlrwse/oocache/streamed_operator.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/seismic/rank_model.hpp"
#include "tlrwse/serve/solve_service.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"
#include "tlrwse/wse/machine.hpp"

namespace {

using namespace tlrwse;

/// Tiny --flag value parser: every option takes exactly one value. A
/// trailing flag without a value is a usage error (not a silent drop), and
/// lookups are recorded so main() can reject flags the chosen subcommand
/// never consumed (catching typos like `--iter 5`).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      if (std::strncmp(argv[i], "--", 2) != 0 || argv[i][2] == '\0') {
        throw std::invalid_argument(std::string("expected --flag, got ") +
                                    argv[i]);
      }
      if (i + 1 >= argc) {
        throw std::invalid_argument(std::string("flag ") + argv[i] +
                                    " is missing its value");
      }
      values_[argv[i] + 2] = argv[i + 1];
      ++i;
    }
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double fallback) const {
    consumed_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] index_t integer(const std::string& key, index_t fallback) const {
    return static_cast<index_t>(num(key, static_cast<double>(fallback)));
  }
  [[nodiscard]] bool has(const std::string& key) const {
    consumed_.insert(key);
    return values_.count(key) > 0;
  }
  /// Flags provided on the command line that no code path looked up.
  [[nodiscard]] std::vector<std::string> unconsumed() const {
    std::vector<std::string> out;
    for (const auto& [key, value] : values_) {
      if (consumed_.count(key) == 0) out.push_back(key);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

/// Writes `text` to `path`; returns false (with a message) on failure.
bool write_text_file(const std::string& path, const std::string& text,
                     const char* what) {
  std::FILE* fh = std::fopen(path.c_str(), "wb");
  if (fh == nullptr) {
    std::fprintf(stderr, "%s: cannot write %s\n", what, path.c_str());
    return false;
  }
  std::fwrite(text.data(), 1, text.size(), fh);
  std::fclose(fh);
  return true;
}

/// One top-like frame of the fleet view for `cluster --watch`.
std::string format_fleet_view(
    const std::vector<cluster::ClusterService::WorkerHealth>& fleet,
    const obs::SloTracker::Window& win) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "fleet: %zu workers | slo window: %llu reqs, p50 %.3fs, "
                "p95 %.3fs, p99 %.3fs, burn %.2f\n",
                fleet.size(), static_cast<unsigned long long>(win.count),
                win.p50_s, win.p95_s, win.p99_s, win.burn_rate);
  out += line;
  for (const auto& wh : fleet) {
    if (!wh.alive) {
      std::snprintf(line, sizeof(line), "  %-10s DEAD\n", wh.name.c_str());
      out += line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  %-10s up %6.1fs  inflight %2llu  applies %6llu  "
                  "resident %8.1f KiB  stall %5.2fs  drops %llu",
                  wh.name.c_str(), 1e-9 * static_cast<double>(wh.health.uptime_ns),
                  static_cast<unsigned long long>(wh.health.inflight),
                  static_cast<unsigned long long>(wh.health.applies),
                  wh.health.resident_bytes / 1024.0, wh.health.stall_s,
                  static_cast<unsigned long long>(wh.health.dropped_spans));
    out += line;
    for (const auto& sh : wh.health.shards) {
      std::snprintf(line, sizeof(line), "  shard %u [q %lld:%lld)",
                    sh.shard_id, static_cast<long long>(sh.q_begin),
                    static_cast<long long>(sh.q_end));
      out += line;
    }
    out += "\n";
  }
  return out;
}

seismic::DatasetConfig dataset_config(const Args& args) {
  seismic::DatasetConfig cfg;
  cfg.geometry = seismic::AcquisitionGeometry::small_scale(
      args.integer("nsx", 16), args.integer("nsy", 12),
      args.integer("nrx", 12), args.integer("nry", 9));
  cfg.nt = args.integer("nt", 256);
  cfg.f_min = args.num("fmin", 3.0);
  cfg.f_max = args.num("fmax", 30.0);
  const std::string ord = args.get("ordering", "hilbert");
  cfg.ordering = ord == "natural"  ? reorder::Ordering::kNatural
                 : ord == "morton" ? reorder::Ordering::kMorton
                                   : reorder::Ordering::kHilbert;
  return cfg;
}

tlr::CompressionConfig compression_config(const Args& args) {
  tlr::CompressionConfig cc;
  cc.nb = args.integer("nb", 24);
  cc.acc = args.num("acc", 1e-4);
  const std::string backend = args.get("backend", "svd");
  cc.backend = backend == "rrqr"   ? tlr::CompressionBackend::kRrqr
               : backend == "rsvd" ? tlr::CompressionBackend::kRsvd
               : backend == "aca"  ? tlr::CompressionBackend::kAca
                                   : tlr::CompressionBackend::kSvd;
  return cc;
}

int cmd_synth(const Args& args) {
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "synth: --out is required\n");
    return 1;
  }
  const auto data = seismic::build_dataset(dataset_config(args));
  const index_t q = args.integer("freq-index", data.num_freqs() / 2);
  if (q < 0 || q >= data.num_freqs()) {
    std::fprintf(stderr, "synth: freq-index out of range [0, %lld)\n",
                 static_cast<long long>(data.num_freqs()));
    return 1;
  }
  io::save_matrix(out, data.p_down[static_cast<std::size_t>(q)]);
  std::printf("wrote %s: %lld x %lld frequency matrix at %.2f Hz\n",
              out.c_str(),
              static_cast<long long>(data.num_sources()),
              static_cast<long long>(data.num_receivers()),
              data.freqs_hz[static_cast<std::size_t>(q)]);
  return 0;
}

int cmd_compress(const Args& args) {
  TLRWSE_TRACE_SPAN("cli.compress", "cli");
  const std::string in = args.get("in", "");
  const std::string out = args.get("out", "");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "compress: --in and --out are required\n");
    return 1;
  }
  const auto dense = io::load_matrix(in);
  const auto cc = compression_config(args);
  WallTimer t;
  const auto tlr_mat = tlr::compress_tlr(dense, cc);
  io::save_tlr(out, tlr_mat);
  std::printf("compressed %lld x %lld (nb=%lld, acc=%.1e): %s -> %s "
              "(%.2fx) in %.2fs\n",
              static_cast<long long>(dense.rows()),
              static_cast<long long>(dense.cols()),
              static_cast<long long>(cc.nb), cc.acc,
              format_bytes(tlr_mat.dense_bytes()).c_str(),
              format_bytes(tlr_mat.compressed_bytes()).c_str(),
              tlr_mat.compression_ratio(), t.seconds());
  return 0;
}

int cmd_info(const Args& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "info: --in is required\n");
    return 1;
  }
  const auto m = io::load_tlr(in);
  const auto s = m.rank_stats();
  std::printf("TLR matrix %s\n", in.c_str());
  std::printf("  shape: %lld x %lld, nb = %lld (%lld x %lld tiles)\n",
              static_cast<long long>(m.rows()), static_cast<long long>(m.cols()),
              static_cast<long long>(m.grid().nb()),
              static_cast<long long>(m.grid().mt()),
              static_cast<long long>(m.grid().nt()));
  std::printf("  ranks: min %lld, max %lld, mean %.2f\n",
              static_cast<long long>(s.min), static_cast<long long>(s.max),
              s.mean);
  std::printf("  size: %s compressed vs %s dense (%.2fx)\n",
              format_bytes(m.compressed_bytes()).c_str(),
              format_bytes(m.dense_bytes()).c_str(), m.compression_ratio());
  return 0;
}

int cmd_mvm(const Args& args) {
  TLRWSE_TRACE_SPAN("cli.mvm", "cli");
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "mvm: --in is required\n");
    return 1;
  }
  const auto m = io::load_tlr(in);
  tlr::StackedTlr<cf32> stacks(m);
  Rng rng(args.integer("seed", 1));
  std::vector<cf32> x(static_cast<std::size_t>(m.cols()));
  fill_normal(rng, x.data(), x.size());

  const std::string kernel = args.get("kernel", "fused");
  const int reps = static_cast<int>(args.integer("reps", 50));
  std::vector<cf32> y(static_cast<std::size_t>(m.rows()));
  tlr::MvmWorkspace<cf32> ws;
  std::unique_ptr<tlr::RealSplitStacks<float>> split;
  if (kernel == "realsplit") {
    split = std::make_unique<tlr::RealSplitStacks<float>>(stacks);
  }
  WallTimer t;
  for (int r = 0; r < reps; ++r) {
    if (kernel == "3phase") {
      tlr::tlr_mvm_3phase(stacks, std::span<const cf32>(x), std::span<cf32>(y),
                          ws);
    } else if (kernel == "realsplit") {
      tlr::tlr_mvm_real_split(*split, std::span<const cf32>(x),
                              std::span<cf32>(y));
    } else {
      tlr::tlr_mvm_fused(stacks, std::span<const cf32>(x), std::span<cf32>(y),
                         ws);
    }
  }
  const double ms = t.millis() / reps;
  std::printf("%s TLR-MVM: %.3f ms/apply, effective bandwidth %s\n",
              kernel.c_str(), ms,
              format_bandwidth(m.compressed_bytes() / (ms * 1e-3)).c_str());
  return 0;
}

int cmd_simulate(const Args& args) {
  seismic::RankModelConfig rcfg;
  rcfg.nb = args.integer("nb", 70);
  rcfg.acc = args.num("acc", 1e-4);

  struct ModelSource final : wse::RankSource {
    explicit ModelSource(const seismic::RankModelConfig& c) : model(c) {}
    seismic::RankModel model;
    [[nodiscard]] index_t num_freqs() const override {
      return model.config().num_freqs;
    }
    [[nodiscard]] const tlr::TileGrid& grid() const override {
      return model.grid();
    }
    [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override {
      return model.tile_ranks(q);
    }
  } source(rcfg);

  wse::ClusterConfig cfg;
  cfg.stack_width = args.integer("sw", 23);
  cfg.systems = args.integer("systems", 0);
  cfg.strategy = args.integer("strategy", 1) == 2
                     ? wse::Strategy::kScatterRealMvms
                     : wse::Strategy::kSplitStackWidth;
  WallTimer t;
  const auto rep = wse::simulate_cluster(source, cfg);
  std::printf("paper-scale mapping (nb=%lld, acc=%.1e, sw=%lld, strategy "
              "%d)\n",
              static_cast<long long>(rcfg.nb), rcfg.acc,
              static_cast<long long>(cfg.stack_width),
              cfg.strategy == wse::Strategy::kScatterRealMvms ? 2 : 1);
  std::printf("  PEs: %lld on %lld CS-2 systems (%.1f%% occupancy)\n",
              static_cast<long long>(rep.pes_used),
              static_cast<long long>(rep.systems), 100.0 * rep.occupancy);
  std::printf("  worst cycles: %.0f (%.3f us)\n", rep.worst_cycles,
              rep.time_us);
  std::printf("  relative bandwidth: %s\n",
              format_bandwidth(rep.relative_bw).c_str());
  std::printf("  absolute bandwidth: %s\n",
              format_bandwidth(rep.absolute_bw).c_str());
  std::printf("  sustained: %s\n", format_flops(rep.flops_rate).c_str());
  std::printf("  max SRAM/PE: %s (%s)\n",
              format_bytes(rep.max_sram_bytes).c_str(),
              rep.fits_sram ? "fits" : "OVERFLOW");
  std::printf("  (simulated in %.1fs)\n", t.seconds());
  return 0;
}

int cmd_mdd(const Args& args) {
  TLRWSE_TRACE_SPAN("cli.mdd", "cli");
  const auto data = seismic::build_dataset(dataset_config(args));
  const auto cc = compression_config(args);
  const auto op =
      mdd::make_mdc_operator(data, mdd::KernelBackend::kTlrFused, cc);
  const index_t v = args.integer("vsrc", data.num_receivers() / 2);
  const auto rhs = mdd::virtual_source_rhs(data, v);
  const auto truth = mdd::true_reflectivity_traces(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = static_cast<int>(args.integer("iters", 30));
  WallTimer t;
  const auto sol = mdd::solve_mdd(*op, rhs, lsqr);
  std::printf("MDD (virtual source %lld, %d LSQR iterations, %.1fs):\n",
              static_cast<long long>(v), sol.iterations, t.seconds());
  std::printf("  NMSE vs truth: %.4f, correlation: %.3f, |r| = %.3e\n",
              mdd::nmse(sol.x, truth), mdd::correlation(sol.x, truth),
              sol.residual_norm);
  return 0;
}

int cmd_archive(const Args& args) {
  TLRWSE_TRACE_SPAN("cli.archive", "cli");
  const std::string out = args.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "archive: --out is required\n");
    return 1;
  }
  const auto data = seismic::build_dataset(dataset_config(args));
  WallTimer t;
  const auto archive = io::build_archive(data, compression_config(args));
  io::save_archive(out, archive);
  std::printf("archived %lld kernels (%s compressed) to %s in %.1fs\n",
              static_cast<long long>(archive.num_freqs()),
              format_bytes(archive.compressed_bytes()).c_str(), out.c_str(),
              t.seconds());
  return 0;
}

int cmd_solve(const Args& args) {
  TLRWSE_TRACE_SPAN("cli.solve", "cli");
  const std::string path = args.get("archive", "");
  if (path.empty()) {
    std::fprintf(stderr, "solve: --archive is required\n");
    return 1;
  }
  const double stream_mb = args.num("stream-mb", 0.0);
  const bool stream_verify = args.integer("stream-verify", 0) != 0;
  std::unique_ptr<mdc::MdcOperator> op;
  std::shared_ptr<oocache::ShardStreamer> streamer;
  bool shared_basis = false;
  if (stream_mb > 0.0) {
    // Out-of-core: kernels stream disk->RAM under the byte budget while
    // the solve runs, grown to the plan's double-buffer window when the
    // request is too small to be servable at all.
    oocache::StreamConfig scfg;
    scfg.budget_bytes = stream_mb * 1024.0 * 1024.0;
    scfg.grow_to_window = true;
    auto streamed = oocache::make_streamed_operator(path, scfg);
    op = std::move(streamed.op);
    streamer = streamed.streamer;
    shared_basis = streamed.info.shared_basis;
    std::printf("streaming %s: %.1f MiB payload in %lld shard(s), budget "
                "%.1f MiB (window %.1f MiB)\n",
                path.c_str(), streamed.info.payload_bytes / (1024.0 * 1024.0),
                static_cast<long long>(streamer->plan().num_shards()),
                streamer->budget_bytes() / (1024.0 * 1024.0),
                streamer->plan().window_bytes() / (1024.0 * 1024.0));
  } else {
    const auto archive = io::load_archive(path);
    op = io::make_operator(archive);
  }
  // The observed data still comes from the (re-modelled) survey; in a real
  // deployment it would be loaded from disk alongside the archive.
  const auto data = seismic::build_dataset(dataset_config(args));
  TLRWSE_REQUIRE(op->num_receivers() == data.num_receivers() &&
                     op->num_sources() == data.num_sources() &&
                     op->nt() == data.config.nt,
                 "archive does not match the survey geometry flags");
  const index_t v = args.integer("vsrc", data.num_receivers() / 2);
  const auto rhs = mdd::virtual_source_rhs(data, v);
  const auto truth = mdd::true_reflectivity_traces(data, v);
  mdd::LsqrConfig lsqr;
  lsqr.max_iters = static_cast<int>(args.integer("iters", 30));
  WallTimer t;
  const auto sol = mdd::solve_mdd(*op, rhs, lsqr);
  std::printf("solved virtual source %lld from %s in %.1fs: NMSE %.4f, "
              "correlation %.3f\n",
              static_cast<long long>(v), path.c_str(), t.seconds(),
              mdd::nmse(sol.x, truth), mdd::correlation(sol.x, truth));
  if (streamer != nullptr) {
    const oocache::StreamStats st = streamer->stats();
    std::printf("stream stats: %llu hits, %llu misses, %llu loads, %llu "
                "evictions, %.1f MiB streamed, %.2fs stalled\n",
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses),
                static_cast<unsigned long long>(st.loads),
                static_cast<unsigned long long>(st.evictions),
                st.bytes_streamed / (1024.0 * 1024.0), st.stall_s);
  }
  if (stream_verify && streamer != nullptr) {
    // Ground truth: the same solve with every kernel resident. Streaming
    // must change residency timing only, never a single bit of the result.
    std::unique_ptr<mdc::MdcOperator> resident =
        shared_basis ? io::make_operator(io::load_shared_archive(path))
                     : io::make_operator(io::load_archive(path));
    const auto ref = mdd::solve_mdd(*resident, rhs, lsqr);
    const bool bitwise =
        ref.x.size() == sol.x.size() &&
        std::memcmp(ref.x.data(), sol.x.data(),
                    ref.x.size() * sizeof(float)) == 0;
    std::printf("stream verify: %s\n",
                bitwise ? "bitwise identical to resident solve"
                        : "MISMATCH vs resident solve");
    if (!bitwise) return 2;
  }
  return 0;
}

/// Set by the first SIGINT/SIGTERM during `serve`: client threads stop
/// submitting (admission stops), in-flight requests finish, and the run
/// exits through the normal path so metrics/trace files still flush.
volatile std::sig_atomic_t g_drain_requested = 0;

extern "C" void drain_signal_handler(int) { g_drain_requested = 1; }

int cmd_serve(const Args& args) {
  TLRWSE_TRACE_SPAN("cli.serve", "cli");
  const std::string path = args.get("archive", "");
  if (path.empty()) {
    std::fprintf(stderr, "serve: --archive is required\n");
    return 1;
  }
  const int clients = static_cast<int>(args.integer("clients", 8));
  const int requests = static_cast<int>(args.integer("requests", 4));
  const int iters = static_cast<int>(args.integer("iters", 10));
  const std::string mode = args.get("mode", "lsqr");
  const double deadline_s = args.num("deadline-ms", 0.0) / 1e3;
  const bool verify = args.integer("verify", 1) != 0;
  const std::string metrics_out = args.get("metrics-out", "");
  const std::string health_out = args.get("health-out", "");
  const int watch_ms = static_cast<int>(args.integer("watch", 0));
  const double slo_ms = args.num("slo-ms", 0.0);
  const std::string exemplar_dir = args.get("exemplar-dir", "");
  if (clients < 1 || requests < 1) {
    std::fprintf(stderr, "serve: --clients/--requests must be >= 1\n");
    return 1;
  }
  if (mode != "lsqr" && mode != "adjoint" && mode != "mixed") {
    std::fprintf(stderr, "serve: --mode must be lsqr|adjoint|mixed\n");
    return 1;
  }

  serve::ServiceConfig cfg;
  cfg.workers = static_cast<int>(args.integer("workers", 4));
  cfg.queue_capacity = static_cast<std::size_t>(args.integer("queue", 64));
  cfg.max_batch = static_cast<std::size_t>(args.integer("batch", 8));
  cfg.cache_budget_bytes = args.num("cache-mb", 512.0) * 1024.0 * 1024.0;
  cfg.slo.latency_objective_s = slo_ms / 1e3;
  cfg.slo.exemplar_dir = exemplar_dir;

  // The observed data comes from the (re-modelled) survey, exactly as in
  // `solve`; the archive must match the geometry flags.
  const auto info = io::peek_archive(path);
  const auto data = seismic::build_dataset(dataset_config(args));
  TLRWSE_REQUIRE(info.nt == data.config.nt,
                 "archive nt does not match the survey geometry flags");
  const index_t nr = data.num_receivers();
  const serve::OperatorKey key{path, args.integer("nb", 0),
                               args.num("acc", 0.0)};

  const int total = clients * requests;
  auto kind_of = [&](int j) {
    if (mode == "adjoint") return serve::RequestKind::kAdjoint;
    if (mode == "mixed" && j % 2 == 1) return serve::RequestKind::kAdjoint;
    return serve::RequestKind::kLsqr;
  };
  // Pre-model the right-hand sides so client threads only exercise the
  // service (vsrc j cycles the receiver line).
  std::vector<std::vector<float>> rhs(static_cast<std::size_t>(
      std::min<index_t>(total, nr)));
  for (std::size_t v = 0; v < rhs.size(); ++v) {
    rhs[v] = mdd::virtual_source_rhs(data, static_cast<index_t>(v));
  }

  std::printf("serving %s: %d clients x %d requests (mode %s, %d workers, "
              "queue %zu)\n",
              path.c_str(), clients, requests, mode.c_str(), cfg.workers,
              cfg.queue_capacity);
  std::vector<serve::SolveResponse> responses(
      static_cast<std::size_t>(total));
  std::vector<char> submitted(static_cast<std::size_t>(total), 0);
  // Graceful drain: the first SIGINT/SIGTERM stops admission (clients
  // submit nothing new), every in-flight request runs to completion, and
  // the metrics/trace dumps below still happen.
  g_drain_requested = 0;
  struct sigaction drain_action = {};
  drain_action.sa_handler = drain_signal_handler;
  struct sigaction prev_int = {};
  struct sigaction prev_term = {};
  ::sigaction(SIGINT, &drain_action, &prev_int);
  ::sigaction(SIGTERM, &drain_action, &prev_term);
  WallTimer wall;
  {
    serve::SolveService service(cfg);
    // Live service view: repaint queue depth, completion counters, and the
    // rolling SLO window while the client pool runs.
    std::atomic<bool> watch_stop{false};
    std::thread watch_thread;
    if (watch_ms > 0) {
      watch_thread = std::thread([&] {
        const bool tty = ::isatty(1) != 0;
        while (!watch_stop.load(std::memory_order_relaxed)) {
          const auto m = service.metrics();
          const auto win = service.slo_window();
          char line[256];
          std::snprintf(
              line, sizeof(line),
              "serve: queue %llu (peak %llu) | done %llu/%llu | slo "
              "window: %llu reqs, p50 %.3fs, p95 %.3fs, p99 %.3fs, "
              "burn %.2f\n",
              static_cast<unsigned long long>(m.counters.queue_depth),
              static_cast<unsigned long long>(m.counters.queue_peak_depth),
              static_cast<unsigned long long>(m.counters.completed),
              static_cast<unsigned long long>(m.counters.submitted),
              static_cast<unsigned long long>(win.count), win.p50_s,
              win.p95_s, win.p99_s, win.burn_rate);
          if (tty) std::printf("\033[2J\033[H");
          std::fputs(line, stdout);
          std::fflush(stdout);
          for (int spin = 0;
               spin * 25 < watch_ms &&
               !watch_stop.load(std::memory_order_relaxed);
               ++spin) {
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
          }
        }
      });
    }
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        for (int r = 0; r < requests; ++r) {
          if (g_drain_requested != 0) break;  // admission stopped
          const int j = c * requests + r;
          const auto v = static_cast<std::size_t>(j) % rhs.size();
          serve::SolveRequest req;
          req.op = key;
          req.kind = kind_of(j);
          req.vsrc = static_cast<index_t>(v);
          req.rhs = rhs[v];
          req.lsqr.max_iters = iters;
          req.deadline_s = deadline_s;
          submitted[static_cast<std::size_t>(j)] = 1;
          // Closed loop: each client waits for its response before the
          // next submission.
          responses[static_cast<std::size_t>(j)] =
              service.submit(std::move(req)).get();
        }
      });
    }
    for (auto& t : pool) t.join();
    if (watch_thread.joinable()) {
      watch_stop.store(true, std::memory_order_relaxed);
      watch_thread.join();
    }
    ::sigaction(SIGINT, &prev_int, nullptr);
    ::sigaction(SIGTERM, &prev_term, nullptr);
    const bool drained = g_drain_requested != 0;
    int n_submitted = 0;
    for (const char s : submitted) n_submitted += s;
    if (drained) {
      std::printf("drain: signal received; %d of %d requests submitted, "
                  "in-flight work completed\n",
                  n_submitted, total);
    }
    const double elapsed = wall.seconds();

    const auto m = service.metrics();
    std::printf("%s\n", m.to_json().c_str());
    std::printf("served %llu ok / %d submitted in %.2fs (%.1f req/s); "
                "rejected: %llu queue-full, %llu deadline, %llu missing; "
                "cache: %llu loads, %.0f%% hit rate\n",
                static_cast<unsigned long long>(m.counters.completed),
                n_submitted, elapsed,
                static_cast<double>(m.counters.completed) / elapsed,
                static_cast<unsigned long long>(m.counters.rejected_queue_full),
                static_cast<unsigned long long>(m.counters.rejected_deadline),
                static_cast<unsigned long long>(
                    m.counters.rejected_archive_missing),
                static_cast<unsigned long long>(m.cache.loads),
                100.0 * m.cache.hit_rate());

    if (!metrics_out.empty()) {
      // Quiescent snapshot (all clients joined): the dump is a complete,
      // scrape-ready view of the run for Prometheus-side tooling.
      const std::string text =
          obs::metrics_to_prometheus_text(service.registry().snapshot());
      std::FILE* fh = std::fopen(metrics_out.c_str(), "wb");
      if (fh == nullptr) {
        std::fprintf(stderr, "serve: cannot write %s\n", metrics_out.c_str());
        return 2;
      }
      std::fwrite(text.data(), 1, text.size(), fh);
      std::fclose(fh);
      std::printf("metrics: wrote %zu bytes to %s\n", text.size(),
                  metrics_out.c_str());
    }

    if (!health_out.empty()) {
      // Single-process health view: the service metrics JSON plus the
      // rolling SLO window (the cluster tier's fleet_health_json analogue).
      const auto win = service.slo_window();
      char slo_json[256];
      std::snprintf(slo_json, sizeof(slo_json),
                    "{\"count\":%llu,\"errors\":%llu,\"breaches\":%llu,"
                    "\"p50_s\":%.6f,\"p95_s\":%.6f,\"p99_s\":%.6f,"
                    "\"burn_rate\":%.4f}",
                    static_cast<unsigned long long>(win.count),
                    static_cast<unsigned long long>(win.errors),
                    static_cast<unsigned long long>(win.breaches), win.p50_s,
                    win.p95_s, win.p99_s, win.burn_rate);
      const std::string health = std::string("{\"slo\":") + slo_json +
                                 ",\"metrics\":" + service.metrics_json() +
                                 "}";
      if (!write_text_file(health_out, health, "serve")) return 2;
      std::printf("health: wrote %zu bytes to %s\n", health.size(),
                  health_out.c_str());
    }

    if (verify) {
      // Sequential reference on a fresh operator instance: the service
      // must be bitwise identical per virtual source.
      const auto archive = io::load_archive(path);
      const auto op = io::make_operator(archive);
      TLRWSE_REQUIRE(op->num_receivers() == nr &&
                         op->num_sources() == data.num_sources(),
                     "archive does not match the survey geometry flags");
      std::map<std::pair<std::size_t, int>, std::vector<float>> reference;
      int mismatched = 0, errored = 0;
      for (int j = 0; j < total; ++j) {
        // A drain leaves later slots unsubmitted; only check real replies.
        if (submitted[static_cast<std::size_t>(j)] == 0) continue;
        const auto& resp = responses[static_cast<std::size_t>(j)];
        if (resp.status == serve::SolveStatus::kError) {
          std::fprintf(stderr, "request %d failed: %s\n", j,
                       resp.error.c_str());
          ++errored;
          continue;
        }
        if (resp.status != serve::SolveStatus::kOk) continue;
        const auto v = static_cast<std::size_t>(j) % rhs.size();
        const int kind = kind_of(j) == serve::RequestKind::kAdjoint ? 1 : 0;
        auto it = reference.find({v, kind});
        if (it == reference.end()) {
          std::vector<float> ref;
          if (kind == 1) {
            ref = mdd::adjoint_reflectivity(*op, rhs[v]);
          } else {
            mdd::LsqrConfig lsqr;
            lsqr.max_iters = iters;
            ref = mdd::solve_mdd(*op, rhs[v], lsqr).x;
          }
          it = reference.emplace(std::make_pair(v, kind), std::move(ref))
                   .first;
        }
        const auto& ref = it->second;
        if (resp.x.size() != ref.size() ||
            std::memcmp(resp.x.data(), ref.data(),
                        ref.size() * sizeof(float)) != 0) {
          std::fprintf(stderr,
                       "request %d (vsrc %zu): result differs from the "
                       "sequential solve\n",
                       j, v);
          ++mismatched;
        }
      }
      const auto completed = m.counters.completed;
      const bool load_once_ok = completed == 0 || m.cache.loads == 1;
      std::printf("verify: %d mismatches, %d errors, archive loads = %llu "
                  "(%s)\n",
                  mismatched, errored,
                  static_cast<unsigned long long>(m.cache.loads),
                  load_once_ok ? "loaded exactly once" : "EXPECTED 1");
      if (mismatched > 0 || errored > 0 || !load_once_ok) return 2;
    }
  }
  return 0;
}

/// Hidden worker half of `cluster`: serve one unix socket with a
/// ShardWorker until a kShutdown frame arrives. Exec'd by the driver via
/// /proc/self/exe — fork alone is not safe once OpenMP regions have run.
int cmd_cluster_worker(const Args& args) {
  const std::string sock = args.get("socket", "");
  if (sock.empty()) {
    std::fprintf(stderr, "cluster-worker: --socket is required\n");
    return 1;
  }
  cluster::ShardWorker worker;
  const auto server = cluster::SocketServer::listen_unix(
      sock, [&worker](const cluster::Frame& f) { return worker.handle(f); });
  while (!worker.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Grace period so the ShutdownOk reply flushes before the server stops.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server->stop();
  std::error_code ec;
  std::filesystem::remove(sock, ec);
  return 0;
}

/// Multi-process cluster smoke driver: forks real worker processes behind
/// unix sockets, routes solves through the ClusterService front door, and
/// verifies every completed solve bitwise against the single-process
/// operator. With --kill-worker 1 it SIGKILLs one worker mid-run and
/// asserts typed degradation: responses are kOk (replanned onto the
/// survivors) or kWorkerFailed — never a hang, never an untyped error.
int cmd_cluster(const Args& args) {
  TLRWSE_TRACE_SPAN("cli.cluster", "cli");
  namespace fs = std::filesystem;
  // Consume every flag up front so early-exit paths don't misreport
  // recognised flags as typos.
  const std::string path = args.get("archive", "");
  const int workers = static_cast<int>(args.integer("workers", 3));
  const int requests = static_cast<int>(args.integer("requests", 6));
  const int iters = static_cast<int>(args.integer("iters", 8));
  const std::string mode = args.get("mode", "lsqr");
  const bool kill_worker = args.integer("kill-worker", 0) != 0;
  const bool verify = args.integer("verify", 1) != 0;
  const double replicate_mb = args.num("replicate-mb", 0.0);
  const std::string trace_merged_out = args.get("trace-merged-out", "");
  const std::string health_out = args.get("health-out", "");
  const int watch_ms = static_cast<int>(args.integer("watch", 0));
  const double slo_ms = args.num("slo-ms", 0.0);
  const std::string exemplar_dir = args.get("exemplar-dir", "");
  const auto dcfg = dataset_config(args);
  if (path.empty()) {
    std::fprintf(stderr, "cluster: --archive is required\n");
    return 1;
  }
  if (workers < 1 || requests < 1) {
    std::fprintf(stderr, "cluster: --workers/--requests must be >= 1\n");
    return 1;
  }
  if (mode != "lsqr" && mode != "adjoint") {
    std::fprintf(stderr, "cluster: --mode must be lsqr|adjoint\n");
    return 1;
  }

  const auto info = io::peek_archive(path);
  const auto data = seismic::build_dataset(dcfg);
  TLRWSE_REQUIRE(info.nt == data.config.nt,
                 "archive nt does not match the survey geometry flags");
  const index_t nr = data.num_receivers();

  // One process per worker. fork is immediately followed by exec, so the
  // children never touch this process's OpenMP/thread state.
  std::vector<pid_t> pids;
  std::vector<std::string> sockets;
  auto kill_all = [&pids] {
    for (const pid_t pid : pids) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  };
  for (int w = 0; w < workers; ++w) {
    const std::string sock =
        (fs::temp_directory_path() /
         ("tlrwse_cluster_" + std::to_string(::getpid()) + "_" +
          std::to_string(w) + ".sock"))
            .string();
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "cluster: fork failed\n");
      kill_all();
      return 2;
    }
    if (pid == 0) {
      ::execl("/proc/self/exe", "tlrwse_cli", "cluster-worker", "--socket",
              sock.c_str(), static_cast<char*>(nullptr));
      std::_Exit(127);  // exec failed; no cleanup in the child
    }
    pids.push_back(pid);
    sockets.push_back(sock);
  }

  std::vector<std::unique_ptr<cluster::WorkerClient>> fleet;
  for (int w = 0; w < workers; ++w) {
    std::unique_ptr<cluster::SocketChannel> chan;
    for (int attempt = 0; attempt < 400 && !chan; ++attempt) {
      try {
        chan = cluster::SocketChannel::connect_unix(
            sockets[static_cast<std::size_t>(w)], /*timeout_ms=*/60000);
      } catch (const cluster::TransportError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
    if (!chan) {
      std::fprintf(stderr, "cluster: worker %d never came up\n", w);
      kill_all();
      return 2;
    }
    fleet.push_back(std::make_unique<cluster::WorkerClient>(
        std::move(chan), "worker" + std::to_string(w)));
  }
  std::printf("cluster: %d worker processes up (%s placement)\n", workers,
              replicate_mb > 0.0 ? "replicated-if-small" : "sharded");

  cluster::ClusterConfig ccfg;
  ccfg.planner.replicate_max_bytes = replicate_mb * 1024.0 * 1024.0;
  ccfg.slo.latency_objective_s = slo_ms / 1e3;
  ccfg.slo.exemplar_dir = exemplar_dir;
  int rc = 0;
  int killed_index = -1;
  std::vector<cluster::ClusterResponse> responses;
  {
    cluster::ClusterService service(ccfg, std::move(fleet));
    const serve::OperatorKey key{path, 0, 0.0};
    auto make_req = [&](int j, bool trace = false) {
      cluster::ClusterRequest req;
      req.op = key;
      req.kind = mode == "adjoint" ? serve::RequestKind::kAdjoint
                                   : serve::RequestKind::kLsqr;
      req.vsrc = static_cast<index_t>(j) % nr;
      req.rhs = mdd::virtual_source_rhs(data, req.vsrc);
      req.lsqr.max_iters = iters;
      req.trace = trace;
      return req;
    };

    // Live fleet view: a background poller drives kHealth frames against
    // every worker and repaints a top-like summary (cleared in-place on a
    // tty, appended when piped) until the run completes.
    std::atomic<bool> watch_stop{false};
    std::thread watch_thread;
    if (watch_ms > 0) {
      watch_thread = std::thread([&] {
        const bool tty = ::isatty(1) != 0;
        while (!watch_stop.load(std::memory_order_relaxed)) {
          const std::string view =
              format_fleet_view(service.fleet_health(), service.slo_window());
          if (tty) std::printf("\033[2J\033[H");
          std::fwrite(view.data(), 1, view.size(), stdout);
          std::fflush(stdout);
          for (int spin = 0;
               spin * 25 < watch_ms &&
               !watch_stop.load(std::memory_order_relaxed);
               ++spin) {
            std::this_thread::sleep_for(std::chrono::milliseconds(25));
          }
        }
      });
    }

    // First request runs alone so a --kill-worker run kills a fleet with
    // a warm placement: mid-service, not mid-load. It is also the traced
    // request: quiescent, so the merged timeline is one clean solve.
    responses.push_back(
        service.submit(make_req(0, !trace_merged_out.empty())).response.get());
    if (!trace_merged_out.empty()) {
      if (responses.back().trace_json.empty()) {
        std::fprintf(stderr, "cluster: traced request produced no timeline "
                             "(status %s)\n",
                     cluster::to_string(responses.back().status));
        rc = 2;
      } else if (!write_text_file(trace_merged_out,
                                  responses.back().trace_json, "cluster")) {
        rc = 2;
      } else {
        std::printf("cluster: wrote merged trace (%zu bytes) to %s\n",
                    responses.back().trace_json.size(),
                    trace_merged_out.c_str());
      }
    }
    if (kill_worker) {
      killed_index = workers - 1;
      const pid_t victim = pids[static_cast<std::size_t>(killed_index)];
      ::kill(victim, SIGKILL);
      int status = 0;
      ::waitpid(victim, &status, 0);
      std::printf("cluster: killed worker %d (pid %ld) mid-run\n",
                  killed_index, static_cast<long>(victim));
    }
    std::vector<cluster::SubmittedRequest> handles;
    for (int j = 1; j < requests; ++j) {
      handles.push_back(service.submit(make_req(j)));
    }
    for (auto& h : handles) responses.push_back(h.response.get());

    if (kill_worker) {
      // The kWorkerFailed solves above dropped the cached placement; this
      // request must replan onto the survivors and succeed.
      auto recovered = service.submit(make_req(requests)).response.get();
      std::printf("cluster: post-kill replan request -> %s\n",
                  cluster::to_string(recovered.status));
      if (recovered.status != cluster::ClusterStatus::kOk) rc = 2;
      responses.push_back(std::move(recovered));
    }

    if (watch_thread.joinable()) {
      watch_stop.store(true, std::memory_order_relaxed);
      watch_thread.join();
    }

    // Health snapshot while the workers are still up: per-worker shard
    // ownership, resident/streamed bytes, stall totals, and the frontend's
    // rolling SLO window, in one JSON document.
    if (!health_out.empty()) {
      const std::string health = service.fleet_health_json();
      if (!write_text_file(health_out, health, "cluster")) {
        rc = 2;
      } else {
        std::printf("cluster: wrote fleet health (%zu bytes) to %s\n",
                    health.size(), health_out.c_str());
      }
    }

    std::printf("%s\n", service.cluster_snapshot().to_json().c_str());
    service.shutdown();
  }

  int ok = 0, failed_typed = 0, other = 0;
  for (const auto& r : responses) {
    if (r.status == cluster::ClusterStatus::kOk) {
      ++ok;
    } else if (r.status == cluster::ClusterStatus::kWorkerFailed) {
      ++failed_typed;
    } else {
      ++other;
      std::fprintf(stderr, "cluster: request %llu -> %s: %s\n",
                   static_cast<unsigned long long>(r.request_id),
                   cluster::to_string(r.status), r.error.c_str());
    }
  }
  std::printf("cluster: %d ok, %d worker-failed, %d other of %zu requests\n",
              ok, failed_typed, other, responses.size());
  // Typed degradation contract: every response resolved (no hang by
  // construction of the futures above), none with an untyped status, and
  // the fleet kept serving — even a kill leaves the replanned survivors
  // answering later requests.
  if (other > 0 || ok == 0) rc = 2;
  if (!kill_worker && failed_typed > 0) rc = 2;

  if (verify && rc == 0) {
    // Single-process reference on a fresh operator: distributed solves
    // must be bitwise identical per virtual source.
    const auto op = info.shared_basis
                        ? io::make_operator(io::load_shared_archive(path))
                        : io::make_operator(io::load_archive(path));
    std::map<index_t, std::vector<float>> reference;
    int mismatched = 0;
    for (const auto& r : responses) {
      if (r.status != cluster::ClusterStatus::kOk) continue;
      auto it = reference.find(r.vsrc);
      if (it == reference.end()) {
        const auto rhs_v = mdd::virtual_source_rhs(data, r.vsrc);
        std::vector<float> ref;
        if (mode == "adjoint") {
          ref = mdd::adjoint_reflectivity(*op, rhs_v);
        } else {
          mdd::LsqrConfig lsqr;
          lsqr.max_iters = iters;
          ref = mdd::solve_mdd(*op, rhs_v, lsqr).x;
        }
        it = reference.emplace(r.vsrc, std::move(ref)).first;
      }
      const auto& ref = it->second;
      if (r.x.size() != ref.size() ||
          std::memcmp(r.x.data(), ref.data(),
                      ref.size() * sizeof(float)) != 0) {
        std::fprintf(stderr,
                     "cluster: vsrc %lld differs from the single-process "
                     "solve\n",
                     static_cast<long long>(r.vsrc));
        ++mismatched;
      }
    }
    std::printf("verify: %d mismatches across %d completed solves\n",
                mismatched, ok);
    if (mismatched > 0) rc = 2;
  }

  // shutdown() asked the surviving workers to exit; reap them, escalating
  // to SIGKILL if one lingers.
  for (std::size_t w = 0; w < pids.size(); ++w) {
    if (static_cast<int>(w) == killed_index) continue;  // already reaped
    int status = 0;
    pid_t reaped = 0;
    for (int spin = 0; spin < 200 && reaped == 0; ++spin) {
      reaped = ::waitpid(pids[w], &status, WNOHANG);
      if (reaped == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
    if (reaped == 0) {
      ::kill(pids[w], SIGKILL);
      ::waitpid(pids[w], &status, 0);
    }
  }
  for (const auto& sock : sockets) {
    std::error_code ec;
    fs::remove(sock, ec);
  }
  return rc;
}

/// End-to-end observability demo: model a small survey, archive it, drive
/// two requests through the solve service (which exercises the cache, the
/// LSQR solver, the MDC operator, and the TLR kernels), and dump both the
/// chrome://tracing file and the process-wide metrics snapshot.
int cmd_trace(const Args& args) {
#ifndef TLRWSE_TRACING_ENABLED
  (void)args;
  std::fprintf(stderr,
               "trace: this build was configured with TLRWSE_TRACING=OFF; "
               "reconfigure with -DTLRWSE_TRACING=ON\n");
  return 1;
#else
  if (!obs::Tracer::enabled()) {
    obs::Tracer::instance().enable(obs::Tracer::kDefaultCapacity,
                                   /*detail=*/true);
  }
  obs::Tracer::instance().set_thread_name("main");
  TLRWSE_TRACE_SPAN("cli.trace", "cli");
  const std::string out = args.get("out", "trace.json");
  const int iters = static_cast<int>(args.integer("iters", 5));
  const auto data = seismic::build_dataset(dataset_config(args));

  namespace fs = std::filesystem;
  const fs::path tmp =
      fs::temp_directory_path() /
      ("tlrwse_trace_" + std::to_string(::getpid()) + ".tlra");
  {
    TLRWSE_TRACE_SPAN("cli.trace.archive", "cli");
    const auto archive = io::build_archive(data, compression_config(args));
    io::save_archive(tmp.string(), archive);
  }

  int rc = 0;
  {
    serve::ServiceConfig cfg;
    cfg.workers = 2;
    serve::SolveService service(cfg);
    const serve::OperatorKey key{tmp.string(), 0, 0.0};
    std::vector<std::future<serve::SolveResponse>> futures;
    const index_t nreq = std::min<index_t>(2, data.num_receivers());
    for (index_t v = 0; v < nreq; ++v) {
      serve::SolveRequest req;
      req.op = key;
      req.vsrc = v;
      req.rhs = mdd::virtual_source_rhs(data, v);
      req.lsqr.max_iters = iters;
      futures.push_back(service.submit(std::move(req)));
    }
    for (auto& f : futures) {
      const auto resp = f.get();
      if (resp.status != serve::SolveStatus::kOk) {
        std::fprintf(stderr, "trace: request failed (%s): %s\n",
                     serve::to_string(resp.status), resp.error.c_str());
        rc = 2;
      }
    }
  }
  fs::remove(tmp);
  if (rc != 0) return rc;

  obs::Tracer& tracer = obs::Tracer::instance();
  tracer.disable();
  if (!tracer.write_json(out)) {
    std::fprintf(stderr, "trace: cannot write %s\n", out.c_str());
    return 2;
  }
  std::printf("trace: wrote %zu events to %s (%llu dropped)\n",
              tracer.event_count(), out.c_str(),
              static_cast<unsigned long long>(tracer.dropped_count()));
  std::printf("%s\n",
              obs::MetricsRegistry::instance().snapshot().to_json().c_str());
  return 0;
#endif
}

void usage() {
  std::fprintf(stderr,
               "usage: tlrwse_cli "
               "<synth|compress|info|mvm|simulate|mdd|archive|solve|serve|"
               "cluster|trace> [--flag value ...] [--trace-out trace.json]\n"
               "see the header of tools/tlrwse_cli.cpp for the flag list\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    const Args args(argc, argv, 2);
    // --trace-out records the whole command with the scoped-span tracer and
    // dumps chrome://tracing JSON on success (any command, not just trace).
    const std::string trace_out = args.get("trace-out", "");
    if (!trace_out.empty()) {
#ifdef TLRWSE_TRACING_ENABLED
      tlrwse::obs::Tracer::instance().enable(
          tlrwse::obs::Tracer::kDefaultCapacity, /*detail=*/true);
      tlrwse::obs::Tracer::instance().set_thread_name("main");
#else
      std::fprintf(stderr,
                   "error: --trace-out requires a build with "
                   "TLRWSE_TRACING=ON (this one has it OFF)\n");
      return 1;
#endif
    }
    int rc = -1;
    if (cmd == "synth") rc = cmd_synth(args);
    else if (cmd == "compress") rc = cmd_compress(args);
    else if (cmd == "info") rc = cmd_info(args);
    else if (cmd == "mvm") rc = cmd_mvm(args);
    else if (cmd == "simulate") rc = cmd_simulate(args);
    else if (cmd == "mdd") rc = cmd_mdd(args);
    else if (cmd == "archive") rc = cmd_archive(args);
    else if (cmd == "solve") rc = cmd_solve(args);
    else if (cmd == "serve") rc = cmd_serve(args);
    else if (cmd == "cluster") rc = cmd_cluster(args);
    else if (cmd == "cluster-worker") rc = cmd_cluster_worker(args);
    else if (cmd == "trace") rc = cmd_trace(args);
    if (rc == -1) {
      usage();
      return 1;
    }
    if (!trace_out.empty() && rc == 0) {
      auto& tracer = tlrwse::obs::Tracer::instance();
      tracer.disable();
      if (!tracer.write_json(trace_out)) {
        std::fprintf(stderr, "error: cannot write trace to %s\n",
                     trace_out.c_str());
        return 2;
      }
      std::printf("trace: wrote %zu events to %s (%llu dropped)\n",
                  tracer.event_count(), trace_out.c_str(),
                  static_cast<unsigned long long>(tracer.dropped_count()));
    }
    if (rc == 0) {
      // A flag nothing consumed is a typo, not a no-op.
      const auto leftover = args.unconsumed();
      if (!leftover.empty()) {
        std::fprintf(stderr, "error: flag(s) not recognised by %s:",
                     cmd.c_str());
        for (const auto& key : leftover) {
          std::fprintf(stderr, " --%s", key.c_str());
        }
        std::fprintf(stderr, "\n");
        return 1;
      }
    }
    return rc;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "failure: %s\n", e.what());
    return 2;
  }
}
