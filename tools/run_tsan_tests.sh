#!/usr/bin/env bash
# Build the concurrency-sensitive tests under ThreadSanitizer and run them
# with a multi-thread OpenMP team, so data races in the parallel MDC
# frequency loop, the workspace pools, and the serving layer (operator
# cache, bounded queue, solve service) are caught even on small machines.
#
# GCC's libgomp synchronises its thread pool with futexes TSan cannot see.
# The user-data fork/join edges are restored with explicit happens-before
# annotations (common/tsan.hpp), but one false-positive class is not
# annotatable: reused pool threads reading the compiler-generated outlined
# argument struct, which the master writes on its own stack at the fork,
# before any point user code runs. Those reports carry "Location is stack
# of <thread>" — main in single-service runs, a solve-service worker when
# the serving layer forks inner OpenMP teams — plus libgomp frames
# (gomp_thread_start / the ._omp_fn clone). Every shared object our
# parallel regions actually race on (pooled workspaces, spectra, tiles,
# cache entries, queue state) is heap-allocated, so this script counts a
# report as a known-benign fork handoff only when it is BOTH on a thread
# stack AND inside libgomp's fork machinery; everything else is real.
#
# Usage: tools/run_tsan_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

# Honour the caller's generator choice; otherwise prefer Ninja when it is
# installed (CI exports CMAKE_GENERATOR=Ninja, dev laptops usually have it).
# A build dir configured with a different generator must not be reused with
# -G, so only pass one on first configure.
GENERATOR_ARGS=()
if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  if [ -n "${CMAKE_GENERATOR:-}" ]; then
    GENERATOR_ARGS=(-G "$CMAKE_GENERATOR")
  elif command -v ninja >/dev/null 2>&1; then
    GENERATOR_ARGS=(-G Ninja)
  fi
fi

TESTS=(test_mdc_parallel test_tlr_mvm test_shared_basis test_serve test_cluster test_oocache test_obs test_common)

cmake -B "$BUILD_DIR" -S . "${GENERATOR_ARGS[@]}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTLRWSE_SANITIZE=thread \
  -DTLRWSE_BUILD_BENCH=OFF \
  -DTLRWSE_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${TESTS[@]}"

# Force a real thread team regardless of the host's core count.
export OMP_NUM_THREADS="${OMP_NUM_THREADS:-4}"
# exitcode=0: test binaries fail on gtest assertions only; races are
# classified below instead of aborting at the first report.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 exitcode=0}"

status=0
for t in "${TESTS[@]}"; do
  echo "=== TSan: $t (OMP_NUM_THREADS=$OMP_NUM_THREADS) ==="
  log="$BUILD_DIR/$t.tsan.log"
  # A hung binary (deadlocked prefetcher, stuck queue) must fail loudly,
  # not stall the job until the CI-level timeout reaps it.
  if ! timeout 600 "$BUILD_DIR/tests/$t" >"$log" 2>&1; then
    echo "FAIL: $t test failures (or 600s timeout)"
    tail -n 40 "$log"
    status=1
  fi
  counts=$(awk '
    /WARNING: ThreadSanitizer: data race/ { in_report = 1; on_stack = 0; in_gomp = 0 }
    in_report && /Location is stack of/ { on_stack = 1 }
    in_report && /gomp_thread_start|\._omp_fn/ { in_gomp = 1 }
    in_report && /^SUMMARY: ThreadSanitizer/ {
      total++; if (!(on_stack && in_gomp)) real++; in_report = 0
    }
    END { printf "%d %d", total + 0, real + 0 }' "$log")
  total=${counts% *}
  real=${counts#* }
  echo "race reports: $total total, $real real," \
       "$((total - real)) known-benign libgomp fork handoff"
  # Explicit per-test verdict: a clean run prints PASS, not just silence,
  # so CI logs show the classifier actually ran on every binary.
  if [ "$real" -gt 0 ]; then
    echo "VERDICT: FAIL  $t -- $real real data races (see $log)"
    grep -B 2 -A 30 "WARNING: ThreadSanitizer" "$log" | head -120 || true
    status=1
  else
    echo "VERDICT: PASS  $t -- 0 real races ($total reports classified)"
  fi
done
if [ "$status" -eq 0 ]; then
  echo "TSan suite: all ${#TESTS[@]} binaries clean"
else
  echo "TSan suite: failures detected"
fi
exit "$status"
