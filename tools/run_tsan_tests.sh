#!/usr/bin/env bash
# Build the concurrency-sensitive tests under ThreadSanitizer and run them
# with a multi-thread OpenMP team, so data races in the parallel MDC
# frequency loop and the workspace pools are caught even on small machines.
#
# GCC's libgomp synchronises its thread pool with futexes TSan cannot see.
# The user-data fork/join edges are restored with explicit happens-before
# annotations (common/tsan.hpp), but one false-positive class is not
# annotatable: reused pool threads reading the compiler-generated outlined
# argument struct, which the master writes on its own stack at the fork,
# after any point user code runs. Those reports always carry
# "Location is stack of main thread"; every shared object our parallel
# regions actually race on (pooled workspaces, spectra, tiles) is
# heap-allocated, so this script counts only reports on other locations
# as real races.
#
# Usage: tools/run_tsan_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DTLRWSE_SANITIZE=thread \
  -DTLRWSE_BUILD_BENCH=OFF \
  -DTLRWSE_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" \
  --target test_mdc_parallel test_tlr_mvm

# Force a real thread team regardless of the host's core count.
export OMP_NUM_THREADS="${OMP_NUM_THREADS:-4}"
# exitcode=0: test binaries fail on gtest assertions only; races are
# classified below instead of aborting at the first report.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=0 exitcode=0}"

status=0
for t in test_mdc_parallel test_tlr_mvm; do
  echo "=== TSan: $t (OMP_NUM_THREADS=$OMP_NUM_THREADS) ==="
  log="$BUILD_DIR/$t.tsan.log"
  if ! "$BUILD_DIR/tests/$t" >"$log" 2>&1; then
    echo "FAIL: $t test failures"
    tail -n 40 "$log"
    status=1
  fi
  counts=$(awk '
    /WARNING: ThreadSanitizer: data race/ { in_report = 1; benign = 0 }
    in_report && /Location is stack of main thread/ { benign = 1 }
    in_report && /^SUMMARY: ThreadSanitizer/ {
      total++; if (!benign) real++; in_report = 0
    }
    END { printf "%d %d", total + 0, real + 0 }' "$log")
  total=${counts% *}
  real=${counts#* }
  echo "race reports: $total total, $real real," \
       "$((total - real)) known-benign libgomp fork handoff"
  if [ "$real" -gt 0 ]; then
    echo "FAIL: $t real data races (see $log)"
    grep -B 2 -A 30 "WARNING: ThreadSanitizer" "$log" | head -120
    status=1
  fi
done
exit "$status"
