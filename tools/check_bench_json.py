#!/usr/bin/env python3
"""Schema checker for the JSON-lines output of the tlrwse benchmarks.

Each bench prints one JSON object per line: a header line carrying a
"bench" key that names the schema, followed by one or more data lines.
CI pipes the saved output of bench_mdc_throughput, bench_serve_throughput,
and bench_obs_overhead through this script so a silently reshaped or
NaN-poisoned result fails the job instead of landing in an artifact.

Usage: check_bench_json.py FILE [FILE...]
Exit status: 0 when every file validates, 1 otherwise (details on stderr).
Stdlib only.
"""

import json
import math
import sys

# bench name -> (required header keys, required data-line keys)
SCHEMAS = {
    "mdc_throughput": (
        {"bench", "nt", "num_freq", "ns", "nr", "kernel"},
        {"threads", "sec_per_apply_pair", "applies_per_sec", "speedup_vs_1"},
    ),
    "serve_throughput": (
        {"bench"},
        {
            "clients",
            "completed",
            "rejected",
            "wall_s",
            "requests_per_sec",
            "batches",
            "coalesced_requests",
            "cache_hit_rate",
            "latency_p50_s",
            "latency_p95_s",
            "latency_p99_s",
            "latency_mean_s",
            "queue_wait_p95_s",
        },
    ),
    "cluster_throughput": (
        {"bench", "nt", "num_freq", "ns", "nr", "clients", "mode"},
        {
            "workers",
            "completed",
            "failed",
            "wall_s",
            "requests_per_sec",
            "speedup_vs_1",
        },
    ),
    "obs_overhead": (
        {"bench", "nt", "num_freq", "ns", "nr", "reps", "trials"},
        {
            "min_baseline_s",
            "min_traced_s",
            "overhead_pct",
            "detail_overhead_pct",
            "events_recorded",
            "pass_lt_2pct",
            "min_sim_baseline_s",
            "min_sim_recorded_s",
            "sim_overhead_pct",
            "sim_chunks",
            "sim_pass_lt_2pct",
            "costmodel_overhead_pct",
            "min_request_s",
            "request_overhead_pct",
            "request_pass_lt_2pct",
        },
    ),
    "kernels": (
        {"bench", "simd_compiled", "simd_level", "peak_gflops"},
        {
            "row",
            "m",
            "n",
            "nrhs",
            "gflops",
            "pct_of_peak",
            "speedup",
            "speedup_8rhs",
        },
    ),
    "ablation_precision": (
        {"bench", "nt", "num_freq", "ns", "nr", "nb", "acc"},
        {
            "row",
            "saving",
            "stored_mb",
            "fp32_mb",
            "tiles_fp32",
            "tiles_fp16",
            "tiles_bf16",
            "nmse",
        },
    ),
    "table3_bandwidth": (
        {"bench"},
        {
            "row",
            "nb",
            "acc",
            "stack_width",
            "systems",
            "relative_pbs",
            "absolute_pbs",
            "pflops",
        },
    ),
    "oocache": (
        {"bench", "nt", "num_freq", "ns", "nr", "payload_mb", "pairs", "nrhs"},
        {
            "budget",
            "budget_mb",
            "shards",
            "window_mb",
            "applies_per_sec",
            "no_prefetch_applies_per_sec",
            "pct_of_resident",
            "prefetch_speedup",
            "hits",
            "misses",
            "loads",
            "evictions",
            "bytes_streamed_mb",
            "stall_s",
            "bitwise",
        },
    ),
    "shared_basis": (
        {"bench", "simd_compiled", "simd_level", "m", "n", "nb", "num_freq", "acc"},
        {
            "row",
            "band_width",
            "shared_mb",
            "per_freq_mb",
            "storage_ratio",
            "max_rel_err",
            "per_freq_rel_err",
            "shared_apply_s",
            "per_freq_apply_s",
            "throughput_ratio",
        },
    ),
}

# Extra keys required on specific rows (matched by their "row" value).
ROW_EXTRA_KEYS = {
    ("table3_bandwidth", "headline48"): {
        "rel_err_pct",
        "abs_err_pct",
        "within_1pct",
    },
}


def check_meta(path, lineno, header):
    """Validates the v2 header metadata when schema_version is present."""
    ok = True
    version = header.get("schema_version")
    if version is None:
        return ok  # v1 headers carry no metadata
    if not isinstance(version, int) or isinstance(version, bool):
        return fail(path, lineno, f"schema_version must be an int, got {version!r}")
    if version < 2:
        return fail(path, lineno, f"schema_version must be >= 2, got {version}")
    meta = header.get("meta")
    if not isinstance(meta, dict):
        return fail(path, lineno, "schema_version 2 header requires a 'meta' object")
    for key, want in (("git_sha", str), ("compiler", str), ("threads", int)):
        value = meta.get(key)
        if not isinstance(value, want) or isinstance(value, bool):
            ok = fail(
                path,
                lineno,
                f"meta.{key} must be {want.__name__}, got {value!r}",
            )
    return ok


def fail(path, lineno, msg):
    print(f"{path}:{lineno}: {msg}", file=sys.stderr)
    return False


def check_numbers_finite(path, lineno, obj):
    ok = True
    for key, value in obj.items():
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and not math.isfinite(value):
            ok = fail(path, lineno, f"non-finite value for {key!r}: {value}")
    return ok


def check_file(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = [ln.strip() for ln in fh]
    except OSError as exc:
        return fail(path, 0, f"cannot read: {exc}")
    lines = [(i + 1, ln) for i, ln in enumerate(lines) if ln]
    if not lines:
        return fail(path, 0, "empty file")

    objs = []
    ok = True
    for lineno, line in lines:
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            ok = fail(path, lineno, f"invalid JSON: {exc}")
            continue
        if not isinstance(obj, dict):
            ok = fail(path, lineno, "line is not a JSON object")
            continue
        objs.append((lineno, obj))
    if not ok or not objs:
        return False

    head_line, header = objs[0]
    bench = header.get("bench")
    if bench not in SCHEMAS:
        return fail(
            path,
            head_line,
            f"header line must carry a known 'bench' key, got {bench!r} "
            f"(known: {sorted(SCHEMAS)})",
        )
    header_keys, data_keys = SCHEMAS[bench]

    missing = header_keys - header.keys()
    if missing:
        ok = fail(path, head_line, f"header missing keys: {sorted(missing)}")
    ok = check_numbers_finite(path, head_line, header) and ok
    ok = check_meta(path, head_line, header) and ok

    data = objs[1:]
    if not data:
        ok = fail(path, head_line, "no data lines after the header")
    for lineno, obj in data:
        missing = data_keys - obj.keys()
        extra = ROW_EXTRA_KEYS.get((bench, obj.get("row")))
        if extra:
            missing |= extra - obj.keys()
        if missing:
            ok = fail(path, lineno, f"data line missing keys: {sorted(missing)}")
        ok = check_numbers_finite(path, lineno, obj) and ok

    if ok:
        print(f"{path}: ok ({bench}, {len(data)} data line(s))")
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ok = True
    for path in argv[1:]:
        ok = check_file(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
