#!/usr/bin/env python3
"""Perf-history bookkeeping for the tlrwse benchmarks.

Each benchmark emits JSON-lines (one header object carrying "bench" +
schema_version 2 metadata, then one object per data row). This script
folds such run files into per-bench history documents named
BENCH_<name>.json so a trajectory of runs — across commits, compilers,
machines — lives in one reviewable file that bench_compare.py can diff.

Commands:
  append RUN_FILE [--dir DIR]
      Appends the run to DIR/BENCH_<name>.json (default DIR: cwd),
      creating the history file on first use. The run's header metadata
      (git sha, compiler, threads) and a UTC timestamp are stored with
      every entry.
  show HISTORY_FILE [--metric KEY]
      Prints one line per recorded run: timestamp, git sha, and either
      the row count or — with --metric — each row's value of KEY.

Exit status: 0 on success, 1 on malformed input. Stdlib only.
"""

import argparse
import datetime
import json
import os
import sys


def read_run(path):
    """Parses a JSON-lines bench run into (header, data_rows)."""
    with open(path, "r", encoding="utf-8") as fh:
        objs = [json.loads(ln) for ln in fh if ln.strip()]
    if not objs or "bench" not in objs[0]:
        raise ValueError(f"{path}: first line must be a bench header")
    return objs[0], objs[1:]


def history_path(directory, bench):
    return os.path.join(directory, f"BENCH_{bench}.json")


def load_history(path, bench):
    if not os.path.exists(path):
        return {"bench": bench, "runs": []}
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("bench") != bench:
        raise ValueError(
            f"{path}: history is for bench {doc.get('bench')!r}, not {bench!r}"
        )
    return doc


def cmd_append(args):
    header, data = read_run(args.run_file)
    bench = header["bench"]
    path = history_path(args.dir, bench)
    doc = load_history(path, bench)
    doc["runs"].append(
        {
            "recorded_utc": datetime.datetime.now(datetime.timezone.utc)
            .replace(microsecond=0)
            .isoformat(),
            "meta": header.get("meta", {}),
            "header": header,
            "data": data,
        }
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    print(f"{path}: appended run #{len(doc['runs'])} ({len(data)} row(s))")
    return 0


def cmd_show(args):
    with open(args.history_file, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    print(f"bench: {doc.get('bench')}  runs: {len(doc.get('runs', []))}")
    for i, run in enumerate(doc.get("runs", [])):
        meta = run.get("meta", {})
        stamp = run.get("recorded_utc", "?")
        sha = meta.get("git_sha", "unknown")[:12]
        if args.metric:
            values = [
                f"{row[args.metric]:g}" if isinstance(row.get(args.metric), float)
                else str(row.get(args.metric))
                for row in run.get("data", [])
                if args.metric in row
            ]
            detail = f"{args.metric}=[{', '.join(values)}]" if values else (
                f"{args.metric}: absent"
            )
        else:
            detail = f"{len(run.get('data', []))} row(s)"
        print(f"  #{i + 1}  {stamp}  {sha}  {detail}")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    p_append = sub.add_parser("append", help="append a run file to its history")
    p_append.add_argument("run_file")
    p_append.add_argument("--dir", default=".", help="history directory")
    p_show = sub.add_parser("show", help="print the trajectory of a history file")
    p_show.add_argument("history_file")
    p_show.add_argument("--metric", help="print this metric's per-row values")
    args = parser.parse_args(argv[1:])
    try:
        return {"append": cmd_append, "show": cmd_show}[args.command](args)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
