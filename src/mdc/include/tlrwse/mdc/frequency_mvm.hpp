// Per-frequency MVM backends of the MDC kernel K.
//
// The MDC operator applies, at every retained frequency, the kernel matrix
// K_f to the transformed wavefield. The paper's contribution is swapping
// the dense backend for TLR-MVM; both are provided here behind one
// interface, plus the 3-phase/fused kernel choice and the real-split path.
//
// Two apply signatures exist: the workspace-carrying overloads are the hot
// path (the MDC frequency loop hands each OpenMP thread its own
// FrequencyWorkspace, so steady-state applies never allocate), and the
// legacy two-argument forms remain valid for casual callers — TlrMvm
// routes them through an internal per-thread pool rather than allocating.
#pragma once

#include <memory>
#include <span>

#include "tlrwse/common/workspace_pool.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/simd.hpp"
#include "tlrwse/tlr/mvm_plan.hpp"
#include "tlrwse/tlr/real_split.hpp"
#include "tlrwse/tlr/shared_basis.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace tlrwse::mdc {

/// Reusable scratch for one FrequencyMvm apply. Backends use the members
/// they need (DenseMvm none, TlrMvm the plan, TLR, and/or split buffers);
/// one instance must not be shared by concurrent calls.
struct FrequencyWorkspace {
  tlr::MvmWorkspace<cf32> tlr;
  tlr::RealSplitWorkspace<float> split;
  tlr::PlanWorkspace plan;
  tlr::SharedBasisWorkspace<cf32> shared;
};

/// One frequency slice of the kernel: y = K x and y = K^H x.
class FrequencyMvm {
 public:
  virtual ~FrequencyMvm() = default;
  [[nodiscard]] virtual index_t rows() const = 0;
  [[nodiscard]] virtual index_t cols() const = 0;
  virtual void apply(std::span<const cf32> x, std::span<cf32> y) const = 0;
  virtual void apply_adjoint(std::span<const cf32> x,
                             std::span<cf32> y) const = 0;
  /// Workspace-carrying overloads; the default forwards to the legacy
  /// signature for backends with no scratch of their own.
  virtual void apply(std::span<const cf32> x, std::span<cf32> y,
                     FrequencyWorkspace& /*ws*/) const {
    apply(x, y);
  }
  virtual void apply_adjoint(std::span<const cf32> x, std::span<cf32> y,
                             FrequencyWorkspace& /*ws*/) const {
    apply_adjoint(x, y);
  }
  /// Multi-RHS forms: X holds nrhs input vectors back to back (cols() apart
  /// for apply, rows() apart for the adjoint), Y the matching outputs. The
  /// default loops over single-RHS applies; backends with a real multi-RHS
  /// kernel (TlrMvm's plan) override to amortise one sweep over the
  /// operator across all RHS. Every RHS column must equal the
  /// corresponding single-RHS call bitwise.
  virtual void apply_batch(std::span<const cf32> X, std::span<cf32> Y,
                           index_t nrhs, FrequencyWorkspace& ws) const {
    const std::size_t nin = static_cast<std::size_t>(cols());
    const std::size_t nout = static_cast<std::size_t>(rows());
    for (index_t r = 0; r < nrhs; ++r) {
      apply(X.subspan(static_cast<std::size_t>(r) * nin, nin),
            Y.subspan(static_cast<std::size_t>(r) * nout, nout), ws);
    }
  }
  virtual void apply_adjoint_batch(std::span<const cf32> X, std::span<cf32> Y,
                                   index_t nrhs, FrequencyWorkspace& ws) const {
    const std::size_t nin = static_cast<std::size_t>(rows());
    const std::size_t nout = static_cast<std::size_t>(cols());
    for (index_t r = 0; r < nrhs; ++r) {
      apply_adjoint(X.subspan(static_cast<std::size_t>(r) * nin, nin),
                    Y.subspan(static_cast<std::size_t>(r) * nout, nout), ws);
    }
  }
};

/// Dense reference backend.
class DenseMvm final : public FrequencyMvm {
 public:
  explicit DenseMvm(la::MatrixCF K) : K_(std::move(K)) {}
  using FrequencyMvm::apply;
  using FrequencyMvm::apply_adjoint;
  [[nodiscard]] index_t rows() const override { return K_.rows(); }
  [[nodiscard]] index_t cols() const override { return K_.cols(); }
  void apply(std::span<const cf32> x, std::span<cf32> y) const override {
    la::gemv(K_, x, y);
  }
  void apply_adjoint(std::span<const cf32> x, std::span<cf32> y) const override {
    la::gemv_adjoint(K_, x, y);
  }

 private:
  la::MatrixCF K_;
};

enum class TlrKernel { kThreePhase, kFused, kRealSplit };

/// TLR backend over precomputed stacks; kernel variant selectable.
///
/// When the build carries the SIMD engine (TLRWSE_SIMD=ON), construction
/// also compiles an MvmPlan — the arena + shuffle-program execution form —
/// and every apply routes through it, whatever `kernel` names; the scalar
/// kernel variants stay reachable through the free tlr:: functions. With
/// TLRWSE_SIMD=OFF no plan exists and the selected scalar variant runs,
/// bit-identical to the pre-SIMD tree.
class TlrMvm final : public FrequencyMvm {
 public:
  TlrMvm(tlr::StackedTlr<cf32> stacks, TlrKernel kernel)
      : stacks_(std::move(stacks)), kernel_(kernel) {
    if (la::simd::compiled_in()) {
      plan_ = std::make_unique<tlr::MvmPlan>(stacks_);
    } else if (kernel_ == TlrKernel::kRealSplit) {
      split_ = std::make_unique<tlr::RealSplitStacks<float>>(stacks_);
    }
  }
  [[nodiscard]] index_t rows() const override { return stacks_.grid().rows(); }
  [[nodiscard]] index_t cols() const override { return stacks_.grid().cols(); }
  void apply(std::span<const cf32> x, std::span<cf32> y) const override {
    apply(x, y, pool_.local());
  }
  void apply_adjoint(std::span<const cf32> x, std::span<cf32> y) const override {
    apply_adjoint(x, y, pool_.local());
  }
  void apply(std::span<const cf32> x, std::span<cf32> y,
             FrequencyWorkspace& ws) const override {
    if (plan_) {
      plan_->apply(x, y, ws.plan);
      return;
    }
    switch (kernel_) {
      case TlrKernel::kThreePhase:
        tlr::tlr_mvm_3phase(stacks_, x, y, ws.tlr);
        break;
      case TlrKernel::kFused:
        tlr::tlr_mvm_fused(stacks_, x, y, ws.tlr);
        break;
      case TlrKernel::kRealSplit:
        tlr::tlr_mvm_real_split(*split_, x, y, ws.split);
        break;
    }
  }
  void apply_adjoint(std::span<const cf32> x, std::span<cf32> y,
                     FrequencyWorkspace& ws) const override {
    if (plan_) {
      plan_->apply_adjoint(x, y, ws.plan);
      return;
    }
    tlr::tlr_mvm_adjoint(stacks_, x, y, ws.tlr);
  }
  void apply_batch(std::span<const cf32> X, std::span<cf32> Y, index_t nrhs,
                   FrequencyWorkspace& ws) const override {
    if (plan_) {
      plan_->apply_multi(X, Y, nrhs, ws.plan);
      return;
    }
    FrequencyMvm::apply_batch(X, Y, nrhs, ws);
  }
  void apply_adjoint_batch(std::span<const cf32> X, std::span<cf32> Y,
                           index_t nrhs,
                           FrequencyWorkspace& ws) const override {
    if (plan_) {
      plan_->apply_adjoint_multi(X, Y, nrhs, ws.plan);
      return;
    }
    FrequencyMvm::apply_adjoint_batch(X, Y, nrhs, ws);
  }
  /// Test hook: number of pooled per-thread workspaces materialised by
  /// legacy-signature calls.
  [[nodiscard]] std::size_t pooled_workspaces() const {
    return pool_.active_slots();
  }
  /// The compiled plan, or nullptr when the build has no SIMD engine.
  [[nodiscard]] const tlr::MvmPlan* plan() const noexcept {
    return plan_.get();
  }

 private:
  tlr::StackedTlr<cf32> stacks_;
  TlrKernel kernel_;
  std::unique_ptr<tlr::RealSplitStacks<float>> split_;
  std::unique_ptr<tlr::MvmPlan> plan_;
  WorkspacePool<FrequencyWorkspace> pool_;
};

/// Shared-basis backend: one frequency slice of a band whose tile bases
/// are shared (tlr::SharedBasisStackedTlr). All slices of one band hold
/// the SAME band object and — when the build carries the SIMD engine —
/// the SAME compiled SharedBasisMvmPlan, so the basis arena is laid out
/// once and stays hot as the MDC frequency loop walks the band; only the
/// small per-frequency core program changes between slices. Construct the
/// band's kernels with make_shared_basis_kernels().
class SharedBasisMvm final : public FrequencyMvm {
 public:
  SharedBasisMvm(std::shared_ptr<const tlr::SharedBasisStackedTlr<cf32>> band,
                 std::shared_ptr<const tlr::SharedBasisMvmPlan> plan,
                 index_t freq)
      : band_(std::move(band)), plan_(std::move(plan)), freq_(freq) {
    TLRWSE_REQUIRE(band_ != nullptr, "SharedBasisMvm: null band");
    TLRWSE_REQUIRE(freq_ >= 0 && freq_ < band_->num_freqs(),
                   "SharedBasisMvm: frequency index out of range");
  }
  [[nodiscard]] index_t rows() const override { return band_->rows(); }
  [[nodiscard]] index_t cols() const override { return band_->cols(); }
  void apply(std::span<const cf32> x, std::span<cf32> y) const override {
    apply(x, y, pool_.local());
  }
  void apply_adjoint(std::span<const cf32> x, std::span<cf32> y) const override {
    apply_adjoint(x, y, pool_.local());
  }
  void apply(std::span<const cf32> x, std::span<cf32> y,
             FrequencyWorkspace& ws) const override {
    if (plan_) {
      plan_->apply(freq_, x, y, ws.plan);
      return;
    }
    band_->apply(freq_, x, y, ws.shared);
  }
  void apply_adjoint(std::span<const cf32> x, std::span<cf32> y,
                     FrequencyWorkspace& ws) const override {
    if (plan_) {
      plan_->apply_adjoint(freq_, x, y, ws.plan);
      return;
    }
    band_->apply_adjoint(freq_, x, y, ws.shared);
  }
  void apply_batch(std::span<const cf32> X, std::span<cf32> Y, index_t nrhs,
                   FrequencyWorkspace& ws) const override {
    if (plan_) {
      plan_->apply_multi(freq_, X, Y, nrhs, ws.plan);
      return;
    }
    FrequencyMvm::apply_batch(X, Y, nrhs, ws);
  }
  void apply_adjoint_batch(std::span<const cf32> X, std::span<cf32> Y,
                           index_t nrhs,
                           FrequencyWorkspace& ws) const override {
    if (plan_) {
      plan_->apply_adjoint_multi(freq_, X, Y, nrhs, ws.plan);
      return;
    }
    FrequencyMvm::apply_adjoint_batch(X, Y, nrhs, ws);
  }
  [[nodiscard]] index_t freq() const noexcept { return freq_; }
  [[nodiscard]] const tlr::SharedBasisStackedTlr<cf32>& band() const {
    return *band_;
  }
  /// The band-shared plan, or nullptr when the build has no SIMD engine.
  [[nodiscard]] const tlr::SharedBasisMvmPlan* plan() const noexcept {
    return plan_.get();
  }

 private:
  std::shared_ptr<const tlr::SharedBasisStackedTlr<cf32>> band_;
  std::shared_ptr<const tlr::SharedBasisMvmPlan> plan_;
  index_t freq_;
  WorkspacePool<FrequencyWorkspace> pool_;
};

/// Builds one FrequencyMvm per frequency of the band, all sharing the band
/// object and (with SIMD compiled in) one SharedBasisMvmPlan.
inline std::vector<std::unique_ptr<FrequencyMvm>> make_shared_basis_kernels(
    std::shared_ptr<const tlr::SharedBasisStackedTlr<cf32>> band) {
  TLRWSE_REQUIRE(band != nullptr, "make_shared_basis_kernels: null band");
  std::shared_ptr<const tlr::SharedBasisMvmPlan> plan;
  if (la::simd::compiled_in()) {
    plan = std::make_shared<const tlr::SharedBasisMvmPlan>(*band);
  }
  std::vector<std::unique_ptr<FrequencyMvm>> kernels;
  kernels.reserve(static_cast<std::size_t>(band->num_freqs()));
  for (index_t f = 0; f < band->num_freqs(); ++f) {
    kernels.push_back(std::make_unique<SharedBasisMvm>(band, plan, f));
  }
  return kernels;
}

}  // namespace tlrwse::mdc
