// Cooperative cancellation for long-running operator applies.
//
// A CancelScope installs a thread-local hook for the duration of one call
// chain; MdcOperator polls it between per-frequency MVMs so a deadline or a
// remote cancel interrupts an apply mid-batch instead of only between LSQR
// iterations. The hook must be safe to call from any thread: the frequency
// loop captures it once before entering its OpenMP region and every team
// member polls the same callable.
//
// When the hook fires, the apply finishes draining its parallel region
// (skipping remaining MVMs) and then throws CancelledError, leaving the
// output buffer unspecified. Callers translate CancelledError into their
// own typed status (the solve service maps it to kDeadlineExceeded, the
// cluster worker to a kCancelled reply).
#pragma once

#include <functional>
#include <stdexcept>
#include <utility>

namespace tlrwse::mdc {

/// Thrown by cancellable operations when the installed hook reports stop.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("operation cancelled") {}
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

/// RAII installer of a thread-local cancellation hook. Scopes nest: the
/// innermost scope wins for the thread that created it, and destruction
/// restores the previous hook.
class CancelScope {
 public:
  using Hook = std::function<bool()>;

  explicit CancelScope(Hook hook)
      : previous_(current_), hook_(std::move(hook)) {
    current_ = hook_ ? &hook_ : previous_;
  }

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  ~CancelScope() { current_ = previous_; }

  /// The hook installed on the calling thread, or nullptr. The returned
  /// pointer stays valid for the lifetime of the innermost scope; capture
  /// it before handing work to other threads.
  [[nodiscard]] static const Hook* current() noexcept { return current_; }

  /// True when a hook is installed on this thread and it reports stop.
  [[nodiscard]] static bool cancelled() {
    return current_ != nullptr && (*current_)();
  }

 private:
  static inline thread_local const Hook* current_ = nullptr;
  const Hook* previous_;
  Hook hook_;
};

}  // namespace tlrwse::mdc
