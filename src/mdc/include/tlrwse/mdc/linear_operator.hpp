// Abstract real linear operator, the interface consumed by the LSQR solver.
#pragma once

#include <span>

#include "tlrwse/common/types.hpp"

namespace tlrwse::mdc {

/// A real linear map A : R^cols -> R^rows with an exact adjoint.
/// Implementations must satisfy <A x, y> == <x, A^T y> to solver precision
/// (verified by the dot test in the test suite).
class LinearOperator {
 public:
  virtual ~LinearOperator() = default;

  [[nodiscard]] virtual index_t rows() const = 0;
  [[nodiscard]] virtual index_t cols() const = 0;

  /// y = A x.
  virtual void apply(std::span<const float> x, std::span<float> y) const = 0;
  /// x = A^T y.
  virtual void apply_adjoint(std::span<const float> y,
                             std::span<float> x) const = 0;
};

}  // namespace tlrwse::mdc
