// The Multi-Dimensional Convolution operator y = F^H K F x (Eqn. 2).
//
// x is a time-domain wavefield over receivers (nt x nR, column-major per
// trace), y over sources (nt x nS). Forward: batched rFFT along time, one
// kernel MVM per retained frequency, Hermitian-symmetric inverse rFFT.
// The adjoint runs the same pipeline with K^H: with the scaling conventions
// of rfft/irfft (forward unnormalised, inverse 1/nt, band excluding DC and
// Nyquist, Hermitian doubling in irfft) the composition irfft . K^H . rfft
// is the EXACT real adjoint of irfft . K . rfft — the (2/nt) factors of the
// two directions cancel identically, so the dot test holds to round-off.
//
// The per-frequency kernel MVMs are independent (each frequency owns its
// own rFFT bin), so the kernel loop runs OpenMP-parallel with one
// FrequencyWorkspace + gather/scatter scratch per thread, and all page and
// FFT buffers are pooled: after a warm-up apply, repeated applies — the
// steady state of an LSQR/CGLS solve — perform no heap allocation.
#pragma once

#include <memory>
#include <vector>

#include "tlrwse/common/workspace_pool.hpp"
#include "tlrwse/fft/fft.hpp"
#include "tlrwse/mdc/frequency_mvm.hpp"
#include "tlrwse/mdc/kernel_stream.hpp"
#include "tlrwse/mdc/linear_operator.hpp"

namespace tlrwse::mdc {

class MdcOperator final : public LinearOperator {
 public:
  /// `freq_bins[q]` is the rFFT bin index of kernel q; bins must be
  /// distinct (each kernel owns its bin — also what makes the frequency
  /// loop race-free) and lie strictly between DC and Nyquist. All kernels
  /// must share dimensions. Wraps the kernels in a one-shard resident
  /// stream, so the frequency loop runs as a single OpenMP region exactly
  /// as before streams existed.
  MdcOperator(index_t nt, std::vector<index_t> freq_bins,
              std::vector<std::unique_ptr<FrequencyMvm>> kernels);

  /// Streamed form: kernels arrive shard by shard from `stream` (e.g. an
  /// out-of-core prefetcher). Given the same kernels, results are bitwise
  /// identical to the resident constructor's — each frequency's arithmetic
  /// and rFFT bin never depend on the sharding; only residency timing
  /// differs. The cancel hook of the calling scope is additionally checked
  /// between shards, before each (possibly blocking) acquire.
  MdcOperator(index_t nt, std::vector<index_t> freq_bins,
              std::shared_ptr<KernelStream> stream);

  [[nodiscard]] index_t rows() const override { return nt_ * ns_; }
  [[nodiscard]] index_t cols() const override { return nt_ * nr_; }
  [[nodiscard]] index_t nt() const noexcept { return nt_; }
  [[nodiscard]] index_t num_sources() const noexcept { return ns_; }
  [[nodiscard]] index_t num_receivers() const noexcept { return nr_; }
  [[nodiscard]] index_t num_freqs() const noexcept { return nq_; }

  void apply(std::span<const float> x, std::span<float> y) const override;
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override;

  /// Batched forms: X holds nrhs wavefields back to back (cols() floats
  /// each for apply, rows() for the adjoint), Y the matching outputs.
  /// FFTs run per RHS, but each frequency kernel sees all RHS as one
  /// multi-RHS panel — one sweep over the operator data instead of nrhs —
  /// which is where coalesced serve requests gain their throughput. Every
  /// RHS column is bitwise identical to the corresponding single apply.
  void apply_batch(std::span<const float> X, std::span<float> Y,
                   index_t nrhs) const;
  void apply_adjoint_batch(std::span<const float> Y, std::span<float> X,
                           index_t nrhs) const;

  /// Caps the OpenMP team size of the frequency loop (0 = runtime default).
  /// Concurrent top-level applies from distinct OS threads each spawn their
  /// own team; a multi-tenant caller (the solve service) divides the
  /// machine between request workers with this instead of oversubscribing
  /// workers x omp_get_max_threads() ways. Thread count never changes the
  /// results (each frequency owns its bin), only the schedule.
  void set_inner_threads(int n) noexcept { inner_threads_ = n < 0 ? 0 : n; }
  [[nodiscard]] int inner_threads() const noexcept { return inner_threads_; }

 private:
  /// Per-thread scratch of the frequency loop: the gathered per-frequency
  /// input/output slices plus the kernel backend's workspace.
  struct FreqScratch {
    std::vector<cf32> xk;  // receiver-side slice at one frequency
    std::vector<cf32> yk;  // source-side slice at one frequency
    FrequencyWorkspace kernel;
  };
  /// Per-call scratch of one apply/apply_adjoint: the full spectral pages
  /// and the batched-FFT buffers. Pooled per calling thread so concurrent
  /// top-level applies of one operator stay independent.
  struct PageScratch {
    std::vector<cf32> xhat;  // receiver-side spectrum, nf_full x nr
    std::vector<cf32> yhat;  // source-side spectrum, nf_full x ns
    fft::BatchWorkspace fft;
  };

  /// The kernel loop shared by the four apply forms: one ascending sweep
  /// over the stream's shards, each shard an OpenMP region over its
  /// frequencies with `per_freq(q, kernel, scratch)` doing the
  /// direction-specific gather/MVM/scatter. Polls the calling scope's
  /// cancel hook between MVMs and between shards; throws CancelledError
  /// on cancellation and rethrows the stream's typed error on a failed
  /// acquire. Defined in the .cpp (only apply* instantiates it).
  template <typename PerFreq>
  void kernel_sweep(PageScratch& ps, const PerFreq& per_freq) const;

  index_t nt_ = 0;
  index_t ns_ = 0;  // kernel rows (sources)
  index_t nr_ = 0;  // kernel cols (receivers)
  index_t nq_ = 0;  // retained frequencies
  int inner_threads_ = 0;  // 0 = OpenMP runtime default team size
  std::vector<index_t> freq_bins_;
  std::shared_ptr<KernelStream> stream_;
  fft::FftPlan plan_;  // time-axis plan, shared by every apply
  WorkspacePool<FreqScratch> freq_scratch_;
  WorkspacePool<PageScratch> page_scratch_;
};

}  // namespace tlrwse::mdc
