// Shard-granular kernel delivery for MdcOperator.
//
// A fully-resident operator owns every FrequencyMvm for its lifetime; an
// out-of-core operator cannot. KernelStream is the seam between the two:
// each apply sweeps the shards [0, num_shards) in ascending order,
// acquiring a shard's kernels right before its frequencies run (the
// shard-ready wait of a prefetching stream) and releasing them right after
// (the stream's cue to evict behind and prefetch ahead). The resident case
// is the degenerate one-shard stream below, which keeps the hot path
// identical to a pre-streaming operator: one acquire, one OpenMP region,
// one release — and the per-frequency arithmetic never depends on the
// sharding, so streamed results are bitwise equal to resident ones.
#pragma once

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "tlrwse/mdc/frequency_mvm.hpp"

namespace tlrwse::mdc {

class KernelStream {
 public:
  virtual ~KernelStream() = default;

  [[nodiscard]] virtual index_t rows() const = 0;  // sources
  [[nodiscard]] virtual index_t cols() const = 0;  // receivers
  [[nodiscard]] virtual index_t num_freqs() const = 0;
  [[nodiscard]] virtual index_t num_shards() const = 0;
  /// Frequencies [first, second) of shard s. Shards must partition
  /// [0, num_freqs) in ascending order (MdcOperator validates this once
  /// at construction).
  [[nodiscard]] virtual std::pair<index_t, index_t> shard_range(
      index_t s) const = 0;

  /// Brackets one full ascending sweep (one apply). A stream may use this
  /// to serialise overlapping sweeps from concurrent applies; end_sweep is
  /// called exactly once per begin_sweep, exceptions included.
  virtual void begin_sweep() = 0;
  virtual void end_sweep() noexcept = 0;

  /// Blocks until shard s is resident (the shard-ready wait) and pins it.
  /// The returned span holds the shard's kernels indexed by
  /// q - shard_range(s).first and stays valid until release_shard(s).
  /// Throws a stream-defined typed error when the shard cannot be
  /// delivered, or CancelledError when the calling scope's deadline fires
  /// first — never returns partial data.
  [[nodiscard]] virtual std::span<FrequencyMvm* const> acquire_shard(
      index_t s) = 0;
  /// Unpins shard s, allowing eviction.
  virtual void release_shard(index_t s) noexcept = 0;
};

/// The degenerate resident stream: owns all kernels and exposes them as
/// one always-ready shard.
class ResidentKernelStream final : public KernelStream {
 public:
  explicit ResidentKernelStream(
      std::vector<std::unique_ptr<FrequencyMvm>> kernels)
      : kernels_(std::move(kernels)) {
    raw_.reserve(kernels_.size());
    for (const auto& k : kernels_) raw_.push_back(k.get());
  }

  [[nodiscard]] index_t rows() const override {
    return kernels_.empty() ? 0 : kernels_.front()->rows();
  }
  [[nodiscard]] index_t cols() const override {
    return kernels_.empty() ? 0 : kernels_.front()->cols();
  }
  [[nodiscard]] index_t num_freqs() const override {
    return static_cast<index_t>(kernels_.size());
  }
  [[nodiscard]] index_t num_shards() const override { return 1; }
  [[nodiscard]] std::pair<index_t, index_t> shard_range(
      index_t) const override {
    return {0, num_freqs()};
  }
  void begin_sweep() override {}
  void end_sweep() noexcept override {}
  [[nodiscard]] std::span<FrequencyMvm* const> acquire_shard(
      index_t) override {
    return raw_;
  }
  void release_shard(index_t) noexcept override {}

  /// Direct access for callers that validate per-kernel dimensions.
  [[nodiscard]] const std::vector<std::unique_ptr<FrequencyMvm>>& kernels()
      const noexcept {
    return kernels_;
  }

 private:
  std::vector<std::unique_ptr<FrequencyMvm>> kernels_;
  std::vector<FrequencyMvm*> raw_;
};

}  // namespace tlrwse::mdc
