// Linear-operator combinators.
//
// The paper (Sec. 3) notes that "the creation of composite modelling
// operators that contain two or more MDC operators leads to different
// applications" (SRME, Marchenko, ...). These combinators build such
// composites from any LinearOperator: chains (A*B), sums (A+B), scaling,
// and diagonal masks (the time-gating preconditioner of Vargas et al.
// [43] used to stabilise time-domain MDD).
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "tlrwse/common/error.hpp"
#include "tlrwse/mdc/linear_operator.hpp"

namespace tlrwse::mdc {

/// C = A * B (apply B first). Adjoint: C^T = B^T A^T.
class ChainedOperator final : public LinearOperator {
 public:
  ChainedOperator(std::shared_ptr<const LinearOperator> a,
                  std::shared_ptr<const LinearOperator> b)
      : a_(std::move(a)), b_(std::move(b)) {
    TLRWSE_REQUIRE(a_ && b_, "null operator");
    TLRWSE_REQUIRE(a_->cols() == b_->rows(),
                   "chain: inner dimensions mismatch");
  }
  [[nodiscard]] index_t rows() const override { return a_->rows(); }
  [[nodiscard]] index_t cols() const override { return b_->cols(); }
  void apply(std::span<const float> x, std::span<float> y) const override {
    std::vector<float> mid(static_cast<std::size_t>(b_->rows()));
    b_->apply(x, std::span<float>(mid));
    a_->apply(mid, y);
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    std::vector<float> mid(static_cast<std::size_t>(a_->cols()));
    a_->apply_adjoint(y, std::span<float>(mid));
    b_->apply_adjoint(mid, x);
  }

 private:
  std::shared_ptr<const LinearOperator> a_;
  std::shared_ptr<const LinearOperator> b_;
};

/// C = A + B (same shapes).
class SumOperator final : public LinearOperator {
 public:
  SumOperator(std::shared_ptr<const LinearOperator> a,
              std::shared_ptr<const LinearOperator> b)
      : a_(std::move(a)), b_(std::move(b)) {
    TLRWSE_REQUIRE(a_ && b_, "null operator");
    TLRWSE_REQUIRE(a_->rows() == b_->rows() && a_->cols() == b_->cols(),
                   "sum: shape mismatch");
  }
  [[nodiscard]] index_t rows() const override { return a_->rows(); }
  [[nodiscard]] index_t cols() const override { return a_->cols(); }
  void apply(std::span<const float> x, std::span<float> y) const override {
    a_->apply(x, y);
    std::vector<float> tmp(y.size());
    b_->apply(x, std::span<float>(tmp));
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += tmp[i];
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    a_->apply_adjoint(y, x);
    std::vector<float> tmp(x.size());
    b_->apply_adjoint(y, std::span<float>(tmp));
    for (std::size_t i = 0; i < x.size(); ++i) x[i] += tmp[i];
  }

 private:
  std::shared_ptr<const LinearOperator> a_;
  std::shared_ptr<const LinearOperator> b_;
};

/// C = alpha * A.
class ScaledOperator final : public LinearOperator {
 public:
  ScaledOperator(std::shared_ptr<const LinearOperator> a, float alpha)
      : a_(std::move(a)), alpha_(alpha) {
    TLRWSE_REQUIRE(a_, "null operator");
  }
  [[nodiscard]] index_t rows() const override { return a_->rows(); }
  [[nodiscard]] index_t cols() const override { return a_->cols(); }
  void apply(std::span<const float> x, std::span<float> y) const override {
    a_->apply(x, y);
    for (float& v : y) v *= alpha_;
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    a_->apply_adjoint(y, x);
    for (float& v : x) v *= alpha_;
  }

 private:
  std::shared_ptr<const LinearOperator> a_;
  float alpha_;
};

/// Diagonal (element-wise) mask/weight operator: y_i = w_i * x_i.
/// Self-adjoint. With 0/1 weights this is the causality/time gate used to
/// precondition time-domain MDD ([43]): model-side gating restricts the
/// solution to physically admissible times.
class DiagonalOperator final : public LinearOperator {
 public:
  explicit DiagonalOperator(std::vector<float> weights)
      : w_(std::move(weights)) {
    TLRWSE_REQUIRE(!w_.empty(), "empty diagonal");
  }
  [[nodiscard]] index_t rows() const override {
    return static_cast<index_t>(w_.size());
  }
  [[nodiscard]] index_t cols() const override { return rows(); }
  void apply(std::span<const float> x, std::span<float> y) const override {
    TLRWSE_REQUIRE(x.size() == w_.size() && y.size() == w_.size(),
                   "diagonal: size mismatch");
    for (std::size_t i = 0; i < w_.size(); ++i) y[i] = w_[i] * x[i];
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    apply(y, x);  // real diagonal: self-adjoint
  }

 private:
  std::vector<float> w_;
};

/// The identity on n elements.
class IdentityOperator final : public LinearOperator {
 public:
  explicit IdentityOperator(index_t n) : n_(n) {
    TLRWSE_REQUIRE(n >= 1, "identity size");
  }
  [[nodiscard]] index_t rows() const override { return n_; }
  [[nodiscard]] index_t cols() const override { return n_; }
  void apply(std::span<const float> x, std::span<float> y) const override {
    TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == n_ &&
                       static_cast<index_t>(y.size()) == n_,
                   "identity: size mismatch");
    std::copy(x.begin(), x.end(), y.begin());
  }
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override {
    apply(y, x);
  }

 private:
  index_t n_;
};

/// Convenience factories.
[[nodiscard]] inline std::shared_ptr<LinearOperator> chain(
    std::shared_ptr<const LinearOperator> a,
    std::shared_ptr<const LinearOperator> b) {
  return std::make_shared<ChainedOperator>(std::move(a), std::move(b));
}
[[nodiscard]] inline std::shared_ptr<LinearOperator> sum(
    std::shared_ptr<const LinearOperator> a,
    std::shared_ptr<const LinearOperator> b) {
  return std::make_shared<SumOperator>(std::move(a), std::move(b));
}
[[nodiscard]] inline std::shared_ptr<LinearOperator> scaled(
    std::shared_ptr<const LinearOperator> a, float alpha) {
  return std::make_shared<ScaledOperator>(std::move(a), alpha);
}

}  // namespace tlrwse::mdc
