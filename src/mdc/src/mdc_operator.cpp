#include "tlrwse/mdc/mdc_operator.hpp"

#include <algorithm>
#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/common/tsan.hpp"
#include "tlrwse/mdc/cancellation.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::mdc {

namespace {
/// Team size for the frequency loop: the caller's cap, or the runtime
/// default when uncapped.
inline int freq_team_size(int cap) {
#ifdef _OPENMP
  return cap > 0 ? cap : omp_get_max_threads();
#else
  (void)cap;
  return 1;
#endif
}

/// Registry handles for the always-on apply metrics; the per-frequency
/// histogram is recorded only while a trace is being captured, so the
/// steady-state cost per apply is three timer pairs and a few sharded adds.
struct ApplyMetrics {
  obs::Counter& applies;
  obs::Counter& adjoints;
  obs::Histogram& apply_s;
  obs::Histogram& fft_s;
  obs::Histogram& kernel_loop_s;
  obs::Histogram& freq_mvm_s;

  static ApplyMetrics& instance() {
    static ApplyMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      return ApplyMetrics{reg.counter("mdc.applies"),
                          reg.counter("mdc.adjoints"),
                          reg.histogram("mdc.apply_s"),
                          reg.histogram("mdc.fft_s"),
                          reg.histogram("mdc.kernel_loop_s"),
                          reg.histogram("mdc.freq_mvm_s")};
    }();
    return m;
  }
};
}  // namespace

MdcOperator::MdcOperator(index_t nt, std::vector<index_t> freq_bins,
                         std::vector<std::unique_ptr<FrequencyMvm>> kernels)
    : nt_(nt),
      freq_bins_(std::move(freq_bins)),
      kernels_(std::move(kernels)),
      plan_(nt >= 1 ? nt : 1) {
  TLRWSE_REQUIRE(nt_ >= 4, "nt too small");
  TLRWSE_REQUIRE(!kernels_.empty(), "need at least one frequency kernel");
  TLRWSE_REQUIRE(freq_bins_.size() == kernels_.size(),
                 "bins/kernels count mismatch");
  ns_ = kernels_.front()->rows();
  nr_ = kernels_.front()->cols();
  for (std::size_t q = 0; q < kernels_.size(); ++q) {
    TLRWSE_REQUIRE(kernels_[q]->rows() == ns_ && kernels_[q]->cols() == nr_,
                   "kernel dimension mismatch at frequency ", q);
    const index_t bin = freq_bins_[q];
    TLRWSE_REQUIRE(bin > 0 && bin < nt_ / 2,
                   "frequency bin must exclude DC and Nyquist, got ", bin);
  }
  std::vector<index_t> sorted(freq_bins_);
  std::sort(sorted.begin(), sorted.end());
  TLRWSE_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "frequency bins must be distinct");
}

void MdcOperator::apply(std::span<const float> x, std::span<float> y) const {
  TLRWSE_TRACE_SPAN("mdc.apply", "mdc");
  ApplyMetrics& met = ApplyMetrics::instance();
  met.applies.add();
  WallTimer apply_timer;
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == cols(), "x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == rows(), "y size");
  const index_t nf_full = nt_ / 2 + 1;
  const auto nq = static_cast<index_t>(kernels_.size());
  PageScratch& ps = page_scratch_.local();

  // F: batched rFFT over receiver traces.
  ps.xhat.resize(static_cast<std::size_t>(nf_full * nr_));
  {
    TLRWSE_TRACE_SPAN("mdc.fft_forward", "mdc");
    WallTimer fft_timer;
    fft::rfft_batch(plan_, x, nr_, std::span<cf32>(ps.xhat), ps.fft);
    met.fft_s.record(fft_timer.seconds());
  }

  // K: per-frequency kernel MVMs into the source-side spectrum. Each
  // frequency reads and writes only its own bin's strided slice, so the
  // loop parallelises with no shared state beyond per-thread scratch.
  ps.yhat.assign(static_cast<std::size_t>(nf_full * ns_), cf32{});
  {
    const std::span<const cf32> xhat(ps.xhat);
    const std::span<cf32> yhat(ps.yhat);
    [[maybe_unused]] const int team = freq_team_size(inner_threads_);
    TLRWSE_TRACE_SPAN("mdc.kernel_loop", "mdc");
    WallTimer kernel_timer;
    const bool trace_freqs = obs::Tracer::detail_enabled();
    // Captured once: the hook lives on the calling thread, but every team
    // member polls it between MVMs so a deadline hit stops the whole batch.
    const CancelScope::Hook* const cancel = CancelScope::current();
    std::atomic<bool> cancelled{false};
    TLRWSE_TSAN_RELEASE(&ps);
#pragma omp parallel num_threads(team)
    {
      TLRWSE_TSAN_ACQUIRE(&ps);
#pragma omp for schedule(static)
      for (index_t q = 0; q < nq; ++q) {
        if (cancel != nullptr) {
          if (cancelled.load(std::memory_order_relaxed)) continue;
          if ((*cancel)()) {
            cancelled.store(true, std::memory_order_relaxed);
            continue;
          }
        }
        const std::uint64_t t0 = trace_freqs ? obs::Tracer::now_ns() : 0;
        FreqScratch& fs = freq_scratch_.local();
        fs.xk.resize(static_cast<std::size_t>(nr_));
        fs.yk.resize(static_cast<std::size_t>(ns_));
        const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
        for (index_t r = 0; r < nr_; ++r) {
          fs.xk[static_cast<std::size_t>(r)] =
              xhat[static_cast<std::size_t>(r * nf_full + bin)];
        }
        kernels_[static_cast<std::size_t>(q)]->apply(fs.xk, fs.yk, fs.kernel);
        for (index_t s = 0; s < ns_; ++s) {
          yhat[static_cast<std::size_t>(s * nf_full + bin)] =
              fs.yk[static_cast<std::size_t>(s)];
        }
        if (trace_freqs) {
          const std::uint64_t dur = obs::Tracer::now_ns() - t0;
          obs::Tracer::instance().complete("mdc.freq_mvm", "mdc", t0, dur);
          met.freq_mvm_s.record(static_cast<double>(dur) * 1e-9);
        }
      }
      TLRWSE_TSAN_RELEASE(&ps);
    }
    TLRWSE_TSAN_ACQUIRE(&ps);
    met.kernel_loop_s.record(kernel_timer.seconds());
    if (cancelled.load(std::memory_order_relaxed)) throw CancelledError();
  }

  // F^H: Hermitian inverse rFFT back to time.
  {
    TLRWSE_TRACE_SPAN("mdc.fft_inverse", "mdc");
    WallTimer fft_timer;
    fft::irfft_batch(plan_, std::span<const cf32>(ps.yhat), ns_, y, ps.fft);
    met.fft_s.record(fft_timer.seconds());
  }
  met.apply_s.record(apply_timer.seconds());
}

void MdcOperator::apply_adjoint(std::span<const float> y,
                                std::span<float> x) const {
  TLRWSE_TRACE_SPAN("mdc.apply_adjoint", "mdc");
  ApplyMetrics& met = ApplyMetrics::instance();
  met.adjoints.add();
  WallTimer apply_timer;
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == rows(), "y size");
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == cols(), "x size");
  const index_t nf_full = nt_ / 2 + 1;
  const auto nq = static_cast<index_t>(kernels_.size());
  PageScratch& ps = page_scratch_.local();

  ps.yhat.resize(static_cast<std::size_t>(nf_full * ns_));
  {
    TLRWSE_TRACE_SPAN("mdc.fft_forward", "mdc");
    WallTimer fft_timer;
    fft::rfft_batch(plan_, y, ns_, std::span<cf32>(ps.yhat), ps.fft);
    met.fft_s.record(fft_timer.seconds());
  }

  ps.xhat.assign(static_cast<std::size_t>(nf_full * nr_), cf32{});
  {
    const std::span<const cf32> yhat(ps.yhat);
    const std::span<cf32> xhat(ps.xhat);
    [[maybe_unused]] const int team = freq_team_size(inner_threads_);
    TLRWSE_TRACE_SPAN("mdc.kernel_loop", "mdc");
    WallTimer kernel_timer;
    const bool trace_freqs = obs::Tracer::detail_enabled();
    const CancelScope::Hook* const cancel = CancelScope::current();
    std::atomic<bool> cancelled{false};
    TLRWSE_TSAN_RELEASE(&ps);
#pragma omp parallel num_threads(team)
    {
      TLRWSE_TSAN_ACQUIRE(&ps);
#pragma omp for schedule(static)
      for (index_t q = 0; q < nq; ++q) {
        if (cancel != nullptr) {
          if (cancelled.load(std::memory_order_relaxed)) continue;
          if ((*cancel)()) {
            cancelled.store(true, std::memory_order_relaxed);
            continue;
          }
        }
        const std::uint64_t t0 = trace_freqs ? obs::Tracer::now_ns() : 0;
        FreqScratch& fs = freq_scratch_.local();
        fs.xk.resize(static_cast<std::size_t>(nr_));
        fs.yk.resize(static_cast<std::size_t>(ns_));
        const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
        for (index_t s = 0; s < ns_; ++s) {
          fs.yk[static_cast<std::size_t>(s)] =
              yhat[static_cast<std::size_t>(s * nf_full + bin)];
        }
        kernels_[static_cast<std::size_t>(q)]->apply_adjoint(fs.yk, fs.xk,
                                                             fs.kernel);
        for (index_t r = 0; r < nr_; ++r) {
          xhat[static_cast<std::size_t>(r * nf_full + bin)] =
              fs.xk[static_cast<std::size_t>(r)];
        }
        if (trace_freqs) {
          const std::uint64_t dur = obs::Tracer::now_ns() - t0;
          obs::Tracer::instance().complete("mdc.freq_mvm", "mdc", t0, dur);
          met.freq_mvm_s.record(static_cast<double>(dur) * 1e-9);
        }
      }
      TLRWSE_TSAN_RELEASE(&ps);
    }
    TLRWSE_TSAN_ACQUIRE(&ps);
    met.kernel_loop_s.record(kernel_timer.seconds());
    if (cancelled.load(std::memory_order_relaxed)) throw CancelledError();
  }

  {
    TLRWSE_TRACE_SPAN("mdc.fft_inverse", "mdc");
    WallTimer fft_timer;
    fft::irfft_batch(plan_, std::span<const cf32>(ps.xhat), nr_, x, ps.fft);
    met.fft_s.record(fft_timer.seconds());
  }
  met.apply_s.record(apply_timer.seconds());
}

void MdcOperator::apply_batch(std::span<const float> X, std::span<float> Y,
                              index_t nrhs) const {
  TLRWSE_TRACE_SPAN("mdc.apply_batch", "mdc");
  ApplyMetrics& met = ApplyMetrics::instance();
  met.applies.add(static_cast<std::uint64_t>(nrhs));
  WallTimer apply_timer;
  TLRWSE_REQUIRE(nrhs >= 1, "nrhs");
  TLRWSE_REQUIRE(static_cast<index_t>(X.size()) == cols() * nrhs, "X size");
  TLRWSE_REQUIRE(static_cast<index_t>(Y.size()) == rows() * nrhs, "Y size");
  const index_t nf_full = nt_ / 2 + 1;
  const auto nq = static_cast<index_t>(kernels_.size());
  const index_t xpage = nf_full * nr_;
  const index_t ypage = nf_full * ns_;
  PageScratch& ps = page_scratch_.local();

  ps.xhat.resize(static_cast<std::size_t>(xpage * nrhs));
  {
    TLRWSE_TRACE_SPAN("mdc.fft_forward", "mdc");
    WallTimer fft_timer;
    for (index_t r = 0; r < nrhs; ++r) {
      fft::rfft_batch(plan_,
                      X.subspan(static_cast<std::size_t>(r * cols()),
                                static_cast<std::size_t>(cols())),
                      nr_,
                      std::span<cf32>(ps.xhat.data() + r * xpage,
                                      static_cast<std::size_t>(xpage)),
                      ps.fft);
    }
    met.fft_s.record(fft_timer.seconds());
  }

  // Per frequency: gather an nr x nrhs panel, one multi-RHS kernel call,
  // scatter back. Same bin-exclusive access pattern as apply(), so the
  // loop parallelises identically.
  ps.yhat.assign(static_cast<std::size_t>(ypage * nrhs), cf32{});
  {
    const std::span<const cf32> xhat(ps.xhat);
    const std::span<cf32> yhat(ps.yhat);
    [[maybe_unused]] const int team = freq_team_size(inner_threads_);
    TLRWSE_TRACE_SPAN("mdc.kernel_loop", "mdc");
    WallTimer kernel_timer;
    const CancelScope::Hook* const cancel = CancelScope::current();
    std::atomic<bool> cancelled{false};
    TLRWSE_TSAN_RELEASE(&ps);
#pragma omp parallel num_threads(team)
    {
      TLRWSE_TSAN_ACQUIRE(&ps);
#pragma omp for schedule(static)
      for (index_t q = 0; q < nq; ++q) {
        if (cancel != nullptr) {
          if (cancelled.load(std::memory_order_relaxed)) continue;
          if ((*cancel)()) {
            cancelled.store(true, std::memory_order_relaxed);
            continue;
          }
        }
        FreqScratch& fs = freq_scratch_.local();
        fs.xk.resize(static_cast<std::size_t>(nr_ * nrhs));
        fs.yk.resize(static_cast<std::size_t>(ns_ * nrhs));
        const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
        for (index_t r = 0; r < nrhs; ++r) {
          for (index_t rec = 0; rec < nr_; ++rec) {
            fs.xk[static_cast<std::size_t>(r * nr_ + rec)] =
                xhat[static_cast<std::size_t>(r * xpage + rec * nf_full +
                                              bin)];
          }
        }
        kernels_[static_cast<std::size_t>(q)]->apply_batch(fs.xk, fs.yk, nrhs,
                                                           fs.kernel);
        for (index_t r = 0; r < nrhs; ++r) {
          for (index_t s = 0; s < ns_; ++s) {
            yhat[static_cast<std::size_t>(r * ypage + s * nf_full + bin)] =
                fs.yk[static_cast<std::size_t>(r * ns_ + s)];
          }
        }
      }
      TLRWSE_TSAN_RELEASE(&ps);
    }
    TLRWSE_TSAN_ACQUIRE(&ps);
    met.kernel_loop_s.record(kernel_timer.seconds());
    if (cancelled.load(std::memory_order_relaxed)) throw CancelledError();
  }

  {
    TLRWSE_TRACE_SPAN("mdc.fft_inverse", "mdc");
    WallTimer fft_timer;
    for (index_t r = 0; r < nrhs; ++r) {
      fft::irfft_batch(plan_,
                       std::span<const cf32>(ps.yhat.data() + r * ypage,
                                             static_cast<std::size_t>(ypage)),
                       ns_,
                       Y.subspan(static_cast<std::size_t>(r * rows()),
                                 static_cast<std::size_t>(rows())),
                       ps.fft);
    }
    met.fft_s.record(fft_timer.seconds());
  }
  met.apply_s.record(apply_timer.seconds());
}

void MdcOperator::apply_adjoint_batch(std::span<const float> Y,
                                      std::span<float> X,
                                      index_t nrhs) const {
  TLRWSE_TRACE_SPAN("mdc.apply_adjoint_batch", "mdc");
  ApplyMetrics& met = ApplyMetrics::instance();
  met.adjoints.add(static_cast<std::uint64_t>(nrhs));
  WallTimer apply_timer;
  TLRWSE_REQUIRE(nrhs >= 1, "nrhs");
  TLRWSE_REQUIRE(static_cast<index_t>(Y.size()) == rows() * nrhs, "Y size");
  TLRWSE_REQUIRE(static_cast<index_t>(X.size()) == cols() * nrhs, "X size");
  const index_t nf_full = nt_ / 2 + 1;
  const auto nq = static_cast<index_t>(kernels_.size());
  const index_t xpage = nf_full * nr_;
  const index_t ypage = nf_full * ns_;
  PageScratch& ps = page_scratch_.local();

  ps.yhat.resize(static_cast<std::size_t>(ypage * nrhs));
  {
    TLRWSE_TRACE_SPAN("mdc.fft_forward", "mdc");
    WallTimer fft_timer;
    for (index_t r = 0; r < nrhs; ++r) {
      fft::rfft_batch(plan_,
                      Y.subspan(static_cast<std::size_t>(r * rows()),
                                static_cast<std::size_t>(rows())),
                      ns_,
                      std::span<cf32>(ps.yhat.data() + r * ypage,
                                      static_cast<std::size_t>(ypage)),
                      ps.fft);
    }
    met.fft_s.record(fft_timer.seconds());
  }

  ps.xhat.assign(static_cast<std::size_t>(xpage * nrhs), cf32{});
  {
    const std::span<const cf32> yhat(ps.yhat);
    const std::span<cf32> xhat(ps.xhat);
    [[maybe_unused]] const int team = freq_team_size(inner_threads_);
    TLRWSE_TRACE_SPAN("mdc.kernel_loop", "mdc");
    WallTimer kernel_timer;
    const CancelScope::Hook* const cancel = CancelScope::current();
    std::atomic<bool> cancelled{false};
    TLRWSE_TSAN_RELEASE(&ps);
#pragma omp parallel num_threads(team)
    {
      TLRWSE_TSAN_ACQUIRE(&ps);
#pragma omp for schedule(static)
      for (index_t q = 0; q < nq; ++q) {
        if (cancel != nullptr) {
          if (cancelled.load(std::memory_order_relaxed)) continue;
          if ((*cancel)()) {
            cancelled.store(true, std::memory_order_relaxed);
            continue;
          }
        }
        FreqScratch& fs = freq_scratch_.local();
        fs.xk.resize(static_cast<std::size_t>(nr_ * nrhs));
        fs.yk.resize(static_cast<std::size_t>(ns_ * nrhs));
        const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
        for (index_t r = 0; r < nrhs; ++r) {
          for (index_t s = 0; s < ns_; ++s) {
            fs.yk[static_cast<std::size_t>(r * ns_ + s)] =
                yhat[static_cast<std::size_t>(r * ypage + s * nf_full + bin)];
          }
        }
        kernels_[static_cast<std::size_t>(q)]->apply_adjoint_batch(
            fs.yk, fs.xk, nrhs, fs.kernel);
        for (index_t r = 0; r < nrhs; ++r) {
          for (index_t rec = 0; rec < nr_; ++rec) {
            xhat[static_cast<std::size_t>(r * xpage + rec * nf_full + bin)] =
                fs.xk[static_cast<std::size_t>(r * nr_ + rec)];
          }
        }
      }
      TLRWSE_TSAN_RELEASE(&ps);
    }
    TLRWSE_TSAN_ACQUIRE(&ps);
    met.kernel_loop_s.record(kernel_timer.seconds());
    if (cancelled.load(std::memory_order_relaxed)) throw CancelledError();
  }

  {
    TLRWSE_TRACE_SPAN("mdc.fft_inverse", "mdc");
    WallTimer fft_timer;
    for (index_t r = 0; r < nrhs; ++r) {
      fft::irfft_batch(plan_,
                       std::span<const cf32>(ps.xhat.data() + r * xpage,
                                             static_cast<std::size_t>(xpage)),
                       nr_,
                       X.subspan(static_cast<std::size_t>(r * cols()),
                                 static_cast<std::size_t>(cols())),
                       ps.fft);
    }
    met.fft_s.record(fft_timer.seconds());
  }
  met.apply_s.record(apply_timer.seconds());
}

}  // namespace tlrwse::mdc
