#include "tlrwse/mdc/mdc_operator.hpp"

#include <algorithm>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/tsan.hpp"

namespace tlrwse::mdc {

namespace {
/// Team size for the frequency loop: the caller's cap, or the runtime
/// default when uncapped.
inline int freq_team_size(int cap) {
#ifdef _OPENMP
  return cap > 0 ? cap : omp_get_max_threads();
#else
  (void)cap;
  return 1;
#endif
}
}  // namespace

MdcOperator::MdcOperator(index_t nt, std::vector<index_t> freq_bins,
                         std::vector<std::unique_ptr<FrequencyMvm>> kernels)
    : nt_(nt),
      freq_bins_(std::move(freq_bins)),
      kernels_(std::move(kernels)),
      plan_(nt >= 1 ? nt : 1) {
  TLRWSE_REQUIRE(nt_ >= 4, "nt too small");
  TLRWSE_REQUIRE(!kernels_.empty(), "need at least one frequency kernel");
  TLRWSE_REQUIRE(freq_bins_.size() == kernels_.size(),
                 "bins/kernels count mismatch");
  ns_ = kernels_.front()->rows();
  nr_ = kernels_.front()->cols();
  for (std::size_t q = 0; q < kernels_.size(); ++q) {
    TLRWSE_REQUIRE(kernels_[q]->rows() == ns_ && kernels_[q]->cols() == nr_,
                   "kernel dimension mismatch at frequency ", q);
    const index_t bin = freq_bins_[q];
    TLRWSE_REQUIRE(bin > 0 && bin < nt_ / 2,
                   "frequency bin must exclude DC and Nyquist, got ", bin);
  }
  std::vector<index_t> sorted(freq_bins_);
  std::sort(sorted.begin(), sorted.end());
  TLRWSE_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "frequency bins must be distinct");
}

void MdcOperator::apply(std::span<const float> x, std::span<float> y) const {
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == cols(), "x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == rows(), "y size");
  const index_t nf_full = nt_ / 2 + 1;
  const auto nq = static_cast<index_t>(kernels_.size());
  PageScratch& ps = page_scratch_.local();

  // F: batched rFFT over receiver traces.
  ps.xhat.resize(static_cast<std::size_t>(nf_full * nr_));
  fft::rfft_batch(plan_, x, nr_, std::span<cf32>(ps.xhat), ps.fft);

  // K: per-frequency kernel MVMs into the source-side spectrum. Each
  // frequency reads and writes only its own bin's strided slice, so the
  // loop parallelises with no shared state beyond per-thread scratch.
  ps.yhat.assign(static_cast<std::size_t>(nf_full * ns_), cf32{});
  const std::span<const cf32> xhat(ps.xhat);
  const std::span<cf32> yhat(ps.yhat);
  [[maybe_unused]] const int team = freq_team_size(inner_threads_);
  TLRWSE_TSAN_RELEASE(&ps);
#pragma omp parallel num_threads(team)
  {
    TLRWSE_TSAN_ACQUIRE(&ps);
#pragma omp for schedule(static)
    for (index_t q = 0; q < nq; ++q) {
      FreqScratch& fs = freq_scratch_.local();
      fs.xk.resize(static_cast<std::size_t>(nr_));
      fs.yk.resize(static_cast<std::size_t>(ns_));
      const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
      for (index_t r = 0; r < nr_; ++r) {
        fs.xk[static_cast<std::size_t>(r)] =
            xhat[static_cast<std::size_t>(r * nf_full + bin)];
      }
      kernels_[static_cast<std::size_t>(q)]->apply(fs.xk, fs.yk, fs.kernel);
      for (index_t s = 0; s < ns_; ++s) {
        yhat[static_cast<std::size_t>(s * nf_full + bin)] =
            fs.yk[static_cast<std::size_t>(s)];
      }
    }
    TLRWSE_TSAN_RELEASE(&ps);
  }
  TLRWSE_TSAN_ACQUIRE(&ps);

  // F^H: Hermitian inverse rFFT back to time.
  fft::irfft_batch(plan_, std::span<const cf32>(ps.yhat), ns_, y, ps.fft);
}

void MdcOperator::apply_adjoint(std::span<const float> y,
                                std::span<float> x) const {
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == rows(), "y size");
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == cols(), "x size");
  const index_t nf_full = nt_ / 2 + 1;
  const auto nq = static_cast<index_t>(kernels_.size());
  PageScratch& ps = page_scratch_.local();

  ps.yhat.resize(static_cast<std::size_t>(nf_full * ns_));
  fft::rfft_batch(plan_, y, ns_, std::span<cf32>(ps.yhat), ps.fft);

  ps.xhat.assign(static_cast<std::size_t>(nf_full * nr_), cf32{});
  const std::span<const cf32> yhat(ps.yhat);
  const std::span<cf32> xhat(ps.xhat);
  [[maybe_unused]] const int team = freq_team_size(inner_threads_);
  TLRWSE_TSAN_RELEASE(&ps);
#pragma omp parallel num_threads(team)
  {
    TLRWSE_TSAN_ACQUIRE(&ps);
#pragma omp for schedule(static)
    for (index_t q = 0; q < nq; ++q) {
      FreqScratch& fs = freq_scratch_.local();
      fs.xk.resize(static_cast<std::size_t>(nr_));
      fs.yk.resize(static_cast<std::size_t>(ns_));
      const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
      for (index_t s = 0; s < ns_; ++s) {
        fs.yk[static_cast<std::size_t>(s)] =
            yhat[static_cast<std::size_t>(s * nf_full + bin)];
      }
      kernels_[static_cast<std::size_t>(q)]->apply_adjoint(fs.yk, fs.xk,
                                                           fs.kernel);
      for (index_t r = 0; r < nr_; ++r) {
        xhat[static_cast<std::size_t>(r * nf_full + bin)] =
            fs.xk[static_cast<std::size_t>(r)];
      }
    }
    TLRWSE_TSAN_RELEASE(&ps);
  }
  TLRWSE_TSAN_ACQUIRE(&ps);

  fft::irfft_batch(plan_, std::span<const cf32>(ps.xhat), nr_, x, ps.fft);
}

}  // namespace tlrwse::mdc
