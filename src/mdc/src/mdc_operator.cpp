#include "tlrwse/mdc/mdc_operator.hpp"

#include <algorithm>
#include <atomic>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/common/tsan.hpp"
#include "tlrwse/mdc/cancellation.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::mdc {

namespace {
/// Team size for the frequency loop: the caller's cap, or the runtime
/// default when uncapped.
inline int freq_team_size(int cap) {
#ifdef _OPENMP
  return cap > 0 ? cap : omp_get_max_threads();
#else
  (void)cap;
  return 1;
#endif
}

/// Registry handles for the always-on apply metrics; the per-frequency
/// histogram is recorded only while a trace is being captured, so the
/// steady-state cost per apply is three timer pairs and a few sharded adds.
struct ApplyMetrics {
  obs::Counter& applies;
  obs::Counter& adjoints;
  obs::Histogram& apply_s;
  obs::Histogram& fft_s;
  obs::Histogram& kernel_loop_s;
  obs::Histogram& freq_mvm_s;

  static ApplyMetrics& instance() {
    static ApplyMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      return ApplyMetrics{reg.counter("mdc.applies"),
                          reg.counter("mdc.adjoints"),
                          reg.histogram("mdc.apply_s"),
                          reg.histogram("mdc.fft_s"),
                          reg.histogram("mdc.kernel_loop_s"),
                          reg.histogram("mdc.freq_mvm_s")};
    }();
    return m;
  }
};

/// Validates and wraps resident kernels into the degenerate one-shard
/// stream behind the classic constructor.
std::shared_ptr<KernelStream> make_resident_stream(
    std::vector<std::unique_ptr<FrequencyMvm>> kernels) {
  TLRWSE_REQUIRE(!kernels.empty(), "need at least one frequency kernel");
  auto stream = std::make_shared<ResidentKernelStream>(std::move(kernels));
  const auto& ks = stream->kernels();
  const index_t ns = ks.front()->rows();
  const index_t nr = ks.front()->cols();
  for (std::size_t q = 0; q < ks.size(); ++q) {
    TLRWSE_REQUIRE(ks[q] != nullptr, "null kernel at frequency ", q);
    TLRWSE_REQUIRE(ks[q]->rows() == ns && ks[q]->cols() == nr,
                   "kernel dimension mismatch at frequency ", q);
  }
  return stream;
}
}  // namespace

MdcOperator::MdcOperator(index_t nt, std::vector<index_t> freq_bins,
                         std::vector<std::unique_ptr<FrequencyMvm>> kernels)
    : MdcOperator(nt, std::move(freq_bins),
                  make_resident_stream(std::move(kernels))) {}

MdcOperator::MdcOperator(index_t nt, std::vector<index_t> freq_bins,
                         std::shared_ptr<KernelStream> stream)
    : nt_(nt),
      freq_bins_(std::move(freq_bins)),
      stream_(std::move(stream)),
      plan_(nt >= 1 ? nt : 1) {
  TLRWSE_REQUIRE(nt_ >= 4, "nt too small");
  TLRWSE_REQUIRE(stream_ != nullptr, "null kernel stream");
  nq_ = stream_->num_freqs();
  TLRWSE_REQUIRE(nq_ >= 1, "need at least one frequency kernel");
  TLRWSE_REQUIRE(static_cast<index_t>(freq_bins_.size()) == nq_,
                 "bins/kernels count mismatch");
  ns_ = stream_->rows();
  nr_ = stream_->cols();
  TLRWSE_REQUIRE(ns_ > 0 && nr_ > 0, "kernel stream with empty dimensions");
  const index_t nshards = stream_->num_shards();
  TLRWSE_REQUIRE(nshards >= 1, "kernel stream with no shards");
  index_t expect = 0;
  for (index_t s = 0; s < nshards; ++s) {
    const auto [b, e] = stream_->shard_range(s);
    TLRWSE_REQUIRE(b == expect && e > b,
                   "kernel stream shards must partition the frequency "
                   "range in ascending order (shard ",
                   s, " covers [", b, ", ", e, "))");
    expect = e;
  }
  TLRWSE_REQUIRE(expect == nq_, "kernel stream shards do not cover all ", nq_,
                 " frequencies");
  for (index_t q = 0; q < nq_; ++q) {
    const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
    TLRWSE_REQUIRE(bin > 0 && bin < nt_ / 2,
                   "frequency bin must exclude DC and Nyquist, got ", bin);
  }
  std::vector<index_t> sorted(freq_bins_);
  std::sort(sorted.begin(), sorted.end());
  TLRWSE_REQUIRE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                     sorted.end(),
                 "frequency bins must be distinct");
}

template <typename PerFreq>
void MdcOperator::kernel_sweep([[maybe_unused]] PageScratch& ps,
                               const PerFreq& per_freq) const {
  [[maybe_unused]] const int team = freq_team_size(inner_threads_);
  // Captured once: the hook lives on the calling thread, but every team
  // member polls it between MVMs so a deadline hit stops the whole batch.
  const CancelScope::Hook* const cancel = CancelScope::current();
  std::atomic<bool> cancelled{false};
  KernelStream& stream = *stream_;
  const index_t nshards = stream.num_shards();
  stream.begin_sweep();
  // end_sweep must run exactly once even when an acquire throws (stream
  // failure or deadline during a stall).
  struct SweepGuard {
    KernelStream& s;
    ~SweepGuard() { s.end_sweep(); }
  } guard{stream};
  for (index_t sh = 0; sh < nshards; ++sh) {
    // should_stop between shards: a deadline that fired during the last
    // shard is honoured before the next (possibly blocking) acquire.
    if (cancel != nullptr && (*cancel)()) throw CancelledError();
    const auto [q_begin, q_end] = stream.shard_range(sh);
    const std::span<FrequencyMvm* const> kernels = stream.acquire_shard(sh);
    TLRWSE_TSAN_RELEASE(&ps);
#pragma omp parallel num_threads(team)
    {
      TLRWSE_TSAN_ACQUIRE(&ps);
#pragma omp for schedule(static)
      for (index_t q = q_begin; q < q_end; ++q) {
        if (cancel != nullptr) {
          if (cancelled.load(std::memory_order_relaxed)) continue;
          if ((*cancel)()) {
            cancelled.store(true, std::memory_order_relaxed);
            continue;
          }
        }
        FreqScratch& fs = freq_scratch_.local();
        per_freq(q, *kernels[static_cast<std::size_t>(q - q_begin)], fs);
      }
      TLRWSE_TSAN_RELEASE(&ps);
    }
    TLRWSE_TSAN_ACQUIRE(&ps);
    stream.release_shard(sh);
    if (cancelled.load(std::memory_order_relaxed)) break;
  }
  if (cancelled.load(std::memory_order_relaxed)) throw CancelledError();
}

void MdcOperator::apply(std::span<const float> x, std::span<float> y) const {
  TLRWSE_TRACE_SPAN("mdc.apply", "mdc");
  ApplyMetrics& met = ApplyMetrics::instance();
  met.applies.add();
  WallTimer apply_timer;
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == cols(), "x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == rows(), "y size");
  const index_t nf_full = nt_ / 2 + 1;
  PageScratch& ps = page_scratch_.local();

  // F: batched rFFT over receiver traces.
  ps.xhat.resize(static_cast<std::size_t>(nf_full * nr_));
  {
    TLRWSE_TRACE_SPAN("mdc.fft_forward", "mdc");
    WallTimer fft_timer;
    fft::rfft_batch(plan_, x, nr_, std::span<cf32>(ps.xhat), ps.fft);
    met.fft_s.record(fft_timer.seconds());
  }

  // K: per-frequency kernel MVMs into the source-side spectrum. Each
  // frequency reads and writes only its own bin's strided slice, so the
  // loop parallelises with no shared state beyond per-thread scratch.
  ps.yhat.assign(static_cast<std::size_t>(nf_full * ns_), cf32{});
  {
    const std::span<const cf32> xhat(ps.xhat);
    const std::span<cf32> yhat(ps.yhat);
    TLRWSE_TRACE_SPAN("mdc.kernel_loop", "mdc");
    WallTimer kernel_timer;
    const bool trace_freqs = obs::Tracer::detail_enabled();
    kernel_sweep(ps, [&](index_t q, FrequencyMvm& kernel, FreqScratch& fs) {
      const std::uint64_t t0 = trace_freqs ? obs::Tracer::now_ns() : 0;
      fs.xk.resize(static_cast<std::size_t>(nr_));
      fs.yk.resize(static_cast<std::size_t>(ns_));
      const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
      for (index_t r = 0; r < nr_; ++r) {
        fs.xk[static_cast<std::size_t>(r)] =
            xhat[static_cast<std::size_t>(r * nf_full + bin)];
      }
      kernel.apply(fs.xk, fs.yk, fs.kernel);
      for (index_t s = 0; s < ns_; ++s) {
        yhat[static_cast<std::size_t>(s * nf_full + bin)] =
            fs.yk[static_cast<std::size_t>(s)];
      }
      if (trace_freqs) {
        const std::uint64_t dur = obs::Tracer::now_ns() - t0;
        obs::Tracer::instance().complete("mdc.freq_mvm", "mdc", t0, dur);
        met.freq_mvm_s.record(static_cast<double>(dur) * 1e-9);
      }
    });
    met.kernel_loop_s.record(kernel_timer.seconds());
  }

  // F^H: Hermitian inverse rFFT back to time.
  {
    TLRWSE_TRACE_SPAN("mdc.fft_inverse", "mdc");
    WallTimer fft_timer;
    fft::irfft_batch(plan_, std::span<const cf32>(ps.yhat), ns_, y, ps.fft);
    met.fft_s.record(fft_timer.seconds());
  }
  met.apply_s.record(apply_timer.seconds());
}

void MdcOperator::apply_adjoint(std::span<const float> y,
                                std::span<float> x) const {
  TLRWSE_TRACE_SPAN("mdc.apply_adjoint", "mdc");
  ApplyMetrics& met = ApplyMetrics::instance();
  met.adjoints.add();
  WallTimer apply_timer;
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == rows(), "y size");
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == cols(), "x size");
  const index_t nf_full = nt_ / 2 + 1;
  PageScratch& ps = page_scratch_.local();

  ps.yhat.resize(static_cast<std::size_t>(nf_full * ns_));
  {
    TLRWSE_TRACE_SPAN("mdc.fft_forward", "mdc");
    WallTimer fft_timer;
    fft::rfft_batch(plan_, y, ns_, std::span<cf32>(ps.yhat), ps.fft);
    met.fft_s.record(fft_timer.seconds());
  }

  ps.xhat.assign(static_cast<std::size_t>(nf_full * nr_), cf32{});
  {
    const std::span<const cf32> yhat(ps.yhat);
    const std::span<cf32> xhat(ps.xhat);
    TLRWSE_TRACE_SPAN("mdc.kernel_loop", "mdc");
    WallTimer kernel_timer;
    const bool trace_freqs = obs::Tracer::detail_enabled();
    kernel_sweep(ps, [&](index_t q, FrequencyMvm& kernel, FreqScratch& fs) {
      const std::uint64_t t0 = trace_freqs ? obs::Tracer::now_ns() : 0;
      fs.xk.resize(static_cast<std::size_t>(nr_));
      fs.yk.resize(static_cast<std::size_t>(ns_));
      const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
      for (index_t s = 0; s < ns_; ++s) {
        fs.yk[static_cast<std::size_t>(s)] =
            yhat[static_cast<std::size_t>(s * nf_full + bin)];
      }
      kernel.apply_adjoint(fs.yk, fs.xk, fs.kernel);
      for (index_t r = 0; r < nr_; ++r) {
        xhat[static_cast<std::size_t>(r * nf_full + bin)] =
            fs.xk[static_cast<std::size_t>(r)];
      }
      if (trace_freqs) {
        const std::uint64_t dur = obs::Tracer::now_ns() - t0;
        obs::Tracer::instance().complete("mdc.freq_mvm", "mdc", t0, dur);
        met.freq_mvm_s.record(static_cast<double>(dur) * 1e-9);
      }
    });
    met.kernel_loop_s.record(kernel_timer.seconds());
  }

  {
    TLRWSE_TRACE_SPAN("mdc.fft_inverse", "mdc");
    WallTimer fft_timer;
    fft::irfft_batch(plan_, std::span<const cf32>(ps.xhat), nr_, x, ps.fft);
    met.fft_s.record(fft_timer.seconds());
  }
  met.apply_s.record(apply_timer.seconds());
}

void MdcOperator::apply_batch(std::span<const float> X, std::span<float> Y,
                              index_t nrhs) const {
  TLRWSE_TRACE_SPAN("mdc.apply_batch", "mdc");
  ApplyMetrics& met = ApplyMetrics::instance();
  met.applies.add(static_cast<std::uint64_t>(nrhs));
  WallTimer apply_timer;
  TLRWSE_REQUIRE(nrhs >= 1, "nrhs");
  TLRWSE_REQUIRE(static_cast<index_t>(X.size()) == cols() * nrhs, "X size");
  TLRWSE_REQUIRE(static_cast<index_t>(Y.size()) == rows() * nrhs, "Y size");
  const index_t nf_full = nt_ / 2 + 1;
  const index_t xpage = nf_full * nr_;
  const index_t ypage = nf_full * ns_;
  PageScratch& ps = page_scratch_.local();

  ps.xhat.resize(static_cast<std::size_t>(xpage * nrhs));
  {
    TLRWSE_TRACE_SPAN("mdc.fft_forward", "mdc");
    WallTimer fft_timer;
    for (index_t r = 0; r < nrhs; ++r) {
      fft::rfft_batch(plan_,
                      X.subspan(static_cast<std::size_t>(r * cols()),
                                static_cast<std::size_t>(cols())),
                      nr_,
                      std::span<cf32>(ps.xhat.data() + r * xpage,
                                      static_cast<std::size_t>(xpage)),
                      ps.fft);
    }
    met.fft_s.record(fft_timer.seconds());
  }

  // Per frequency: gather an nr x nrhs panel, one multi-RHS kernel call,
  // scatter back. Same bin-exclusive access pattern as apply(), so the
  // loop parallelises identically.
  ps.yhat.assign(static_cast<std::size_t>(ypage * nrhs), cf32{});
  {
    const std::span<const cf32> xhat(ps.xhat);
    const std::span<cf32> yhat(ps.yhat);
    TLRWSE_TRACE_SPAN("mdc.kernel_loop", "mdc");
    WallTimer kernel_timer;
    kernel_sweep(ps, [&](index_t q, FrequencyMvm& kernel, FreqScratch& fs) {
      fs.xk.resize(static_cast<std::size_t>(nr_ * nrhs));
      fs.yk.resize(static_cast<std::size_t>(ns_ * nrhs));
      const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
      for (index_t r = 0; r < nrhs; ++r) {
        for (index_t rec = 0; rec < nr_; ++rec) {
          fs.xk[static_cast<std::size_t>(r * nr_ + rec)] =
              xhat[static_cast<std::size_t>(r * xpage + rec * nf_full + bin)];
        }
      }
      kernel.apply_batch(fs.xk, fs.yk, nrhs, fs.kernel);
      for (index_t r = 0; r < nrhs; ++r) {
        for (index_t s = 0; s < ns_; ++s) {
          yhat[static_cast<std::size_t>(r * ypage + s * nf_full + bin)] =
              fs.yk[static_cast<std::size_t>(r * ns_ + s)];
        }
      }
    });
    met.kernel_loop_s.record(kernel_timer.seconds());
  }

  {
    TLRWSE_TRACE_SPAN("mdc.fft_inverse", "mdc");
    WallTimer fft_timer;
    for (index_t r = 0; r < nrhs; ++r) {
      fft::irfft_batch(plan_,
                       std::span<const cf32>(ps.yhat.data() + r * ypage,
                                             static_cast<std::size_t>(ypage)),
                       ns_,
                       Y.subspan(static_cast<std::size_t>(r * rows()),
                                 static_cast<std::size_t>(rows())),
                       ps.fft);
    }
    met.fft_s.record(fft_timer.seconds());
  }
  met.apply_s.record(apply_timer.seconds());
}

void MdcOperator::apply_adjoint_batch(std::span<const float> Y,
                                      std::span<float> X,
                                      index_t nrhs) const {
  TLRWSE_TRACE_SPAN("mdc.apply_adjoint_batch", "mdc");
  ApplyMetrics& met = ApplyMetrics::instance();
  met.adjoints.add(static_cast<std::uint64_t>(nrhs));
  WallTimer apply_timer;
  TLRWSE_REQUIRE(nrhs >= 1, "nrhs");
  TLRWSE_REQUIRE(static_cast<index_t>(Y.size()) == rows() * nrhs, "Y size");
  TLRWSE_REQUIRE(static_cast<index_t>(X.size()) == cols() * nrhs, "X size");
  const index_t nf_full = nt_ / 2 + 1;
  const index_t xpage = nf_full * nr_;
  const index_t ypage = nf_full * ns_;
  PageScratch& ps = page_scratch_.local();

  ps.yhat.resize(static_cast<std::size_t>(ypage * nrhs));
  {
    TLRWSE_TRACE_SPAN("mdc.fft_forward", "mdc");
    WallTimer fft_timer;
    for (index_t r = 0; r < nrhs; ++r) {
      fft::rfft_batch(plan_,
                      Y.subspan(static_cast<std::size_t>(r * rows()),
                                static_cast<std::size_t>(rows())),
                      ns_,
                      std::span<cf32>(ps.yhat.data() + r * ypage,
                                      static_cast<std::size_t>(ypage)),
                      ps.fft);
    }
    met.fft_s.record(fft_timer.seconds());
  }

  ps.xhat.assign(static_cast<std::size_t>(xpage * nrhs), cf32{});
  {
    const std::span<const cf32> yhat(ps.yhat);
    const std::span<cf32> xhat(ps.xhat);
    TLRWSE_TRACE_SPAN("mdc.kernel_loop", "mdc");
    WallTimer kernel_timer;
    kernel_sweep(ps, [&](index_t q, FrequencyMvm& kernel, FreqScratch& fs) {
      fs.xk.resize(static_cast<std::size_t>(nr_ * nrhs));
      fs.yk.resize(static_cast<std::size_t>(ns_ * nrhs));
      const index_t bin = freq_bins_[static_cast<std::size_t>(q)];
      for (index_t r = 0; r < nrhs; ++r) {
        for (index_t s = 0; s < ns_; ++s) {
          fs.yk[static_cast<std::size_t>(r * ns_ + s)] =
              yhat[static_cast<std::size_t>(r * ypage + s * nf_full + bin)];
        }
      }
      kernel.apply_adjoint_batch(fs.yk, fs.xk, nrhs, fs.kernel);
      for (index_t r = 0; r < nrhs; ++r) {
        for (index_t rec = 0; rec < nr_; ++rec) {
          xhat[static_cast<std::size_t>(r * xpage + rec * nf_full + bin)] =
              fs.xk[static_cast<std::size_t>(r * nr_ + rec)];
        }
      }
    });
    met.kernel_loop_s.record(kernel_timer.seconds());
  }

  {
    TLRWSE_TRACE_SPAN("mdc.fft_inverse", "mdc");
    WallTimer fft_timer;
    for (index_t r = 0; r < nrhs; ++r) {
      fft::irfft_batch(plan_,
                       std::span<const cf32>(ps.xhat.data() + r * xpage,
                                             static_cast<std::size_t>(xpage)),
                       nr_,
                       X.subspan(static_cast<std::size_t>(r * cols()),
                                 static_cast<std::size_t>(cols())),
                       ps.fft);
    }
    met.fft_s.record(fft_timer.seconds());
  }
  met.apply_s.record(apply_timer.seconds());
}

}  // namespace tlrwse::mdc
