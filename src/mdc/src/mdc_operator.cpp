#include "tlrwse/mdc/mdc_operator.hpp"

#include "tlrwse/common/error.hpp"
#include "tlrwse/fft/fft.hpp"

namespace tlrwse::mdc {

MdcOperator::MdcOperator(index_t nt, std::vector<index_t> freq_bins,
                         std::vector<std::unique_ptr<FrequencyMvm>> kernels)
    : nt_(nt), freq_bins_(std::move(freq_bins)), kernels_(std::move(kernels)) {
  TLRWSE_REQUIRE(nt_ >= 4, "nt too small");
  TLRWSE_REQUIRE(!kernels_.empty(), "need at least one frequency kernel");
  TLRWSE_REQUIRE(freq_bins_.size() == kernels_.size(),
                 "bins/kernels count mismatch");
  ns_ = kernels_.front()->rows();
  nr_ = kernels_.front()->cols();
  for (std::size_t q = 0; q < kernels_.size(); ++q) {
    TLRWSE_REQUIRE(kernels_[q]->rows() == ns_ && kernels_[q]->cols() == nr_,
                   "kernel dimension mismatch at frequency ", q);
    const index_t bin = freq_bins_[q];
    TLRWSE_REQUIRE(bin > 0 && bin < nt_ / 2,
                   "frequency bin must exclude DC and Nyquist, got ", bin);
  }
}

void MdcOperator::apply(std::span<const float> x, std::span<float> y) const {
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == cols(), "x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == rows(), "y size");
  const index_t nf_full = nt_ / 2 + 1;

  // F: batched rFFT over receiver traces.
  std::vector<cf32> xhat(static_cast<std::size_t>(nf_full * nr_));
  fft::rfft_batch(x, nt_, nr_, std::span<cf32>(xhat));

  // K: per-frequency kernel MVMs into the source-side spectrum.
  std::vector<cf32> yhat(static_cast<std::size_t>(nf_full * ns_), cf32{});
  std::vector<cf32> xk(static_cast<std::size_t>(nr_));
  std::vector<cf32> yk(static_cast<std::size_t>(ns_));
  for (std::size_t q = 0; q < kernels_.size(); ++q) {
    const index_t bin = freq_bins_[q];
    for (index_t r = 0; r < nr_; ++r) {
      xk[static_cast<std::size_t>(r)] =
          xhat[static_cast<std::size_t>(r * nf_full + bin)];
    }
    kernels_[q]->apply(xk, yk);
    for (index_t s = 0; s < ns_; ++s) {
      yhat[static_cast<std::size_t>(s * nf_full + bin)] =
          yk[static_cast<std::size_t>(s)];
    }
  }

  // F^H: Hermitian inverse rFFT back to time.
  fft::irfft_batch(std::span<const cf32>(yhat), nt_, ns_, y);
}

void MdcOperator::apply_adjoint(std::span<const float> y,
                                std::span<float> x) const {
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == rows(), "y size");
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == cols(), "x size");
  const index_t nf_full = nt_ / 2 + 1;

  std::vector<cf32> yhat(static_cast<std::size_t>(nf_full * ns_));
  fft::rfft_batch(y, nt_, ns_, std::span<cf32>(yhat));

  std::vector<cf32> xhat(static_cast<std::size_t>(nf_full * nr_), cf32{});
  std::vector<cf32> yk(static_cast<std::size_t>(ns_));
  std::vector<cf32> xk(static_cast<std::size_t>(nr_));
  for (std::size_t q = 0; q < kernels_.size(); ++q) {
    const index_t bin = freq_bins_[q];
    for (index_t s = 0; s < ns_; ++s) {
      yk[static_cast<std::size_t>(s)] =
          yhat[static_cast<std::size_t>(s * nf_full + bin)];
    }
    kernels_[q]->apply_adjoint(yk, xk);
    for (index_t r = 0; r < nr_; ++r) {
      xhat[static_cast<std::size_t>(r * nf_full + bin)] =
          xk[static_cast<std::size_t>(r)];
    }
  }

  fft::irfft_batch(std::span<const cf32>(xhat), nt_, nr_, x);
}

}  // namespace tlrwse::mdc
