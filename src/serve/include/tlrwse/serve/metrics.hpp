// Built-in observability of the solve service.
//
// Counters cover the whole request lifecycle (admit -> cache -> batch ->
// solve), latency digests come from the exact per-request samples, and the
// whole snapshot dumps as a single JSON object so a load driver or CI job
// can assert on it without scraping logs.
//
// Since the obs layer landed, ServiceCounters is a *view*: SolveService
// keeps every lifecycle count in a per-service obs::MetricsRegistry
// ("serve.*" names, see SolveService::registry()) and metrics() reads the
// same handles, so the two snapshots agree bitwise at any quiescent point.
#pragma once

#include <cstdint>
#include <string>

#include "tlrwse/common/stats.hpp"
#include "tlrwse/serve/operator_cache.hpp"

namespace tlrwse::serve {

struct ServiceCounters {
  std::uint64_t submitted = 0;          // every submit() call
  std::uint64_t admitted = 0;           // entered the bounded queue
  std::uint64_t completed = 0;          // solved and answered kOk
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_deadline = 0;
  std::uint64_t rejected_archive_missing = 0;
  std::uint64_t failed = 0;             // loader/solve errors (kError)
  std::uint64_t batches = 0;            // worker dispatches
  std::uint64_t coalesced = 0;          // requests that shared a batch (>1)
  std::size_t queue_depth = 0;          // at snapshot time
  std::size_t queue_peak_depth = 0;
};

struct ServiceMetrics {
  ServiceCounters counters;
  CacheStats cache;
  LatencySummary latency;     // submit -> response, seconds
  LatencySummary queue_wait;  // submit -> dequeue, seconds
  LatencySummary solve;       // dequeue -> response, seconds

  /// One JSON object, keys stable for downstream tooling.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace tlrwse::serve
