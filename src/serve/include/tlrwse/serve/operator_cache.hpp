// Byte-budget LRU cache of resident MDC operators, sharded for concurrency.
//
// The paper's deployment shape (Sec. 7) compresses a survey once and then
// streams every virtual-source MVM through the same resident TLR bases —
// at paper scale a ~110 GB working set per (nb, acc) configuration. This
// cache gives the solve service that amortisation: concurrent requests that
// name the same (archive, nb, acc) share ONE resident copy, loaded from the
// archive exactly once (in-flight loads are deduplicated via a shared
// future that late arrivals wait on), and cold configurations evict in LRU
// order once the byte budget is exceeded. Shards keep the lock a per-key
// hash affair rather than a global serialisation point; evicted operators
// stay alive for requests that already hold their shared_ptr.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/mdc/mdc_operator.hpp"

namespace tlrwse::oocache {
class ShardStreamer;
}  // namespace tlrwse::oocache

namespace tlrwse::serve {

/// Identity of a resident operator: which archive, compressed how. Two
/// archives of one survey at different (nb, acc) are distinct operators
/// with very different footprints, so the compression parameters are part
/// of the key rather than a detail of the file.
struct OperatorKey {
  std::string archive_id;  // canonical archive path (or logical name)
  index_t nb = 0;
  double acc = 0.0;
  bool operator==(const OperatorKey&) const = default;
};

struct OperatorKeyHash {
  [[nodiscard]] std::size_t operator()(const OperatorKey& k) const noexcept {
    std::size_t h = std::hash<std::string>{}(k.archive_id);
    h ^= std::hash<long long>{}(static_cast<long long>(k.nb)) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h ^= std::hash<double>{}(k.acc) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
  }
};

/// A cache entry: the rebuilt operator plus the byte accounting the LRU
/// budget runs on and the band metadata requests are validated against.
/// Streamed entries (archives bigger than the service's residency cap)
/// also hold their prefetcher; the cache charges them their stream budget
/// — priced from one extents peek — rather than the full payload, which is
/// exactly what admits an over-budget archive as long as one double-buffer
/// window fits.
struct ResidentOperator {
  std::unique_ptr<mdc::MdcOperator> op;
  double bytes = 0.0;  // compressed kernel footprint (budget currency)
  /// The same footprint stored uniformly fp32. Half-precision archives
  /// charge the budget their true packed bytes (~half), and the gap
  /// between the two is the mixed-precision capacity win the
  /// serve.cache.* gauges report. 0 means "same as bytes" (fp32 archive
  /// or a loader that does not distinguish).
  double fp32_bytes = 0.0;
  index_t nt = 0;
  std::vector<double> freqs_hz;
  std::shared_ptr<oocache::ShardStreamer> streamer;  // null when fully resident
  [[nodiscard]] bool streamed() const noexcept { return streamer != nullptr; }
};

struct CacheStats {
  std::uint64_t hits = 0;        // entry present (or load already in flight)
  std::uint64_t misses = 0;      // entry absent, this request triggered a load
  std::uint64_t loads = 0;       // loader invocations that completed OK
  std::uint64_t load_failures = 0;
  std::uint64_t evictions = 0;
  double bytes_evicted = 0.0;
  double bytes_resident = 0.0;
  /// Resident footprint if every entry were stored uniformly fp32; equals
  /// bytes_resident when nothing is half-precision.
  double bytes_resident_fp32 = 0.0;
  std::size_t entries = 0;
  double budget_bytes = 0.0;
  [[nodiscard]] double hit_rate() const {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
  /// Capacity figure of merit: resident datasets per GB of operator bytes.
  /// Shared-basis archives charge their (smaller) shared_bytes, so this is
  /// where the format's memory win shows up operationally.
  [[nodiscard]] double datasets_per_gb() const {
    return bytes_resident > 0.0
               ? static_cast<double>(entries) / (bytes_resident / 1.0e9)
               : 0.0;
  }
};

class OperatorCache {
 public:
  using Value = std::shared_ptr<const ResidentOperator>;
  using Loader = std::function<Value()>;

  /// `budget_bytes` is split evenly across `shards`; each shard evicts its
  /// own LRU tail independently (use one shard for a strictly global LRU).
  explicit OperatorCache(double budget_bytes, std::size_t shards = 8);

  OperatorCache(const OperatorCache&) = delete;
  OperatorCache& operator=(const OperatorCache&) = delete;

  /// Returns the resident operator for `key`, invoking `loader` only when
  /// no entry exists. Concurrent callers of one key ride the first caller's
  /// load (exactly one loader invocation); loader exceptions propagate to
  /// every waiter and the failed entry is removed so a later call retries.
  [[nodiscard]] Value get_or_load(const OperatorKey& key, const Loader& loader);

  /// True when `key` is resident or its load is in flight (no LRU effect).
  [[nodiscard]] bool contains(const OperatorKey& key) const;

  [[nodiscard]] CacheStats stats() const;
  void clear();
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

 private:
  struct Entry {
    OperatorKey key;
    std::shared_future<Value> value;
    std::uint64_t generation = 0;  // guards post-load accounting vs clear()
    double bytes = 0.0;            // 0 until the load completes
    double fp32_bytes = 0.0;       // fp32-equivalent footprint
    bool ready = false;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<OperatorKey, std::list<Entry>::iterator, OperatorKeyHash>
        index;
    double bytes = 0.0;
    double fp32_bytes = 0.0;
    std::uint64_t hits = 0, misses = 0, loads = 0, load_failures = 0,
                  evictions = 0;
    double bytes_evicted = 0.0;
  };

  [[nodiscard]] Shard& shard_for(const OperatorKey& key) const;
  /// Evicts ready LRU-tail entries (never `keep_generation`) until the
  /// shard fits its budget or nothing evictable remains. Caller holds mu.
  void evict_to_budget(Shard& shard, std::uint64_t keep_generation);

  double shard_budget_ = 0.0;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_generation_{1};
};

}  // namespace tlrwse::serve
