// Bounded, per-operator-batching admission queue — the front half of the
// solve service, extracted so the cluster frontend shares one admission
// semantics with the single-process service.
//
// Tickets enter under a global capacity bound (backpressure: try_push
// refuses instead of blocking) and are grouped by an operator key. Groups
// form a FIFO that consumers round-robin over: pop_batch takes up to
// max_batch tickets from the front group and splices any remainder to the
// back, so one hot operator cannot starve the others and every popped
// batch shares a single operator resolution downstream.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tlrwse::serve {

template <typename Key, typename Ticket, typename KeyHash = std::hash<Key>>
class AdmissionQueue {
 public:
  /// Depth snapshot taken atomically with the push that produced it, so
  /// callers can mirror the queue into gauges without re-locking.
  struct PushResult {
    bool admitted = false;
    std::size_t depth = 0;
    std::size_t peak_depth = 0;
  };

  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Called under the queue mutex on every depth change, so a gauge
  /// mirror updates in queue-operation order: two racing set()s from
  /// stale snapshots taken outside the lock could otherwise leave the
  /// gauge disagreeing with depth() at a quiescent point. Set before
  /// producers/consumers start; must not call back into the queue.
  using DepthObserver = std::function<void(std::size_t depth,
                                           std::size_t peak_depth)>;
  void set_depth_observer(DepthObserver observer) {
    std::lock_guard<std::mutex> lock(mu_);
    observer_ = std::move(observer);
  }

  /// Admits under the capacity bound; a full or closed queue refuses
  /// without blocking (the caller answers with its typed rejection).
  /// Moves from `ticket` only on admission — a refused ticket stays with
  /// the caller, promise intact.
  [[nodiscard]] PushResult try_push(const Key& key, Ticket& ticket) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || depth_ >= capacity_) {
      return PushResult{false, depth_, peak_depth_};
    }
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      ready_.push_back(Group{key, {}});
      it = groups_.emplace(key, std::prev(ready_.end())).first;
    }
    it->second->waiting.push_back(std::move(ticket));
    ++depth_;
    peak_depth_ = std::max(peak_depth_, depth_);
    if (observer_) observer_(depth_, peak_depth_);
    work_cv_.notify_one();
    return PushResult{true, depth_, peak_depth_};
  }

  /// Blocks until work or close; an empty result means closed AND drained.
  /// Takes up to max_batch tickets from the front group; a non-empty
  /// remainder goes to the back of the group FIFO (round-robin) and wakes
  /// another consumer.
  [[nodiscard]] std::vector<Ticket> pop_batch(std::size_t max_batch,
                                              Key& key) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait(lock, [&] { return closed_ || !ready_.empty(); });
    if (ready_.empty()) return {};
    Group& group = ready_.front();
    key = group.key;
    std::vector<Ticket> batch;
    const std::size_t take = std::min(max_batch, group.waiting.size());
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(group.waiting.front()));
      group.waiting.pop_front();
    }
    depth_ -= take;
    if (observer_) observer_(depth_, peak_depth_);
    if (group.waiting.empty()) {
      groups_.erase(group.key);
      ready_.pop_front();
    } else {
      ready_.splice(ready_.end(), ready_, ready_.begin());
      work_cv_.notify_one();
    }
    return batch;
  }

  /// Stops admission and wakes every blocked consumer; already-admitted
  /// tickets keep draining through pop_batch. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    work_cv_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return depth_;
  }
  [[nodiscard]] std::size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_depth_;
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  /// Per-operator FIFO of waiting tickets; see class comment for why
  /// groups themselves form a FIFO.
  struct Group {
    Key key;
    std::deque<Ticket> waiting;
  };

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::list<Group> ready_;
  std::unordered_map<Key, typename std::list<Group>::iterator, KeyHash>
      groups_;
  std::size_t depth_ = 0;
  std::size_t peak_depth_ = 0;
  DepthObserver observer_;
  bool closed_ = false;
};

}  // namespace tlrwse::serve
