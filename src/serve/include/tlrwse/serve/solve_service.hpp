// Multi-tenant MDD solve service: admit -> cache -> batch -> solve.
//
// Turns the batch-mode archive->solve path into a concurrent service with
// the compute shape of a batched inference server holding model weights:
// compressed per-frequency TLR kernels are the resident "weights"
// (OperatorCache), MDD requests against one operator coalesce into shared
// batches that a worker drives back-to-back over the single resident copy,
// and overload surfaces as typed rejections from a bounded admission queue
// (backpressure) instead of latency collapse. Results are bitwise identical
// to a sequential solve of the same archive: batching only shares operator
// residency and dispatch, never the per-request arithmetic, and the
// frequency loop is thread-count invariant.
//
// Request lifecycle:
//   submit()  -- validate the archive header (cheap peek; typed
//                kArchiveMissing), then try to enter the bounded queue
//                (typed kQueueFull when the service is saturated);
//   workers   -- pop a per-operator batch (round-robin across operators),
//                resolve the operator through the cache (loaded from the
//                archive exactly once), drop requests whose deadline
//                already passed (typed kDeadlineExceeded), solve the rest;
//   response  -- futures resolve with the solution + per-request timings;
//                every counter lands in ServiceMetrics / metrics JSON.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "tlrwse/mdd/lsqr.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/slo_tracker.hpp"
#include "tlrwse/obs/stage_breakdown.hpp"
#include "tlrwse/serve/admission_queue.hpp"
#include "tlrwse/serve/metrics.hpp"
#include "tlrwse/serve/operator_cache.hpp"
#include "tlrwse/serve/task_executor.hpp"

namespace tlrwse::serve {

enum class RequestKind {
  kAdjoint,  // cross-correlation estimate x = A^T b (one adjoint pass)
  kLsqr,     // least-squares inversion (the paper's 30-iteration budget)
};

enum class SolveStatus {
  kOk,
  kQueueFull,         // bounded admission queue was full (backpressure)
  kDeadlineExceeded,  // per-request deadline passed before/during the solve
  kArchiveMissing,    // named archive absent or unreadable at admission/load
  kError,             // unexpected solve/loader failure (details in .error)
};
[[nodiscard]] const char* to_string(SolveStatus s);

struct SolveRequest {
  OperatorKey op;                      // which resident operator to solve on
  RequestKind kind = RequestKind::kLsqr;
  index_t vsrc = -1;                   // virtual-source tag (echoed back)
  std::vector<float> rhs;              // observed data b, nt x nS traces
  mdd::LsqrConfig lsqr;                // iteration budget, tolerances, hooks
  double deadline_s = 0.0;             // 0 = none; budget from admission on
};

struct SolveResponse {
  SolveStatus status = SolveStatus::kOk;
  index_t vsrc = -1;
  std::vector<float> x;                // solution traces (partial on abort)
  int iterations = 0;
  double residual_norm = 0.0;
  double queue_wait_s = 0.0;           // admission -> dequeue
  double solve_s = 0.0;                // dequeue -> solved
  double total_s = 0.0;                // admission -> response
  std::size_t batch_size = 0;          // requests coalesced into its batch
  /// Per-stage latency attribution (queue/load/stall/lsqr on this local
  /// path; the fft/mvm/rpc fields stay 0 — the cluster tier fills them).
  obs::StageBreakdown stages;
  std::string error;                   // populated for kError / kArchiveMissing
};

struct ServiceConfig {
  int workers = 4;                     // concurrent solve batches
  std::size_t queue_capacity = 64;     // admission bound (backpressure)
  std::size_t max_batch = 8;           // per-operator coalescing limit
  double cache_budget_bytes = 512.0 * 1024.0 * 1024.0;
  std::size_t cache_shards = 8;
  /// Residency cap per operator. 0 keeps every archive fully resident.
  /// Positive: archives whose compressed payload exceeds it are served
  /// out-of-core through a ShardStreamer with this byte budget — the cache
  /// charges the budget, not the payload — and rejected (typed load
  /// failure) only when even one double-buffer window cannot fit.
  double max_resident_bytes = 0.0;
  /// OpenMP team size of each solve's frequency loop; 0 divides the
  /// machine evenly between workers (never oversubscribing workers x
  /// omp_get_max_threads() ways).
  int inner_threads = 0;
  /// Latency/availability objectives for the rolling SLO window; latency
  /// breaches persist exemplars when `slo.exemplar_dir` is set.
  obs::SloConfig slo;
};

class SolveService {
 public:
  explicit SolveService(ServiceConfig cfg = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Never blocks on the solve: rejected requests (queue-full,
  /// archive-missing) resolve their future immediately with the typed
  /// status; admitted requests resolve when a worker finishes them.
  [[nodiscard]] std::future<SolveResponse> submit(SolveRequest req);

  /// Stops admission, drains every admitted request, joins the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  [[nodiscard]] ServiceMetrics metrics() const;
  [[nodiscard]] std::string metrics_json() const { return metrics().to_json(); }
  [[nodiscard]] const OperatorCache& cache() const noexcept { return cache_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

  /// The registry backing every lifecycle counter/histogram below (names
  /// "serve.*"). ServiceMetrics::counters is derived from it, so a snapshot
  /// here and metrics() agree bitwise. Each service owns its registry so
  /// concurrent instances never mix numbers.
  [[nodiscard]] const obs::MetricsRegistry& registry() const noexcept {
    return registry_;
  }

  /// The rolling SLO window (p50/p95/p99, error-budget burn rate) over
  /// requests that reached a solve attempt.
  [[nodiscard]] obs::SloTracker::Window slo_window() const {
    return slo_.window();
  }

 private:
  struct Ticket {
    SolveRequest req;
    std::promise<SolveResponse> done;
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop();
  /// Blocks for work; empty result means the service is shutting down.
  [[nodiscard]] std::vector<Ticket> pop_batch(OperatorKey& key);
  void process_batch(const OperatorKey& key, std::vector<Ticket> batch);
  void solve_ticket(Ticket& ticket, const ResidentOperator& resident,
                    std::size_t batch_size, double load_s);
  /// Serves >= 2 coalesced adjoint tickets with ONE multi-RHS adjoint
  /// sweep over the resident operator (each result bitwise identical to
  /// its single-request solve). `adj` indexes into `batch`.
  void solve_adjoint_group(std::vector<Ticket>& batch,
                           const std::vector<std::size_t>& adj,
                           const ResidentOperator& resident,
                           std::size_t batch_size, double load_s);
  [[nodiscard]] OperatorCache::Value load_resident(const OperatorKey& key);
  void record_latency(double total_s, double wait_s, double solve_s);
  static void respond(Ticket& ticket, SolveResponse response);
  /// Stage histograms + SLO window + breach exemplar, then respond().
  /// Stage rows are only recorded when the solve actually ran (solve_s >
  /// 0), so dequeue-time rejects don't drown the attribution in zeros.
  void finish(Ticket& ticket, SolveResponse response);

  ServiceConfig cfg_;
  OperatorCache cache_;

  // Lifecycle counters live in the per-service registry; the references
  // below are the resolved handles (stable for the registry's lifetime)
  // used on the hot path. Initialisation order matters: registry_ first.
  mutable obs::MetricsRegistry registry_;
  obs::Counter& submitted_;
  obs::Counter& admitted_;
  obs::Counter& completed_;
  obs::Counter& rejected_full_;
  obs::Counter& rejected_deadline_;
  obs::Counter& rejected_missing_;
  obs::Counter& failed_;
  obs::Counter& batches_;
  obs::Counter& coalesced_;
  obs::Counter& multi_rhs_;  // adjoint tickets served by a shared multi-RHS sweep
  obs::Gauge& queue_depth_gauge_;
  obs::Gauge& queue_peak_gauge_;
  // Resident operator bytes as stored (packed) vs stored-uniformly-fp32;
  // the gap is the mixed-precision capacity win of half archives.
  obs::Gauge& cache_packed_gauge_;
  obs::Gauge& cache_fp32_gauge_;
  obs::Histogram& latency_hist_;
  obs::Histogram& queue_wait_hist_;
  obs::Histogram& solve_hist_;
  obs::StageRecorder stage_recorder_;
  obs::SloTracker slo_;
  std::atomic<std::uint64_t> exemplar_id_{1};

  // Admission, per-operator grouping and round-robin batching live in the
  // shared queue (also the cluster frontend's front half).
  AdmissionQueue<OperatorKey, Ticket, OperatorKeyHash> queue_;
  std::atomic<bool> shut_down_{false};

  // Exact per-request samples (the histograms above are octave-bucketed;
  // LatencySummary wants exact quantiles).
  mutable std::mutex latency_mu_;
  std::vector<double> latency_s_, queue_wait_s_, solve_s_;

  TaskExecutor exec_;  // declared last: workers must see live members above
  std::vector<std::future<void>> worker_futures_;
};

}  // namespace tlrwse::serve
