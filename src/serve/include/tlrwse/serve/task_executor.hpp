// Thread-pool executor with futures — the compute substrate of the solve
// service.
//
// The service owns one TaskExecutor and runs its request workers on it;
// each worker drives whole solve batches, and the per-thread WorkspacePools
// inside MdcOperator/TlrMvm hand every executor thread its own scratch, so
// concurrent solves over one resident operator never contend on buffers.
// Submission returns a std::future so callers compose executor work with
// the rest of the request lifecycle (and worker exceptions surface at
// shutdown instead of dying silently).
#pragma once

#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "tlrwse/common/bounded_queue.hpp"
#include "tlrwse/common/error.hpp"

namespace tlrwse::serve {

class TaskExecutor {
 public:
  /// `threads` OS threads service one shared task queue of `queue_capacity`
  /// slots (submit blocks when full — admission control belongs upstream).
  explicit TaskExecutor(int threads, std::size_t queue_capacity = 4096)
      : tasks_(queue_capacity) {
    TLRWSE_REQUIRE(threads > 0, "executor needs at least one thread");
    threads_.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  TaskExecutor(const TaskExecutor&) = delete;
  TaskExecutor& operator=(const TaskExecutor&) = delete;

  ~TaskExecutor() { shutdown(); }

  /// Schedules `fn` and returns the future of its result. Throws if the
  /// executor is already shut down.
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    const bool queued = tasks_.push([task] { (*task)(); });
    TLRWSE_REQUIRE(queued, "executor is shut down");
    return future;
  }

  /// Drains the queue and joins all workers. Idempotent.
  void shutdown() {
    tasks_.close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  [[nodiscard]] int thread_count() const noexcept {
    return static_cast<int>(threads_.size());
  }
  [[nodiscard]] std::size_t queued() const { return tasks_.size(); }

 private:
  void worker_loop() {
    std::function<void()> task;
    while (tasks_.pop(task)) {
      task();
      task = nullptr;  // release captured state before blocking again
    }
  }

  BoundedQueue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
};

}  // namespace tlrwse::serve
