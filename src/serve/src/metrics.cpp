#include "tlrwse/serve/metrics.hpp"

#include <sstream>

namespace tlrwse::serve {

namespace {
void append_latency(std::ostream& os, const char* name,
                    const LatencySummary& s) {
  os << '"' << name << "\":{\"count\":" << s.count << ",\"mean_s\":" << s.mean
     << ",\"p50_s\":" << s.p50 << ",\"p95_s\":" << s.p95
     << ",\"p99_s\":" << s.p99 << ",\"max_s\":" << s.max << '}';
}
}  // namespace

std::string ServiceMetrics::to_json() const {
  std::ostringstream os;
  const auto& c = counters;
  os << "{\"requests\":{\"submitted\":" << c.submitted
     << ",\"admitted\":" << c.admitted << ",\"completed\":" << c.completed
     << ",\"rejected_queue_full\":" << c.rejected_queue_full
     << ",\"rejected_deadline\":" << c.rejected_deadline
     << ",\"rejected_archive_missing\":" << c.rejected_archive_missing
     << ",\"failed\":" << c.failed << "}";
  os << ",\"batching\":{\"batches\":" << c.batches
     << ",\"coalesced_requests\":" << c.coalesced << "}";
  os << ",\"queue\":{\"depth\":" << c.queue_depth
     << ",\"peak_depth\":" << c.queue_peak_depth << "}";
  os << ",\"cache\":{\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
     << ",\"loads\":" << cache.loads
     << ",\"load_failures\":" << cache.load_failures
     << ",\"evictions\":" << cache.evictions
     << ",\"bytes_evicted\":" << cache.bytes_evicted
     << ",\"bytes_resident\":" << cache.bytes_resident
     << ",\"bytes_resident_fp32\":" << cache.bytes_resident_fp32
     << ",\"entries\":" << cache.entries
     << ",\"budget_bytes\":" << cache.budget_bytes
     << ",\"hit_rate\":" << cache.hit_rate()
     << ",\"datasets_per_gb\":" << cache.datasets_per_gb() << "}";
  os << ',';
  append_latency(os, "latency", latency);
  os << ',';
  append_latency(os, "queue_wait", queue_wait);
  os << ',';
  append_latency(os, "solve", solve);
  os << '}';
  return os.str();
}

}  // namespace tlrwse::serve
