#include "tlrwse/serve/solve_service.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "tlrwse/common/error.hpp"
#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdc/cancellation.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/obs/tracer.hpp"
#include "tlrwse/oocache/shard_streamer.hpp"
#include "tlrwse/oocache/stream_plan.hpp"

namespace tlrwse::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Even split of the machine between request workers when the caller does
/// not pin an inner team size.
int default_inner_threads(int workers) {
#ifdef _OPENMP
  return std::max(1, omp_get_max_threads() / std::max(1, workers));
#else
  (void)workers;
  return 1;
#endif
}

}  // namespace

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOk: return "ok";
    case SolveStatus::kQueueFull: return "queue_full";
    case SolveStatus::kDeadlineExceeded: return "deadline_exceeded";
    case SolveStatus::kArchiveMissing: return "archive_missing";
    case SolveStatus::kError: return "error";
  }
  return "unknown";
}

SolveService::SolveService(ServiceConfig cfg)
    : cfg_(cfg),
      cache_(cfg.cache_budget_bytes, cfg.cache_shards),
      submitted_(registry_.counter("serve.submitted")),
      admitted_(registry_.counter("serve.admitted")),
      completed_(registry_.counter("serve.completed")),
      rejected_full_(registry_.counter("serve.rejected_queue_full")),
      rejected_deadline_(registry_.counter("serve.rejected_deadline")),
      rejected_missing_(registry_.counter("serve.rejected_archive_missing")),
      failed_(registry_.counter("serve.failed")),
      batches_(registry_.counter("serve.batches")),
      coalesced_(registry_.counter("serve.coalesced")),
      multi_rhs_(registry_.counter("serve.multi_rhs")),
      queue_depth_gauge_(registry_.gauge("serve.queue_depth")),
      queue_peak_gauge_(registry_.gauge("serve.queue_peak_depth")),
      cache_packed_gauge_(registry_.gauge("serve.cache.packed_bytes")),
      cache_fp32_gauge_(registry_.gauge("serve.cache.fp32_equiv_bytes")),
      latency_hist_(registry_.histogram("serve.latency_s")),
      queue_wait_hist_(registry_.histogram("serve.queue_wait_s")),
      solve_hist_(registry_.histogram("serve.solve_s")),
      stage_recorder_(registry_, "serve"),
      slo_(cfg.slo),
      queue_(cfg.queue_capacity),
      exec_(std::max(1, cfg.workers)) {
  TLRWSE_REQUIRE(cfg_.workers > 0, "service needs at least one worker");
  TLRWSE_REQUIRE(cfg_.queue_capacity > 0, "queue capacity must be positive");
  TLRWSE_REQUIRE(cfg_.max_batch > 0, "max batch must be positive");
  // Mirrored under the queue mutex so the gauges always agree with
  // depth() at any quiescent point (set()s from snapshots taken outside
  // the lock can land out of order against a racing pop).
  queue_.set_depth_observer([this](std::size_t depth, std::size_t peak) {
    queue_depth_gauge_.set(static_cast<std::int64_t>(depth));
    queue_peak_gauge_.set(static_cast<std::int64_t>(peak));
  });
  if (cfg_.inner_threads <= 0) {
    cfg_.inner_threads = default_inner_threads(cfg_.workers);
  }
  worker_futures_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    worker_futures_.push_back(exec_.submit([this] { worker_loop(); }));
  }
}

SolveService::~SolveService() { shutdown(); }

void SolveService::respond(Ticket& ticket, SolveResponse response) {
  response.vsrc = ticket.req.vsrc;
  ticket.done.set_value(std::move(response));
}

void SolveService::finish(Ticket& ticket, SolveResponse response) {
  if (response.solve_s > 0.0) stage_recorder_.record(response.stages);
  slo_.record(response.total_s, response.status == SolveStatus::kOk);
  slo_.publish(registry_, "serve");
  if (slo_.breaches_objective(response.total_s) &&
      !slo_.config().exemplar_dir.empty()) {
    std::ostringstream os;
    os << "{\"vsrc\":" << ticket.req.vsrc << ",\"status\":\""
       << to_string(response.status)
       << "\",\"queue_wait_s\":" << response.queue_wait_s
       << ",\"solve_s\":" << response.solve_s
       << ",\"total_s\":" << response.total_s
       << ",\"stages\":" << response.stages.to_json() << "}";
    (void)slo_.persist_exemplar(
        exemplar_id_.fetch_add(1, std::memory_order_relaxed), os.str());
  }
  respond(ticket, std::move(response));
}

std::future<SolveResponse> SolveService::submit(SolveRequest req) {
  TLRWSE_TRACE_SPAN("serve.submit", "serve");
  submitted_.add();
  Ticket ticket;
  ticket.req = std::move(req);
  std::future<SolveResponse> future = ticket.done.get_future();

  // Admission validation: a header peek (a few hundred bytes) catches a
  // missing/corrupt archive without paying a kernel load; resident or
  // in-flight operators skip even that.
  if (!cache_.contains(ticket.req.op)) {
    try {
      (void)io::peek_archive(ticket.req.op.archive_id);
    } catch (const std::exception& e) {
      rejected_missing_.add();
      SolveResponse r;
      r.status = SolveStatus::kArchiveMissing;
      r.error = e.what();
      respond(ticket, std::move(r));
      return future;
    }
  }

  ticket.admitted = Clock::now();
  const auto push = queue_.try_push(ticket.req.op, ticket);
  if (push.admitted) {
    admitted_.add();
    return future;
  }

  // Backpressure: reject instead of blocking the caller or growing the
  // queue without bound. A closed service rejects the same way.
  rejected_full_.add();
  SolveResponse r;
  r.status = SolveStatus::kQueueFull;
  r.error = "admission queue full";
  respond(ticket, std::move(r));
  return future;
}

std::vector<SolveService::Ticket> SolveService::pop_batch(OperatorKey& key) {
  return queue_.pop_batch(cfg_.max_batch, key);
}

void SolveService::worker_loop() {
  for (;;) {
    OperatorKey key;
    std::vector<Ticket> batch = pop_batch(key);
    if (batch.empty()) return;
    process_batch(key, std::move(batch));
  }
}

OperatorCache::Value SolveService::load_resident(const OperatorKey& key) {
  TLRWSE_TRACE_SPAN("serve.load_operator", "serve");
  auto resident = std::make_shared<ResidentOperator>();
  // Archives over the residency cap are served out-of-core: one extents
  // peek prices the payload AND seeds both the stream plan and every later
  // slice load (a single directory read). The cache is charged the stream
  // budget, so an over-budget archive is admitted as long as one
  // double-buffer window fits; otherwise the kBudgetTooSmall throw
  // propagates to every waiter as a typed load failure.
  if (cfg_.max_resident_bytes > 0.0) {
    const io::ArchiveInfo info = io::peek_archive_extents(key.archive_id);
    if (info.payload_bytes > cfg_.max_resident_bytes) {
      oocache::StreamPlanConfig plan_cfg;
      plan_cfg.budget_bytes = cfg_.max_resident_bytes;
      oocache::StreamPlan plan = oocache::compile_stream_plan(info, plan_cfg);
      auto source =
          std::make_shared<oocache::ArchiveShardSource>(key.archive_id, info);
      oocache::StreamConfig stream_cfg;
      stream_cfg.budget_bytes = cfg_.max_resident_bytes;
      resident->streamer = std::make_shared<oocache::ShardStreamer>(
          std::move(source), std::move(plan), stream_cfg);
      // Streamed entries are priced at their window budget regardless of
      // storage precision (fp32_bytes stays 0 = "same as bytes"); the
      // capacity win shows up as more frequencies per window instead.
      resident->bytes = resident->streamer->budget_bytes();
      resident->nt = info.nt;
      resident->freqs_hz = info.freqs_hz;
      resident->op = std::make_unique<mdc::MdcOperator>(
          info.nt, info.freq_bins, resident->streamer);
      resident->op->set_inner_threads(cfg_.inner_threads);
      return resident;
    }
  }
  // The header names the container format; shared-basis archives charge
  // the cache their (band-shared) payload bytes, so more of them fit in
  // one budget than per-frequency archives of the same survey.
  const io::ArchiveInfo info = io::peek_archive(key.archive_id);
  if (info.shared_basis) {
    io::SharedKernelArchive archive =
        io::load_shared_archive(key.archive_id);
    resident->bytes = archive.shared_bytes();
    for (const auto& b : archive.bands) resident->fp32_bytes += b->fp32_bytes();
    resident->nt = archive.nt;
    resident->freqs_hz = archive.freqs_hz;
    resident->op = io::make_operator(archive);
    resident->op->set_inner_threads(cfg_.inner_threads);
    return resident;
  }
  io::KernelArchive archive = io::load_archive(key.archive_id);
  resident->bytes = archive.compressed_bytes();
  for (const auto& k : archive.kernels) resident->fp32_bytes += k.fp32_bytes();
  resident->nt = archive.nt;
  resident->freqs_hz = archive.freqs_hz;
  resident->op = io::make_operator(archive);
  // One worker drives each solve; cap the frequency loop's team so the
  // workers together use the machine instead of oversubscribing it.
  resident->op->set_inner_threads(cfg_.inner_threads);
  return resident;
}

void SolveService::process_batch(const OperatorKey& key,
                                 std::vector<Ticket> batch) {
  TLRWSE_TRACE_SPAN("serve.batch", "serve");
  batches_.add();
  if (batch.size() > 1) {
    coalesced_.add(batch.size());
  }

  OperatorCache::Value resident;
  const Clock::time_point load_start = Clock::now();
  try {
    resident = cache_.get_or_load(key, [&] { return load_resident(key); });
  } catch (const std::exception& e) {
    // The archive can vanish between the admission peek and the load.
    const bool missing = !std::filesystem::exists(key.archive_id);
    for (auto& ticket : batch) {
      (missing ? rejected_missing_ : failed_).add();
      SolveResponse r;
      r.status =
          missing ? SolveStatus::kArchiveMissing : SolveStatus::kError;
      r.error = e.what();
      respond(ticket, std::move(r));
    }
    return;
  }
  // A cache hit makes this ~0; a miss charges the archive load (or stream
  // plan compile) to every request in the batch that triggered it.
  const double load_s = seconds_between(load_start, Clock::now());
  {
    const CacheStats cs = cache_.stats();
    cache_packed_gauge_.set(static_cast<std::int64_t>(cs.bytes_resident));
    cache_fp32_gauge_.set(static_cast<std::int64_t>(cs.bytes_resident_fp32));
  }

  // Coalesced adjoint requests share one multi-RHS sweep over the resident
  // operator instead of N independent passes; LSQR tickets (whose iterates
  // depend on their own residuals) and malformed-rhs tickets solve singly.
  std::vector<std::size_t> adj;
  for (std::size_t t = 0; t < batch.size(); ++t) {
    const SolveRequest& req = batch[t].req;
    if (req.kind == RequestKind::kAdjoint &&
        static_cast<index_t>(req.rhs.size()) == resident->op->rows()) {
      adj.push_back(t);
    }
  }
  if (adj.size() >= 2) {
    solve_adjoint_group(batch, adj, *resident, batch.size(), load_s);
    std::size_t next_adj = 0;
    for (std::size_t t = 0; t < batch.size(); ++t) {
      if (next_adj < adj.size() && adj[next_adj] == t) {
        ++next_adj;
        continue;
      }
      solve_ticket(batch[t], *resident, batch.size(), load_s);
    }
    return;
  }

  for (auto& ticket : batch) {
    solve_ticket(ticket, *resident, batch.size(), load_s);
  }
}

void SolveService::solve_adjoint_group(std::vector<Ticket>& batch,
                                       const std::vector<std::size_t>& adj,
                                       const ResidentOperator& resident,
                                       std::size_t batch_size,
                                       double load_s) {
  TLRWSE_TRACE_SPAN("serve.adjoint_group", "serve");
  const Clock::time_point dequeued = Clock::now();

  // Deadline check at dequeue, exactly as solve_ticket does; expired
  // tickets answer kDeadlineExceeded and drop out of the sweep.
  std::vector<std::size_t> live;
  std::vector<double> waits;
  for (const std::size_t t : adj) {
    Ticket& ticket = batch[t];
    const double wait_s = seconds_between(ticket.admitted, dequeued);
    if (ticket.req.deadline_s > 0.0 && wait_s >= ticket.req.deadline_s) {
      rejected_deadline_.add();
      SolveResponse r;
      r.status = SolveStatus::kDeadlineExceeded;
      r.batch_size = batch_size;
      r.queue_wait_s = wait_s;
      r.total_s = seconds_between(ticket.admitted, Clock::now());
      respond(ticket, std::move(r));
      continue;
    }
    live.push_back(t);
    waits.push_back(wait_s);
  }
  if (live.empty()) return;
  if (live.size() == 1) {  // nothing left to share; take the normal path
    solve_ticket(batch[live.front()], resident, batch_size, load_s);
    return;
  }

  const auto nrhs = static_cast<index_t>(live.size());
  const std::size_t rhs_len = static_cast<std::size_t>(resident.op->rows());
  const std::size_t out_len = static_cast<std::size_t>(resident.op->cols());
  std::vector<float> rhs_panel(rhs_len * live.size());
  for (std::size_t k = 0; k < live.size(); ++k) {
    const std::vector<float>& rhs = batch[live[k]].req.rhs;
    std::copy(rhs.begin(), rhs.end(), rhs_panel.begin() + k * rhs_len);
  }

  const double stall0_s =
      resident.streamer ? resident.streamer->stats().stall_s : 0.0;
  std::vector<float> x;
  try {
    x = mdd::adjoint_reflectivity_batch(*resident.op, rhs_panel, nrhs);
  } catch (const std::exception& e) {
    for (std::size_t k = 0; k < live.size(); ++k) {
      failed_.add();
      SolveResponse r;
      r.status = SolveStatus::kError;
      r.error = e.what();
      r.batch_size = batch_size;
      r.queue_wait_s = waits[k];
      r.total_s = seconds_between(batch[live[k]].admitted, Clock::now());
      respond(batch[live[k]], std::move(r));
    }
    return;
  }

  const Clock::time_point done = Clock::now();
  const double stall_s =
      resident.streamer
          ? std::max(0.0, resident.streamer->stats().stall_s - stall0_s)
          : 0.0;
  multi_rhs_.add(static_cast<std::uint64_t>(live.size()));
  for (std::size_t k = 0; k < live.size(); ++k) {
    Ticket& ticket = batch[live[k]];
    SolveResponse r;
    r.batch_size = batch_size;
    r.queue_wait_s = waits[k];
    r.x.assign(x.begin() + static_cast<std::ptrdiff_t>(k * out_len),
               x.begin() + static_cast<std::ptrdiff_t>((k + 1) * out_len));
    r.solve_s = seconds_between(dequeued, done);
    r.total_s = seconds_between(ticket.admitted, done);
    r.stages.queue_wait_s = r.queue_wait_s;
    r.stages.load_s = load_s;
    r.stages.stream_stall_s = stall_s;
    completed_.add();
    record_latency(r.total_s, r.queue_wait_s, r.solve_s);
    finish(ticket, std::move(r));
  }
}

void SolveService::solve_ticket(Ticket& ticket,
                                const ResidentOperator& resident,
                                std::size_t batch_size, double load_s) {
  TLRWSE_TRACE_SPAN("serve.request", "serve");
  const Clock::time_point dequeued = Clock::now();
  SolveResponse r;
  r.batch_size = batch_size;
  r.queue_wait_s = seconds_between(ticket.admitted, dequeued);
  r.stages.queue_wait_s = r.queue_wait_s;
  r.stages.load_s = load_s;

  const double deadline_s = ticket.req.deadline_s;
  if (deadline_s > 0.0 && r.queue_wait_s >= deadline_s) {
    rejected_deadline_.add();
    r.status = SolveStatus::kDeadlineExceeded;
    r.total_s = seconds_between(ticket.admitted, Clock::now());
    finish(ticket, std::move(r));
    return;
  }

  const Clock::time_point deadline_at =
      ticket.admitted + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(deadline_s));
  // The scope lets a deadline hit cancel between per-frequency MVMs
  // inside one apply, not only between LSQR iterations; LSQR translates
  // the resulting CancelledError into a clean kAborted partial iterate.
  mdc::CancelScope cancel_scope(
      deadline_s > 0.0
          ? mdc::CancelScope::Hook([deadline_at] {
              return Clock::now() >= deadline_at;
            })
          : mdc::CancelScope::Hook{});
  const double stall0_s =
      resident.streamer ? resident.streamer->stats().stall_s : 0.0;
  try {
    if (ticket.req.kind == RequestKind::kAdjoint) {
      r.x = mdd::adjoint_reflectivity(*resident.op, ticket.req.rhs);
    } else {
      mdd::LsqrConfig lsqr = ticket.req.lsqr;
      if (deadline_s > 0.0) {
        // Enforce the deadline *during* the solve too: LSQR polls the hook
        // once per iteration and returns the consistent partial iterate.
        auto user_stop = lsqr.should_stop;
        lsqr.should_stop = [user_stop, deadline_at] {
          if (user_stop && user_stop()) return true;
          return Clock::now() >= deadline_at;
        };
      }
      const Clock::time_point lsqr_start = Clock::now();
      mdd::LsqrResult sol = mdd::solve_mdd(*resident.op, ticket.req.rhs, lsqr);
      r.stages.lsqr_s = seconds_between(lsqr_start, Clock::now());
      r.stages.lsqr_iterations = sol.iterations;
      r.x = std::move(sol.x);
      r.iterations = sol.iterations;
      r.residual_norm = sol.residual_norm;
      if (sol.stop == mdd::LsqrResult::Stop::kAborted && deadline_s > 0.0 &&
          Clock::now() >= deadline_at) {
        r.status = SolveStatus::kDeadlineExceeded;
      }
    }
  } catch (const mdc::CancelledError&) {
    // An adjoint pass has no iterate to return partially; the deadline
    // hook is the only installed cancel source here.
    rejected_deadline_.add();
    r.status = SolveStatus::kDeadlineExceeded;
    r.x.clear();
    r.total_s = seconds_between(ticket.admitted, Clock::now());
    finish(ticket, std::move(r));
    return;
  } catch (const std::exception& e) {
    failed_.add();
    r.status = SolveStatus::kError;
    r.error = e.what();
    r.total_s = seconds_between(ticket.admitted, Clock::now());
    finish(ticket, std::move(r));
    return;
  }

  const Clock::time_point done = Clock::now();
  r.solve_s = seconds_between(dequeued, done);
  r.total_s = seconds_between(ticket.admitted, done);
  if (resident.streamer) {
    // Shared streamer: concurrent solves on the same operator can bleed
    // stalls into each other's delta; the window is still the right order.
    r.stages.stream_stall_s =
        std::max(0.0, resident.streamer->stats().stall_s - stall0_s);
  }
  if (r.status == SolveStatus::kOk) {
    completed_.add();
    record_latency(r.total_s, r.queue_wait_s, r.solve_s);
  } else {
    rejected_deadline_.add();
  }
  finish(ticket, std::move(r));
}

void SolveService::record_latency(double total_s, double wait_s,
                                  double solve_s) {
  latency_hist_.record(total_s);
  queue_wait_hist_.record(wait_s);
  solve_hist_.record(solve_s);
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_s_.push_back(total_s);
  queue_wait_s_.push_back(wait_s);
  solve_s_.push_back(solve_s);
}

void SolveService::shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.close();
  for (auto& f : worker_futures_) f.get();
  worker_futures_.clear();
  exec_.shutdown();
}

ServiceMetrics SolveService::metrics() const {
  // Every counter reads through the registry handle, so a
  // registry().snapshot() taken at the same quiescent point agrees bitwise.
  ServiceMetrics m;
  m.counters.submitted = submitted_.value();
  m.counters.admitted = admitted_.value();
  m.counters.completed = completed_.value();
  m.counters.rejected_queue_full = rejected_full_.value();
  m.counters.rejected_deadline = rejected_deadline_.value();
  m.counters.rejected_archive_missing = rejected_missing_.value();
  m.counters.failed = failed_.value();
  m.counters.batches = batches_.value();
  m.counters.coalesced = coalesced_.value();
  m.counters.queue_depth = queue_.depth();
  m.counters.queue_peak_depth = queue_.peak_depth();
  m.cache = cache_.stats();
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    m.latency = summarize_latencies(latency_s_);
    m.queue_wait = summarize_latencies(queue_wait_s_);
    m.solve = summarize_latencies(solve_s_);
  }
  return m;
}

}  // namespace tlrwse::serve
