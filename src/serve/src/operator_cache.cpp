#include "tlrwse/serve/operator_cache.hpp"

#include "tlrwse/common/error.hpp"

namespace tlrwse::serve {

OperatorCache::OperatorCache(double budget_bytes, std::size_t shards) {
  TLRWSE_REQUIRE(budget_bytes > 0.0, "cache budget must be positive");
  TLRWSE_REQUIRE(shards > 0, "cache needs at least one shard");
  shard_budget_ = budget_bytes / static_cast<double>(shards);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

OperatorCache::Shard& OperatorCache::shard_for(const OperatorKey& key) const {
  return *shards_[OperatorKeyHash{}(key) % shards_.size()];
}

void OperatorCache::evict_to_budget(Shard& shard,
                                    std::uint64_t keep_generation) {
  auto it = shard.lru.end();
  while (shard.bytes > shard_budget_ && it != shard.lru.begin()) {
    --it;
    // Loading entries have unknown size and waiters holding their future;
    // the entry that just finished loading is exempt from its own pass so
    // an over-budget operator is still served from memory until something
    // newer displaces it.
    if (!it->ready || it->generation == keep_generation) continue;
    shard.bytes -= it->bytes;
    shard.fp32_bytes -= it->fp32_bytes;
    shard.bytes_evicted += it->bytes;
    ++shard.evictions;
    shard.index.erase(it->key);
    it = shard.lru.erase(it);
  }
}

OperatorCache::Value OperatorCache::get_or_load(const OperatorKey& key,
                                                const Loader& loader) {
  Shard& shard = shard_for(key);
  std::shared_future<Value> future;
  std::promise<Value> promise;
  std::uint64_t my_generation = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (auto it = shard.index.find(key); it != shard.index.end()) {
      ++shard.hits;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      future = it->second->value;
    } else {
      ++shard.misses;
      my_generation = next_generation_.fetch_add(1, std::memory_order_relaxed);
      future = promise.get_future().share();
      shard.lru.push_front(Entry{key, future, my_generation, 0.0, 0.0, false});
      shard.index[key] = shard.lru.begin();
    }
  }

  if (my_generation != 0) {
    Value value;
    try {
      value = loader();
      TLRWSE_ENSURE(value != nullptr, "cache loader returned null");
      promise.set_value(value);
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
    std::lock_guard<std::mutex> lock(shard.mu);
    // clear() may have raced the load; only account our own generation.
    auto it = shard.index.find(key);
    const bool mine =
        it != shard.index.end() && it->second->generation == my_generation;
    if (value) {
      ++shard.loads;
      if (mine) {
        // fp32_bytes == 0 means the loader did not distinguish precisions;
        // charge the packed size so the gap reads as zero, not negative.
        const double fp32 =
            value->fp32_bytes > 0.0 ? value->fp32_bytes : value->bytes;
        it->second->bytes = value->bytes;
        it->second->fp32_bytes = fp32;
        it->second->ready = true;
        shard.bytes += value->bytes;
        shard.fp32_bytes += fp32;
        evict_to_budget(shard, my_generation);
      }
    } else {
      ++shard.load_failures;
      if (mine) {
        shard.lru.erase(it->second);
        shard.index.erase(it);
      }
    }
  }
  return future.get();  // waits for an in-flight load; rethrows its failure
}

bool OperatorCache::contains(const OperatorKey& key) const {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.index.count(key) > 0;
}

CacheStats OperatorCache::stats() const {
  CacheStats s;
  s.budget_bytes = shard_budget_ * static_cast<double>(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.loads += shard->loads;
    s.load_failures += shard->load_failures;
    s.evictions += shard->evictions;
    s.bytes_evicted += shard->bytes_evicted;
    s.bytes_resident += shard->bytes;
    s.bytes_resident_fp32 += shard->fp32_bytes;
    s.entries += shard->index.size();
  }
  return s;
}

void OperatorCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0.0;
    shard->fp32_bytes = 0.0;
  }
}

}  // namespace tlrwse::serve
