// Rolling-window SLO tracking with slow-request exemplars.
//
// A ring of time-sliced log2 histograms (the same octave buckets as
// obs::Histogram) gives windowed p50/p95/p99 without keeping per-request
// samples: each slot covers window_s / slots seconds and is lazily reset
// when its epoch comes around again, so record() is a mutex + a handful of
// integer ops regardless of traffic. The window view merges only slots
// whose epoch is still inside the window.
//
// Error-budget burn rate follows the SRE convention: the fraction of
// requests in the window that violated the objective (errors for the
// availability objective, latency breaches for the latency objective),
// divided by the allowed fraction (1 - availability_objective). A burn
// rate of 1.0 consumes the budget exactly as fast as it refills; above
// that, the budget is burning down.
//
// Exemplars: when a request breaches the latency objective the caller can
// persist its merged trace via persist_exemplar(); writes go to a
// per-process temp name followed by an atomic rename, and the directory is
// bounded by max_exemplars (oldest evicted), so concurrent ctest shards
// never collide and a misbehaving service can't fill the disk.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "tlrwse/obs/metrics_registry.hpp"

namespace tlrwse::obs {

struct SloConfig {
  /// Latency objective in seconds; requests slower than this breach the
  /// SLO. 0 disables latency breach accounting (the window percentiles
  /// still work).
  double latency_objective_s = 0.0;
  /// Availability objective as a success fraction (0.999 = "three nines");
  /// 1 - availability_objective is the error budget.
  double availability_objective = 0.999;
  double window_s = 60.0;  // rolling window covered by the slot ring
  int slots = 6;           // ring granularity (window_s / slots per slot)
  /// Directory for slow-request exemplar traces; empty disables persisting.
  std::string exemplar_dir;
  std::size_t max_exemplars = 32;  // directory bound (oldest evicted)
};

class SloTracker {
 public:
  explicit SloTracker(SloConfig cfg = {});
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Records one finished request (now = steady clock).
  void record(double latency_s, bool ok);
  /// Test seam: record at an explicit time in seconds.
  void record_at(double now_s, double latency_s, bool ok);

  struct Window {
    std::uint64_t count = 0;
    std::uint64_t errors = 0;    // !ok requests
    std::uint64_t breaches = 0;  // latency objective violations
    double p50_s = 0.0;
    double p95_s = 0.0;
    double p99_s = 0.0;
    double max_s = 0.0;
    /// Bad-request fraction over the allowed fraction; 0 when the window
    /// is empty.
    double burn_rate = 0.0;
  };
  [[nodiscard]] Window window() const;
  [[nodiscard]] Window window_at(double now_s) const;

  [[nodiscard]] const SloConfig& config() const noexcept { return cfg_; }
  /// True when the latency breached the configured objective (false when
  /// no objective is set).
  [[nodiscard]] bool breaches_objective(double latency_s) const noexcept {
    return cfg_.latency_objective_s > 0.0 &&
           latency_s > cfg_.latency_objective_s;
  }

  /// Writes `json` as an exemplar for `request_id`: temp file named with
  /// the pid + a process-local sequence, then an atomic rename to
  /// exemplar_<request_id>.json. Evicts the oldest exemplars beyond
  /// max_exemplars. Returns the final path, or "" when the directory is
  /// unset or the write failed (exemplars are best-effort; persistence
  /// failures never fail a request).
  std::string persist_exemplar(std::uint64_t request_id,
                               const std::string& json);

  /// Publishes the current window as gauges (<prefix>.slo.p50_us/.p95_us/
  /// .p99_us microseconds, <prefix>.slo.burn_rate_milli in 1/1000ths,
  /// <prefix>.slo.window_count/.window_breaches/.window_errors).
  void publish(MetricsRegistry& reg, std::string_view prefix) const;

 private:
  struct Slot {
    std::int64_t epoch = -1;  // slot_span index; -1 = never used
    std::uint64_t count = 0;
    std::uint64_t errors = 0;
    std::uint64_t breaches = 0;
    double max_s = 0.0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };

  [[nodiscard]] double now_s() const;
  [[nodiscard]] Window merge_window(double now_s) const;  // mu_ held

  SloConfig cfg_;
  double slot_span_s_ = 10.0;
  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::uint64_t exemplar_seq_ = 0;
};

}  // namespace tlrwse::obs
