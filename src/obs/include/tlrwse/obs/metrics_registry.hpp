// Process-wide metrics: named counters, gauges, and histograms.
//
// The hot path is lock-free and shard-local: every writer thread hashes to
// one of kMetricShards cache-line-padded cells, so increments are a single
// relaxed fetch_add on a line that is private to the thread in the common
// case. Snapshots merge the shards; registration (name -> metric lookup)
// takes a mutex, so instrumentation sites resolve their handle once
// (function-local static or stored member) and reuse it.
//
// The registry generalises the one-off stats structs that grew in
// serve/metrics.hpp: the solve service now derives its ServiceCounters
// from a registry instance, and the tlr/mdc/mdd libraries record into the
// process-wide instance() so any binary can dump one JSON object covering
// compression, MVM, and solver activity.
#pragma once

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace tlrwse::obs {

/// Number of hashed writer slots per metric. Threads beyond this count
/// share slots (still correct, occasionally contended).
inline constexpr std::size_t kMetricShards = 16;

namespace detail {
/// Stable small id of the calling thread, assigned on first use.
inline std::size_t thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot % kMetricShards;
}

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};
}  // namespace detail

/// Monotonic counter. add() is the lock-free fast path; value() merges.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[detail::thread_slot()].value.fetch_add(n,
                                                   std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::CounterShard, kMetricShards> shards_;
};

/// Last-writer-wins instantaneous value (queue depth, resident bytes, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t v) noexcept {
    value_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Log2-bucketed histogram of non-negative doubles (seconds, ranks, bytes).
//
// Buckets cover [2^kMinExp, 2^(kMinExp+kBuckets-2)); values below the range
// land in bucket 0, above in the last bucket. Exact count/sum/min/max are
// kept alongside the buckets, all sharded like Counter so record() is a
// handful of relaxed atomics on a thread-private line.
class Histogram {
 public:
  static constexpr int kMinExp = -31;   // first bucket: < 2^-31 (~0.47 ns)
  static constexpr int kBuckets = 64;   // last finite bound: 2^31 (~2.1e9)

  void record(double v) noexcept {
    auto& s = shards_[detail::thread_slot()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    atomic_add(s.sum, v);
    atomic_min(s.min, v);
    atomic_max(s.max, v);
    s.buckets[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;  // 0 when empty
    double max = 0.0;
    std::array<std::uint64_t, kBuckets> buckets{};

    [[nodiscard]] double mean() const noexcept {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
    /// Nearest-rank percentile estimate: the upper bound of the bucket the
    /// rank falls in, clamped to the observed max (exact to one octave).
    [[nodiscard]] double percentile(double q) const noexcept {
      if (count == 0) return 0.0;
      const auto rank = static_cast<std::uint64_t>(
          std::ceil(q / 100.0 * static_cast<double>(count)));
      std::uint64_t seen = 0;
      for (int b = 0; b < kBuckets; ++b) {
        seen += buckets[static_cast<std::size_t>(b)];
        if (seen >= rank && rank > 0) {
          return std::min(bucket_upper(b), max);
        }
      }
      return max;
    }
  };

  [[nodiscard]] Snapshot snapshot() const noexcept {
    Snapshot out;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    for (const auto& s : shards_) {
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += as_double(s.sum.load(std::memory_order_relaxed));
      mn = std::min(mn, as_double(s.min.load(std::memory_order_relaxed)));
      mx = std::max(mx, as_double(s.max.load(std::memory_order_relaxed)));
      for (int b = 0; b < kBuckets; ++b) {
        out.buckets[static_cast<std::size_t>(b)] +=
            s.buckets[static_cast<std::size_t>(b)].load(
                std::memory_order_relaxed);
      }
    }
    out.min = out.count > 0 ? mn : 0.0;
    out.max = out.count > 0 ? mx : 0.0;
    return out;
  }

  void reset() noexcept {
    for (auto& s : shards_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(as_bits(0.0), std::memory_order_relaxed);
      s.min.store(as_bits(std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
      s.max.store(as_bits(-std::numeric_limits<double>::infinity()),
                  std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] static int bucket_of(double v) noexcept {
    if (!(v > 0.0)) return 0;  // 0, negatives, NaN -> underflow bucket
    const int e = std::ilogb(v);
    const int idx = e - kMinExp + 1;
    return idx < 0 ? 0 : (idx >= kBuckets ? kBuckets - 1 : idx);
  }
  [[nodiscard]] static double bucket_upper(int b) noexcept {
    return std::ldexp(1.0, kMinExp + b);  // exclusive upper bound of bucket b
  }

 private:
  // Doubles are stored as bit patterns in atomic<uint64_t> so the shard
  // works on toolchains where atomic<double> is not lock-free.
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{as_bits(0.0)};
    std::atomic<std::uint64_t> min{
        as_bits(std::numeric_limits<double>::infinity())};
    std::atomic<std::uint64_t> max{
        as_bits(-std::numeric_limits<double>::infinity())};
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
  };

  [[nodiscard]] static std::uint64_t as_bits(double v) noexcept {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    return bits;
  }
  [[nodiscard]] static double as_double(std::uint64_t bits) noexcept {
    double v;
    __builtin_memcpy(&v, &bits, sizeof(v));
    return v;
  }
  static void atomic_add(std::atomic<std::uint64_t>& cell, double v) noexcept {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, as_bits(as_double(cur) + v),
                                       std::memory_order_relaxed)) {
    }
  }
  static void atomic_min(std::atomic<std::uint64_t>& cell, double v) noexcept {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (as_double(cur) > v &&
           !cell.compare_exchange_weak(cur, as_bits(v),
                                       std::memory_order_relaxed)) {
    }
  }
  static void atomic_max(std::atomic<std::uint64_t>& cell, double v) noexcept {
    std::uint64_t cur = cell.load(std::memory_order_relaxed);
    while (as_double(cur) < v &&
           !cell.compare_exchange_weak(cur, as_bits(v),
                                       std::memory_order_relaxed)) {
    }
  }

  std::array<Shard, kMetricShards> shards_;
};

/// RAII timer recording elapsed seconds into a histogram on destruction.
class ScopedHistTimer {
 public:
  explicit ScopedHistTimer(Histogram& h) noexcept
      : hist_(&h), start_(now()) {}
  ScopedHistTimer(const ScopedHistTimer&) = delete;
  ScopedHistTimer& operator=(const ScopedHistTimer&) = delete;
  ~ScopedHistTimer() { hist_->record(now() - start_); }

 private:
  static double now() noexcept;
  Histogram* hist_;
  double start_;
};

/// Named metric registry. `instance()` is the process-wide one the library
/// instrumentation records into; components with their own lifecycle (the
/// solve service) hold a private instance instead so concurrent instances
/// do not mix numbers.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& instance();

  /// Handles are stable for the registry's lifetime: resolve once, reuse.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  struct HistogramEntry {
    std::string name;
    Histogram::Snapshot snap;
  };
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::vector<HistogramEntry> histograms;  // sorted by name

    /// One JSON object with stable key order:
    /// {"counters":{...},"gauges":{...},"histograms":{name:{count,...}}}
    [[nodiscard]] std::string to_json() const;
  };
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every registered metric (benches and tests only; handles stay
  /// valid).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Merges per-worker registry snapshots into one cluster-wide view:
/// counters and histogram counts/sums/buckets add by name, gauges add by
/// name (each worker reports its own depth/residency; the sum is the fleet
/// total), histogram min/max combine respecting empty inputs. Workers
/// prefix their metric names distinctly, so a frontend snapshot and the
/// workers' never collide.
[[nodiscard]] MetricsRegistry::Snapshot merge_snapshots(
    std::span<const MetricsRegistry::Snapshot> snaps);

}  // namespace tlrwse::obs
