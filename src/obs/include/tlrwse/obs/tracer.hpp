// Scoped-span tracer emitting chrome://tracing JSON.
//
// Spans are recorded into fixed-capacity per-thread ring buffers (no locks,
// no allocation on the hot path once a thread's buffer exists), merged and
// sorted only when the trace is dumped. The fast path when tracing is not
// enabled is a single relaxed atomic load, and when the build is configured
// with -DTLRWSE_TRACING=OFF the instrumentation macros compile away
// entirely (see the macro layer at the bottom; obs::noop keeps the no-op
// types compilable in every build so tests can cover both shapes).
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer): events store the pointers, not copies.
//
// Output loads directly in chrome://tracing / https://ui.perfetto.dev:
// complete ("ph":"X") events carry start + duration in microseconds, and
// counter ("ph":"C") events plot series such as the LSQR residual.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tlrwse::obs {

class MetricsRegistry;

/// Global recording flag; inline so the enabled() check inlines to one
/// relaxed load at every instrumentation site.
inline std::atomic<bool> g_trace_enabled{false};

/// Detail tier: fine-grained spans (per-frequency MVMs, per-tile
/// compressions) record only when this is also set. They are ~64x more
/// events than the coarse tier, so detail is opt-in — coarse tracing stays
/// within the <2% overhead budget (bench_obs_overhead) while `tlrwse_cli
/// --trace-out` turns detail on for full-fidelity timelines.
inline std::atomic<bool> g_trace_detail{false};

struct TraceEvent {
  const char* name = nullptr;  // string literal
  const char* cat = nullptr;   // string literal
  std::uint64_t ts_ns = 0;     // start, ns since the tracer epoch
  std::uint64_t dur_ns = 0;    // 'X' events only
  double value = 0.0;          // 'C' events only
  char ph = 'X';
};

class Tracer {
 public:
  static Tracer& instance();

  [[nodiscard]] static bool enabled() noexcept {
    return g_trace_enabled.load(std::memory_order_relaxed);
  }
  [[nodiscard]] static bool detail_enabled() noexcept {
    return g_trace_detail.load(std::memory_order_relaxed) &&
           g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Clears previous events and starts recording. `capacity` is the ring
  /// size per thread; when a thread records more, the oldest events are
  /// overwritten (and counted as dropped in the dump's metadata). `detail`
  /// additionally records the fine-grained tier (see g_trace_detail).
  void enable(std::size_t capacity = kDefaultCapacity, bool detail = false);
  void disable() {
    g_trace_enabled.store(false, std::memory_order_relaxed);
    g_trace_detail.store(false, std::memory_order_relaxed);
  }
  /// Drops all recorded events (buffers of finished threads included).
  void clear();

  /// Hot-path entry points; no-ops unless enabled().
  void complete(const char* name, const char* cat, std::uint64_t ts_ns,
                std::uint64_t dur_ns) noexcept {
    push(TraceEvent{name, cat, ts_ns, dur_ns, 0.0, 'X'});
  }
  void counter(const char* name, double value) noexcept {
    push(TraceEvent{name, "counter", now_ns(), 0, value, 'C'});
  }

  /// Labels the calling thread in the emitted thread_name metadata.
  void set_thread_name(const char* name);

  /// ns since the tracer epoch (process start of the tracing clock).
  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch())
            .count());
  }

  /// Merged chrome://tracing JSON ({"traceEvents":[...]}). Call after the
  /// traced work has finished (events are read without synchronising with
  /// in-flight writers).
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Events currently held across all thread buffers (post-overwrite).
  [[nodiscard]] std::size_t event_count() const;
  /// Events lost to ring overwrite since enable().
  [[nodiscard]] std::uint64_t dropped_count() const;

  /// Per-thread drop accounting — which thread's ring overflowed, not just
  /// the process total — so a lossy trace is diagnosable to the thread
  /// that needs a bigger ring (or less detail).
  struct ThreadDrops {
    std::uint32_t tid = 0;
    std::string name;  // "thread-<tid>" when unnamed
    std::uint64_t dropped = 0;
  };
  [[nodiscard]] std::vector<ThreadDrops> dropped_by_thread() const;
  /// Publishes one gauge per thread ("trace.dropped_spans.<name>") plus
  /// the process total ("trace.dropped_spans.total") into `reg`, so the
  /// snapshot shows per-thread losses alongside the global counter.
  void publish_drop_gauges(MetricsRegistry& reg) const;

  static constexpr std::size_t kDefaultCapacity = 1 << 16;

 private:
  struct ThreadBuffer {
    std::vector<TraceEvent> ring;
    std::uint64_t pushed = 0;  // total push() calls; ring holds the tail
    std::uint32_t tid = 0;
    std::string name;
  };

  void push(TraceEvent e) noexcept;
  ThreadBuffer& local();
  static std::chrono::steady_clock::time_point epoch();

  mutable std::mutex mu_;  // buffer registry + dump; never on the hot path
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::size_t capacity_ = kDefaultCapacity;
  /// Bumped by enable()/clear(); thread-local buffer handles cache it so
  /// the hot path revalidates with one atomic load instead of the mutex.
  std::atomic<std::uint64_t> generation_{1};
};

/// RAII span: captures the start time on construction when tracing is
/// enabled, records a complete event on destruction.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "tlrwse") noexcept {
    if (Tracer::enabled()) {
      name_ = name;
      cat_ = cat;
      start_ = Tracer::now_ns();
    }
  }
  /// Detail-tier constructor (used via TLRWSE_TRACE_SPAN_DETAIL): records
  /// only when detail tracing is on.
  ScopedSpan(const char* name, const char* cat, bool detail_gate) noexcept {
    if (detail_gate ? Tracer::detail_enabled() : Tracer::enabled()) {
      name_ = name;
      cat_ = cat;
      start_ = Tracer::now_ns();
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (name_ != nullptr && Tracer::enabled()) {
      Tracer::instance().complete(name_, cat_, start_,
                                  Tracer::now_ns() - start_);
    }
  }

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ = 0;
};

/// Always-compiled no-op twins of the tracing types, used by the macro
/// layer when TLRWSE_TRACING is OFF and by tests that pin down the no-op
/// shape compiling and linking in every configuration.
namespace noop {
class Span {
 public:
  explicit Span(const char*, const char* = "") noexcept {}
};
inline void counter(const char*, double) noexcept {}
}  // namespace noop

}  // namespace tlrwse::obs

// ------------------------------------------------------------------------
// Instrumentation macros. TLRWSE_TRACE_SPAN opens a span covering the rest
// of the enclosing scope; TLRWSE_TRACE_COUNTER plots a named series value.
#define TLRWSE_OBS_CONCAT2(a, b) a##b
#define TLRWSE_OBS_CONCAT(a, b) TLRWSE_OBS_CONCAT2(a, b)

#ifdef TLRWSE_TRACING_ENABLED
#define TLRWSE_TRACE_SPAN(name, cat)             \
  ::tlrwse::obs::ScopedSpan TLRWSE_OBS_CONCAT(   \
      tlrwse_span_, __LINE__)(name, cat)
#define TLRWSE_TRACE_SPAN_DETAIL(name, cat)      \
  ::tlrwse::obs::ScopedSpan TLRWSE_OBS_CONCAT(   \
      tlrwse_span_, __LINE__)(name, cat, /*detail_gate=*/true)
#define TLRWSE_TRACE_COUNTER(name, value)                     \
  do {                                                        \
    if (::tlrwse::obs::Tracer::enabled()) {                   \
      ::tlrwse::obs::Tracer::instance().counter(name, value); \
    }                                                         \
  } while (0)
#else
#define TLRWSE_TRACE_SPAN(name, cat) \
  ::tlrwse::obs::noop::Span TLRWSE_OBS_CONCAT(tlrwse_span_, __LINE__)(name, cat)
#define TLRWSE_TRACE_SPAN_DETAIL(name, cat) \
  ::tlrwse::obs::noop::Span TLRWSE_OBS_CONCAT(tlrwse_span_, __LINE__)(name, cat)
#define TLRWSE_TRACE_COUNTER(name, value) ((void)0)
#endif
