// Fabric flight recorder: per-PE accounting of simulated kernel launches.
//
// Every simulated launch records one PeSample per PE (cycles, relative and
// absolute memory accesses, flops, SRAM footprint) tagged with the kernel
// phase it belongs to: V-MVM / shuffle / U-MVM for the 3-phase BSP layout,
// or the single fused column phase of the CS-2 layout (which removes the
// shuffle entirely, Sec. 5.2). The recorder aggregates in a streaming
// fashion — a 48-system run launches ~35M PE samples, so nothing per-PE is
// ever stored. What survives is exactly what the paper reports:
//
//   * per-phase occupancy statistics (max/min/mean cycles, the worst PE,
//     load-imbalance factor max/mean),
//   * per-system worst cycles and traffic, so sustained bandwidth can be
//     reported per system as well as aggregate,
//   * the per-phase critical path (phases are barrier-separated in the
//     BSP layout, so the pass time is the sum of per-phase maxima; the
//     fused layout has one phase and the sum degenerates to its max),
//   * downsampled PE-grid heatmaps per phase (fabric coordinates binned
//     into a fixed grid, accumulated across systems).
//
// The recording hook sites compile away under -DTLRWSE_TRACING=OFF via
// TLRWSE_FLIGHT_RECORD (mirroring the tracer macros); the class itself is
// always compiled so reports and benches link in every configuration.
// record() is plain non-atomic accumulation: the simulators that feed it
// are single-threaded chunk streams. Attach one recorder per run.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "tlrwse/common/types.hpp"

namespace tlrwse::obs {

/// Kernel phases of the two TLR-MVM layouts (Secs. 5.2/5.3).
enum class Phase : int {
  kVMvm = 0,        // 3-phase layout: V-batch superstep
  kShuffle = 1,     // 3-phase layout: the inter-phase memory shuffle
  kUMvm = 2,        // 3-phase layout: U-batch superstep
  kFusedColumn = 3, // CS-2 layout: fused per-tile-column kernel
};
inline constexpr int kNumPhases = 4;
[[nodiscard]] const char* phase_name(Phase p) noexcept;

/// One simulated PE's contribution to a launch.
struct PeSample {
  double cycles = 0.0;
  double relative_bytes = 0.0;
  double absolute_bytes = 0.0;
  double flops = 0.0;
  double sram_bytes = 0.0;
};

struct FlightRecorderConfig {
  /// PEs per CS-2 system; 0 folds every PE into one system entry.
  index_t pes_per_system = 0;
  /// PEs per fabric row. Heatmaps need both this and pes_per_system to
  /// place a linear PE index on the fabric; when either is 0 the heatmap
  /// grids stay empty (stats and bandwidths are unaffected).
  index_t fabric_cols = 0;
  index_t heat_rows = 32;  // heatmap bins along the fabric rows
  index_t heat_cols = 32;  // heatmap bins along the fabric columns
  double clock_hz = 850e6;
};

/// Streaming occupancy statistics of one phase.
struct PhaseStats {
  std::uint64_t samples = 0;
  double total_cycles = 0.0;
  double max_cycles = 0.0;
  double min_cycles = 0.0;  // 0 when the phase is empty
  index_t worst_pe = -1;    // PE index of max_cycles
  double relative_bytes = 0.0;
  double absolute_bytes = 0.0;
  double flops = 0.0;
  double max_sram_bytes = 0.0;

  [[nodiscard]] double mean_cycles() const noexcept {
    return samples > 0 ? total_cycles / static_cast<double>(samples) : 0.0;
  }
  /// Load-imbalance factor: worst PE over mean PE (1.0 = perfectly flat).
  [[nodiscard]] double imbalance() const noexcept {
    const double mean = mean_cycles();
    return mean > 0.0 ? max_cycles / mean : 0.0;
  }
};

/// Worst-case PE and traffic of one CS-2 system (all phases folded).
struct SystemStats {
  std::uint64_t samples = 0;
  double worst_cycles = 0.0;
  index_t worst_pe = -1;
  double relative_bytes = 0.0;
  double absolute_bytes = 0.0;
  double flops = 0.0;

  /// Sustained bandwidth of this system alone (its traffic over its own
  /// worst PE), following the paper's accounting.
  [[nodiscard]] double relative_bw(double clock_hz) const noexcept {
    return worst_cycles > 0.0 ? relative_bytes * clock_hz / worst_cycles : 0.0;
  }
  [[nodiscard]] double absolute_bw(double clock_hz) const noexcept {
    return worst_cycles > 0.0 ? absolute_bytes * clock_hz / worst_cycles : 0.0;
  }
};

/// One downsampled heatmap bin (accumulated across systems).
struct HeatCell {
  std::uint64_t samples = 0;
  double cycles_sum = 0.0;
  double cycles_max = 0.0;
  double relative_bytes = 0.0;
};

/// Immutable aggregation produced by FlightRecorder::report().
struct FlightReport {
  double clock_hz = 850e6;
  std::uint64_t launches = 0;  // record() calls
  index_t pes = 0;             // highest PE index seen + 1
  std::array<PhaseStats, kNumPhases> phases{};
  std::vector<SystemStats> systems;

  index_t heat_rows = 0;
  index_t heat_cols = 0;
  index_t fabric_rows = 0;
  index_t fabric_cols = 0;
  /// Row-major heat_rows x heat_cols grid per phase; empty when the
  /// config could not place PEs on the fabric (see FlightRecorderConfig).
  std::array<std::vector<HeatCell>, kNumPhases> heatmaps{};

  /// Sum of per-phase worst cycles: the barrier-separated pass time of
  /// the 3-phase layout; equal to the single phase's max for the fused
  /// layout.
  [[nodiscard]] double critical_path_cycles() const noexcept;
  /// Worst single-PE cycle count over all phases.
  [[nodiscard]] double worst_cycles() const noexcept;
  [[nodiscard]] double total_relative_bytes() const noexcept;
  [[nodiscard]] double total_absolute_bytes() const noexcept;
  [[nodiscard]] double total_flops() const noexcept;

  /// Aggregate sustained metrics over the critical path (paper Sec. 6.5:
  /// total bytes accessed * clock / worst cycle count).
  [[nodiscard]] double relative_bw() const noexcept;
  [[nodiscard]] double absolute_bw() const noexcept;
  [[nodiscard]] double flops_rate() const noexcept;
  [[nodiscard]] double time_us() const noexcept;

  /// Full report as one JSON object: aggregate metrics, per-phase stats,
  /// per-system stats. Heatmaps are serialised separately (they are bulky).
  [[nodiscard]] std::string to_json() const;
  /// One phase's PE-grid heatmap as a JSON object with row-major dense
  /// arrays: {"phase","rows","cols","fabric_rows","fabric_cols",
  /// "samples":[...],"cycles_max":[...],"cycles_mean":[...],
  /// "relative_bytes":[...]}.
  [[nodiscard]] std::string heatmap_json(Phase p) const;
  /// {"heatmaps":[...]} over every phase that recorded samples.
  [[nodiscard]] std::string heatmaps_json() const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig cfg = {});

  /// Streaming accumulation of one PE's sample. Not thread-safe.
  void record(Phase phase, index_t pe, const PeSample& s) noexcept {
    record_span(phase, pe, 1, s);
  }

  /// Bulk form: `count` contiguous PEs starting at `pe`, all carrying the
  /// identical sample `s` (a scattered launch whose PEs are balanced by
  /// construction). One call amortises the aggregation over the whole
  /// span; boundary crossings (system, heat bin) are split internally.
  void record_span(Phase phase, index_t pe, index_t count,
                   const PeSample& s) noexcept;

  /// Drops all recorded samples; the config is kept.
  void clear();

  [[nodiscard]] FlightReport report() const;
  [[nodiscard]] const FlightRecorderConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] std::uint64_t samples() const noexcept { return launches_; }

  /// True when the simulators' recording hook sites are compiled in
  /// (TLRWSE_TRACING=ON). With OFF the hooks are no-ops and reports from
  /// an attached recorder come back empty.
  [[nodiscard]] static constexpr bool compiled_in() noexcept {
#ifdef TLRWSE_TRACING_ENABLED
    return true;
#else
    return false;
#endif
  }

 private:
  FlightRecorderConfig cfg_;
  std::uint64_t launches_ = 0;
  index_t max_pe_ = -1;
  std::array<PhaseStats, kNumPhases> phases_{};
  std::vector<SystemStats> systems_;
  index_t fabric_rows_ = 0;  // derived from cfg: ceil(pps / fabric_cols)
  std::array<std::vector<HeatCell>, kNumPhases> heat_;
};

/// Exports the report's headline numbers as chrome://tracing counter
/// tracks through the process Tracer (no-op when tracing is disabled):
/// per-phase worst/mean cycles and imbalance, plus the aggregate critical
/// path and sustained bandwidths.
void export_flight_counters(const FlightReport& report);

}  // namespace tlrwse::obs

/// Hook-site macro: records into `rec` (a FlightRecorder*) when tracing is
/// compiled in, compiles to nothing under -DTLRWSE_TRACING=OFF. The sample
/// argument must be parenthesised by the caller when it contains commas.
#ifdef TLRWSE_TRACING_ENABLED
#define TLRWSE_FLIGHT_RECORD(rec, phase, pe, sample)   \
  do {                                                 \
    if ((rec) != nullptr) {                            \
      (rec)->record((phase), (pe), (sample));          \
    }                                                  \
  } while (0)
#else
#define TLRWSE_FLIGHT_RECORD(rec, phase, pe, sample) ((void)0)
#endif
