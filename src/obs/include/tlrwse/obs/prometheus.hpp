// Prometheus text exposition (version 0.0.4) of a MetricsRegistry
// snapshot, so `tlrwse_cli serve --metrics-out FILE` (and anything else
// holding a registry) can drop a scrape-ready file next to the JSON dump.
//
// Mapping: every metric name is prefixed with "tlrwse_" and sanitised to
// the Prometheus charset (runs of invalid characters become '_').
// Counters and gauges map 1:1; histograms become native Prometheus
// histograms whose cumulative `le` buckets are the registry's log2 bucket
// upper bounds (empty leading/trailing octaves are skipped).
#pragma once

#include <span>
#include <string>

#include "tlrwse/obs/metrics_registry.hpp"

namespace tlrwse::obs {

/// `name` sanitised for Prometheus and prefixed with "tlrwse_".
[[nodiscard]] std::string prometheus_metric_name(std::string_view name);

/// The whole snapshot in Prometheus text exposition format.
[[nodiscard]] std::string metrics_to_prometheus_text(
    const MetricsRegistry::Snapshot& snap);

/// Fleet-wide export: merges per-process snapshots (frontend + every
/// worker) via obs::merge_snapshots and renders the merged view, so one
/// scrape covers the whole cluster with cumulative histogram buckets that
/// stay monotone across the merge.
[[nodiscard]] std::string fleet_to_prometheus_text(
    std::span<const MetricsRegistry::Snapshot> snaps);

}  // namespace tlrwse::obs
