// Fixed per-request latency attribution across the serve/cluster pipeline.
//
// Every request accumulates one StageBreakdown — queue wait, operator
// load, oocache stream stall, FFT, remote/local MVM, gather/scatter, RPC,
// and the LSQR loop — and a StageRecorder folds it into per-stage
// histograms (<prefix>.stage.*) so the attribution shows up in metrics
// JSON and the Prometheus export without any per-request allocation. The
// recorder resolves its histogram handles once; record() is eight
// histogram records, cheap enough to stay always-on (bench_obs_overhead
// gates it under 2%).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "tlrwse/obs/metrics_registry.hpp"

namespace tlrwse::obs {

struct StageBreakdown {
  double queue_wait_s = 0.0;    // admission -> dequeue
  double load_s = 0.0;          // operator cache miss / shard load
  double stream_stall_s = 0.0;  // oocache prefetch stalls inside the solve
  double fft_s = 0.0;           // forward + inverse rFFT stages
  double mvm_s = 0.0;           // per-frequency kernel MVMs (worker-side in
                                // the cluster: sum of worker compute time)
  double gather_scatter_s = 0.0;  // panel gather + spectrum scatter
  double rpc_s = 0.0;           // wire round-trips (dispatch -> collect)
  double lsqr_s = 0.0;          // whole LSQR loop (contains fft/mvm/rpc)
  int lsqr_iterations = 0;

  [[nodiscard]] std::string to_json() const {
    std::ostringstream os;
    os << "{\"queue_wait_s\":" << queue_wait_s << ",\"load_s\":" << load_s
       << ",\"stream_stall_s\":" << stream_stall_s << ",\"fft_s\":" << fft_s
       << ",\"mvm_s\":" << mvm_s
       << ",\"gather_scatter_s\":" << gather_scatter_s
       << ",\"rpc_s\":" << rpc_s << ",\"lsqr_s\":" << lsqr_s
       << ",\"lsqr_iterations\":" << lsqr_iterations << "}";
    return os.str();
  }
};

/// Resolve-once recorder for a registry's <prefix>.stage.* histograms.
class StageRecorder {
 public:
  StageRecorder(MetricsRegistry& reg, std::string_view prefix)
      : queue_wait_(reg.histogram(std::string(prefix) + ".stage.queue_wait_s")),
        load_(reg.histogram(std::string(prefix) + ".stage.load_s")),
        stream_stall_(
            reg.histogram(std::string(prefix) + ".stage.stream_stall_s")),
        fft_(reg.histogram(std::string(prefix) + ".stage.fft_s")),
        mvm_(reg.histogram(std::string(prefix) + ".stage.mvm_s")),
        gather_scatter_(
            reg.histogram(std::string(prefix) + ".stage.gather_scatter_s")),
        rpc_(reg.histogram(std::string(prefix) + ".stage.rpc_s")),
        lsqr_(reg.histogram(std::string(prefix) + ".stage.lsqr_s")),
        lsqr_iterations_(
            reg.histogram(std::string(prefix) + ".stage.lsqr_iterations")) {}

  void record(const StageBreakdown& b) noexcept {
    queue_wait_.record(b.queue_wait_s);
    load_.record(b.load_s);
    stream_stall_.record(b.stream_stall_s);
    fft_.record(b.fft_s);
    mvm_.record(b.mvm_s);
    gather_scatter_.record(b.gather_scatter_s);
    rpc_.record(b.rpc_s);
    lsqr_.record(b.lsqr_s);
    lsqr_iterations_.record(static_cast<double>(b.lsqr_iterations));
  }

 private:
  Histogram& queue_wait_;
  Histogram& load_;
  Histogram& stream_stall_;
  Histogram& fft_;
  Histogram& mvm_;
  Histogram& gather_scatter_;
  Histogram& rpc_;
  Histogram& lsqr_;
  Histogram& lsqr_iterations_;
};

}  // namespace tlrwse::obs
