// Distributed trace identity and the remote-span buffer.
//
// A TraceContext travels with a request through the cluster wire protocol
// (an optional trailing field on kApply frames, see cluster/wire.hpp): the
// frontend mints one trace id per sampled request, workers stamp it on the
// spans they record, and a later kTraceDump exchange returns those spans to
// the frontend for merging (trace_merge.hpp). The context is independent of
// the compile-time TLRWSE_TRACING macro layer — request tracing is a
// per-request sampling decision, not a build flavour — so merged timelines
// work even in -DTLRWSE_TRACING=OFF builds.
//
// RemoteSpan timestamps are raw steady_clock nanoseconds of the *recording*
// process; they only become comparable after the merger applies the
// NTP-style per-worker clock offset.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace tlrwse::obs {

/// Identity of one distributed request trace. trace_id 0 means "no trace";
/// sampled gates span recording so unsampled requests pay nothing beyond
/// carrying the three fields.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
  bool sampled = false;

  [[nodiscard]] bool active() const noexcept {
    return trace_id != 0 && sampled;
  }
};

/// One completed span as recorded by a (possibly remote) process, stamped
/// with its local steady clock.
struct RemoteSpan {
  std::string name;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t ts_ns = 0;   // local steady_clock, ns since an arbitrary epoch
  std::uint64_t dur_ns = 0;
};

/// Raw steady_clock now in nanoseconds — the clock RemoteSpan timestamps
/// and the wire-level worker_recv/send stamps are taken from.
[[nodiscard]] inline std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Bounded, mutex-guarded store of completed spans keyed by trace id.
/// Workers record into it during a sampled apply and hand the spans back on
/// kTraceDump; take() removes the trace so the buffer never accumulates
/// traces the frontend stopped caring about beyond the FIFO cap. Overflow
/// (too many traces, or too many spans in one trace) is counted per trace
/// and surfaced in the dump so the merger can mark lossy timelines.
class RemoteSpanBuffer {
 public:
  explicit RemoteSpanBuffer(std::size_t max_traces = 64,
                            std::size_t max_spans_per_trace = 4096)
      : max_traces_(max_traces ? max_traces : 1),
        max_spans_(max_spans_per_trace ? max_spans_per_trace : 1) {}

  /// Process-unique (per buffer) span id; 0 is never returned.
  [[nodiscard]] std::uint64_t next_span_id() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void record(RemoteSpan span) {
    if (span.trace_id == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = traces_.find(span.trace_id);
    if (it == traces_.end()) {
      while (traces_.size() >= max_traces_ && !order_.empty()) {
        traces_.erase(order_.front());
        order_.pop_front();
      }
      order_.push_back(span.trace_id);
      it = traces_.emplace(span.trace_id, Entry{}).first;
    }
    Entry& e = it->second;
    if (e.spans.size() >= max_spans_) {
      ++e.dropped;
      return;
    }
    e.spans.push_back(std::move(span));
  }

  struct Dump {
    std::vector<RemoteSpan> spans;
    std::uint64_t dropped = 0;
  };

  /// Removes and returns the trace's spans (empty Dump for unknown ids).
  [[nodiscard]] Dump take(std::uint64_t trace_id) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = traces_.find(trace_id);
    if (it == traces_.end()) return {};
    Dump out{std::move(it->second.spans), it->second.dropped};
    traces_.erase(it);
    for (auto o = order_.begin(); o != order_.end(); ++o) {
      if (*o == trace_id) {
        order_.erase(o);
        break;
      }
    }
    return out;
  }

  [[nodiscard]] std::size_t trace_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return traces_.size();
  }

 private:
  struct Entry {
    std::vector<RemoteSpan> spans;
    std::uint64_t dropped = 0;
  };

  const std::size_t max_traces_;
  const std::size_t max_spans_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> traces_;
  std::deque<std::uint64_t> order_;  // insertion order, for FIFO eviction
};

}  // namespace tlrwse::obs
