// Merging per-process span dumps into one chrome://tracing timeline.
//
// The frontend and each worker record RemoteSpans against their own
// steady_clock; before they can share a timeline, every worker's clock must
// be expressed in frontend time. Each RPC exchange yields one NTP-style
// sample — the frontend's send (t0) / receive (t3) stamps bracket the
// worker's receive (t1) / send (t2) stamps — giving
//
//   offset = ((t1 - t0) + (t2 - t3)) / 2
//
// the worker clock minus the frontend clock, exact when the network delay
// is symmetric. Among a request's samples the one with the smallest
// round-trip residual (t3-t0) - (t2-t1) bounds the error tightest, so the
// merger uses the min-RTT sample per worker (the classic NTP filter).
// Aligned spans are additionally clamped into the frontend's request
// window, which keeps the merged timeline monotone with non-negative
// overlap even under offset estimation error.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tlrwse/obs/trace_context.hpp"

namespace tlrwse::obs {

/// One RPC's four timestamps, all raw steady_clock ns: t0/t3 on the
/// frontend clock, t1/t2 on the worker clock.
struct ClockSample {
  std::uint64_t local_send_ns = 0;   // t0
  std::uint64_t remote_recv_ns = 0;  // t1
  std::uint64_t remote_send_ns = 0;  // t2
  std::uint64_t local_recv_ns = 0;   // t3
};

/// Round-trip time minus the worker's processing time — the uncertainty of
/// the sample's offset estimate.
[[nodiscard]] std::int64_t clock_sample_rtt_ns(const ClockSample& s) noexcept;

/// Offset of the remote clock relative to the local clock (remote = local
/// + offset), from the minimum-RTT sample. Returns 0 for an empty set.
[[nodiscard]] std::int64_t estimate_clock_offset_ns(
    std::span<const ClockSample> samples) noexcept;

/// One worker's contribution to a merged trace.
struct WorkerTrace {
  std::string name;                 // process label in the timeline
  std::int64_t offset_ns = 0;       // worker clock minus frontend clock
  std::vector<RemoteSpan> spans;    // worker-clock timestamps
  std::uint64_t dropped_spans = 0;  // buffer overflow during recording
};

struct MergedTraceInput {
  std::uint64_t trace_id = 0;
  std::string frontend_name = "frontend";
  std::vector<RemoteSpan> frontend_spans;  // frontend-clock timestamps
  std::uint64_t frontend_dropped = 0;
  std::vector<WorkerTrace> workers;
};

/// One chrome://tracing JSON object: pid 0 is the frontend, pid i+1 worker
/// i, all timestamps aligned to the frontend clock, normalised so the
/// earliest frontend span starts at ts=0, worker spans clamped into the
/// frontend window, events sorted by start time. Top-level keys "traceId"
/// and "droppedSpans" carry the identity and the total loss so validators
/// (tools/check_trace_json.py) and lossy-timeline marking need no parsing
/// of event args.
[[nodiscard]] std::string merge_trace_json(const MergedTraceInput& input);

}  // namespace tlrwse::obs
