#include "tlrwse/obs/metrics_registry.hpp"

#include <chrono>
#include <sstream>

namespace tlrwse::obs {

double ScopedHistTimer::now() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.histograms.push_back({name, h->snapshot()});
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ',';
    first = false;
    os << '"' << name << "\":" << v;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) os << ',';
    first = false;
    os << '"' << h.name << "\":{\"count\":" << h.snap.count
       << ",\"sum\":" << h.snap.sum << ",\"mean\":" << h.snap.mean()
       << ",\"min\":" << h.snap.min << ",\"max\":" << h.snap.max
       << ",\"p50\":" << h.snap.percentile(50.0)
       << ",\"p95\":" << h.snap.percentile(95.0)
       << ",\"p99\":" << h.snap.percentile(99.0) << '}';
  }
  os << "}}";
  return os.str();
}

MetricsRegistry::Snapshot merge_snapshots(
    std::span<const MetricsRegistry::Snapshot> snaps) {
  MetricsRegistry::Snapshot out;
  // Histograms merge through a name-keyed map, then flatten back to the
  // name-sorted vector layout Snapshot promises.
  std::map<std::string, Histogram::Snapshot> hists;
  for (const auto& s : snaps) {
    for (const auto& [name, v] : s.counters) out.counters[name] += v;
    for (const auto& [name, v] : s.gauges) out.gauges[name] += v;
    for (const auto& h : s.histograms) {
      Histogram::Snapshot& dst = hists[h.name];
      if (h.snap.count == 0) continue;
      if (dst.count == 0) {
        dst.min = h.snap.min;
        dst.max = h.snap.max;
      } else {
        dst.min = std::min(dst.min, h.snap.min);
        dst.max = std::max(dst.max, h.snap.max);
      }
      dst.count += h.snap.count;
      dst.sum += h.snap.sum;
      for (std::size_t b = 0; b < dst.buckets.size(); ++b) {
        dst.buckets[b] += h.snap.buckets[b];
      }
    }
  }
  out.histograms.reserve(hists.size());
  for (auto& [name, snap] : hists) {
    out.histograms.push_back(MetricsRegistry::HistogramEntry{name, snap});
  }
  return out;
}

}  // namespace tlrwse::obs
