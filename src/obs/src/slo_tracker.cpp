#include "tlrwse/obs/slo_tracker.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#define TLRWSE_GETPID _getpid
#else
#include <unistd.h>
#define TLRWSE_GETPID ::getpid
#endif

namespace tlrwse::obs {

namespace fs = std::filesystem;

SloTracker::SloTracker(SloConfig cfg) : cfg_(cfg) {
  if (cfg_.slots < 1) cfg_.slots = 1;
  if (!(cfg_.window_s > 0.0)) cfg_.window_s = 60.0;
  slot_span_s_ = cfg_.window_s / static_cast<double>(cfg_.slots);
  slots_.resize(static_cast<std::size_t>(cfg_.slots));
  if (cfg_.max_exemplars == 0) cfg_.max_exemplars = 1;
}

double SloTracker::now_s() const {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SloTracker::record(double latency_s, bool ok) {
  record_at(now_s(), latency_s, ok);
}

void SloTracker::record_at(double now_s, double latency_s, bool ok) {
  const auto epoch = static_cast<std::int64_t>(now_s / slot_span_s_);
  const auto idx = static_cast<std::size_t>(
      epoch % static_cast<std::int64_t>(slots_.size()));
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[idx];
  if (slot.epoch != epoch) {
    // The ring came back around; this slot's old contents fell out of the
    // window long ago.
    slot = Slot{};
    slot.epoch = epoch;
  }
  ++slot.count;
  if (!ok) ++slot.errors;
  if (breaches_objective(latency_s)) ++slot.breaches;
  slot.max_s = std::max(slot.max_s, latency_s);
  ++slot.buckets[static_cast<std::size_t>(Histogram::bucket_of(latency_s))];
}

SloTracker::Window SloTracker::merge_window(double now_s) const {
  const auto epoch = static_cast<std::int64_t>(now_s / slot_span_s_);
  const std::int64_t oldest = epoch - static_cast<std::int64_t>(slots_.size()) + 1;
  Window w;
  std::array<std::uint64_t, Histogram::kBuckets> merged{};
  for (const Slot& slot : slots_) {
    if (slot.epoch < oldest || slot.epoch > epoch) continue;
    w.count += slot.count;
    w.errors += slot.errors;
    w.breaches += slot.breaches;
    w.max_s = std::max(w.max_s, slot.max_s);
    for (std::size_t b = 0; b < merged.size(); ++b) merged[b] += slot.buckets[b];
  }
  if (w.count == 0) return w;

  const auto percentile = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q / 100.0 * static_cast<double>(w.count)));
    std::uint64_t seen = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      seen += merged[static_cast<std::size_t>(b)];
      if (seen >= rank && rank > 0) {
        return std::min(Histogram::bucket_upper(b), w.max_s);
      }
    }
    return w.max_s;
  };
  w.p50_s = percentile(50.0);
  w.p95_s = percentile(95.0);
  w.p99_s = percentile(99.0);

  const double allowed = std::max(1e-9, 1.0 - cfg_.availability_objective);
  const double bad = static_cast<double>(w.errors + w.breaches) /
                     static_cast<double>(w.count);
  w.burn_rate = bad / allowed;
  return w;
}

SloTracker::Window SloTracker::window() const { return window_at(now_s()); }

SloTracker::Window SloTracker::window_at(double now_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  return merge_window(now_s);
}

std::string SloTracker::persist_exemplar(std::uint64_t request_id,
                                         const std::string& json) {
  if (cfg_.exemplar_dir.empty()) return {};
  std::uint64_t seq = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = ++exemplar_seq_;
  }
  std::error_code ec;
  const fs::path dir(cfg_.exemplar_dir);
  fs::create_directories(dir, ec);  // best-effort; the write below reports

  const fs::path final_path =
      dir / ("exemplar_" + std::to_string(request_id) + ".json");
  // Per-process temp name: two ctest shards (or two service instances)
  // pointed at the same directory never tear each other's writes, and the
  // rename makes the exemplar appear atomically or not at all.
  const fs::path tmp_path =
      dir / (".exemplar_" + std::to_string(TLRWSE_GETPID()) + "_" +
             std::to_string(seq) + ".tmp");
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) return {};
    out << json;
    if (!out) {
      fs::remove(tmp_path, ec);
      return {};
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return {};
  }

  // Retention: drop the oldest exemplars past the bound. Names sort by
  // write time well enough for a bound, but use mtime to be precise.
  std::vector<std::pair<fs::file_time_type, fs::path>> existing;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind("exemplar_", 0) != 0) continue;
    std::error_code tec;
    existing.emplace_back(fs::last_write_time(entry.path(), tec),
                          entry.path());
  }
  if (existing.size() > cfg_.max_exemplars) {
    std::sort(existing.begin(), existing.end());
    const std::size_t excess = existing.size() - cfg_.max_exemplars;
    for (std::size_t i = 0; i < excess; ++i) {
      std::error_code rec;
      fs::remove(existing[i].second, rec);
    }
  }
  return final_path.string();
}

void SloTracker::publish(MetricsRegistry& reg, std::string_view prefix) const {
  const Window w = window();
  const std::string p(prefix);
  reg.gauge(p + ".slo.p50_us").set(static_cast<std::int64_t>(w.p50_s * 1e6));
  reg.gauge(p + ".slo.p95_us").set(static_cast<std::int64_t>(w.p95_s * 1e6));
  reg.gauge(p + ".slo.p99_us").set(static_cast<std::int64_t>(w.p99_s * 1e6));
  reg.gauge(p + ".slo.burn_rate_milli")
      .set(static_cast<std::int64_t>(w.burn_rate * 1e3));
  reg.gauge(p + ".slo.window_count")
      .set(static_cast<std::int64_t>(w.count));
  reg.gauge(p + ".slo.window_breaches")
      .set(static_cast<std::int64_t>(w.breaches));
  reg.gauge(p + ".slo.window_errors")
      .set(static_cast<std::int64_t>(w.errors));
}

}  // namespace tlrwse::obs
