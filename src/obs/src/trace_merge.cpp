#include "tlrwse/obs/trace_merge.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace tlrwse::obs {

namespace {

/// Signed difference of two unsigned clock readings.
std::int64_t diff_ns(std::uint64_t a, std::uint64_t b) noexcept {
  return static_cast<std::int64_t>(a - b);
}

std::int64_t sample_offset_ns(const ClockSample& s) noexcept {
  // ((t1 - t0) + (t2 - t3)) / 2 — symmetric-delay NTP offset.
  return (diff_ns(s.remote_recv_ns, s.local_send_ns) +
          diff_ns(s.remote_send_ns, s.local_recv_ns)) /
         2;
}

void json_escape(std::ostringstream& os, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

struct PlacedSpan {
  const RemoteSpan* span = nullptr;
  int pid = 0;
  std::uint64_t ts_ns = 0;  // aligned + normalised
  std::uint64_t dur_ns = 0;
};

}  // namespace

std::int64_t clock_sample_rtt_ns(const ClockSample& s) noexcept {
  return diff_ns(s.local_recv_ns, s.local_send_ns) -
         diff_ns(s.remote_send_ns, s.remote_recv_ns);
}

std::int64_t estimate_clock_offset_ns(
    std::span<const ClockSample> samples) noexcept {
  if (samples.empty()) return 0;
  const ClockSample* best = &samples.front();
  std::int64_t best_rtt = clock_sample_rtt_ns(*best);
  for (const ClockSample& s : samples.subspan(1)) {
    const std::int64_t rtt = clock_sample_rtt_ns(s);
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = &s;
    }
  }
  return sample_offset_ns(*best);
}

std::string merge_trace_json(const MergedTraceInput& input) {
  // The frontend's spans define the request window everything is clamped
  // into; without any the window collapses to the workers' aligned extent.
  std::uint64_t window_begin = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t window_end = 0;
  for (const RemoteSpan& s : input.frontend_spans) {
    window_begin = std::min(window_begin, s.ts_ns);
    window_end = std::max(window_end, s.ts_ns + s.dur_ns);
  }
  const bool have_window = window_end > 0 &&
                           window_begin != std::numeric_limits<std::uint64_t>::max();

  std::vector<PlacedSpan> placed;
  placed.reserve(input.frontend_spans.size());
  for (const RemoteSpan& s : input.frontend_spans) {
    placed.push_back({&s, 0, s.ts_ns, s.dur_ns});
  }
  for (std::size_t w = 0; w < input.workers.size(); ++w) {
    const WorkerTrace& wt = input.workers[w];
    for (const RemoteSpan& s : wt.spans) {
      // Worker clock -> frontend clock, then clamp into the window so an
      // offset mis-estimate can never push a child span outside its
      // enclosing request (monotone, non-negative overlap by
      // construction).
      std::int64_t ts = static_cast<std::int64_t>(s.ts_ns) - wt.offset_ns;
      std::int64_t dur = static_cast<std::int64_t>(s.dur_ns);
      if (have_window) {
        const auto lo = static_cast<std::int64_t>(window_begin);
        const auto hi = static_cast<std::int64_t>(window_end);
        ts = std::clamp(ts, lo, hi);
        dur = std::min(dur, hi - ts);
      }
      placed.push_back({&s, static_cast<int>(w) + 1,
                        static_cast<std::uint64_t>(std::max<std::int64_t>(ts, 0)),
                        static_cast<std::uint64_t>(std::max<std::int64_t>(dur, 0))});
    }
  }

  // Normalise so the merged timeline starts at 0.
  std::uint64_t t0 = have_window ? window_begin
                                 : std::numeric_limits<std::uint64_t>::max();
  if (!have_window) {
    for (const PlacedSpan& p : placed) t0 = std::min(t0, p.ts_ns);
    if (placed.empty()) t0 = 0;
  }
  for (PlacedSpan& p : placed) p.ts_ns = p.ts_ns >= t0 ? p.ts_ns - t0 : 0;

  std::sort(placed.begin(), placed.end(),
            [](const PlacedSpan& a, const PlacedSpan& b) {
              if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
              return a.dur_ns > b.dur_ns;  // parents before their children
            });

  std::uint64_t dropped = input.frontend_dropped;
  for (const WorkerTrace& wt : input.workers) dropped += wt.dropped_spans;

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceId\":\"" << input.trace_id
     << "\",\"droppedSpans\":" << dropped << ",\"traceEvents\":[\n";
  bool first = true;
  const auto process_meta = [&](int pid, const std::string& name,
                                std::uint64_t proc_dropped) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape(os, name);
    os << "\",\"dropped_spans\":" << proc_dropped << "}}";
  };
  process_meta(0, input.frontend_name, input.frontend_dropped);
  for (std::size_t w = 0; w < input.workers.size(); ++w) {
    process_meta(static_cast<int>(w) + 1, input.workers[w].name,
                 input.workers[w].dropped_spans);
  }
  for (const PlacedSpan& p : placed) {
    if (!first) os << ",\n";
    first = false;
    os << "{\"name\":\"";
    json_escape(os, p.span->name);
    os << "\",\"cat\":\"request\",\"ph\":\"X\",\"pid\":" << p.pid
       << ",\"tid\":0,\"ts\":" << static_cast<double>(p.ts_ns) / 1e3
       << ",\"dur\":" << static_cast<double>(p.dur_ns) / 1e3
       << ",\"args\":{\"trace_id\":\"" << input.trace_id << "\",\"span_id\":"
       << p.span->span_id << ",\"parent_span_id\":" << p.span->parent_span_id
       << "}}";
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace tlrwse::obs
