#include "tlrwse/obs/prometheus.hpp"

#include <cctype>
#include <sstream>

namespace tlrwse::obs {

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "tlrwse_";
  bool last_was_sep = true;  // collapse runs of invalid chars to one '_'
  for (const char c : name) {
    const bool valid = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                       c == '_' || c == ':';
    if (valid) {
      out.push_back(c);
      last_was_sep = false;
    } else if (!last_was_sep) {
      out.push_back('_');
      last_was_sep = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

std::string metrics_to_prometheus_text(const MetricsRegistry::Snapshot& snap) {
  std::ostringstream os;
  for (const auto& [name, value] : snap.counters) {
    const std::string p = prometheus_metric_name(name);
    os << "# TYPE " << p << " counter\n" << p << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string p = prometheus_metric_name(name);
    os << "# TYPE " << p << " gauge\n" << p << ' ' << value << '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string p = prometheus_metric_name(h.name);
    os << "# TYPE " << p << " histogram\n";
    // Skip empty leading/trailing octaves but keep the occupied span
    // contiguous so the cumulative counts stay monotone.
    int first = Histogram::kBuckets, last = -1;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h.snap.buckets[static_cast<std::size_t>(b)] > 0) {
        if (first > b) first = b;
        last = b;
      }
    }
    std::uint64_t cumulative = 0;
    for (int b = first; b <= last; ++b) {
      cumulative += h.snap.buckets[static_cast<std::size_t>(b)];
      os << p << "_bucket{le=\"" << Histogram::bucket_upper(b) << "\"} "
         << cumulative << '\n';
    }
    os << p << "_bucket{le=\"+Inf\"} " << h.snap.count << '\n'
       << p << "_sum " << h.snap.sum << '\n'
       << p << "_count " << h.snap.count << '\n';
  }
  return os.str();
}

std::string fleet_to_prometheus_text(
    std::span<const MetricsRegistry::Snapshot> snaps) {
  return metrics_to_prometheus_text(merge_snapshots(snaps));
}

}  // namespace tlrwse::obs
