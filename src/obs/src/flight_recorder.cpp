#include "tlrwse/obs/flight_recorder.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::obs {

const char* phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::kVMvm:
      return "v_mvm";
    case Phase::kShuffle:
      return "shuffle";
    case Phase::kUMvm:
      return "u_mvm";
    case Phase::kFusedColumn:
      return "fused_column";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderConfig cfg) : cfg_(cfg) {
  for (auto& p : phases_) {
    p.min_cycles = std::numeric_limits<double>::infinity();
  }
  if (cfg_.pes_per_system > 0 && cfg_.fabric_cols > 0 &&
      cfg_.heat_rows > 0 && cfg_.heat_cols > 0) {
    fabric_rows_ =
        (cfg_.pes_per_system + cfg_.fabric_cols - 1) / cfg_.fabric_cols;
  }
}

void FlightRecorder::record_span(Phase phase, index_t pe, index_t count,
                                 const PeSample& s) noexcept {
  if (count <= 0) return;
  const auto pi = static_cast<std::size_t>(phase);
  const double n = static_cast<double>(count);
  launches_ += static_cast<std::uint64_t>(count);
  max_pe_ = std::max(max_pe_, pe + count - 1);

  PhaseStats& ps = phases_[pi];
  ps.samples += static_cast<std::uint64_t>(count);
  ps.total_cycles += n * s.cycles;
  if (s.cycles > ps.max_cycles) {
    ps.max_cycles = s.cycles;
    ps.worst_pe = pe;
  }
  ps.min_cycles = std::min(ps.min_cycles, s.cycles);
  ps.relative_bytes += n * s.relative_bytes;
  ps.absolute_bytes += n * s.absolute_bytes;
  ps.flops += n * s.flops;
  ps.max_sram_bytes = std::max(ps.max_sram_bytes, s.sram_bytes);

  // Walk the span once per system it touches (spans are launch-sized —
  // at most a handful of PEs — so this loop runs once almost always).
  index_t first = pe;
  index_t remaining = count;
  while (remaining > 0) {
    const index_t pps = cfg_.pes_per_system;
    const index_t sys = pps > 0 ? first / pps : 0;
    const index_t sys_end = pps > 0 ? (sys + 1) * pps : first + remaining;
    const index_t take = std::min(remaining, sys_end - first);
    const double dtake = static_cast<double>(take);
    if (sys >= static_cast<index_t>(systems_.size())) {
      systems_.resize(static_cast<std::size_t>(sys) + 1);
    }
    SystemStats& ss = systems_[static_cast<std::size_t>(sys)];
    ss.samples += static_cast<std::uint64_t>(take);
    if (s.cycles > ss.worst_cycles) {
      ss.worst_cycles = s.cycles;
      ss.worst_pe = first;
    }
    ss.relative_bytes += dtake * s.relative_bytes;
    ss.absolute_bytes += dtake * s.absolute_bytes;
    ss.flops += dtake * s.flops;

    if (fabric_rows_ > 0) {
      // Fabric placement of the linear PE ids within this system,
      // downsampled to the heat grid; systems overlay onto the same grid.
      // Contiguous PEs fill fabric rows left to right, so the span is
      // consumed one heat cell at a time (a cell covers ~fabric_cols /
      // heat_cols consecutive PEs within a row).
      auto& grid = heat_[pi];
      if (grid.empty()) {
        grid.resize(static_cast<std::size_t>(cfg_.heat_rows * cfg_.heat_cols));
      }
      index_t local = first - sys * pps;
      index_t left = take;
      while (left > 0) {
        const index_t frow = local / cfg_.fabric_cols;
        const index_t fcol = local % cfg_.fabric_cols;
        const index_t br = std::min(cfg_.heat_rows - 1,
                                    frow * cfg_.heat_rows / fabric_rows_);
        const index_t bc = std::min(cfg_.heat_cols - 1,
                                    fcol * cfg_.heat_cols / cfg_.fabric_cols);
        // First fabric column of the next heat bin (ceil), clamped to the
        // row end so row wrap re-derives the placement.
        const index_t next_fcol = std::min(
            cfg_.fabric_cols,
            ((bc + 1) * cfg_.fabric_cols + cfg_.heat_cols - 1) / cfg_.heat_cols);
        const index_t cell_take = std::min(left, next_fcol - fcol);
        const double dcell = static_cast<double>(cell_take);
        HeatCell& cell =
            grid[static_cast<std::size_t>(br * cfg_.heat_cols + bc)];
        cell.samples += static_cast<std::uint64_t>(cell_take);
        cell.cycles_sum += dcell * s.cycles;
        cell.cycles_max = std::max(cell.cycles_max, s.cycles);
        cell.relative_bytes += dcell * s.relative_bytes;
        local += cell_take;
        left -= cell_take;
      }
    }
    first += take;
    remaining -= take;
  }
}

void FlightRecorder::clear() {
  launches_ = 0;
  max_pe_ = -1;
  phases_ = {};
  for (auto& p : phases_) {
    p.min_cycles = std::numeric_limits<double>::infinity();
  }
  systems_.clear();
  for (auto& g : heat_) g.clear();
}

FlightReport FlightRecorder::report() const {
  FlightReport out;
  out.clock_hz = cfg_.clock_hz;
  out.launches = launches_;
  out.pes = max_pe_ + 1;
  out.phases = phases_;
  for (auto& p : out.phases) {
    if (p.samples == 0) p.min_cycles = 0.0;  // +inf sentinel -> empty
  }
  out.systems = systems_;
  out.heat_rows = cfg_.heat_rows;
  out.heat_cols = cfg_.heat_cols;
  out.fabric_rows = fabric_rows_;
  out.fabric_cols = cfg_.fabric_cols;
  out.heatmaps = heat_;
  return out;
}

double FlightReport::critical_path_cycles() const noexcept {
  double sum = 0.0;
  for (const auto& p : phases) sum += p.max_cycles;
  return sum;
}

double FlightReport::worst_cycles() const noexcept {
  double worst = 0.0;
  for (const auto& p : phases) worst = std::max(worst, p.max_cycles);
  return worst;
}

double FlightReport::total_relative_bytes() const noexcept {
  double sum = 0.0;
  for (const auto& p : phases) sum += p.relative_bytes;
  return sum;
}

double FlightReport::total_absolute_bytes() const noexcept {
  double sum = 0.0;
  for (const auto& p : phases) sum += p.absolute_bytes;
  return sum;
}

double FlightReport::total_flops() const noexcept {
  double sum = 0.0;
  for (const auto& p : phases) sum += p.flops;
  return sum;
}

double FlightReport::relative_bw() const noexcept {
  const double cp = critical_path_cycles();
  return cp > 0.0 ? total_relative_bytes() * clock_hz / cp : 0.0;
}

double FlightReport::absolute_bw() const noexcept {
  const double cp = critical_path_cycles();
  return cp > 0.0 ? total_absolute_bytes() * clock_hz / cp : 0.0;
}

double FlightReport::flops_rate() const noexcept {
  const double cp = critical_path_cycles();
  return cp > 0.0 ? total_flops() * clock_hz / cp : 0.0;
}

double FlightReport::time_us() const noexcept {
  return clock_hz > 0.0 ? critical_path_cycles() / clock_hz * 1e6 : 0.0;
}

namespace {

void append_phase(std::ostringstream& os, const PhaseStats& p) {
  os << "{\"samples\":" << p.samples << ",\"max_cycles\":" << p.max_cycles
     << ",\"min_cycles\":" << p.min_cycles
     << ",\"mean_cycles\":" << p.mean_cycles()
     << ",\"imbalance\":" << p.imbalance() << ",\"worst_pe\":" << p.worst_pe
     << ",\"relative_bytes\":" << p.relative_bytes
     << ",\"absolute_bytes\":" << p.absolute_bytes << ",\"flops\":" << p.flops
     << ",\"max_sram_bytes\":" << p.max_sram_bytes << '}';
}

}  // namespace

std::string FlightReport::to_json() const {
  std::ostringstream os;
  os << "{\"clock_hz\":" << clock_hz << ",\"launches\":" << launches
     << ",\"pes\":" << pes
     << ",\"critical_path_cycles\":" << critical_path_cycles()
     << ",\"worst_cycles\":" << worst_cycles()
     << ",\"time_us\":" << time_us()
     << ",\"relative_bytes\":" << total_relative_bytes()
     << ",\"absolute_bytes\":" << total_absolute_bytes()
     << ",\"flops\":" << total_flops()
     << ",\"relative_bw\":" << relative_bw()
     << ",\"absolute_bw\":" << absolute_bw()
     << ",\"flops_rate\":" << flops_rate() << ",\"phases\":{";
  bool first = true;
  for (int i = 0; i < kNumPhases; ++i) {
    const auto& p = phases[static_cast<std::size_t>(i)];
    if (p.samples == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << phase_name(static_cast<Phase>(i)) << "\":";
    append_phase(os, p);
  }
  os << "},\"systems\":[";
  first = true;
  for (const auto& s : systems) {
    if (!first) os << ',';
    first = false;
    os << "{\"pes\":" << s.samples << ",\"worst_cycles\":" << s.worst_cycles
       << ",\"worst_pe\":" << s.worst_pe
       << ",\"relative_bytes\":" << s.relative_bytes
       << ",\"absolute_bytes\":" << s.absolute_bytes
       << ",\"relative_bw\":" << s.relative_bw(clock_hz)
       << ",\"absolute_bw\":" << s.absolute_bw(clock_hz) << '}';
  }
  os << "]}";
  return os.str();
}

std::string FlightReport::heatmap_json(Phase p) const {
  const auto& grid = heatmaps[static_cast<std::size_t>(p)];
  std::ostringstream os;
  os << "{\"phase\":\"" << phase_name(p) << "\",\"rows\":" << heat_rows
     << ",\"cols\":" << heat_cols << ",\"fabric_rows\":" << fabric_rows
     << ",\"fabric_cols\":" << fabric_cols;
  const auto emit = [&](const char* key, auto value_of) {
    os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < grid.size(); ++i) {
      if (i > 0) os << ',';
      os << value_of(grid[i]);
    }
    os << ']';
  };
  emit("samples", [](const HeatCell& c) { return c.samples; });
  emit("cycles_max", [](const HeatCell& c) { return c.cycles_max; });
  emit("cycles_mean", [](const HeatCell& c) {
    return c.samples > 0 ? c.cycles_sum / static_cast<double>(c.samples) : 0.0;
  });
  emit("relative_bytes", [](const HeatCell& c) { return c.relative_bytes; });
  os << '}';
  return os.str();
}

std::string FlightReport::heatmaps_json() const {
  std::ostringstream os;
  os << "{\"heatmaps\":[";
  bool first = true;
  for (int i = 0; i < kNumPhases; ++i) {
    if (phases[static_cast<std::size_t>(i)].samples == 0) continue;
    if (!first) os << ',';
    first = false;
    os << heatmap_json(static_cast<Phase>(i));
  }
  os << "]}";
  return os.str();
}

void export_flight_counters(const FlightReport& report) {
  if (!Tracer::enabled()) return;
  Tracer& tracer = Tracer::instance();
  // Counter names must be string literals (the tracer stores pointers),
  // hence the static per-phase name tables.
  struct PhaseNames {
    const char* max_cycles;
    const char* mean_cycles;
    const char* imbalance;
  };
  static constexpr PhaseNames kPhaseNames[kNumPhases] = {
      {"flight.v_mvm.max_cycles", "flight.v_mvm.mean_cycles",
       "flight.v_mvm.imbalance"},
      {"flight.shuffle.max_cycles", "flight.shuffle.mean_cycles",
       "flight.shuffle.imbalance"},
      {"flight.u_mvm.max_cycles", "flight.u_mvm.mean_cycles",
       "flight.u_mvm.imbalance"},
      {"flight.fused_column.max_cycles", "flight.fused_column.mean_cycles",
       "flight.fused_column.imbalance"},
  };
  for (int i = 0; i < kNumPhases; ++i) {
    const auto& p = report.phases[static_cast<std::size_t>(i)];
    if (p.samples == 0) continue;
    const auto& n = kPhaseNames[i];
    tracer.counter(n.max_cycles, p.max_cycles);
    tracer.counter(n.mean_cycles, p.mean_cycles());
    tracer.counter(n.imbalance, p.imbalance());
  }
  tracer.counter("flight.critical_path_cycles", report.critical_path_cycles());
  tracer.counter("flight.relative_bw_pbs", report.relative_bw() / 1e15);
  tracer.counter("flight.absolute_bw_pbs", report.absolute_bw() / 1e15);
}

}  // namespace tlrwse::obs
