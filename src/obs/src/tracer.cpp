#include "tlrwse/obs/tracer.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "tlrwse/obs/metrics_registry.hpp"

namespace tlrwse::obs {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::chrono::steady_clock::time_point Tracer::epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

Tracer::ThreadBuffer& Tracer::local() {
  // The shared_ptr keeps a thread's events alive (and dumpable) after the
  // thread exits; the generation tag discards handles that predate the
  // last enable()/clear().
  struct Handle {
    std::shared_ptr<ThreadBuffer> buffer;
    std::uint64_t generation = ~std::uint64_t{0};
  };
  thread_local Handle handle;
  // Fast path: one relaxed load to confirm the cached buffer is current.
  if (handle.buffer &&
      handle.generation == generation_.load(std::memory_order_acquire)) {
    return *handle.buffer;
  }
  std::lock_guard<std::mutex> lock(mu_);
  handle.buffer = std::make_shared<ThreadBuffer>();
  handle.generation = generation_.load(std::memory_order_relaxed);
  handle.buffer->tid = static_cast<std::uint32_t>(buffers_.size());
  handle.buffer->ring.resize(capacity_);
  buffers_.push_back(handle.buffer);
  return *handle.buffer;
}

void Tracer::push(TraceEvent e) noexcept {
  if (!enabled()) return;
  ThreadBuffer& buf = local();
  if (buf.pushed >= buf.ring.size()) {
    // Ring wrap: the oldest span is silently overwritten, so surface the
    // truncation in the process registry where dashboards can see it.
    static Counter& dropped =
        MetricsRegistry::instance().counter("trace.dropped_spans");
    dropped.add();
  }
  buf.ring[static_cast<std::size_t>(buf.pushed % buf.ring.size())] = e;
  ++buf.pushed;
}

void Tracer::enable(std::size_t capacity, bool detail) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.clear();
    capacity_ = capacity > 0 ? capacity : kDefaultCapacity;
    generation_.fetch_add(1, std::memory_order_release);
  }
  g_trace_detail.store(detail, std::memory_order_relaxed);
  g_trace_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  generation_.fetch_add(1, std::memory_order_release);
}

void Tracer::set_thread_name(const char* name) {
  if (!enabled()) return;
  local().name = name;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    n += static_cast<std::size_t>(
        std::min<std::uint64_t>(buf->pushed, buf->ring.size()));
  }
  return n;
}

std::uint64_t Tracer::dropped_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& buf : buffers_) {
    if (buf->pushed > buf->ring.size()) n += buf->pushed - buf->ring.size();
  }
  return n;
}

std::vector<Tracer::ThreadDrops> Tracer::dropped_by_thread() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ThreadDrops> out;
  out.reserve(buffers_.size());
  for (const auto& buf : buffers_) {
    ThreadDrops d;
    d.tid = buf->tid;
    d.name = buf->name.empty() ? "thread-" + std::to_string(buf->tid)
                               : buf->name;
    d.dropped =
        buf->pushed > buf->ring.size() ? buf->pushed - buf->ring.size() : 0;
    out.push_back(std::move(d));
  }
  return out;
}

void Tracer::publish_drop_gauges(MetricsRegistry& reg) const {
  std::uint64_t total = 0;
  for (const ThreadDrops& d : dropped_by_thread()) {
    total += d.dropped;
    reg.gauge("trace.dropped_spans." + d.name)
        .set(static_cast<std::int64_t>(d.dropped));
  }
  reg.gauge("trace.dropped_spans.total").set(static_cast<std::int64_t>(total));
}

namespace {
void append_event(std::ostringstream& os, const TraceEvent& e,
                  std::uint32_t tid, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << "{\"name\":\"" << e.name << "\",\"cat\":\"" << e.cat
     << "\",\"ph\":\"" << e.ph << "\",\"pid\":1,\"tid\":" << tid
     << ",\"ts\":" << static_cast<double>(e.ts_ns) / 1e3;
  if (e.ph == 'X') {
    os << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1e3;
  } else if (e.ph == 'C') {
    os << ",\"args\":{\"value\":" << e.value << '}';
  }
  os << '}';
}
}  // namespace

std::string Tracer::to_json() const {
  struct Tagged {
    TraceEvent e;
    std::uint32_t tid;
  };
  std::vector<Tagged> events;
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& buf : buffers_) {
      // Thread-name metadata makes chrome://tracing label each row.
      if (!first) os << ",\n";
      first = false;
      const std::uint64_t thread_dropped =
          buf->pushed > buf->ring.size() ? buf->pushed - buf->ring.size() : 0;
      os << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
         << buf->tid << ",\"args\":{\"name\":\""
         << (buf->name.empty() ? "thread-" + std::to_string(buf->tid)
                               : buf->name)
         << "\",\"dropped_spans\":" << thread_dropped << "}}";
      const auto held = static_cast<std::size_t>(
          std::min<std::uint64_t>(buf->pushed, buf->ring.size()));
      const std::uint64_t start = buf->pushed - held;
      for (std::uint64_t i = start; i < buf->pushed; ++i) {
        events.push_back(
            {buf->ring[static_cast<std::size_t>(i % buf->ring.size())],
             buf->tid});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.e.ts_ns < b.e.ts_ns;
                   });
  for (const auto& t : events) append_event(os, t.e, t.tid, first);
  os << "\n]}\n";
  return os.str();
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

}  // namespace tlrwse::obs
