#include "tlrwse/io/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>

#include "tlrwse/common/error.hpp"

namespace tlrwse::io {

namespace {

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::int64_t read_i64(std::istream& is) {
  std::int64_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

void write_matrix_payload(std::ostream& os, const la::MatrixCF& m) {
  write_i64(os, m.rows());
  write_i64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                        sizeof(cf32)));
}

la::MatrixCF read_matrix_payload(std::istream& is) {
  const index_t rows = read_i64(is);
  const index_t cols = read_i64(is);
  TLRWSE_REQUIRE(rows >= 0 && cols >= 0, "corrupt matrix header");
  la::MatrixCF m(rows, cols);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                       sizeof(cf32)));
  if (!is) throw std::runtime_error("tlrwse::io: truncated matrix payload");
  return m;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tlrwse::io: cannot open for write: " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot open for read: " + path);
  return is;
}

}  // namespace

void save_matrix(const std::string& path, const la::MatrixCF& m) {
  auto os = open_out(path);
  write_u32(os, kDenseMagic);
  write_u32(os, kFormatVersion);
  write_matrix_payload(os, m);
  if (!os) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

la::MatrixCF load_matrix(const std::string& path) {
  auto is = open_in(path);
  if (read_u32(is) != kDenseMagic) {
    throw std::runtime_error("tlrwse::io: bad magic in " + path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported version in " + path);
  }
  return read_matrix_payload(is);
}

void save_tlr(const std::string& path, const tlr::TlrMatrix<cf32>& m) {
  auto os = open_out(path);
  write_u32(os, kTlrMagic);
  write_u32(os, kFormatVersion);
  const auto& g = m.grid();
  write_i64(os, g.rows());
  write_i64(os, g.cols());
  write_i64(os, g.nb());
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      write_i64(os, m.rank(i, j));
    }
  }
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto& t = m.tile(i, j);
      write_matrix_payload(os, t.U);
      write_matrix_payload(os, t.Vh);
    }
  }
  if (!os) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

tlr::TlrMatrix<cf32> load_tlr(const std::string& path) {
  auto is = open_in(path);
  if (read_u32(is) != kTlrMagic) {
    throw std::runtime_error("tlrwse::io: bad magic in " + path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported version in " + path);
  }
  const index_t rows = read_i64(is);
  const index_t cols = read_i64(is);
  const index_t nb = read_i64(is);
  const tlr::TileGrid g(rows, cols, nb);
  std::vector<index_t> ranks(static_cast<std::size_t>(g.num_tiles()));
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      ranks[static_cast<std::size_t>(g.tile_index(i, j))] = read_i64(is);
    }
  }
  std::vector<la::LowRankFactors<cf32>> tiles(
      static_cast<std::size_t>(g.num_tiles()));
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      la::LowRankFactors<cf32> t;
      t.U = read_matrix_payload(is);
      t.Vh = read_matrix_payload(is);
      const auto idx = static_cast<std::size_t>(g.tile_index(i, j));
      TLRWSE_REQUIRE(t.U.cols() == ranks[idx] && t.Vh.rows() == ranks[idx],
                     "rank table mismatch in ", path);
      TLRWSE_REQUIRE(t.U.rows() == g.tile_rows(i) &&
                         t.Vh.cols() == g.tile_cols(j),
                     "tile shape mismatch in ", path);
      tiles[idx] = std::move(t);
    }
  }
  return tlr::TlrMatrix<cf32>(g, std::move(tiles));
}

}  // namespace tlrwse::io
