#include "tlrwse/io/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "tlrwse/common/error.hpp"
#include "tlrwse/la/half.hpp"
#include "tlrwse/tlr/precision.hpp"

namespace tlrwse::io {

namespace {

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::int64_t read_i64(std::istream& is) {
  std::int64_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

// Half-precision payloads (format version 2) store each complex element as
// two packed uint16 — (re bits, im bits) — in the matrix's storage order.
// Values were pre-rounded through the same la/half.hpp conversions at
// quantize time, so pack -> widen reproduces them bitwise.
void write_matrix_payload(std::ostream& os, const la::MatrixCF& m,
                          tlr::StoragePrecision p = tlr::StoragePrecision::kFp32) {
  write_i64(os, m.rows());
  write_i64(os, m.cols());
  if (!tlr::is_half(p)) {
    os.write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                          sizeof(cf32)));
    return;
  }
  const la::HalfFormat fmt = tlr::half_format(p);
  const cf32* d = m.data();
  std::vector<std::uint16_t> buf(2 * static_cast<std::size_t>(m.size()));
  for (std::size_t k = 0; k < static_cast<std::size_t>(m.size()); ++k) {
    buf[2 * k] = la::f32_to_half_bits(d[k].real(), fmt);
    buf[2 * k + 1] = la::f32_to_half_bits(d[k].imag(), fmt);
  }
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size() * sizeof(std::uint16_t)));
}

la::MatrixCF read_matrix_payload(
    std::istream& is,
    tlr::StoragePrecision p = tlr::StoragePrecision::kFp32) {
  const index_t rows = read_i64(is);
  const index_t cols = read_i64(is);
  TLRWSE_REQUIRE(rows >= 0 && cols >= 0, "corrupt matrix header");
  la::MatrixCF m(rows, cols);
  if (!tlr::is_half(p)) {
    is.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                         sizeof(cf32)));
    if (!is) throw std::runtime_error("tlrwse::io: truncated matrix payload");
    return m;
  }
  const la::HalfFormat fmt = tlr::half_format(p);
  std::vector<std::uint16_t> buf(2 * static_cast<std::size_t>(m.size()));
  is.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size() * sizeof(std::uint16_t)));
  if (!is) throw std::runtime_error("tlrwse::io: truncated matrix payload");
  cf32* d = m.data();
  for (std::size_t k = 0; k < static_cast<std::size_t>(m.size()); ++k) {
    d[k] = cf32(la::half_bits_to_f32(buf[2 * k], fmt),
                la::half_bits_to_f32(buf[2 * k + 1], fmt));
  }
  return m;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tlrwse::io: cannot open for write: " + path);
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot open for read: " + path);
  return is;
}

}  // namespace

void save_matrix(const std::string& path, const la::MatrixCF& m) {
  auto os = open_out(path);
  write_u32(os, kDenseMagic);
  write_u32(os, kFormatVersion);
  write_matrix_payload(os, m);
  if (!os) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

la::MatrixCF load_matrix(const std::string& path) {
  auto is = open_in(path);
  if (read_u32(is) != kDenseMagic) {
    throw std::runtime_error("tlrwse::io: bad magic in " + path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported version in " + path);
  }
  return read_matrix_payload(is);
}

void save_tlr(const std::string& path, const tlr::TlrMatrix<cf32>& m) {
  auto os = open_out(path);
  const bool mixed = m.has_half_tiles();
  write_u32(os, kTlrMagic);
  write_u32(os, mixed ? kFormatVersionMixed : kFormatVersion);
  const auto& g = m.grid();
  write_i64(os, g.rows());
  write_i64(os, g.cols());
  write_i64(os, g.nb());
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      write_i64(os, m.rank(i, j));
    }
  }
  if (mixed) {
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const auto tag = static_cast<std::uint8_t>(m.precision(i, j));
        os.write(reinterpret_cast<const char*>(&tag), 1);
      }
    }
  }
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto& t = m.tile(i, j);
      const tlr::StoragePrecision p =
          mixed ? m.precision(i, j) : tlr::StoragePrecision::kFp32;
      write_matrix_payload(os, t.U, p);
      write_matrix_payload(os, t.Vh, p);
    }
  }
  if (!os) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

tlr::TlrMatrix<cf32> load_tlr(const std::string& path) {
  auto is = open_in(path);
  if (read_u32(is) != kTlrMagic) {
    throw std::runtime_error("tlrwse::io: bad magic in " + path);
  }
  const std::uint32_t version = read_u32(is);
  if (version != kFormatVersion && version != kFormatVersionMixed) {
    throw std::runtime_error("tlrwse::io: unsupported version in " + path);
  }
  const index_t rows = read_i64(is);
  const index_t cols = read_i64(is);
  const index_t nb = read_i64(is);
  const tlr::TileGrid g(rows, cols, nb);
  std::vector<index_t> ranks(static_cast<std::size_t>(g.num_tiles()));
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      ranks[static_cast<std::size_t>(g.tile_index(i, j))] = read_i64(is);
    }
  }
  std::vector<tlr::StoragePrecision> prec(
      static_cast<std::size_t>(g.num_tiles()), tlr::StoragePrecision::kFp32);
  if (version == kFormatVersionMixed) {
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        std::uint8_t tag{};
        is.read(reinterpret_cast<char*>(&tag), 1);
        TLRWSE_REQUIRE(tlr::valid_precision_tag(tag),
                       "corrupt precision table in ", path);
        prec[static_cast<std::size_t>(g.tile_index(i, j))] =
            static_cast<tlr::StoragePrecision>(tag);
      }
    }
    if (!is) throw std::runtime_error("tlrwse::io: truncated file: " + path);
  }
  std::vector<la::LowRankFactors<cf32>> tiles(
      static_cast<std::size_t>(g.num_tiles()));
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto idx = static_cast<std::size_t>(g.tile_index(i, j));
      la::LowRankFactors<cf32> t;
      t.U = read_matrix_payload(is, prec[idx]);
      t.Vh = read_matrix_payload(is, prec[idx]);
      TLRWSE_REQUIRE(t.U.cols() == ranks[idx] && t.Vh.rows() == ranks[idx],
                     "rank table mismatch in ", path);
      TLRWSE_REQUIRE(t.U.rows() == g.tile_rows(i) &&
                         t.Vh.cols() == g.tile_cols(j),
                     "tile shape mismatch in ", path);
      tiles[idx] = std::move(t);
    }
  }
  tlr::TlrMatrix<cf32> out(g, std::move(tiles));
  if (version == kFormatVersionMixed) out.set_precision_tags(std::move(prec));
  return out;
}

}  // namespace tlrwse::io
