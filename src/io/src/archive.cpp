#include "tlrwse/io/archive.hpp"

#include <algorithm>
#include <fstream>

#include "tlrwse/common/error.hpp"
#include "tlrwse/io/serialize.hpp"
#include "tlrwse/tlr/stacked.hpp"

namespace tlrwse::io {

namespace {
constexpr std::uint32_t kArchiveMagic = 0x544C5241;  // "TLRA"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::int64_t read_i64(std::istream& is) {
  std::int64_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
double read_f64(std::istream& is) {
  double v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

// Upper bound on any single matrix dimension read from disk; a corrupt
// header past this is rejected before it can demand a huge allocation.
constexpr index_t kMaxArchiveDim = index_t{1} << 30;

void write_mat(std::ostream& os, const la::MatrixCF& m) {
  write_i64(os, m.rows());
  write_i64(os, m.cols());
  os.write(reinterpret_cast<const char*>(m.data()),
           static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                        sizeof(cf32)));
}

/// Reads one matrix, rejecting dimensions outside [0, max_rows/cols] (the
/// caller's structural bound) and any short read — a truncated or corrupt
/// stream must throw, never hand back silently-garbage factors.
la::MatrixCF read_mat(std::istream& is, index_t max_rows, index_t max_cols) {
  const index_t r = read_i64(is);
  const index_t c = read_i64(is);
  if (!is) throw std::runtime_error("tlrwse::io: truncated matrix header");
  TLRWSE_REQUIRE(r >= 0 && c >= 0 && r <= max_rows && c <= max_cols,
                 "corrupt matrix header: dims out of range");
  la::MatrixCF m(r, c);
  is.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                       sizeof(cf32)));
  if (!is) throw std::runtime_error("tlrwse::io: truncated matrix payload");
  return m;
}
}  // namespace

KernelArchive build_archive(const seismic::SeismicDataset& data,
                            const tlr::CompressionConfig& compression) {
  KernelArchive archive;
  archive.nt = data.config.nt;
  archive.dt = data.config.dt;
  archive.freq_bins = data.freq_bins;
  archive.freqs_hz = data.freqs_hz;
  const auto dA = static_cast<float>(data.surface_element());
  archive.kernels.reserve(static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    la::MatrixCF K = data.p_down[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < K.cols(); ++j) {
      cf32* col = K.col(j);
      for (index_t i = 0; i < K.rows(); ++i) col[i] *= dA;
    }
    archive.kernels.push_back(tlr::compress_tlr(K, compression));
  }
  return archive;
}

void save_archive(const std::string& path, const KernelArchive& archive) {
  TLRWSE_REQUIRE(archive.freq_bins.size() == archive.kernels.size() &&
                     archive.freqs_hz.size() == archive.kernels.size(),
                 "inconsistent archive metadata");
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tlrwse::io: cannot write " + path);
  write_u32(os, kArchiveMagic);
  write_u32(os, kFormatVersion);
  write_i64(os, archive.nt);
  write_f64(os, archive.dt);
  write_i64(os, archive.num_freqs());
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    write_i64(os, archive.freq_bins[static_cast<std::size_t>(q)]);
    write_f64(os, archive.freqs_hz[static_cast<std::size_t>(q)]);
  }
  os.close();
  // Kernels appended as individual TLR containers in side files would
  // complicate deployment; instead re-open and append them to the stream.
  std::ofstream app(path, std::ios::binary | std::ios::app);
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    // Reuse the TLR container format via a temporary in-memory detour is
    // wasteful; serialize inline with the same layout as save_tlr.
    const auto& m = archive.kernels[static_cast<std::size_t>(q)];
    write_u32(app, kTlrMagic);
    write_u32(app, kFormatVersion);
    const auto& g = m.grid();
    write_i64(app, g.rows());
    write_i64(app, g.cols());
    write_i64(app, g.nb());
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) write_i64(app, m.rank(i, j));
    }
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const auto& t = m.tile(i, j);
        write_i64(app, t.U.rows());
        write_i64(app, t.U.cols());
        app.write(reinterpret_cast<const char*>(t.U.data()),
                  static_cast<std::streamsize>(
                      static_cast<std::size_t>(t.U.size()) * sizeof(cf32)));
        write_i64(app, t.Vh.rows());
        write_i64(app, t.Vh.cols());
        app.write(reinterpret_cast<const char*>(t.Vh.data()),
                  static_cast<std::streamsize>(
                      static_cast<std::size_t>(t.Vh.size()) * sizeof(cf32)));
      }
    }
  }
  if (!app) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

ArchiveInfo peek_archive(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  const std::uint32_t magic = read_u32(is);
  if (magic != kArchiveMagic && magic != kSharedMagic) {
    throw std::runtime_error("tlrwse::io: bad archive magic in " + path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported archive version");
  }
  ArchiveInfo info;
  info.nt = read_i64(is);
  info.dt = read_f64(is);
  const index_t nf = read_i64(is);
  TLRWSE_REQUIRE(nf >= 0, "corrupt archive");
  info.freq_bins.resize(static_cast<std::size_t>(nf));
  info.freqs_hz.resize(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    info.freq_bins[static_cast<std::size_t>(q)] = read_i64(is);
    info.freqs_hz[static_cast<std::size_t>(q)] = read_f64(is);
  }
  if (magic == kSharedMagic) {
    // The shared header carries the payload size up front so cache
    // admission can budget residency without reading any kernel data.
    info.shared_basis = true;
    info.payload_bytes = read_f64(is);
    info.num_bands = read_i64(is);
    TLRWSE_REQUIRE(info.num_bands >= 0, "corrupt shared archive");
  }
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive header");
  return info;
}

KernelArchive load_archive(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  if (read_u32(is) != kArchiveMagic) {
    throw std::runtime_error("tlrwse::io: bad archive magic in " + path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported archive version");
  }
  KernelArchive archive;
  archive.nt = read_i64(is);
  archive.dt = read_f64(is);
  const index_t nf = read_i64(is);
  TLRWSE_REQUIRE(nf >= 0, "corrupt archive");
  archive.freq_bins.resize(static_cast<std::size_t>(nf));
  archive.freqs_hz.resize(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    archive.freq_bins[static_cast<std::size_t>(q)] = read_i64(is);
    archive.freqs_hz[static_cast<std::size_t>(q)] = read_f64(is);
  }
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive header");
  archive.kernels.reserve(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    if (read_u32(is) != kTlrMagic) {
      throw std::runtime_error("tlrwse::io: bad kernel magic in " + path);
    }
    if (read_u32(is) != kFormatVersion) {
      throw std::runtime_error("tlrwse::io: unsupported kernel version");
    }
    const index_t rows = read_i64(is);
    const index_t cols = read_i64(is);
    const index_t nb = read_i64(is);
    if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
    TLRWSE_REQUIRE(rows <= kMaxArchiveDim && cols <= kMaxArchiveDim,
                   "corrupt kernel header: dims out of range");
    const tlr::TileGrid g(rows, cols, nb);
    std::vector<index_t> ranks(static_cast<std::size_t>(g.num_tiles()));
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        ranks[static_cast<std::size_t>(g.tile_index(i, j))] = read_i64(is);
      }
    }
    std::vector<la::LowRankFactors<cf32>> tiles(
        static_cast<std::size_t>(g.num_tiles()));
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const index_t rank =
            ranks[static_cast<std::size_t>(g.tile_index(i, j))];
        TLRWSE_REQUIRE(
            rank >= 0 && rank <= std::min(g.tile_rows(i), g.tile_cols(j)),
            "corrupt archive: tile rank out of range");
        la::LowRankFactors<cf32> t;
        t.U = read_mat(is, g.tile_rows(i), rank);
        t.Vh = read_mat(is, rank, g.tile_cols(j));
        TLRWSE_REQUIRE(t.U.rows() == g.tile_rows(i) && t.U.cols() == rank &&
                           t.Vh.rows() == rank &&
                           t.Vh.cols() == g.tile_cols(j),
                       "corrupt archive: tile factors mismatch rank table");
        tiles[static_cast<std::size_t>(g.tile_index(i, j))] = std::move(t);
      }
    }
    if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
    archive.kernels.emplace_back(g, std::move(tiles));
  }
  return archive;
}

std::unique_ptr<mdc::MdcOperator> make_operator(const KernelArchive& archive,
                                                mdc::TlrKernel kernel) {
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  kernels.reserve(static_cast<std::size_t>(archive.num_freqs()));
  for (const auto& k : archive.kernels) {
    kernels.push_back(
        std::make_unique<mdc::TlrMvm>(tlr::StackedTlr<cf32>(k), kernel));
  }
  return std::make_unique<mdc::MdcOperator>(archive.nt, archive.freq_bins,
                                            std::move(kernels));
}

namespace {

/// Splits nf frequencies into consecutive bands of at most band_width
/// (0 = one band). Returns (start, length) pairs.
std::vector<std::pair<index_t, index_t>> split_bands(index_t nf,
                                                     index_t band_width) {
  TLRWSE_REQUIRE(band_width >= 0, "negative band width");
  if (band_width == 0 || band_width >= nf) return {{0, nf}};
  std::vector<std::pair<index_t, index_t>> out;
  for (index_t start = 0; start < nf; start += band_width) {
    out.emplace_back(start, std::min(band_width, nf - start));
  }
  return out;
}

}  // namespace

SharedKernelArchive build_shared_archive(const seismic::SeismicDataset& data,
                                         const tlr::SharedBasisConfig& cfg,
                                         index_t band_width) {
  SharedKernelArchive archive;
  archive.nt = data.config.nt;
  archive.dt = data.config.dt;
  archive.freq_bins = data.freq_bins;
  archive.freqs_hz = data.freqs_hz;
  const auto dA = static_cast<float>(data.surface_element());
  std::vector<la::MatrixCF> scaled;
  scaled.reserve(static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    la::MatrixCF K = data.p_down[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < K.cols(); ++j) {
      cf32* col = K.col(j);
      for (index_t i = 0; i < K.rows(); ++i) col[i] *= dA;
    }
    scaled.push_back(std::move(K));
  }
  for (const auto& [start, len] : split_bands(data.num_freqs(), band_width)) {
    archive.bands.push_back(
        std::make_shared<const tlr::SharedBasisStackedTlr<cf32>>(
            tlr::SharedBasisStackedTlr<cf32>::fit(
                std::span<const la::MatrixCF>(scaled).subspan(
                    static_cast<std::size_t>(start),
                    static_cast<std::size_t>(len)),
                cfg)));
  }
  return archive;
}

SharedKernelArchive shared_from_archive(const KernelArchive& archive,
                                        const tlr::SharedBasisConfig& cfg,
                                        index_t band_width) {
  SharedKernelArchive out;
  out.nt = archive.nt;
  out.dt = archive.dt;
  out.freq_bins = archive.freq_bins;
  out.freqs_hz = archive.freqs_hz;
  for (const auto& [start, len] :
       split_bands(archive.num_freqs(), band_width)) {
    out.bands.push_back(
        std::make_shared<const tlr::SharedBasisStackedTlr<cf32>>(
            tlr::SharedBasisStackedTlr<cf32>::from_tlr(
                std::span<const tlr::TlrMatrix<cf32>>(archive.kernels)
                    .subspan(static_cast<std::size_t>(start),
                             static_cast<std::size_t>(len)),
                cfg)));
  }
  return out;
}

void save_shared_archive(const std::string& path,
                         const SharedKernelArchive& archive) {
  index_t band_freqs = 0;
  for (const auto& b : archive.bands) {
    TLRWSE_REQUIRE(b != nullptr, "shared archive: null band");
    band_freqs += b->num_freqs();
  }
  TLRWSE_REQUIRE(band_freqs == archive.num_freqs() &&
                     archive.freqs_hz.size() == archive.freq_bins.size(),
                 "inconsistent shared archive metadata");
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tlrwse::io: cannot write " + path);
  write_u32(os, kSharedMagic);
  write_u32(os, kFormatVersion);
  write_i64(os, archive.nt);
  write_f64(os, archive.dt);
  write_i64(os, archive.num_freqs());
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    write_i64(os, archive.freq_bins[static_cast<std::size_t>(q)]);
    write_f64(os, archive.freqs_hz[static_cast<std::size_t>(q)]);
  }
  write_f64(os, archive.shared_bytes());
  write_i64(os, archive.num_bands());
  for (const auto& bp : archive.bands) {
    const auto& b = *bp;
    const auto& g = b.grid();
    write_u32(os, kBandMagic);
    write_i64(os, g.rows());
    write_i64(os, g.cols());
    write_i64(os, g.nb());
    write_f64(os, b.acc());
    write_i64(os, b.num_freqs());
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        write_mat(os, b.basis_u(i, j));
        write_mat(os, b.basis_vh(i, j));
      }
    }
    for (index_t f = 0; f < b.num_freqs(); ++f) {
      for (index_t j = 0; j < g.nt(); ++j) {
        for (index_t i = 0; i < g.mt(); ++i) {
          const auto& c = b.core(f, i, j);
          write_u32(os, c.factored ? 1u : 0u);
          write_i64(os, c.rank);
          if (c.factored) {
            write_mat(os, c.lr.U);
            write_mat(os, c.lr.Vh);
          } else {
            write_mat(os, c.dense);
          }
        }
      }
    }
  }
  if (!os) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

SharedKernelArchive load_shared_archive(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  if (read_u32(is) != kSharedMagic) {
    throw std::runtime_error("tlrwse::io: bad shared archive magic in " +
                             path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported archive version");
  }
  SharedKernelArchive archive;
  archive.nt = read_i64(is);
  archive.dt = read_f64(is);
  const index_t nf = read_i64(is);
  TLRWSE_REQUIRE(nf >= 0, "corrupt shared archive");
  archive.freq_bins.resize(static_cast<std::size_t>(nf));
  archive.freqs_hz.resize(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    archive.freq_bins[static_cast<std::size_t>(q)] = read_i64(is);
    archive.freqs_hz[static_cast<std::size_t>(q)] = read_f64(is);
  }
  (void)read_f64(is);  // payload_bytes: recomputed from the loaded bands
  const index_t num_bands = read_i64(is);
  if (!is) {
    throw std::runtime_error("tlrwse::io: truncated shared archive header");
  }
  TLRWSE_REQUIRE(num_bands >= 0, "corrupt shared archive");
  for (index_t bi = 0; bi < num_bands; ++bi) {
    if (read_u32(is) != kBandMagic) {
      throw std::runtime_error("tlrwse::io: bad band magic in " + path);
    }
    const index_t rows = read_i64(is);
    const index_t cols = read_i64(is);
    const index_t nb = read_i64(is);
    const double acc = read_f64(is);
    const index_t band_nf = read_i64(is);
    if (!is) throw std::runtime_error("tlrwse::io: truncated shared archive");
    TLRWSE_REQUIRE(band_nf >= 0 && band_nf <= nf,
                   "corrupt shared archive band");
    TLRWSE_REQUIRE(rows <= kMaxArchiveDim && cols <= kMaxArchiveDim,
                   "corrupt shared archive band: dims out of range");
    const tlr::TileGrid g(rows, cols, nb);
    const auto ntiles = static_cast<std::size_t>(g.num_tiles());
    std::vector<la::MatrixCF> u(ntiles), vh(ntiles);
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        // A shared basis cannot out-rank its tile (orthonormal columns /
        // rows); from_parts re-checks the exact dimensions below.
        const auto t = static_cast<std::size_t>(g.tile_index(i, j));
        u[t] = read_mat(is, g.tile_rows(i), g.tile_rows(i));
        vh[t] = read_mat(is, g.tile_cols(j), g.tile_cols(j));
      }
    }
    using Band = tlr::SharedBasisStackedTlr<cf32>;
    std::vector<std::vector<Band::Core>> cores(
        static_cast<std::size_t>(band_nf), std::vector<Band::Core>(ntiles));
    for (index_t f = 0; f < band_nf; ++f) {
      for (index_t j = 0; j < g.nt(); ++j) {
        for (index_t i = 0; i < g.mt(); ++i) {
          const auto t = static_cast<std::size_t>(g.tile_index(i, j));
          Band::Core& c = cores[static_cast<std::size_t>(f)][t];
          c.factored = read_u32(is) != 0;
          c.rank = read_i64(is);
          // Cores live inside the tile's shared bases, so their dims are
          // bounded by the basis ranks just read (exactness is enforced
          // by from_parts; the bound stops arena-overrun-sized reads).
          const index_t ku = u[t].cols();
          const index_t kv = vh[t].rows();
          if (c.factored) {
            const index_t rmax = std::min(ku, kv);
            c.lr.U = read_mat(is, ku, rmax);
            c.lr.Vh = read_mat(is, rmax, kv);
          } else {
            c.dense = read_mat(is, ku, kv);
          }
        }
      }
    }
    if (!is) throw std::runtime_error("tlrwse::io: truncated shared archive");
    archive.bands.push_back(std::make_shared<const Band>(Band::from_parts(
        g, acc, std::move(u), std::move(vh), std::move(cores))));
  }
  index_t band_freqs = 0;
  for (const auto& b : archive.bands) band_freqs += b->num_freqs();
  TLRWSE_REQUIRE(band_freqs == nf,
                 "corrupt shared archive: band frequency counts do not "
                 "cover the header frequency list");
  return archive;
}

std::unique_ptr<mdc::MdcOperator> make_operator(
    const SharedKernelArchive& archive) {
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  kernels.reserve(static_cast<std::size_t>(archive.num_freqs()));
  for (const auto& band : archive.bands) {
    auto band_kernels = mdc::make_shared_basis_kernels(band);
    for (auto& k : band_kernels) kernels.push_back(std::move(k));
  }
  return std::make_unique<mdc::MdcOperator>(archive.nt, archive.freq_bins,
                                            std::move(kernels));
}

}  // namespace tlrwse::io
