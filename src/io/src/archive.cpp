#include "tlrwse/io/archive.hpp"

#include <fstream>

#include "tlrwse/common/error.hpp"
#include "tlrwse/io/serialize.hpp"
#include "tlrwse/tlr/stacked.hpp"

namespace tlrwse::io {

namespace {
constexpr std::uint32_t kArchiveMagic = 0x544C5241;  // "TLRA"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::int64_t read_i64(std::istream& is) {
  std::int64_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
double read_f64(std::istream& is) {
  double v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
}  // namespace

KernelArchive build_archive(const seismic::SeismicDataset& data,
                            const tlr::CompressionConfig& compression) {
  KernelArchive archive;
  archive.nt = data.config.nt;
  archive.dt = data.config.dt;
  archive.freq_bins = data.freq_bins;
  archive.freqs_hz = data.freqs_hz;
  const auto dA = static_cast<float>(data.surface_element());
  archive.kernels.reserve(static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    la::MatrixCF K = data.p_down[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < K.cols(); ++j) {
      cf32* col = K.col(j);
      for (index_t i = 0; i < K.rows(); ++i) col[i] *= dA;
    }
    archive.kernels.push_back(tlr::compress_tlr(K, compression));
  }
  return archive;
}

void save_archive(const std::string& path, const KernelArchive& archive) {
  TLRWSE_REQUIRE(archive.freq_bins.size() == archive.kernels.size() &&
                     archive.freqs_hz.size() == archive.kernels.size(),
                 "inconsistent archive metadata");
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tlrwse::io: cannot write " + path);
  write_u32(os, kArchiveMagic);
  write_u32(os, kFormatVersion);
  write_i64(os, archive.nt);
  write_f64(os, archive.dt);
  write_i64(os, archive.num_freqs());
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    write_i64(os, archive.freq_bins[static_cast<std::size_t>(q)]);
    write_f64(os, archive.freqs_hz[static_cast<std::size_t>(q)]);
  }
  os.close();
  // Kernels appended as individual TLR containers in side files would
  // complicate deployment; instead re-open and append them to the stream.
  std::ofstream app(path, std::ios::binary | std::ios::app);
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    // Reuse the TLR container format via a temporary in-memory detour is
    // wasteful; serialize inline with the same layout as save_tlr.
    const auto& m = archive.kernels[static_cast<std::size_t>(q)];
    write_u32(app, kTlrMagic);
    write_u32(app, kFormatVersion);
    const auto& g = m.grid();
    write_i64(app, g.rows());
    write_i64(app, g.cols());
    write_i64(app, g.nb());
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) write_i64(app, m.rank(i, j));
    }
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const auto& t = m.tile(i, j);
        write_i64(app, t.U.rows());
        write_i64(app, t.U.cols());
        app.write(reinterpret_cast<const char*>(t.U.data()),
                  static_cast<std::streamsize>(
                      static_cast<std::size_t>(t.U.size()) * sizeof(cf32)));
        write_i64(app, t.Vh.rows());
        write_i64(app, t.Vh.cols());
        app.write(reinterpret_cast<const char*>(t.Vh.data()),
                  static_cast<std::streamsize>(
                      static_cast<std::size_t>(t.Vh.size()) * sizeof(cf32)));
      }
    }
  }
  if (!app) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

ArchiveInfo peek_archive(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  if (read_u32(is) != kArchiveMagic) {
    throw std::runtime_error("tlrwse::io: bad archive magic in " + path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported archive version");
  }
  ArchiveInfo info;
  info.nt = read_i64(is);
  info.dt = read_f64(is);
  const index_t nf = read_i64(is);
  TLRWSE_REQUIRE(nf >= 0, "corrupt archive");
  info.freq_bins.resize(static_cast<std::size_t>(nf));
  info.freqs_hz.resize(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    info.freq_bins[static_cast<std::size_t>(q)] = read_i64(is);
    info.freqs_hz[static_cast<std::size_t>(q)] = read_f64(is);
  }
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive header");
  return info;
}

KernelArchive load_archive(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  if (read_u32(is) != kArchiveMagic) {
    throw std::runtime_error("tlrwse::io: bad archive magic in " + path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported archive version");
  }
  KernelArchive archive;
  archive.nt = read_i64(is);
  archive.dt = read_f64(is);
  const index_t nf = read_i64(is);
  TLRWSE_REQUIRE(nf >= 0, "corrupt archive");
  archive.freq_bins.resize(static_cast<std::size_t>(nf));
  archive.freqs_hz.resize(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    archive.freq_bins[static_cast<std::size_t>(q)] = read_i64(is);
    archive.freqs_hz[static_cast<std::size_t>(q)] = read_f64(is);
  }
  archive.kernels.reserve(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    if (read_u32(is) != kTlrMagic) {
      throw std::runtime_error("tlrwse::io: bad kernel magic in " + path);
    }
    if (read_u32(is) != kFormatVersion) {
      throw std::runtime_error("tlrwse::io: unsupported kernel version");
    }
    const index_t rows = read_i64(is);
    const index_t cols = read_i64(is);
    const index_t nb = read_i64(is);
    const tlr::TileGrid g(rows, cols, nb);
    std::vector<index_t> ranks(static_cast<std::size_t>(g.num_tiles()));
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        ranks[static_cast<std::size_t>(g.tile_index(i, j))] = read_i64(is);
      }
    }
    std::vector<la::LowRankFactors<cf32>> tiles(
        static_cast<std::size_t>(g.num_tiles()));
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        auto read_mat = [&]() {
          const index_t r = read_i64(is);
          const index_t c = read_i64(is);
          TLRWSE_REQUIRE(r >= 0 && c >= 0, "corrupt tile header");
          la::MatrixCF m(r, c);
          is.read(reinterpret_cast<char*>(m.data()),
                  static_cast<std::streamsize>(
                      static_cast<std::size_t>(m.size()) * sizeof(cf32)));
          return m;
        };
        la::LowRankFactors<cf32> t;
        t.U = read_mat();
        t.Vh = read_mat();
        tiles[static_cast<std::size_t>(g.tile_index(i, j))] = std::move(t);
      }
    }
    if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
    archive.kernels.emplace_back(g, std::move(tiles));
  }
  return archive;
}

std::unique_ptr<mdc::MdcOperator> make_operator(const KernelArchive& archive,
                                                mdc::TlrKernel kernel) {
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  kernels.reserve(static_cast<std::size_t>(archive.num_freqs()));
  for (const auto& k : archive.kernels) {
    kernels.push_back(
        std::make_unique<mdc::TlrMvm>(tlr::StackedTlr<cf32>(k), kernel));
  }
  return std::make_unique<mdc::MdcOperator>(archive.nt, archive.freq_bins,
                                            std::move(kernels));
}

}  // namespace tlrwse::io
