#include "tlrwse/io/archive.hpp"

#include <algorithm>
#include <fstream>

#include "tlrwse/common/error.hpp"
#include "tlrwse/io/serialize.hpp"
#include "tlrwse/tlr/stacked.hpp"

namespace tlrwse::io {

namespace {
constexpr std::uint32_t kArchiveMagic = 0x544C5241;  // "TLRA"

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_i64(std::ostream& os, std::int64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
std::int64_t read_i64(std::istream& is) {
  std::int64_t v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}
double read_f64(std::istream& is) {
  double v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  return v;
}

// Upper bound on any single matrix dimension read from disk; a corrupt
// header past this is rejected before it can demand a huge allocation.
constexpr index_t kMaxArchiveDim = index_t{1} << 30;

/// On-disk bytes of one complex element at the given storage precision:
/// fp32 stores cf32, half stores two packed uint16 (re, im bits).
std::int64_t complex_disk_bytes(tlr::StoragePrecision p) {
  return tlr::is_half(p) ? static_cast<std::int64_t>(2 * sizeof(std::uint16_t))
                         : static_cast<std::int64_t>(sizeof(cf32));
}

void write_mat(std::ostream& os, const la::MatrixCF& m,
               tlr::StoragePrecision p = tlr::StoragePrecision::kFp32) {
  write_i64(os, m.rows());
  write_i64(os, m.cols());
  if (!tlr::is_half(p)) {
    os.write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                          sizeof(cf32)));
    return;
  }
  // Values were pre-rounded through la/half.hpp at quantize time, so the
  // packed payload reproduces them bitwise on reload.
  const la::HalfFormat fmt = tlr::half_format(p);
  const cf32* d = m.data();
  std::vector<std::uint16_t> buf(2 * static_cast<std::size_t>(m.size()));
  for (std::size_t k = 0; k < static_cast<std::size_t>(m.size()); ++k) {
    buf[2 * k] = la::f32_to_half_bits(d[k].real(), fmt);
    buf[2 * k + 1] = la::f32_to_half_bits(d[k].imag(), fmt);
  }
  os.write(reinterpret_cast<const char*>(buf.data()),
           static_cast<std::streamsize>(buf.size() * sizeof(std::uint16_t)));
}

/// Reads one matrix, rejecting dimensions outside [0, max_rows/cols] (the
/// caller's structural bound) and any short read — a truncated or corrupt
/// stream must throw, never hand back silently-garbage factors.
la::MatrixCF read_mat(std::istream& is, index_t max_rows, index_t max_cols,
                      tlr::StoragePrecision p = tlr::StoragePrecision::kFp32) {
  const index_t r = read_i64(is);
  const index_t c = read_i64(is);
  if (!is) throw std::runtime_error("tlrwse::io: truncated matrix header");
  TLRWSE_REQUIRE(r >= 0 && c >= 0 && r <= max_rows && c <= max_cols,
                 "corrupt matrix header: dims out of range");
  la::MatrixCF m(r, c);
  if (!tlr::is_half(p)) {
    is.read(reinterpret_cast<char*>(m.data()),
            static_cast<std::streamsize>(static_cast<std::size_t>(m.size()) *
                                         sizeof(cf32)));
    if (!is) throw std::runtime_error("tlrwse::io: truncated matrix payload");
    return m;
  }
  const la::HalfFormat fmt = tlr::half_format(p);
  std::vector<std::uint16_t> buf(2 * static_cast<std::size_t>(m.size()));
  is.read(reinterpret_cast<char*>(buf.data()),
          static_cast<std::streamsize>(buf.size() * sizeof(std::uint16_t)));
  if (!is) throw std::runtime_error("tlrwse::io: truncated matrix payload");
  cf32* d = m.data();
  for (std::size_t k = 0; k < static_cast<std::size_t>(m.size()); ++k) {
    d[k] = cf32(la::half_bits_to_f32(buf[2 * k], fmt),
                la::half_bits_to_f32(buf[2 * k + 1], fmt));
  }
  return m;
}

/// Reads a matrix header and seeks past its payload (slice loads and the
/// byte scan never touch skipped factors). Returns the payload bytes.
double skip_mat(std::istream& is,
                tlr::StoragePrecision p = tlr::StoragePrecision::kFp32) {
  const index_t r = read_i64(is);
  const index_t c = read_i64(is);
  if (!is) throw std::runtime_error("tlrwse::io: truncated matrix header");
  TLRWSE_REQUIRE(
      r >= 0 && c >= 0 && r <= kMaxArchiveDim && c <= kMaxArchiveDim,
      "corrupt matrix header: dims out of range");
  const auto bytes = static_cast<std::int64_t>(r) * c * complex_disk_bytes(p);
  is.seekg(bytes, std::ios::cur);
  if (!is) throw std::runtime_error("tlrwse::io: truncated matrix payload");
  return static_cast<double>(bytes);
}

/// One embedded TLRA kernel's magic, dims, rank table and (version 2)
/// per-tile precision table. The payload's exact size follows from ranks
/// and precisions, so skipping costs a single seek.
struct TlrKernelHeader {
  tlr::TileGrid grid;
  std::vector<index_t> ranks;
  std::vector<tlr::StoragePrecision> prec;  // empty = uniform fp32 (v1)

  [[nodiscard]] tlr::StoragePrecision precision(index_t i, index_t j) const {
    if (prec.empty()) return tlr::StoragePrecision::kFp32;
    return prec[static_cast<std::size_t>(grid.tile_index(i, j))];
  }
};

TlrKernelHeader read_tlr_kernel_header(std::istream& is,
                                       const std::string& path) {
  if (read_u32(is) != kTlrMagic) {
    throw std::runtime_error("tlrwse::io: bad kernel magic in " + path);
  }
  const std::uint32_t version = read_u32(is);
  if (version != kFormatVersion && version != kFormatVersionMixed) {
    throw std::runtime_error("tlrwse::io: unsupported kernel version");
  }
  const index_t rows = read_i64(is);
  const index_t cols = read_i64(is);
  const index_t nb = read_i64(is);
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
  TLRWSE_REQUIRE(rows <= kMaxArchiveDim && cols <= kMaxArchiveDim,
                 "corrupt kernel header: dims out of range");
  TlrKernelHeader h{tlr::TileGrid(rows, cols, nb), {}, {}};
  h.ranks.resize(static_cast<std::size_t>(h.grid.num_tiles()));
  for (index_t j = 0; j < h.grid.nt(); ++j) {
    for (index_t i = 0; i < h.grid.mt(); ++i) {
      h.ranks[static_cast<std::size_t>(h.grid.tile_index(i, j))] =
          read_i64(is);
    }
  }
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
  for (index_t j = 0; j < h.grid.nt(); ++j) {
    for (index_t i = 0; i < h.grid.mt(); ++i) {
      const index_t rank =
          h.ranks[static_cast<std::size_t>(h.grid.tile_index(i, j))];
      TLRWSE_REQUIRE(rank >= 0 && rank <= std::min(h.grid.tile_rows(i),
                                                   h.grid.tile_cols(j)),
                     "corrupt archive: tile rank out of range");
    }
  }
  if (version == kFormatVersionMixed) {
    h.prec.resize(static_cast<std::size_t>(h.grid.num_tiles()));
    for (index_t j = 0; j < h.grid.nt(); ++j) {
      for (index_t i = 0; i < h.grid.mt(); ++i) {
        std::uint8_t tag{};
        is.read(reinterpret_cast<char*>(&tag), 1);
        TLRWSE_REQUIRE(tlr::valid_precision_tag(tag),
                       "corrupt archive: bad precision tag");
        h.prec[static_cast<std::size_t>(h.grid.tile_index(i, j))] =
            static_cast<tlr::StoragePrecision>(tag);
      }
    }
    if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
  }
  return h;
}

/// Factor payload bytes of one kernel (excluding per-tile dim headers),
/// at each tile's true on-disk precision — the residency currency cache
/// admission and stream planning price against.
double tlr_factor_bytes(const TlrKernelHeader& h) {
  double bytes = 0.0;
  for (index_t j = 0; j < h.grid.nt(); ++j) {
    for (index_t i = 0; i < h.grid.mt(); ++i) {
      const index_t rank =
          h.ranks[static_cast<std::size_t>(h.grid.tile_index(i, j))];
      bytes += static_cast<double>(rank) *
               static_cast<double>(h.grid.tile_rows(i) + h.grid.tile_cols(j)) *
               static_cast<double>(complex_disk_bytes(h.precision(i, j)));
    }
  }
  return bytes;
}

/// Seeks past one kernel's tile payload (4 i64 dims + factors per tile).
void skip_tlr_tiles(std::istream& is, const TlrKernelHeader& h) {
  std::int64_t bytes = 0;
  for (index_t j = 0; j < h.grid.nt(); ++j) {
    for (index_t i = 0; i < h.grid.mt(); ++i) {
      const index_t rank =
          h.ranks[static_cast<std::size_t>(h.grid.tile_index(i, j))];
      bytes += static_cast<std::int64_t>(4 * sizeof(std::int64_t)) +
               static_cast<std::int64_t>(rank) *
                   (h.grid.tile_rows(i) + h.grid.tile_cols(j)) *
                   complex_disk_bytes(h.precision(i, j));
    }
  }
  is.seekg(bytes, std::ios::cur);
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
}

tlr::TlrMatrix<cf32> read_tlr_tiles(std::istream& is,
                                    const TlrKernelHeader& h) {
  const tlr::TileGrid& g = h.grid;
  std::vector<la::LowRankFactors<cf32>> tiles(
      static_cast<std::size_t>(g.num_tiles()));
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const index_t rank =
          h.ranks[static_cast<std::size_t>(g.tile_index(i, j))];
      const tlr::StoragePrecision p = h.precision(i, j);
      la::LowRankFactors<cf32> t;
      t.U = read_mat(is, g.tile_rows(i), rank, p);
      t.Vh = read_mat(is, rank, g.tile_cols(j), p);
      TLRWSE_REQUIRE(t.U.rows() == g.tile_rows(i) && t.U.cols() == rank &&
                         t.Vh.rows() == rank &&
                         t.Vh.cols() == g.tile_cols(j),
                     "corrupt archive: tile factors mismatch rank table");
      tiles[static_cast<std::size_t>(g.tile_index(i, j))] = std::move(t);
    }
  }
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
  tlr::TlrMatrix<cf32> m(g, std::move(tiles));
  if (!h.prec.empty()) m.set_precision_tags(h.prec);
  return m;
}
}  // namespace

KernelArchive build_archive(const seismic::SeismicDataset& data,
                            const tlr::CompressionConfig& compression) {
  KernelArchive archive;
  archive.nt = data.config.nt;
  archive.dt = data.config.dt;
  archive.freq_bins = data.freq_bins;
  archive.freqs_hz = data.freqs_hz;
  const auto dA = static_cast<float>(data.surface_element());
  archive.kernels.reserve(static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    la::MatrixCF K = data.p_down[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < K.cols(); ++j) {
      cf32* col = K.col(j);
      for (index_t i = 0; i < K.rows(); ++i) col[i] *= dA;
    }
    archive.kernels.push_back(tlr::compress_tlr(K, compression));
  }
  return archive;
}

void save_archive(const std::string& path, const KernelArchive& archive) {
  TLRWSE_REQUIRE(archive.freq_bins.size() == archive.kernels.size() &&
                     archive.freqs_hz.size() == archive.kernels.size(),
                 "inconsistent archive metadata");
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tlrwse::io: cannot write " + path);
  write_u32(os, kArchiveMagic);
  write_u32(os, kFormatVersion);
  write_i64(os, archive.nt);
  write_f64(os, archive.dt);
  write_i64(os, archive.num_freqs());
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    write_i64(os, archive.freq_bins[static_cast<std::size_t>(q)]);
    write_f64(os, archive.freqs_hz[static_cast<std::size_t>(q)]);
  }
  os.close();
  // Kernels appended as individual TLR containers in side files would
  // complicate deployment; instead re-open and append them to the stream.
  std::ofstream app(path, std::ios::binary | std::ios::app);
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    // Reuse the TLR container format via a temporary in-memory detour is
    // wasteful; serialize inline with the same layout as save_tlr. Kernels
    // with half tiles write the version-2 container (precision table +
    // packed payloads); all-fp32 kernels stay byte-identical to version 1.
    const auto& m = archive.kernels[static_cast<std::size_t>(q)];
    const bool mixed = m.has_half_tiles();
    write_u32(app, kTlrMagic);
    write_u32(app, mixed ? kFormatVersionMixed : kFormatVersion);
    const auto& g = m.grid();
    write_i64(app, g.rows());
    write_i64(app, g.cols());
    write_i64(app, g.nb());
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) write_i64(app, m.rank(i, j));
    }
    if (mixed) {
      for (index_t j = 0; j < g.nt(); ++j) {
        for (index_t i = 0; i < g.mt(); ++i) {
          const auto tag = static_cast<std::uint8_t>(m.precision(i, j));
          app.write(reinterpret_cast<const char*>(&tag), 1);
        }
      }
    }
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const auto& t = m.tile(i, j);
        const tlr::StoragePrecision p =
            mixed ? m.precision(i, j) : tlr::StoragePrecision::kFp32;
        write_mat(app, t.U, p);
        write_mat(app, t.Vh, p);
      }
    }
  }
  if (!app) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

namespace {

/// Parses the band-metadata header of either container format, leaving the
/// stream positioned at the first kernel/band. Shared by peek_archive and
/// the extents scan.
ArchiveInfo peek_header(std::istream& is, const std::string& path) {
  const std::uint32_t magic = read_u32(is);
  if (magic != kArchiveMagic && magic != kSharedMagic) {
    throw std::runtime_error("tlrwse::io: bad archive magic in " + path);
  }
  const std::uint32_t version = read_u32(is);
  if (version != kFormatVersion && version != kFormatVersionMixed) {
    throw std::runtime_error("tlrwse::io: unsupported archive version");
  }
  ArchiveInfo info;
  info.format_version = version;
  info.nt = read_i64(is);
  info.dt = read_f64(is);
  const index_t nf = read_i64(is);
  TLRWSE_REQUIRE(nf >= 0, "corrupt archive");
  info.freq_bins.resize(static_cast<std::size_t>(nf));
  info.freqs_hz.resize(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    info.freq_bins[static_cast<std::size_t>(q)] = read_i64(is);
    info.freqs_hz[static_cast<std::size_t>(q)] = read_f64(is);
  }
  if (magic == kSharedMagic) {
    // The shared header carries the payload size up front so cache
    // admission can budget residency without reading any kernel data.
    info.shared_basis = true;
    info.payload_bytes = read_f64(is);
    info.num_bands = read_i64(is);
    TLRWSE_REQUIRE(info.num_bands >= 0, "corrupt shared archive");
  }
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive header");
  return info;
}

}  // namespace

ArchiveInfo peek_archive(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  return peek_header(is, path);
}

ArchiveInfo peek_archive_extents(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  ArchiveInfo info = peek_header(is, path);
  const index_t nf = info.num_freqs();
  info.freq_payload_bytes.assign(static_cast<std::size_t>(nf), 0.0);
  if (!info.shared_basis) {
    info.extents.reserve(static_cast<std::size_t>(nf));
    double total = 0.0;
    for (index_t q = 0; q < nf; ++q) {
      const auto offset = static_cast<std::int64_t>(is.tellg());
      const TlrKernelHeader h = read_tlr_kernel_header(is, path);
      if (q == 0) {
        info.rows = h.grid.rows();
        info.cols = h.grid.cols();
      }
      const double payload = tlr_factor_bytes(h);
      skip_tlr_tiles(is, h);
      ShardExtent e;
      e.offset = offset;
      e.bytes = static_cast<std::int64_t>(is.tellg()) - offset;
      e.payload_bytes = payload;
      e.first_freq = q;
      e.num_freqs = 1;
      info.extents.push_back(e);
      info.freq_payload_bytes[static_cast<std::size_t>(q)] = payload;
      total += payload;
    }
    info.payload_bytes = total;
    return info;
  }
  info.extents.reserve(static_cast<std::size_t>(info.num_bands));
  index_t band_start = 0;
  for (index_t bi = 0; bi < info.num_bands; ++bi) {
    const auto offset = static_cast<std::int64_t>(is.tellg());
    if (read_u32(is) != kBandMagic) {
      throw std::runtime_error("tlrwse::io: bad band magic in " + path);
    }
    const index_t rows = read_i64(is);
    const index_t cols = read_i64(is);
    const index_t nb = read_i64(is);
    (void)read_f64(is);  // acc
    const index_t band_nf = read_i64(is);
    if (!is) throw std::runtime_error("tlrwse::io: truncated shared archive");
    TLRWSE_REQUIRE(band_nf >= 0 && band_start + band_nf <= nf,
                   "corrupt shared archive band");
    TLRWSE_REQUIRE(rows <= kMaxArchiveDim && cols <= kMaxArchiveDim,
                   "corrupt shared archive band: dims out of range");
    tlr::StoragePrecision band_prec = tlr::StoragePrecision::kFp32;
    if (info.format_version == kFormatVersionMixed) {
      std::uint8_t tag{};
      is.read(reinterpret_cast<char*>(&tag), 1);
      if (!is) {
        throw std::runtime_error("tlrwse::io: truncated shared archive");
      }
      TLRWSE_REQUIRE(tlr::valid_precision_tag(tag),
                     "corrupt shared archive: bad precision tag");
      band_prec = static_cast<tlr::StoragePrecision>(tag);
    }
    if (bi == 0) {
      info.rows = rows;
      info.cols = cols;
    }
    const tlr::TileGrid g(rows, cols, nb);
    const auto ntiles = static_cast<std::size_t>(g.num_tiles());
    double basis_bytes = 0.0;
    for (std::size_t t = 0; t < 2 * ntiles; ++t) {
      basis_bytes += skip_mat(is, band_prec);
    }
    // Bases are shared by the whole band; amortise them evenly so the
    // per-frequency weights sum to the real resident cost.
    const double basis_share =
        band_nf > 0 ? basis_bytes / static_cast<double>(band_nf) : 0.0;
    double band_payload = basis_bytes;
    for (index_t f = 0; f < band_nf; ++f) {
      double core_bytes = 0.0;
      for (std::size_t t = 0; t < ntiles; ++t) {
        const bool factored = read_u32(is) != 0;
        (void)read_i64(is);
        if (!is) {
          throw std::runtime_error("tlrwse::io: truncated shared archive");
        }
        core_bytes += skip_mat(is, band_prec);
        if (factored) core_bytes += skip_mat(is, band_prec);
      }
      info.freq_payload_bytes[static_cast<std::size_t>(band_start + f)] =
          core_bytes + basis_share;
      band_payload += core_bytes;
    }
    ShardExtent e;
    e.offset = offset;
    e.bytes = static_cast<std::int64_t>(is.tellg()) - offset;
    e.payload_bytes = band_payload;
    e.first_freq = band_start;
    e.num_freqs = band_nf;
    info.extents.push_back(e);
    band_start += band_nf;
  }
  TLRWSE_REQUIRE(band_start == nf,
                 "corrupt shared archive: band frequency counts do not "
                 "cover the header frequency list");
  return info;
}

namespace {

/// Shared body of load_archive / load_archive_slice: q_end < 0 means the
/// whole archive. A non-null `info` (from peek_archive_extents on the same
/// file) lets the slice seek straight to the first kept kernel instead of
/// walking every preceding header.
KernelArchive load_archive_range(const std::string& path, index_t q_begin,
                                 index_t q_end, const ArchiveInfo* info) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  if (read_u32(is) != kArchiveMagic) {
    throw std::runtime_error("tlrwse::io: bad archive magic in " + path);
  }
  if (read_u32(is) != kFormatVersion) {
    throw std::runtime_error("tlrwse::io: unsupported archive version");
  }
  KernelArchive archive;
  archive.nt = read_i64(is);
  archive.dt = read_f64(is);
  const index_t nf = read_i64(is);
  TLRWSE_REQUIRE(nf >= 0, "corrupt archive");
  if (q_end < 0) q_end = nf;
  TLRWSE_REQUIRE(q_begin >= 0 && q_begin <= q_end && q_end <= nf,
                 "archive slice [", q_begin, ", ", q_end,
                 ") out of range for ", nf, " frequencies");
  std::vector<index_t> bins(static_cast<std::size_t>(nf));
  std::vector<double> hz(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    bins[static_cast<std::size_t>(q)] = read_i64(is);
    hz[static_cast<std::size_t>(q)] = read_f64(is);
  }
  if (!is) throw std::runtime_error("tlrwse::io: truncated archive header");
  archive.freq_bins.assign(bins.begin() + q_begin, bins.begin() + q_end);
  archive.freqs_hz.assign(hz.begin() + q_begin, hz.begin() + q_end);
  archive.kernels.reserve(static_cast<std::size_t>(q_end - q_begin));
  if (info != nullptr && info->has_extents()) {
    TLRWSE_REQUIRE(static_cast<index_t>(info->extents.size()) == nf,
                   "archive extents do not match file: ", info->extents.size(),
                   " granules for ", nf, " frequencies");
    if (q_begin < q_end) {
      is.seekg(info->extents[static_cast<std::size_t>(q_begin)].offset);
      if (!is) throw std::runtime_error("tlrwse::io: truncated archive");
      for (index_t q = q_begin; q < q_end; ++q) {
        const TlrKernelHeader h = read_tlr_kernel_header(is, path);
        archive.kernels.push_back(read_tlr_tiles(is, h));
      }
    }
    return archive;
  }
  for (index_t q = 0; q < q_end; ++q) {
    const TlrKernelHeader h = read_tlr_kernel_header(is, path);
    if (q < q_begin) {
      skip_tlr_tiles(is, h);
    } else {
      archive.kernels.push_back(read_tlr_tiles(is, h));
    }
  }
  return archive;
}

}  // namespace

KernelArchive load_archive(const std::string& path) {
  return load_archive_range(path, 0, -1, nullptr);
}

void quantize_archive(KernelArchive& archive,
                      const tlr::MixedPrecisionPolicy& policy) {
  for (auto& k : archive.kernels) k = tlr::quantize_tlr(k, policy).matrix;
}

void quantize_shared_archive(SharedKernelArchive& archive,
                             tlr::StoragePrecision p) {
  for (auto& bp : archive.bands) {
    tlr::SharedBasisStackedTlr<cf32> band = *bp;
    band.set_precision(p);
    bp = std::make_shared<const tlr::SharedBasisStackedTlr<cf32>>(
        std::move(band));
  }
}

KernelArchive load_archive_slice(const std::string& path, index_t q_begin,
                                 index_t q_end) {
  TLRWSE_REQUIRE(q_end >= 0, "archive slice end must be non-negative");
  return load_archive_range(path, q_begin, q_end, nullptr);
}

KernelArchive load_archive_slice(const std::string& path, index_t q_begin,
                                 index_t q_end, const ArchiveInfo& info) {
  TLRWSE_REQUIRE(q_end >= 0, "archive slice end must be non-negative");
  TLRWSE_REQUIRE(info.has_extents() && !info.shared_basis,
                 "extent-seeking slice needs a TLRA extents peek");
  return load_archive_range(path, q_begin, q_end, &info);
}

std::vector<std::unique_ptr<mdc::FrequencyMvm>> make_kernels(
    const KernelArchive& archive, mdc::TlrKernel kernel) {
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  kernels.reserve(static_cast<std::size_t>(archive.num_freqs()));
  for (const auto& k : archive.kernels) {
    kernels.push_back(
        std::make_unique<mdc::TlrMvm>(tlr::StackedTlr<cf32>(k), kernel));
  }
  return kernels;
}

std::unique_ptr<mdc::MdcOperator> make_operator(const KernelArchive& archive,
                                                mdc::TlrKernel kernel) {
  return std::make_unique<mdc::MdcOperator>(archive.nt, archive.freq_bins,
                                            make_kernels(archive, kernel));
}

std::vector<double> archive_kernel_bytes(const std::string& path) {
  return peek_archive_extents(path).freq_payload_bytes;
}

namespace {

/// Splits nf frequencies into consecutive bands of at most band_width
/// (0 = one band). Returns (start, length) pairs.
std::vector<std::pair<index_t, index_t>> split_bands(index_t nf,
                                                     index_t band_width) {
  TLRWSE_REQUIRE(band_width >= 0, "negative band width");
  if (band_width == 0 || band_width >= nf) return {{0, nf}};
  std::vector<std::pair<index_t, index_t>> out;
  for (index_t start = 0; start < nf; start += band_width) {
    out.emplace_back(start, std::min(band_width, nf - start));
  }
  return out;
}

}  // namespace

SharedKernelArchive build_shared_archive(const seismic::SeismicDataset& data,
                                         const tlr::SharedBasisConfig& cfg,
                                         index_t band_width) {
  SharedKernelArchive archive;
  archive.nt = data.config.nt;
  archive.dt = data.config.dt;
  archive.freq_bins = data.freq_bins;
  archive.freqs_hz = data.freqs_hz;
  const auto dA = static_cast<float>(data.surface_element());
  std::vector<la::MatrixCF> scaled;
  scaled.reserve(static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    la::MatrixCF K = data.p_down[static_cast<std::size_t>(q)];
    for (index_t j = 0; j < K.cols(); ++j) {
      cf32* col = K.col(j);
      for (index_t i = 0; i < K.rows(); ++i) col[i] *= dA;
    }
    scaled.push_back(std::move(K));
  }
  for (const auto& [start, len] : split_bands(data.num_freqs(), band_width)) {
    archive.bands.push_back(
        std::make_shared<const tlr::SharedBasisStackedTlr<cf32>>(
            tlr::SharedBasisStackedTlr<cf32>::fit(
                std::span<const la::MatrixCF>(scaled).subspan(
                    static_cast<std::size_t>(start),
                    static_cast<std::size_t>(len)),
                cfg)));
  }
  return archive;
}

SharedKernelArchive shared_from_archive(const KernelArchive& archive,
                                        const tlr::SharedBasisConfig& cfg,
                                        index_t band_width) {
  SharedKernelArchive out;
  out.nt = archive.nt;
  out.dt = archive.dt;
  out.freq_bins = archive.freq_bins;
  out.freqs_hz = archive.freqs_hz;
  for (const auto& [start, len] :
       split_bands(archive.num_freqs(), band_width)) {
    out.bands.push_back(
        std::make_shared<const tlr::SharedBasisStackedTlr<cf32>>(
            tlr::SharedBasisStackedTlr<cf32>::from_tlr(
                std::span<const tlr::TlrMatrix<cf32>>(archive.kernels)
                    .subspan(static_cast<std::size_t>(start),
                             static_cast<std::size_t>(len)),
                cfg)));
  }
  return out;
}

void save_shared_archive(const std::string& path,
                         const SharedKernelArchive& archive) {
  index_t band_freqs = 0;
  for (const auto& b : archive.bands) {
    TLRWSE_REQUIRE(b != nullptr, "shared archive: null band");
    band_freqs += b->num_freqs();
  }
  TLRWSE_REQUIRE(band_freqs == archive.num_freqs() &&
                     archive.freqs_hz.size() == archive.freq_bins.size(),
                 "inconsistent shared archive metadata");
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("tlrwse::io: cannot write " + path);
  // Half-precision bands need the version-2 container (per-band precision
  // byte + packed payloads); all-fp32 archives stay byte-identical to v1.
  bool any_half = false;
  for (const auto& b : archive.bands) {
    if (tlr::is_half(b->precision())) any_half = true;
  }
  write_u32(os, kSharedMagic);
  write_u32(os, any_half ? kFormatVersionMixed : kFormatVersion);
  write_i64(os, archive.nt);
  write_f64(os, archive.dt);
  write_i64(os, archive.num_freqs());
  for (index_t q = 0; q < archive.num_freqs(); ++q) {
    write_i64(os, archive.freq_bins[static_cast<std::size_t>(q)]);
    write_f64(os, archive.freqs_hz[static_cast<std::size_t>(q)]);
  }
  write_f64(os, archive.shared_bytes());
  write_i64(os, archive.num_bands());
  for (const auto& bp : archive.bands) {
    const auto& b = *bp;
    const auto& g = b.grid();
    const tlr::StoragePrecision p = b.precision();
    write_u32(os, kBandMagic);
    write_i64(os, g.rows());
    write_i64(os, g.cols());
    write_i64(os, g.nb());
    write_f64(os, b.acc());
    write_i64(os, b.num_freqs());
    if (any_half) {
      const auto tag = static_cast<std::uint8_t>(p);
      os.write(reinterpret_cast<const char*>(&tag), 1);
    }
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        write_mat(os, b.basis_u(i, j), p);
        write_mat(os, b.basis_vh(i, j), p);
      }
    }
    for (index_t f = 0; f < b.num_freqs(); ++f) {
      for (index_t j = 0; j < g.nt(); ++j) {
        for (index_t i = 0; i < g.mt(); ++i) {
          const auto& c = b.core(f, i, j);
          write_u32(os, c.factored ? 1u : 0u);
          write_i64(os, c.rank);
          if (c.factored) {
            write_mat(os, c.lr.U, p);
            write_mat(os, c.lr.Vh, p);
          } else {
            write_mat(os, c.dense, p);
          }
        }
      }
    }
  }
  if (!os) throw std::runtime_error("tlrwse::io: write failed: " + path);
}

namespace {

/// Seeks past one core's matrices (the flag and rank were already read).
void skip_core_mats(std::istream& is, bool factored,
                    tlr::StoragePrecision p = tlr::StoragePrecision::kFp32) {
  if (factored) {
    (void)skip_mat(is, p);
    (void)skip_mat(is, p);
  } else {
    (void)skip_mat(is, p);
  }
}

/// Shared body of load_shared_archive / load_shared_archive_slice:
/// q_end < 0 means the whole archive. Bands with no frequency in
/// [q_begin, q_end) are seeked past; overlapping bands keep their bases
/// and only the overlapping cores. A non-null `info` (an extents peek of
/// the same file) turns each non-overlapping band into a single absolute
/// seek — no header parsing, no per-core skip walk.
SharedKernelArchive load_shared_archive_range(const std::string& path,
                                              index_t q_begin, index_t q_end,
                                              const ArchiveInfo* info) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("tlrwse::io: cannot read " + path);
  if (read_u32(is) != kSharedMagic) {
    throw std::runtime_error("tlrwse::io: bad shared archive magic in " +
                             path);
  }
  const std::uint32_t version = read_u32(is);
  if (version != kFormatVersion && version != kFormatVersionMixed) {
    throw std::runtime_error("tlrwse::io: unsupported archive version");
  }
  SharedKernelArchive archive;
  archive.nt = read_i64(is);
  archive.dt = read_f64(is);
  const index_t nf = read_i64(is);
  TLRWSE_REQUIRE(nf >= 0, "corrupt shared archive");
  if (q_end < 0) q_end = nf;
  TLRWSE_REQUIRE(q_begin >= 0 && q_begin <= q_end && q_end <= nf,
                 "archive slice [", q_begin, ", ", q_end,
                 ") out of range for ", nf, " frequencies");
  std::vector<index_t> bins(static_cast<std::size_t>(nf));
  std::vector<double> hz(static_cast<std::size_t>(nf));
  for (index_t q = 0; q < nf; ++q) {
    bins[static_cast<std::size_t>(q)] = read_i64(is);
    hz[static_cast<std::size_t>(q)] = read_f64(is);
  }
  archive.freq_bins.assign(bins.begin() + q_begin, bins.begin() + q_end);
  archive.freqs_hz.assign(hz.begin() + q_begin, hz.begin() + q_end);
  (void)read_f64(is);  // payload_bytes: recomputed from the loaded bands
  const index_t num_bands = read_i64(is);
  if (!is) {
    throw std::runtime_error("tlrwse::io: truncated shared archive header");
  }
  TLRWSE_REQUIRE(num_bands >= 0, "corrupt shared archive");
  const bool seek_extents = info != nullptr && info->has_extents();
  if (seek_extents) {
    TLRWSE_REQUIRE(static_cast<index_t>(info->extents.size()) == num_bands,
                   "archive extents do not match file: ",
                   info->extents.size(), " granules for ", num_bands,
                   " bands");
  }
  index_t band_start = 0;  // global index of this band's first frequency
  for (index_t bi = 0; bi < num_bands; ++bi) {
    if (seek_extents) {
      const ShardExtent& e = info->extents[static_cast<std::size_t>(bi)];
      TLRWSE_REQUIRE(e.first_freq == band_start,
                     "archive extents do not match file: band ", bi,
                     " starts at frequency ", e.first_freq, ", expected ",
                     band_start);
      if (e.first_freq + e.num_freqs <= q_begin || e.first_freq >= q_end) {
        // No overlap: one absolute seek past the whole band.
        is.seekg(e.offset + e.bytes);
        if (!is) {
          throw std::runtime_error("tlrwse::io: truncated shared archive");
        }
        band_start += e.num_freqs;
        continue;
      }
      is.seekg(e.offset);
      if (!is) {
        throw std::runtime_error("tlrwse::io: truncated shared archive");
      }
    }
    if (read_u32(is) != kBandMagic) {
      throw std::runtime_error("tlrwse::io: bad band magic in " + path);
    }
    const index_t rows = read_i64(is);
    const index_t cols = read_i64(is);
    const index_t nb = read_i64(is);
    const double acc = read_f64(is);
    const index_t band_nf = read_i64(is);
    if (!is) throw std::runtime_error("tlrwse::io: truncated shared archive");
    TLRWSE_REQUIRE(band_nf >= 0 && band_nf <= nf,
                   "corrupt shared archive band");
    TLRWSE_REQUIRE(rows <= kMaxArchiveDim && cols <= kMaxArchiveDim,
                   "corrupt shared archive band: dims out of range");
    tlr::StoragePrecision band_prec = tlr::StoragePrecision::kFp32;
    if (version == kFormatVersionMixed) {
      std::uint8_t tag{};
      is.read(reinterpret_cast<char*>(&tag), 1);
      if (!is) {
        throw std::runtime_error("tlrwse::io: truncated shared archive");
      }
      TLRWSE_REQUIRE(tlr::valid_precision_tag(tag),
                     "corrupt shared archive: bad precision tag");
      band_prec = static_cast<tlr::StoragePrecision>(tag);
    }
    const tlr::TileGrid g(rows, cols, nb);
    const auto ntiles = static_cast<std::size_t>(g.num_tiles());
    // The band covers global frequencies [band_start, band_start+band_nf);
    // keep its cores intersecting the requested [q_begin, q_end).
    const index_t keep_lo = std::max(q_begin - band_start, index_t{0});
    const index_t keep_hi = std::min(q_end - band_start, band_nf);
    band_start += band_nf;
    if (keep_lo >= keep_hi) {
      // No overlap: seek past the bases and every core.
      for (std::size_t t = 0; t < 2 * ntiles; ++t) {
        (void)skip_mat(is, band_prec);
      }
      for (index_t f = 0; f < band_nf; ++f) {
        for (std::size_t t = 0; t < ntiles; ++t) {
          const bool factored = read_u32(is) != 0;
          (void)read_i64(is);
          if (!is) {
            throw std::runtime_error(
                "tlrwse::io: truncated shared archive");
          }
          skip_core_mats(is, factored, band_prec);
        }
      }
      continue;
    }
    std::vector<la::MatrixCF> u(ntiles), vh(ntiles);
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        // A shared basis cannot out-rank its tile (orthonormal columns /
        // rows); from_parts re-checks the exact dimensions below.
        const auto t = static_cast<std::size_t>(g.tile_index(i, j));
        u[t] = read_mat(is, g.tile_rows(i), g.tile_rows(i), band_prec);
        vh[t] = read_mat(is, g.tile_cols(j), g.tile_cols(j), band_prec);
      }
    }
    using Band = tlr::SharedBasisStackedTlr<cf32>;
    std::vector<std::vector<Band::Core>> cores(
        static_cast<std::size_t>(keep_hi - keep_lo),
        std::vector<Band::Core>(ntiles));
    for (index_t f = 0; f < band_nf; ++f) {
      const bool keep = f >= keep_lo && f < keep_hi;
      for (index_t j = 0; j < g.nt(); ++j) {
        for (index_t i = 0; i < g.mt(); ++i) {
          const auto t = static_cast<std::size_t>(g.tile_index(i, j));
          const bool factored = read_u32(is) != 0;
          const index_t rank = read_i64(is);
          if (!is) {
            throw std::runtime_error(
                "tlrwse::io: truncated shared archive");
          }
          if (!keep) {
            skip_core_mats(is, factored, band_prec);
            continue;
          }
          Band::Core& c = cores[static_cast<std::size_t>(f - keep_lo)][t];
          c.factored = factored;
          c.rank = rank;
          // Cores live inside the tile's shared bases, so their dims are
          // bounded by the basis ranks just read (exactness is enforced
          // by from_parts; the bound stops arena-overrun-sized reads).
          const index_t ku = u[t].cols();
          const index_t kv = vh[t].rows();
          if (c.factored) {
            const index_t rmax = std::min(ku, kv);
            c.lr.U = read_mat(is, ku, rmax, band_prec);
            c.lr.Vh = read_mat(is, rmax, kv, band_prec);
          } else {
            c.dense = read_mat(is, ku, kv, band_prec);
          }
        }
      }
    }
    if (!is) throw std::runtime_error("tlrwse::io: truncated shared archive");
    Band band = Band::from_parts(g, acc, std::move(u), std::move(vh),
                                 std::move(cores));
    // Re-tag the band: the payload values are already rounded, so
    // set_precision is a lossless no-op on the data and restores the
    // precision-aware byte accounting and packed-plan packing.
    if (tlr::is_half(band_prec)) band.set_precision(band_prec);
    archive.bands.push_back(std::make_shared<const Band>(std::move(band)));
  }
  TLRWSE_REQUIRE(band_start == nf,
                 "corrupt shared archive: band frequency counts do not "
                 "cover the header frequency list");
  index_t band_freqs = 0;
  for (const auto& b : archive.bands) band_freqs += b->num_freqs();
  TLRWSE_REQUIRE(band_freqs == q_end - q_begin,
                 "corrupt shared archive: sliced band frequency counts do "
                 "not cover the requested range");
  return archive;
}

}  // namespace

SharedKernelArchive load_shared_archive(const std::string& path) {
  return load_shared_archive_range(path, 0, -1, nullptr);
}

SharedKernelArchive load_shared_archive_slice(const std::string& path,
                                              index_t q_begin,
                                              index_t q_end) {
  TLRWSE_REQUIRE(q_end >= 0, "archive slice end must be non-negative");
  return load_shared_archive_range(path, q_begin, q_end, nullptr);
}

SharedKernelArchive load_shared_archive_slice(const std::string& path,
                                              index_t q_begin, index_t q_end,
                                              const ArchiveInfo& info) {
  TLRWSE_REQUIRE(q_end >= 0, "archive slice end must be non-negative");
  TLRWSE_REQUIRE(info.has_extents() && info.shared_basis,
                 "extent-seeking slice needs a TLRS extents peek");
  return load_shared_archive_range(path, q_begin, q_end, &info);
}

std::vector<std::unique_ptr<mdc::FrequencyMvm>> make_kernels(
    const SharedKernelArchive& archive) {
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  kernels.reserve(static_cast<std::size_t>(archive.num_freqs()));
  for (const auto& band : archive.bands) {
    auto band_kernels = mdc::make_shared_basis_kernels(band);
    for (auto& k : band_kernels) kernels.push_back(std::move(k));
  }
  return kernels;
}

std::unique_ptr<mdc::MdcOperator> make_operator(
    const SharedKernelArchive& archive) {
  return std::make_unique<mdc::MdcOperator>(archive.nt, archive.freq_bins,
                                            make_kernels(archive));
}

}  // namespace tlrwse::io
