#include "tlrwse/io/csv.hpp"

#include <stdexcept>

#include "tlrwse/common/error.hpp"

namespace tlrwse::io {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path,
                     std::vector<std::string> columns)
    : os_(path), arity_(columns.size()) {
  if (!os_) throw std::runtime_error("tlrwse::io: cannot open csv: " + path);
  TLRWSE_REQUIRE(arity_ > 0, "csv needs at least one column");
  for (std::size_t c = 0; c < columns.size(); ++c) {
    os_ << csv_escape(columns[c]) << (c + 1 == columns.size() ? "\n" : ",");
  }
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  TLRWSE_REQUIRE(cells.size() == arity_, "csv row arity mismatch");
  for (std::size_t c = 0; c < cells.size(); ++c) {
    os_ << csv_escape(cells[c]) << (c + 1 == cells.size() ? "\n" : ",");
  }
  ++rows_;
}

}  // namespace tlrwse::io
