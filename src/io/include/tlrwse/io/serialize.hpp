// Binary serialization of dense and TLR matrices.
//
// The TLR pre-processing (compression) is the expensive host-side step of
// the paper's pipeline (Sec. 6.6 excludes it from the timed region); in a
// production deployment the compressed bases are computed once and
// reloaded for every survey reprocessing. The format is a little-endian
// stream with a magic/version header; files are portable between runs of
// this library on the same-endianness hosts.
#pragma once

#include <string>

#include "tlrwse/la/matrix.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::io {

/// Magic tags of the container formats.
inline constexpr std::uint32_t kDenseMagic = 0x544C5244;   // "TLRD"
inline constexpr std::uint32_t kTlrMagic = 0x544C5254;     // "TLRT"
inline constexpr std::uint32_t kSharedMagic = 0x544C5253;  // "TLRS"
inline constexpr std::uint32_t kBandMagic = 0x544C5242;    // "TLRB"
inline constexpr std::uint32_t kFormatVersion = 1;
/// Version 2 adds half-precision payload encodings: a "TLRT" kernel gains a
/// per-tile precision table (one StoragePrecision byte per tile, after the
/// rank table) and fp16/bf16 tiles store each complex element as two
/// packed uint16 (re, im bits) — half the bytes of fp32. A "TLRS" band
/// carries one precision byte after its frequency count and packs bases
/// and cores alike. Writers emit version 1 whenever everything is fp32, so
/// legacy archives stay byte-identical; readers accept both versions.
inline constexpr std::uint32_t kFormatVersionMixed = 2;

/// Writes a dense complex matrix. Throws std::runtime_error on IO failure.
void save_matrix(const std::string& path, const la::MatrixCF& m);

/// Reads a dense complex matrix written by save_matrix.
[[nodiscard]] la::MatrixCF load_matrix(const std::string& path);

/// Writes a TLR matrix: grid dimensions, per-tile ranks, then the U/V
/// bases tile by tile (column-of-tiles-major).
void save_tlr(const std::string& path, const tlr::TlrMatrix<cf32>& m);

/// Reads a TLR matrix written by save_tlr.
[[nodiscard]] tlr::TlrMatrix<cf32> load_tlr(const std::string& path);

}  // namespace tlrwse::io
