// Minimal CSV writer for exporting benchmark series (so the paper's
// figures can be re-plotted from the harness output).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace tlrwse::io {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws on failure.
  CsvWriter(const std::string& path, std::vector<std::string> columns);

  /// Appends a row; must match the header arity.
  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  std::ofstream os_;
  std::size_t arity_;
  std::size_t rows_ = 0;
};

/// Escapes a cell per RFC 4180 (quotes fields containing separators).
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace tlrwse::io
