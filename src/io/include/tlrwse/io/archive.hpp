// Kernel archives: the full set of TLR-compressed frequency kernels of a
// survey, persisted with band metadata.
//
// The paper excludes compression from its timed region because it happens
// once on the host (Sec. 6.6); a production workflow compresses a survey,
// archives the bases, and reuses them for every virtual source / every
// reprocessing. An archive is exactly what would be shipped to the CS-2
// cluster's host.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/mdd/mdd_solver.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/tlr/mixed.hpp"
#include "tlrwse/tlr/shared_basis.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::io {

struct KernelArchive {
  index_t nt = 0;
  double dt = 0.0;
  std::vector<index_t> freq_bins;
  std::vector<double> freqs_hz;
  std::vector<tlr::TlrMatrix<cf32>> kernels;  // dA already folded in

  [[nodiscard]] index_t num_freqs() const {
    return static_cast<index_t>(kernels.size());
  }
  [[nodiscard]] double compressed_bytes() const {
    double total = 0.0;
    for (const auto& k : kernels) total += k.compressed_bytes();
    return total;
  }
};

/// Compresses every frequency kernel of the dataset (with the MDC surface
/// element folded in) into an archive.
[[nodiscard]] KernelArchive build_archive(
    const seismic::SeismicDataset& data,
    const tlr::CompressionConfig& compression);

/// Binary round trip. The format embeds the per-kernel TLR containers of
/// serialize.hpp after a band-metadata header.
void save_archive(const std::string& path, const KernelArchive& archive);
[[nodiscard]] KernelArchive load_archive(const std::string& path);

/// Quantizes every kernel in place (tile factors rounded and tagged per
/// tlr::MixedPrecisionPolicy). A subsequent save_archive writes packed
/// version-2 payloads at roughly half the bytes for fp16/bf16 tiles, and
/// MvmPlan packs the tagged tiles as 16-bit arena panels.
void quantize_archive(KernelArchive& archive,
                      const tlr::MixedPrecisionPolicy& policy);

/// Shared-basis archive: the survey's frequencies split into consecutive
/// bands, each stored as one tlr::SharedBasisStackedTlr (bases fit once per
/// band, per-frequency cores only). This is the operator-cache-friendly
/// format — resident bytes shrink by the band's storage ratio.
struct SharedKernelArchive {
  index_t nt = 0;
  double dt = 0.0;
  std::vector<index_t> freq_bins;
  std::vector<double> freqs_hz;
  /// Consecutive bands; their num_freqs() sum to freq_bins.size().
  std::vector<std::shared_ptr<const tlr::SharedBasisStackedTlr<cf32>>> bands;

  [[nodiscard]] index_t num_freqs() const {
    return static_cast<index_t>(freq_bins.size());
  }
  [[nodiscard]] index_t num_bands() const {
    return static_cast<index_t>(bands.size());
  }
  /// Bytes of the shared representation — the OperatorCache currency.
  [[nodiscard]] double shared_bytes() const {
    double total = 0.0;
    for (const auto& b : bands) total += b->shared_bytes();
    return total;
  }
};

/// Compresses the dataset's kernels into shared-basis bands of (at most)
/// `band_width` consecutive frequencies (0 = one band for the whole set).
[[nodiscard]] SharedKernelArchive build_shared_archive(
    const seismic::SeismicDataset& data, const tlr::SharedBasisConfig& cfg,
    index_t band_width = 0);

/// Conversion path: refits an existing per-frequency archive into
/// shared-basis bands (tile-by-tile re-densification, never the full
/// matrices). All kernels must share one tile grid.
[[nodiscard]] SharedKernelArchive shared_from_archive(
    const KernelArchive& archive, const tlr::SharedBasisConfig& cfg,
    index_t band_width = 0);

/// Binary round trip of a shared archive ("TLRS" container). Factors and
/// cores survive bitwise.
void save_shared_archive(const std::string& path,
                         const SharedKernelArchive& archive);
[[nodiscard]] SharedKernelArchive load_shared_archive(const std::string& path);

/// Rounds every band to one uniform storage precision (bases and cores
/// alike, see SharedBasisStackedTlr::set_precision). Idempotent.
void quantize_shared_archive(SharedKernelArchive& archive,
                             tlr::StoragePrecision p);

/// Byte extent of one archive granule — a frequency kernel in a "TLRA"
/// container, a whole band in a "TLRS" one — measured during a single
/// header peek. `offset`/`bytes` frame the granule in the file (where an
/// extent-seeking slice load jumps to); `payload_bytes` is the factor/core
/// payload, the residency currency of cache admission and stream planning.
struct ShardExtent {
  std::int64_t offset = 0;
  std::int64_t bytes = 0;
  double payload_bytes = 0.0;
  index_t first_freq = 0;  // global index of the granule's first frequency
  index_t num_freqs = 0;   // frequencies covered (1 per TLRA kernel)
};

/// Band metadata of an archive, readable without touching the kernel
/// payload. The serving layer validates requests against this at admission
/// (a few hundred bytes of header) instead of paying a full kernel load
/// just to discover a missing or mismatched archive.
struct ArchiveInfo {
  index_t nt = 0;
  double dt = 0.0;
  /// Container format version of the file header (2 = half-precision
  /// payload encodings; "TLRA" containers stay at 1 and version their
  /// embedded kernels individually).
  std::uint32_t format_version = 1;
  std::vector<index_t> freq_bins;
  std::vector<double> freqs_hz;
  /// Shared-basis ("TLRS") archives only: format flag and number of bands.
  /// Per-frequency ("TLRA") archives keep the defaults.
  bool shared_basis = false;
  index_t num_bands = 0;
  /// Compressed payload bytes. "TLRS" headers carry it up front so the
  /// plain peek fills it; for "TLRA" it is known only after an extents
  /// peek (0.0 until then).
  double payload_bytes = 0.0;
  /// Filled by peek_archive_extents only (the plain peek stops at the
  /// band-metadata header): kernel dimensions, the per-granule byte
  /// extents, and the per-frequency payload weights (shared-basis bands
  /// amortise their basis bytes evenly over their frequencies).
  index_t rows = 0;
  index_t cols = 0;
  std::vector<ShardExtent> extents;
  std::vector<double> freq_payload_bytes;
  [[nodiscard]] index_t num_freqs() const {
    return static_cast<index_t>(freq_bins.size());
  }
  [[nodiscard]] bool has_extents() const { return !extents.empty(); }
};

/// Reads only the header of `path` (either container format). Throws like
/// load_archive on a missing file, bad magic, or unsupported version.
[[nodiscard]] ArchiveInfo peek_archive(const std::string& path);

/// One-pass peek that also walks the kernel headers (payloads are seeked
/// past, never read) and records each granule's byte extent. This is the
/// single directory read shared by the stream planner and the
/// extent-seeking slice loads below — neither re-scans headers.
[[nodiscard]] ArchiveInfo peek_archive_extents(const std::string& path);

/// Loads only frequencies [q_begin, q_end) of an archive, seeking past the
/// payload of every other kernel — what a cluster worker owning one
/// frequency shard reads instead of the whole survey. The returned archive
/// carries the sliced band metadata; kernels are bitwise identical to the
/// same indices of a full load_archive.
[[nodiscard]] KernelArchive load_archive_slice(const std::string& path,
                                               index_t q_begin,
                                               index_t q_end);

/// Shared-basis counterpart. Bands with no frequency in [q_begin, q_end)
/// are skipped whole; overlapping bands load their (band-shared) bases
/// plus only the overlapping cores, so the per-frequency arithmetic of the
/// trimmed band matches the full band's exactly.
[[nodiscard]] SharedKernelArchive load_shared_archive_slice(
    const std::string& path, index_t q_begin, index_t q_end);

/// Extent-seeking slice loads: same results as the two-argument forms but
/// seek straight to the granule offsets recorded in `info` instead of
/// re-reading every preceding kernel header — what the out-of-core
/// prefetcher calls once per shard, per sweep. `info` must come from
/// peek_archive_extents on the same (unmodified) file.
[[nodiscard]] KernelArchive load_archive_slice(const std::string& path,
                                               index_t q_begin, index_t q_end,
                                               const ArchiveInfo& info);
[[nodiscard]] SharedKernelArchive load_shared_archive_slice(
    const std::string& path, index_t q_begin, index_t q_end,
    const ArchiveInfo& info);

/// Per-frequency compressed payload bytes, computed from headers and rank
/// tables alone (payloads are seeked past, never read) — the shard
/// planner's placement weights. Shared-basis archives amortise each band's
/// basis bytes evenly over its frequencies. Equivalent to
/// peek_archive_extents(path).freq_payload_bytes.
[[nodiscard]] std::vector<double> archive_kernel_bytes(
    const std::string& path);

/// Builds the MDC operator directly from an archive (no recompression).
[[nodiscard]] std::unique_ptr<mdc::MdcOperator> make_operator(
    const KernelArchive& archive, mdc::TlrKernel kernel = mdc::TlrKernel::kFused);

/// Shared-basis counterpart: one SharedBasisMvm per frequency, each band's
/// basis arena compiled once and shared by its frequencies.
[[nodiscard]] std::unique_ptr<mdc::MdcOperator> make_operator(
    const SharedKernelArchive& archive);

/// The per-frequency kernel factories behind make_operator, exposed for
/// callers that drive frequencies directly (cluster workers run the exact
/// same FrequencyMvm objects without the FFT wrapper, which is what keeps
/// a distributed solve bitwise identical to the single-process one).
[[nodiscard]] std::vector<std::unique_ptr<mdc::FrequencyMvm>> make_kernels(
    const KernelArchive& archive,
    mdc::TlrKernel kernel = mdc::TlrKernel::kFused);
[[nodiscard]] std::vector<std::unique_ptr<mdc::FrequencyMvm>> make_kernels(
    const SharedKernelArchive& archive);

}  // namespace tlrwse::io
