// Fixed-width ASCII table printer used by the benchmark harness to emit the
// paper's tables/figure series in a uniform, diffable format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tlrwse {

/// Accumulates rows of string cells and renders them with aligned columns.
/// Numeric formatting is the caller's responsibility (see cell() helpers).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, rule, rows) to `os`.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `prec` significant decimal digits after the point.
[[nodiscard]] std::string cell(double v, int prec = 2);
/// Formats a double in scientific notation (e.g. 2.94e+11).
[[nodiscard]] std::string cell_sci(double v, int prec = 2);
/// Formats an integer with thousands grouping disabled (plain digits).
[[nodiscard]] std::string cell(long long v);
[[nodiscard]] inline std::string cell(int v) { return cell(static_cast<long long>(v)); }
[[nodiscard]] inline std::string cell(long v) { return cell(static_cast<long long>(v)); }
[[nodiscard]] inline std::string cell(std::size_t v) { return cell(static_cast<long long>(v)); }

}  // namespace tlrwse
