// Monotonic wall-clock timer for the benchmark harness.
#pragma once

#include <chrono>

namespace tlrwse {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tlrwse
