// Order-statistics helpers for the serving metrics (p50/p95/p99 latency).
//
// Nearest-rank percentiles over small sample sets: the solve service keeps
// every request latency of a run (closed-loop benches are a few thousand
// samples at most), so an exact sort beats a streaming sketch in both code
// and fidelity.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "tlrwse/common/error.hpp"

namespace tlrwse {

/// Nearest-rank percentile (q in [0, 100]) of an unsorted sample set.
/// Returns 0 for an empty set so metric dumps stay total.
[[nodiscard]] inline double percentile(std::span<const double> samples,
                                       double q) {
  TLRWSE_REQUIRE(q >= 0.0 && q <= 100.0, "percentile out of range: ", q);
  if (samples.empty()) return 0.0;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(n)));
  return sorted[rank == 0 ? 0 : rank - 1];
}

/// The latency digest every service/bench report carries.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

[[nodiscard]] inline LatencySummary summarize_latencies(
    std::span<const double> samples) {
  LatencySummary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  double sum = 0.0;
  for (double v : samples) {
    sum += v;
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(samples.size());
  s.p50 = percentile(samples, 50.0);
  s.p95 = percentile(samples, 95.0);
  s.p99 = percentile(samples, 99.0);
  return s;
}

}  // namespace tlrwse
