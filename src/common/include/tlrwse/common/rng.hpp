// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component (randomized SVD test matrices, synthetic noise,
// workload generators) takes an explicit seed so that benches and tests are
// bit-reproducible across runs.
#pragma once

#include <complex>
#include <cstdint>
#include <random>
#include <vector>

#include "tlrwse/common/types.hpp"

namespace tlrwse {

/// Thin wrapper over a fixed-algorithm engine (mt19937_64) so results do not
/// depend on the standard library's default_random_engine choice.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5EED5EEDULL) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Standard normal.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t integer(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }
  /// Complex with independent standard normal real/imag parts.
  template <typename Real>
  std::complex<Real> cnormal() {
    return {static_cast<Real>(normal()), static_cast<Real>(normal())};
  }

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Fills a span-like container with standard normal values (real or complex).
template <typename T>
void fill_normal(Rng& rng, T* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if constexpr (is_complex_v<T>) {
      data[i] = rng.cnormal<real_of_t<T>>();
    } else {
      data[i] = static_cast<T>(rng.normal());
    }
  }
}

}  // namespace tlrwse
