// Byte/bandwidth/flop unit helpers for reporting in the paper's units
// (GB for dataset sizes, PB/s for sustained bandwidth, PFlop/s for rates).
#pragma once

#include <string>

namespace tlrwse {

inline constexpr double kKiB = 1024.0;
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;
inline constexpr double kTB = 1e12;
inline constexpr double kPB = 1e15;

[[nodiscard]] inline double bytes_to_gb(double bytes) { return bytes / kGB; }
[[nodiscard]] inline double bytes_to_pb(double bytes) { return bytes / kPB; }

/// Human-readable byte count, e.g. "763.2 GB" / "110.4 GB" / "48.0 kB".
[[nodiscard]] std::string format_bytes(double bytes);
/// Human-readable rate, e.g. "92.58 PB/s".
[[nodiscard]] std::string format_bandwidth(double bytes_per_sec);
/// Human-readable flop rate, e.g. "37.95 PFlop/s".
[[nodiscard]] std::string format_flops(double flops_per_sec);

}  // namespace tlrwse
