// ThreadSanitizer happens-before annotations for OpenMP fork/join edges.
//
// GCC's libgomp synchronises its thread team with futexes, which TSan does
// not intercept, so every barrier at the end of an `omp for` — and the dock
// that hands pool threads new work — is invisible to the race detector.
// Writes made by workers before the (real) barrier then look concurrent
// with the main thread's reads after it, and vice versa for the fork
// direction. The macros below re-create those edges for TSan only: the
// master releases a token before the region, each worker acquires it on
// entry and releases it after its share of the loop, and the master
// acquires it after the join. They compile to nothing outside
// -fsanitize=thread builds.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define TLRWSE_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TLRWSE_TSAN_ENABLED 1
#endif
#endif

#ifdef TLRWSE_TSAN_ENABLED
extern "C" {
void AnnotateHappensBefore(const char* file, int line,
                           const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line,
                          const volatile void* addr);
}
#define TLRWSE_TSAN_RELEASE(addr) \
  AnnotateHappensBefore(__FILE__, __LINE__, (const volatile void*)(addr))
#define TLRWSE_TSAN_ACQUIRE(addr) \
  AnnotateHappensAfter(__FILE__, __LINE__, (const volatile void*)(addr))
#else
#define TLRWSE_TSAN_RELEASE(addr) ((void)0)
#define TLRWSE_TSAN_ACQUIRE(addr) ((void)0)
#endif
