// Fundamental scalar and index types shared across the tlrwse libraries.
//
// The paper's workload is single-precision complex (Sec. 6.6: "Precision
// reported: Single precision complex"), so `cf32` is the working type of the
// seismic kernels; `cf64`/double are used in compression reference paths and
// accuracy checks.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace tlrwse {

using cf32 = std::complex<float>;
using cf64 = std::complex<double>;

/// Signed index type used for matrix dimensions and loop bounds; signed so
/// that `i - 1` in backward loops and OpenMP canonical loops are well formed.
using index_t = std::int64_t;

/// Scalar traits: maps a (possibly complex) scalar to its real counterpart.
template <typename T>
struct real_of {
  using type = T;
};
template <typename T>
struct real_of<std::complex<T>> {
  using type = T;
};
template <typename T>
using real_of_t = typename real_of<T>::type;

template <typename T>
inline constexpr bool is_complex_v = false;
template <typename T>
inline constexpr bool is_complex_v<std::complex<T>> = true;

/// Complex conjugate that is a no-op for real scalars, so that generic
/// kernels (dot products, adjoint MVMs) work across float/double/complex.
template <typename T>
[[nodiscard]] constexpr T conj_if_complex(const T& v) noexcept {
  if constexpr (is_complex_v<T>) {
    return std::conj(v);
  } else {
    return v;
  }
}

}  // namespace tlrwse
