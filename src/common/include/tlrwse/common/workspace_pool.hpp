// Per-thread workspace pool for allocation-free hot loops.
//
// The TLR-MVM and MDC apply paths run inside the LSQR iteration loop, where
// any per-call heap allocation shows up as steady-state overhead. A
// WorkspacePool hands every thread its own lazily-created workspace object
// so repeated calls reuse the same buffers, and concurrent calls (e.g. the
// OpenMP-parallel frequency loop of MdcOperator) never share one.
//
// Slots are keyed by a dense process-wide thread index (assigned on first
// use, stable for the thread's lifetime), which makes the pool safe for any
// mix of OpenMP teams and plain OS threads: a slot is only ever touched by
// the single thread that owns its index. Threads beyond the fixed slot
// count fall back to a thread_local workspace, which is still race-free —
// it merely loses reuse across pool instances of different element types.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

namespace tlrwse {

/// Dense id of the calling OS thread: 0, 1, 2, ... in first-use order.
[[nodiscard]] inline std::size_t thread_slot_id() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

template <typename Ws>
class WorkspacePool {
 public:
  /// `max_threads` bounds the number of distinct pooled slots; threads with
  /// a higher id share a thread_local fallback (never a data race).
  explicit WorkspacePool(std::size_t max_threads = kDefaultSlots)
      : slots_(max_threads) {}

  // Slots hold per-thread state; copying an operator should start the copy
  // with a cold pool rather than aliasing (or deep-copying) scratch.
  WorkspacePool(const WorkspacePool& other) : slots_(other.slots_.size()) {}
  WorkspacePool& operator=(const WorkspacePool& other) {
    if (this != &other) slots_.assign(other.slots_.size(), nullptr);
    return *this;
  }
  WorkspacePool(WorkspacePool&&) noexcept = default;
  WorkspacePool& operator=(WorkspacePool&&) noexcept = default;

  /// The calling thread's workspace, created on first use. Each slot is
  /// only ever read or written by the thread whose id it carries, so no
  /// locking is required.
  [[nodiscard]] Ws& local() const {
    const std::size_t i = thread_slot_id();
    if (i < slots_.size()) {
      auto& slot = slots_[i];
      if (!slot) slot = std::make_unique<Ws>();
      return *slot;
    }
    thread_local Ws overflow;
    return overflow;
  }

  /// Number of slots that have been materialised so far (test hook).
  [[nodiscard]] std::size_t active_slots() const {
    std::size_t n = 0;
    for (const auto& s : slots_) n += (s != nullptr);
    return n;
  }

  void clear() {
    for (auto& s : slots_) s.reset();
  }

 private:
  static constexpr std::size_t kDefaultSlots = 256;
  mutable std::vector<std::unique_ptr<Ws>> slots_;
};

}  // namespace tlrwse
