// Bounded multi-producer/multi-consumer queue for the serving layer.
//
// The solve service admits requests through a fixed-capacity queue so that
// overload surfaces as an immediate typed rejection instead of unbounded
// memory growth (backpressure). This is the generic primitive: blocking and
// non-blocking push/pop plus close() semantics so consumers drain the
// remaining items and then observe shutdown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "tlrwse/common/error.hpp"

namespace tlrwse {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    TLRWSE_REQUIRE(capacity_ > 0, "queue capacity must be positive");
  }

  /// Non-blocking: false when the queue is full or closed.
  [[nodiscard]] bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking: waits for space; false when the queue was closed first.
  bool push(T item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking: waits for an item; false when closed and fully drained.
  bool pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return false;  // closed and drained
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Non-blocking: false when nothing is queued right now.
  [[nodiscard]] bool try_pop(T& out) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return false;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return true;
  }

  /// Rejects future pushes; consumers drain the remaining items.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }
  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tlrwse
