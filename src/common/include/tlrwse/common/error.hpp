// Error handling helpers.
//
// Library code validates preconditions with TLRWSE_REQUIRE, which throws
// std::invalid_argument / std::runtime_error with a formatted message; this
// keeps hot kernels assert-free in release builds while making misuse of the
// public API loudly visible.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tlrwse {

namespace detail {
template <typename... Args>
[[nodiscard]] std::string format_message(const char* expr, const char* file,
                                         int line, Args&&... args) {
  std::ostringstream os;
  os << "tlrwse: requirement `" << expr << "` failed at " << file << ":"
     << line;
  if constexpr (sizeof...(Args) > 0) {
    os << ": ";
    (os << ... << args);
  }
  return os.str();
}
}  // namespace detail

}  // namespace tlrwse

/// Precondition check for public API entry points. Always on (not tied to
/// NDEBUG): the cost is negligible relative to the O(n^2)+ kernels guarded.
#define TLRWSE_REQUIRE(cond, ...)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw std::invalid_argument(::tlrwse::detail::format_message(       \
          #cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__));         \
    }                                                                     \
  } while (false)

/// Internal invariant check for conditions that indicate a library bug
/// rather than caller misuse.
#define TLRWSE_ENSURE(cond, ...)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw std::logic_error(::tlrwse::detail::format_message(            \
          #cond, __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__));         \
    }                                                                     \
  } while (false)
