// Cache-line/SIMD aligned allocation.
//
// All dense storage in tlrwse uses 64-byte alignment so that vectorised
// fmac loops never straddle; this mirrors the CS-2 constraint (Sec. 6.5)
// that operands of a dual-read fmac must sit in distinct SRAM banks with
// aligned, padded arrays.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>

namespace tlrwse {

inline constexpr std::size_t kDefaultAlignment = 64;

/// Minimal C++17-style aligned allocator usable with std::vector.
template <typename T, std::size_t Alignment = kDefaultAlignment>
struct AlignedAllocator {
  using value_type = T;
  // Explicit rebind: required because the allocator carries a non-type
  // template parameter, which defeats the default rebinding machinery.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  static_assert(Alignment >= alignof(T));
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment must be pow2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // Round the byte size up to a multiple of the alignment as required by
    // std::aligned_alloc.
    const std::size_t bytes = ((n * sizeof(T) + Alignment - 1) / Alignment) * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

}  // namespace tlrwse
