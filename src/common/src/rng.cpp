// Rng is header-only today; this translation unit anchors the library and
// instantiates the common fill paths used across tests so they are compiled
// exactly once.
#include "tlrwse/common/rng.hpp"

namespace tlrwse {

template void fill_normal<float>(Rng&, float*, std::size_t);
template void fill_normal<double>(Rng&, double*, std::size_t);
template void fill_normal<cf32>(Rng&, cf32*, std::size_t);
template void fill_normal<cf64>(Rng&, cf64*, std::size_t);

}  // namespace tlrwse
