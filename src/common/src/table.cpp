#include "tlrwse/common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "tlrwse/common/error.hpp"

namespace tlrwse {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TLRWSE_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  TLRWSE_REQUIRE(cells.size() == headers_.size(), "row arity ", cells.size(),
                 " != header arity ", headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string cell(double v, int prec) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

std::string cell_sci(double v, int prec) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(prec) << v;
  return os.str();
}

std::string cell(long long v) { return std::to_string(v); }

}  // namespace tlrwse
