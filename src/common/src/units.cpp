#include "tlrwse/common/units.hpp"

#include <array>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace tlrwse {

namespace {
std::string scaled(double value, const char* unit) {
  struct Scale {
    double factor;
    const char* prefix;
  };
  static constexpr std::array<Scale, 6> kScales = {{{1e15, "P"},
                                                    {1e12, "T"},
                                                    {1e9, "G"},
                                                    {1e6, "M"},
                                                    {1e3, "k"},
                                                    {1.0, ""}}};
  for (const auto& s : kScales) {
    if (std::abs(value) >= s.factor || s.factor == 1.0) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << value / s.factor << " "
         << s.prefix << unit;
      return os.str();
    }
  }
  return {};
}
}  // namespace

std::string format_bytes(double bytes) { return scaled(bytes, "B"); }
std::string format_bandwidth(double bps) { return scaled(bps, "B/s"); }
std::string format_flops(double fps) { return scaled(fps, "Flop/s"); }

}  // namespace tlrwse
