// Uniform tile partitioning of an M x N matrix with tile size nb
// (trailing tiles are ragged when nb does not divide M or N).
//
// This is the "flat" TLR partition of the paper (Fig. 2): a 10 x 6 grid of
// nb-sized tiles, each compressed independently.
#pragma once

#include <algorithm>

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/types.hpp"

namespace tlrwse::tlr {

class TileGrid {
 public:
  TileGrid() = default;
  TileGrid(index_t rows, index_t cols, index_t nb)
      : rows_(rows), cols_(cols), nb_(nb) {
    TLRWSE_REQUIRE(rows >= 0 && cols >= 0, "negative matrix dims");
    TLRWSE_REQUIRE(nb >= 1, "tile size must be >= 1");
    mt_ = (rows + nb - 1) / nb;
    nt_ = (cols + nb - 1) / nb;
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t nb() const noexcept { return nb_; }
  /// Number of tile rows / tile columns.
  [[nodiscard]] index_t mt() const noexcept { return mt_; }
  [[nodiscard]] index_t nt() const noexcept { return nt_; }
  [[nodiscard]] index_t num_tiles() const noexcept { return mt_ * nt_; }

  /// Height of tile row i (ragged on the last row).
  [[nodiscard]] index_t tile_rows(index_t i) const noexcept {
    return std::min(nb_, rows_ - i * nb_);
  }
  /// Width of tile column j (ragged on the last column).
  [[nodiscard]] index_t tile_cols(index_t j) const noexcept {
    return std::min(nb_, cols_ - j * nb_);
  }
  [[nodiscard]] index_t row_offset(index_t i) const noexcept { return i * nb_; }
  [[nodiscard]] index_t col_offset(index_t j) const noexcept { return j * nb_; }

  /// Linear index of tile (i, j), tiles stored column-of-tiles-major.
  [[nodiscard]] index_t tile_index(index_t i, index_t j) const noexcept {
    return j * mt_ + i;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t nb_ = 1;
  index_t mt_ = 0;
  index_t nt_ = 0;
};

}  // namespace tlrwse::tlr
