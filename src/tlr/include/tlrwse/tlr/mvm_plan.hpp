// Precompiled MVM plan for a StackedTlr<cf32>: the SIMD-engine execution
// form of the 3-phase TLR-MVM.
//
// Building a plan copies every V/U stack into 64-byte-aligned arenas,
// split into planar real/imag planes (the paper's complex-to-real
// splitting, Sec. 6.6) with leading dimensions padded to 16 elements so
// each column starts on a cache-line boundary. Tiles tagged fp16/bf16
// (TlrMatrix precision tags, see tlr/precision.hpp) are PACKED as 16-bit
// planes in a separate uint16 arena — consecutive same-precision tiles of
// a stack coalesce into one panel, and the widening hgemv kernels stream
// half the bytes per sweep, which on the memory-bound shapes of the paper
// is nearly 2x apply throughput. All arithmetic stays fp32: packing is
// lossless for pre-rounded (quantize_tlr) values, so a uniform-precision
// plan applies bitwise identically to the fp32 plan of the same rounded
// matrix. The phase-2 shuffle is flattened at build time into a program of
// (src, dst, len) segment copies with adjacent tiles merged, replacing the
// mt x nt nested copy loop of tlr_mvm_3phase with a short run of memcpys.
//
// apply()/apply_adjoint() run the planned 3-phase dataflow through the
// fused split-complex microkernels of la::simd; the _multi variants carry
// nrhs right-hand sides through one sweep over the arena, which is where
// the register-blocked multi-RHS kernels earn their ~4x arithmetic
// intensity. Results are bitwise independent of nrhs (each RHS column
// reduces in the same order as a single-RHS call).
//
// A plan is immutable after construction and safe to share across threads;
// per-call scratch lives in the caller's PlanWorkspace.
#pragma once

#include <span>
#include <vector>

#include "tlrwse/common/aligned.hpp"
#include "tlrwse/la/simd.hpp"
#include "tlrwse/tlr/stacked.hpp"

namespace tlrwse::tlr {

/// One phase-2 copy: len floats from yv-space offset src to yu-space
/// offset dst (per RHS, applied to both planes).
struct ShuffleSegment {
  index_t src;
  index_t dst;
  index_t len;
};

/// Per-thread scratch for plan execution; grown on first use, reused
/// allocation-free afterwards. Not safe for concurrent calls.
struct PlanWorkspace {
  using Buf = std::vector<float, AlignedAllocator<float>>;
  Buf xr, xi;    // split input planes, n_in x nrhs
  Buf yvr, yvi;  // phase-1 outputs, total_rank x nrhs
  Buf yur, yui;  // shuffled phase-3 inputs, total_rank x nrhs
  Buf tr, ti;    // output planes before re-interleaving, n_out x nrhs
  Buf cr, ci;    // factored-core scratch (SharedBasisMvmPlan only)
};

class MvmPlan {
 public:
  /// Builds the arena + shuffle program from the stacks. `kt` pins the
  /// kernel tier (for parity tests); nullptr uses the process-wide
  /// la::simd::dispatch() table.
  explicit MvmPlan(const StackedTlr<cf32>& A,
                   const la::simd::KernelTable* kt = nullptr);

  /// y = A x  (x: cols(), y: rows()).
  void apply(std::span<const cf32> x, std::span<cf32> y,
             PlanWorkspace& ws) const;
  /// y = A^H x  (x: rows(), y: cols()).
  void apply_adjoint(std::span<const cf32> x, std::span<cf32> y,
                     PlanWorkspace& ws) const;
  /// Multi-RHS forms: X/Y hold nrhs contiguous vectors back to back
  /// (leading dimension = vector length). Each RHS column is bitwise
  /// identical to the corresponding single-RHS call.
  void apply_multi(std::span<const cf32> X, std::span<cf32> Y, index_t nrhs,
                   PlanWorkspace& ws) const;
  void apply_adjoint_multi(std::span<const cf32> X, std::span<cf32> Y,
                           index_t nrhs, PlanWorkspace& ws) const;

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t total_rank() const noexcept { return total_rank_; }
  /// Arena footprint in bytes: fp32 planes at 4 B/real plus packed 16-bit
  /// planes at 2 B/real — the real resident size of the factors.
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_.size() * sizeof(float) +
           arena16_.size() * sizeof(std::uint16_t);
  }
  /// Bytes the same planes would occupy stored uniformly fp32.
  [[nodiscard]] std::size_t fp32_equivalent_bytes() const noexcept {
    return (arena_.size() + 2 * arena16_.size()) * sizeof(float);
  }
  /// True when at least one stack panel is packed 16-bit.
  [[nodiscard]] bool has_half_panels() const noexcept {
    return !arena16_.empty();
  }
  [[nodiscard]] const std::vector<ShuffleSegment>& shuffle_program()
      const noexcept {
    return shuffle_;
  }
  [[nodiscard]] const la::simd::KernelTable& kernels() const noexcept {
    return *kt_;
  }

 private:
  // One same-precision run of tiles inside a stack. V panels split the
  // stack along its ROWS (disjoint output slices, so panel order cannot
  // change results); U panels split along its COLUMNS, and phase 3 chains
  // accumulation across panels in the same per-element FMA order as the
  // unsplit sweep, so a uniform-precision plan stays bitwise identical to
  // the single-panel layout.
  struct Panel {
    StoragePrecision prec;
    index_t re, im;  // plane offsets into arena_ (fp32) or arena16_ (half)
    index_t ld;      // padded leading dimension, in elements
    index_t off;     // start along the split dimension of the stack
    index_t len;     // extent along the split dimension
  };
  struct ColPlane {  // one tile column's V planes
    index_t m, n;    // logical stack shape (rank_sum x tile_cols)
    index_t x_off;   // offset of this column's slice of x
    index_t y_base;  // offset of this column's segment in yv-space
    std::vector<Panel> panels;  // partition of [0, m) by precision
  };
  struct RowPlane {  // one tile row's U planes
    index_t m, n;    // tile_rows x rank_sum
    index_t x_off;   // offset of this row's slice of the output
    index_t y_base;  // offset of this row's segment in yu-space
    std::vector<Panel> panels;  // partition of [0, n) by precision
  };

  const la::simd::KernelTable* kt_;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t total_rank_ = 0;
  std::vector<float, AlignedAllocator<float>> arena_;
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> arena16_;
  std::vector<ColPlane> v_;
  std::vector<RowPlane> u_;
  std::vector<ShuffleSegment> shuffle_;
};

}  // namespace tlrwse::tlr
