// Tile low-rank matrix representation and the compression driver.
//
// Each tile (i, j) of the partition is stored as U_ij * Vh_ij with rank
// k_ij chosen per tile to meet the accuracy `acc` (Frobenius-relative on the
// tile). The paper compresses 230 frequency matrices this way (Sec. 6.1),
// with SVD-class backends named in Sec. 4: rank-revealing QR, randomized
// SVD, and adaptive cross approximation — all available here.
#pragma once

#include <functional>
#include <numeric>
#include <vector>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/common/tsan.hpp"
#include "tlrwse/la/aca.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"
#include "tlrwse/la/matrix.hpp"
#include "tlrwse/la/qr.hpp"
#include "tlrwse/la/svd.hpp"
#include "tlrwse/tlr/precision.hpp"
#include "tlrwse/tlr/tile_grid.hpp"

namespace tlrwse::tlr {

enum class CompressionBackend { kSvd, kRrqr, kRsvd, kAca };

[[nodiscard]] constexpr const char* backend_name(
    CompressionBackend b) noexcept {
  switch (b) {
    case CompressionBackend::kSvd: return "svd";
    case CompressionBackend::kRrqr: return "rrqr";
    case CompressionBackend::kRsvd: return "rsvd";
    case CompressionBackend::kAca: return "aca";
  }
  return "unknown";
}

struct CompressionConfig {
  index_t nb = 70;                 // uniform tile size (paper: 25/50/70)
  double acc = 1e-4;               // per-tile relative Frobenius tolerance
  CompressionBackend backend = CompressionBackend::kSvd;
  index_t max_rank = 0;            // 0 = uncapped
  std::uint64_t seed = 42;         // for the randomized backend

  /// Optional per-tile tolerance override (the paper's Sec. 8: uniform acc
  /// "is a simplification that could be relaxed by a user expert"). When
  /// set, it receives (tile_row, tile_col, grid) and returns that tile's
  /// accuracy; `acc` is ignored for tiles the map covers (return a
  /// negative value to fall back to the uniform `acc`).
  std::function<double(index_t, index_t, const TileGrid&)> acc_map;
};

template <typename T>
class TlrMatrix {
 public:
  TlrMatrix() = default;
  TlrMatrix(TileGrid grid, std::vector<la::LowRankFactors<T>> tiles)
      : grid_(grid), tiles_(std::move(tiles)) {
    TLRWSE_REQUIRE(static_cast<index_t>(tiles_.size()) == grid_.num_tiles(),
                   "tile count mismatch");
  }

  [[nodiscard]] const TileGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] index_t rows() const noexcept { return grid_.rows(); }
  [[nodiscard]] index_t cols() const noexcept { return grid_.cols(); }

  [[nodiscard]] const la::LowRankFactors<T>& tile(index_t i, index_t j) const {
    return tiles_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }
  [[nodiscard]] la::LowRankFactors<T>& tile(index_t i, index_t j) {
    return tiles_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }

  [[nodiscard]] index_t rank(index_t i, index_t j) const {
    return tile(i, j).rank();
  }

  /// Per-tile storage precision. An empty tag vector means uniform fp32
  /// (the default); otherwise one tag per tile in tile_index order. Tags
  /// describe how the factors are PACKED downstream (plan arenas, archive
  /// payloads) — the values held here stay float, pre-rounded through the
  /// tagged format by quantize_tlr so packing is lossless.
  [[nodiscard]] StoragePrecision precision(index_t i, index_t j) const {
    if (precision_.empty()) return StoragePrecision::kFp32;
    return precision_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }
  [[nodiscard]] const std::vector<StoragePrecision>& precision_tags()
      const noexcept {
    return precision_;
  }
  void set_precision_tags(std::vector<StoragePrecision> tags) {
    TLRWSE_REQUIRE(tags.empty() || static_cast<index_t>(tags.size()) ==
                                       grid_.num_tiles(),
                   "precision tag count mismatch");
    precision_ = std::move(tags);
  }
  [[nodiscard]] bool has_half_tiles() const {
    for (const StoragePrecision p : precision_) {
      if (is_half(p)) return true;
    }
    return false;
  }

  /// Bytes of the U/V bases at their tagged storage precision (the paper's
  /// "compressed size", now precision-aware).
  [[nodiscard]] double compressed_bytes() const {
    double total = 0.0;
    for (std::size_t t = 0; t < tiles_.size(); ++t) {
      const double elems =
          static_cast<double>(tiles_[t].U.size() + tiles_[t].Vh.size());
      const StoragePrecision p =
          precision_.empty() ? StoragePrecision::kFp32 : precision_[t];
      total += elems * sizeof(T) * (bytes_per_real(p) / 4.0);
    }
    return total;
  }
  /// Bytes of the bases if everything were stored fp32 (the pre-packing
  /// footprint; equals compressed_bytes() for untagged matrices).
  [[nodiscard]] double fp32_bytes() const {
    double total = 0.0;
    for (const auto& t : tiles_) {
      total += static_cast<double>(t.U.size() + t.Vh.size()) * sizeof(T);
    }
    return total;
  }
  /// Bytes of the equivalent dense matrix.
  [[nodiscard]] double dense_bytes() const {
    return static_cast<double>(grid_.rows()) * static_cast<double>(grid_.cols()) *
           sizeof(T);
  }
  /// dense_bytes / compressed_bytes (the paper reports ~7x at acc = 1e-4).
  [[nodiscard]] double compression_ratio() const {
    const double c = compressed_bytes();
    return c > 0.0 ? dense_bytes() / c : 0.0;
  }

  struct RankStats {
    index_t min = 0;
    index_t max = 0;
    double mean = 0.0;
  };
  [[nodiscard]] RankStats rank_stats() const {
    RankStats s;
    if (tiles_.empty()) return s;
    s.min = tiles_.front().rank();
    double sum = 0.0;
    for (const auto& t : tiles_) {
      s.min = std::min(s.min, t.rank());
      s.max = std::max(s.max, t.rank());
      sum += static_cast<double>(t.rank());
    }
    s.mean = sum / static_cast<double>(tiles_.size());
    return s;
  }

  /// Dense reconstruction (accuracy checks and small examples only).
  [[nodiscard]] la::Matrix<T> reconstruct() const {
    la::Matrix<T> A(grid_.rows(), grid_.cols(), T{});
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        const auto dense_tile = la::reconstruct(tile(i, j));
        A.set_block(grid_.row_offset(i), grid_.col_offset(j), dense_tile);
      }
    }
    return A;
  }

 private:
  TileGrid grid_;
  std::vector<la::LowRankFactors<T>> tiles_;  // column-of-tiles-major
  std::vector<StoragePrecision> precision_;   // empty = uniform fp32
};

/// Compresses one dense tile with the configured backend at tolerance
/// `acc_override` (pass cfg.acc for the uniform case).
template <typename T>
[[nodiscard]] la::LowRankFactors<T> compress_tile(const la::Matrix<T>& tile,
                                                  const CompressionConfig& cfg,
                                                  Rng& rng,
                                                  double acc_override) {
  using R = real_of_t<T>;
  const R acc = static_cast<R>(acc_override);
  switch (cfg.backend) {
    case CompressionBackend::kSvd:
      return la::compress_svd(tile, acc, cfg.max_rank);
    case CompressionBackend::kRrqr: {
      auto f = la::rrqr_truncated(tile, acc, cfg.max_rank);
      return {std::move(f.U), std::move(f.Vh)};
    }
    case CompressionBackend::kRsvd:
      return la::compress_rsvd(tile, acc, rng, /*initial_rank=*/8,
                               /*power_iters=*/1, cfg.max_rank);
    case CompressionBackend::kAca:
      return la::compress_aca(tile, acc, cfg.max_rank);
  }
  TLRWSE_ENSURE(false, "unknown compression backend");
}

/// Uniform-tolerance overload.
template <typename T>
[[nodiscard]] la::LowRankFactors<T> compress_tile(const la::Matrix<T>& tile,
                                                  const CompressionConfig& cfg,
                                                  Rng& rng) {
  return compress_tile(tile, cfg, rng, cfg.acc);
}

/// Compresses a dense matrix into TLR form; tiles are processed in parallel.
template <typename T>
[[nodiscard]] TlrMatrix<T> compress_tlr(const la::Matrix<T>& A,
                                        const CompressionConfig& cfg) {
  TLRWSE_TRACE_SPAN("tlr.compress", "tlr");
  // Per-backend tile timing + the rank distribution; resolved here (one
  // registry lookup per matrix) and recorded per tile on the sharded fast
  // path inside the parallel loop.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  obs::Counter& tiles_compressed = reg.counter("tlr.tiles_compressed");
  obs::Histogram& rank_hist = reg.histogram("tlr.tile_rank");
  obs::Histogram& tile_time_hist = reg.histogram(
      std::string("tlr.tile_compress_s.") + backend_name(cfg.backend));

  const TileGrid grid(A.rows(), A.cols(), cfg.nb);
  std::vector<la::LowRankFactors<T>> tiles(
      static_cast<std::size_t>(grid.num_tiles()));
  TLRWSE_TSAN_RELEASE(&tiles);
#pragma omp parallel
  {
    TLRWSE_TSAN_ACQUIRE(&tiles);
    // Per-thread RNG derived from the seed and the tile index keeps the
    // randomized backend deterministic regardless of the thread count or
    // schedule. Static scheduling avoids libgomp's dynamic work-share
    // protocol, whose futex-guarded init is invisible to ThreadSanitizer.
#pragma omp for collapse(2) schedule(static)
    for (index_t j = 0; j < grid.nt(); ++j) {
      for (index_t i = 0; i < grid.mt(); ++i) {
        Rng rng(cfg.seed ^ (static_cast<std::uint64_t>(grid.tile_index(i, j)) *
                            0x9E3779B97F4A7C15ULL));
        const auto block =
            A.block(grid.row_offset(i), grid.col_offset(j), grid.tile_rows(i),
                    grid.tile_cols(j));
        double acc = cfg.acc;
        if (cfg.acc_map) {
          const double mapped = cfg.acc_map(i, j, grid);
          if (mapped >= 0.0) acc = mapped;
        }
        TLRWSE_TRACE_SPAN_DETAIL("tlr.compress_tile", "tlr");
        WallTimer tile_timer;
        auto& slot = tiles[static_cast<std::size_t>(grid.tile_index(i, j))];
        slot = compress_tile(block, cfg, rng, acc);
        tile_time_hist.record(tile_timer.seconds());
        rank_hist.record(static_cast<double>(slot.rank()));
        tiles_compressed.add();
      }
    }
    TLRWSE_TSAN_RELEASE(&tiles);
  }
  TLRWSE_TSAN_ACQUIRE(&tiles);
  return TlrMatrix<T>(grid, std::move(tiles));
}

}  // namespace tlrwse::tlr
