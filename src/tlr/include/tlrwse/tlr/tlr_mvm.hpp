// TLR-MVM kernels: the classic 3-phase algorithm (Figs. 5-7) and the
// communication-avoiding fused variant the paper introduces for the CS-2
// (Fig. 9), plus adjoint variants required by the LSQR solver and the
// complex-to-4-real splitting of Sec. 6.6.
#pragma once

#include <span>
#include <vector>

#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"
#include "tlrwse/tlr/stacked.hpp"

namespace tlrwse::tlr {

/// Workspace reused across MVM calls (avoids per-call allocation inside
/// the LSQR iteration loop). All kernels size the buffers with assign(),
/// so after the first call on a given matrix every later call runs without
/// touching the heap; one workspace serves any mix of kernels, but must
/// not be shared by concurrent calls (use one per thread — see
/// WorkspacePool).
template <typename T>
struct MvmWorkspace {
  std::vector<T> yv;              // V-batch outputs, one segment per tile column
  std::vector<T> yu;              // shuffled inputs of the U-batch, per tile row
  std::vector<index_t> yv_bases;  // segment start of each tile column in yv
  std::vector<index_t> yu_bases;  // segment start of each tile row in yu
};

/// Phase structure of the classic TLR-MVM:
///   1. V-batch:   yv_j = Vstack_j * x_j          (per tile column)
///   2. Shuffle:   regroup yv segments by tile row (cross-memory traffic)
///   3. U-batch:   y_i  = Ustack_i * yu_i          (per tile row)
template <typename T>
void tlr_mvm_3phase(const StackedTlr<T>& A, std::span<const T> x,
                    std::span<T> y, MvmWorkspace<T>& ws) {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.mvm_3phase", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.mvm_3phase");
  calls.add();
  const TileGrid& g = A.grid();
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == g.cols(), "x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == g.rows(), "y size");

  // Total rank volume and per-column/row segment offsets. resize, not
  // assign: phase 1 overwrites every yv element (gemv with beta = 0) and
  // phase 2 copies over every yu element, so zero-filling here would be
  // pure memory traffic.
  index_t total_rank = 0;
  for (index_t j = 0; j < g.nt(); ++j) total_rank += A.col_rank_sum(j);
  ws.yv.resize(static_cast<std::size_t>(total_rank));
  ws.yu.resize(static_cast<std::size_t>(total_rank));

  // Phase 1: V-batch over tile columns.
  index_t yv_base = 0;
  ws.yv_bases.assign(static_cast<std::size_t>(g.nt()), 0);
  for (index_t j = 0; j < g.nt(); ++j) {
    ws.yv_bases[static_cast<std::size_t>(j)] = yv_base;
    const auto& vs = A.v_stack(j);
    la::gemv(vs,
             x.subspan(static_cast<std::size_t>(g.col_offset(j)),
                       static_cast<std::size_t>(g.tile_cols(j))),
             std::span<T>(ws.yv.data() + yv_base,
                          static_cast<std::size_t>(vs.rows())));
    yv_base += vs.rows();
  }

  // Phase 2: shuffle yv (grouped by tile column) into yu (grouped by row).
  index_t yu_base = 0;
  ws.yu_bases.assign(static_cast<std::size_t>(g.mt()), 0);
  for (index_t i = 0; i < g.mt(); ++i) {
    ws.yu_bases[static_cast<std::size_t>(i)] = yu_base;
    yu_base += A.row_rank_sum(i);
  }
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const index_t k = A.rank(i, j);
      const T* src = ws.yv.data() + ws.yv_bases[static_cast<std::size_t>(j)] +
                     A.v_offset(i, j);
      T* dst = ws.yu.data() + ws.yu_bases[static_cast<std::size_t>(i)] +
               A.u_offset(i, j);
      std::copy_n(src, k, dst);
    }
  }

  // Phase 3: U-batch over tile rows.
  for (index_t i = 0; i < g.mt(); ++i) {
    const auto& us = A.u_stack(i);
    la::gemv(us,
             std::span<const T>(ws.yu.data() + ws.yu_bases[static_cast<std::size_t>(i)],
                                static_cast<std::size_t>(us.cols())),
             y.subspan(static_cast<std::size_t>(g.row_offset(i)),
                       static_cast<std::size_t>(g.tile_rows(i))));
  }
}

/// Communication-avoiding TLR-MVM (paper Fig. 9): phases 1 and 3 are fused
/// per tile column, eliminating the shuffle. Each tile column j computes
/// its V-batch locally, then immediately applies its U bases, accumulating
/// partial y vectors. On the CS-2 this keeps all traffic inside one PE's
/// SRAM; here the partial-y accumulation is the extra "multiple y vectors
/// in and out" traffic the paper describes.
template <typename T>
void tlr_mvm_fused(const StackedTlr<T>& A, std::span<const T> x,
                   std::span<T> y, MvmWorkspace<T>& ws) {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.mvm_fused", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.mvm_fused");
  calls.add();
  const TileGrid& g = A.grid();
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == g.cols(), "x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == g.rows(), "y size");
  std::fill(y.begin(), y.end(), T{});

  for (index_t j = 0; j < g.nt(); ++j) {
    const auto& vs = A.v_stack(j);
    ws.yv.assign(static_cast<std::size_t>(vs.rows()), T{});
    la::gemv(vs,
             x.subspan(static_cast<std::size_t>(g.col_offset(j)),
                       static_cast<std::size_t>(g.tile_cols(j))),
             std::span<T>(ws.yv));
    for (index_t i = 0; i < g.mt(); ++i) {
      const index_t k = A.rank(i, j);
      if (k == 0) continue;
      const auto& us = A.u_stack(i);
      const index_t uoff = A.u_offset(i, j);
      T* yi = y.data() + g.row_offset(i);
      const T* seg = ws.yv.data() + A.v_offset(i, j);
      // y_i += U_ij * yv_ij, reading U_ij columns out of the row stack.
      for (index_t c = 0; c < k; ++c) {
        const T s = seg[c];
        const T* ucol = us.col(uoff + c);
        for (index_t r = 0; r < g.tile_rows(i); ++r) yi[r] += ucol[r] * s;
      }
    }
  }
}

/// Adjoint TLR-MVM: y = A^H x. Needed by LSQR. Runs the transposed
/// dataflow: per tile row i, project x_i through U^H, then through V.
template <typename T>
void tlr_mvm_adjoint(const StackedTlr<T>& A, std::span<const T> x,
                     std::span<T> y, MvmWorkspace<T>& ws) {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.mvm_adjoint", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.mvm_adjoint");
  calls.add();
  const TileGrid& g = A.grid();
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == g.rows(), "x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == g.cols(), "y size");
  std::fill(y.begin(), y.end(), T{});

  for (index_t i = 0; i < g.mt(); ++i) {
    const auto& us = A.u_stack(i);
    ws.yu.assign(static_cast<std::size_t>(us.cols()), T{});
    // yu_i = Ustack_i^H x_i.
    la::gemv_adjoint(us,
                     x.subspan(static_cast<std::size_t>(g.row_offset(i)),
                               static_cast<std::size_t>(g.tile_rows(i))),
                     std::span<T>(ws.yu));
    // Scatter through V: y_j += Vh_ij^H yu_ij.
    for (index_t j = 0; j < g.nt(); ++j) {
      const index_t k = A.rank(i, j);
      if (k == 0) continue;
      const auto& vs = A.v_stack(j);
      const index_t voff = A.v_offset(i, j);
      T* yj = y.data() + g.col_offset(j);
      const T* seg = ws.yu.data() + A.u_offset(i, j);
      // y_j += (Vh rows voff..voff+k)^H seg: column-major walk over Vh.
      for (index_t c = 0; c < g.tile_cols(j); ++c) {
        const T* vcol = vs.col(c) + voff;
        T acc{};
        for (index_t r = 0; r < k; ++r) {
          acc += conj_if_complex(vcol[r]) * seg[r];
        }
        yj[c] += acc;
      }
    }
  }
}

/// Convenience wrappers allocating their own workspace.
template <typename T>
[[nodiscard]] std::vector<T> tlr_mvm_3phase(const StackedTlr<T>& A,
                                            std::span<const T> x) {
  std::vector<T> y(static_cast<std::size_t>(A.grid().rows()));
  MvmWorkspace<T> ws;
  tlr_mvm_3phase(A, x, std::span<T>(y), ws);
  return y;
}
template <typename T>
[[nodiscard]] std::vector<T> tlr_mvm_fused(const StackedTlr<T>& A,
                                           std::span<const T> x) {
  std::vector<T> y(static_cast<std::size_t>(A.grid().rows()));
  MvmWorkspace<T> ws;
  tlr_mvm_fused(A, x, std::span<T>(y), ws);
  return y;
}
template <typename T>
[[nodiscard]] std::vector<T> tlr_mvm_adjoint(const StackedTlr<T>& A,
                                             std::span<const T> x) {
  std::vector<T> y(static_cast<std::size_t>(A.grid().cols()));
  MvmWorkspace<T> ws;
  tlr_mvm_adjoint(A, x, std::span<T>(y), ws);
  return y;
}

}  // namespace tlrwse::tlr
