// Per-tile storage precision for TLR factors.
//
// A tile's U/V bases can be stored as packed fp16 or bf16 planes (see
// la/half.hpp for the exact packing semantics) while all arithmetic
// accumulates in float32. The tag travels with the tile everywhere bytes
// are counted or moved: TlrMatrix -> StackedTlr -> MvmPlan arenas,
// and through the TLRA/TLRS archive rank tables so streaming and serve
// admission price the operator at its true packed size.
//
// The numeric values are the on-disk encoding of the archive precision
// tables (format version 2) — do not renumber.
#pragma once

#include <cstdint>

#include "tlrwse/la/half.hpp"

namespace tlrwse::tlr {

enum class StoragePrecision : std::uint8_t { kFp32 = 0, kFp16 = 1, kBf16 = 2 };

[[nodiscard]] constexpr double bytes_per_real(StoragePrecision p) {
  return p == StoragePrecision::kFp32 ? 4.0 : 2.0;
}

[[nodiscard]] constexpr const char* precision_name(StoragePrecision p) {
  switch (p) {
    case StoragePrecision::kFp32:
      return "fp32";
    case StoragePrecision::kFp16:
      return "fp16";
    case StoragePrecision::kBf16:
      return "bf16";
  }
  return "unknown";
}

[[nodiscard]] constexpr bool is_half(StoragePrecision p) {
  return p != StoragePrecision::kFp32;
}

/// The 16-bit packing of a half precision; only meaningful when is_half(p).
[[nodiscard]] constexpr la::HalfFormat half_format(StoragePrecision p) {
  return p == StoragePrecision::kBf16 ? la::HalfFormat::kBf16
                                      : la::HalfFormat::kFp16;
}

/// Validates an archive precision byte before casting it to the enum.
[[nodiscard]] constexpr bool valid_precision_tag(std::uint8_t tag) {
  return tag <= static_cast<std::uint8_t>(StoragePrecision::kBf16);
}

}  // namespace tlrwse::tlr
