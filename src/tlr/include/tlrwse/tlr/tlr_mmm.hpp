// TLR matrix-matrix multiplication (TLR-MMM) — the multi-shot extension
// the paper names as its next frontier (Sec. 8: "we want to consider
// seismic processing of multiple shots simultaneously, by recasting our
// TLR-MVM kernel into TLR matrix-matrix multiplication").
//
// Y = A * X with X (n x s), Y (m x s): processing s virtual sources at
// once. The fused dataflow is identical to tlr_mvm_fused with the vector
// stages widened to GEMM panels; arithmetic intensity rises by ~s on the
// V/U bases (each base element now feeds s fmacs), which is exactly why
// the paper calls MMM a re-exacerbation of the memory wall: the bases stop
// being the traffic bottleneck and the partial-Y panels take over.
#pragma once

#include "tlrwse/tlr/stacked.hpp"

namespace tlrwse::tlr {

/// Fused (communication-avoiding) TLR-MMM: Y = A X.
/// X is (cols x s) column-major, Y is (rows x s).
template <typename T>
void tlr_mmm_fused(const StackedTlr<T>& A, const la::Matrix<T>& X,
                   la::Matrix<T>& Y) {
  const TileGrid& g = A.grid();
  TLRWSE_REQUIRE(X.rows() == g.cols(), "X rows");
  TLRWSE_REQUIRE(Y.rows() == g.rows() && Y.cols() == X.cols(), "Y shape");
  Y.fill(T{});
  const index_t s = X.cols();

  la::Matrix<T> yv;  // V-batch panel of one tile column
  for (index_t j = 0; j < g.nt(); ++j) {
    const auto& vs = A.v_stack(j);
    if (vs.rows() == 0) continue;
    // yv = Vstack_j * X_j  (panel GEMM over the tile column's slice of X).
    yv = la::Matrix<T>(vs.rows(), s, T{});
    for (index_t c = 0; c < s; ++c) {
      la::gemv(vs,
               std::span<const T>(X.col(c) + g.col_offset(j),
                                  static_cast<std::size_t>(g.tile_cols(j))),
               std::span<T>(yv.col(c), static_cast<std::size_t>(vs.rows())));
    }
    // Y_i += U_ij * yv_ij for every tile in the column.
    for (index_t i = 0; i < g.mt(); ++i) {
      const index_t k = A.rank(i, j);
      if (k == 0) continue;
      const auto& us = A.u_stack(i);
      const index_t uoff = A.u_offset(i, j);
      const index_t voff = A.v_offset(i, j);
      for (index_t c = 0; c < s; ++c) {
        T* yc = Y.col(c) + g.row_offset(i);
        const T* seg = yv.col(c) + voff;
        for (index_t r = 0; r < k; ++r) {
          const T w = seg[r];
          if (w == T{}) continue;
          const T* ucol = us.col(uoff + r);
          for (index_t row = 0; row < g.tile_rows(i); ++row) {
            yc[row] += ucol[row] * w;
          }
        }
      }
    }
  }
}

/// Adjoint TLR-MMM: Y = A^H X, X (rows x s), Y (cols x s).
template <typename T>
void tlr_mmm_adjoint(const StackedTlr<T>& A, const la::Matrix<T>& X,
                     la::Matrix<T>& Y) {
  const TileGrid& g = A.grid();
  TLRWSE_REQUIRE(X.rows() == g.rows(), "X rows");
  TLRWSE_REQUIRE(Y.rows() == g.cols() && Y.cols() == X.cols(), "Y shape");
  Y.fill(T{});
  const index_t s = X.cols();

  la::Matrix<T> yu;
  for (index_t i = 0; i < g.mt(); ++i) {
    const auto& us = A.u_stack(i);
    if (us.cols() == 0) continue;
    yu = la::Matrix<T>(us.cols(), s, T{});
    for (index_t c = 0; c < s; ++c) {
      la::gemv_adjoint(
          us,
          std::span<const T>(X.col(c) + g.row_offset(i),
                             static_cast<std::size_t>(g.tile_rows(i))),
          std::span<T>(yu.col(c), static_cast<std::size_t>(us.cols())));
    }
    for (index_t j = 0; j < g.nt(); ++j) {
      const index_t k = A.rank(i, j);
      if (k == 0) continue;
      const auto& vs = A.v_stack(j);
      const index_t voff = A.v_offset(i, j);
      const index_t uoff = A.u_offset(i, j);
      for (index_t c = 0; c < s; ++c) {
        T* yc = Y.col(c) + g.col_offset(j);
        const T* seg = yu.col(c) + uoff;
        for (index_t col = 0; col < g.tile_cols(j); ++col) {
          const T* vcol = vs.col(col) + voff;
          T acc{};
          for (index_t r = 0; r < k; ++r) {
            acc += conj_if_complex(vcol[r]) * seg[r];
          }
          yc[col] += acc;
        }
      }
    }
  }
}

/// Memory-traffic model of TLR-MMM vs s independent TLR-MVMs (absolute
/// accounting, Sec. 6.6 rules): bases are read once per panel instead of
/// once per vector, but the partial-Y panels are re-read/written per base
/// column. Returns {mvm_bytes, mmm_bytes} for s right-hand sides.
struct MmmTraffic {
  double mvm_bytes = 0.0;  // s independent MVMs
  double mmm_bytes = 0.0;  // one panel MMM
  [[nodiscard]] double saving() const {
    return mmm_bytes > 0.0 ? mvm_bytes / mmm_bytes : 0.0;
  }
};

template <typename T>
[[nodiscard]] MmmTraffic tlr_mmm_traffic(const StackedTlr<T>& A, index_t s) {
  const TileGrid& g = A.grid();
  MmmTraffic t;
  double base_elems = 0.0;
  double y_elems = 0.0;  // per-vector fmac count (drives y read+write)
  for (index_t j = 0; j < g.nt(); ++j) {
    base_elems += static_cast<double>(A.v_stack(j).size());
  }
  for (index_t i = 0; i < g.mt(); ++i) {
    base_elems += static_cast<double>(A.u_stack(i).size());
  }
  y_elems = base_elems;  // one fmac (y read + y write) per base element
  const double es = static_cast<double>(sizeof(T));
  const double sd = static_cast<double>(s);
  // MVM x s: every vector reads all bases plus its own y traffic.
  t.mvm_bytes = sd * (base_elems * es + 2.0 * y_elems * es);
  // MMM: bases once, y-panel traffic still scales with s.
  t.mmm_bytes = base_elems * es + sd * 2.0 * y_elems * es;
  return t;
}

}  // namespace tlrwse::tlr
