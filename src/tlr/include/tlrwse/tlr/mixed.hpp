// Mixed-precision TLR storage (the extension of refs [23][24]: "tile
// low-rank compression, and mixed-precision computations").
//
// Tiles whose contribution to the operator norm is small can store their
// U/V bases in reduced precision without hurting the MDD solution. The
// policy here assigns a StoragePrecision per tile and rounds the factor
// values through the chosen format; downstream the tag is REAL storage:
// MvmPlan/SharedBasisMvmPlan pack tagged tiles as 16-bit planes in their
// arenas (widening fp32-accumulating kernels, see la/simd.hpp) and the
// TLRA/TLRS archives write 16-bit payloads. Because the values are
// pre-rounded through la/half.hpp — the same functions the packers use —
// packing is lossless and plan applies are bitwise identical to applying
// the rounded fp32 values.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "tlrwse/tlr/precision.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::tlr {

/// Rounds a float through IEEE binary16 (round-to-nearest-even), returning
/// the nearest representable value as float. Exactly widen(pack(v)) for
/// la/half.hpp's packing: NaN -> canonical quiet NaN, +-Inf -> +-Inf,
/// finite overflow saturates to +-65504, |v| < 2^-14 flushes to signed
/// zero, signed zero preserved.
[[nodiscard]] float round_to_fp16(float v);

/// Rounds a float through bfloat16 (8-bit exponent, round-to-nearest-even
/// on the 7-bit mantissa). NaN -> quiet NaN, +-Inf -> +-Inf, finite
/// overflow rounds to +-Inf, denormals and signed zero preserved.
[[nodiscard]] float round_to_bf16(float v);

[[nodiscard]] cf32 round_complex(cf32 v, StoragePrecision p);

/// Precision assignment policy: tiles are ranked by their Frobenius norm
/// relative to the largest tile of the matrix; the weakest tiles get BF16,
/// mid tiles FP16, the strongest keep FP32.
struct MixedPrecisionPolicy {
  double fp16_below = 0.25;  // tiles with relative norm < this use FP16
  double bf16_below = 0.05;  // ... < this use BF16 (coarser mantissa)
};

struct MixedTlrResult {
  TlrMatrix<cf32> matrix;                   // bases rounded through storage
  std::vector<StoragePrecision> precision;  // per tile (tile_index order)
  double stored_bytes = 0.0;                // at the narrow sizes
  double fp32_bytes = 0.0;                  // full-precision footprint
  index_t tiles_fp32 = 0;
  index_t tiles_fp16 = 0;
  index_t tiles_bf16 = 0;

  [[nodiscard]] double saving() const {
    return stored_bytes > 0.0 ? fp32_bytes / stored_bytes : 1.0;
  }
};

/// Applies the policy to a compressed matrix: quantizes each tile's bases
/// through the chosen storage format, tags the result's tiles with their
/// precision (TlrMatrix::precision), and accounts the storage bytes.
[[nodiscard]] MixedTlrResult quantize_tlr(const TlrMatrix<cf32>& src,
                                          const MixedPrecisionPolicy& policy);

}  // namespace tlrwse::tlr
