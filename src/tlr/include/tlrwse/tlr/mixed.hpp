// Mixed-precision TLR storage (the extension of refs [23][24]: "tile
// low-rank compression, and mixed-precision computations").
//
// Tiles whose contribution to the operator norm is small can store their
// U/V bases in reduced precision without hurting the MDD solution. Since
// the build targets FP32 hardware, FP16/BF16 storage is EMULATED: values
// are rounded through the narrow format back to float, while the byte
// accounting reflects the narrow storage size. This reproduces the
// accuracy/footprint trade-off without native half support.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::tlr {

enum class StoragePrecision { kFp32, kFp16, kBf16 };

[[nodiscard]] constexpr double bytes_per_real(StoragePrecision p) {
  return p == StoragePrecision::kFp32 ? 4.0 : 2.0;
}

/// Rounds a float through IEEE binary16 (round-to-nearest-even), returning
/// the nearest representable value as float. Overflow saturates to +-inf's
/// nearest finite half (65504), underflow flushes denormals to zero.
[[nodiscard]] float round_to_fp16(float v);

/// Rounds a float through bfloat16 (truncated 8-bit-exponent format with
/// round-to-nearest-even on the 7-bit mantissa).
[[nodiscard]] float round_to_bf16(float v);

[[nodiscard]] cf32 round_complex(cf32 v, StoragePrecision p);

/// Precision assignment policy: tiles are ranked by their Frobenius norm
/// relative to the largest tile of the matrix; the weakest tiles get BF16,
/// mid tiles FP16, the strongest keep FP32.
struct MixedPrecisionPolicy {
  double fp16_below = 0.25;  // tiles with relative norm < this use FP16
  double bf16_below = 0.05;  // ... < this use BF16 (coarser mantissa)
};

struct MixedTlrResult {
  TlrMatrix<cf32> matrix;                   // bases rounded through storage
  std::vector<StoragePrecision> precision;  // per tile (tile_index order)
  double stored_bytes = 0.0;                // at the narrow sizes
  double fp32_bytes = 0.0;                  // full-precision footprint
  index_t tiles_fp32 = 0;
  index_t tiles_fp16 = 0;
  index_t tiles_bf16 = 0;

  [[nodiscard]] double saving() const {
    return stored_bytes > 0.0 ? fp32_bytes / stored_bytes : 1.0;
  }
};

/// Applies the policy to a compressed matrix: quantizes each tile's bases
/// through the chosen storage format and accounts the storage bytes.
[[nodiscard]] MixedTlrResult quantize_tlr(const TlrMatrix<cf32>& src,
                                          const MixedPrecisionPolicy& policy);

}  // namespace tlrwse::tlr
