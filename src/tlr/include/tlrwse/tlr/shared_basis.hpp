// Shared-basis stacked TLR across a frequency band.
//
// The per-frequency TlrMatrix stores its own U/V factors for every one of
// the N frequency matrices, so operator-cache capacity and cold-start
// compression cost both scale linearly in N. Sushnikova, Ravasi & Keyes
// (arXiv 2404.01870) observe that neighbouring frequency matrices of this
// integral kernel share column/row spaces tile by tile: one basis fit per
// tile covers the whole band, and each frequency keeps only a small core.
//
// Representation, per tile (i, j) of a band of F frequencies:
//
//   A_f(i, j)  ~=  U_ij * C_f_ij * Vh_ij              f = 0 .. F-1
//
//   U_ij   : tile_rows x ku   shared column basis (orthonormal columns)
//   Vh_ij  : kv x tile_cols   shared row basis (orthonormal rows)
//   C_f_ij : ku x kv          per-frequency core
//
// The bases are fit by rank-revealing QR on the concatenated band tiles
// ([A_0 .. A_F-1] horizontally for U, vertically for V) at the band
// tolerance `acc` (relative Frobenius on the concatenation), so
// sum_f ||A_f - U C_f Vh||_F^2 <= acc^2 * sum_f ||A_f||_F^2 per direction.
//
// Graceful fallback for incoherent bands: every core is additionally
// factored per frequency (C_f ~= Cu * CvH at the same tolerance, rank r_f =
// the frequency's own numerical rank inside the shared bases) and stored in
// whichever form is smaller — r_f*(ku+kv) floats factored vs ku*kv dense.
// An incoherent band therefore degrades to per-frequency ranks with no
// accuracy loss; only the (bounded) basis storage is shared overhead.
//
// The MVM execution form lives in SharedBasisMvmPlan (shared_basis.cpp):
// the shared V/U stacks are laid out ONCE in a SIMD arena — identical in
// shape to MvmPlan's planes — and stay hot across the frequency loop, while
// the per-frequency cores replace the phase-2 shuffle with small
// block-diagonal GEMVs.
#pragma once

#include <span>
#include <vector>

#include "tlrwse/common/aligned.hpp"
#include "tlrwse/common/tsan.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/qr.hpp"
#include "tlrwse/la/simd.hpp"
#include "tlrwse/la/svd.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::tlr {

struct SharedBasisConfig {
  index_t nb = 70;      // tile size (dense fit path; from_tlr reuses the grid)
  double acc = 1e-4;    // band tolerance, relative Frobenius per concatenation
  index_t max_rank = 0; // cap on the shared basis ranks (0 = uncapped)
};

/// Scratch for the scalar apply path; grown on first use, reused
/// allocation-free afterwards. Not safe for concurrent calls.
template <typename T>
struct SharedBasisWorkspace {
  std::vector<T> tv;  // Vh_ij * x_j        (kv)
  std::vector<T> tc;  // factored-core mid  (r)
  std::vector<T> tu;  // C_f_ij * tv        (ku)
};

template <typename T>
class SharedBasisStackedTlr {
 public:
  /// One per-frequency core: dense ku x kv, or factored Cu (ku x r) times
  /// CvH (r x kv) when that is smaller. `rank` is the frequency's numerical
  /// rank at the band tolerance either way.
  struct Core {
    la::Matrix<T> dense;
    la::LowRankFactors<T> lr;
    bool factored = false;
    index_t rank = 0;
    [[nodiscard]] double bytes() const {
      const auto n = factored ? lr.U.size() + lr.Vh.size() : dense.size();
      return static_cast<double>(n) * sizeof(T);
    }
  };

  SharedBasisStackedTlr() = default;

  /// Fits shared bases over a band of dense frequency matrices (all must
  /// share dimensions). Tiles are processed in parallel; the fit is
  /// deterministic (RRQR + Jacobi SVD, no randomization).
  [[nodiscard]] static SharedBasisStackedTlr fit(
      std::span<const la::Matrix<T>> band, const SharedBasisConfig& cfg) {
    TLRWSE_REQUIRE(!band.empty(), "shared basis: empty band");
    const TileGrid grid(band[0].rows(), band[0].cols(), cfg.nb);
    for (const auto& a : band) {
      TLRWSE_REQUIRE(a.rows() == grid.rows() && a.cols() == grid.cols(),
                     "shared basis: band dimensions mismatch");
    }
    return fit_common(grid, cfg,
                      [&](index_t f, index_t i, index_t j) {
                        const auto& g = grid;
                        return band[static_cast<std::size_t>(f)].block(
                            g.row_offset(i), g.col_offset(j), g.tile_rows(i),
                            g.tile_cols(j));
                      },
                      static_cast<index_t>(band.size()));
  }

  /// Conversion path from per-frequency TLR: the band's tiles are
  /// re-densified tile by tile (nb x nb blocks, never the full matrix) and
  /// refit. All matrices must share one grid.
  [[nodiscard]] static SharedBasisStackedTlr from_tlr(
      std::span<const TlrMatrix<T>> band, const SharedBasisConfig& cfg) {
    TLRWSE_REQUIRE(!band.empty(), "shared basis: empty band");
    const TileGrid grid = band[0].grid();
    for (const auto& a : band) {
      TLRWSE_REQUIRE(a.grid().rows() == grid.rows() &&
                         a.grid().cols() == grid.cols() &&
                         a.grid().nb() == grid.nb(),
                     "shared basis: band grids mismatch");
    }
    return fit_common(grid, cfg,
                      [&](index_t f, index_t i, index_t j) {
                        return la::reconstruct(
                            band[static_cast<std::size_t>(f)].tile(i, j));
                      },
                      static_cast<index_t>(band.size()));
  }

  /// Reassembles a band from already-built parts (deserialization). `u`,
  /// `vh` are per-tile (column-of-tiles-major), `cores` is [frequency][tile];
  /// the factors are adopted bitwise, only the offset tables are rebuilt.
  [[nodiscard]] static SharedBasisStackedTlr from_parts(
      TileGrid grid, double acc, std::vector<la::Matrix<T>> u,
      std::vector<la::Matrix<T>> vh, std::vector<std::vector<Core>> cores) {
    const auto ntiles = static_cast<std::size_t>(grid.num_tiles());
    TLRWSE_REQUIRE(u.size() == ntiles && vh.size() == ntiles,
                   "shared basis from_parts: factor count mismatch");
    for (const auto& fc : cores) {
      TLRWSE_REQUIRE(fc.size() == ntiles,
                     "shared basis from_parts: core count mismatch");
    }
    SharedBasisStackedTlr out;
    out.grid_ = grid;
    out.num_freqs_ = static_cast<index_t>(cores.size());
    out.acc_ = acc;
    out.u_ = std::move(u);
    out.vh_ = std::move(vh);
    out.cores_ = std::move(cores);
    out.validate_parts();
    out.finalize_offsets();
    return out;
  }

  [[nodiscard]] const TileGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] index_t num_freqs() const noexcept { return num_freqs_; }
  [[nodiscard]] double acc() const noexcept { return acc_; }

  /// Uniform storage precision of the band: bases AND cores share one tag
  /// (they are streamed together every apply, so mixing per-tile buys
  /// little here). kFp32 is the default and the historical behaviour.
  [[nodiscard]] StoragePrecision precision() const noexcept {
    return precision_;
  }
  /// Rounds every stored value (bases, dense cores, factored core
  /// factors) through the format and tags the band; SharedBasisMvmPlan
  /// then packs its arenas as 16-bit planes and the TLRS archive writes
  /// 16-bit payloads. Rounding is idempotent, so re-tagging
  /// already-rounded data (e.g. after an archive reload) is lossless.
  void set_precision(StoragePrecision p) {
    precision_ = p;
    if (!is_half(p)) return;
    const la::HalfFormat fmt = half_format(p);
    auto round_mat = [&](la::Matrix<T>& m) {
      for (index_t c = 0; c < m.cols(); ++c) {
        T* col = m.col(c);
        for (index_t r = 0; r < m.rows(); ++r) {
          col[r] = T(
              la::half_bits_to_f32(la::f32_to_half_bits(col[r].real(), fmt),
                                   fmt),
              la::half_bits_to_f32(la::f32_to_half_bits(col[r].imag(), fmt),
                                   fmt));
        }
      }
    };
    for (auto& m : u_) round_mat(m);
    for (auto& m : vh_) round_mat(m);
    for (auto& fc : cores_) {
      for (Core& c : fc) {
        if (c.factored) {
          round_mat(c.lr.U);
          round_mat(c.lr.Vh);
        } else {
          round_mat(c.dense);
        }
      }
    }
  }
  [[nodiscard]] index_t rows() const noexcept { return grid_.rows(); }
  [[nodiscard]] index_t cols() const noexcept { return grid_.cols(); }

  [[nodiscard]] const la::Matrix<T>& basis_u(index_t i, index_t j) const {
    return u_[tix(i, j)];
  }
  [[nodiscard]] const la::Matrix<T>& basis_vh(index_t i, index_t j) const {
    return vh_[tix(i, j)];
  }
  /// Shared column-basis rank ku of tile (i, j).
  [[nodiscard]] index_t u_rank(index_t i, index_t j) const {
    return u_[tix(i, j)].cols();
  }
  /// Shared row-basis rank kv of tile (i, j).
  [[nodiscard]] index_t v_rank(index_t i, index_t j) const {
    return vh_[tix(i, j)].rows();
  }
  [[nodiscard]] const Core& core(index_t f, index_t i, index_t j) const {
    return cores_[static_cast<std::size_t>(f)][tix(i, j)];
  }
  /// Numerical rank of frequency f inside tile (i, j)'s shared bases — the
  /// rank a per-frequency TLR compression of this tile would carry.
  [[nodiscard]] index_t core_rank(index_t f, index_t i, index_t j) const {
    return core(f, i, j).rank;
  }

  /// Rank-sum layout (mirrors StackedTlr): per tile column j, the Vh bases
  /// stack vertically; per tile row i, the U bases stack horizontally.
  [[nodiscard]] index_t v_col_rank_sum(index_t j) const {
    return col_vranks_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] index_t u_row_rank_sum(index_t i) const {
    return row_uranks_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] index_t v_offset(index_t i, index_t j) const {
    return v_offset_[tix(i, j)];
  }
  [[nodiscard]] index_t u_offset(index_t i, index_t j) const {
    return u_offset_[tix(i, j)];
  }
  /// Largest factored-core rank in the band (workspace sizing).
  [[nodiscard]] index_t max_core_rank() const noexcept { return max_core_r_; }

  /// y = A_f x (scalar reference path; the SIMD form is SharedBasisMvmPlan).
  void apply(index_t f, std::span<const T> x, std::span<T> y,
             SharedBasisWorkspace<T>& ws) const {
    check_freq(f);
    TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == grid_.cols(),
                   "shared basis apply: x size");
    TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == grid_.rows(),
                   "shared basis apply: y size");
    std::fill(y.begin(), y.end(), T{});
    for (index_t j = 0; j < grid_.nt(); ++j) {
      const auto xj = x.subspan(static_cast<std::size_t>(grid_.col_offset(j)),
                                static_cast<std::size_t>(grid_.tile_cols(j)));
      for (index_t i = 0; i < grid_.mt(); ++i) {
        const la::Matrix<T>& u = u_[tix(i, j)];
        const la::Matrix<T>& vh = vh_[tix(i, j)];
        if (u.cols() == 0 || vh.rows() == 0) continue;
        grow(ws.tv, vh.rows());
        std::span<T> tv(ws.tv.data(), static_cast<std::size_t>(vh.rows()));
        la::gemv(vh, xj, tv);
        std::span<const T> tu = core_times(f, i, j, tv, ws);
        auto yi = y.subspan(static_cast<std::size_t>(grid_.row_offset(i)),
                            static_cast<std::size_t>(grid_.tile_rows(i)));
        la::gemv(u, tu, yi, T{1}, T{1});
      }
    }
  }

  /// y = A_f^H x.
  void apply_adjoint(index_t f, std::span<const T> x, std::span<T> y,
                     SharedBasisWorkspace<T>& ws) const {
    check_freq(f);
    TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == grid_.rows(),
                   "shared basis adjoint: x size");
    TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == grid_.cols(),
                   "shared basis adjoint: y size");
    std::fill(y.begin(), y.end(), T{});
    for (index_t i = 0; i < grid_.mt(); ++i) {
      const auto xi = x.subspan(static_cast<std::size_t>(grid_.row_offset(i)),
                                static_cast<std::size_t>(grid_.tile_rows(i)));
      for (index_t j = 0; j < grid_.nt(); ++j) {
        const la::Matrix<T>& u = u_[tix(i, j)];
        const la::Matrix<T>& vh = vh_[tix(i, j)];
        if (u.cols() == 0 || vh.rows() == 0) continue;
        grow(ws.tu, u.cols());
        std::span<T> tu(ws.tu.data(), static_cast<std::size_t>(u.cols()));
        la::gemv_adjoint(u, xi, tu);
        std::span<const T> tv = core_adjoint_times(f, i, j, tu, ws);
        auto yj = y.subspan(static_cast<std::size_t>(grid_.col_offset(j)),
                            static_cast<std::size_t>(grid_.tile_cols(j)));
        la::gemv_adjoint(vh, tv, yj, T{1}, T{1});
      }
    }
  }

  /// Allocating conveniences (tests and small examples).
  [[nodiscard]] std::vector<T> apply(index_t f, std::span<const T> x) const {
    SharedBasisWorkspace<T> ws;
    std::vector<T> y(static_cast<std::size_t>(grid_.rows()));
    apply(f, x, std::span<T>(y), ws);
    return y;
  }
  [[nodiscard]] std::vector<T> apply_adjoint(index_t f,
                                             std::span<const T> x) const {
    SharedBasisWorkspace<T> ws;
    std::vector<T> y(static_cast<std::size_t>(grid_.cols()));
    apply_adjoint(f, x, std::span<T>(y), ws);
    return y;
  }

  /// Dense reconstruction of frequency f (accuracy checks only).
  [[nodiscard]] la::Matrix<T> reconstruct(index_t f) const {
    check_freq(f);
    la::Matrix<T> out(grid_.rows(), grid_.cols(), T{});
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        if (u_rank(i, j) == 0 || v_rank(i, j) == 0) continue;
        const la::Matrix<T> c = core_dense(f, i, j);
        out.set_block(grid_.row_offset(i), grid_.col_offset(j),
                      la::matmul(la::matmul(u_[tix(i, j)], c), vh_[tix(i, j)]));
      }
    }
    return out;
  }

  /// Extracts frequency f as a standalone per-frequency TlrMatrix (the
  /// factors are the shared bases contracted with the core — rank is
  /// min(ku, kv) for dense cores, r_f for factored ones).
  [[nodiscard]] TlrMatrix<T> frequency_tlr(index_t f) const {
    check_freq(f);
    std::vector<la::LowRankFactors<T>> tiles(
        static_cast<std::size_t>(grid_.num_tiles()));
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        la::LowRankFactors<T>& t = tiles[tix(i, j)];
        const la::Matrix<T>& u = u_[tix(i, j)];
        const la::Matrix<T>& vh = vh_[tix(i, j)];
        if (u.cols() == 0 || vh.rows() == 0) {
          t.U = la::Matrix<T>(grid_.tile_rows(i), 0);
          t.Vh = la::Matrix<T>(0, grid_.tile_cols(j));
          continue;
        }
        const Core& c = core(f, i, j);
        if (c.factored) {
          t.U = la::matmul(u, c.lr.U);
          t.Vh = la::matmul(c.lr.Vh, vh);
        } else if (u.cols() <= vh.rows()) {
          t.U = u;
          t.Vh = la::matmul(c.dense, vh);
        } else {
          t.U = la::matmul(u, c.dense);
          t.Vh = vh;
        }
      }
    }
    return TlrMatrix<T>(grid_, std::move(tiles));
  }

  /// Bytes of the shared representation: bases once + cores per frequency,
  /// at the band's storage precision.
  [[nodiscard]] double shared_bytes() const {
    return fp32_bytes() * (bytes_per_real(precision_) / 4.0);
  }
  /// The same footprint stored uniformly fp32 (equals shared_bytes() for
  /// fp32 bands); serve's cache gauges report both.
  [[nodiscard]] double fp32_bytes() const {
    double total = 0.0;
    for (const auto& m : u_) total += static_cast<double>(m.size()) * sizeof(T);
    for (const auto& m : vh_) {
      total += static_cast<double>(m.size()) * sizeof(T);
    }
    for (const auto& fc : cores_) {
      for (const auto& c : fc) total += c.bytes();
    }
    return total;
  }
  /// Equivalent per-frequency TLR footprint at the same tolerance (and the
  /// same storage precision), derived from the per-frequency core ranks —
  /// the storage the band would need without basis sharing.
  [[nodiscard]] double per_frequency_bytes() const {
    double total = 0.0;
    for (index_t f = 0; f < num_freqs_; ++f) {
      for (index_t j = 0; j < grid_.nt(); ++j) {
        for (index_t i = 0; i < grid_.mt(); ++i) {
          total += static_cast<double>(core_rank(f, i, j)) *
                   static_cast<double>(grid_.tile_rows(i) +
                                       grid_.tile_cols(j)) *
                   sizeof(T);
        }
      }
    }
    return total * (bytes_per_real(precision_) / 4.0);
  }
  [[nodiscard]] double dense_bytes() const {
    return static_cast<double>(num_freqs_) *
           static_cast<double>(grid_.rows()) *
           static_cast<double>(grid_.cols()) * sizeof(T);
  }
  /// per_frequency_bytes / shared_bytes: > 1 when sharing wins.
  [[nodiscard]] double storage_ratio() const {
    const double s = shared_bytes();
    return s > 0.0 ? per_frequency_bytes() / s : 0.0;
  }

  /// Dense form of the core (factored cores re-expanded; checks only).
  [[nodiscard]] la::Matrix<T> core_dense(index_t f, index_t i,
                                         index_t j) const {
    const Core& c = core(f, i, j);
    if (!c.factored) return c.dense;
    return la::matmul(c.lr.U, c.lr.Vh);
  }

 private:
  template <typename TileFn>
  static SharedBasisStackedTlr fit_common(const TileGrid& grid,
                                          const SharedBasisConfig& cfg,
                                          TileFn&& tile_of, index_t nf) {
    TLRWSE_TRACE_SPAN("tlr.shared_basis_fit", "tlr");
    obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
    obs::Counter& tiles_fit = reg.counter("tlr.shared_basis_tiles");
    obs::Histogram& shared_rank_hist = reg.histogram("tlr.shared_basis_rank");

    SharedBasisStackedTlr out;
    out.grid_ = grid;
    out.num_freqs_ = nf;
    out.acc_ = cfg.acc;
    const std::size_t ntiles = static_cast<std::size_t>(grid.num_tiles());
    out.u_.resize(ntiles);
    out.vh_.resize(ntiles);
    out.cores_.assign(static_cast<std::size_t>(nf),
                      std::vector<Core>(ntiles));
    TLRWSE_TSAN_RELEASE(&out);
#pragma omp parallel
    {
      TLRWSE_TSAN_ACQUIRE(&out);
#pragma omp for collapse(2) schedule(static)
      for (index_t j = 0; j < grid.nt(); ++j) {
        for (index_t i = 0; i < grid.mt(); ++i) {
          TLRWSE_TRACE_SPAN_DETAIL("tlr.shared_basis_fit_tile", "tlr");
          std::vector<la::Matrix<T>> blocks;
          blocks.reserve(static_cast<std::size_t>(nf));
          for (index_t f = 0; f < nf; ++f) blocks.push_back(tile_of(f, i, j));
          out.fit_tile(i, j, blocks, cfg);
          shared_rank_hist.record(static_cast<double>(out.u_rank(i, j)));
          tiles_fit.add();
        }
      }
      TLRWSE_TSAN_RELEASE(&out);
    }
    TLRWSE_TSAN_ACQUIRE(&out);
    out.finalize_offsets();
    return out;
  }

  /// Fits one tile: RRQR on the horizontal/vertical band concatenations
  /// for the bases, then per-frequency cores with the factored fallback.
  void fit_tile(index_t i, index_t j, const std::vector<la::Matrix<T>>& blocks,
                const SharedBasisConfig& cfg) {
    using R = real_of_t<T>;
    const index_t nf = static_cast<index_t>(blocks.size());
    const index_t mt = grid_.tile_rows(i);
    const index_t nt = grid_.tile_cols(j);
    const R acc = static_cast<R>(cfg.acc);

    // Shared column basis from [A_0 | A_1 | ... | A_{F-1}].
    la::Matrix<T> ch(mt, nf * nt);
    for (index_t f = 0; f < nf; ++f) {
      ch.set_block(0, f * nt, blocks[static_cast<std::size_t>(f)]);
    }
    auto ur = la::rrqr_truncated(ch, acc, cfg.max_rank);

    // Shared row basis from the adjoint of the vertical concatenation
    // [A_0; ...; A_{F-1}] — i.e. the column space of [A_0^H | ... ].
    la::Matrix<T> cv(nt, nf * mt);
    for (index_t f = 0; f < nf; ++f) {
      cv.set_block(0, f * mt, blocks[static_cast<std::size_t>(f)].adjoint());
    }
    auto vr = la::rrqr_truncated(cv, acc, cfg.max_rank);

    const std::size_t t = tix(i, j);
    if (ur.rank == 0 || vr.rank == 0) {
      // A band below tolerance in either direction contributes nothing.
      u_[t] = la::Matrix<T>(mt, 0);
      vh_[t] = la::Matrix<T>(0, nt);
      for (index_t f = 0; f < nf; ++f) {
        Core& c = cores_[static_cast<std::size_t>(f)][t];
        c.dense = la::Matrix<T>(0, 0);
        c.rank = 0;
      }
      return;
    }

    u_[t] = std::move(ur.U);                  // mt x ku, orthonormal columns
    vh_[t] = vr.U.adjoint();                  // kv x nt, orthonormal rows
    const la::Matrix<T>& q = vr.U;            // nt x kv

    for (index_t f = 0; f < nf; ++f) {
      Core& c = cores_[static_cast<std::size_t>(f)][t];
      // C_f = U^H A_f Q (ku x kv): the frequency's coordinates in the
      // shared bases.
      c.dense = la::matmul(la::matmul(u_[t].adjoint(),
                                      blocks[static_cast<std::size_t>(f)]),
                           q);
      // Per-frequency factoring of the core: exposes the frequency's own
      // numerical rank and is the storage fallback for incoherent bands.
      la::LowRankFactors<T> lr = la::compress_svd(c.dense, acc);
      c.rank = lr.rank();
      const index_t ku = c.dense.rows();
      const index_t kv = c.dense.cols();
      // A rank-0 core (this frequency's tile is below tolerance inside an
      // otherwise nonzero band — e.g. a muted slice) stays DENSE: ku x kv
      // explicit zeros keep every execution path a plain GEMV. Without the
      // rank > 0 guard, 0*(ku+kv) < ku*kv would pick the empty factored
      // form.
      if (c.rank > 0 && c.rank * (ku + kv) < ku * kv) {
        c.lr = std::move(lr);
        c.dense = la::Matrix<T>();
        c.factored = true;
      }
    }
  }

  /// Enforces on adopted parts (deserialization, hand-built bands) the
  /// structural invariants fit_tile guarantees: basis dimensions match the
  /// grid, zero ranks come in pairs per tile (ku > 0 iff kv > 0 — the
  /// plan's no-zero-fill phase-2 sweep relies on it), and every core's
  /// shape is consistent with its tile's basis ranks (ku x kv dense,
  /// (ku x r)/(r x kv) factored) so plan deposits cannot overrun the core
  /// arena on a corrupt archive.
  void validate_parts() const {
    for (index_t j = 0; j < grid_.nt(); ++j) {
      for (index_t i = 0; i < grid_.mt(); ++i) {
        const std::size_t t = tix(i, j);
        const index_t ku = u_[t].cols();
        const index_t kv = vh_[t].rows();
        TLRWSE_REQUIRE(u_[t].rows() == grid_.tile_rows(i) &&
                           vh_[t].cols() == grid_.tile_cols(j),
                       "shared basis from_parts: basis dims mismatch grid");
        TLRWSE_REQUIRE((ku == 0) == (kv == 0),
                       "shared basis from_parts: unpaired zero basis rank");
        for (const auto& fc : cores_) {
          const Core& c = fc[t];
          TLRWSE_REQUIRE(c.rank >= 0 && c.rank <= std::min(ku, kv),
                         "shared basis from_parts: core rank out of range");
          if (c.factored) {
            TLRWSE_REQUIRE(c.lr.U.rows() == ku && c.lr.Vh.cols() == kv &&
                               c.lr.U.cols() == c.lr.Vh.rows() &&
                               c.lr.U.cols() == c.rank,
                           "shared basis from_parts: factored core dims");
          } else {
            TLRWSE_REQUIRE(c.dense.rows() == ku && c.dense.cols() == kv,
                           "shared basis from_parts: dense core dims");
          }
        }
      }
    }
  }

  void finalize_offsets() {
    const index_t mt = grid_.mt();
    const index_t nt = grid_.nt();
    v_offset_.assign(static_cast<std::size_t>(mt * nt), 0);
    u_offset_.assign(static_cast<std::size_t>(mt * nt), 0);
    col_vranks_.assign(static_cast<std::size_t>(nt), 0);
    row_uranks_.assign(static_cast<std::size_t>(mt), 0);
    for (index_t j = 0; j < nt; ++j) {
      index_t total = 0;
      for (index_t i = 0; i < mt; ++i) {
        v_offset_[tix(i, j)] = total;
        total += v_rank(i, j);
      }
      col_vranks_[static_cast<std::size_t>(j)] = total;
    }
    for (index_t i = 0; i < mt; ++i) {
      index_t total = 0;
      for (index_t j = 0; j < nt; ++j) {
        u_offset_[tix(i, j)] = total;
        total += u_rank(i, j);
      }
      row_uranks_[static_cast<std::size_t>(i)] = total;
    }
    max_core_r_ = 0;
    for (const auto& fc : cores_) {
      for (const auto& c : fc) {
        if (c.factored) max_core_r_ = std::max(max_core_r_, c.lr.rank());
      }
    }
  }

  /// tu = C_f_ij * tv (through the factored form when stored that way).
  [[nodiscard]] std::span<const T> core_times(index_t f, index_t i, index_t j,
                                              std::span<const T> tv,
                                              SharedBasisWorkspace<T>& ws) const {
    const Core& c = core(f, i, j);
    if (!c.factored) {
      grow(ws.tu, c.dense.rows());
      std::span<T> tu(ws.tu.data(), static_cast<std::size_t>(c.dense.rows()));
      la::gemv(c.dense, tv, tu);
      return tu;
    }
    grow(ws.tc, c.lr.Vh.rows());
    std::span<T> tc(ws.tc.data(), static_cast<std::size_t>(c.lr.Vh.rows()));
    la::gemv(c.lr.Vh, tv, tc);
    grow(ws.tu, c.lr.U.rows());
    std::span<T> tu(ws.tu.data(), static_cast<std::size_t>(c.lr.U.rows()));
    la::gemv(c.lr.U, std::span<const T>(tc.data(), tc.size()), tu);
    return tu;
  }

  /// tv = C_f_ij^H * tu.
  [[nodiscard]] std::span<const T> core_adjoint_times(
      index_t f, index_t i, index_t j, std::span<const T> tu,
      SharedBasisWorkspace<T>& ws) const {
    const Core& c = core(f, i, j);
    if (!c.factored) {
      grow(ws.tv, c.dense.cols());
      std::span<T> tv(ws.tv.data(), static_cast<std::size_t>(c.dense.cols()));
      la::gemv_adjoint(c.dense, tu, tv);
      return tv;
    }
    grow(ws.tc, c.lr.U.cols());
    std::span<T> tc(ws.tc.data(), static_cast<std::size_t>(c.lr.U.cols()));
    la::gemv_adjoint(c.lr.U, tu, tc);
    grow(ws.tv, c.lr.Vh.cols());
    std::span<T> tv(ws.tv.data(), static_cast<std::size_t>(c.lr.Vh.cols()));
    la::gemv_adjoint(c.lr.Vh, std::span<const T>(tc.data(), tc.size()), tv);
    return tv;
  }

  static void grow(std::vector<T>& buf, index_t n) {
    if (static_cast<index_t>(buf.size()) < n) {
      buf.resize(static_cast<std::size_t>(n));
    }
  }
  [[nodiscard]] std::size_t tix(index_t i, index_t j) const {
    return static_cast<std::size_t>(grid_.tile_index(i, j));
  }
  void check_freq(index_t f) const {
    TLRWSE_REQUIRE(f >= 0 && f < num_freqs_,
                   "shared basis: frequency index out of range");
  }

  TileGrid grid_;
  index_t num_freqs_ = 0;
  double acc_ = 0.0;
  StoragePrecision precision_ = StoragePrecision::kFp32;
  index_t max_core_r_ = 0;
  std::vector<la::Matrix<T>> u_;            // per tile, mt x ku
  std::vector<la::Matrix<T>> vh_;           // per tile, kv x nt
  std::vector<std::vector<Core>> cores_;    // [frequency][tile]
  std::vector<index_t> v_offset_;           // row offset in the Vh col-stack
  std::vector<index_t> u_offset_;           // col offset in the U row-stack
  std::vector<index_t> col_vranks_;         // sum_i kv per tile column
  std::vector<index_t> row_uranks_;         // sum_j ku per tile row
};

class SharedBasisMvmPlan;
struct PlanWorkspace;

/// Precompiled SIMD execution form of a shared-basis band (cf32): the
/// shared V/U stacks live in ONE split-complex arena laid out exactly like
/// MvmPlan's planes — built once, reused by every frequency of the band —
/// and each frequency owns a small program of per-tile core GEMVs that
/// replaces MvmPlan's phase-2 shuffle. Declared in shared_basis_plan.hpp
/// (included below) to keep this header's template code standalone.
}  // namespace tlrwse::tlr

#include "tlrwse/tlr/shared_basis_plan.hpp"
