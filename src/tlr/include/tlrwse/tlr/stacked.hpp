// Stacked memory layouts for TLR-MVM.
//
// Two layouts from the paper:
//  * The x86/GPU layout (Fig. 4): per tile COLUMN, the V^H bases of all
//    tiles in the column are stacked vertically (rows = sum of ranks); per
//    tile ROW, the U bases are stacked horizontally (cols = sum of ranks).
//    MVM then runs as V-batch (Fig. 5) -> shuffle (Fig. 6) -> U-batch
//    (Fig. 7).
//  * The Cerebras communication-avoiding layout (Fig. 9): U bases are
//    stored per tile COLUMN (side by side, reshaped), so both batches of a
//    tile column execute locally and the cross-fabric shuffle disappears;
//    the cost is that each tile column accumulates its own partial y.
//
// Both layouts here share the same underlying stacks: a per-column V stack,
// plus either per-row U stacks (3-phase) or per-column U groups (fused).
#pragma once

#include <vector>

#include "tlrwse/la/blas.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::tlr {

/// Precomputed stacks for a fixed TLR matrix, reusable across many MVMs
/// (the MDD solver applies the same frequency matrix every LSQR iteration).
template <typename T>
class StackedTlr {
 public:
  explicit StackedTlr(const TlrMatrix<T>& A)
      : grid_(A.grid()), prec_(A.precision_tags()) {
    const index_t mt = grid_.mt();
    const index_t nt = grid_.nt();

    // Per tile column j: vertical stack of Vh_ij (rank_ij x tile_cols(j)).
    v_stack_.resize(static_cast<std::size_t>(nt));
    v_offset_.assign(static_cast<std::size_t>(mt * nt), 0);
    col_ranks_.assign(static_cast<std::size_t>(nt), 0);
    for (index_t j = 0; j < nt; ++j) {
      index_t total = 0;
      for (index_t i = 0; i < mt; ++i) {
        v_offset_[static_cast<std::size_t>(grid_.tile_index(i, j))] = total;
        total += A.rank(i, j);
      }
      col_ranks_[static_cast<std::size_t>(j)] = total;
      la::Matrix<T>& stack = v_stack_[static_cast<std::size_t>(j)];
      stack = la::Matrix<T>(total, grid_.tile_cols(j));
      for (index_t i = 0; i < mt; ++i) {
        stack.set_block(v_offset_[static_cast<std::size_t>(grid_.tile_index(i, j))],
                        0, A.tile(i, j).Vh);
      }
    }

    // Per tile row i: horizontal stack of U_ij (tile_rows(i) x rank_ij).
    u_stack_.resize(static_cast<std::size_t>(mt));
    u_offset_.assign(static_cast<std::size_t>(mt * nt), 0);
    row_ranks_.assign(static_cast<std::size_t>(mt), 0);
    for (index_t i = 0; i < mt; ++i) {
      index_t total = 0;
      for (index_t j = 0; j < nt; ++j) {
        u_offset_[static_cast<std::size_t>(grid_.tile_index(i, j))] = total;
        total += A.rank(i, j);
      }
      row_ranks_[static_cast<std::size_t>(i)] = total;
      la::Matrix<T>& stack = u_stack_[static_cast<std::size_t>(i)];
      stack = la::Matrix<T>(grid_.tile_rows(i), total);
      for (index_t j = 0; j < nt; ++j) {
        stack.set_block(0, u_offset_[static_cast<std::size_t>(grid_.tile_index(i, j))],
                        A.tile(i, j).U);
      }
    }
  }

  [[nodiscard]] const TileGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const la::Matrix<T>& v_stack(index_t j) const {
    return v_stack_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] const la::Matrix<T>& u_stack(index_t i) const {
    return u_stack_[static_cast<std::size_t>(i)];
  }
  /// Row offset of tile (i, j) inside v_stack(j).
  [[nodiscard]] index_t v_offset(index_t i, index_t j) const {
    return v_offset_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }
  /// Column offset of tile (i, j) inside u_stack(i).
  [[nodiscard]] index_t u_offset(index_t i, index_t j) const {
    return u_offset_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }
  [[nodiscard]] index_t col_rank_sum(index_t j) const {
    return col_ranks_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] index_t row_rank_sum(index_t i) const {
    return row_ranks_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] index_t rank(index_t i, index_t j) const {
    const index_t v0 = v_offset(i, j);
    const index_t v1 = (i + 1 < grid_.mt()) ? v_offset(i + 1, j)
                                            : col_rank_sum(j);
    return v1 - v0;
  }

  /// Storage precision of tile (i, j), inherited from the source matrix's
  /// tags; MvmPlan packs the corresponding stack slices accordingly.
  [[nodiscard]] StoragePrecision precision(index_t i, index_t j) const {
    if (prec_.empty()) return StoragePrecision::kFp32;
    return prec_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }
  [[nodiscard]] bool has_half_tiles() const {
    for (const StoragePrecision p : prec_) {
      if (is_half(p)) return true;
    }
    return false;
  }

 private:
  TileGrid grid_;
  std::vector<la::Matrix<T>> v_stack_;   // nt stacks, (sum_i k_ij) x nb_j
  std::vector<la::Matrix<T>> u_stack_;   // mt stacks, mb_i x (sum_j k_ij)
  std::vector<index_t> v_offset_;        // per tile, row offset in v_stack
  std::vector<index_t> u_offset_;        // per tile, col offset in u_stack
  std::vector<index_t> col_ranks_;
  std::vector<index_t> row_ranks_;
  std::vector<StoragePrecision> prec_;   // per tile; empty = uniform fp32
};

}  // namespace tlrwse::tlr
