// Complex MVM as four real MVMs (paper Sec. 6.6).
//
// Batched-MVM support for complex datatypes is missing from vendor
// libraries (and from the Cerebras SDK's fmac path), so the paper splits
// every complex matrix into real and imaginary parts:
//   y = A x,  A = Ar + i Ai,  x = xr + i xi
//   yr = Ar xr - Ai xi,   yi = Ar xi + Ai xr
// With the two bases (V then U) of TLR-MVM this yields EIGHT independent
// real batched MVMs — the unit of work distributed over PEs by strong
// scaling strategy 2 (Sec. 6.7).
#pragma once

#include <span>
#include <vector>

#include "tlrwse/tlr/tlr_mvm.hpp"

namespace tlrwse::tlr {

/// Real/imaginary split of the stacked bases of a complex TLR matrix.
/// Stack shapes and tile offsets are identical to the source StackedTlr;
/// only the element type changes from complex<R> to R.
template <typename R>
class RealSplitStacks {
 public:
  explicit RealSplitStacks(const StackedTlr<std::complex<R>>& A)
      : grid_(A.grid()) {
    const index_t mt = grid_.mt();
    const index_t nt = grid_.nt();
    vr_.reserve(static_cast<std::size_t>(nt));
    vi_.reserve(static_cast<std::size_t>(nt));
    for (index_t j = 0; j < nt; ++j) {
      split(A.v_stack(j), vr_, vi_);
    }
    ur_.reserve(static_cast<std::size_t>(mt));
    ui_.reserve(static_cast<std::size_t>(mt));
    for (index_t i = 0; i < mt; ++i) {
      split(A.u_stack(i), ur_, ui_);
    }
    // Copy offset maps for the fused dataflow.
    v_offset_.resize(static_cast<std::size_t>(mt * nt));
    u_offset_.resize(static_cast<std::size_t>(mt * nt));
    ranks_.resize(static_cast<std::size_t>(mt * nt));
    for (index_t j = 0; j < nt; ++j) {
      for (index_t i = 0; i < mt; ++i) {
        const auto idx = static_cast<std::size_t>(grid_.tile_index(i, j));
        v_offset_[idx] = A.v_offset(i, j);
        u_offset_[idx] = A.u_offset(i, j);
        ranks_[idx] = A.rank(i, j);
      }
    }
  }

  [[nodiscard]] const TileGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const la::Matrix<R>& vr(index_t j) const {
    return vr_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] const la::Matrix<R>& vi(index_t j) const {
    return vi_[static_cast<std::size_t>(j)];
  }
  [[nodiscard]] const la::Matrix<R>& ur(index_t i) const {
    return ur_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const la::Matrix<R>& ui(index_t i) const {
    return ui_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] index_t v_offset(index_t i, index_t j) const {
    return v_offset_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }
  [[nodiscard]] index_t u_offset(index_t i, index_t j) const {
    return u_offset_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }
  [[nodiscard]] index_t rank(index_t i, index_t j) const {
    return ranks_[static_cast<std::size_t>(grid_.tile_index(i, j))];
  }

  /// Total bytes of the split real bases (2x the complex base count of
  /// elements, same byte total as the complex storage).
  [[nodiscard]] double bytes() const {
    double total = 0.0;
    for (const auto& m : vr_) total += static_cast<double>(m.size());
    for (const auto& m : vi_) total += static_cast<double>(m.size());
    for (const auto& m : ur_) total += static_cast<double>(m.size());
    for (const auto& m : ui_) total += static_cast<double>(m.size());
    return total * sizeof(R);
  }

 private:
  static void split(const la::Matrix<std::complex<R>>& src,
                    std::vector<la::Matrix<R>>& re_out,
                    std::vector<la::Matrix<R>>& im_out) {
    la::Matrix<R> re(src.rows(), src.cols());
    la::Matrix<R> im(src.rows(), src.cols());
    for (index_t j = 0; j < src.cols(); ++j) {
      const std::complex<R>* s = src.col(j);
      R* r = re.col(j);
      R* m = im.col(j);
      for (index_t i = 0; i < src.rows(); ++i) {
        r[i] = s[i].real();
        m[i] = s[i].imag();
      }
    }
    re_out.push_back(std::move(re));
    im_out.push_back(std::move(im));
  }

  TileGrid grid_;
  std::vector<la::Matrix<R>> vr_, vi_;  // per tile column
  std::vector<la::Matrix<R>> ur_, ui_;  // per tile row
  std::vector<index_t> v_offset_, u_offset_, ranks_;
};

/// Reusable scratch of the split-real MVM (same per-thread reuse contract
/// as MvmWorkspace: sized with resize/assign, so calls after the first on
/// a given matrix are allocation-free).
template <typename R>
struct RealSplitWorkspace {
  std::vector<R> xr, xi;    // real/imag parts of the tile-column input
  std::vector<R> yvr, yvi;  // real/imag V-batch outputs
};

/// Fused (communication-avoiding) complex TLR-MVM executed as eight real
/// batched MVMs. Bit-compatible with tlr_mvm_fused on the complex stacks
/// up to floating-point reassociation.
template <typename R>
void tlr_mvm_real_split(const RealSplitStacks<R>& A,
                        std::span<const std::complex<R>> x,
                        std::span<std::complex<R>> y,
                        RealSplitWorkspace<R>& ws) {
  const TileGrid& g = A.grid();
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == g.cols(), "x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == g.rows(), "y size");
  std::fill(y.begin(), y.end(), std::complex<R>{});

  std::vector<R>& xr = ws.xr;
  std::vector<R>& xi = ws.xi;
  std::vector<R>& yvr = ws.yvr;
  std::vector<R>& yvi = ws.yvi;
  for (index_t j = 0; j < g.nt(); ++j) {
    const index_t w = g.tile_cols(j);
    xr.resize(static_cast<std::size_t>(w));
    xi.resize(static_cast<std::size_t>(w));
    for (index_t c = 0; c < w; ++c) {
      const auto v = x[static_cast<std::size_t>(g.col_offset(j) + c)];
      xr[static_cast<std::size_t>(c)] = v.real();
      xi[static_cast<std::size_t>(c)] = v.imag();
    }
    const auto& Vr = A.vr(j);
    const auto& Vi = A.vi(j);
    const index_t kr = Vr.rows();
    yvr.assign(static_cast<std::size_t>(kr), R{});
    yvi.assign(static_cast<std::size_t>(kr), R{});
    // V-batch: 4 real MVMs. yvr = Vr xr - Vi xi; yvi = Vr xi + Vi xr.
    la::gemv(Vr, std::span<const R>(xr), std::span<R>(yvr), R{1}, R{0});
    la::gemv(Vi, std::span<const R>(xi), std::span<R>(yvr), R{-1}, R{1});
    la::gemv(Vr, std::span<const R>(xi), std::span<R>(yvi), R{1}, R{0});
    la::gemv(Vi, std::span<const R>(xr), std::span<R>(yvi), R{1}, R{1});

    // U-batch: 4 real MVMs per tile of the column, accumulated into y.
    for (index_t i = 0; i < g.mt(); ++i) {
      const index_t k = A.rank(i, j);
      if (k == 0) continue;
      const auto& Ur = A.ur(i);
      const auto& Ui = A.ui(i);
      const index_t uoff = A.u_offset(i, j);
      const index_t voff = A.v_offset(i, j);
      std::complex<R>* yi_out = y.data() + g.row_offset(i);
      for (index_t c = 0; c < k; ++c) {
        const R sr = yvr[static_cast<std::size_t>(voff + c)];
        const R si = yvi[static_cast<std::size_t>(voff + c)];
        const R* urc = Ur.col(uoff + c);
        const R* uic = Ui.col(uoff + c);
        for (index_t r = 0; r < g.tile_rows(i); ++r) {
          // (ur + i ui)(sr + i si) accumulated into complex y.
          yi_out[r] += std::complex<R>(urc[r] * sr - uic[r] * si,
                                       urc[r] * si + uic[r] * sr);
        }
      }
    }
  }
}

/// Convenience overload allocating its own workspace.
template <typename R>
void tlr_mvm_real_split(const RealSplitStacks<R>& A,
                        std::span<const std::complex<R>> x,
                        std::span<std::complex<R>> y) {
  RealSplitWorkspace<R> ws;
  tlr_mvm_real_split(A, x, y, ws);
}

}  // namespace tlrwse::tlr
