// Precompiled SIMD plan for a shared-basis frequency band (cf32).
//
// The shared V and U stacks are laid out ONCE in a 64-byte-aligned
// split-complex arena with the same plane geometry as MvmPlan (lda padded
// to 16 floats), so the basis planes stay hot in cache across the whole
// frequency loop — the band's frequencies differ only in a second, much
// smaller core arena. Where MvmPlan's phase 2 is a pure shuffle (memcpy
// program), the shared-basis phase 2 is a block-diagonal GEMV program: one
// small core multiply per tile, mapping yv-space (per-column shared row
// ranks) into yu-space (per-row shared column ranks). Factored cores run
// as two rank-r GEMVs through per-call scratch.
//
// apply/apply_adjoint take the frequency index; multi-RHS variants are
// bitwise identical per column to the single-RHS call (the same kernel
// contract MvmPlan relies on).
#pragma once

#include <span>
#include <vector>

#include "tlrwse/common/aligned.hpp"
#include "tlrwse/la/simd.hpp"
#include "tlrwse/tlr/mvm_plan.hpp"

namespace tlrwse::tlr {

template <typename T>
class SharedBasisStackedTlr;

class SharedBasisMvmPlan {
 public:
  /// Builds the shared arena + per-frequency core programs. `kt` pins the
  /// kernel tier (for parity tests); nullptr uses the process-wide
  /// la::simd::dispatch() table.
  explicit SharedBasisMvmPlan(const SharedBasisStackedTlr<cf32>& A,
                              const la::simd::KernelTable* kt = nullptr);

  /// y = A_f x  (x: cols(), y: rows()).
  void apply(index_t f, std::span<const cf32> x, std::span<cf32> y,
             PlanWorkspace& ws) const;
  /// y = A_f^H x  (x: rows(), y: cols()).
  void apply_adjoint(index_t f, std::span<const cf32> x, std::span<cf32> y,
                     PlanWorkspace& ws) const;
  /// Multi-RHS forms; X/Y hold nrhs contiguous vectors back to back.
  void apply_multi(index_t f, std::span<const cf32> X, std::span<cf32> Y,
                   index_t nrhs, PlanWorkspace& ws) const;
  void apply_adjoint_multi(index_t f, std::span<const cf32> X,
                           std::span<cf32> Y, index_t nrhs,
                           PlanWorkspace& ws) const;

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t num_freqs() const noexcept {
    return static_cast<index_t>(cores_.size());
  }
  /// Total shared row-basis rank (yv-space height) / column-basis rank
  /// (yu-space height). Unlike MvmPlan these differ in general.
  [[nodiscard]] index_t total_v_rank() const noexcept { return total_v_; }
  [[nodiscard]] index_t total_u_rank() const noexcept { return total_u_; }
  /// Storage precision inherited from the band (uniform across bases and
  /// cores; half bands pack BOTH arenas as 16-bit planes).
  [[nodiscard]] StoragePrecision precision() const noexcept { return prec_; }
  /// Shared basis planes, laid out once for the whole band — real resident
  /// bytes (16-bit planes count 2 B/real).
  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_.size() * sizeof(float) +
           arena16_.size() * sizeof(std::uint16_t);
  }
  /// All frequencies' core planes together, real resident bytes.
  [[nodiscard]] std::size_t core_arena_bytes() const noexcept {
    return core_arena_.size() * sizeof(float) +
           core_arena16_.size() * sizeof(std::uint16_t);
  }

 private:
  struct ColPlane {  // one tile column's shared Vh planes
    index_t re, im;
    index_t ld;
    index_t m, n;    // v_col_rank_sum x tile_cols
    index_t x_off;
    index_t y_base;  // offset in yv-space
  };
  struct RowPlane {  // one tile row's shared U planes
    index_t re, im;
    index_t ld;
    index_t m, n;    // tile_rows x u_row_rank_sum
    index_t x_off;
    index_t y_base;  // offset in yu-space
  };
  /// One per-tile core multiply of frequency f: yu[dst..dst+m) +=
  /// C (m x n) * yv[src..src+n). Dense cores use the re/im planes
  /// directly; factored cores run Cu (m x r) * (CvH (r x n) * yv). The
  /// storage form is an explicit flag, NOT r == 0: a factored core with
  /// rank 0 (muted frequency slice in an archive saved before rank-0
  /// cores were kept dense) owns no planes and zero-fills its yu slice.
  struct CoreOp {
    index_t src, dst;
    index_t m, n, r;               // ku, kv, factored rank
    bool factored;                 // which planes below are live
    index_t re, im, ld;            // dense planes
    index_t ure, uim, uld;         // Cu planes
    index_t vre, vim, vld;         // CvH planes
  };

  void check_io(index_t f, std::size_t x, std::size_t y, index_t nrhs,
                bool adjoint) const;

  const la::simd::KernelTable* kt_;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t total_v_ = 0;
  index_t total_u_ = 0;
  index_t max_core_r_ = 0;
  StoragePrecision prec_ = StoragePrecision::kFp32;
  // A band packs all-or-nothing: fp32 bands fill the float arenas, half
  // bands fill the uint16 arenas (same plane offsets either way).
  std::vector<float, AlignedAllocator<float>> arena_;       // shared planes
  std::vector<float, AlignedAllocator<float>> core_arena_;  // per-freq cores
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> arena16_;
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> core_arena16_;
  std::vector<ColPlane> v_;
  std::vector<RowPlane> u_;
  std::vector<std::vector<CoreOp>> cores_;  // [frequency]
};

}  // namespace tlrwse::tlr
