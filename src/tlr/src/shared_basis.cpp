#include "tlrwse/tlr/shared_basis.hpp"

#include <algorithm>

#include "tlrwse/common/error.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::tlr {

namespace {

// Same padding contract as MvmPlan: leading dimensions round up to 16
// floats so every plane and every column start 64-byte aligned.
constexpr index_t kPadFloats = 16;

index_t round_up(index_t v) {
  return (v + kPadFloats - 1) / kPadFloats * kPadFloats;
}

void ensure(PlanWorkspace::Buf& b, std::size_t n) {
  if (b.size() < n) b.resize(n);
}

// Copies a complex matrix into split planes at (re, im) with leading
// dimension ld (padding rows were zero-filled at arena allocation).
void deposit(std::vector<float, AlignedAllocator<float>>& arena,
             const la::Matrix<cf32>& a, index_t re, index_t im, index_t ld) {
  for (index_t col = 0; col < a.cols(); ++col) {
    const cf32* src = a.col(col);
    float* pr = arena.data() + re + col * ld;
    float* pi = arena.data() + im + col * ld;
    for (index_t row = 0; row < a.rows(); ++row) {
      pr[row] = src[row].real();
      pi[row] = src[row].imag();
    }
  }
}

}  // namespace

SharedBasisMvmPlan::SharedBasisMvmPlan(const SharedBasisStackedTlr<cf32>& A,
                                       const la::simd::KernelTable* kt)
    : kt_(kt != nullptr ? kt : &la::simd::dispatch()) {
  const TileGrid& g = A.grid();
  rows_ = g.rows();
  cols_ = g.cols();
  max_core_r_ = A.max_core_rank();

  // Shared arena: per-column Vh planes, then per-row U planes — identical
  // geometry to MvmPlan, but holding the band-shared bases only.
  index_t off = 0;
  v_.resize(static_cast<std::size_t>(g.nt()));
  for (index_t j = 0; j < g.nt(); ++j) {
    ColPlane& c = v_[static_cast<std::size_t>(j)];
    c.m = A.v_col_rank_sum(j);
    c.n = g.tile_cols(j);
    c.ld = round_up(c.m);
    c.x_off = g.col_offset(j);
    c.y_base = total_v_;
    c.re = off;
    off += c.ld * c.n;
    c.im = off;
    off += c.ld * c.n;
    total_v_ += c.m;
  }
  u_.resize(static_cast<std::size_t>(g.mt()));
  for (index_t i = 0; i < g.mt(); ++i) {
    RowPlane& r = u_[static_cast<std::size_t>(i)];
    r.m = g.tile_rows(i);
    r.n = A.u_row_rank_sum(i);
    r.ld = round_up(r.m);
    r.x_off = g.row_offset(i);
    r.y_base = total_u_;
    total_u_ += r.n;
    r.re = off;
    off += r.ld * r.n;
    r.im = off;
    off += r.ld * r.n;
  }
  arena_.assign(static_cast<std::size_t>(off), 0.0f);  // padding stays zero

  // The shared Vh factors of one tile column stack vertically (like
  // StackedTlr's v_stack); the shared U factors of one tile row stack
  // horizontally. Both are deposited column-slice by column-slice.
  for (index_t j = 0; j < g.nt(); ++j) {
    const ColPlane& c = v_[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < g.mt(); ++i) {
      const la::Matrix<cf32>& vh = A.basis_vh(i, j);
      if (vh.rows() == 0) continue;
      const index_t row0 = A.v_offset(i, j);
      for (index_t col = 0; col < c.n; ++col) {
        const cf32* src = vh.col(col);
        float* pr = arena_.data() + c.re + col * c.ld + row0;
        float* pi = arena_.data() + c.im + col * c.ld + row0;
        for (index_t row = 0; row < vh.rows(); ++row) {
          pr[row] = src[row].real();
          pi[row] = src[row].imag();
        }
      }
    }
  }
  for (index_t i = 0; i < g.mt(); ++i) {
    const RowPlane& r = u_[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < g.nt(); ++j) {
      const la::Matrix<cf32>& u = A.basis_u(i, j);
      if (u.cols() == 0) continue;
      const index_t col0 = A.u_offset(i, j);
      deposit(arena_, u, r.re + col0 * r.ld, r.im + col0 * r.ld, r.ld);
    }
  }

  // Core arena: per frequency, per tile (column-of-tiles-major), the core
  // planes. Walking j outer / i inner matches the shuffle order of
  // MvmPlan, keeping each frequency's program a forward sweep.
  index_t core_off = 0;
  const index_t nf = A.num_freqs();
  cores_.resize(static_cast<std::size_t>(nf));
  for (index_t f = 0; f < nf; ++f) {
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const index_t ku = A.u_rank(i, j);
        const index_t kv = A.v_rank(i, j);
        if (ku == 0 || kv == 0) continue;
        const auto& core = A.core(f, i, j);
        CoreOp op{};
        op.src = v_[static_cast<std::size_t>(j)].y_base + A.v_offset(i, j);
        op.dst = u_[static_cast<std::size_t>(i)].y_base + A.u_offset(i, j);
        op.m = ku;
        op.n = kv;
        op.factored = core.factored;
        if (core.factored) {
          op.r = core.lr.rank();
          op.uld = round_up(op.m);
          op.ure = core_off;
          core_off += op.uld * op.r;
          op.uim = core_off;
          core_off += op.uld * op.r;
          op.vld = round_up(op.r);
          op.vre = core_off;
          core_off += op.vld * op.n;
          op.vim = core_off;
          core_off += op.vld * op.n;
        } else {
          op.ld = round_up(op.m);
          op.re = core_off;
          core_off += op.ld * op.n;
          op.im = core_off;
          core_off += op.ld * op.n;
        }
        cores_[static_cast<std::size_t>(f)].push_back(op);
      }
    }
  }
  core_arena_.assign(static_cast<std::size_t>(core_off), 0.0f);
  for (index_t f = 0; f < nf; ++f) {
    std::size_t slot = 0;
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        if (A.u_rank(i, j) == 0 || A.v_rank(i, j) == 0) continue;
        const CoreOp& op = cores_[static_cast<std::size_t>(f)][slot++];
        const auto& core = A.core(f, i, j);
        if (core.factored) {
          deposit(core_arena_, core.lr.U, op.ure, op.uim, op.uld);
          deposit(core_arena_, core.lr.Vh, op.vre, op.vim, op.vld);
        } else {
          deposit(core_arena_, core.dense, op.re, op.im, op.ld);
        }
      }
    }
  }
}

void SharedBasisMvmPlan::check_io(index_t f, std::size_t x, std::size_t y,
                                  index_t nrhs, bool adjoint) const {
  TLRWSE_REQUIRE(f >= 0 && f < num_freqs(),
                 "shared plan: frequency index out of range");
  const index_t nin = adjoint ? rows_ : cols_;
  const index_t nout = adjoint ? cols_ : rows_;
  TLRWSE_REQUIRE(static_cast<index_t>(x) == nin * nrhs, "X size");
  TLRWSE_REQUIRE(static_cast<index_t>(y) == nout * nrhs, "Y size");
}

void SharedBasisMvmPlan::apply(index_t f, std::span<const cf32> x,
                               std::span<cf32> y, PlanWorkspace& ws) const {
  apply_multi(f, x, y, 1, ws);
}

void SharedBasisMvmPlan::apply_adjoint(index_t f, std::span<const cf32> x,
                                       std::span<cf32> y,
                                       PlanWorkspace& ws) const {
  apply_adjoint_multi(f, x, y, 1, ws);
}

void SharedBasisMvmPlan::apply_multi(index_t f, std::span<const cf32> X,
                                     std::span<cf32> Y, index_t nrhs,
                                     PlanWorkspace& ws) const {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.shared_plan_apply", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.shared_plan_apply");
  calls.add();
  check_io(f, X.size(), Y.size(), nrhs, /*adjoint=*/false);
  const la::simd::KernelTable& k = *kt_;

  ensure(ws.xr, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.xi, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.yvr, static_cast<std::size_t>(total_v_ * nrhs));
  ensure(ws.yvi, static_cast<std::size_t>(total_v_ * nrhs));
  ensure(ws.yur, static_cast<std::size_t>(total_u_ * nrhs));
  ensure(ws.yui, static_cast<std::size_t>(total_u_ * nrhs));
  ensure(ws.tr, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.ti, static_cast<std::size_t>(rows_ * nrhs));
  if (max_core_r_ > 0) {
    ensure(ws.cr, static_cast<std::size_t>(max_core_r_ * nrhs));
    ensure(ws.ci, static_cast<std::size_t>(max_core_r_ * nrhs));
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.split_complex(cols_, X.data() + r * cols_, ws.xr.data() + r * cols_,
                    ws.xi.data() + r * cols_);
  }

  // Phase 1: shared-Vh batch per tile column (band-invariant planes).
  for (const ColPlane& c : v_) {
    if (c.m == 0) continue;
    k.sgemv_split_multi(c.m, c.n, arena_.data() + c.re, arena_.data() + c.im,
                        c.ld, ws.xr.data() + c.x_off, ws.xi.data() + c.x_off,
                        cols_, ws.yvr.data() + c.y_base,
                        ws.yvi.data() + c.y_base, total_v_, nrhs,
                        /*accumulate=*/false);
  }

  // Phase 2: frequency f's block-diagonal core program, yv -> yu. Every
  // yu slice belongs to exactly one tile with ku > 0, and that tile has a
  // core op (ranks are zeroed in pairs at fit time), so the sweep fully
  // overwrites yu-space — no zero-fill needed.
  for (const CoreOp& op : cores_[static_cast<std::size_t>(f)]) {
    if (!op.factored) {
      k.sgemv_split_multi(op.m, op.n, core_arena_.data() + op.re,
                          core_arena_.data() + op.im, op.ld,
                          ws.yvr.data() + op.src, ws.yvi.data() + op.src,
                          total_v_, ws.yur.data() + op.dst,
                          ws.yui.data() + op.dst, total_u_, nrhs,
                          /*accumulate=*/false);
    } else if (op.r == 0) {
      // Rank-0 factored core (legacy archive): no planes exist; its whole
      // contribution is zero, but the slice must still be overwritten so
      // phase 3 reads defined data.
      for (index_t r = 0; r < nrhs; ++r) {
        std::fill_n(ws.yur.data() + r * total_u_ + op.dst, op.m, 0.0f);
        std::fill_n(ws.yui.data() + r * total_u_ + op.dst, op.m, 0.0f);
      }
    } else {
      k.sgemv_split_multi(op.r, op.n, core_arena_.data() + op.vre,
                          core_arena_.data() + op.vim, op.vld,
                          ws.yvr.data() + op.src, ws.yvi.data() + op.src,
                          total_v_, ws.cr.data(), ws.ci.data(), max_core_r_,
                          nrhs, /*accumulate=*/false);
      k.sgemv_split_multi(op.m, op.r, core_arena_.data() + op.ure,
                          core_arena_.data() + op.uim, op.uld, ws.cr.data(),
                          ws.ci.data(), max_core_r_, ws.yur.data() + op.dst,
                          ws.yui.data() + op.dst, total_u_, nrhs,
                          /*accumulate=*/false);
    }
  }

  // Phase 3: shared-U batch per tile row; rows partition the output.
  for (const RowPlane& u : u_) {
    if (u.m == 0) continue;
    k.sgemv_split_multi(u.m, u.n, arena_.data() + u.re, arena_.data() + u.im,
                        u.ld, ws.yur.data() + u.y_base,
                        ws.yui.data() + u.y_base, total_u_,
                        ws.tr.data() + u.x_off, ws.ti.data() + u.x_off, rows_,
                        nrhs, /*accumulate=*/false);
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.merge_complex(rows_, ws.tr.data() + r * rows_, ws.ti.data() + r * rows_,
                    Y.data() + r * rows_);
  }
}

void SharedBasisMvmPlan::apply_adjoint_multi(index_t f,
                                             std::span<const cf32> X,
                                             std::span<cf32> Y, index_t nrhs,
                                             PlanWorkspace& ws) const {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.shared_plan_apply_adjoint", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.shared_plan_apply_adjoint");
  calls.add();
  check_io(f, X.size(), Y.size(), nrhs, /*adjoint=*/true);
  const la::simd::KernelTable& k = *kt_;

  ensure(ws.xr, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.xi, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.yvr, static_cast<std::size_t>(total_v_ * nrhs));
  ensure(ws.yvi, static_cast<std::size_t>(total_v_ * nrhs));
  ensure(ws.yur, static_cast<std::size_t>(total_u_ * nrhs));
  ensure(ws.yui, static_cast<std::size_t>(total_u_ * nrhs));
  ensure(ws.tr, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.ti, static_cast<std::size_t>(cols_ * nrhs));
  if (max_core_r_ > 0) {
    ensure(ws.cr, static_cast<std::size_t>(max_core_r_ * nrhs));
    ensure(ws.ci, static_cast<std::size_t>(max_core_r_ * nrhs));
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.split_complex(rows_, X.data() + r * rows_, ws.xr.data() + r * rows_,
                    ws.xi.data() + r * rows_);
  }

  // Adjoint dataflow in reverse: shared U^H per tile row ...
  for (const RowPlane& u : u_) {
    if (u.n == 0) continue;
    k.sgemv_split_adjoint_multi(u.m, u.n, arena_.data() + u.re,
                                arena_.data() + u.im, u.ld,
                                ws.xr.data() + u.x_off,
                                ws.xi.data() + u.x_off, rows_,
                                ws.yur.data() + u.y_base,
                                ws.yui.data() + u.y_base, total_u_, nrhs,
                                /*accumulate=*/false);
  }

  // ... core adjoints, yu -> yv (each yv slice written exactly once) ...
  for (const CoreOp& op : cores_[static_cast<std::size_t>(f)]) {
    if (!op.factored) {
      k.sgemv_split_adjoint_multi(op.m, op.n, core_arena_.data() + op.re,
                                  core_arena_.data() + op.im, op.ld,
                                  ws.yur.data() + op.dst,
                                  ws.yui.data() + op.dst, total_u_,
                                  ws.yvr.data() + op.src,
                                  ws.yvi.data() + op.src, total_v_, nrhs,
                                  /*accumulate=*/false);
    } else if (op.r == 0) {
      // Rank-0 factored core: C^H is zero too; overwrite the yv slice.
      for (index_t r = 0; r < nrhs; ++r) {
        std::fill_n(ws.yvr.data() + r * total_v_ + op.src, op.n, 0.0f);
        std::fill_n(ws.yvi.data() + r * total_v_ + op.src, op.n, 0.0f);
      }
    } else {
      k.sgemv_split_adjoint_multi(op.m, op.r, core_arena_.data() + op.ure,
                                  core_arena_.data() + op.uim, op.uld,
                                  ws.yur.data() + op.dst,
                                  ws.yui.data() + op.dst, total_u_,
                                  ws.cr.data(), ws.ci.data(), max_core_r_,
                                  nrhs, /*accumulate=*/false);
      k.sgemv_split_adjoint_multi(op.r, op.n, core_arena_.data() + op.vre,
                                  core_arena_.data() + op.vim, op.vld,
                                  ws.cr.data(), ws.ci.data(), max_core_r_,
                                  ws.yvr.data() + op.src,
                                  ws.yvi.data() + op.src, total_v_, nrhs,
                                  /*accumulate=*/false);
    }
  }

  // ... then shared Vh^H per tile column (columns partition the output).
  for (const ColPlane& c : v_) {
    if (c.n == 0) continue;
    k.sgemv_split_adjoint_multi(c.m, c.n, arena_.data() + c.re,
                                arena_.data() + c.im, c.ld,
                                ws.yvr.data() + c.y_base,
                                ws.yvi.data() + c.y_base, total_v_,
                                ws.tr.data() + c.x_off,
                                ws.ti.data() + c.x_off, cols_, nrhs,
                                /*accumulate=*/false);
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.merge_complex(cols_, ws.tr.data() + r * cols_, ws.ti.data() + r * cols_,
                    Y.data() + r * cols_);
  }
}

}  // namespace tlrwse::tlr
