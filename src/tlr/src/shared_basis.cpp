#include "tlrwse/tlr/shared_basis.hpp"

#include <algorithm>

#include "tlrwse/common/error.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::tlr {

namespace {

// Same padding contract as MvmPlan: leading dimensions round up to 16
// floats so every plane and every column start 64-byte aligned.
constexpr index_t kPadFloats = 16;

index_t round_up(index_t v) {
  return (v + kPadFloats - 1) / kPadFloats * kPadFloats;
}

void ensure(PlanWorkspace::Buf& b, std::size_t n) {
  if (b.size() < n) b.resize(n);
}

// Writes split planes into either a float arena or a packed 16-bit arena,
// depending on the band's storage precision. Exactly one pointer is set.
struct ArenaSink {
  float* f32 = nullptr;
  std::uint16_t* u16 = nullptr;
  la::HalfFormat fmt = la::HalfFormat::kFp16;
  void store(index_t idx, float v) const {
    if (f32 != nullptr) {
      f32[idx] = v;
    } else {
      u16[idx] = la::f32_to_half_bits(v, fmt);
    }
  }
};

// Copies a complex matrix into split planes at (re, im) with leading
// dimension ld and row offset row0 (padding rows were zero-filled at arena
// allocation; zero bits decode to +0.0 in every format).
void deposit(const ArenaSink& sink, const la::Matrix<cf32>& a, index_t re,
             index_t im, index_t ld, index_t row0 = 0) {
  for (index_t col = 0; col < a.cols(); ++col) {
    const cf32* src = a.col(col);
    const index_t pr = re + col * ld + row0;
    const index_t pi = im + col * ld + row0;
    for (index_t row = 0; row < a.rows(); ++row) {
      sink.store(pr + row, src[row].real());
      sink.store(pi + row, src[row].imag());
    }
  }
}

}  // namespace

SharedBasisMvmPlan::SharedBasisMvmPlan(const SharedBasisStackedTlr<cf32>& A,
                                       const la::simd::KernelTable* kt)
    : kt_(kt != nullptr ? kt : &la::simd::dispatch()) {
  const TileGrid& g = A.grid();
  rows_ = g.rows();
  cols_ = g.cols();
  max_core_r_ = A.max_core_rank();
  prec_ = A.precision();
  const bool half = is_half(prec_);
  const la::HalfFormat fmt = half_format(prec_);

  // Shared arena: per-column Vh planes, then per-row U planes — identical
  // geometry to MvmPlan, but holding the band-shared bases only.
  index_t off = 0;
  v_.resize(static_cast<std::size_t>(g.nt()));
  for (index_t j = 0; j < g.nt(); ++j) {
    ColPlane& c = v_[static_cast<std::size_t>(j)];
    c.m = A.v_col_rank_sum(j);
    c.n = g.tile_cols(j);
    c.ld = round_up(c.m);
    c.x_off = g.col_offset(j);
    c.y_base = total_v_;
    c.re = off;
    off += c.ld * c.n;
    c.im = off;
    off += c.ld * c.n;
    total_v_ += c.m;
  }
  u_.resize(static_cast<std::size_t>(g.mt()));
  for (index_t i = 0; i < g.mt(); ++i) {
    RowPlane& r = u_[static_cast<std::size_t>(i)];
    r.m = g.tile_rows(i);
    r.n = A.u_row_rank_sum(i);
    r.ld = round_up(r.m);
    r.x_off = g.row_offset(i);
    r.y_base = total_u_;
    total_u_ += r.n;
    r.re = off;
    off += r.ld * r.n;
    r.im = off;
    off += r.ld * r.n;
  }
  // Padding stays zero: zero bits decode to +0.0 in fp32, fp16 and bf16.
  ArenaSink shared_sink{};
  shared_sink.fmt = fmt;
  if (half) {
    arena16_.assign(static_cast<std::size_t>(off), 0);
    shared_sink.u16 = arena16_.data();
  } else {
    arena_.assign(static_cast<std::size_t>(off), 0.0f);
    shared_sink.f32 = arena_.data();
  }

  // The shared Vh factors of one tile column stack vertically (like
  // StackedTlr's v_stack); the shared U factors of one tile row stack
  // horizontally. Both are deposited column-slice by column-slice. Half
  // bands were pre-rounded by set_precision, so packing is lossless.
  for (index_t j = 0; j < g.nt(); ++j) {
    const ColPlane& c = v_[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < g.mt(); ++i) {
      const la::Matrix<cf32>& vh = A.basis_vh(i, j);
      if (vh.rows() == 0) continue;
      deposit(shared_sink, vh, c.re, c.im, c.ld, A.v_offset(i, j));
    }
  }
  for (index_t i = 0; i < g.mt(); ++i) {
    const RowPlane& r = u_[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < g.nt(); ++j) {
      const la::Matrix<cf32>& u = A.basis_u(i, j);
      if (u.cols() == 0) continue;
      const index_t col0 = A.u_offset(i, j);
      deposit(shared_sink, u, r.re + col0 * r.ld, r.im + col0 * r.ld, r.ld);
    }
  }

  // Core arena: per frequency, per tile (column-of-tiles-major), the core
  // planes. Walking j outer / i inner matches the shuffle order of
  // MvmPlan, keeping each frequency's program a forward sweep.
  index_t core_off = 0;
  const index_t nf = A.num_freqs();
  cores_.resize(static_cast<std::size_t>(nf));
  for (index_t f = 0; f < nf; ++f) {
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const index_t ku = A.u_rank(i, j);
        const index_t kv = A.v_rank(i, j);
        if (ku == 0 || kv == 0) continue;
        const auto& core = A.core(f, i, j);
        CoreOp op{};
        op.src = v_[static_cast<std::size_t>(j)].y_base + A.v_offset(i, j);
        op.dst = u_[static_cast<std::size_t>(i)].y_base + A.u_offset(i, j);
        op.m = ku;
        op.n = kv;
        op.factored = core.factored;
        if (core.factored) {
          op.r = core.lr.rank();
          op.uld = round_up(op.m);
          op.ure = core_off;
          core_off += op.uld * op.r;
          op.uim = core_off;
          core_off += op.uld * op.r;
          op.vld = round_up(op.r);
          op.vre = core_off;
          core_off += op.vld * op.n;
          op.vim = core_off;
          core_off += op.vld * op.n;
        } else {
          op.ld = round_up(op.m);
          op.re = core_off;
          core_off += op.ld * op.n;
          op.im = core_off;
          core_off += op.ld * op.n;
        }
        cores_[static_cast<std::size_t>(f)].push_back(op);
      }
    }
  }
  ArenaSink core_sink{};
  core_sink.fmt = fmt;
  if (half) {
    core_arena16_.assign(static_cast<std::size_t>(core_off), 0);
    core_sink.u16 = core_arena16_.data();
  } else {
    core_arena_.assign(static_cast<std::size_t>(core_off), 0.0f);
    core_sink.f32 = core_arena_.data();
  }
  for (index_t f = 0; f < nf; ++f) {
    std::size_t slot = 0;
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        if (A.u_rank(i, j) == 0 || A.v_rank(i, j) == 0) continue;
        const CoreOp& op = cores_[static_cast<std::size_t>(f)][slot++];
        const auto& core = A.core(f, i, j);
        if (core.factored) {
          deposit(core_sink, core.lr.U, op.ure, op.uim, op.uld);
          deposit(core_sink, core.lr.Vh, op.vre, op.vim, op.vld);
        } else {
          deposit(core_sink, core.dense, op.re, op.im, op.ld);
        }
      }
    }
  }
}

void SharedBasisMvmPlan::check_io(index_t f, std::size_t x, std::size_t y,
                                  index_t nrhs, bool adjoint) const {
  TLRWSE_REQUIRE(f >= 0 && f < num_freqs(),
                 "shared plan: frequency index out of range");
  const index_t nin = adjoint ? rows_ : cols_;
  const index_t nout = adjoint ? cols_ : rows_;
  TLRWSE_REQUIRE(static_cast<index_t>(x) == nin * nrhs, "X size");
  TLRWSE_REQUIRE(static_cast<index_t>(y) == nout * nrhs, "Y size");
}

void SharedBasisMvmPlan::apply(index_t f, std::span<const cf32> x,
                               std::span<cf32> y, PlanWorkspace& ws) const {
  apply_multi(f, x, y, 1, ws);
}

void SharedBasisMvmPlan::apply_adjoint(index_t f, std::span<const cf32> x,
                                       std::span<cf32> y,
                                       PlanWorkspace& ws) const {
  apply_adjoint_multi(f, x, y, 1, ws);
}

void SharedBasisMvmPlan::apply_multi(index_t f, std::span<const cf32> X,
                                     std::span<cf32> Y, index_t nrhs,
                                     PlanWorkspace& ws) const {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.shared_plan_apply", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.shared_plan_apply");
  calls.add();
  check_io(f, X.size(), Y.size(), nrhs, /*adjoint=*/false);
  const la::simd::KernelTable& k = *kt_;
  // Half bands route every plane multiply through the widening kernels;
  // accumulation stays fp32 with the identical per-element FMA order, so a
  // half plan applies bitwise like the fp32 plan of the rounded band.
  const bool half = is_half(prec_);
  const la::HalfFormat hfmt = half_format(prec_);
  auto gemv = [&](bool core, index_t m, index_t n, index_t re, index_t im,
                  index_t ld, const float* xr, const float* xi, index_t ldx,
                  float* yr, float* yi, index_t ldy, index_t nr) {
    if (half) {
      const std::uint16_t* a = core ? core_arena16_.data() : arena16_.data();
      k.hgemv_split_multi(hfmt, m, n, a + re, a + im, ld, xr, xi, ldx, yr, yi,
                          ldy, nr, /*accumulate=*/false);
    } else {
      const float* a = core ? core_arena_.data() : arena_.data();
      k.sgemv_split_multi(m, n, a + re, a + im, ld, xr, xi, ldx, yr, yi, ldy,
                          nr, /*accumulate=*/false);
    }
  };

  ensure(ws.xr, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.xi, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.yvr, static_cast<std::size_t>(total_v_ * nrhs));
  ensure(ws.yvi, static_cast<std::size_t>(total_v_ * nrhs));
  ensure(ws.yur, static_cast<std::size_t>(total_u_ * nrhs));
  ensure(ws.yui, static_cast<std::size_t>(total_u_ * nrhs));
  ensure(ws.tr, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.ti, static_cast<std::size_t>(rows_ * nrhs));
  if (max_core_r_ > 0) {
    ensure(ws.cr, static_cast<std::size_t>(max_core_r_ * nrhs));
    ensure(ws.ci, static_cast<std::size_t>(max_core_r_ * nrhs));
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.split_complex(cols_, X.data() + r * cols_, ws.xr.data() + r * cols_,
                    ws.xi.data() + r * cols_);
  }

  // Phase 1: shared-Vh batch per tile column (band-invariant planes).
  for (const ColPlane& c : v_) {
    if (c.m == 0) continue;
    gemv(/*core=*/false, c.m, c.n, c.re, c.im, c.ld, ws.xr.data() + c.x_off,
         ws.xi.data() + c.x_off, cols_, ws.yvr.data() + c.y_base,
         ws.yvi.data() + c.y_base, total_v_, nrhs);
  }

  // Phase 2: frequency f's block-diagonal core program, yv -> yu. Every
  // yu slice belongs to exactly one tile with ku > 0, and that tile has a
  // core op (ranks are zeroed in pairs at fit time), so the sweep fully
  // overwrites yu-space — no zero-fill needed.
  for (const CoreOp& op : cores_[static_cast<std::size_t>(f)]) {
    if (!op.factored) {
      gemv(/*core=*/true, op.m, op.n, op.re, op.im, op.ld,
           ws.yvr.data() + op.src, ws.yvi.data() + op.src, total_v_,
           ws.yur.data() + op.dst, ws.yui.data() + op.dst, total_u_, nrhs);
    } else if (op.r == 0) {
      // Rank-0 factored core (legacy archive): no planes exist; its whole
      // contribution is zero, but the slice must still be overwritten so
      // phase 3 reads defined data.
      for (index_t r = 0; r < nrhs; ++r) {
        std::fill_n(ws.yur.data() + r * total_u_ + op.dst, op.m, 0.0f);
        std::fill_n(ws.yui.data() + r * total_u_ + op.dst, op.m, 0.0f);
      }
    } else {
      gemv(/*core=*/true, op.r, op.n, op.vre, op.vim, op.vld,
           ws.yvr.data() + op.src, ws.yvi.data() + op.src, total_v_,
           ws.cr.data(), ws.ci.data(), max_core_r_, nrhs);
      gemv(/*core=*/true, op.m, op.r, op.ure, op.uim, op.uld, ws.cr.data(),
           ws.ci.data(), max_core_r_, ws.yur.data() + op.dst,
           ws.yui.data() + op.dst, total_u_, nrhs);
    }
  }

  // Phase 3: shared-U batch per tile row; rows partition the output.
  for (const RowPlane& u : u_) {
    if (u.m == 0) continue;
    gemv(/*core=*/false, u.m, u.n, u.re, u.im, u.ld,
         ws.yur.data() + u.y_base, ws.yui.data() + u.y_base, total_u_,
         ws.tr.data() + u.x_off, ws.ti.data() + u.x_off, rows_, nrhs);
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.merge_complex(rows_, ws.tr.data() + r * rows_, ws.ti.data() + r * rows_,
                    Y.data() + r * rows_);
  }
}

void SharedBasisMvmPlan::apply_adjoint_multi(index_t f,
                                             std::span<const cf32> X,
                                             std::span<cf32> Y, index_t nrhs,
                                             PlanWorkspace& ws) const {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.shared_plan_apply_adjoint", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.shared_plan_apply_adjoint");
  calls.add();
  check_io(f, X.size(), Y.size(), nrhs, /*adjoint=*/true);
  const la::simd::KernelTable& k = *kt_;
  const bool half = is_half(prec_);
  const la::HalfFormat hfmt = half_format(prec_);
  auto gemv_adj = [&](bool core, index_t m, index_t n, index_t re, index_t im,
                      index_t ld, const float* xr, const float* xi,
                      index_t ldx, float* yr, float* yi, index_t ldy,
                      index_t nr) {
    if (half) {
      const std::uint16_t* a = core ? core_arena16_.data() : arena16_.data();
      k.hgemv_split_adjoint_multi(hfmt, m, n, a + re, a + im, ld, xr, xi, ldx,
                                  yr, yi, ldy, nr, /*accumulate=*/false);
    } else {
      const float* a = core ? core_arena_.data() : arena_.data();
      k.sgemv_split_adjoint_multi(m, n, a + re, a + im, ld, xr, xi, ldx, yr,
                                  yi, ldy, nr, /*accumulate=*/false);
    }
  };

  ensure(ws.xr, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.xi, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.yvr, static_cast<std::size_t>(total_v_ * nrhs));
  ensure(ws.yvi, static_cast<std::size_t>(total_v_ * nrhs));
  ensure(ws.yur, static_cast<std::size_t>(total_u_ * nrhs));
  ensure(ws.yui, static_cast<std::size_t>(total_u_ * nrhs));
  ensure(ws.tr, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.ti, static_cast<std::size_t>(cols_ * nrhs));
  if (max_core_r_ > 0) {
    ensure(ws.cr, static_cast<std::size_t>(max_core_r_ * nrhs));
    ensure(ws.ci, static_cast<std::size_t>(max_core_r_ * nrhs));
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.split_complex(rows_, X.data() + r * rows_, ws.xr.data() + r * rows_,
                    ws.xi.data() + r * rows_);
  }

  // Adjoint dataflow in reverse: shared U^H per tile row ...
  for (const RowPlane& u : u_) {
    if (u.n == 0) continue;
    gemv_adj(/*core=*/false, u.m, u.n, u.re, u.im, u.ld,
             ws.xr.data() + u.x_off, ws.xi.data() + u.x_off, rows_,
             ws.yur.data() + u.y_base, ws.yui.data() + u.y_base, total_u_,
             nrhs);
  }

  // ... core adjoints, yu -> yv (each yv slice written exactly once) ...
  for (const CoreOp& op : cores_[static_cast<std::size_t>(f)]) {
    if (!op.factored) {
      gemv_adj(/*core=*/true, op.m, op.n, op.re, op.im, op.ld,
               ws.yur.data() + op.dst, ws.yui.data() + op.dst, total_u_,
               ws.yvr.data() + op.src, ws.yvi.data() + op.src, total_v_,
               nrhs);
    } else if (op.r == 0) {
      // Rank-0 factored core: C^H is zero too; overwrite the yv slice.
      for (index_t r = 0; r < nrhs; ++r) {
        std::fill_n(ws.yvr.data() + r * total_v_ + op.src, op.n, 0.0f);
        std::fill_n(ws.yvi.data() + r * total_v_ + op.src, op.n, 0.0f);
      }
    } else {
      gemv_adj(/*core=*/true, op.m, op.r, op.ure, op.uim, op.uld,
               ws.yur.data() + op.dst, ws.yui.data() + op.dst, total_u_,
               ws.cr.data(), ws.ci.data(), max_core_r_, nrhs);
      gemv_adj(/*core=*/true, op.r, op.n, op.vre, op.vim, op.vld,
               ws.cr.data(), ws.ci.data(), max_core_r_,
               ws.yvr.data() + op.src, ws.yvi.data() + op.src, total_v_,
               nrhs);
    }
  }

  // ... then shared Vh^H per tile column (columns partition the output).
  for (const ColPlane& c : v_) {
    if (c.n == 0) continue;
    gemv_adj(/*core=*/false, c.m, c.n, c.re, c.im, c.ld,
             ws.yvr.data() + c.y_base, ws.yvi.data() + c.y_base, total_v_,
             ws.tr.data() + c.x_off, ws.ti.data() + c.x_off, cols_, nrhs);
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.merge_complex(cols_, ws.tr.data() + r * cols_, ws.ti.data() + r * cols_,
                    Y.data() + r * cols_);
  }
}

}  // namespace tlrwse::tlr
