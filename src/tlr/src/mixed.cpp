#include "tlrwse/tlr/mixed.hpp"

#include <algorithm>
#include <cmath>

#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/half.hpp"

namespace tlrwse::tlr {

// Both rounders are pack-then-widen through la/half.hpp — the SAME
// functions the plan arenas and archive writers use to pack 16-bit planes.
// That identity is what makes packing lossless: round_to_*(v) is exactly
// the value the widening kernels will compute with. (This also fixes the
// old emulation's Inf bug, which saturated +-Inf to +-65504.)
float round_to_fp16(float v) {
  return la::fp16_bits_to_f32(la::f32_to_fp16_bits(v));
}

float round_to_bf16(float v) {
  return la::bf16_bits_to_f32(la::f32_to_bf16_bits(v));
}

cf32 round_complex(cf32 v, StoragePrecision p) {
  switch (p) {
    case StoragePrecision::kFp32:
      return v;
    case StoragePrecision::kFp16:
      return {round_to_fp16(v.real()), round_to_fp16(v.imag())};
    case StoragePrecision::kBf16:
      return {round_to_bf16(v.real()), round_to_bf16(v.imag())};
  }
  return v;
}

MixedTlrResult quantize_tlr(const TlrMatrix<cf32>& src,
                            const MixedPrecisionPolicy& policy) {
  const TileGrid& g = src.grid();

  // Tile norms relative to the strongest tile.
  std::vector<double> norms(static_cast<std::size_t>(g.num_tiles()), 0.0);
  double max_norm = 0.0;
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto& t = src.tile(i, j);
      // ||U V^H||_F <= ||U||_F ||Vh||_2 ~ use the product of Frobenius
      // norms as a cheap upper bound proxy for ranking tiles.
      const double n = static_cast<double>(la::frobenius_norm(t.U)) *
                       static_cast<double>(la::frobenius_norm(t.Vh));
      norms[static_cast<std::size_t>(g.tile_index(i, j))] = n;
      max_norm = std::max(max_norm, n);
    }
  }

  MixedTlrResult out;
  out.precision.resize(static_cast<std::size_t>(g.num_tiles()),
                       StoragePrecision::kFp32);
  std::vector<la::LowRankFactors<cf32>> tiles(
      static_cast<std::size_t>(g.num_tiles()));

  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto idx = static_cast<std::size_t>(g.tile_index(i, j));
      const double rel = max_norm > 0.0 ? norms[idx] / max_norm : 0.0;
      StoragePrecision p = StoragePrecision::kFp32;
      if (rel < policy.bf16_below) {
        p = StoragePrecision::kBf16;
        ++out.tiles_bf16;
      } else if (rel < policy.fp16_below) {
        p = StoragePrecision::kFp16;
        ++out.tiles_fp16;
      } else {
        ++out.tiles_fp32;
      }
      out.precision[idx] = p;

      const auto& t = src.tile(i, j);
      la::LowRankFactors<cf32> q;
      q.U = t.U;
      q.Vh = t.Vh;
      if (p != StoragePrecision::kFp32) {
        for (index_t c = 0; c < q.U.cols(); ++c) {
          cf32* col = q.U.col(c);
          for (index_t r = 0; r < q.U.rows(); ++r) {
            col[r] = round_complex(col[r], p);
          }
        }
        for (index_t c = 0; c < q.Vh.cols(); ++c) {
          cf32* col = q.Vh.col(c);
          for (index_t r = 0; r < q.Vh.rows(); ++r) {
            col[r] = round_complex(col[r], p);
          }
        }
      }
      const double elems =
          static_cast<double>(t.U.size() + t.Vh.size()) * 2.0;  // reals
      out.stored_bytes += elems * bytes_per_real(p);
      out.fp32_bytes += elems * 4.0;
      tiles[idx] = std::move(q);
    }
  }
  out.matrix = TlrMatrix<cf32>(g, std::move(tiles));
  out.matrix.set_precision_tags(out.precision);
  return out;
}

}  // namespace tlrwse::tlr
