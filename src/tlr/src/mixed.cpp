#include "tlrwse/tlr/mixed.hpp"

#include <algorithm>
#include <cmath>

#include "tlrwse/la/blas.hpp"

namespace tlrwse::tlr {

namespace {

std::uint32_t float_bits(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

float bits_float(std::uint32_t b) {
  float v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

}  // namespace

float round_to_fp16(float v) {
  if (std::isnan(v)) return v;
  const std::uint32_t bits = float_bits(v);
  const std::uint32_t sign = bits & 0x80000000u;
  const float av = std::abs(v);
  // Saturate to the largest finite half value.
  constexpr float kMaxHalf = 65504.0f;
  if (av > kMaxHalf) return sign ? -kMaxHalf : kMaxHalf;
  // Flush half-denormals (|v| < 2^-14) to zero: the emulation targets the
  // normal range used by normalised seismic bases.
  if (av < 6.103515625e-05f) return sign ? -0.0f : 0.0f;
  // Round the 23-bit mantissa to 10 bits (round-to-nearest-even).
  const std::uint32_t mant_shift = 13;
  std::uint32_t b = bits;
  const std::uint32_t lsb = 1u << mant_shift;
  const std::uint32_t round_bit = lsb >> 1;
  const std::uint32_t sticky = b & (round_bit - 1);
  if ((b & round_bit) && (sticky || (b & lsb))) {
    b += lsb;
  }
  b &= ~(lsb - 1);
  return bits_float(b);
}

float round_to_bf16(float v) {
  if (std::isnan(v)) return v;
  std::uint32_t b = float_bits(v);
  // Round the 23-bit mantissa to 7 bits (round-to-nearest-even on the
  // upper 16 bits of the word).
  const std::uint32_t lsb = 1u << 16;
  const std::uint32_t round_bit = lsb >> 1;
  const std::uint32_t sticky = b & (round_bit - 1);
  if ((b & round_bit) && (sticky || (b & lsb))) {
    b += lsb;
  }
  b &= 0xFFFF0000u;
  return bits_float(b);
}

cf32 round_complex(cf32 v, StoragePrecision p) {
  switch (p) {
    case StoragePrecision::kFp32:
      return v;
    case StoragePrecision::kFp16:
      return {round_to_fp16(v.real()), round_to_fp16(v.imag())};
    case StoragePrecision::kBf16:
      return {round_to_bf16(v.real()), round_to_bf16(v.imag())};
  }
  return v;
}

MixedTlrResult quantize_tlr(const TlrMatrix<cf32>& src,
                            const MixedPrecisionPolicy& policy) {
  const TileGrid& g = src.grid();

  // Tile norms relative to the strongest tile.
  std::vector<double> norms(static_cast<std::size_t>(g.num_tiles()), 0.0);
  double max_norm = 0.0;
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto& t = src.tile(i, j);
      // ||U V^H||_F <= ||U||_F ||Vh||_2 ~ use the product of Frobenius
      // norms as a cheap upper bound proxy for ranking tiles.
      const double n = static_cast<double>(la::frobenius_norm(t.U)) *
                       static_cast<double>(la::frobenius_norm(t.Vh));
      norms[static_cast<std::size_t>(g.tile_index(i, j))] = n;
      max_norm = std::max(max_norm, n);
    }
  }

  MixedTlrResult out;
  out.precision.resize(static_cast<std::size_t>(g.num_tiles()),
                       StoragePrecision::kFp32);
  std::vector<la::LowRankFactors<cf32>> tiles(
      static_cast<std::size_t>(g.num_tiles()));

  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const auto idx = static_cast<std::size_t>(g.tile_index(i, j));
      const double rel = max_norm > 0.0 ? norms[idx] / max_norm : 0.0;
      StoragePrecision p = StoragePrecision::kFp32;
      if (rel < policy.bf16_below) {
        p = StoragePrecision::kBf16;
        ++out.tiles_bf16;
      } else if (rel < policy.fp16_below) {
        p = StoragePrecision::kFp16;
        ++out.tiles_fp16;
      } else {
        ++out.tiles_fp32;
      }
      out.precision[idx] = p;

      const auto& t = src.tile(i, j);
      la::LowRankFactors<cf32> q;
      q.U = t.U;
      q.Vh = t.Vh;
      if (p != StoragePrecision::kFp32) {
        for (index_t c = 0; c < q.U.cols(); ++c) {
          cf32* col = q.U.col(c);
          for (index_t r = 0; r < q.U.rows(); ++r) {
            col[r] = round_complex(col[r], p);
          }
        }
        for (index_t c = 0; c < q.Vh.cols(); ++c) {
          cf32* col = q.Vh.col(c);
          for (index_t r = 0; r < q.Vh.rows(); ++r) {
            col[r] = round_complex(col[r], p);
          }
        }
      }
      const double elems =
          static_cast<double>(t.U.size() + t.Vh.size()) * 2.0;  // reals
      out.stored_bytes += elems * bytes_per_real(p);
      out.fp32_bytes += elems * 4.0;
      tiles[idx] = std::move(q);
    }
  }
  out.matrix = TlrMatrix<cf32>(g, std::move(tiles));
  return out;
}

}  // namespace tlrwse::tlr
