// Explicit instantiations of the TLR templates for the project precisions.
#include "tlrwse/tlr/real_split.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"
#include "tlrwse/tlr/tlr_mmm.hpp"
#include "tlrwse/tlr/tlr_mvm.hpp"

namespace tlrwse::tlr {

template class TlrMatrix<cf32>;
template class TlrMatrix<cf64>;
template class TlrMatrix<float>;
template class TlrMatrix<double>;

template TlrMatrix<cf32> compress_tlr(const la::Matrix<cf32>&,
                                      const CompressionConfig&);
template TlrMatrix<cf64> compress_tlr(const la::Matrix<cf64>&,
                                      const CompressionConfig&);
template TlrMatrix<float> compress_tlr(const la::Matrix<float>&,
                                       const CompressionConfig&);
template TlrMatrix<double> compress_tlr(const la::Matrix<double>&,
                                        const CompressionConfig&);

template class StackedTlr<cf32>;
template class StackedTlr<cf64>;
template class StackedTlr<float>;
template class StackedTlr<double>;

template class RealSplitStacks<float>;
template class RealSplitStacks<double>;

template void tlr_mvm_real_split(const RealSplitStacks<float>&,
                                 std::span<const cf32>, std::span<cf32>);
template void tlr_mvm_real_split(const RealSplitStacks<double>&,
                                 std::span<const cf64>, std::span<cf64>);

template void tlr_mmm_fused(const StackedTlr<cf32>&, const la::Matrix<cf32>&,
                            la::Matrix<cf32>&);
template void tlr_mmm_fused(const StackedTlr<cf64>&, const la::Matrix<cf64>&,
                            la::Matrix<cf64>&);
template void tlr_mmm_adjoint(const StackedTlr<cf32>&, const la::Matrix<cf32>&,
                              la::Matrix<cf32>&);
template void tlr_mmm_adjoint(const StackedTlr<cf64>&, const la::Matrix<cf64>&,
                              la::Matrix<cf64>&);
template MmmTraffic tlr_mmm_traffic(const StackedTlr<cf32>&, index_t);

}  // namespace tlrwse::tlr
