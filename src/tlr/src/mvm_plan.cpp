#include "tlrwse/tlr/mvm_plan.hpp"

#include <cstring>

#include "tlrwse/common/error.hpp"
#include "tlrwse/la/half.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::tlr {

namespace {

// Leading dimensions round up to 16 elements: a multiple of every kernel
// tier's register width, so every arena column (and every plane, since
// plane sizes are ld * n) starts 64-byte aligned in the fp32 arena and
// 32-byte aligned in the uint16 arena — the kernels use unaligned loads,
// alignment is a throughput nicety, not a contract.
constexpr index_t kPadElems = 16;

index_t round_up(index_t v) {
  return (v + kPadElems - 1) / kPadElems * kPadElems;
}

void ensure(PlanWorkspace::Buf& b, std::size_t n) {
  if (b.size() < n) b.resize(n);
}

// One same-precision run of tiles along a stack: [off, off + len) in the
// split dimension. Zero-rank tiles contribute nothing and do not break a
// run.
struct Run {
  StoragePrecision prec;
  index_t off;
  index_t len;
};

template <class RankAt, class PrecAt>
std::vector<Run> precision_runs(index_t count, RankAt&& rank_at,
                                PrecAt&& prec_at) {
  std::vector<Run> runs;
  index_t off = 0;
  for (index_t t = 0; t < count; ++t) {
    const index_t len = rank_at(t);
    if (len == 0) continue;
    const StoragePrecision p = prec_at(t);
    if (!runs.empty() && runs.back().prec == p) {
      runs.back().len += len;
    } else {
      runs.push_back({p, off, len});
    }
    off += len;
  }
  return runs;
}

}  // namespace

MvmPlan::MvmPlan(const StackedTlr<cf32>& A, const la::simd::KernelTable* kt)
    : kt_(kt != nullptr ? kt : &la::simd::dispatch()) {
  const TileGrid& g = A.grid();
  rows_ = g.rows();
  cols_ = g.cols();

  // Lay out all planes: per-column V re/im, then per-row U re/im, each
  // stack partitioned into same-precision panels. fp32 panels go into the
  // float arena, fp16/bf16 panels into the packed uint16 arena; both
  // offsets advance independently and plane sizes stay multiples of 16
  // elements.
  index_t off32 = 0;
  index_t off16 = 0;
  auto place = [&](Panel& p, index_t plane_elems) {
    if (is_half(p.prec)) {
      p.re = off16;
      off16 += plane_elems;
      p.im = off16;
      off16 += plane_elems;
    } else {
      p.re = off32;
      off32 += plane_elems;
      p.im = off32;
      off32 += plane_elems;
    }
  };

  v_.resize(static_cast<std::size_t>(g.nt()));
  for (index_t j = 0; j < g.nt(); ++j) {
    ColPlane& c = v_[static_cast<std::size_t>(j)];
    c.m = A.col_rank_sum(j);
    c.n = g.tile_cols(j);
    c.x_off = g.col_offset(j);
    c.y_base = total_rank_;
    // V stacks split along their rows (ranks): one panel per run of
    // same-precision tiles down the column.
    for (const Run& r : precision_runs(
             g.mt(), [&](index_t i) { return A.rank(i, j); },
             [&](index_t i) { return A.precision(i, j); })) {
      Panel p;
      p.prec = r.prec;
      p.off = r.off;
      p.len = r.len;
      p.ld = round_up(r.len);
      place(p, p.ld * c.n);
      c.panels.push_back(p);
    }
    total_rank_ += c.m;
  }
  u_.resize(static_cast<std::size_t>(g.mt()));
  index_t yu_base = 0;
  for (index_t i = 0; i < g.mt(); ++i) {
    RowPlane& r = u_[static_cast<std::size_t>(i)];
    r.m = g.tile_rows(i);
    r.n = A.row_rank_sum(i);
    r.x_off = g.row_offset(i);
    r.y_base = yu_base;
    yu_base += r.n;
    // U stacks split along their columns (ranks): every panel keeps the
    // full tile height, so all panels of a row share one leading dim.
    for (const Run& run : precision_runs(
             g.nt(), [&](index_t j) { return A.rank(i, j); },
             [&](index_t j) { return A.precision(i, j); })) {
      Panel p;
      p.prec = run.prec;
      p.off = run.off;
      p.len = run.len;
      p.ld = round_up(r.m);
      place(p, p.ld * run.len);
      r.panels.push_back(p);
    }
  }

  // Zero bits are +0.0f in fp32, fp16, and bf16 alike, so padding in
  // either arena contributes exact zeros to any kernel sweep.
  arena_.assign(static_cast<std::size_t>(off32), 0.0f);
  arena16_.assign(static_cast<std::size_t>(off16), 0);

  // Deposit: split each stack slice into planar re/im, packing half panels
  // through la/half.hpp (lossless for values pre-rounded by quantize_tlr).
  auto deposit = [&](const Panel& p, const la::Matrix<cf32>& stack,
                     index_t row0, index_t col0, index_t nrows,
                     index_t ncols) {
    if (is_half(p.prec)) {
      const la::HalfFormat fmt = half_format(p.prec);
      for (index_t col = 0; col < ncols; ++col) {
        const cf32* src = stack.col(col0 + col) + row0;
        std::uint16_t* re = arena16_.data() + p.re + col * p.ld;
        std::uint16_t* im = arena16_.data() + p.im + col * p.ld;
        for (index_t row = 0; row < nrows; ++row) {
          re[row] = la::f32_to_half_bits(src[row].real(), fmt);
          im[row] = la::f32_to_half_bits(src[row].imag(), fmt);
        }
      }
    } else {
      for (index_t col = 0; col < ncols; ++col) {
        const cf32* src = stack.col(col0 + col) + row0;
        float* re = arena_.data() + p.re + col * p.ld;
        float* im = arena_.data() + p.im + col * p.ld;
        for (index_t row = 0; row < nrows; ++row) {
          re[row] = src[row].real();
          im[row] = src[row].imag();
        }
      }
    }
  };
  for (index_t j = 0; j < g.nt(); ++j) {
    const ColPlane& c = v_[static_cast<std::size_t>(j)];
    for (const Panel& p : c.panels) {
      deposit(p, A.v_stack(j), p.off, 0, p.len, c.n);
    }
  }
  for (index_t i = 0; i < g.mt(); ++i) {
    const RowPlane& r = u_[static_cast<std::size_t>(i)];
    for (const Panel& p : r.panels) {
      deposit(p, A.u_stack(i), 0, p.off, r.m, p.len);
    }
  }

  // Flatten the phase-2 shuffle. Walking j outer / i inner matches the
  // loop order of tlr_mvm_3phase; runs that are contiguous in BOTH spaces
  // merge into one segment (zero-rank tiles vanish entirely).
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const index_t len = A.rank(i, j);
      if (len == 0) continue;
      const index_t src = v_[static_cast<std::size_t>(j)].y_base +
                          A.v_offset(i, j);
      const index_t dst = u_[static_cast<std::size_t>(i)].y_base +
                          A.u_offset(i, j);
      if (!shuffle_.empty()) {
        ShuffleSegment& last = shuffle_.back();
        if (last.src + last.len == src && last.dst + last.len == dst) {
          last.len += len;
          continue;
        }
      }
      shuffle_.push_back({src, dst, len});
    }
  }
}

void MvmPlan::apply(std::span<const cf32> x, std::span<cf32> y,
                    PlanWorkspace& ws) const {
  apply_multi(x, y, 1, ws);
}

void MvmPlan::apply_adjoint(std::span<const cf32> x, std::span<cf32> y,
                            PlanWorkspace& ws) const {
  apply_adjoint_multi(x, y, 1, ws);
}

void MvmPlan::apply_multi(std::span<const cf32> X, std::span<cf32> Y,
                          index_t nrhs, PlanWorkspace& ws) const {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.plan_apply", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.plan_apply");
  calls.add();
  TLRWSE_REQUIRE(static_cast<index_t>(X.size()) == cols_ * nrhs, "X size");
  TLRWSE_REQUIRE(static_cast<index_t>(Y.size()) == rows_ * nrhs, "Y size");
  const la::simd::KernelTable& k = *kt_;

  ensure(ws.xr, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.xi, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.yvr, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yvi, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yur, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yui, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.tr, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.ti, static_cast<std::size_t>(rows_ * nrhs));

  for (index_t r = 0; r < nrhs; ++r) {
    k.split_complex(cols_, X.data() + r * cols_, ws.xr.data() + r * cols_,
                    ws.xi.data() + r * cols_);
  }

  // Phase 1: V-batch per tile column, all RHS in one sweep over the
  // planes. Panels partition the output rows of the stack, so each panel
  // writes its own disjoint yv slice.
  for (const ColPlane& c : v_) {
    for (const Panel& p : c.panels) {
      float* yr = ws.yvr.data() + c.y_base + p.off;
      float* yi = ws.yvi.data() + c.y_base + p.off;
      if (is_half(p.prec)) {
        k.hgemv_split_multi(half_format(p.prec), p.len, c.n,
                            arena16_.data() + p.re, arena16_.data() + p.im,
                            p.ld, ws.xr.data() + c.x_off,
                            ws.xi.data() + c.x_off, cols_, yr, yi, total_rank_,
                            nrhs, /*accumulate=*/false);
      } else {
        k.sgemv_split_multi(p.len, c.n, arena_.data() + p.re,
                            arena_.data() + p.im, p.ld,
                            ws.xr.data() + c.x_off, ws.xi.data() + c.x_off,
                            cols_, yr, yi, total_rank_, nrhs,
                            /*accumulate=*/false);
      }
    }
  }

  // Phase 2: the precompiled shuffle program (per RHS, both planes).
  for (index_t r = 0; r < nrhs; ++r) {
    const float* sr = ws.yvr.data() + r * total_rank_;
    const float* si = ws.yvi.data() + r * total_rank_;
    float* dr = ws.yur.data() + r * total_rank_;
    float* di = ws.yui.data() + r * total_rank_;
    for (const ShuffleSegment& s : shuffle_) {
      std::memcpy(dr + s.dst, sr + s.src,
                  static_cast<std::size_t>(s.len) * sizeof(float));
      std::memcpy(di + s.dst, si + s.src,
                  static_cast<std::size_t>(s.len) * sizeof(float));
    }
  }

  // Phase 3: U-batch per tile row; rows partition the output. Panels split
  // the reduction over the stack's columns, chaining accumulation in the
  // same per-element FMA order as an unsplit sweep.
  for (const RowPlane& u : u_) {
    if (u.m == 0) continue;
    if (u.panels.empty()) {
      // All tiles of the row have rank zero: the output slice is zero.
      for (index_t r = 0; r < nrhs; ++r) {
        std::memset(ws.tr.data() + r * rows_ + u.x_off, 0,
                    static_cast<std::size_t>(u.m) * sizeof(float));
        std::memset(ws.ti.data() + r * rows_ + u.x_off, 0,
                    static_cast<std::size_t>(u.m) * sizeof(float));
      }
      continue;
    }
    bool accumulate = false;
    for (const Panel& p : u.panels) {
      const float* xr = ws.yur.data() + u.y_base + p.off;
      const float* xi = ws.yui.data() + u.y_base + p.off;
      if (is_half(p.prec)) {
        k.hgemv_split_multi(half_format(p.prec), u.m, p.len,
                            arena16_.data() + p.re, arena16_.data() + p.im,
                            p.ld, xr, xi, total_rank_,
                            ws.tr.data() + u.x_off, ws.ti.data() + u.x_off,
                            rows_, nrhs, accumulate);
      } else {
        k.sgemv_split_multi(u.m, p.len, arena_.data() + p.re,
                            arena_.data() + p.im, p.ld, xr, xi, total_rank_,
                            ws.tr.data() + u.x_off, ws.ti.data() + u.x_off,
                            rows_, nrhs, accumulate);
      }
      accumulate = true;
    }
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.merge_complex(rows_, ws.tr.data() + r * rows_, ws.ti.data() + r * rows_,
                    Y.data() + r * rows_);
  }
}

void MvmPlan::apply_adjoint_multi(std::span<const cf32> X, std::span<cf32> Y,
                                  index_t nrhs, PlanWorkspace& ws) const {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.plan_apply_adjoint", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.plan_apply_adjoint");
  calls.add();
  TLRWSE_REQUIRE(static_cast<index_t>(X.size()) == rows_ * nrhs, "X size");
  TLRWSE_REQUIRE(static_cast<index_t>(Y.size()) == cols_ * nrhs, "Y size");
  const la::simd::KernelTable& k = *kt_;

  ensure(ws.xr, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.xi, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.yvr, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yvi, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yur, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yui, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.tr, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.ti, static_cast<std::size_t>(cols_ * nrhs));

  for (index_t r = 0; r < nrhs; ++r) {
    k.split_complex(rows_, X.data() + r * rows_, ws.xr.data() + r * rows_,
                    ws.xi.data() + r * rows_);
  }

  // Adjoint runs the dataflow backwards: U^H per tile row (panels
  // partition the yu outputs, so order is free) ...
  for (const RowPlane& u : u_) {
    for (const Panel& p : u.panels) {
      float* yr = ws.yur.data() + u.y_base + p.off;
      float* yi = ws.yui.data() + u.y_base + p.off;
      if (is_half(p.prec)) {
        k.hgemv_split_adjoint_multi(half_format(p.prec), u.m, p.len,
                                    arena16_.data() + p.re,
                                    arena16_.data() + p.im, p.ld,
                                    ws.xr.data() + u.x_off,
                                    ws.xi.data() + u.x_off, rows_, yr, yi,
                                    total_rank_, nrhs, /*accumulate=*/false);
      } else {
        k.sgemv_split_adjoint_multi(u.m, p.len, arena_.data() + p.re,
                                    arena_.data() + p.im, p.ld,
                                    ws.xr.data() + u.x_off,
                                    ws.xi.data() + u.x_off, rows_, yr, yi,
                                    total_rank_, nrhs, /*accumulate=*/false);
      }
    }
  }

  // ... the shuffle program applied in reverse (dst -> src) ...
  for (index_t r = 0; r < nrhs; ++r) {
    const float* sr = ws.yur.data() + r * total_rank_;
    const float* si = ws.yui.data() + r * total_rank_;
    float* dr = ws.yvr.data() + r * total_rank_;
    float* di = ws.yvi.data() + r * total_rank_;
    for (const ShuffleSegment& s : shuffle_) {
      std::memcpy(dr + s.src, sr + s.dst,
                  static_cast<std::size_t>(s.len) * sizeof(float));
      std::memcpy(di + s.src, si + s.dst,
                  static_cast<std::size_t>(s.len) * sizeof(float));
    }
  }

  // ... then V^H per tile column (columns partition the output). Panels
  // split the reduction over the stack's rows; partial dot results chain
  // through accumulate. A mixed-precision column therefore sums its
  // panels' reductions in panel order — deterministic, but grouped
  // differently than a single-panel sweep; uniform-precision plans keep
  // one panel and the historical bitwise behaviour.
  for (const ColPlane& c : v_) {
    if (c.n == 0) continue;
    if (c.panels.empty()) {
      for (index_t r = 0; r < nrhs; ++r) {
        std::memset(ws.tr.data() + r * cols_ + c.x_off, 0,
                    static_cast<std::size_t>(c.n) * sizeof(float));
        std::memset(ws.ti.data() + r * cols_ + c.x_off, 0,
                    static_cast<std::size_t>(c.n) * sizeof(float));
      }
      continue;
    }
    bool accumulate = false;
    for (const Panel& p : c.panels) {
      const float* xr = ws.yvr.data() + c.y_base + p.off;
      const float* xi = ws.yvi.data() + c.y_base + p.off;
      if (is_half(p.prec)) {
        k.hgemv_split_adjoint_multi(half_format(p.prec), p.len, c.n,
                                    arena16_.data() + p.re,
                                    arena16_.data() + p.im, p.ld, xr, xi,
                                    total_rank_, ws.tr.data() + c.x_off,
                                    ws.ti.data() + c.x_off, cols_, nrhs,
                                    accumulate);
      } else {
        k.sgemv_split_adjoint_multi(p.len, c.n, arena_.data() + p.re,
                                    arena_.data() + p.im, p.ld, xr, xi,
                                    total_rank_, ws.tr.data() + c.x_off,
                                    ws.ti.data() + c.x_off, cols_, nrhs,
                                    accumulate);
      }
      accumulate = true;
    }
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.merge_complex(cols_, ws.tr.data() + r * cols_, ws.ti.data() + r * cols_,
                    Y.data() + r * cols_);
  }
}

}  // namespace tlrwse::tlr
