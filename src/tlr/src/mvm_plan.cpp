#include "tlrwse/tlr/mvm_plan.hpp"

#include <cstring>

#include "tlrwse/common/error.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::tlr {

namespace {

// Leading dimensions round up to 16 floats: one cache line, and a multiple
// of every kernel tier's register width, so every arena column (and every
// plane, since plane sizes are ld * n) starts 64-byte aligned.
constexpr index_t kPadFloats = 16;

index_t round_up(index_t v) {
  return (v + kPadFloats - 1) / kPadFloats * kPadFloats;
}

void ensure(PlanWorkspace::Buf& b, std::size_t n) {
  if (b.size() < n) b.resize(n);
}

}  // namespace

MvmPlan::MvmPlan(const StackedTlr<cf32>& A, const la::simd::KernelTable* kt)
    : kt_(kt != nullptr ? kt : &la::simd::dispatch()) {
  const TileGrid& g = A.grid();
  rows_ = g.rows();
  cols_ = g.cols();

  // Lay out all planes in one slab: per-column V re/im, then per-row U
  // re/im. Every plane size is a multiple of 16 floats (ld is), so every
  // plane offset stays 64-byte aligned.
  index_t off = 0;
  v_.resize(static_cast<std::size_t>(g.nt()));
  for (index_t j = 0; j < g.nt(); ++j) {
    ColPlane& c = v_[static_cast<std::size_t>(j)];
    c.m = A.col_rank_sum(j);
    c.n = g.tile_cols(j);
    c.ld = round_up(c.m);
    c.x_off = g.col_offset(j);
    c.y_base = total_rank_;
    c.re = off;
    off += c.ld * c.n;
    c.im = off;
    off += c.ld * c.n;
    total_rank_ += c.m;
  }
  u_.resize(static_cast<std::size_t>(g.mt()));
  index_t yu_base = 0;
  for (index_t i = 0; i < g.mt(); ++i) {
    RowPlane& r = u_[static_cast<std::size_t>(i)];
    r.m = g.tile_rows(i);
    r.n = A.row_rank_sum(i);
    r.ld = round_up(r.m);
    r.x_off = g.row_offset(i);
    r.y_base = yu_base;
    yu_base += r.n;
    r.re = off;
    off += r.ld * r.n;
    r.im = off;
    off += r.ld * r.n;
  }

  arena_.assign(static_cast<std::size_t>(off), 0.0f);  // padding stays zero
  for (index_t j = 0; j < g.nt(); ++j) {
    const ColPlane& c = v_[static_cast<std::size_t>(j)];
    const la::Matrix<cf32>& vs = A.v_stack(j);
    for (index_t col = 0; col < c.n; ++col) {
      const cf32* src = vs.col(col);
      float* re = arena_.data() + c.re + col * c.ld;
      float* im = arena_.data() + c.im + col * c.ld;
      for (index_t row = 0; row < c.m; ++row) {
        re[row] = src[row].real();
        im[row] = src[row].imag();
      }
    }
  }
  for (index_t i = 0; i < g.mt(); ++i) {
    const RowPlane& r = u_[static_cast<std::size_t>(i)];
    const la::Matrix<cf32>& us = A.u_stack(i);
    for (index_t col = 0; col < r.n; ++col) {
      const cf32* src = us.col(col);
      float* re = arena_.data() + r.re + col * r.ld;
      float* im = arena_.data() + r.im + col * r.ld;
      for (index_t row = 0; row < r.m; ++row) {
        re[row] = src[row].real();
        im[row] = src[row].imag();
      }
    }
  }

  // Flatten the phase-2 shuffle. Walking j outer / i inner matches the
  // loop order of tlr_mvm_3phase; runs that are contiguous in BOTH spaces
  // merge into one segment (zero-rank tiles vanish entirely).
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      const index_t len = A.rank(i, j);
      if (len == 0) continue;
      const index_t src = v_[static_cast<std::size_t>(j)].y_base +
                          A.v_offset(i, j);
      const index_t dst = u_[static_cast<std::size_t>(i)].y_base +
                          A.u_offset(i, j);
      if (!shuffle_.empty()) {
        ShuffleSegment& last = shuffle_.back();
        if (last.src + last.len == src && last.dst + last.len == dst) {
          last.len += len;
          continue;
        }
      }
      shuffle_.push_back({src, dst, len});
    }
  }
}

void MvmPlan::apply(std::span<const cf32> x, std::span<cf32> y,
                    PlanWorkspace& ws) const {
  apply_multi(x, y, 1, ws);
}

void MvmPlan::apply_adjoint(std::span<const cf32> x, std::span<cf32> y,
                            PlanWorkspace& ws) const {
  apply_adjoint_multi(x, y, 1, ws);
}

void MvmPlan::apply_multi(std::span<const cf32> X, std::span<cf32> Y,
                          index_t nrhs, PlanWorkspace& ws) const {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.plan_apply", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.plan_apply");
  calls.add();
  TLRWSE_REQUIRE(static_cast<index_t>(X.size()) == cols_ * nrhs, "X size");
  TLRWSE_REQUIRE(static_cast<index_t>(Y.size()) == rows_ * nrhs, "Y size");
  const la::simd::KernelTable& k = *kt_;

  ensure(ws.xr, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.xi, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.yvr, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yvi, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yur, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yui, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.tr, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.ti, static_cast<std::size_t>(rows_ * nrhs));

  for (index_t r = 0; r < nrhs; ++r) {
    k.split_complex(cols_, X.data() + r * cols_, ws.xr.data() + r * cols_,
                    ws.xi.data() + r * cols_);
  }

  // Phase 1: V-batch per tile column, all RHS in one sweep over the planes.
  for (const ColPlane& c : v_) {
    if (c.m == 0) continue;
    k.sgemv_split_multi(c.m, c.n, arena_.data() + c.re, arena_.data() + c.im,
                        c.ld, ws.xr.data() + c.x_off, ws.xi.data() + c.x_off,
                        cols_, ws.yvr.data() + c.y_base,
                        ws.yvi.data() + c.y_base, total_rank_, nrhs,
                        /*accumulate=*/false);
  }

  // Phase 2: the precompiled shuffle program (per RHS, both planes).
  for (index_t r = 0; r < nrhs; ++r) {
    const float* sr = ws.yvr.data() + r * total_rank_;
    const float* si = ws.yvi.data() + r * total_rank_;
    float* dr = ws.yur.data() + r * total_rank_;
    float* di = ws.yui.data() + r * total_rank_;
    for (const ShuffleSegment& s : shuffle_) {
      std::memcpy(dr + s.dst, sr + s.src,
                  static_cast<std::size_t>(s.len) * sizeof(float));
      std::memcpy(di + s.dst, si + s.src,
                  static_cast<std::size_t>(s.len) * sizeof(float));
    }
  }

  // Phase 3: U-batch per tile row; rows partition the output, so each
  // sweep writes its own slice (no accumulation).
  for (const RowPlane& u : u_) {
    if (u.m == 0) continue;
    k.sgemv_split_multi(u.m, u.n, arena_.data() + u.re, arena_.data() + u.im,
                        u.ld, ws.yur.data() + u.y_base,
                        ws.yui.data() + u.y_base, total_rank_,
                        ws.tr.data() + u.x_off, ws.ti.data() + u.x_off, rows_,
                        nrhs, /*accumulate=*/false);
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.merge_complex(rows_, ws.tr.data() + r * rows_, ws.ti.data() + r * rows_,
                    Y.data() + r * rows_);
  }
}

void MvmPlan::apply_adjoint_multi(std::span<const cf32> X, std::span<cf32> Y,
                                  index_t nrhs, PlanWorkspace& ws) const {
  TLRWSE_TRACE_SPAN_DETAIL("tlr.plan_apply_adjoint", "tlr");
  static obs::Counter& calls =
      obs::MetricsRegistry::instance().counter("tlr.plan_apply_adjoint");
  calls.add();
  TLRWSE_REQUIRE(static_cast<index_t>(X.size()) == rows_ * nrhs, "X size");
  TLRWSE_REQUIRE(static_cast<index_t>(Y.size()) == cols_ * nrhs, "Y size");
  const la::simd::KernelTable& k = *kt_;

  ensure(ws.xr, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.xi, static_cast<std::size_t>(rows_ * nrhs));
  ensure(ws.yvr, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yvi, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yur, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.yui, static_cast<std::size_t>(total_rank_ * nrhs));
  ensure(ws.tr, static_cast<std::size_t>(cols_ * nrhs));
  ensure(ws.ti, static_cast<std::size_t>(cols_ * nrhs));

  for (index_t r = 0; r < nrhs; ++r) {
    k.split_complex(rows_, X.data() + r * rows_, ws.xr.data() + r * rows_,
                    ws.xi.data() + r * rows_);
  }

  // Adjoint runs the dataflow backwards: U^H per tile row ...
  for (const RowPlane& u : u_) {
    if (u.n == 0) continue;
    k.sgemv_split_adjoint_multi(u.m, u.n, arena_.data() + u.re,
                                arena_.data() + u.im, u.ld,
                                ws.xr.data() + u.x_off,
                                ws.xi.data() + u.x_off, rows_,
                                ws.yur.data() + u.y_base,
                                ws.yui.data() + u.y_base, total_rank_, nrhs,
                                /*accumulate=*/false);
  }

  // ... the shuffle program applied in reverse (dst -> src) ...
  for (index_t r = 0; r < nrhs; ++r) {
    const float* sr = ws.yur.data() + r * total_rank_;
    const float* si = ws.yui.data() + r * total_rank_;
    float* dr = ws.yvr.data() + r * total_rank_;
    float* di = ws.yvi.data() + r * total_rank_;
    for (const ShuffleSegment& s : shuffle_) {
      std::memcpy(dr + s.src, sr + s.dst,
                  static_cast<std::size_t>(s.len) * sizeof(float));
      std::memcpy(di + s.src, si + s.dst,
                  static_cast<std::size_t>(s.len) * sizeof(float));
    }
  }

  // ... then V^H per tile column (columns partition the output).
  for (const ColPlane& c : v_) {
    if (c.n == 0) continue;
    k.sgemv_split_adjoint_multi(c.m, c.n, arena_.data() + c.re,
                                arena_.data() + c.im, c.ld,
                                ws.yvr.data() + c.y_base,
                                ws.yvi.data() + c.y_base, total_rank_,
                                ws.tr.data() + c.x_off,
                                ws.ti.data() + c.x_off, cols_, nrhs,
                                /*accumulate=*/false);
  }

  for (index_t r = 0; r < nrhs; ++r) {
    k.merge_complex(cols_, ws.tr.data() + r * cols_, ws.ti.data() + r * cols_,
                    Y.data() + r * cols_);
  }
}

}  // namespace tlrwse::tlr
