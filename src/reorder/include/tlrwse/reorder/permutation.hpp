// Permutation construction from acquisition geometry and application to
// frequency matrices.
//
// Given the 2-D grid positions of sources (rows) and receivers (columns),
// `ordering_permutation` returns the permutation that sorts them along a
// space-filling curve. Applying the row/column permutations to every
// frequency matrix concentrates energy near the diagonal (paper Sec. 6.1),
// which is what makes TLR compression effective.
#pragma once

#include <span>
#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/la/matrix.hpp"

namespace tlrwse::reorder {

enum class Ordering {
  kNatural,  // acquisition order (row-major over the grid)
  kMorton,   // Z-order curve
  kHilbert,  // Hilbert curve (best compression per the paper)
};

/// Integer grid coordinate of one source/receiver station.
struct GridPoint {
  index_t ix = 0;
  index_t iy = 0;
};

/// Returns perm such that station perm[k] is the k-th in curve order.
[[nodiscard]] std::vector<index_t> ordering_permutation(
    const std::vector<GridPoint>& points, Ordering ordering);

/// inverse[perm[k]] = k.
[[nodiscard]] std::vector<index_t> invert_permutation(
    const std::vector<index_t>& perm);

/// Returns B with B(i, j) = A(row_perm[i], col_perm[j]).
template <typename T>
[[nodiscard]] la::Matrix<T> permute_rows_cols(
    const la::Matrix<T>& A, const std::vector<index_t>& row_perm,
    const std::vector<index_t>& col_perm) {
  TLRWSE_REQUIRE(static_cast<index_t>(row_perm.size()) == A.rows(),
                 "row permutation size");
  TLRWSE_REQUIRE(static_cast<index_t>(col_perm.size()) == A.cols(),
                 "col permutation size");
  la::Matrix<T> B(A.rows(), A.cols());
  for (index_t j = 0; j < A.cols(); ++j) {
    const index_t src_col = col_perm[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < A.rows(); ++i) {
      B(i, j) = A(row_perm[static_cast<std::size_t>(i)], src_col);
    }
  }
  return B;
}

/// Gathers x_out[k] = x_in[perm[k]].
template <typename T>
void permute_vector(const std::vector<index_t>& perm, std::span<const T> in,
                    std::span<T> out) {
  TLRWSE_REQUIRE(perm.size() == in.size() && in.size() == out.size(),
                 "permute_vector size mismatch");
  for (std::size_t k = 0; k < perm.size(); ++k) {
    out[k] = in[static_cast<std::size_t>(perm[k])];
  }
}

}  // namespace tlrwse::reorder
