// Hilbert and Morton space-filling curve indexing.
//
// The paper (Sec. 4, refs [23][24]) applies a distance-aware re-arrangement
// of the rows (sources) and columns (receivers) of each frequency matrix.
// Sorting acquisition coordinates along a Hilbert curve gathers spatially
// close sources/receivers into the same tile, dramatically lowering tile
// ranks; Hilbert beats Morton because consecutive Hilbert indices are always
// spatial neighbours (no quadrant jumps).
#pragma once

#include <cstdint>
#include <utility>

#include "tlrwse/common/types.hpp"

namespace tlrwse::reorder {

/// Maps grid coordinates (x, y) in [0, 2^order) to the Hilbert curve index
/// d in [0, 4^order).
[[nodiscard]] std::uint64_t hilbert_xy_to_d(std::uint32_t order, std::uint64_t x,
                                            std::uint64_t y);

/// Inverse of hilbert_xy_to_d.
[[nodiscard]] std::pair<std::uint64_t, std::uint64_t> hilbert_d_to_xy(
    std::uint32_t order, std::uint64_t d);

/// Morton (Z-order) index by bit interleaving of x and y (each < 2^32).
[[nodiscard]] std::uint64_t morton_xy_to_d(std::uint64_t x, std::uint64_t y);

/// Smallest curve order whose 2^order grid covers both extents.
[[nodiscard]] std::uint32_t required_order(std::uint64_t nx, std::uint64_t ny);

}  // namespace tlrwse::reorder
