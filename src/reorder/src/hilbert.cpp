#include "tlrwse/reorder/hilbert.hpp"

namespace tlrwse::reorder {

namespace {
// One Hilbert rotation/reflection step (classic Wikipedia formulation).
void rot(std::uint64_t n, std::uint64_t& x, std::uint64_t& y, std::uint64_t rx,
         std::uint64_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      x = n - 1 - x;
      y = n - 1 - y;
    }
    std::swap(x, y);
  }
}
}  // namespace

std::uint64_t hilbert_xy_to_d(std::uint32_t order, std::uint64_t x,
                              std::uint64_t y) {
  std::uint64_t d = 0;
  for (std::uint64_t s = (order == 0) ? 0 : (1ULL << (order - 1)); s > 0;
       s >>= 1) {
    const std::uint64_t rx = (x & s) ? 1 : 0;
    const std::uint64_t ry = (y & s) ? 1 : 0;
    d += s * s * ((3 * rx) ^ ry);
    rot(1ULL << order, x, y, rx, ry);
  }
  return d;
}

std::pair<std::uint64_t, std::uint64_t> hilbert_d_to_xy(std::uint32_t order,
                                                        std::uint64_t d) {
  std::uint64_t x = 0, y = 0;
  std::uint64_t t = d;
  for (std::uint64_t s = 1; s < (1ULL << order); s <<= 1) {
    const std::uint64_t rx = 1 & (t / 2);
    const std::uint64_t ry = 1 & (t ^ rx);
    rot(s, x, y, rx, ry);
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return {x, y};
}

std::uint64_t morton_xy_to_d(std::uint64_t x, std::uint64_t y) {
  auto spread = [](std::uint64_t v) {
    v &= 0xFFFFFFFFULL;
    v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
    v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
    v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
    v = (v | (v << 2)) & 0x3333333333333333ULL;
    v = (v | (v << 1)) & 0x5555555555555555ULL;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

std::uint32_t required_order(std::uint64_t nx, std::uint64_t ny) {
  std::uint32_t order = 0;
  while ((1ULL << order) < nx || (1ULL << order) < ny) ++order;
  return order;
}

}  // namespace tlrwse::reorder
