#include "tlrwse/reorder/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "tlrwse/common/error.hpp"
#include "tlrwse/reorder/hilbert.hpp"

namespace tlrwse::reorder {

std::vector<index_t> ordering_permutation(const std::vector<GridPoint>& points,
                                          Ordering ordering) {
  std::vector<index_t> perm(points.size());
  std::iota(perm.begin(), perm.end(), index_t{0});
  if (ordering == Ordering::kNatural || points.empty()) return perm;

  index_t max_x = 0, max_y = 0;
  for (const auto& p : points) {
    TLRWSE_REQUIRE(p.ix >= 0 && p.iy >= 0, "grid coordinates must be >= 0");
    max_x = std::max(max_x, p.ix);
    max_y = std::max(max_y, p.iy);
  }
  const std::uint32_t order = required_order(
      static_cast<std::uint64_t>(max_x) + 1, static_cast<std::uint64_t>(max_y) + 1);

  std::vector<std::uint64_t> key(points.size());
  for (std::size_t k = 0; k < points.size(); ++k) {
    const auto x = static_cast<std::uint64_t>(points[k].ix);
    const auto y = static_cast<std::uint64_t>(points[k].iy);
    key[k] = (ordering == Ordering::kHilbert) ? hilbert_xy_to_d(order, x, y)
                                              : morton_xy_to_d(x, y);
  }
  std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    return key[static_cast<std::size_t>(a)] < key[static_cast<std::size_t>(b)];
  });
  return perm;
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    const auto p = static_cast<std::size_t>(perm[k]);
    TLRWSE_REQUIRE(p < perm.size(), "permutation entry out of range");
    inv[p] = static_cast<index_t>(k);
  }
  return inv;
}

}  // namespace tlrwse::reorder
