// CGLS (conjugate gradients on the normal equations) — the standard
// alternative to LSQR for least-squares inverse problems. Mathematically
// it generates the same Krylov iterates in exact arithmetic; LSQR is more
// robust in floating point (the paper uses LSQR), so CGLS serves here as a
// cross-check solver and an ablation subject.
#pragma once

#include <span>
#include <vector>

#include "tlrwse/mdc/linear_operator.hpp"

namespace tlrwse::mdd {

struct CglsConfig {
  int max_iters = 30;
  double tol = 1e-8;  // relative ||A^T r|| stopping tolerance
};

struct CglsResult {
  std::vector<float> x;
  int iterations = 0;
  double residual_norm = 0.0;
  std::vector<double> residual_history;
};

/// Solves min_x ||A x - b|| from a zero initial guess.
[[nodiscard]] CglsResult cgls_solve(const mdc::LinearOperator& A,
                                    std::span<const float> b,
                                    const CglsConfig& cfg = {});

}  // namespace tlrwse::mdd
