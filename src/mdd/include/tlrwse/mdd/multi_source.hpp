// Multi-virtual-source MDD: the production pattern of Sec. 6.4, where a
// line (or grid) of virtual sources is deconvolved in an embarrassingly
// parallel fashion ("177 x 4 = 708 NVIDIA V100 GPUs" in the paper; OpenMP
// threads here). Each source shares the same MDC operator — exactly why
// the batched TLR-MMM of Sec. 8 is the natural next step.
#pragma once

#include <vector>

#include "tlrwse/mdd/mdd_solver.hpp"

namespace tlrwse::mdd {

struct MultiSourceResult {
  std::vector<index_t> sources;          // virtual-source indices solved
  std::vector<LsqrResult> solutions;     // one per source
  std::vector<double> nmse_vs_truth;     // scored against the known truth
  double mean_nmse = 0.0;
  double worst_nmse = 0.0;
};

/// Solves MDD for every virtual source in `sources`, in parallel across
/// OpenMP threads, and scores each against the dataset's exact local
/// reflectivity.
[[nodiscard]] MultiSourceResult solve_mdd_multi(
    const seismic::SeismicDataset& data, const mdc::MdcOperator& op,
    const std::vector<index_t>& sources, const LsqrConfig& lsqr);

/// Convenience: a crossline of `count` consecutive virtual sources starting
/// at `first` (clamped to the receiver range).
[[nodiscard]] std::vector<index_t> virtual_source_line(
    const seismic::SeismicDataset& data, index_t first, index_t count);

}  // namespace tlrwse::mdd
