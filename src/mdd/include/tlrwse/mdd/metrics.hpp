// Quality metrics for MDD solutions (NMSE and friends).
#pragma once

#include <span>

namespace tlrwse::mdd {

/// Normalised mean squared error: ||est - ref||^2 / ||ref||^2.
[[nodiscard]] double nmse(std::span<const float> est,
                          std::span<const float> ref);

/// Percentage change of NMSE of `est` relative to the NMSE of `baseline`
/// (both against the same reference) — the metric of Fig. 12 (top, black).
[[nodiscard]] double nmse_change_percent(double nmse_est, double nmse_baseline);

/// Energy (sum of squares) of a signal window.
[[nodiscard]] double energy(std::span<const float> x);

/// Pearson correlation between two equally-sized signals.
[[nodiscard]] double correlation(std::span<const float> a,
                                 std::span<const float> b);

}  // namespace tlrwse::mdd
