// Physics-based preconditioning of time-domain MDD.
//
// Vargas et al. [43] (cited in the paper as the motivation for solving all
// frequencies jointly) stabilise time-domain MDD with a "physically
// reliable" preconditioner: the local reflectivity is gated to the times
// where subsurface arrivals are possible — nothing can arrive before the
// two-way path to the shallowest reflector. Solving
//     min_z || A M z - b ||,   x = M z
// with the gate M restricts the search space, suppresses acausal noise,
// and typically improves the solution within the same iteration budget.
#pragma once

#include <memory>
#include <vector>

#include "tlrwse/mdd/mdd_solver.hpp"

namespace tlrwse::mdd {

struct GateConfig {
  double margin_sec = 0.10;  // opens before the first arrival (covers the
                             // zero-phase wavelet precursor)
  double taper_sec = 0.03;   // cosine ramp length at the gate edge
};

/// Builds the causality gate for virtual source v: weights (nt x nR,
/// trace-major like the solution vector) that are 0 before the earliest
/// physical arrival at each receiver and 1 after, with a cosine ramp.
[[nodiscard]] std::vector<float> causality_gate(
    const seismic::SeismicDataset& data, index_t v, const GateConfig& cfg = {});

struct GatedResult {
  LsqrResult inner;       // the solve in gated coordinates (z)
  std::vector<float> x;   // the physical solution M z
};

/// Runs LSQR on the gated operator A*M and returns the physical solution.
[[nodiscard]] GatedResult solve_mdd_gated(const mdc::MdcOperator& op,
                                          std::span<const float> rhs,
                                          std::span<const float> gate,
                                          const LsqrConfig& cfg);

}  // namespace tlrwse::mdd
