// End-to-end Multi-Dimensional Deconvolution driver.
//
// Assembles, for a chosen virtual source on the receiver datum, the MDC
// operator (dense or TLR-compressed kernels), the observed upgoing data as
// the right-hand side, and the known true local reflectivity for scoring —
// then inverts with LSQR (paper Sec. 6.2: 30 iterations) or applies the
// adjoint (cross-correlation) for the Fig. 11a comparison.
#pragma once

#include <memory>
#include <vector>

#include "tlrwse/mdc/mdc_operator.hpp"
#include "tlrwse/mdd/lsqr.hpp"
#include "tlrwse/seismic/modeling.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"

namespace tlrwse::mdd {

enum class KernelBackend {
  kDense,
  kTlr3Phase,
  kTlrFused,
  kTlrRealSplit,
  // Shared-basis TLR: tile bases fit once across the whole frequency band,
  // per-frequency cores only (tlr::SharedBasisStackedTlr).
  kTlrSharedBasis,
};

struct MddConfig {
  KernelBackend backend = KernelBackend::kTlrFused;
  tlr::CompressionConfig compression;  // used by the TLR backends
  LsqrConfig lsqr;
};

/// Builds the MDC operator from the dataset's downgoing kernels. For TLR
/// backends each frequency matrix is compressed with the given config; the
/// surface element dA of the MDC integral is folded into the kernels.
[[nodiscard]] std::unique_ptr<mdc::MdcOperator> make_mdc_operator(
    const seismic::SeismicDataset& data, KernelBackend backend,
    const tlr::CompressionConfig& compression);

/// Average compression ratio of the kernels actually built (1.0 for dense).
/// Measured on the same compressed tiles the operator uses.
struct KernelStats {
  double compressed_bytes = 0.0;
  double dense_bytes = 0.0;
  [[nodiscard]] double ratio() const {
    return compressed_bytes > 0.0 ? dense_bytes / compressed_bytes : 1.0;
  }
};
[[nodiscard]] KernelStats kernel_compression_stats(
    const seismic::SeismicDataset& data,
    const tlr::CompressionConfig& compression);

/// Observed data b for virtual source v: the upgoing wavefield at v from
/// every source, as time traces (nt x nS column-major).
[[nodiscard]] std::vector<float> virtual_source_rhs(
    const seismic::SeismicDataset& data, index_t v);

/// Ground-truth local reflectivity for virtual source v (nt x nR traces).
[[nodiscard]] std::vector<float> true_reflectivity_traces(
    const seismic::SeismicDataset& data, index_t v);

/// Cross-correlation (adjoint) estimate x = A^T b — Fig. 11a.
[[nodiscard]] std::vector<float> adjoint_reflectivity(
    const mdc::MdcOperator& op, std::span<const float> rhs);

/// Batched cross-correlation: `rhs_batch` holds nrhs right-hand sides back
/// to back (op.rows() floats each); the result holds the nrhs estimates
/// (op.cols() each), every one bitwise identical to the single-RHS call.
/// Runs one multi-RHS sweep over the operator per frequency, so coalesced
/// serve requests pay the kernel-data traffic once.
[[nodiscard]] std::vector<float> adjoint_reflectivity_batch(
    const mdc::MdcOperator& op, std::span<const float> rhs_batch,
    index_t nrhs);

/// LSQR inversion — Fig. 11b/c.
[[nodiscard]] LsqrResult solve_mdd(const mdc::MdcOperator& op,
                                   std::span<const float> rhs,
                                   const LsqrConfig& cfg);

}  // namespace tlrwse::mdd
