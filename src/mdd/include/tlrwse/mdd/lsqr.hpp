// LSQR (Paige & Saunders, 1982) for least-squares problems min ||A x - b||.
//
// The paper solves the MDD inverse problem "via 30 iterations of LSQR"
// (Sec. 6.2). This implementation follows the original algorithm: Golub-
// Kahan bidiagonalisation with plane rotations, optional damping, and
// standard stopping rules on the residual estimates.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "tlrwse/mdc/linear_operator.hpp"

namespace tlrwse::mdd {

struct LsqrConfig {
  int max_iters = 30;     // the paper's iteration budget
  double atol = 1e-8;     // relative A^T r tolerance
  double btol = 1e-8;     // relative residual tolerance
  double damp = 0.0;      // Tikhonov damping (lambda)
  bool verbose = false;
  /// Optional cooperative-abort hook, polled once per iteration (after the
  /// x update, so the returned iterate is always consistent). The serving
  /// layer uses it to enforce per-request deadlines mid-solve; it never
  /// perturbs the arithmetic of iterations that do run.
  std::function<bool()> should_stop;
};

struct LsqrResult {
  std::vector<float> x;
  int iterations = 0;
  double residual_norm = 0.0;      // ||b - A x||
  double normal_residual = 0.0;    // ||A^T (b - A x)||
  std::vector<double> residual_history;
  enum class Stop { kMaxIters, kResidualTol, kNormalTol, kAborted } stop =
      Stop::kMaxIters;
};

/// Solves min_x ||A x - b||_2^2 + damp^2 ||x||_2^2 from a zero initial guess.
[[nodiscard]] LsqrResult lsqr_solve(const mdc::LinearOperator& A,
                                    std::span<const float> b,
                                    const LsqrConfig& cfg = {});

}  // namespace tlrwse::mdd
