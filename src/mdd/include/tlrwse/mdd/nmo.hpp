// Normal-moveout (NMO) correction and stacking.
//
// The paper's Fig. 13 last panel applies "a standard post-processing flow
// ... to stack all of those traces corresponding to a single source-to-
// receiver midpoint; this is required because the zero-offset trace is
// usually noisy". NMO maps each offset trace onto its zero-offset time via
// t0 = sqrt(t^2 - (h/v)^2) (hyperbolic moveout at stacking velocity v) and
// averages traces sharing a midpoint, boosting signal-to-noise by ~sqrt(n).
#pragma once

#include <span>
#include <vector>

#include "tlrwse/common/types.hpp"

namespace tlrwse::mdd {

struct NmoConfig {
  double velocity = 2200.0;   // stacking velocity (m/s)
  double dt = 0.004;          // temporal sampling (s)
  double stretch_mute = 1.5;  // mute samples stretched by more than this
};

/// Applies NMO correction to one trace recorded at offset `offset_m`:
/// output sample at zero-offset time t0 is interpolated from the input at
/// t = sqrt(t0^2 + (offset/v)^2). Samples whose NMO stretch exceeds the
/// mute factor are zeroed.
[[nodiscard]] std::vector<float> nmo_correct(std::span<const float> trace,
                                             double offset_m,
                                             const NmoConfig& cfg);

/// NMO-corrects and stacks a gather: traces[k] was recorded at offsets[k];
/// all share a midpoint. Returns the mean of the corrected traces.
[[nodiscard]] std::vector<float> nmo_stack(
    const std::vector<std::vector<float>>& traces,
    const std::vector<double>& offsets, const NmoConfig& cfg);

}  // namespace tlrwse::mdd
