#include "tlrwse/mdd/lsqr.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/mdc/cancellation.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::mdd {

namespace {

double norm2(std::span<const float> v) {
  double sum = 0.0;
  for (float e : v) sum += static_cast<double>(e) * static_cast<double>(e);
  return std::sqrt(sum);
}

void scale(std::span<float> v, double a) {
  for (float& e : v) e = static_cast<float>(e * a);
}

}  // namespace

LsqrResult lsqr_solve(const mdc::LinearOperator& A, std::span<const float> b,
                      const LsqrConfig& cfg) {
  TLRWSE_TRACE_SPAN("mdd.lsqr", "mdd");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
  static obs::Counter& solves = reg.counter("mdd.lsqr.solves");
  static obs::Counter& iterations = reg.counter("mdd.lsqr.iterations");
  static obs::Histogram& iter_s = reg.histogram("mdd.lsqr.iter_s");
  solves.add();
  TLRWSE_REQUIRE(static_cast<index_t>(b.size()) == A.rows(), "b size");
  const auto m = static_cast<std::size_t>(A.rows());
  const auto n = static_cast<std::size_t>(A.cols());

  LsqrResult out;
  out.x.assign(n, 0.0f);
  // All solver state is allocated here, before the iteration loop; the
  // operator pools its own MVM workspaces, so iterations are allocation-free.
  out.residual_history.reserve(static_cast<std::size_t>(
      std::max(cfg.max_iters, 0) + 1));

  // Golub-Kahan initialisation: beta u = b; alpha v = A^T u.
  std::vector<float> u(b.begin(), b.end());
  double beta = norm2(u);
  std::vector<float> v(n, 0.0f);
  double alpha = 0.0;
  if (beta > 0.0) {
    scale(u, 1.0 / beta);
    // An operator-level cancellation (deadline hit between per-frequency
    // MVMs) aborts the solve before the first iterate: x stays zero, which
    // is the consistent iterate at this point.
    try {
      A.apply_adjoint(u, v);
    } catch (const mdc::CancelledError&) {
      out.stop = LsqrResult::Stop::kAborted;
      out.residual_history.push_back(beta);
      out.residual_norm = beta;
      return out;
    }
    alpha = norm2(v);
    if (alpha > 0.0) scale(v, 1.0 / alpha);
  }
  std::vector<float> w(v.begin(), v.end());

  double phibar = beta;
  double rhobar = alpha;
  const double bnorm = beta;
  double anorm = 0.0;   // running estimate of ||A||_F
  double rnorm = beta;
  double arnorm = alpha * beta;

  out.residual_history.push_back(rnorm);
  if (arnorm == 0.0) {
    out.stop = LsqrResult::Stop::kNormalTol;
    return out;  // b is zero or already orthogonal to range(A)
  }

  std::vector<float> tmp_m(m), tmp_n(n);
  const double damp = cfg.damp;

  int it = 0;
  for (; it < cfg.max_iters; ++it) {
    TLRWSE_TRACE_SPAN("mdd.lsqr.iter", "mdd");
    WallTimer iter_timer;
    iterations.add();
    // A cancelled MVM leaves this iteration's state untouched — x still
    // holds the previous consistent iterate, so abort cleanly.
    try {
      // Bidiagonalisation step: beta u = A v - alpha u.
      A.apply(v, tmp_m);
      for (std::size_t i = 0; i < m; ++i) {
        u[i] = tmp_m[i] - static_cast<float>(alpha) * u[i];
      }
      beta = norm2(u);
      if (beta > 0.0) {
        scale(u, 1.0 / beta);
        // alpha v = A^T u - beta v.
        A.apply_adjoint(u, tmp_n);
        for (std::size_t i = 0; i < n; ++i) {
          v[i] = tmp_n[i] - static_cast<float>(beta) * v[i];
        }
        alpha = norm2(v);
        if (alpha > 0.0) scale(v, 1.0 / alpha);
      }
    } catch (const mdc::CancelledError&) {
      out.stop = LsqrResult::Stop::kAborted;
      break;
    }
    anorm = std::sqrt(anorm * anorm + alpha * alpha + beta * beta +
                      damp * damp);

    // Eliminate the damping parameter with a first rotation.
    double rhobar1 = rhobar;
    double phibar1 = phibar;
    if (damp > 0.0) {
      rhobar1 = std::sqrt(rhobar * rhobar + damp * damp);
      const double c1 = rhobar / rhobar1;
      phibar1 = c1 * phibar;
    }

    // Plane rotation to eliminate beta of the lower bidiagonal.
    const double rho = std::sqrt(rhobar1 * rhobar1 + beta * beta);
    const double c = rhobar1 / rho;
    const double s = beta / rho;
    const double theta = s * alpha;
    rhobar = -c * alpha;
    const double phi = c * phibar1;
    phibar = s * phibar1;

    // Update x and the search direction w.
    const double t1 = phi / rho;
    const double t2 = -theta / rho;
    for (std::size_t i = 0; i < n; ++i) {
      out.x[i] += static_cast<float>(t1) * w[i];
      w[i] = v[i] + static_cast<float>(t2) * w[i];
    }

    rnorm = phibar;
    arnorm = alpha * std::abs(s * phi);
    out.residual_history.push_back(rnorm);
    iter_s.record(iter_timer.seconds());
    TLRWSE_TRACE_COUNTER("mdd.lsqr.residual", rnorm);
    if (cfg.verbose) {
      std::printf("lsqr it %3d  |r| = %.4e  |A'r| = %.4e\n", it + 1, rnorm,
                  arnorm);
    }

    // Stopping rules (Paige-Saunders tests 1 and 2).
    if (rnorm <= cfg.btol * bnorm) {
      out.stop = LsqrResult::Stop::kResidualTol;
      ++it;
      break;
    }
    if (arnorm <= cfg.atol * anorm * std::max(rnorm, 1e-300)) {
      out.stop = LsqrResult::Stop::kNormalTol;
      ++it;
      break;
    }
    if (cfg.should_stop && cfg.should_stop()) {
      out.stop = LsqrResult::Stop::kAborted;
      ++it;
      break;
    }
  }

  out.iterations = it;
  out.residual_norm = rnorm;
  out.normal_residual = arnorm;
  return out;
}

}  // namespace tlrwse::mdd
