#include "tlrwse/mdd/cgls.hpp"

#include <algorithm>
#include <cmath>

#include "tlrwse/common/error.hpp"

namespace tlrwse::mdd {

namespace {
double norm2sq(std::span<const float> v) {
  double s = 0.0;
  for (float e : v) s += static_cast<double>(e) * static_cast<double>(e);
  return s;
}
}  // namespace

CglsResult cgls_solve(const mdc::LinearOperator& A, std::span<const float> b,
                      const CglsConfig& cfg) {
  TLRWSE_REQUIRE(static_cast<index_t>(b.size()) == A.rows(), "b size");
  const auto m = static_cast<std::size_t>(A.rows());
  const auto n = static_cast<std::size_t>(A.cols());

  CglsResult out;
  out.x.assign(n, 0.0f);
  // Allocate all solver state up front; with the operator pooling its MVM
  // workspaces, the iteration loop then never touches the heap.
  out.residual_history.reserve(static_cast<std::size_t>(
      std::max(cfg.max_iters, 0) + 1));
  std::vector<float> r(b.begin(), b.end());  // r = b - A x (x = 0)
  std::vector<float> s(n), p(n), q(m);
  A.apply_adjoint(r, std::span<float>(s));
  p = s;
  double gamma = norm2sq(s);
  const double gamma0 = gamma;
  out.residual_history.push_back(std::sqrt(norm2sq(r)));
  if (gamma0 == 0.0) return out;

  int it = 0;
  for (; it < cfg.max_iters; ++it) {
    A.apply(p, std::span<float>(q));
    const double qq = norm2sq(q);
    if (qq == 0.0) break;
    const double alpha = gamma / qq;
    for (std::size_t i = 0; i < n; ++i) {
      out.x[i] += static_cast<float>(alpha) * p[i];
    }
    for (std::size_t i = 0; i < m; ++i) {
      r[i] -= static_cast<float>(alpha) * q[i];
    }
    A.apply_adjoint(r, std::span<float>(s));
    const double gamma_new = norm2sq(s);
    out.residual_history.push_back(std::sqrt(norm2sq(r)));
    if (std::sqrt(gamma_new) <= cfg.tol * std::sqrt(gamma0)) {
      ++it;
      break;
    }
    const double beta = gamma_new / gamma;
    gamma = gamma_new;
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = s[i] + static_cast<float>(beta) * p[i];
    }
  }
  out.iterations = it;
  out.residual_norm = std::sqrt(norm2sq(r));
  return out;
}

}  // namespace tlrwse::mdd
