#include "tlrwse/mdd/multi_source.hpp"

#include <algorithm>

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/tsan.hpp"
#include "tlrwse/mdd/metrics.hpp"

namespace tlrwse::mdd {

MultiSourceResult solve_mdd_multi(const seismic::SeismicDataset& data,
                                  const mdc::MdcOperator& op,
                                  const std::vector<index_t>& sources,
                                  const LsqrConfig& lsqr) {
  TLRWSE_REQUIRE(!sources.empty(), "no virtual sources given");
  MultiSourceResult out;
  out.sources = sources;
  out.solutions.resize(sources.size());
  out.nmse_vs_truth.resize(sources.size());

  TLRWSE_TSAN_RELEASE(&out);
#pragma omp parallel
  {
    TLRWSE_TSAN_ACQUIRE(&out);
#pragma omp for schedule(dynamic)
    for (std::size_t k = 0; k < sources.size(); ++k) {
      const index_t v = sources[k];
      const auto rhs = virtual_source_rhs(data, v);
      const auto truth = true_reflectivity_traces(data, v);
      out.solutions[k] = lsqr_solve(op, rhs, lsqr);
      out.nmse_vs_truth[k] = nmse(out.solutions[k].x, truth);
    }
    TLRWSE_TSAN_RELEASE(&out);
  }
  TLRWSE_TSAN_ACQUIRE(&out);

  double sum = 0.0;
  out.worst_nmse = 0.0;
  for (double n : out.nmse_vs_truth) {
    sum += n;
    out.worst_nmse = std::max(out.worst_nmse, n);
  }
  out.mean_nmse = sum / static_cast<double>(sources.size());
  return out;
}

std::vector<index_t> virtual_source_line(const seismic::SeismicDataset& data,
                                         index_t first, index_t count) {
  TLRWSE_REQUIRE(count >= 1, "count must be positive");
  std::vector<index_t> line;
  for (index_t k = 0; k < count; ++k) {
    const index_t v = first + k;
    if (v >= 0 && v < data.num_receivers()) line.push_back(v);
  }
  TLRWSE_REQUIRE(!line.empty(), "line outside the receiver range");
  return line;
}

}  // namespace tlrwse::mdd
