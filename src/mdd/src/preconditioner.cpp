#include "tlrwse/mdd/preconditioner.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "tlrwse/common/error.hpp"
#include "tlrwse/mdc/combinators.hpp"

namespace tlrwse::mdd {

std::vector<float> causality_gate(const seismic::SeismicDataset& data,
                                  index_t v, const GateConfig& cfg) {
  TLRWSE_REQUIRE(v >= 0 && v < data.num_receivers(), "virtual source index");
  const index_t nt = data.config.nt;
  const index_t nr = data.num_receivers();
  const auto& model = data.config.model;
  TLRWSE_REQUIRE(!model.interfaces.empty(), "no reflectors in the model");

  // Shallowest possible reflection point below the datum across the
  // survey: conservative global minimum of the interface depth field.
  double z_min = 1e30;
  for (const auto& layer : model.interfaces) {
    // Sample the corners and centre of the receiver patch.
    const auto& g = data.config.geometry.receivers;
    const double x1 = g.x0 + static_cast<double>(g.nx - 1) * g.dx;
    const double y1 = g.y0 + static_cast<double>(g.ny - 1) * g.dy;
    for (const auto& [px, py] :
         {std::pair{g.x0, g.y0}, std::pair{x1, g.y0}, std::pair{g.x0, y1},
          std::pair{x1, y1}, std::pair{(g.x0 + x1) / 2, (g.y0 + y1) / 2}}) {
      z_min = std::min(z_min, layer.depth_at(px, py) - model.water_depth);
    }
  }
  z_min = std::max(z_min, 0.0);

  const auto& xv = data.receiver_pos[static_cast<std::size_t>(v)];
  std::vector<float> gate(static_cast<std::size_t>(nt * nr), 0.0f);
  for (index_t r = 0; r < nr; ++r) {
    const auto& xr = data.receiver_pos[static_cast<std::size_t>(r)];
    const double h = seismic::horizontal_distance(xv, xr);
    const double t_first =
        2.0 * std::sqrt(0.25 * h * h + z_min * z_min) /
        model.sediment_velocity;
    const double t_open = std::max(t_first - cfg.margin_sec, 0.0);
    for (index_t t = 0; t < nt; ++t) {
      const double time = static_cast<double>(t) * data.config.dt;
      float w = 0.0f;
      if (time >= t_open + cfg.taper_sec) {
        w = 1.0f;
      } else if (time > t_open && cfg.taper_sec > 0.0) {
        const double s = (time - t_open) / cfg.taper_sec;
        w = static_cast<float>(
            0.5 * (1.0 - std::cos(std::numbers::pi_v<double> * s)));
      }
      gate[static_cast<std::size_t>(r * nt + t)] = w;
    }
  }
  return gate;
}

GatedResult solve_mdd_gated(const mdc::MdcOperator& op,
                            std::span<const float> rhs,
                            std::span<const float> gate,
                            const LsqrConfig& cfg) {
  TLRWSE_REQUIRE(static_cast<index_t>(gate.size()) == op.cols(),
                 "gate size must match the model space");
  // Non-owning view of `op` inside the combinator chain.
  const std::shared_ptr<const mdc::LinearOperator> op_view(
      &op, [](const mdc::LinearOperator*) {});
  auto mask = std::make_shared<mdc::DiagonalOperator>(
      std::vector<float>(gate.begin(), gate.end()));
  const auto gated = mdc::chain(op_view, mask);

  GatedResult out;
  out.inner = lsqr_solve(*gated, rhs, cfg);
  out.x.resize(out.inner.x.size());
  for (std::size_t i = 0; i < out.x.size(); ++i) {
    out.x[i] = gate[i] * out.inner.x[i];
  }
  return out;
}

}  // namespace tlrwse::mdd
