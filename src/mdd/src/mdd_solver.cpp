#include "tlrwse/mdd/mdd_solver.hpp"

#include "tlrwse/common/error.hpp"
#include "tlrwse/tlr/stacked.hpp"

namespace tlrwse::mdd {

namespace {

/// Scales a copy of K by the surface element so the discrete MDC operator
/// matches the continuous integral (P- = P+ R dA).
la::MatrixCF scaled_kernel(const la::MatrixCF& K, double dA) {
  la::MatrixCF out = K;
  const auto s = static_cast<float>(dA);
  for (index_t j = 0; j < out.cols(); ++j) {
    cf32* col = out.col(j);
    for (index_t i = 0; i < out.rows(); ++i) col[i] *= s;
  }
  return out;
}

}  // namespace

std::unique_ptr<mdc::MdcOperator> make_mdc_operator(
    const seismic::SeismicDataset& data, KernelBackend backend,
    const tlr::CompressionConfig& compression) {
  const double dA = data.surface_element();
  if (backend == KernelBackend::kTlrSharedBasis) {
    // One basis fit across the whole band, per-frequency cores only.
    std::vector<la::MatrixCF> band;
    band.reserve(static_cast<std::size_t>(data.num_freqs()));
    for (index_t q = 0; q < data.num_freqs(); ++q) {
      band.push_back(
          scaled_kernel(data.p_down[static_cast<std::size_t>(q)], dA));
    }
    tlr::SharedBasisConfig sb;
    sb.nb = compression.nb;
    sb.acc = compression.acc;
    sb.max_rank = compression.max_rank;
    auto shared = std::make_shared<const tlr::SharedBasisStackedTlr<cf32>>(
        tlr::SharedBasisStackedTlr<cf32>::fit(
            std::span<const la::MatrixCF>(band), sb));
    return std::make_unique<mdc::MdcOperator>(
        data.config.nt, data.freq_bins,
        mdc::make_shared_basis_kernels(std::move(shared)));
  }
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  kernels.reserve(static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    la::MatrixCF K = scaled_kernel(data.p_down[static_cast<std::size_t>(q)], dA);
    if (backend == KernelBackend::kDense) {
      kernels.push_back(std::make_unique<mdc::DenseMvm>(std::move(K)));
      continue;
    }
    const auto tlr_mat = tlr::compress_tlr(K, compression);
    tlr::StackedTlr<cf32> stacks(tlr_mat);
    const mdc::TlrKernel kind =
        (backend == KernelBackend::kTlr3Phase)  ? mdc::TlrKernel::kThreePhase
        : (backend == KernelBackend::kTlrFused) ? mdc::TlrKernel::kFused
                                                : mdc::TlrKernel::kRealSplit;
    kernels.push_back(std::make_unique<mdc::TlrMvm>(std::move(stacks), kind));
  }
  return std::make_unique<mdc::MdcOperator>(data.config.nt, data.freq_bins,
                                            std::move(kernels));
}

KernelStats kernel_compression_stats(
    const seismic::SeismicDataset& data,
    const tlr::CompressionConfig& compression) {
  KernelStats stats;
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    const auto tlr_mat =
        tlr::compress_tlr(data.p_down[static_cast<std::size_t>(q)], compression);
    stats.compressed_bytes += tlr_mat.compressed_bytes();
    stats.dense_bytes += tlr_mat.dense_bytes();
  }
  return stats;
}

std::vector<float> virtual_source_rhs(const seismic::SeismicDataset& data,
                                      index_t v) {
  TLRWSE_REQUIRE(v >= 0 && v < data.num_receivers(), "virtual source index");
  const index_t ns = data.num_sources();
  std::vector<std::vector<cf32>> per_freq(
      static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    const auto& pu = data.p_up[static_cast<std::size_t>(q)];
    auto& vals = per_freq[static_cast<std::size_t>(q)];
    vals.resize(static_cast<std::size_t>(ns));
    for (index_t s = 0; s < ns; ++s) {
      vals[static_cast<std::size_t>(s)] = pu(s, v);
    }
  }
  return seismic::band_to_time(data, per_freq, ns);
}

std::vector<float> true_reflectivity_traces(const seismic::SeismicDataset& data,
                                            index_t v) {
  TLRWSE_REQUIRE(v >= 0 && v < data.num_receivers(), "virtual source index");
  const index_t nr = data.num_receivers();
  std::vector<std::vector<cf32>> per_freq(
      static_cast<std::size_t>(data.num_freqs()));
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    const auto& R = data.reflectivity[static_cast<std::size_t>(q)];
    auto& vals = per_freq[static_cast<std::size_t>(q)];
    vals.resize(static_cast<std::size_t>(nr));
    for (index_t r = 0; r < nr; ++r) {
      vals[static_cast<std::size_t>(r)] = R(v, r);
    }
  }
  return seismic::band_to_time(data, per_freq, nr);
}

std::vector<float> adjoint_reflectivity(const mdc::MdcOperator& op,
                                        std::span<const float> rhs) {
  std::vector<float> x(static_cast<std::size_t>(op.cols()));
  op.apply_adjoint(rhs, std::span<float>(x));
  return x;
}

std::vector<float> adjoint_reflectivity_batch(const mdc::MdcOperator& op,
                                              std::span<const float> rhs_batch,
                                              index_t nrhs) {
  std::vector<float> x(static_cast<std::size_t>(op.cols() * nrhs));
  op.apply_adjoint_batch(rhs_batch, std::span<float>(x), nrhs);
  return x;
}

LsqrResult solve_mdd(const mdc::MdcOperator& op, std::span<const float> rhs,
                     const LsqrConfig& cfg) {
  return lsqr_solve(op, rhs, cfg);
}

}  // namespace tlrwse::mdd
