#include "tlrwse/mdd/metrics.hpp"

#include <cmath>

#include "tlrwse/common/error.hpp"

namespace tlrwse::mdd {

double nmse(std::span<const float> est, std::span<const float> ref) {
  TLRWSE_REQUIRE(est.size() == ref.size(), "nmse: size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    const double d = static_cast<double>(est[i]) - static_cast<double>(ref[i]);
    num += d * d;
    den += static_cast<double>(ref[i]) * static_cast<double>(ref[i]);
  }
  return den > 0.0 ? num / den : 0.0;
}

double nmse_change_percent(double nmse_est, double nmse_baseline) {
  if (nmse_baseline <= 0.0) return 0.0;
  return 100.0 * (nmse_est - nmse_baseline) / nmse_baseline;
}

double energy(std::span<const float> x) {
  double sum = 0.0;
  for (float v : x) sum += static_cast<double>(v) * static_cast<double>(v);
  return sum;
}

double correlation(std::span<const float> a, std::span<const float> b) {
  TLRWSE_REQUIRE(a.size() == b.size() && !a.empty(), "correlation: sizes");
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(a.size());
  mb /= static_cast<double>(b.size());
  double num = 0.0, da = 0.0, db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  const double den = std::sqrt(da * db);
  return den > 0.0 ? num / den : 0.0;
}

}  // namespace tlrwse::mdd
