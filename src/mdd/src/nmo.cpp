#include "tlrwse/mdd/nmo.hpp"

#include <cmath>

#include "tlrwse/common/error.hpp"

namespace tlrwse::mdd {

std::vector<float> nmo_correct(std::span<const float> trace, double offset_m,
                               const NmoConfig& cfg) {
  TLRWSE_REQUIRE(cfg.velocity > 0.0 && cfg.dt > 0.0, "bad NMO config");
  const auto nt = static_cast<index_t>(trace.size());
  std::vector<float> out(trace.size(), 0.0f);
  const double shift2 = (offset_m / cfg.velocity) * (offset_m / cfg.velocity);

  for (index_t k = 0; k < nt; ++k) {
    const double t0 = static_cast<double>(k) * cfg.dt;
    const double t = std::sqrt(t0 * t0 + shift2);
    // NMO stretch factor dt/dt0 = t0 / t (inverse); mute strongly
    // stretched shallow samples.
    if (t0 > 0.0 && t / t0 > cfg.stretch_mute) continue;
    if (t0 == 0.0 && shift2 > 0.0) continue;
    const double s = t / cfg.dt;
    const auto i0 = static_cast<index_t>(s);
    if (i0 + 1 >= nt) continue;
    const auto frac = static_cast<float>(s - static_cast<double>(i0));
    out[static_cast<std::size_t>(k)] =
        (1.0f - frac) * trace[static_cast<std::size_t>(i0)] +
        frac * trace[static_cast<std::size_t>(i0 + 1)];
  }
  return out;
}

std::vector<float> nmo_stack(const std::vector<std::vector<float>>& traces,
                             const std::vector<double>& offsets,
                             const NmoConfig& cfg) {
  TLRWSE_REQUIRE(!traces.empty(), "empty gather");
  TLRWSE_REQUIRE(traces.size() == offsets.size(), "offsets/traces mismatch");
  const std::size_t nt = traces.front().size();
  std::vector<float> stack(nt, 0.0f);
  std::vector<int> fold(nt, 0);
  for (std::size_t k = 0; k < traces.size(); ++k) {
    TLRWSE_REQUIRE(traces[k].size() == nt, "ragged gather");
    const auto corrected =
        nmo_correct(std::span<const float>(traces[k]), offsets[k], cfg);
    for (std::size_t t = 0; t < nt; ++t) {
      if (corrected[t] != 0.0f) {
        stack[t] += corrected[t];
        ++fold[t];
      }
    }
  }
  for (std::size_t t = 0; t < nt; ++t) {
    if (fold[t] > 0) stack[t] /= static_cast<float>(fold[t]);
  }
  return stack;
}

}  // namespace tlrwse::mdd
