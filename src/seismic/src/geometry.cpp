#include "tlrwse/seismic/geometry.hpp"

#include <cmath>

#include "tlrwse/common/error.hpp"

namespace tlrwse::seismic {

Position StationGrid::position(index_t k) const {
  TLRWSE_REQUIRE(k >= 0 && k < count(), "station index out of range");
  const index_t iy = k / nx;
  const index_t ix = k % nx;
  return {x0 + static_cast<double>(ix) * dx, y0 + static_cast<double>(iy) * dy,
          depth};
}

std::vector<reorder::GridPoint> StationGrid::grid_points() const {
  std::vector<reorder::GridPoint> pts(static_cast<std::size_t>(count()));
  for (index_t k = 0; k < count(); ++k) {
    pts[static_cast<std::size_t>(k)] = {k % nx, k / nx};
  }
  return pts;
}

AcquisitionGeometry AcquisitionGeometry::paper_scale() {
  AcquisitionGeometry g;
  g.sources = {217, 120, 20.0, 20.0, 0.0, 0.0, 10.0};
  g.receivers = {177, 90, 20.0, 20.0, 400.0, 300.0, 300.0};
  return g;
}

AcquisitionGeometry AcquisitionGeometry::small_scale(index_t nsx, index_t nsy,
                                                     index_t nrx, index_t nry) {
  AcquisitionGeometry g;
  g.sources = {nsx, nsy, 20.0, 20.0, 0.0, 0.0, 10.0};
  // Receiver patch centred under the source patch, on the seafloor.
  const double sx_extent = static_cast<double>(nsx - 1) * 20.0;
  const double sy_extent = static_cast<double>(nsy - 1) * 20.0;
  const double rx_extent = static_cast<double>(nrx - 1) * 20.0;
  const double ry_extent = static_cast<double>(nry - 1) * 20.0;
  g.receivers = {nrx,
                 nry,
                 20.0,
                 20.0,
                 (sx_extent - rx_extent) / 2.0,
                 (sy_extent - ry_extent) / 2.0,
                 300.0};
  return g;
}

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

double horizontal_distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace tlrwse::seismic
