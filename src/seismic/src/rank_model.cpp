#include "tlrwse/seismic/rank_model.hpp"

#include <algorithm>
#include <cmath>

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/units.hpp"

namespace tlrwse::seismic {

namespace {

/// Deterministic per-tile jitter in [0.8, 1.2] from a splitmix64-style hash.
double tile_jitter(std::uint64_t seed, std::uint64_t tile, std::uint64_t freq) {
  std::uint64_t z = seed ^ (tile * 0x9E3779B97F4A7C15ULL) ^
                    (freq * 0xBF58476D1CE4E5B9ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) /
                   static_cast<double>(1ULL << 53);
  return 0.8 + 0.4 * u;
}

/// Diagonal-band weight of tile (i, j) in a mt x nt tile grid.
double diag_weight(index_t i, index_t j, index_t mt, index_t nt, double boost,
                   double sigma) {
  const double u = (mt > 1) ? static_cast<double>(i) / static_cast<double>(mt - 1)
                            : 0.0;
  const double v = (nt > 1) ? static_cast<double>(j) / static_cast<double>(nt - 1)
                            : 0.0;
  const double d = u - v;
  return 1.0 + boost * std::exp(-(d * d) / (sigma * sigma));
}

}  // namespace

double calibrated_total_gb(index_t nb, double acc) {
  struct Entry {
    index_t nb;
    double acc;
    double gb;
  };
  // Fig. 12 (bottom) legend totals.
  static constexpr Entry kTable[] = {
      {25, 1e-4, 110.0}, {25, 3e-4, 67.0}, {25, 5e-4, 59.0}, {25, 7e-4, 57.0},
      {50, 1e-4, 109.0}, {50, 3e-4, 63.0}, {50, 5e-4, 47.0}, {50, 7e-4, 39.0},
      {70, 1e-4, 112.0}, {70, 3e-4, 66.0}, {70, 5e-4, 49.0}, {70, 7e-4, 40.0},
  };
  for (const Entry& e : kTable) {
    if (e.nb == nb && std::abs(e.acc - acc) < 1e-12) return e.gb;
  }
  TLRWSE_REQUIRE(false, "no Fig. 12 calibration for nb=", nb, " acc=", acc);
  return 0.0;
}

RankModel::RankModel(const RankModelConfig& cfg)
    : cfg_(cfg), grid_(cfg.num_sources, cfg.num_receivers, cfg.nb) {
  TLRWSE_REQUIRE(cfg.num_freqs >= 1, "need at least one frequency");
  TLRWSE_REQUIRE(cfg.low_to_high_ratio >= 1.0, "ratio must be >= 1");
  // Normalisation: sum over tiles of (rows + cols) * w_ij, so that a mean
  // rank k-bar yields exactly the target byte size before clamping.
  for (index_t j = 0; j < grid_.nt(); ++j) {
    for (index_t i = 0; i < grid_.mt(); ++i) {
      const double w = diag_weight(i, j, grid_.mt(), grid_.nt(),
                                   cfg_.diag_boost, cfg_.diag_sigma);
      weight_sum_ +=
          static_cast<double>(grid_.tile_rows(i) + grid_.tile_cols(j)) * w;
    }
  }
}

double RankModel::frequency_hz(index_t q) const {
  TLRWSE_REQUIRE(q >= 0 && q < cfg_.num_freqs, "frequency index");
  return cfg_.f_max_hz * static_cast<double>(q + 1) /
         static_cast<double>(cfg_.num_freqs);
}

double RankModel::size_per_matrix_bytes(index_t q) const {
  TLRWSE_REQUIRE(q >= 0 && q < cfg_.num_freqs, "frequency index");
  // The calibrated totals of Fig. 12 are for the paper's 230 frequency
  // matrices; the per-matrix mean is anchored to that count so reduced-
  // frequency configurations keep the same per-matrix statistics.
  constexpr double kPaperFreqCount = 230.0;
  const double mean =
      calibrated_total_gb(cfg_.nb, cfg_.acc) * kGB / kPaperFreqCount;
  // Linear ramp s(q) = s0 + (s1 - s0) * q/(nf-1) with s1/s0 = ratio and
  // mean (s0+s1)/2 equal to the calibrated mean.
  const double r = cfg_.low_to_high_ratio;
  const double s0 = 2.0 * mean / (1.0 + r);
  const double s1 = r * s0;
  const double t = (cfg_.num_freqs > 1)
                       ? static_cast<double>(q) /
                             static_cast<double>(cfg_.num_freqs - 1)
                       : 0.0;
  return s0 + (s1 - s0) * t;
}

std::vector<index_t> RankModel::tile_ranks(index_t q) const {
  const double target = size_per_matrix_bytes(q);
  // Mean rank that reproduces the target size through the weight field.
  const double kbar = target / (sizeof(cf32) * weight_sum_);

  std::vector<index_t> ranks(static_cast<std::size_t>(grid_.num_tiles()));
  for (index_t j = 0; j < grid_.nt(); ++j) {
    for (index_t i = 0; i < grid_.mt(); ++i) {
      const double w = diag_weight(i, j, grid_.mt(), grid_.nt(),
                                   cfg_.diag_boost, cfg_.diag_sigma);
      const double jit = tile_jitter(
          cfg_.seed, static_cast<std::uint64_t>(grid_.tile_index(i, j)),
          static_cast<std::uint64_t>(q));
      const double raw = kbar * w * jit;
      const index_t cap = std::min(grid_.tile_rows(i), grid_.tile_cols(j));
      // Rank 0 = dropped tile: at low frequencies many far-off-diagonal
      // tiles carry negligible energy and compress away entirely. Clamping
      // the floor to 1 instead would inflate the low-frequency totals by
      // several percent and push Table 1 occupancies past 100%.
      const auto k = static_cast<index_t>(std::lround(raw));
      ranks[static_cast<std::size_t>(grid_.tile_index(i, j))] =
          std::clamp<index_t>(k, 0, cap);
    }
  }
  return ranks;
}

double RankModel::actual_bytes(const std::vector<index_t>& ranks) const {
  TLRWSE_REQUIRE(static_cast<index_t>(ranks.size()) == grid_.num_tiles(),
                 "rank field size");
  double bytes = 0.0;
  for (index_t j = 0; j < grid_.nt(); ++j) {
    for (index_t i = 0; i < grid_.mt(); ++i) {
      const auto k = static_cast<double>(
          ranks[static_cast<std::size_t>(grid_.tile_index(i, j))]);
      bytes += static_cast<double>(grid_.tile_rows(i) + grid_.tile_cols(j)) *
               k * sizeof(cf32);
    }
  }
  return bytes;
}

double RankModel::total_bytes() const {
  double total = 0.0;
  for (index_t q = 0; q < cfg_.num_freqs; ++q) {
    total += actual_bytes(tile_ranks(q));
  }
  return total;
}

double RankModel::dense_total_bytes() const {
  return static_cast<double>(cfg_.num_sources) *
         static_cast<double>(cfg_.num_receivers) * sizeof(cf32) *
         static_cast<double>(cfg_.num_freqs);
}

}  // namespace tlrwse::seismic
