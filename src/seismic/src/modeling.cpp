#include "tlrwse/seismic/modeling.hpp"

#include <cmath>
#include <numbers>

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/tsan.hpp"
#include "tlrwse/fft/fft.hpp"
#include "tlrwse/la/blas.hpp"

namespace tlrwse::seismic {

namespace {

constexpr double kPi = std::numbers::pi_v<double>;

/// Monochromatic free-space Green's function with geometric spreading:
/// G(d) = exp(-i*2*pi*f*d/c) / (4*pi*d).
cf64 greens(double dist, double f_hz, double velocity) {
  const double d = std::max(dist, 1.0);  // clamp to avoid the singularity
  const double phase = -2.0 * kPi * f_hz * dist / velocity;
  const double amp = 1.0 / (4.0 * kPi * d);
  return {amp * std::cos(phase), amp * std::sin(phase)};
}

std::vector<Position> permuted_positions(const StationGrid& grid,
                                         const std::vector<index_t>& perm) {
  std::vector<Position> out(perm.size());
  for (std::size_t k = 0; k < perm.size(); ++k) {
    out[k] = grid.position(perm[k]);
  }
  return out;
}

}  // namespace

la::MatrixCF downgoing_matrix(const std::vector<Position>& sources,
                              const std::vector<Position>& receivers,
                              const SubsurfaceModel& model, double f_hz,
                              int water_multiples) {
  const auto ns = static_cast<index_t>(sources.size());
  const auto nr = static_cast<index_t>(receivers.size());
  la::MatrixCF K(ns, nr);

  // Image-source expansion of the water-layer reverberation train: the
  // k-th round trip between seafloor (+r_sf) and free surface (-1) adds
  // 2*d_w of depth and a factor (-r_sf)^k; the free-surface ghost mirrors
  // each image with a factor -1.
  struct Image {
    double depth_offset;  // added to the source depth coordinate
    double coeff;
    bool mirrored;        // ghost image (negated depth)
  };
  std::vector<Image> images;
  double coeff = 1.0;
  for (int k = 0; k <= water_multiples; ++k) {
    const double off = 2.0 * static_cast<double>(k) * model.water_depth;
    images.push_back({off, coeff, false});
    images.push_back({off, -coeff, true});
    coeff *= -model.seafloor_reflectivity;
  }

  TLRWSE_TSAN_RELEASE(&K);
#pragma omp parallel
  {
    TLRWSE_TSAN_ACQUIRE(&K);
#pragma omp for schedule(static)
    for (index_t r = 0; r < nr; ++r) {
      const Position& xr = receivers[static_cast<std::size_t>(r)];
      for (index_t s = 0; s < ns; ++s) {
        const Position& xs = sources[static_cast<std::size_t>(s)];
        const double h = horizontal_distance(xs, xr);
        cf64 acc{};
        for (const Image& im : images) {
          const double zs = im.mirrored ? -(xs.z + im.depth_offset)
                                        : (xs.z + im.depth_offset);
          const double dz = xr.z - zs;
          const double dist = std::sqrt(h * h + dz * dz);
          acc += im.coeff * greens(dist, f_hz, model.water_velocity);
        }
        K(s, r) = static_cast<cf32>(acc);
      }
    }
    TLRWSE_TSAN_RELEASE(&K);
  }
  TLRWSE_TSAN_ACQUIRE(&K);
  return K;
}

la::MatrixCF reflectivity_matrix(const std::vector<Position>& virtual_sources,
                                 const std::vector<Position>& receivers,
                                 const SubsurfaceModel& model, double f_hz) {
  const auto nv = static_cast<index_t>(virtual_sources.size());
  const auto nr = static_cast<index_t>(receivers.size());
  la::MatrixCF R(nv, nr);

  TLRWSE_TSAN_RELEASE(&R);
#pragma omp parallel
  {
    TLRWSE_TSAN_ACQUIRE(&R);
#pragma omp for schedule(static)
    for (index_t r = 0; r < nr; ++r) {
      const Position& xr = receivers[static_cast<std::size_t>(r)];
      for (index_t v = 0; v < nv; ++v) {
        const Position& xv = virtual_sources[static_cast<std::size_t>(v)];
        const double h = horizontal_distance(xv, xr);
        const double mx = 0.5 * (xv.x + xr.x);
        const double my = 0.5 * (xv.y + xr.y);
        cf64 acc{};
        for (const Interface& layer : model.interfaces) {
          // Depth below the receiver datum at the midpoint; straight-ray
          // two-way path through the effective sediment velocity.
          const double z_below = layer.depth_at(mx, my) - model.water_depth;
          if (z_below <= 0.0) continue;
          const double half = std::sqrt(0.25 * h * h + z_below * z_below);
          const double path = 2.0 * half;
          acc += layer.reflectivity *
                 greens(path, f_hz, model.sediment_velocity);
        }
        R(v, r) = static_cast<cf32>(acc);
      }
    }
    TLRWSE_TSAN_RELEASE(&R);
  }
  TLRWSE_TSAN_ACQUIRE(&R);
  return R;
}

SeismicDataset build_dataset(const DatasetConfig& cfg) {
  TLRWSE_REQUIRE(cfg.nt >= 8 && cfg.dt > 0.0, "bad time axis");
  TLRWSE_REQUIRE(cfg.f_min > 0.0 && cfg.f_max > cfg.f_min, "bad band");

  SeismicDataset data;
  data.config = cfg;

  // Station ordering: permute the station lists before synthesis so that
  // the frequency matrices are born in curve order (the paper's Hilbert
  // pre-processing step).
  data.source_perm = reorder::ordering_permutation(
      cfg.geometry.sources.grid_points(), cfg.ordering);
  data.receiver_perm = reorder::ordering_permutation(
      cfg.geometry.receivers.grid_points(), cfg.ordering);
  data.source_pos = permuted_positions(cfg.geometry.sources, data.source_perm);
  data.receiver_pos =
      permuted_positions(cfg.geometry.receivers, data.receiver_perm);

  // Retained band: rfft bins with f_min <= f <= f_max (paper: 230 matrices
  // up to 50 Hz).
  const auto all_freqs = fft::rfft_frequencies(cfg.nt, cfg.dt);
  for (index_t k = 0; k < static_cast<index_t>(all_freqs.size()); ++k) {
    const double f = all_freqs[static_cast<std::size_t>(k)];
    if (f >= cfg.f_min && f <= cfg.f_max) {
      data.freq_bins.push_back(k);
      data.freqs_hz.push_back(f);
    }
  }
  TLRWSE_REQUIRE(!data.freqs_hz.empty(), "empty frequency band");

  const auto wavelet = wavelet_spectrum(cfg.wavelet, data.freqs_hz);
  const double dA = data.surface_element();

  const index_t nf = data.num_freqs();
  data.p_down.resize(static_cast<std::size_t>(nf));
  data.p_up.resize(static_cast<std::size_t>(nf));
  data.reflectivity.resize(static_cast<std::size_t>(nf));

  for (index_t q = 0; q < nf; ++q) {
    const double f = data.freqs_hz[static_cast<std::size_t>(q)];
    la::MatrixCF pd = downgoing_matrix(data.source_pos, data.receiver_pos,
                                       cfg.model, f, cfg.water_multiples);
    // Fold the wavelet spectrum into the downgoing (source-side) field.
    const auto w = static_cast<cf32>(wavelet[static_cast<std::size_t>(q)]);
    for (index_t j = 0; j < pd.cols(); ++j) {
      cf32* col = pd.col(j);
      for (index_t i = 0; i < pd.rows(); ++i) col[i] *= w;
    }
    la::MatrixCF R = reflectivity_matrix(data.receiver_pos, data.receiver_pos,
                                         cfg.model, f);
    // P- = P+ * R * dA: the exact MDC forward model (Eqn. 1 discretised).
    la::MatrixCF pu(pd.rows(), R.cols());
    la::gemm(pd, R, pu, static_cast<cf32>(dA), cf32{});
    data.p_down[static_cast<std::size_t>(q)] = std::move(pd);
    data.p_up[static_cast<std::size_t>(q)] = std::move(pu);
    data.reflectivity[static_cast<std::size_t>(q)] = std::move(R);
  }
  return data;
}

std::vector<float> band_to_time(const SeismicDataset& data,
                                const std::vector<std::vector<cf32>>& values,
                                index_t ntraces) {
  const index_t nt = data.config.nt;
  const index_t nf_full = nt / 2 + 1;
  TLRWSE_REQUIRE(static_cast<index_t>(values.size()) == data.num_freqs(),
                 "band_to_time: frequency count");
  std::vector<cf32> spec(static_cast<std::size_t>(nf_full * ntraces), cf32{});
  for (index_t q = 0; q < data.num_freqs(); ++q) {
    const auto& vals = values[static_cast<std::size_t>(q)];
    TLRWSE_REQUIRE(static_cast<index_t>(vals.size()) == ntraces,
                   "band_to_time: trace count");
    const index_t bin = data.freq_bins[static_cast<std::size_t>(q)];
    for (index_t tr = 0; tr < ntraces; ++tr) {
      spec[static_cast<std::size_t>(tr * nf_full + bin)] =
          vals[static_cast<std::size_t>(tr)];
    }
  }
  std::vector<float> traces(static_cast<std::size_t>(nt * ntraces));
  fft::irfft_batch(std::span<const cf32>(spec), nt, ntraces,
                   std::span<float>(traces));
  return traces;
}

}  // namespace tlrwse::seismic
