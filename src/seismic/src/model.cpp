#include "tlrwse/seismic/model.hpp"

#include <cmath>
#include <numbers>

namespace tlrwse::seismic {

double Interface::depth_at(double x, double y) const {
  double z = depth + dip_x * x + dip_y * y;
  if (thrust_amp != 0.0) {
    z += thrust_amp *
         std::sin(2.0 * std::numbers::pi_v<double> * x / thrust_wavelength_x) *
         std::cos(2.0 * std::numbers::pi_v<double> * y /
                  (1.7 * thrust_wavelength_x));
  }
  return z;
}

SubsurfaceModel SubsurfaceModel::co2_monitor(double saturation) {
  SubsurfaceModel m = overthrust_like();
  // CO2 replacing brine lowers the P-impedance of the storage sand: the
  // top-reservoir reflection weakens (and would eventually flip polarity
  // at full saturation in a real rock-physics model; we stay linear).
  auto& target = m.interfaces.back();
  target.reflectivity *= (1.0 - 0.6 * saturation);
  return m;
}

SubsurfaceModel SubsurfaceModel::overthrust_like() {
  SubsurfaceModel m;
  m.water_velocity = 1500.0;
  m.water_depth = 300.0;
  m.seafloor_reflectivity = 0.35;
  m.sediment_velocity = 2200.0;
  m.interfaces = {
      // Shallow thrusted horizon: strong and rough.
      {700.0, 0.18, 0.03, 0.00, 60.0, 1400.0},
      // Mid horizon with opposite dip.
      {1100.0, 0.12, -0.02, 0.015, 40.0, 1900.0},
      // Deep flat-ish strong reflector (the "target").
      {1600.0, 0.20, 0.005, -0.005, 25.0, 2600.0},
  };
  return m;
}

}  // namespace tlrwse::seismic
