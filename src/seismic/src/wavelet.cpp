#include "tlrwse/seismic/wavelet.hpp"

#include <cmath>
#include <numbers>

#include "tlrwse/common/error.hpp"
#include "tlrwse/fft/fft.hpp"

namespace tlrwse::seismic {

namespace {
constexpr double kPi = std::numbers::pi_v<double>;

double flat_band_amplitude(double f, double f_max, double taper) {
  const double fa = std::abs(f);
  if (fa <= f_max - taper) return 1.0;
  if (fa >= f_max) return 0.0;
  // Half-cosine roll-off over [f_max - taper, f_max].
  const double t = (fa - (f_max - taper)) / taper;
  return 0.5 * (1.0 + std::cos(kPi * t));
}

double ricker_amplitude(double f, double fp) {
  // Ricker spectrum: (f/fp)^2 exp(1 - (f/fp)^2) normalised to peak 1 at fp.
  const double r = f / fp;
  return r * r * std::exp(1.0 - r * r);
}
}  // namespace

std::vector<cf64> wavelet_spectrum(const WaveletConfig& cfg,
                                   const std::vector<double>& freqs_hz) {
  std::vector<cf64> w(freqs_hz.size());
  for (std::size_t k = 0; k < freqs_hz.size(); ++k) {
    const double f = freqs_hz[k];
    const double a = (cfg.kind == WaveletKind::kFlatBand)
                         ? flat_band_amplitude(f, cfg.f_max, cfg.taper_hz)
                         : ricker_amplitude(f, cfg.peak_hz);
    w[k] = cf64{a, 0.0};
  }
  return w;
}

std::vector<double> wavelet_time(const WaveletConfig& cfg, index_t nt,
                                 double dt) {
  TLRWSE_REQUIRE(nt >= 2 && dt > 0.0, "bad wavelet time grid");
  const auto freqs = fft::rfft_frequencies(nt, dt);
  auto spec = wavelet_spectrum(cfg, freqs);
  // Linear phase for a centre shift of nt/2 samples so the zero-phase
  // wavelet appears in the middle of the window.
  const double shift = static_cast<double>(nt / 2) * dt;
  for (std::size_t k = 0; k < spec.size(); ++k) {
    const double ang = -2.0 * kPi * freqs[k] * shift;
    spec[k] *= cf64{std::cos(ang), std::sin(ang)};
  }
  return fft::irfft(spec, nt);
}

}  // namespace tlrwse::seismic
