// Subsurface model: water column + layered/overthrust-style interfaces.
//
// The paper uses the SEG/EAGE Overthrust model with a 300 m water column
// (Sec. 6.1). We cannot ship that dataset, so the substitute is a layered
// medium with laterally perturbed ("thrusted") interfaces below the seafloor
// datum: each interface contributes a reflection coefficient and a depth
// map z_L(x, y); travel times use straight rays through the RMS velocity.
// This preserves what the experiments need: a known ground-truth local
// reflectivity below the datum, a reverberating water layer above it that
// creates free-surface multiples, and oscillatory frequency matrices whose
// tiles are compressible after a Hilbert sort.
#pragma once

#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/seismic/geometry.hpp"

namespace tlrwse::seismic {

/// One reflecting interface below the receiver datum.
struct Interface {
  double depth = 800.0;      // mean depth below the free surface (m)
  double reflectivity = 0.1; // plane-wave reflection coefficient
  double dip_x = 0.0;        // lateral slope along x (m of depth per m)
  double dip_y = 0.0;        // lateral slope along y
  double thrust_amp = 0.0;   // overthrust-style sinusoidal perturbation (m)
  double thrust_wavelength_x = 1500.0;  // perturbation wavelength (m)

  /// Local interface depth at map position (x, y).
  [[nodiscard]] double depth_at(double x, double y) const;
};

struct SubsurfaceModel {
  double water_velocity = 1500.0;   // m/s
  double water_depth = 300.0;       // seafloor depth (m)
  double seafloor_reflectivity = 0.35;
  double sediment_velocity = 2200.0;  // effective velocity below the datum
  std::vector<Interface> interfaces;  // reflectors below the datum

  /// Overthrust-flavoured default: three dipping/thrusted interfaces,
  /// reflectivities and depths loosely following the SEG/EAGE model's
  /// strong contrasts.
  [[nodiscard]] static SubsurfaceModel overthrust_like();

  /// Time-lapse variant for the paper's CO2-storage motivation (Secs. 1/3:
  /// "a CO2 storage site to be monitored over time"): the injected plume
  /// softens the target reflector's impedance contrast. `saturation` in
  /// [0, 1] scales the reflectivity change of the deepest interface.
  [[nodiscard]] static SubsurfaceModel co2_monitor(double saturation);
};

}  // namespace tlrwse::seismic
