// Ocean-bottom acquisition geometry.
//
// Mirrors the paper's setup (Sec. 6.1): a regular grid of sources just
// below the free surface (depth 10 m) and a regular grid of receivers on
// the seafloor (depth = water column, 300 m), with uniform inline/crossline
// spacing. The paper uses 217 x 120 sources and 177 x 90 receivers at 20 m
// spacing; the scaled-down functional experiments shrink the grids but keep
// the same structure.
#pragma once

#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/reorder/permutation.hpp"

namespace tlrwse::seismic {

struct Position {
  double x = 0.0;  // inline (m)
  double y = 0.0;  // crossline (m)
  double z = 0.0;  // depth (m), positive down
};

/// A regular (nx x ny) station grid at fixed depth.
struct StationGrid {
  index_t nx = 0;
  index_t ny = 0;
  double dx = 20.0;
  double dy = 20.0;
  double x0 = 0.0;
  double y0 = 0.0;
  double depth = 0.0;

  [[nodiscard]] index_t count() const noexcept { return nx * ny; }
  /// Station k (row-major over the grid: k = iy * nx + ix).
  [[nodiscard]] Position position(index_t k) const;
  /// Integer grid coordinates for space-filling-curve ordering.
  [[nodiscard]] std::vector<reorder::GridPoint> grid_points() const;
};

struct AcquisitionGeometry {
  StationGrid sources;    // near-surface airgun grid
  StationGrid receivers;  // ocean-bottom node grid

  /// The paper's geometry: 217 x 120 sources at 10 m depth, 177 x 90
  /// receivers at 300 m depth, both on 20 m spacing.
  [[nodiscard]] static AcquisitionGeometry paper_scale();

  /// Scaled-down geometry with the same structure for functional runs.
  [[nodiscard]] static AcquisitionGeometry small_scale(index_t nsx = 32,
                                                       index_t nsy = 24,
                                                       index_t nrx = 24,
                                                       index_t nry = 18);
};

/// Straight-line distance between two positions.
[[nodiscard]] double distance(const Position& a, const Position& b);
/// Horizontal (map-view) distance.
[[nodiscard]] double horizontal_distance(const Position& a, const Position& b);

}  // namespace tlrwse::seismic
