// Frequency-domain synthesis of the MDD input wavefields.
//
// The substitution for the paper's 1.8 TB finite-difference Overthrust
// dataset (see DESIGN.md): we synthesise, per retained frequency f,
//   * P+(f)  (nS x nR): downgoing wavefield at the receiver datum — direct
//     arrival, free-surface ghost, and water-layer reverberations via image
//     sources, all scaled by the source wavelet spectrum;
//   * R(f)   (nR x nR): ground-truth local reflectivity of the medium below
//     the datum (sum over interfaces of oscillatory kernels with geometric
//     spreading) — by construction free of any overburden/free-surface
//     effects, exactly the quantity MDD is supposed to recover;
//   * P-(f) = P+(f) * R(f) * dA : upgoing wavefield, generated through the
//     exact MDC representation theorem, so that the MDD inverse problem has
//     a known exact solution and free-surface multiples enter P- through
//     the reverberations contained in P+.
//
// Matrix convention follows the paper's kernel K: rows are sources
// (26040 = 217x120 at paper scale), columns are receivers (15930 = 177x90).
#pragma once

#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/la/matrix.hpp"
#include "tlrwse/reorder/permutation.hpp"
#include "tlrwse/seismic/geometry.hpp"
#include "tlrwse/seismic/model.hpp"
#include "tlrwse/seismic/wavelet.hpp"

namespace tlrwse::seismic {

struct DatasetConfig {
  AcquisitionGeometry geometry = AcquisitionGeometry::small_scale();
  SubsurfaceModel model = SubsurfaceModel::overthrust_like();
  WaveletConfig wavelet;
  index_t nt = 256;        // time samples
  double dt = 0.004;       // temporal sampling (paper: 4 ms)
  double f_min = 3.0;      // retained band (Hz)
  double f_max = 45.0;
  int water_multiples = 3; // image-source reverberation orders in P+
  reorder::Ordering ordering = reorder::Ordering::kHilbert;
};

/// The synthesised multi-frequency dataset. All matrices share the station
/// ordering selected in the config (source/receiver lists are permuted
/// before synthesis, so "Hilbert ordering" is baked into the matrices the
/// way the paper's pre-processing does it).
struct SeismicDataset {
  DatasetConfig config;
  std::vector<Position> source_pos;    // permuted station lists
  std::vector<Position> receiver_pos;
  std::vector<index_t> source_perm;    // permuted index -> original grid index
  std::vector<index_t> receiver_perm;
  std::vector<index_t> freq_bins;      // rfft bin index per retained frequency
  std::vector<double> freqs_hz;
  std::vector<la::MatrixCF> p_down;        // per frequency, nS x nR
  std::vector<la::MatrixCF> p_up;          // per frequency, nS x nR
  std::vector<la::MatrixCF> reflectivity;  // per frequency, nR x nR (truth)

  [[nodiscard]] index_t num_sources() const {
    return static_cast<index_t>(source_pos.size());
  }
  [[nodiscard]] index_t num_receivers() const {
    return static_cast<index_t>(receiver_pos.size());
  }
  [[nodiscard]] index_t num_freqs() const {
    return static_cast<index_t>(freqs_hz.size());
  }
  /// Receiver-area element dA used in the MDC integral discretisation.
  [[nodiscard]] double surface_element() const {
    return config.geometry.receivers.dx * config.geometry.receivers.dy;
  }
};

/// Downgoing wavefield matrix at one frequency (before wavelet scaling).
[[nodiscard]] la::MatrixCF downgoing_matrix(
    const std::vector<Position>& sources,
    const std::vector<Position>& receivers, const SubsurfaceModel& model,
    double f_hz, int water_multiples);

/// Ground-truth local reflectivity matrix at one frequency.
[[nodiscard]] la::MatrixCF reflectivity_matrix(
    const std::vector<Position>& virtual_sources,
    const std::vector<Position>& receivers, const SubsurfaceModel& model,
    double f_hz);

/// Full synthesis: permutes stations per the config ordering, then builds
/// P+, R, and P- = P+ R dA for every retained frequency. The dominant cost
/// is the per-frequency GEMM for P-; OpenMP-parallel over frequencies.
[[nodiscard]] SeismicDataset build_dataset(const DatasetConfig& cfg);

/// Converts a per-frequency spectrum sampled on the dataset's retained band
/// (values[f][trace]) into time-domain traces (column-major nt x ntraces),
/// zero-filling outside the band.
[[nodiscard]] std::vector<float> band_to_time(
    const SeismicDataset& data, const std::vector<std::vector<cf32>>& values,
    index_t ntraces);

}  // namespace tlrwse::seismic
