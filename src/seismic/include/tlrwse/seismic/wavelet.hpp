// Source wavelets in the time and frequency domains.
//
// The paper models data "with a flat wavelet up to 45 Hz" (Sec. 6.1); we
// provide that flat band-limited wavelet (cosine-tapered box spectrum) plus
// the classic Ricker wavelet used in the small functional experiments.
#pragma once

#include <vector>

#include "tlrwse/common/types.hpp"

namespace tlrwse::seismic {

enum class WaveletKind { kRicker, kFlatBand };

struct WaveletConfig {
  WaveletKind kind = WaveletKind::kFlatBand;
  double peak_hz = 20.0;   // Ricker centre frequency
  double f_max = 45.0;     // flat band upper edge (Hz)
  double taper_hz = 5.0;   // cosine taper width at the band edges
};

/// Complex spectrum W(f) evaluated at the given frequencies (Hz). The flat
/// wavelet is zero phase; Ricker is zero phase by construction.
[[nodiscard]] std::vector<cf64> wavelet_spectrum(
    const WaveletConfig& cfg, const std::vector<double>& freqs_hz);

/// Time-domain samples of the wavelet, centred in an nt-long window,
/// sampled at dt; mostly used for plots and sanity tests.
[[nodiscard]] std::vector<double> wavelet_time(const WaveletConfig& cfg,
                                               index_t nt, double dt);

}  // namespace tlrwse::seismic
