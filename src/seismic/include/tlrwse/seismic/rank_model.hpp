// Analytic tile-rank model at the paper's full dataset scale.
//
// The CS-2 experiments (Tables 1-5, Fig. 14) depend on the dataset only
// through the per-tile ranks of the compressed frequency matrices — not on
// the matrix entries. Materialising the paper's 26040 x 15930 x 230 dataset
// (763 GB dense) is impossible here, so this model synthesises per-tile rank
// fields with the statistics the paper reports for the Hilbert-ordered
// Overthrust dataset (Fig. 12 bottom):
//   * compressed size grows ~linearly with frequency (about 7x from the
//     lowest to the highest retained frequency at acc = 1e-4);
//   * total compressed sizes match the paper's figures per (nb, acc), e.g.
//     112 GB for nb = 70, acc = 1e-4 vs. 763 GB dense (~7x compression);
//   * ranks peak near the tile diagonal (Hilbert sort gathers the main
//     contributions there) and decay away from it, with mild jitter.
#pragma once

#include <cstdint>
#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/tlr/tile_grid.hpp"

namespace tlrwse::seismic {

struct RankModelConfig {
  index_t num_sources = 26040;    // matrix rows (217 x 120)
  index_t num_receivers = 15930;  // matrix cols (177 x 90)
  index_t num_freqs = 230;
  double f_max_hz = 50.0;
  index_t nb = 70;
  double acc = 1e-4;
  double low_to_high_ratio = 7.0;  // size(f_max) / size(f_min), Fig. 12
  double diag_boost = 2.5;         // rank peak factor on the tile diagonal
  double diag_sigma = 0.18;        // width of the diagonal band (fraction)
  std::uint64_t seed = 1234;
};

/// Paper-reported total compressed size in GB for the 12 calibrated
/// (nb, acc) combinations of Fig. 12 (throws for other combinations).
[[nodiscard]] double calibrated_total_gb(index_t nb, double acc);

class RankModel {
 public:
  explicit RankModel(const RankModelConfig& cfg);

  [[nodiscard]] const RankModelConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const tlr::TileGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] double frequency_hz(index_t q) const;

  /// Modelled compressed size (bytes of cf32 U+V bases) of matrix q.
  [[nodiscard]] double size_per_matrix_bytes(index_t q) const;

  /// Per-tile ranks of frequency matrix q, column-of-tiles-major
  /// (the layout TileGrid::tile_index produces).
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const;

  /// Actual byte total of tile_ranks(q) storage: sum (rows+cols)*k*8.
  [[nodiscard]] double actual_bytes(const std::vector<index_t>& ranks) const;

  /// Sum of actual_bytes over all frequencies (evaluates every matrix).
  [[nodiscard]] double total_bytes() const;

  /// Dense dataset size: rows * cols * sizeof(cf32) * num_freqs.
  [[nodiscard]] double dense_total_bytes() const;

 private:
  RankModelConfig cfg_;
  tlr::TileGrid grid_;
  double weight_sum_ = 0.0;  // sum over tiles of (rows+cols) * w_ij
};

}  // namespace tlrwse::seismic
