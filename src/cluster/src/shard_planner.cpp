#include "tlrwse/cluster/shard_planner.hpp"

#include <numeric>

#include "tlrwse/common/error.hpp"

namespace tlrwse::cluster {

ShardPlan plan_shards(const std::vector<double>& weights,
                      const PlannerConfig& cfg) {
  TLRWSE_REQUIRE(cfg.num_workers >= 1, "planner: need at least one worker");
  TLRWSE_REQUIRE(!weights.empty(), "planner: no frequencies to place");
  const auto nf = static_cast<index_t>(weights.size());
  const double total =
      std::accumulate(weights.begin(), weights.end(), 0.0);

  ShardPlan plan;
  if (cfg.replicate_max_bytes > 0.0 && total <= cfg.replicate_max_bytes) {
    plan.replicated = true;
    plan.shards.emplace_back(0, nf);
    return plan;
  }

  const auto nshards =
      static_cast<index_t>(std::min<std::size_t>(
          static_cast<std::size_t>(cfg.num_workers), weights.size()));
  // Greedy contiguous fill toward the ideal per-shard weight, the same
  // accumulate-until-full walk wse::for_each_chunk does over rank rows.
  // Remaining shards always get at least one frequency each.
  index_t q = 0;
  for (index_t s = 0; s < nshards; ++s) {
    const index_t begin = q;
    const index_t shards_left = nshards - s;
    const index_t max_end = nf - (shards_left - 1);  // leave one per shard
    if (s + 1 == nshards) {
      q = nf;
    } else {
      double acc = 0.0;
      double rest = 0.0;
      for (index_t j = q; j < nf; ++j) rest += weights[static_cast<std::size_t>(j)];
      const double ideal = rest / static_cast<double>(shards_left);
      while (q < max_end) {
        const double w = weights[static_cast<std::size_t>(q)];
        // Take the frequency if the shard is empty or closer to ideal
        // with it than without it.
        if (q > begin && acc + w - ideal > ideal - acc) break;
        acc += w;
        ++q;
      }
    }
    plan.shards.emplace_back(begin, q);
  }
  TLRWSE_REQUIRE(q == nf, "planner: shards must cover all frequencies");
  return plan;
}

}  // namespace tlrwse::cluster
