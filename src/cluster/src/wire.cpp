#include "tlrwse/cluster/wire.hpp"

#include "tlrwse/common/error.hpp"

namespace tlrwse::cluster {

namespace {

/// Frames carry dimension-sized vectors; this bound rejects corrupt counts
/// before they size an allocation (the payload cap already limits totals,
/// but a plausible length with an absurd element count should fail typed).
constexpr std::uint64_t kMaxWireElements = std::uint64_t{1} << 28;

void check_count(std::uint64_t n, const char* what) {
  if (n > kMaxWireElements) {
    throw WireError(std::string("wire: implausible count for ") + what);
  }
}

void check_type(const Frame& f, MsgType expect) {
  if (f.type != static_cast<std::uint16_t>(expect)) {
    throw WireError("wire: frame type mismatch");
  }
}

Frame finish(MsgType type, WireWriter&& w) {
  Frame f;
  f.type = static_cast<std::uint16_t>(type);
  f.payload = std::move(w).take();
  return f;
}

}  // namespace

const char* to_string(WireErrorCode c) {
  switch (c) {
    case WireErrorCode::kBadRequest: return "bad_request";
    case WireErrorCode::kArchiveMissing: return "archive_missing";
    case WireErrorCode::kUnknownShard: return "unknown_shard";
    case WireErrorCode::kCancelled: return "cancelled";
    case WireErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case WireErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  TLRWSE_REQUIRE(frame.payload.size() <= kMaxFramePayload,
                 "wire: frame payload exceeds cap");
  std::vector<std::uint8_t> out(kFrameHeaderBytes + frame.payload.size());
  const std::uint32_t magic = kWireMagic;
  const std::uint16_t version = kWireVersion;
  const std::uint16_t type = frame.type;
  const std::uint64_t len = frame.payload.size();
  std::memcpy(out.data(), &magic, sizeof(magic));
  std::memcpy(out.data() + 4, &version, sizeof(version));
  std::memcpy(out.data() + 6, &type, sizeof(type));
  std::memcpy(out.data() + 8, &len, sizeof(len));
  if (!frame.payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, frame.payload.data(),
                frame.payload.size());
  }
  return out;
}

std::size_t decode_frame(std::span<const std::uint8_t> bytes, Frame& out) {
  if (bytes.size() < kFrameHeaderBytes) return 0;
  std::uint32_t magic;
  std::uint16_t version;
  std::uint16_t type;
  std::uint64_t len;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  std::memcpy(&type, bytes.data() + 6, sizeof(type));
  std::memcpy(&len, bytes.data() + 8, sizeof(len));
  if (magic != kWireMagic) throw WireError("wire: bad frame magic");
  // Backward compatible down to kMinWireVersion: v1 frames simply lack the
  // optional v2 trailers, which every from_frame treats as defaulted.
  if (version < kMinWireVersion || version > kWireVersion) {
    throw WireError("wire: unsupported frame version");
  }
  if (len > kMaxFramePayload) {
    throw WireError("wire: frame payload exceeds cap");
  }
  if (bytes.size() < kFrameHeaderBytes + len) return 0;  // need more
  out.type = type;
  out.payload.assign(bytes.begin() + kFrameHeaderBytes,
                     bytes.begin() + static_cast<std::ptrdiff_t>(
                                         kFrameHeaderBytes + len));
  return kFrameHeaderBytes + static_cast<std::size_t>(len);
}

// --- LoadShard ------------------------------------------------------------

Frame LoadShardMsg::to_frame() const {
  WireWriter w;
  w.u32(shard_id);
  w.i64(q_begin);
  w.i64(q_end);
  w.str(archive_path);
  return finish(MsgType::kLoadShard, std::move(w));
}

LoadShardMsg LoadShardMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kLoadShard);
  WireReader r(f.payload);
  LoadShardMsg m;
  m.shard_id = r.u32();
  m.q_begin = r.i64();
  m.q_end = r.i64();
  m.archive_path = r.str();
  r.expect_end();
  return m;
}

Frame LoadShardOkMsg::to_frame() const {
  WireWriter w;
  w.u32(shard_id);
  w.i64(nt);
  w.i64(ns);
  w.i64(nr);
  w.u32(static_cast<std::uint32_t>(freq_bins.size()));
  for (const index_t b : freq_bins) w.i64(b);
  return finish(MsgType::kLoadShardOk, std::move(w));
}

LoadShardOkMsg LoadShardOkMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kLoadShardOk);
  WireReader r(f.payload);
  LoadShardOkMsg m;
  m.shard_id = r.u32();
  m.nt = r.i64();
  m.ns = r.i64();
  m.nr = r.i64();
  const std::uint32_t nq = r.u32();
  check_count(nq, "freq bins");
  m.freq_bins.reserve(nq);
  for (std::uint32_t q = 0; q < nq; ++q) m.freq_bins.push_back(r.i64());
  r.expect_end();
  return m;
}

// --- Apply ----------------------------------------------------------------

Frame ApplyMsg::to_frame() const {
  WireWriter w;
  w.u64(request_id);
  w.u32(shard_id);
  w.u8(adjoint ? 1 : 0);
  w.i64(nrhs);
  w.f64(deadline_s);
  w.u64(data.size());
  w.cf32_span(data);
  // v2 trailer: always written by a v2 encoder; a v1 decoder never sees it
  // (v1 peers also never emit v2 frames), a v1 frame simply ends above.
  w.u64(trace.trace_id);
  w.u64(trace.parent_span_id);
  w.u8(trace.sampled ? 1 : 0);
  return finish(MsgType::kApply, std::move(w));
}

ApplyMsg ApplyMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kApply);
  WireReader r(f.payload);
  ApplyMsg m;
  m.request_id = r.u64();
  m.shard_id = r.u32();
  m.adjoint = r.u8() != 0;
  m.nrhs = r.i64();
  m.deadline_s = r.f64();
  const std::uint64_t n = r.u64();
  check_count(n, "apply payload");
  m.data.resize(static_cast<std::size_t>(n));
  r.cf32_into(m.data);
  if (r.remaining() != 0) {  // v2 trailer; absent in v1 frames
    m.trace.trace_id = r.u64();
    m.trace.parent_span_id = r.u64();
    m.trace.sampled = r.u8() != 0;
  }
  r.expect_end();
  return m;
}

Frame ApplyOkMsg::to_frame() const {
  WireWriter w;
  w.u64(request_id);
  w.u64(data.size());
  w.cf32_span(data);
  w.u64(worker_recv_ns);  // v2 trailer: clock sample for trace alignment
  w.u64(worker_send_ns);
  return finish(MsgType::kApplyOk, std::move(w));
}

ApplyOkMsg ApplyOkMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kApplyOk);
  WireReader r(f.payload);
  ApplyOkMsg m;
  m.request_id = r.u64();
  const std::uint64_t n = r.u64();
  check_count(n, "apply result");
  m.data.resize(static_cast<std::size_t>(n));
  r.cf32_into(m.data);
  if (r.remaining() != 0) {  // v2 trailer; absent in v1 frames
    m.worker_recv_ns = r.u64();
    m.worker_send_ns = r.u64();
  }
  r.expect_end();
  return m;
}

// --- Cancel ---------------------------------------------------------------

Frame CancelMsg::to_frame() const {
  WireWriter w;
  w.u64(request_id);
  return finish(MsgType::kCancel, std::move(w));
}

CancelMsg CancelMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kCancel);
  WireReader r(f.payload);
  CancelMsg m;
  m.request_id = r.u64();
  r.expect_end();
  return m;
}

Frame CancelOkMsg::to_frame() const {
  WireWriter w;
  w.u64(request_id);
  w.u8(in_flight ? 1 : 0);
  return finish(MsgType::kCancelOk, std::move(w));
}

CancelOkMsg CancelOkMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kCancelOk);
  WireReader r(f.payload);
  CancelOkMsg m;
  m.request_id = r.u64();
  m.in_flight = r.u8() != 0;
  r.expect_end();
  return m;
}

// --- Metrics --------------------------------------------------------------

Frame MetricsMsg::to_frame() const {
  return Frame{static_cast<std::uint16_t>(MsgType::kMetrics), {}};
}

MetricsMsg MetricsMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kMetrics);
  WireReader r(f.payload);
  r.expect_end();
  return MetricsMsg{};
}

Frame MetricsOkMsg::to_frame() const {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(snapshot.counters.size()));
  for (const auto& [name, v] : snapshot.counters) {
    w.str(name);
    w.u64(v);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, v] : snapshot.gauges) {
    w.str(name);
    w.i64(v);
  }
  w.u32(static_cast<std::uint32_t>(snapshot.histograms.size()));
  for (const auto& h : snapshot.histograms) {
    w.str(h.name);
    w.u64(h.snap.count);
    w.f64(h.snap.sum);
    w.f64(h.snap.min);
    w.f64(h.snap.max);
    for (const std::uint64_t b : h.snap.buckets) w.u64(b);
  }
  return finish(MsgType::kMetricsOk, std::move(w));
}

MetricsOkMsg MetricsOkMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kMetricsOk);
  WireReader r(f.payload);
  MetricsOkMsg m;
  const std::uint32_t nc = r.u32();
  check_count(nc, "counters");
  for (std::uint32_t i = 0; i < nc; ++i) {
    std::string name = r.str();
    m.snapshot.counters[std::move(name)] = r.u64();
  }
  const std::uint32_t ng = r.u32();
  check_count(ng, "gauges");
  for (std::uint32_t i = 0; i < ng; ++i) {
    std::string name = r.str();
    m.snapshot.gauges[std::move(name)] = r.i64();
  }
  const std::uint32_t nh = r.u32();
  check_count(nh, "histograms");
  for (std::uint32_t i = 0; i < nh; ++i) {
    obs::MetricsRegistry::HistogramEntry e;
    e.name = r.str();
    e.snap.count = r.u64();
    e.snap.sum = r.f64();
    e.snap.min = r.f64();
    e.snap.max = r.f64();
    for (auto& b : e.snap.buckets) b = r.u64();
    m.snapshot.histograms.push_back(std::move(e));
  }
  r.expect_end();
  return m;
}

// --- Shutdown / Error -----------------------------------------------------

Frame ShutdownMsg::to_frame() const {
  return Frame{static_cast<std::uint16_t>(MsgType::kShutdown), {}};
}

ShutdownMsg ShutdownMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kShutdown);
  WireReader r(f.payload);
  r.expect_end();
  return ShutdownMsg{};
}

Frame ShutdownOkMsg::to_frame() const {
  return Frame{static_cast<std::uint16_t>(MsgType::kShutdownOk), {}};
}

ShutdownOkMsg ShutdownOkMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kShutdownOk);
  WireReader r(f.payload);
  r.expect_end();
  return ShutdownOkMsg{};
}

Frame ErrorMsg::to_frame() const {
  WireWriter w;
  w.u64(request_id);
  w.u16(static_cast<std::uint16_t>(code));
  w.str(message);
  return finish(MsgType::kError, std::move(w));
}

ErrorMsg ErrorMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kError);
  WireReader r(f.payload);
  ErrorMsg m;
  m.request_id = r.u64();
  m.code = static_cast<WireErrorCode>(r.u16());
  m.message = r.str();
  r.expect_end();
  return m;
}

// --- TraceDump / Health (v2) ----------------------------------------------

Frame TraceDumpMsg::to_frame() const {
  WireWriter w;
  w.u64(trace_id);
  return finish(MsgType::kTraceDump, std::move(w));
}

TraceDumpMsg TraceDumpMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kTraceDump);
  WireReader r(f.payload);
  TraceDumpMsg m;
  m.trace_id = r.u64();
  r.expect_end();
  return m;
}

Frame TraceDumpOkMsg::to_frame() const {
  WireWriter w;
  w.u64(trace_id);
  w.u64(dropped_spans);
  w.u32(static_cast<std::uint32_t>(spans.size()));
  for (const obs::RemoteSpan& s : spans) {
    w.str(s.name);
    w.u64(s.trace_id);
    w.u64(s.span_id);
    w.u64(s.parent_span_id);
    w.u64(s.ts_ns);
    w.u64(s.dur_ns);
  }
  return finish(MsgType::kTraceDumpOk, std::move(w));
}

TraceDumpOkMsg TraceDumpOkMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kTraceDumpOk);
  WireReader r(f.payload);
  TraceDumpOkMsg m;
  m.trace_id = r.u64();
  m.dropped_spans = r.u64();
  const std::uint32_t n = r.u32();
  check_count(n, "trace spans");
  m.spans.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    obs::RemoteSpan s;
    s.name = r.str();
    s.trace_id = r.u64();
    s.span_id = r.u64();
    s.parent_span_id = r.u64();
    s.ts_ns = r.u64();
    s.dur_ns = r.u64();
    m.spans.push_back(std::move(s));
  }
  r.expect_end();
  return m;
}

Frame HealthMsg::to_frame() const {
  return Frame{static_cast<std::uint16_t>(MsgType::kHealth), {}};
}

HealthMsg HealthMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kHealth);
  WireReader r(f.payload);
  r.expect_end();
  return HealthMsg{};
}

Frame HealthOkMsg::to_frame() const {
  WireWriter w;
  w.u64(uptime_ns);
  w.u64(inflight);
  w.u64(applies);
  w.f64(resident_bytes);
  w.f64(streamed_bytes);
  w.f64(stall_s);
  w.u64(dropped_spans);
  w.u32(static_cast<std::uint32_t>(shards.size()));
  for (const ShardInfo& s : shards) {
    w.u32(s.shard_id);
    w.i64(s.q_begin);
    w.i64(s.q_end);
    w.u32(s.num_freqs);
    w.f64(s.bytes);
  }
  return finish(MsgType::kHealthOk, std::move(w));
}

HealthOkMsg HealthOkMsg::from_frame(const Frame& f) {
  check_type(f, MsgType::kHealthOk);
  WireReader r(f.payload);
  HealthOkMsg m;
  m.uptime_ns = r.u64();
  m.inflight = r.u64();
  m.applies = r.u64();
  m.resident_bytes = r.f64();
  m.streamed_bytes = r.f64();
  m.stall_s = r.f64();
  m.dropped_spans = r.u64();
  const std::uint32_t n = r.u32();
  check_count(n, "health shards");
  m.shards.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ShardInfo s;
    s.shard_id = r.u32();
    s.q_begin = r.i64();
    s.q_end = r.i64();
    s.num_freqs = r.u32();
    s.bytes = r.f64();
    m.shards.push_back(s);
  }
  r.expect_end();
  return m;
}

}  // namespace tlrwse::cluster
