#include "tlrwse/cluster/frontend.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "tlrwse/common/error.hpp"
#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdc/cancellation.hpp"
#include "tlrwse/obs/prometheus.hpp"

namespace tlrwse::cluster {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// An archive-side load failure (file missing, bad range) — distinct from
/// WorkerFailure so the service can answer kArchiveMissing vs
/// kWorkerFailed.
class ArchiveFailure : public std::runtime_error {
 public:
  explicit ArchiveFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// Maps a worker's reply frame to ApplyOkMsg or the matching exception.
ApplyOkMsg parse_apply_reply(const Frame& reply) {
  if (reply.type == static_cast<std::uint16_t>(MsgType::kApplyOk)) {
    return ApplyOkMsg::from_frame(reply);
  }
  if (reply.type == static_cast<std::uint16_t>(MsgType::kError)) {
    const ErrorMsg err = ErrorMsg::from_frame(reply);
    if (err.code == WireErrorCode::kCancelled ||
        err.code == WireErrorCode::kDeadlineExceeded) {
      throw mdc::CancelledError(err.message);
    }
    throw WorkerFailure(std::string("worker error (") + to_string(err.code) +
                        "): " + err.message);
  }
  throw WorkerFailure("unexpected apply reply frame type " +
                      std::to_string(reply.type));
}

LoadShardOkMsg parse_load_reply(const Frame& reply) {
  if (reply.type == static_cast<std::uint16_t>(MsgType::kLoadShardOk)) {
    return LoadShardOkMsg::from_frame(reply);
  }
  if (reply.type == static_cast<std::uint16_t>(MsgType::kError)) {
    const ErrorMsg err = ErrorMsg::from_frame(reply);
    throw ArchiveFailure(std::string("shard load failed (") +
                         to_string(err.code) + "): " + err.message);
  }
  throw WorkerFailure("unexpected load reply frame type " +
                      std::to_string(reply.type));
}

}  // namespace

// --- WorkerClient ---------------------------------------------------------

WorkerClient::WorkerClient(std::unique_ptr<Channel> channel, std::string name)
    : channel_(std::move(channel)), name_(std::move(name)) {
  TLRWSE_REQUIRE(channel_ != nullptr, "WorkerClient: null channel");
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

WorkerClient::~WorkerClient() { close(); }

std::future<Frame> WorkerClient::call_async(Frame request) {
  Pending p;
  p.request = std::move(request);
  std::future<Frame> fut = p.reply.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      p.reply.set_exception(
          death_ ? death_
                 : std::make_exception_ptr(TransportError(
                       TransportError::Kind::kClosed,
                       "worker " + name_ + " is closed")));
      return fut;
    }
    pending_.push_back(std::move(p));
  }
  cv_.notify_one();
  return fut;
}

Frame WorkerClient::call(Frame request) {
  return call_async(std::move(request)).get();
}

void WorkerClient::dispatch_loop() {
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop with nothing left to drain
      p = std::move(pending_.front());
      pending_.pop_front();
    }
    try {
      p.reply.set_value(channel_->call(p.request));
    } catch (const TransportError& e) {
      p.reply.set_exception(std::current_exception());
      mark_dead(e);
      return;
    } catch (...) {
      p.reply.set_exception(std::current_exception());
    }
  }
}

void WorkerClient::mark_dead(const TransportError& err) {
  std::deque<Pending> drain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!death_) death_ = std::make_exception_ptr(err);
    stop_ = true;
    drain.swap(pending_);
  }
  dead_.store(true, std::memory_order_release);
  cv_.notify_all();
  for (auto& p : drain) p.reply.set_exception(death_);
}

void WorkerClient::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  std::deque<Pending> drain;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!death_) {
      death_ = std::make_exception_ptr(TransportError(
          TransportError::Kind::kClosed, "worker " + name_ + " is closed"));
    }
    drain.swap(pending_);
  }
  dead_.store(true, std::memory_order_release);
  for (auto& p : drain) p.reply.set_exception(death_);
  if (channel_) channel_->close();
}

// --- RemoteMdcOperator ----------------------------------------------------

RemoteMdcOperator::RemoteMdcOperator(
    std::span<const std::unique_ptr<WorkerClient>> fleet,
    std::shared_ptr<const Placement> placement, std::uint64_t request_id,
    Clock::time_point deadline_at, std::function<bool()> cancelled,
    std::function<void(std::size_t)> on_worker_death, RequestTrace* rt)
    : fleet_(fleet),
      placement_(std::move(placement)),
      request_id_(request_id),
      deadline_at_(deadline_at),
      cancelled_(std::move(cancelled)),
      on_worker_death_(std::move(on_worker_death)),
      rt_(rt),
      plan_(placement_ != nullptr && placement_->nt >= 1 ? placement_->nt
                                                         : 1) {
  TLRWSE_REQUIRE(placement_ != nullptr, "RemoteMdcOperator: null placement");
  TLRWSE_REQUIRE(!placement_->shards.empty(),
                 "RemoteMdcOperator: empty placement");
  if (rt_ != nullptr) rt_->clock_samples.resize(fleet_.size());
}

index_t RemoteMdcOperator::rows() const {
  return placement_->nt * placement_->ns;
}

index_t RemoteMdcOperator::cols() const {
  return placement_->nt * placement_->nr;
}

void RemoteMdcOperator::apply(std::span<const float> x,
                              std::span<float> y) const {
  run(x, y, 1, /*adjoint=*/false);
}

void RemoteMdcOperator::apply_adjoint(std::span<const float> y,
                                      std::span<float> x) const {
  run(y, x, 1, /*adjoint=*/true);
}

void RemoteMdcOperator::apply_batch(std::span<const float> X,
                                    std::span<float> Y, index_t nrhs) const {
  run(X, Y, nrhs, /*adjoint=*/false);
}

void RemoteMdcOperator::apply_adjoint_batch(std::span<const float> Y,
                                            std::span<float> X,
                                            index_t nrhs) const {
  run(Y, X, nrhs, /*adjoint=*/true);
}

void RemoteMdcOperator::check_abort() const {
  if (cancelled_ && cancelled_()) throw mdc::CancelledError();
  if (deadline_at_ != Clock::time_point{} && Clock::now() >= deadline_at_) {
    throw mdc::CancelledError("deadline exceeded");
  }
}

double RemoteMdcOperator::remaining_deadline_s() const {
  if (deadline_at_ == Clock::time_point{}) return 0.0;
  return std::max(1e-9, seconds_between(Clock::now(), deadline_at_));
}

void RemoteMdcOperator::note_exchange(std::size_t worker, std::uint64_t t0_ns,
                                      std::uint64_t t3_ns,
                                      const ApplyOkMsg& ok) const {
  if (rt_ == nullptr) return;
  rt_->note_worker(worker);
  const double round_trip_s = 1e-9 * static_cast<double>(t3_ns - t0_ns);
  if (ok.worker_recv_ns != 0 && ok.worker_send_ns >= ok.worker_recv_ns) {
    // v2 reply: split the round trip into worker compute (MVM) and
    // everything else (serialization + transport + queueing = RPC).
    const double worker_s =
        1e-9 * static_cast<double>(ok.worker_send_ns - ok.worker_recv_ns);
    rt_->stages.mvm_s += std::min(worker_s, round_trip_s);
    rt_->stages.rpc_s += std::max(0.0, round_trip_s - worker_s);
    rt_->clock_samples[worker].push_back(
        obs::ClockSample{t0_ns, ok.worker_recv_ns, ok.worker_send_ns, t3_ns});
  } else {
    // v1 worker: no clock stamps — the whole round trip is RPC time.
    rt_->stages.rpc_s += round_trip_s;
  }
}

ApplyOkMsg RemoteMdcOperator::exchange(const ShardAssignment& shard,
                                       ApplyMsg msg) const {
  const Frame request = msg.to_frame();
  for (const std::size_t w : shard.workers) {
    WorkerClient& client = *fleet_[w];
    if (!client.alive()) continue;
    try {
      const std::uint64_t t0 = obs::steady_now_ns();
      ApplyOkMsg ok = parse_apply_reply(client.call(request));
      note_exchange(w, t0, obs::steady_now_ns(), ok);
      return ok;
    } catch (const TransportError&) {
      if (on_worker_death_) on_worker_death_(w);
      continue;  // next replica
    }
  }
  throw WorkerFailure("no live replica for shard " +
                      std::to_string(shard.shard_id));
}

void RemoteMdcOperator::run(std::span<const float> in, std::span<float> out,
                            index_t nrhs, bool adjoint) const {
  const Placement& pl = *placement_;
  const index_t nt = pl.nt;
  const index_t nf_full = nt / 2 + 1;
  const index_t in_traces = adjoint ? pl.ns : pl.nr;
  const index_t out_traces = adjoint ? pl.nr : pl.ns;
  TLRWSE_REQUIRE(nrhs >= 1, "RemoteMdcOperator: nrhs");
  TLRWSE_REQUIRE(static_cast<index_t>(in.size()) == nt * in_traces * nrhs,
                 "RemoteMdcOperator: input size");
  TLRWSE_REQUIRE(static_cast<index_t>(out.size()) == nt * out_traces * nrhs,
                 "RemoteMdcOperator: output size");
  check_abort();

  // One apply at a time per operator instance (LSQR drives applies
  // sequentially); the instance-level scratch mirrors MdcOperator's
  // per-thread PageScratch.
  std::lock_guard<std::mutex> lock(scratch_mu_);
  const index_t in_page = nf_full * in_traces;
  const index_t out_page = nf_full * out_traces;

  const bool sampled = rt_ != nullptr && rt_->ctx.sampled;
  const std::uint64_t run_span = sampled ? rt_->new_span_id() : 0;
  const std::uint64_t run_start = rt_ != nullptr ? obs::steady_now_ns() : 0;

  // F: local rFFT per RHS — identical to MdcOperator's forward stage.
  in_spec_.resize(static_cast<std::size_t>(in_page * nrhs));
  for (index_t r = 0; r < nrhs; ++r) {
    fft::rfft_batch(plan_,
                    in.subspan(static_cast<std::size_t>(r * nt * in_traces),
                               static_cast<std::size_t>(nt * in_traces)),
                    in_traces,
                    std::span<cf32>(in_spec_.data() + r * in_page,
                                    static_cast<std::size_t>(in_page)),
                    fft_ws_);
  }
  std::uint64_t mark = 0;
  if (rt_ != nullptr) {
    mark = obs::steady_now_ns();
    rt_->stages.fft_s += 1e-9 * static_cast<double>(mark - run_start);
    if (sampled) {
      rt_->add_span("frontend.rfft", rt_->new_span_id(), run_span, run_start,
                    mark - run_start);
    }
  }

  // K (remote): gather each shard's per-frequency panels and fan out. The
  // gather formulas match MdcOperator's kernel loop exactly, so workers
  // see the same bytes a local FreqScratch would.
  const std::size_t nshards = pl.shards.size();
  std::vector<ApplyMsg> msgs(nshards);
  /// Per-shard RPC span ids; the worker parents its apply span under the
  /// shard's RPC span, so the merged timeline nests correctly.
  std::vector<std::uint64_t> rpc_spans(nshards, 0);
  const std::span<const cf32> spec(in_spec_);
  for (std::size_t s = 0; s < nshards; ++s) {
    const ShardAssignment& shard = pl.shards[s];
    ApplyMsg& msg = msgs[s];
    msg.request_id = request_id_;
    msg.shard_id = shard.shard_id;
    msg.adjoint = adjoint;
    msg.nrhs = nrhs;
    msg.deadline_s = remaining_deadline_s();
    if (sampled) {
      rpc_spans[s] = rt_->new_span_id();
      msg.trace.trace_id = rt_->ctx.trace_id;
      msg.trace.parent_span_id = rpc_spans[s];
      msg.trace.sampled = true;
    }
    const auto nq = static_cast<index_t>(shard.freq_bins.size());
    msg.data.resize(static_cast<std::size_t>(nq * nrhs * in_traces));
    for (index_t q = 0; q < nq; ++q) {
      const index_t bin = shard.freq_bins[static_cast<std::size_t>(q)];
      for (index_t r = 0; r < nrhs; ++r) {
        cf32* dst = msg.data.data() + (q * nrhs + r) * in_traces;
        for (index_t t = 0; t < in_traces; ++t) {
          dst[t] = spec[static_cast<std::size_t>(r * in_page + t * nf_full +
                                                 bin)];
        }
      }
    }
  }
  if (rt_ != nullptr) {
    const std::uint64_t now = obs::steady_now_ns();
    rt_->stages.gather_scatter_s += 1e-9 * static_cast<double>(now - mark);
    if (sampled) {
      rt_->add_span("frontend.gather", rt_->new_span_id(), run_span, mark,
                    now - mark);
    }
    mark = now;
  }

  // Dispatch every shard's exchange concurrently (each worker's dispatcher
  // runs its call), then collect with per-shard replica retry.
  struct InFlight {
    std::future<Frame> fut;
    std::size_t worker = 0;
    std::uint64_t t0_ns = 0;
    bool dispatched = false;
  };
  std::vector<InFlight> flights(nshards);
  for (std::size_t s = 0; s < nshards; ++s) {
    for (const std::size_t w : pl.shards[s].workers) {
      if (fleet_[w]->alive()) {
        flights[s].t0_ns = rt_ != nullptr ? obs::steady_now_ns() : 0;
        flights[s].fut = fleet_[w]->call_async(msgs[s].to_frame());
        flights[s].worker = w;
        flights[s].dispatched = true;
        break;
      }
    }
  }

  out_spec_.assign(static_cast<std::size_t>(out_page * nrhs), cf32{});
  const std::span<cf32> out_span(out_spec_);
  double scatter_s = 0.0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const ShardAssignment& shard = pl.shards[s];
    ApplyOkMsg ok;
    bool have = false;
    if (flights[s].dispatched) {
      try {
        ok = parse_apply_reply(flights[s].fut.get());
        note_exchange(flights[s].worker, flights[s].t0_ns,
                      rt_ != nullptr ? obs::steady_now_ns() : 0, ok);
        have = true;
      } catch (const TransportError&) {
        if (on_worker_death_) on_worker_death_(flights[s].worker);
      }
    }
    const std::uint64_t rpc_start =
        flights[s].dispatched && have ? flights[s].t0_ns
        : sampled                     ? obs::steady_now_ns()
                                      : 0;
    if (!have) ok = exchange(shard, std::move(msgs[s]));
    if (sampled) {
      rt_->add_span("frontend.rpc shard=" + std::to_string(shard.shard_id),
                    rpc_spans[s], run_span, rpc_start,
                    obs::steady_now_ns() - rpc_start);
    }

    const auto nq = static_cast<index_t>(shard.freq_bins.size());
    if (static_cast<index_t>(ok.data.size()) != nq * nrhs * out_traces) {
      throw WorkerFailure("shard " + std::to_string(shard.shard_id) +
                          " returned a malformed apply result");
    }
    // Scatter into the zero-initialised spectrum; shards own disjoint
    // bins, so writes never overlap.
    const std::uint64_t scatter_start =
        rt_ != nullptr ? obs::steady_now_ns() : 0;
    for (index_t q = 0; q < nq; ++q) {
      const index_t bin = shard.freq_bins[static_cast<std::size_t>(q)];
      for (index_t r = 0; r < nrhs; ++r) {
        const cf32* src = ok.data.data() + (q * nrhs + r) * out_traces;
        for (index_t t = 0; t < out_traces; ++t) {
          out_span[static_cast<std::size_t>(r * out_page + t * nf_full +
                                            bin)] = src[t];
        }
      }
    }
    if (rt_ != nullptr) {
      scatter_s +=
          1e-9 * static_cast<double>(obs::steady_now_ns() - scatter_start);
    }
  }
  if (rt_ != nullptr) rt_->stages.gather_scatter_s += scatter_s;

  // F^H: local inverse rFFT per RHS.
  const std::uint64_t ifft_start = rt_ != nullptr ? obs::steady_now_ns() : 0;
  for (index_t r = 0; r < nrhs; ++r) {
    fft::irfft_batch(plan_,
                     std::span<const cf32>(out_spec_.data() + r * out_page,
                                           static_cast<std::size_t>(out_page)),
                     out_traces,
                     out.subspan(static_cast<std::size_t>(r * nt * out_traces),
                                 static_cast<std::size_t>(nt * out_traces)),
                     fft_ws_);
  }
  if (rt_ != nullptr) {
    const std::uint64_t now = obs::steady_now_ns();
    rt_->stages.fft_s += 1e-9 * static_cast<double>(now - ifft_start);
    if (sampled) {
      rt_->add_span("frontend.irfft", rt_->new_span_id(), run_span,
                    ifft_start, now - ifft_start);
      rt_->add_span(adjoint ? "frontend.apply_adjoint" : "frontend.apply",
                    run_span, rt_->ctx.parent_span_id, run_start,
                    now - run_start);
    }
  }
}

// --- ClusterService -------------------------------------------------------

const char* to_string(ClusterStatus s) {
  switch (s) {
    case ClusterStatus::kOk: return "ok";
    case ClusterStatus::kQueueFull: return "queue_full";
    case ClusterStatus::kQuotaExceeded: return "quota_exceeded";
    case ClusterStatus::kDeadlineExceeded: return "deadline_exceeded";
    case ClusterStatus::kArchiveMissing: return "archive_missing";
    case ClusterStatus::kWorkerFailed: return "worker_failed";
    case ClusterStatus::kCancelled: return "cancelled";
    case ClusterStatus::kError: return "error";
  }
  return "unknown";
}

ClusterService::ClusterService(
    ClusterConfig cfg, std::vector<std::unique_ptr<WorkerClient>> workers)
    : cfg_(cfg),
      fleet_(std::move(workers)),
      submitted_(registry_.counter("cluster.submitted")),
      admitted_(registry_.counter("cluster.admitted")),
      completed_(registry_.counter("cluster.completed")),
      rejected_full_(registry_.counter("cluster.rejected_queue_full")),
      rejected_quota_(registry_.counter("cluster.rejected_quota")),
      rejected_deadline_(registry_.counter("cluster.rejected_deadline")),
      rejected_missing_(registry_.counter("cluster.rejected_archive_missing")),
      worker_failed_(registry_.counter("cluster.worker_failed")),
      cancelled_count_(registry_.counter("cluster.cancelled")),
      failed_(registry_.counter("cluster.failed")),
      worker_deaths_(registry_.counter("cluster.worker_deaths")),
      placements_(registry_.counter("cluster.placements")),
      replans_(registry_.counter("cluster.replans")),
      solve_hist_(registry_.histogram("cluster.solve_s")),
      stage_recorder_(registry_, "cluster"),
      slo_(cfg_.slo),
      queue_(cfg.queue_capacity),
      exec_(std::max(1, cfg.frontend_workers)) {
  TLRWSE_REQUIRE(!fleet_.empty(), "cluster: need at least one worker");
  worker_futures_.reserve(static_cast<std::size_t>(exec_.thread_count()));
  for (int w = 0; w < exec_.thread_count(); ++w) {
    worker_futures_.push_back(exec_.submit([this] { worker_loop(); }));
  }
}

ClusterService::~ClusterService() { shutdown(); }

SubmittedRequest ClusterService::submit(ClusterRequest req) {
  Ticket ticket;
  ticket.req = std::move(req);
  ticket.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  ticket.admitted = Clock::now();

  SubmittedRequest out;
  out.request_id = ticket.id;
  out.response = ticket.done.get_future();
  submitted_.add();

  if (cfg_.tenant_quota > 0) {
    std::lock_guard<std::mutex> lock(state_mu_);
    std::size_t& inflight = tenant_inflight_[ticket.req.tenant];
    if (inflight >= cfg_.tenant_quota) {
      rejected_quota_.add();
      ClusterResponse r;
      r.status = ClusterStatus::kQuotaExceeded;
      r.vsrc = ticket.req.vsrc;
      r.request_id = ticket.id;
      ticket.done.set_value(std::move(r));
      return out;
    }
    ++inflight;  // released by respond()
  }

  const auto push = queue_.try_push(ticket.req.op, ticket);
  if (push.admitted) {
    admitted_.add();
    return out;
  }
  rejected_full_.add();
  ClusterResponse r;
  r.status = ClusterStatus::kQueueFull;
  respond(ticket, std::move(r));
  return out;
}

void ClusterService::cancel(std::uint64_t request_id) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    cancelled_.insert(request_id);
  }
  // Best-effort broadcast; a dead worker just drops it.
  CancelMsg msg;
  msg.request_id = request_id;
  const Frame frame = msg.to_frame();
  for (const auto& worker : fleet_) {
    if (worker->alive()) (void)worker->call_async(frame);
  }
}

void ClusterService::shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.close();
  exec_.shutdown();
  for (auto& f : worker_futures_) {
    if (f.valid()) f.get();
  }
  const Frame bye = ShutdownMsg{}.to_frame();
  for (const auto& worker : fleet_) {
    if (!worker->alive()) continue;
    try {
      (void)worker->call(bye);
    } catch (const std::exception&) {
      // Already gone; shutdown is best-effort.
    }
  }
  for (const auto& worker : fleet_) worker->close();
}

std::size_t ClusterService::live_workers() const {
  std::size_t n = 0;
  for (const auto& worker : fleet_) n += worker->alive() ? 1 : 0;
  return n;
}

obs::MetricsRegistry::Snapshot ClusterService::cluster_snapshot() {
  std::vector<obs::MetricsRegistry::Snapshot> snaps;
  snaps.push_back(registry_.snapshot());
  const Frame request = MetricsMsg{}.to_frame();
  for (const auto& worker : fleet_) {
    if (!worker->alive()) continue;
    try {
      const Frame reply = worker->call(request);
      if (reply.type == static_cast<std::uint16_t>(MsgType::kMetricsOk)) {
        snaps.push_back(MetricsOkMsg::from_frame(reply).snapshot);
      }
    } catch (const std::exception&) {
      // A dying worker's numbers are simply absent from the merge.
    }
  }
  return obs::merge_snapshots(snaps);
}

std::string ClusterService::fleet_prometheus_text() {
  std::vector<obs::MetricsRegistry::Snapshot> snaps;
  snaps.push_back(registry_.snapshot());
  const Frame request = MetricsMsg{}.to_frame();
  for (const auto& worker : fleet_) {
    if (!worker->alive()) continue;
    try {
      const Frame reply = worker->call(request);
      if (reply.type == static_cast<std::uint16_t>(MsgType::kMetricsOk)) {
        snaps.push_back(MetricsOkMsg::from_frame(reply).snapshot);
      }
    } catch (const std::exception&) {
      // A dying worker's numbers are simply absent from the merge.
    }
  }
  return obs::fleet_to_prometheus_text(snaps);
}

std::vector<ClusterService::WorkerHealth> ClusterService::fleet_health() {
  std::vector<WorkerHealth> out;
  out.reserve(fleet_.size());
  const Frame request = HealthMsg{}.to_frame();
  for (const auto& worker : fleet_) {
    WorkerHealth wh;
    wh.name = worker->name();
    if (worker->alive()) {
      try {
        const Frame reply = worker->call(request);
        if (reply.type == static_cast<std::uint16_t>(MsgType::kHealthOk)) {
          wh.health = HealthOkMsg::from_frame(reply);
          wh.alive = true;
        }
      } catch (const std::exception&) {
        // Poll failure reads as a dead worker in the fleet view.
      }
    }
    out.push_back(std::move(wh));
  }
  return out;
}

std::string ClusterService::fleet_health_json() {
  const std::vector<WorkerHealth> fleet = fleet_health();
  const obs::SloTracker::Window win = slo_.window();
  std::ostringstream os;
  os << "{\"live_workers\":" << live_workers()
     << ",\"slo\":{\"count\":" << win.count << ",\"errors\":" << win.errors
     << ",\"breaches\":" << win.breaches << ",\"p50_s\":" << win.p50_s
     << ",\"p95_s\":" << win.p95_s << ",\"p99_s\":" << win.p99_s
     << ",\"burn_rate\":" << win.burn_rate << "},\"workers\":[";
  for (std::size_t w = 0; w < fleet.size(); ++w) {
    const WorkerHealth& wh = fleet[w];
    if (w != 0) os << ",";
    os << "{\"name\":\"" << wh.name << "\",\"alive\":"
       << (wh.alive ? "true" : "false")
       << ",\"uptime_s\":" << 1e-9 * static_cast<double>(wh.health.uptime_ns)
       << ",\"inflight\":" << wh.health.inflight
       << ",\"applies\":" << wh.health.applies
       << ",\"resident_bytes\":" << wh.health.resident_bytes
       << ",\"streamed_bytes\":" << wh.health.streamed_bytes
       << ",\"stall_s\":" << wh.health.stall_s
       << ",\"dropped_spans\":" << wh.health.dropped_spans << ",\"shards\":[";
    for (std::size_t s = 0; s < wh.health.shards.size(); ++s) {
      const auto& sh = wh.health.shards[s];
      if (s != 0) os << ",";
      os << "{\"shard_id\":" << sh.shard_id << ",\"q_begin\":" << sh.q_begin
         << ",\"q_end\":" << sh.q_end << ",\"num_freqs\":" << sh.num_freqs
         << ",\"bytes\":" << sh.bytes << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

void ClusterService::worker_loop() {
  for (;;) {
    serve::OperatorKey key;
    std::vector<Ticket> batch = queue_.pop_batch(cfg_.max_batch, key);
    if (batch.empty()) return;  // closed and drained
    process_batch(key, std::move(batch));
  }
}

void ClusterService::process_batch(const serve::OperatorKey& key,
                                   std::vector<Ticket> batch) {
  std::shared_ptr<const Placement> placement;
  const auto load_start = Clock::now();
  try {
    placement = resolve_placement(key);
  } catch (const WorkerFailure& e) {
    for (auto& ticket : batch) {
      worker_failed_.add();
      ClusterResponse r;
      r.status = ClusterStatus::kWorkerFailed;
      r.error = e.what();
      respond(ticket, std::move(r));
    }
    return;
  } catch (const std::exception& e) {
    for (auto& ticket : batch) {
      rejected_missing_.add();
      ClusterResponse r;
      r.status = ClusterStatus::kArchiveMissing;
      r.error = e.what();
      respond(ticket, std::move(r));
    }
    return;
  }
  // Placement resolution (first request pays the shard loads; later ones
  // hit the cache) is this batch's "load" stage.
  const double load_s = seconds_between(load_start, Clock::now());

  // Coalescible adjoints: no deadline, not cancelled. Everything else is
  // solved individually with its own deadline/cancel plumbing.
  std::vector<std::size_t> adjoint_group;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Ticket& t = batch[i];
    if (t.req.kind == serve::RequestKind::kAdjoint &&
        t.req.deadline_s <= 0.0 && !is_cancelled(t.id) &&
        static_cast<index_t>(t.req.rhs.size()) ==
            placement->nt * placement->ns) {
      adjoint_group.push_back(i);
    }
  }
  if (adjoint_group.size() >= 2) {
    solve_adjoint_group(batch, adjoint_group, placement, load_s);
  } else {
    adjoint_group.clear();
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (std::find(adjoint_group.begin(), adjoint_group.end(), i) !=
        adjoint_group.end()) {
      continue;  // already answered by the grouped sweep
    }
    solve_ticket(batch[i], placement, load_s);
  }
}

void ClusterService::solve_adjoint_group(
    std::vector<Ticket>& batch, const std::vector<std::size_t>& adj,
    const std::shared_ptr<const Placement>& placement, double load_s) {
  const auto nrhs = static_cast<index_t>(adj.size());
  const index_t rows = placement->nt * placement->ns;
  const index_t cols = placement->nt * placement->nr;
  std::vector<float> Y(static_cast<std::size_t>(rows * nrhs));
  std::vector<float> X(static_cast<std::size_t>(cols * nrhs));
  for (index_t r = 0; r < nrhs; ++r) {
    const Ticket& t = batch[adj[static_cast<std::size_t>(r)]];
    std::copy(t.req.rhs.begin(), t.req.rhs.end(),
              Y.begin() + static_cast<std::ptrdiff_t>(r * rows));
  }
  const auto t0 = Clock::now();
  // Stage attribution only (no sampling): the grouped sweep shares one
  // remote pass, so its stage times are shared by every grouped ticket.
  RequestTrace rt;
  rt.stages.load_s = load_s;
  try {
    // request_id 0 is never issued to callers, so the group can't be hit
    // by a cancel; deadline-carrying tickets were excluded above.
    RemoteMdcOperator op(fleet_, placement, /*request_id=*/0, {}, {},
                         [this](std::size_t w) { note_worker_death(w); },
                         &rt);
    op.apply_adjoint_batch(Y, X, nrhs);
  } catch (const WorkerFailure& e) {
    invalidate_placement(batch[adj.front()].req.op);
    for (const std::size_t i : adj) {
      worker_failed_.add();
      ClusterResponse r;
      r.status = ClusterStatus::kWorkerFailed;
      r.error = e.what();
      respond(batch[i], std::move(r));
    }
    return;
  } catch (const std::exception& e) {
    for (const std::size_t i : adj) {
      failed_.add();
      ClusterResponse r;
      r.status = ClusterStatus::kError;
      r.error = e.what();
      respond(batch[i], std::move(r));
    }
    return;
  }
  const double solve_s = seconds_between(t0, Clock::now());
  for (index_t r = 0; r < nrhs; ++r) {
    Ticket& t = batch[adj[static_cast<std::size_t>(r)]];
    ClusterResponse resp;
    resp.status = ClusterStatus::kOk;
    resp.x.assign(X.begin() + static_cast<std::ptrdiff_t>(r * cols),
                  X.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols));
    resp.queue_wait_s = seconds_between(t.admitted, t0);
    resp.solve_s = solve_s;
    resp.stages = rt.stages;
    resp.stages.queue_wait_s = resp.queue_wait_s;
    solve_hist_.record(solve_s);
    stage_recorder_.record(resp.stages);
    respond(t, std::move(resp));
  }
}

void ClusterService::solve_ticket(
    Ticket& ticket, const std::shared_ptr<const Placement>& placement,
    double load_s) {
  const auto dequeued = Clock::now();
  ClusterResponse resp;
  resp.queue_wait_s = seconds_between(ticket.admitted, dequeued);

  if (is_cancelled(ticket.id)) {
    cancelled_count_.add();
    resp.status = ClusterStatus::kCancelled;
    respond(ticket, std::move(resp));
    return;
  }
  Clock::time_point deadline_at{};
  if (ticket.req.deadline_s > 0.0) {
    deadline_at = ticket.admitted +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(ticket.req.deadline_s));
    if (dequeued >= deadline_at) {
      rejected_deadline_.add();
      resp.status = ClusterStatus::kDeadlineExceeded;
      respond(ticket, std::move(resp));
      return;
    }
  }
  const index_t rows = placement->nt * placement->ns;
  const index_t cols = placement->nt * placement->nr;
  if (static_cast<index_t>(ticket.req.rhs.size()) != rows) {
    failed_.add();
    resp.status = ClusterStatus::kError;
    resp.error = "rhs size does not match nt x nS of the archive";
    respond(ticket, std::move(resp));
    return;
  }

  const std::uint64_t id = ticket.id;
  // Always-on stage attribution; spans/clock samples only when the caller
  // asked for a distributed trace. The request id doubles as the trace id
  // (unique per service, never 0 for issued requests).
  RequestTrace rt;
  rt.stages.queue_wait_s = resp.queue_wait_s;
  rt.stages.load_s = load_s;
  std::uint64_t root_span = 0;
  const std::uint64_t solve_start_ns = obs::steady_now_ns();
  if (ticket.req.trace) {
    rt.ctx.trace_id = id;
    rt.ctx.sampled = true;
    root_span = rt.new_span_id();
    rt.ctx.parent_span_id = root_span;
  }
  RemoteMdcOperator op(
      fleet_, placement, id, deadline_at,
      [this, id] { return is_cancelled(id); },
      [this](std::size_t w) { note_worker_death(w); }, &rt);

  try {
    if (ticket.req.kind == serve::RequestKind::kAdjoint) {
      resp.x.resize(static_cast<std::size_t>(cols));
      op.apply_adjoint(ticket.req.rhs, resp.x);
      resp.status = ClusterStatus::kOk;
    } else {
      mdd::LsqrConfig lsqr = ticket.req.lsqr;
      const std::function<bool()> user_stop = lsqr.should_stop;
      lsqr.should_stop = [this, id, deadline_at, user_stop] {
        if (user_stop && user_stop()) return true;
        if (is_cancelled(id)) return true;
        return deadline_at != Clock::time_point{} &&
               Clock::now() >= deadline_at;
      };
      const std::uint64_t lsqr_start_ns = obs::steady_now_ns();
      mdd::LsqrResult result = mdd::lsqr_solve(op, ticket.req.rhs, lsqr);
      rt.stages.lsqr_s +=
          1e-9 * static_cast<double>(obs::steady_now_ns() - lsqr_start_ns);
      rt.stages.lsqr_iterations = result.iterations;
      resp.x = std::move(result.x);
      resp.iterations = result.iterations;
      resp.residual_norm = result.residual_norm;
      if (result.stop == mdd::LsqrResult::Stop::kAborted) {
        if (is_cancelled(id)) {
          cancelled_count_.add();
          resp.status = ClusterStatus::kCancelled;
        } else if (deadline_at != Clock::time_point{} &&
                   Clock::now() >= deadline_at) {
          rejected_deadline_.add();
          resp.status = ClusterStatus::kDeadlineExceeded;
          resp.x.clear();
        } else {
          resp.status = ClusterStatus::kOk;  // user's own should_stop
        }
      } else {
        resp.status = ClusterStatus::kOk;
      }
    }
  } catch (const mdc::CancelledError&) {
    if (is_cancelled(id)) {
      cancelled_count_.add();
      resp.status = ClusterStatus::kCancelled;
    } else {
      rejected_deadline_.add();
      resp.status = ClusterStatus::kDeadlineExceeded;
    }
    resp.x.clear();
  } catch (const WorkerFailure& e) {
    invalidate_placement(ticket.req.op);
    worker_failed_.add();
    resp.status = ClusterStatus::kWorkerFailed;
    resp.error = e.what();
    resp.x.clear();
  } catch (const std::exception& e) {
    failed_.add();
    resp.status = ClusterStatus::kError;
    resp.error = e.what();
    resp.x.clear();
  }
  resp.solve_s = seconds_between(dequeued, Clock::now());
  if (resp.status == ClusterStatus::kOk) solve_hist_.record(resp.solve_s);
  resp.stages = rt.stages;
  stage_recorder_.record(resp.stages);
  if (rt.ctx.sampled) {
    rt.add_span("request", root_span, /*parent_span_id=*/0, solve_start_ns,
                obs::steady_now_ns() - solve_start_ns);
    resp.trace_json = collect_trace(rt);
  }
  respond(ticket, std::move(resp));
}

std::shared_ptr<const Placement> ClusterService::resolve_placement(
    const serve::OperatorKey& key) {
  std::shared_future<std::shared_ptr<const Placement>> fut;
  std::promise<std::shared_ptr<const Placement>> promise;
  bool creator = false;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto it = placements_cache_.find(key);
    if (it != placements_cache_.end()) {
      fut = it->second;
    } else {
      fut = promise.get_future().share();
      placements_cache_.emplace(key, fut);
      creator = true;
    }
  }
  if (creator) {
    try {
      promise.set_value(build_placement(key));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Drop the poisoned entry so a later request can retry the load.
      std::lock_guard<std::mutex> lock(state_mu_);
      placements_cache_.erase(key);
    }
  }
  return fut.get();  // rethrows a build failure for waiters too
}

std::shared_ptr<const Placement> ClusterService::build_placement(
    const serve::OperatorKey& key) {
  const std::string& path = key.archive_id;
  // Throws on a missing/corrupt archive -> kArchiveMissing upstream.
  const std::vector<double> weights = io::archive_kernel_bytes(path);
  const auto nf = static_cast<index_t>(weights.size());

  const int max_attempts = static_cast<int>(fleet_.size());
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) replans_.add();
    std::vector<std::size_t> live;
    for (std::size_t w = 0; w < fleet_.size(); ++w) {
      if (fleet_[w]->alive()) live.push_back(w);
    }
    if (live.empty()) break;

    PlannerConfig pc = cfg_.planner;
    pc.num_workers = static_cast<int>(live.size());
    const ShardPlan plan = plan_shards(weights, pc);

    auto placement = std::make_shared<Placement>();
    placement->replicated = plan.replicated;
    bool lost_worker = false;

    if (plan.replicated) {
      // One shard id, every live worker loads the full frequency range;
      // any subset of successful loads is a valid (smaller) replica set.
      LoadShardMsg msg;
      msg.shard_id = next_shard_id_.fetch_add(1, std::memory_order_relaxed);
      msg.q_begin = 0;
      msg.q_end = nf;
      msg.archive_path = path;
      const Frame request = msg.to_frame();
      std::vector<std::pair<std::size_t, std::future<Frame>>> loads;
      for (const std::size_t w : live) {
        loads.emplace_back(w, fleet_[w]->call_async(request));
      }
      ShardAssignment shard;
      shard.shard_id = msg.shard_id;
      shard.q_begin = 0;
      shard.q_end = nf;
      bool have_dims = false;
      for (auto& [w, fut] : loads) {
        try {
          const LoadShardOkMsg ok = parse_load_reply(fut.get());
          if (!have_dims) {
            placement->nt = ok.nt;
            placement->ns = ok.ns;
            placement->nr = ok.nr;
            shard.freq_bins = ok.freq_bins;
            have_dims = true;
          }
          shard.workers.push_back(w);
        } catch (const TransportError&) {
          note_worker_death(w);
          lost_worker = true;
        }
      }
      if (!have_dims) continue;  // every replica died; replan
      placement->shards.push_back(std::move(shard));
      (void)lost_worker;  // partial replica loss is fine when replicated
    } else {
      std::vector<std::pair<std::size_t, std::future<Frame>>> loads;
      std::vector<LoadShardMsg> msgs;
      msgs.reserve(plan.shards.size());
      for (std::size_t s = 0; s < plan.shards.size(); ++s) {
        LoadShardMsg msg;
        msg.shard_id =
            next_shard_id_.fetch_add(1, std::memory_order_relaxed);
        msg.q_begin = plan.shards[s].first;
        msg.q_end = plan.shards[s].second;
        msg.archive_path = path;
        loads.emplace_back(live[s], fleet_[live[s]]->call_async(msg.to_frame()));
        msgs.push_back(std::move(msg));
      }
      for (std::size_t s = 0; s < loads.size(); ++s) {
        try {
          const LoadShardOkMsg ok = parse_load_reply(loads[s].second.get());
          ShardAssignment shard;
          shard.shard_id = msgs[s].shard_id;
          shard.q_begin = msgs[s].q_begin;
          shard.q_end = msgs[s].q_end;
          shard.freq_bins = ok.freq_bins;
          shard.workers.push_back(loads[s].first);
          placement->nt = ok.nt;
          placement->ns = ok.ns;
          placement->nr = ok.nr;
          placement->shards.push_back(std::move(shard));
        } catch (const TransportError&) {
          note_worker_death(loads[s].first);
          lost_worker = true;
        }
      }
      if (lost_worker) continue;  // a shard has no owner; replan over the living
    }
    placements_.add();
    return placement;
  }
  throw WorkerFailure("cluster: no live workers to place archive " + path);
}

std::string ClusterService::collect_trace(RequestTrace& rt) {
  obs::MergedTraceInput input;
  input.trace_id = rt.ctx.trace_id;
  input.frontend_spans = std::move(rt.spans);
  input.frontend_dropped = rt.dropped;

  TraceDumpMsg dump;
  dump.trace_id = rt.ctx.trace_id;
  const Frame request = dump.to_frame();
  for (const std::size_t w : rt.workers) {
    if (w >= fleet_.size() || !fleet_[w]->alive()) continue;
    try {
      const Frame reply = fleet_[w]->call(request);
      if (reply.type != static_cast<std::uint16_t>(MsgType::kTraceDumpOk)) {
        continue;  // v1 worker answered kError; its spans are simply absent
      }
      TraceDumpOkMsg ok = TraceDumpOkMsg::from_frame(reply);
      obs::WorkerTrace wt;
      wt.name = fleet_[w]->name();
      wt.offset_ns = obs::estimate_clock_offset_ns(rt.clock_samples[w]);
      wt.spans = std::move(ok.spans);
      wt.dropped_spans = ok.dropped_spans;
      input.workers.push_back(std::move(wt));
    } catch (const std::exception&) {
      // A worker that died after serving its exchanges just leaves a hole
      // in the timeline; the frontend spans still merge.
    }
  }
  return obs::merge_trace_json(input);
}

void ClusterService::record_slo(const ClusterResponse& r) {
  slo_.record(r.total_s, r.status == ClusterStatus::kOk);
  slo_.publish(registry_, "cluster");
  if (!slo_.breaches_objective(r.total_s) ||
      slo_.config().exemplar_dir.empty()) {
    return;
  }
  std::ostringstream os;
  os << "{\"request_id\":" << r.request_id << ",\"status\":\""
     << to_string(r.status) << "\",\"queue_wait_s\":" << r.queue_wait_s
     << ",\"solve_s\":" << r.solve_s << ",\"total_s\":" << r.total_s
     << ",\"stages\":" << r.stages.to_json();
  if (!r.trace_json.empty()) os << ",\"trace\":" << r.trace_json;
  os << "}";
  (void)slo_.persist_exemplar(r.request_id, os.str());
}

bool ClusterService::is_cancelled(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return cancelled_.count(id) != 0;
}

void ClusterService::invalidate_placement(const serve::OperatorKey& key) {
  // Solves already holding the shared_ptr keep their placement; only the
  // cache entry goes, so the next resolve_placement() rebuilds it.
  std::lock_guard<std::mutex> lock(state_mu_);
  placements_cache_.erase(key);
}

void ClusterService::note_worker_death(std::size_t worker) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (dead_noted_.insert(worker).second) worker_deaths_.add();
}

void ClusterService::respond(Ticket& ticket, ClusterResponse r) {
  r.vsrc = ticket.req.vsrc;
  r.request_id = ticket.id;
  r.total_s = seconds_between(ticket.admitted, Clock::now());
  if (r.status == ClusterStatus::kOk) completed_.add();
  record_slo(r);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (cfg_.tenant_quota > 0) {
      const auto it = tenant_inflight_.find(ticket.req.tenant);
      if (it != tenant_inflight_.end() && it->second > 0) --it->second;
    }
    cancelled_.erase(ticket.id);
  }
  ticket.done.set_value(std::move(r));
}

}  // namespace tlrwse::cluster
