#include "tlrwse/cluster/worker.hpp"

#include <exception>
#include <string>
#include <utility>

#include "tlrwse/io/archive.hpp"

namespace tlrwse::cluster {

namespace {

Frame error_frame(std::uint64_t request_id, WireErrorCode code,
                  std::string message) {
  ErrorMsg err;
  err.request_id = request_id;
  err.code = code;
  err.message = std::move(message);
  return err.to_frame();
}

}  // namespace

Frame ShardWorker::handle(const Frame& request) {
  // Stamped before any parsing so the reply's clock sample brackets the
  // worker's whole processing time (the t1 of the NTP offset estimate).
  const std::uint64_t recv_ns = obs::steady_now_ns();
  try {
    switch (static_cast<MsgType>(request.type)) {
      case MsgType::kLoadShard:
        return handle_load(LoadShardMsg::from_frame(request));
      case MsgType::kApply:
        return handle_apply(ApplyMsg::from_frame(request), recv_ns);
      case MsgType::kCancel:
        return handle_cancel(CancelMsg::from_frame(request));
      case MsgType::kMetrics:
        return handle_metrics();
      case MsgType::kTraceDump:
        return handle_trace_dump(TraceDumpMsg::from_frame(request));
      case MsgType::kHealth:
        return health().to_frame();
      case MsgType::kShutdown:
        return handle_shutdown();
      default:
        return error_frame(0, WireErrorCode::kBadRequest,
                           "worker: unexpected frame type " +
                               std::to_string(request.type));
    }
  } catch (const WireError& e) {
    return error_frame(0, WireErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return error_frame(0, WireErrorCode::kInternal, e.what());
  }
}

void ShardWorker::add_shard(
    std::uint32_t shard_id, index_t nt, index_t ns, index_t nr,
    std::vector<index_t> freq_bins,
    std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels) {
  auto shard = std::make_shared<Shard>();
  shard->nt = nt;
  shard->ns = ns;
  shard->nr = nr;
  shard->q_begin = 0;
  shard->q_end = static_cast<index_t>(freq_bins.size());
  shard->freq_bins = std::move(freq_bins);
  shard->kernels = std::move(kernels);
  std::lock_guard<std::mutex> lock(mu_);
  shards_[shard_id] = std::move(shard);
}

Frame ShardWorker::handle_load(const LoadShardMsg& msg) {
  auto shard = std::make_shared<Shard>();
  try {
    const io::ArchiveInfo info = io::peek_archive(msg.archive_path);
    if (msg.q_begin < 0 || msg.q_end > info.num_freqs() ||
        msg.q_begin >= msg.q_end) {
      return error_frame(0, WireErrorCode::kBadRequest,
                         "worker: shard range outside archive frequencies");
    }
    if (info.shared_basis) {
      const io::SharedKernelArchive slice =
          io::load_shared_archive_slice(msg.archive_path, msg.q_begin,
                                        msg.q_end);
      shard->nt = slice.nt;
      shard->freq_bins = slice.freq_bins;
      shard->bytes = slice.shared_bytes();
      shard->kernels = io::make_kernels(slice);
    } else {
      const io::KernelArchive slice =
          io::load_archive_slice(msg.archive_path, msg.q_begin, msg.q_end);
      shard->nt = slice.nt;
      shard->freq_bins = slice.freq_bins;
      shard->bytes = slice.compressed_bytes();
      shard->kernels = io::make_kernels(slice);
    }
    shard->q_begin = msg.q_begin;
    shard->q_end = msg.q_end;
  } catch (const std::exception& e) {
    return error_frame(0, WireErrorCode::kArchiveMissing, e.what());
  }
  if (shard->kernels.empty()) {
    return error_frame(0, WireErrorCode::kArchiveMissing,
                       "worker: shard has no kernels");
  }
  shard->ns = shard->kernels.front()->rows();
  shard->nr = shard->kernels.front()->cols();

  LoadShardOkMsg ok;
  ok.shard_id = msg.shard_id;
  ok.nt = shard->nt;
  ok.ns = shard->ns;
  ok.nr = shard->nr;
  ok.freq_bins = shard->freq_bins;
  registry_.counter("worker.shards_loaded").add();
  registry_.gauge("worker.frequencies_resident")
      .add(static_cast<std::int64_t>(shard->freq_bins.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_[msg.shard_id] = std::move(shard);
  }
  return ok.to_frame();
}

Frame ShardWorker::handle_apply(const ApplyMsg& msg, std::uint64_t recv_ns) {
  struct InflightGuard {
    std::atomic<std::uint64_t>& n;
    explicit InflightGuard(std::atomic<std::uint64_t>& c) : n(c) {
      n.fetch_add(1, std::memory_order_relaxed);
    }
    ~InflightGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
  } inflight_guard(inflight_);

  // Snapshot the shard under the lock, run the kernels outside it: loads
  // of other shards and cancels must not wait on an in-flight apply.
  std::shared_ptr<const Shard> shard;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = shards_.find(msg.shard_id);
    if (it != shards_.end()) shard = it->second;
  }
  if (!shard) {
    return error_frame(msg.request_id, WireErrorCode::kUnknownShard,
                       "worker: unknown shard " +
                           std::to_string(msg.shard_id));
  }
  if (msg.nrhs < 1) {
    return error_frame(msg.request_id, WireErrorCode::kBadRequest,
                       "worker: nrhs must be >= 1");
  }
  const auto nq = shard->kernels.size();
  const auto nin =
      static_cast<std::size_t>(msg.adjoint ? shard->ns : shard->nr);
  const auto nout =
      static_cast<std::size_t>(msg.adjoint ? shard->nr : shard->ns);
  const auto nrhs = static_cast<std::size_t>(msg.nrhs);
  if (msg.data.size() != nq * nrhs * nin) {
    return error_frame(msg.request_id, WireErrorCode::kBadRequest,
                       "worker: apply payload size mismatch");
  }

  const obs::ScopedHistTimer timer(registry_.histogram("worker.apply_s"));
  const auto start = std::chrono::steady_clock::now();
  ApplyOkMsg ok;
  ok.request_id = msg.request_id;
  ok.data.resize(nq * nrhs * nout);

  // Sampled requests buffer their spans for a later kTraceDump; the apply
  // span parents the per-frequency MVM spans.
  const bool traced = msg.trace.active();
  const std::uint64_t apply_span_id = traced ? span_buf_.next_span_id() : 0;
  const std::uint64_t apply_start_ns = traced ? obs::steady_now_ns() : 0;

  mdc::FrequencyWorkspace& ws = ws_pool_.local();
  for (std::size_t q = 0; q < nq; ++q) {
    // Between per-frequency MVMs is where a deadline or cancel can take
    // effect without tearing a kernel apply in half.
    if (msg.deadline_s > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= msg.deadline_s) {
        registry_.counter("worker.deadline_exceeded").add();
        return error_frame(msg.request_id, WireErrorCode::kDeadlineExceeded,
                           "worker: deadline exceeded mid-shard");
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_.count(msg.request_id) != 0) {
        cancelled_.erase(msg.request_id);
        registry_.counter("worker.cancelled").add();
        return error_frame(msg.request_id, WireErrorCode::kCancelled,
                           "worker: request cancelled");
      }
    }
    const mdc::FrequencyMvm& kernel = *shard->kernels[q];
    const std::span<const cf32> xk(msg.data.data() + q * nrhs * nin,
                                   nrhs * nin);
    const std::span<cf32> yk(ok.data.data() + q * nrhs * nout, nrhs * nout);
    const std::uint64_t mvm_start_ns = traced ? obs::steady_now_ns() : 0;
    if (msg.nrhs == 1) {
      if (msg.adjoint) {
        kernel.apply_adjoint(xk, yk, ws);
      } else {
        kernel.apply(xk, yk, ws);
      }
    } else {
      if (msg.adjoint) {
        kernel.apply_adjoint_batch(xk, yk, msg.nrhs, ws);
      } else {
        kernel.apply_batch(xk, yk, msg.nrhs, ws);
      }
    }
    if (traced) {
      obs::RemoteSpan span;
      span.name = "worker.mvm q=" +
                  std::to_string(shard->freq_bins[q]);
      span.trace_id = msg.trace.trace_id;
      span.span_id = span_buf_.next_span_id();
      span.parent_span_id = apply_span_id;
      span.ts_ns = mvm_start_ns;
      span.dur_ns = obs::steady_now_ns() - mvm_start_ns;
      span_buf_.record(std::move(span));
    }
  }
  {
    // A cancel that raced past the last check is moot now; drop it so the
    // set stays bounded by genuinely in-flight ids.
    std::lock_guard<std::mutex> lock(mu_);
    cancelled_.erase(msg.request_id);
  }
  registry_.counter("worker.applies").add();
  if (traced) {
    obs::RemoteSpan span;
    span.name = "worker.apply";
    span.trace_id = msg.trace.trace_id;
    span.span_id = apply_span_id;
    span.parent_span_id = msg.trace.parent_span_id;
    span.ts_ns = apply_start_ns;
    span.dur_ns = obs::steady_now_ns() - apply_start_ns;
    span_buf_.record(std::move(span));
  }
  ok.worker_recv_ns = recv_ns;
  ok.worker_send_ns = obs::steady_now_ns();
  return ok.to_frame();
}

Frame ShardWorker::handle_trace_dump(const TraceDumpMsg& msg) {
  obs::RemoteSpanBuffer::Dump dump = span_buf_.take(msg.trace_id);
  span_drops_.fetch_add(dump.dropped, std::memory_order_relaxed);
  TraceDumpOkMsg ok;
  ok.trace_id = msg.trace_id;
  ok.dropped_spans = dump.dropped;
  ok.spans = std::move(dump.spans);
  return ok.to_frame();
}

HealthOkMsg ShardWorker::health() const {
  HealthOkMsg ok;
  ok.uptime_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
  ok.inflight = inflight_.load(std::memory_order_relaxed);
  ok.dropped_spans = span_drops_.load(std::memory_order_relaxed);
  const obs::MetricsRegistry::Snapshot snap = registry_.snapshot();
  if (const auto it = snap.counters.find("worker.applies");
      it != snap.counters.end()) {
    ok.applies = it->second;
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "oocache.stall_s") ok.stall_s = h.snap.sum;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [shard_id, shard] : shards_) {
      HealthOkMsg::ShardInfo info;
      info.shard_id = shard_id;
      info.q_begin = shard->q_begin;
      info.q_end = shard->q_end;
      info.num_freqs = static_cast<std::uint32_t>(shard->freq_bins.size());
      info.bytes = shard->bytes;
      ok.resident_bytes += shard->bytes;
      ok.shards.push_back(info);
    }
  }
  return ok;
}

Frame ShardWorker::handle_cancel(const CancelMsg& msg) {
  CancelOkMsg ok;
  ok.request_id = msg.request_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ok.in_flight = cancelled_.insert(msg.request_id).second;
  }
  registry_.counter("worker.cancel_requests").add();
  return ok.to_frame();
}

Frame ShardWorker::handle_metrics() {
  MetricsOkMsg ok;
  ok.snapshot = registry_.snapshot();
  return ok.to_frame();
}

Frame ShardWorker::handle_shutdown() {
  shutdown_.store(true, std::memory_order_relaxed);
  return ShutdownOkMsg{}.to_frame();
}

}  // namespace tlrwse::cluster
