#include "tlrwse/cluster/transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tlrwse::cluster {

namespace {

[[noreturn]] void throw_errno(TransportError::Kind kind,
                              const std::string& what) {
  throw TransportError(kind, what + ": " + std::strerror(errno));
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

// --- LocalChannel ---------------------------------------------------------

LocalChannel::LocalChannel(FrameHandler handler)
    : handler_(std::move(handler)) {}

Frame LocalChannel::call(const Frame& request) {
  if (dead_.load(std::memory_order_relaxed)) {
    throw TransportError(TransportError::Kind::kClosed,
                         "local channel: peer killed");
  }
  // Round-trip through the byte encoding so local tests certify the same
  // path the sockets use, not a shortcut around it.
  const std::vector<std::uint8_t> bytes = encode_frame(request);
  Frame decoded;
  const std::size_t used = decode_frame(bytes, decoded);
  if (used != bytes.size()) {
    throw TransportError(TransportError::Kind::kProtocol,
                         "local channel: re-decode consumed wrong length");
  }
  Frame reply = handler_(decoded);
  if (dead_.load(std::memory_order_relaxed)) {
    // Killed while the handler ran: the reply never made it onto the wire.
    throw TransportError(TransportError::Kind::kClosed,
                         "local channel: peer killed mid-call");
  }
  const std::vector<std::uint8_t> reply_bytes = encode_frame(reply);
  Frame out;
  if (decode_frame(reply_bytes, out) != reply_bytes.size()) {
    throw TransportError(TransportError::Kind::kProtocol,
                         "local channel: reply re-decode failed");
  }
  return out;
}

void LocalChannel::close() { kill(); }

// --- SocketChannel --------------------------------------------------------

SocketChannel::SocketChannel(int fd, int timeout_ms)
    : fd_(fd), timeout_ms_(timeout_ms) {}

SocketChannel::~SocketChannel() { close(); }

std::unique_ptr<SocketChannel> SocketChannel::connect_unix(
    const std::string& path, int timeout_ms) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(TransportError::Kind::kClosed, "socket(unix)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kProtocol,
                         "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno(TransportError::Kind::kClosed, "connect(" + path + ")");
  }
  return std::unique_ptr<SocketChannel>(new SocketChannel(fd, timeout_ms));
}

std::unique_ptr<SocketChannel> SocketChannel::connect_tcp(
    const std::string& host, std::uint16_t port, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(TransportError::Kind::kClosed, "socket(tcp)");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kProtocol,
                         "bad IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno(TransportError::Kind::kClosed, "connect(tcp)");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<SocketChannel>(new SocketChannel(fd, timeout_ms));
}

void SocketChannel::write_all(const std::uint8_t* data, std::size_t n) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w =
        ::send(fd_, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno(TransportError::Kind::kClosed, "send");
    }
    sent += static_cast<std::size_t>(w);
  }
}

Frame SocketChannel::read_frame() {
  Frame out;
  for (;;) {
    // A whole frame may already be buffered from a previous oversized read.
    try {
      const std::size_t used = decode_frame(buf_, out);
      if (used > 0) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(used));
        return out;
      }
    } catch (const WireError& e) {
      throw TransportError(TransportError::Kind::kProtocol, e.what());
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, timeout_ms_);
    if (pr < 0) {
      if (errno == EINTR) continue;
      throw_errno(TransportError::Kind::kClosed, "poll");
    }
    if (pr == 0) {
      throw TransportError(TransportError::Kind::kTimeout,
                           "transport: reply timed out");
    }
    std::uint8_t chunk[64 * 1024];
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno(TransportError::Kind::kClosed, "recv");
    }
    if (r == 0) {
      throw TransportError(TransportError::Kind::kClosed,
                           "transport: peer closed connection");
    }
    buf_.insert(buf_.end(), chunk, chunk + r);
  }
}

Frame SocketChannel::call(const Frame& request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) {
    throw TransportError(TransportError::Kind::kClosed,
                         "transport: channel closed");
  }
  try {
    const std::vector<std::uint8_t> bytes = encode_frame(request);
    write_all(bytes.data(), bytes.size());
    return read_frame();
  } catch (const TransportError&) {
    // Stream state is unknown after a failure; poison the channel so the
    // caller re-routes to a replica instead of reading a stale reply.
    close_fd(fd_);
    throw;
  }
}

void SocketChannel::close() {
  std::lock_guard<std::mutex> lock(mu_);
  close_fd(fd_);
}

// --- SocketServer ---------------------------------------------------------

SocketServer::SocketServer(int listen_fd, std::uint16_t port,
                           FrameHandler handler)
    : listen_fd_(listen_fd), port_(port), handler_(std::move(handler)) {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

SocketServer::~SocketServer() { stop(); }

std::unique_ptr<SocketServer> SocketServer::listen_unix(
    const std::string& path, FrameHandler handler) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(TransportError::Kind::kClosed, "socket(unix)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    throw TransportError(TransportError::Kind::kProtocol,
                         "unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno(TransportError::Kind::kClosed, "bind/listen(" + path + ")");
  }
  return std::unique_ptr<SocketServer>(
      new SocketServer(fd, 0, std::move(handler)));
}

std::unique_ptr<SocketServer> SocketServer::listen_tcp(std::uint16_t port,
                                                       FrameHandler handler) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno(TransportError::Kind::kClosed, "socket(tcp)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno(TransportError::Kind::kClosed, "bind/listen(tcp)");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  std::uint16_t actual = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    actual = ntohs(bound.sin_port);
  }
  return std::unique_ptr<SocketServer>(
      new SocketServer(fd, actual, std::move(handler)));
}

void SocketServer::accept_loop() {
  for (;;) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed by stop()
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(conn);
      return;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void SocketServer::serve_connection(int fd) {
  // Deregister-then-close under the mutex so stop() never shutdown()s a
  // recycled descriptor.
  const auto release = [this, fd] {
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      std::erase(conn_fds_, fd);
    }
    ::close(fd);
  };
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[64 * 1024];
  while (!stopping_.load(std::memory_order_relaxed)) {
    const ssize_t r = ::recv(fd, chunk, sizeof(chunk), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) break;  // peer hung up, stop() woke us, or socket error
    buf.insert(buf.end(), chunk, chunk + r);
    for (;;) {
      Frame request;
      std::size_t used = 0;
      try {
        used = decode_frame(buf, request);
      } catch (const WireError&) {
        release();
        return;  // garbage stream: drop the connection
      }
      if (used == 0) break;  // need more bytes
      buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(used));
      Frame reply;
      try {
        reply = handler_(request);
      } catch (const std::exception& e) {
        ErrorMsg err;
        err.code = WireErrorCode::kInternal;
        err.message = e.what();
        reply = err.to_frame();
      }
      const std::vector<std::uint8_t> bytes = encode_frame(reply);
      std::size_t sent = 0;
      while (sent < bytes.size()) {
        const ssize_t w = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (w < 0 && errno == EINTR) continue;
        if (w < 0) {
          release();
          return;
        }
        sent += static_cast<std::size_t>(w);
      }
    }
  }
  release();
}

void SocketServer::stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  ::shutdown(listen_fd_, SHUT_RDWR);
  close_fd(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    // Wake any thread parked in recv(); it sees stopping_ and exits.
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads = std::move(conn_threads_);
    conn_threads_.clear();
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace tlrwse::cluster
