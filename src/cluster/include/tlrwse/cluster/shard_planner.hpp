// Frequency placement for the distributed serving tier.
//
// The planner answers one question: given the per-frequency compressed
// kernel weight of an archive (io::archive_kernel_bytes) and a worker
// fleet, which contiguous frequency range does each worker own?
//
// Two regimes, mirroring the two WSE mapping strategies in
// wse::Strategy (machine.hpp):
//  - Small/hot operators are REPLICATED onto every worker — the analogue
//    of kScatterRealMvms, which trades duplicated bases for parallelism
//    when each unit easily holds the whole thing.
//  - Large operators are SHARDED into contiguous weight-balanced ranges —
//    the analogue of kSplitStackWidth, which scales by splitting the rank
//    stack when one unit cannot hold it. Contiguity matters for the same
//    reason wse chunking keeps rank rows consecutive: one shard = one
//    archive slice = one seek-forward pass over the file.
#pragma once

#include <utility>
#include <vector>

#include "tlrwse/common/types.hpp"

namespace tlrwse::cluster {

struct PlannerConfig {
  /// Number of workers available for this operator.
  int num_workers = 1;
  /// Operators whose total compressed kernel weight fits under this bound
  /// are replicated onto every worker instead of sharded. 0 disables
  /// replication (always shard).
  double replicate_max_bytes = 0.0;
};

/// Placement decision for one operator.
struct ShardPlan {
  /// True when every worker holds all frequencies (hot/small operator);
  /// false when each worker owns one contiguous [q_begin, q_end) range.
  bool replicated = false;
  /// Half-open frequency ranges, one per shard, covering [0, nf) exactly
  /// in order. Replicated plans have a single range [0, nf).
  std::vector<std::pair<index_t, index_t>> shards;
};

/// Plans a placement for `weights[q]` = compressed bytes of frequency q.
/// Sharded plans greedily accumulate frequencies toward total/num_workers
/// per shard, so a rank-heavy band does not overload one worker. Never
/// returns more shards than frequencies; trailing workers may be idle.
[[nodiscard]] ShardPlan plan_shards(const std::vector<double>& weights,
                                    const PlannerConfig& cfg);

}  // namespace tlrwse::cluster
