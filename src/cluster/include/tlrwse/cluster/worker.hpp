// Shard worker: the backend half of the distributed serving tier.
//
// A worker owns one or more frequency shards — contiguous slices of an
// archive loaded with io::load_archive_slice / load_shared_archive_slice —
// and answers kApply frames by running the exact same FrequencyMvm objects
// a single-process MdcOperator would, over the exact bytes the frontend
// gathered. No FFT happens here: frequency-domain slices in, slices out,
// which is what keeps a distributed solve bitwise identical to a local
// one.
//
// The handler is transport-agnostic: handle() maps one request frame to
// one reply frame, so the same ShardWorker sits behind a SocketServer in a
// real worker process and behind a LocalChannel in tests.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "tlrwse/cluster/wire.hpp"
#include "tlrwse/common/workspace_pool.hpp"
#include "tlrwse/mdc/frequency_mvm.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/trace_context.hpp"

namespace tlrwse::cluster {

class ShardWorker {
 public:
  ShardWorker() = default;
  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// One request frame in, one reply frame out. Malformed frames come back
  /// as kError/kBadRequest; internal failures as kError/kInternal — the
  /// caller always gets a frame, never an exception.
  [[nodiscard]] Frame handle(const Frame& request);

  /// Direct shard injection for tests (e.g. dense kernels, which have no
  /// archive format). `kernels[i]` serves `freq_bins[i]`.
  void add_shard(std::uint32_t shard_id, index_t nt, index_t ns, index_t nr,
                 std::vector<index_t> freq_bins,
                 std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels);

  /// True once a kShutdown frame has been answered; the process driver
  /// polls this to know when to stop its server and exit.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// This worker's metrics (worker.* names), for kMetrics replies and
  /// direct inspection in tests.
  [[nodiscard]] obs::MetricsRegistry::Snapshot metrics_snapshot() const {
    return registry_.snapshot();
  }

  /// This worker's health report (kHealthOk payload): shard ownership,
  /// resident bytes, uptime, in-flight applies, span-buffer drops.
  [[nodiscard]] HealthOkMsg health() const;

 private:
  struct Shard {
    index_t nt = 0;
    index_t ns = 0;  // kernel rows
    index_t nr = 0;  // kernel cols
    index_t q_begin = 0;  // archive frequency-index range
    index_t q_end = 0;
    double bytes = 0.0;  // compressed payload resident for this shard
    std::vector<index_t> freq_bins;
    std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  };

  Frame handle_load(const LoadShardMsg& msg);
  Frame handle_apply(const ApplyMsg& msg, std::uint64_t recv_ns);
  Frame handle_cancel(const CancelMsg& msg);
  Frame handle_metrics();
  Frame handle_trace_dump(const TraceDumpMsg& msg);
  Frame handle_shutdown();

  mutable std::mutex mu_;
  std::map<std::uint32_t, std::shared_ptr<const Shard>> shards_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::atomic<bool> shutdown_{false};
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> span_drops_{0};  // take()-observed drop total
  const std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();

  obs::MetricsRegistry registry_;
  /// Completed spans of sampled requests, held until the frontend's
  /// kTraceDump collects them (bounded; overflow is counted per trace).
  obs::RemoteSpanBuffer span_buf_;
  WorkspacePool<mdc::FrequencyWorkspace> ws_pool_;
};

}  // namespace tlrwse::cluster
