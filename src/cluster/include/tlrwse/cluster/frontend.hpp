// Frontend of the distributed serving tier: admission, placement, remote
// solve orchestration.
//
// The frontend keeps the whole solve loop local — rFFT, LSQR, inverse rFFT
// — and ships only the per-frequency kernel MVMs to the workers, as
// RemoteMdcOperator. Because the workers run the exact FrequencyMvm
// arithmetic over the exact gathered bytes a local MdcOperator would (and
// each frequency bin is owned by exactly one shard), a distributed solve
// is bitwise identical to the single-process SolveService solving the same
// archive.
//
// Failure semantics: a worker death surfaces as TransportError inside one
// shard exchange; the frontend marks the worker dead, retries the shard on
// the next live replica, and only when no replica remains does the request
// fail — typed kWorkerFailed, never a hang. Deadlines travel in each
// ApplyMsg (remaining budget) and are also enforced between LSQR
// iterations; cancellation is a frontend flag plus a best-effort kCancel
// broadcast so workers abandon the shard mid-loop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tlrwse/cluster/shard_planner.hpp"
#include "tlrwse/cluster/transport.hpp"
#include "tlrwse/cluster/wire.hpp"
#include "tlrwse/fft/fft.hpp"
#include "tlrwse/mdc/linear_operator.hpp"
#include "tlrwse/mdd/lsqr.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/serve/admission_queue.hpp"
#include "tlrwse/serve/operator_cache.hpp"
#include "tlrwse/serve/solve_service.hpp"
#include "tlrwse/serve/task_executor.hpp"

namespace tlrwse::cluster {

/// Raised when a shard has no live replica left to serve an exchange.
/// Maps to ClusterStatus::kWorkerFailed — typed degradation, not a hang.
class WorkerFailure : public std::runtime_error {
 public:
  explicit WorkerFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// One connected worker. call_async() hands the frame to a dispatcher
/// thread (so fan-out to N workers overlaps even though each Channel is
/// one-call-at-a-time); a TransportError marks the worker dead and fails
/// everything still queued — callers re-route to replicas.
class WorkerClient {
 public:
  WorkerClient(std::unique_ptr<Channel> channel, std::string name);
  ~WorkerClient();
  WorkerClient(const WorkerClient&) = delete;
  WorkerClient& operator=(const WorkerClient&) = delete;

  [[nodiscard]] std::future<Frame> call_async(Frame request);
  /// Convenience synchronous exchange; rethrows the dispatcher's error.
  [[nodiscard]] Frame call(Frame request);

  [[nodiscard]] bool alive() const noexcept {
    return !dead_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Stops the dispatcher and closes the channel (failing queued calls).
  void close();

 private:
  struct Pending {
    Frame request;
    std::promise<Frame> reply;
  };

  void dispatch_loop();
  void mark_dead(const TransportError& err);

  std::unique_ptr<Channel> channel_;
  std::string name_;
  std::atomic<bool> dead_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool stop_ = false;
  std::exception_ptr death_;  // the TransportError that killed the worker
  std::thread dispatcher_;
};

/// Placement of one operator's frequencies onto the fleet.
struct ShardAssignment {
  std::uint32_t shard_id = 0;
  index_t q_begin = 0;  // archive frequency-index range of this shard
  index_t q_end = 0;
  std::vector<index_t> freq_bins;  // global rFFT bins, one per kernel
  /// Worker indices (into the fleet) holding this shard, in retry order.
  /// Sharded placements have one entry; replicated placements list every
  /// worker that finished the load.
  std::vector<std::size_t> workers;
};

struct Placement {
  index_t nt = 0;
  index_t ns = 0;
  index_t nr = 0;
  bool replicated = false;
  std::vector<ShardAssignment> shards;
};

/// The MDC operator y = F^H K F x with the K stage executed remotely:
/// rFFT locally, gather each shard's per-frequency slices, exchange with a
/// live replica, scatter the replies into the zero-initialised spectrum
/// (shards own disjoint bins), inverse rFFT locally. One instance per
/// request; the placement and fleet are shared.
class RemoteMdcOperator final : public mdc::LinearOperator {
 public:
  /// `cancelled` (optional) is polled before every remote exchange; a true
  /// return aborts the apply with mdc::CancelledError, mirroring the
  /// CancelScope deadline poll of the local operator. `on_worker_death` is
  /// notified once per worker this operator discovers dead.
  RemoteMdcOperator(std::span<const std::unique_ptr<WorkerClient>> fleet,
                    std::shared_ptr<const Placement> placement,
                    std::uint64_t request_id,
                    std::chrono::steady_clock::time_point deadline_at = {},
                    std::function<bool()> cancelled = {},
                    std::function<void(std::size_t)> on_worker_death = {});

  [[nodiscard]] index_t rows() const override;
  [[nodiscard]] index_t cols() const override;

  void apply(std::span<const float> x, std::span<float> y) const override;
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override;
  /// Batched forms (nrhs wavefields back to back), one multi-RHS panel per
  /// remote frequency — the cluster counterpart of MdcOperator's batched
  /// applies, every RHS bitwise identical to its single-RHS call.
  void apply_batch(std::span<const float> X, std::span<float> Y,
                   index_t nrhs) const;
  void apply_adjoint_batch(std::span<const float> Y, std::span<float> X,
                           index_t nrhs) const;

 private:
  void run(std::span<const float> in, std::span<float> out, index_t nrhs,
           bool adjoint) const;
  /// One shard exchange with replica retry. Throws WorkerFailure when the
  /// replica list is exhausted, mdc::CancelledError on a typed
  /// kCancelled / kDeadlineExceeded reply.
  [[nodiscard]] ApplyOkMsg exchange(const ShardAssignment& shard,
                                    ApplyMsg msg) const;
  void check_abort() const;
  [[nodiscard]] double remaining_deadline_s() const;

  std::span<const std::unique_ptr<WorkerClient>> fleet_;
  std::shared_ptr<const Placement> placement_;
  std::uint64_t request_id_;
  std::chrono::steady_clock::time_point deadline_at_;
  std::function<bool()> cancelled_;
  std::function<void(std::size_t)> on_worker_death_;
  fft::FftPlan plan_;
  mutable std::mutex scratch_mu_;
  mutable std::vector<cf32> in_spec_, out_spec_;
  mutable fft::BatchWorkspace fft_ws_;
};

enum class ClusterStatus {
  kOk,
  kQueueFull,         // bounded admission queue was full
  kQuotaExceeded,     // tenant's in-flight quota was exhausted
  kDeadlineExceeded,  // deadline hit before/during the solve
  kArchiveMissing,    // archive absent/unreadable at placement time
  kWorkerFailed,      // a shard lost every replica mid-solve
  kCancelled,         // cancel(request_id) landed before completion
  kError,             // unexpected failure (details in .error)
};
[[nodiscard]] const char* to_string(ClusterStatus s);

struct ClusterRequest {
  serve::OperatorKey op;  // archive_id doubles as the archive path
  serve::RequestKind kind = serve::RequestKind::kLsqr;
  std::string tenant;     // quota bucket; empty shares the default bucket
  index_t vsrc = -1;
  std::vector<float> rhs;
  mdd::LsqrConfig lsqr;
  double deadline_s = 0.0;
};

struct ClusterResponse {
  ClusterStatus status = ClusterStatus::kOk;
  index_t vsrc = -1;
  std::uint64_t request_id = 0;
  std::vector<float> x;
  int iterations = 0;
  double residual_norm = 0.0;
  double queue_wait_s = 0.0;
  double solve_s = 0.0;
  double total_s = 0.0;
  std::string error;
};

struct ClusterConfig {
  int frontend_workers = 2;         // concurrent solve batches
  std::size_t queue_capacity = 64;  // admission bound
  std::size_t max_batch = 4;        // per-operator coalescing limit
  /// Max in-flight (queued + solving) requests per tenant; 0 = unlimited.
  std::size_t tenant_quota = 0;
  PlannerConfig planner;            // num_workers is overridden per plan
};

/// Handle returned by submit(): the id is live immediately (usable for
/// cancel() while the request is still queued), the future resolves when
/// the request finishes or is rejected.
struct SubmittedRequest {
  std::uint64_t request_id = 0;
  std::future<ClusterResponse> response;
};

/// The RPC front door: bounded admission + per-tenant quotas (front half
/// shared with serve::SolveService via AdmissionQueue), deduplicated
/// placement/loading of archives onto the worker fleet, per-operator
/// batched solving over RemoteMdcOperator, typed degradation on worker
/// death, and a fleet-wide merged metrics view.
class ClusterService {
 public:
  ClusterService(ClusterConfig cfg,
                 std::vector<std::unique_ptr<WorkerClient>> workers);
  ~ClusterService();
  ClusterService(const ClusterService&) = delete;
  ClusterService& operator=(const ClusterService&) = delete;

  [[nodiscard]] SubmittedRequest submit(ClusterRequest req);

  /// Flags the request locally and broadcasts kCancel to the fleet
  /// (best-effort): queued requests reject at dequeue, in-flight solves
  /// abort between frequency MVMs / LSQR iterations.
  void cancel(std::uint64_t request_id);

  /// Stops admission, drains admitted requests, joins the solve workers,
  /// then asks every live remote worker to shut down. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t live_workers() const;
  /// Frontend-only metrics ("cluster.*" names).
  [[nodiscard]] const obs::MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  /// Frontend snapshot merged with every live worker's (worker.* names),
  /// via obs::merge_snapshots.
  [[nodiscard]] obs::MetricsRegistry::Snapshot cluster_snapshot();

 private:
  struct Ticket {
    ClusterRequest req;
    std::uint64_t id = 0;
    std::promise<ClusterResponse> done;
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop();
  void process_batch(const serve::OperatorKey& key,
                     std::vector<Ticket> batch);
  void solve_ticket(Ticket& ticket,
                    const std::shared_ptr<const Placement>& placement);
  /// Serves >= 2 deadline-free adjoint tickets with one multi-RHS remote
  /// sweep (each RHS bitwise identical to its single solve).
  void solve_adjoint_group(std::vector<Ticket>& batch,
                           const std::vector<std::size_t>& adj,
                           const std::shared_ptr<const Placement>& placement);
  [[nodiscard]] std::shared_ptr<const Placement> resolve_placement(
      const serve::OperatorKey& key);
  [[nodiscard]] std::shared_ptr<const Placement> build_placement(
      const serve::OperatorKey& key);
  [[nodiscard]] bool is_cancelled(std::uint64_t id) const;
  void note_worker_death(std::size_t worker);
  /// Drops the cached placement after a kWorkerFailed solve so the next
  /// request for this operator replans over the workers still alive.
  void invalidate_placement(const serve::OperatorKey& key);
  void respond(Ticket& ticket, ClusterResponse r);

  ClusterConfig cfg_;
  std::vector<std::unique_ptr<WorkerClient>> fleet_;

  mutable obs::MetricsRegistry registry_;
  obs::Counter& submitted_;
  obs::Counter& admitted_;
  obs::Counter& completed_;
  obs::Counter& rejected_full_;
  obs::Counter& rejected_quota_;
  obs::Counter& rejected_deadline_;
  obs::Counter& rejected_missing_;
  obs::Counter& worker_failed_;
  obs::Counter& cancelled_count_;
  obs::Counter& failed_;
  obs::Counter& worker_deaths_;
  obs::Counter& placements_;
  obs::Counter& replans_;
  obs::Histogram& solve_hist_;

  serve::AdmissionQueue<serve::OperatorKey, Ticket, serve::OperatorKeyHash>
      queue_;
  std::atomic<bool> shut_down_{false};
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint32_t> next_shard_id_{1};

  mutable std::mutex state_mu_;
  std::unordered_map<std::string, std::size_t> tenant_inflight_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_map<serve::OperatorKey,
                     std::shared_future<std::shared_ptr<const Placement>>,
                     serve::OperatorKeyHash>
      placements_cache_;
  std::unordered_set<std::size_t> dead_noted_;

  serve::TaskExecutor exec_;  // declared last: workers see live members
  std::vector<std::future<void>> worker_futures_;
};

}  // namespace tlrwse::cluster
