// Frontend of the distributed serving tier: admission, placement, remote
// solve orchestration.
//
// The frontend keeps the whole solve loop local — rFFT, LSQR, inverse rFFT
// — and ships only the per-frequency kernel MVMs to the workers, as
// RemoteMdcOperator. Because the workers run the exact FrequencyMvm
// arithmetic over the exact gathered bytes a local MdcOperator would (and
// each frequency bin is owned by exactly one shard), a distributed solve
// is bitwise identical to the single-process SolveService solving the same
// archive.
//
// Failure semantics: a worker death surfaces as TransportError inside one
// shard exchange; the frontend marks the worker dead, retries the shard on
// the next live replica, and only when no replica remains does the request
// fail — typed kWorkerFailed, never a hang. Deadlines travel in each
// ApplyMsg (remaining budget) and are also enforced between LSQR
// iterations; cancellation is a frontend flag plus a best-effort kCancel
// broadcast so workers abandon the shard mid-loop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tlrwse/cluster/shard_planner.hpp"
#include "tlrwse/cluster/transport.hpp"
#include "tlrwse/cluster/wire.hpp"
#include "tlrwse/fft/fft.hpp"
#include "tlrwse/mdc/linear_operator.hpp"
#include "tlrwse/mdd/lsqr.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/slo_tracker.hpp"
#include "tlrwse/obs/stage_breakdown.hpp"
#include "tlrwse/obs/trace_context.hpp"
#include "tlrwse/obs/trace_merge.hpp"
#include "tlrwse/serve/admission_queue.hpp"
#include "tlrwse/serve/operator_cache.hpp"
#include "tlrwse/serve/solve_service.hpp"
#include "tlrwse/serve/task_executor.hpp"

namespace tlrwse::cluster {

/// Raised when a shard has no live replica left to serve an exchange.
/// Maps to ClusterStatus::kWorkerFailed — typed degradation, not a hang.
class WorkerFailure : public std::runtime_error {
 public:
  explicit WorkerFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// One connected worker. call_async() hands the frame to a dispatcher
/// thread (so fan-out to N workers overlaps even though each Channel is
/// one-call-at-a-time); a TransportError marks the worker dead and fails
/// everything still queued — callers re-route to replicas.
class WorkerClient {
 public:
  WorkerClient(std::unique_ptr<Channel> channel, std::string name);
  ~WorkerClient();
  WorkerClient(const WorkerClient&) = delete;
  WorkerClient& operator=(const WorkerClient&) = delete;

  [[nodiscard]] std::future<Frame> call_async(Frame request);
  /// Convenience synchronous exchange; rethrows the dispatcher's error.
  [[nodiscard]] Frame call(Frame request);

  [[nodiscard]] bool alive() const noexcept {
    return !dead_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Stops the dispatcher and closes the channel (failing queued calls).
  void close();

 private:
  struct Pending {
    Frame request;
    std::promise<Frame> reply;
  };

  void dispatch_loop();
  void mark_dead(const TransportError& err);

  std::unique_ptr<Channel> channel_;
  std::string name_;
  std::atomic<bool> dead_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  bool stop_ = false;
  std::exception_ptr death_;  // the TransportError that killed the worker
  std::thread dispatcher_;
};

/// Placement of one operator's frequencies onto the fleet.
struct ShardAssignment {
  std::uint32_t shard_id = 0;
  index_t q_begin = 0;  // archive frequency-index range of this shard
  index_t q_end = 0;
  std::vector<index_t> freq_bins;  // global rFFT bins, one per kernel
  /// Worker indices (into the fleet) holding this shard, in retry order.
  /// Sharded placements have one entry; replicated placements list every
  /// worker that finished the load.
  std::vector<std::size_t> workers;
};

struct Placement {
  index_t nt = 0;
  index_t ns = 0;
  index_t nr = 0;
  bool replicated = false;
  std::vector<ShardAssignment> shards;
};

/// Per-request observability state threaded through a RemoteMdcOperator.
/// Stage times are always accumulated (they feed the per-stage latency
/// histograms and the response's StageBreakdown); spans and clock samples
/// are only collected when `ctx.sampled` — the cost of a full distributed
/// timeline is opt-in per request.
struct RequestTrace {
  obs::TraceContext ctx;
  obs::StageBreakdown stages;
  /// Frontend-side spans (raw steady-clock ns), bounded; overflow counts
  /// into `dropped` so the merged timeline can be marked lossy.
  std::vector<obs::RemoteSpan> spans;
  std::uint64_t dropped = 0;
  /// RPC send/recv timestamp pairs per fleet index, for NTP-style clock
  /// alignment of that worker's spans against the frontend clock.
  std::vector<std::vector<obs::ClockSample>> clock_samples;
  /// Fleet indices that served at least one exchange of this request.
  std::vector<std::size_t> workers;

  static constexpr std::size_t kMaxSpans = 4096;

  std::uint64_t new_span_id() { return next_span_id_++; }
  void note_worker(std::size_t w) {
    for (const std::size_t seen : workers) {
      if (seen == w) return;
    }
    workers.push_back(w);
  }
  void add_span(std::string name, std::uint64_t span_id,
                std::uint64_t parent_span_id, std::uint64_t ts_ns,
                std::uint64_t dur_ns) {
    if (spans.size() >= kMaxSpans) {
      ++dropped;
      return;
    }
    obs::RemoteSpan s;
    s.name = std::move(name);
    s.trace_id = ctx.trace_id;
    s.span_id = span_id;
    s.parent_span_id = parent_span_id;
    s.ts_ns = ts_ns;
    s.dur_ns = dur_ns;
    spans.push_back(std::move(s));
  }

 private:
  std::uint64_t next_span_id_ = 1;
};

/// The MDC operator y = F^H K F x with the K stage executed remotely:
/// rFFT locally, gather each shard's per-frequency slices, exchange with a
/// live replica, scatter the replies into the zero-initialised spectrum
/// (shards own disjoint bins), inverse rFFT locally. One instance per
/// request; the placement and fleet are shared.
class RemoteMdcOperator final : public mdc::LinearOperator {
 public:
  /// `cancelled` (optional) is polled before every remote exchange; a true
  /// return aborts the apply with mdc::CancelledError, mirroring the
  /// CancelScope deadline poll of the local operator. `on_worker_death` is
  /// notified once per worker this operator discovers dead.
  /// `rt` (optional, not owned, must outlive the operator) accumulates
  /// per-stage latency and — when rt->ctx.sampled — spans and clock
  /// samples for the merged distributed timeline.
  RemoteMdcOperator(std::span<const std::unique_ptr<WorkerClient>> fleet,
                    std::shared_ptr<const Placement> placement,
                    std::uint64_t request_id,
                    std::chrono::steady_clock::time_point deadline_at = {},
                    std::function<bool()> cancelled = {},
                    std::function<void(std::size_t)> on_worker_death = {},
                    RequestTrace* rt = nullptr);

  [[nodiscard]] index_t rows() const override;
  [[nodiscard]] index_t cols() const override;

  void apply(std::span<const float> x, std::span<float> y) const override;
  void apply_adjoint(std::span<const float> y,
                     std::span<float> x) const override;
  /// Batched forms (nrhs wavefields back to back), one multi-RHS panel per
  /// remote frequency — the cluster counterpart of MdcOperator's batched
  /// applies, every RHS bitwise identical to its single-RHS call.
  void apply_batch(std::span<const float> X, std::span<float> Y,
                   index_t nrhs) const;
  void apply_adjoint_batch(std::span<const float> Y, std::span<float> X,
                           index_t nrhs) const;

 private:
  void run(std::span<const float> in, std::span<float> out, index_t nrhs,
           bool adjoint) const;
  /// One shard exchange with replica retry. Throws WorkerFailure when the
  /// replica list is exhausted, mdc::CancelledError on a typed
  /// kCancelled / kDeadlineExceeded reply.
  [[nodiscard]] ApplyOkMsg exchange(const ShardAssignment& shard,
                                    ApplyMsg msg) const;
  /// Folds one successful exchange's reply into `rt_`: clock sample, MVM
  /// vs RPC-overhead attribution, participating-worker set.
  void note_exchange(std::size_t worker, std::uint64_t t0_ns,
                     std::uint64_t t3_ns, const ApplyOkMsg& ok) const;
  void check_abort() const;
  [[nodiscard]] double remaining_deadline_s() const;

  std::span<const std::unique_ptr<WorkerClient>> fleet_;
  std::shared_ptr<const Placement> placement_;
  std::uint64_t request_id_;
  std::chrono::steady_clock::time_point deadline_at_;
  std::function<bool()> cancelled_;
  std::function<void(std::size_t)> on_worker_death_;
  RequestTrace* rt_ = nullptr;  // not owned; may be null
  fft::FftPlan plan_;
  mutable std::mutex scratch_mu_;
  mutable std::vector<cf32> in_spec_, out_spec_;
  mutable fft::BatchWorkspace fft_ws_;
};

enum class ClusterStatus {
  kOk,
  kQueueFull,         // bounded admission queue was full
  kQuotaExceeded,     // tenant's in-flight quota was exhausted
  kDeadlineExceeded,  // deadline hit before/during the solve
  kArchiveMissing,    // archive absent/unreadable at placement time
  kWorkerFailed,      // a shard lost every replica mid-solve
  kCancelled,         // cancel(request_id) landed before completion
  kError,             // unexpected failure (details in .error)
};
[[nodiscard]] const char* to_string(ClusterStatus s);

struct ClusterRequest {
  serve::OperatorKey op;  // archive_id doubles as the archive path
  serve::RequestKind kind = serve::RequestKind::kLsqr;
  std::string tenant;     // quota bucket; empty shares the default bucket
  index_t vsrc = -1;
  std::vector<float> rhs;
  mdd::LsqrConfig lsqr;
  double deadline_s = 0.0;
  /// Request a full distributed trace: worker spans are buffered, dumped,
  /// clock-aligned and merged into ClusterResponse::trace_json.
  bool trace = false;
};

struct ClusterResponse {
  ClusterStatus status = ClusterStatus::kOk;
  index_t vsrc = -1;
  std::uint64_t request_id = 0;
  std::vector<float> x;
  int iterations = 0;
  double residual_norm = 0.0;
  double queue_wait_s = 0.0;
  double solve_s = 0.0;
  double total_s = 0.0;
  /// Per-stage latency attribution for this request (always filled for
  /// solved requests, regardless of tracing).
  obs::StageBreakdown stages;
  /// chrome://tracing timeline merged across frontend + workers; empty
  /// unless the request set `trace`.
  std::string trace_json;
  std::string error;
};

struct ClusterConfig {
  int frontend_workers = 2;         // concurrent solve batches
  std::size_t queue_capacity = 64;  // admission bound
  std::size_t max_batch = 4;        // per-operator coalescing limit
  /// Max in-flight (queued + solving) requests per tenant; 0 = unlimited.
  std::size_t tenant_quota = 0;
  PlannerConfig planner;            // num_workers is overridden per plan
  /// Latency/availability objectives for the rolling SLO window; latency
  /// breaches persist exemplars when `slo.exemplar_dir` is set.
  obs::SloConfig slo;
};

/// Handle returned by submit(): the id is live immediately (usable for
/// cancel() while the request is still queued), the future resolves when
/// the request finishes or is rejected.
struct SubmittedRequest {
  std::uint64_t request_id = 0;
  std::future<ClusterResponse> response;
};

/// The RPC front door: bounded admission + per-tenant quotas (front half
/// shared with serve::SolveService via AdmissionQueue), deduplicated
/// placement/loading of archives onto the worker fleet, per-operator
/// batched solving over RemoteMdcOperator, typed degradation on worker
/// death, and a fleet-wide merged metrics view.
class ClusterService {
 public:
  ClusterService(ClusterConfig cfg,
                 std::vector<std::unique_ptr<WorkerClient>> workers);
  ~ClusterService();
  ClusterService(const ClusterService&) = delete;
  ClusterService& operator=(const ClusterService&) = delete;

  [[nodiscard]] SubmittedRequest submit(ClusterRequest req);

  /// Flags the request locally and broadcasts kCancel to the fleet
  /// (best-effort): queued requests reject at dequeue, in-flight solves
  /// abort between frequency MVMs / LSQR iterations.
  void cancel(std::uint64_t request_id);

  /// Stops admission, drains admitted requests, joins the solve workers,
  /// then asks every live remote worker to shut down. Idempotent.
  void shutdown();

  [[nodiscard]] std::size_t live_workers() const;
  /// Frontend-only metrics ("cluster.*" names).
  [[nodiscard]] const obs::MetricsRegistry& registry() const noexcept {
    return registry_;
  }
  /// Frontend snapshot merged with every live worker's (worker.* names),
  /// via obs::merge_snapshots.
  [[nodiscard]] obs::MetricsRegistry::Snapshot cluster_snapshot();
  /// Fleet-wide Prometheus exposition text: the frontend's and every live
  /// worker's snapshot merged, then rendered (cumulative histograms).
  [[nodiscard]] std::string fleet_prometheus_text();

  /// One worker's health as seen from the frontend. `alive == false`
  /// means the poll failed (or the worker was already marked dead); the
  /// embedded HealthOkMsg is then default-constructed.
  struct WorkerHealth {
    std::string name;
    bool alive = false;
    HealthOkMsg health;
  };
  /// Polls every fleet member with kHealth (dead workers are reported,
  /// not skipped, so the fleet view shows holes).
  [[nodiscard]] std::vector<WorkerHealth> fleet_health();
  /// fleet_health() rendered as a JSON document (for --health-out and the
  /// live --watch view).
  [[nodiscard]] std::string fleet_health_json();

  /// The rolling SLO window (p50/p95/p99, error-budget burn rate).
  [[nodiscard]] obs::SloTracker::Window slo_window() const {
    return slo_.window();
  }

 private:
  struct Ticket {
    ClusterRequest req;
    std::uint64_t id = 0;
    std::promise<ClusterResponse> done;
    std::chrono::steady_clock::time_point admitted;
  };

  void worker_loop();
  void process_batch(const serve::OperatorKey& key,
                     std::vector<Ticket> batch);
  void solve_ticket(Ticket& ticket,
                    const std::shared_ptr<const Placement>& placement,
                    double load_s);
  /// Serves >= 2 deadline-free adjoint tickets with one multi-RHS remote
  /// sweep (each RHS bitwise identical to its single solve).
  void solve_adjoint_group(std::vector<Ticket>& batch,
                           const std::vector<std::size_t>& adj,
                           const std::shared_ptr<const Placement>& placement,
                           double load_s);
  [[nodiscard]] std::shared_ptr<const Placement> resolve_placement(
      const serve::OperatorKey& key);
  [[nodiscard]] std::shared_ptr<const Placement> build_placement(
      const serve::OperatorKey& key);
  [[nodiscard]] bool is_cancelled(std::uint64_t id) const;
  void note_worker_death(std::size_t worker);
  /// Drops the cached placement after a kWorkerFailed solve so the next
  /// request for this operator replans over the workers still alive.
  void invalidate_placement(const serve::OperatorKey& key);
  void respond(Ticket& ticket, ClusterResponse r);
  /// Feeds one finished response into the SLO window and persists an
  /// exemplar on a latency breach. Called from respond() so rejects count
  /// as availability errors too.
  void record_slo(const ClusterResponse& r);
  /// kTraceDump every participating worker, align clocks from the
  /// request's RPC timestamp pairs, merge into one timeline JSON.
  [[nodiscard]] std::string collect_trace(RequestTrace& rt);

  ClusterConfig cfg_;
  std::vector<std::unique_ptr<WorkerClient>> fleet_;

  mutable obs::MetricsRegistry registry_;
  obs::Counter& submitted_;
  obs::Counter& admitted_;
  obs::Counter& completed_;
  obs::Counter& rejected_full_;
  obs::Counter& rejected_quota_;
  obs::Counter& rejected_deadline_;
  obs::Counter& rejected_missing_;
  obs::Counter& worker_failed_;
  obs::Counter& cancelled_count_;
  obs::Counter& failed_;
  obs::Counter& worker_deaths_;
  obs::Counter& placements_;
  obs::Counter& replans_;
  obs::Histogram& solve_hist_;
  obs::StageRecorder stage_recorder_;
  obs::SloTracker slo_;

  serve::AdmissionQueue<serve::OperatorKey, Ticket, serve::OperatorKeyHash>
      queue_;
  std::atomic<bool> shut_down_{false};
  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint32_t> next_shard_id_{1};

  mutable std::mutex state_mu_;
  std::unordered_map<std::string, std::size_t> tenant_inflight_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_map<serve::OperatorKey,
                     std::shared_future<std::shared_ptr<const Placement>>,
                     serve::OperatorKeyHash>
      placements_cache_;
  std::unordered_set<std::size_t> dead_noted_;

  serve::TaskExecutor exec_;  // declared last: workers see live members
  std::vector<std::future<void>> worker_futures_;
};

}  // namespace tlrwse::cluster
