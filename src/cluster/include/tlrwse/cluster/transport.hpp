// Frame transports between the frontend and its workers.
//
// Channel is the client side: call() sends one frame and blocks for the
// reply. Two implementations exist with identical semantics:
//
//  - LocalChannel: in-process, wraps a handler function but still routes
//    every frame through encode_frame/decode_frame, so tests over it
//    exercise the exact byte path the sockets carry. kill() makes it
//    behave like a dead worker (kClosed), which is how the failure tests
//    simulate a crash deterministically.
//  - SocketChannel: a connected Unix or TCP stream socket, one in-flight
//    call at a time (the frontend's WorkerClient serializes through its
//    own dispatcher, so this is not a throughput limit).
//
// SocketServer is the worker side: accepts connections and feeds each
// frame to the handler, writing the handler's reply back. A handler
// exception becomes a kError frame, never a dropped connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tlrwse/cluster/wire.hpp"

namespace tlrwse::cluster {

/// Thrown when the *connection* fails (peer death, timeout, malformed
/// stream) as opposed to the peer returning a typed ErrorMsg.
class TransportError : public std::runtime_error {
 public:
  enum class Kind { kClosed, kTimeout, kProtocol };

  TransportError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}
  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

/// One request/reply exchange with a worker. Implementations are safe to
/// call from one thread at a time; the frontend's per-worker dispatcher
/// provides that serialization.
class Channel {
 public:
  virtual ~Channel() = default;
  /// Sends `request` and blocks for the peer's reply frame. Throws
  /// TransportError if the connection dies or times out mid-call.
  virtual Frame call(const Frame& request) = 0;
  /// Best-effort close; subsequent call() throws kClosed.
  virtual void close() = 0;
};

using FrameHandler = std::function<Frame(const Frame&)>;

/// In-process channel for deterministic tests: frames round-trip through
/// the real encode/decode path into `handler` on the caller's thread.
class LocalChannel final : public Channel {
 public:
  explicit LocalChannel(FrameHandler handler);

  Frame call(const Frame& request) override;
  void close() override;

  /// Simulates a worker crash: every subsequent call() throws kClosed,
  /// exactly what a SocketChannel raises when its peer process dies.
  void kill() { dead_.store(true, std::memory_order_relaxed); }

 private:
  FrameHandler handler_;
  std::atomic<bool> dead_{false};
};

/// Blocking stream-socket channel (Unix domain or TCP). One in-flight
/// call; reads poll with `timeout_ms` so a hung peer surfaces as kTimeout
/// instead of a wedged frontend.
class SocketChannel final : public Channel {
 public:
  ~SocketChannel() override;

  static std::unique_ptr<SocketChannel> connect_unix(const std::string& path,
                                                     int timeout_ms = 30000);
  static std::unique_ptr<SocketChannel> connect_tcp(const std::string& host,
                                                    std::uint16_t port,
                                                    int timeout_ms = 30000);

  Frame call(const Frame& request) override;
  void close() override;

 private:
  SocketChannel(int fd, int timeout_ms);

  void write_all(const std::uint8_t* data, std::size_t n);
  /// Reads until `buf_` holds a whole frame or the poll deadline passes.
  Frame read_frame();

  std::mutex mu_;
  int fd_ = -1;
  int timeout_ms_;
  std::vector<std::uint8_t> buf_;
};

/// Worker-side listener: an accept thread plus one thread per connection,
/// each reading frames and writing `handler`'s replies until the peer
/// hangs up. stop() closes the listening socket and joins everything.
class SocketServer {
 public:
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;
  ~SocketServer();

  static std::unique_ptr<SocketServer> listen_unix(const std::string& path,
                                                   FrameHandler handler);
  static std::unique_ptr<SocketServer> listen_tcp(std::uint16_t port,
                                                  FrameHandler handler);
  /// Port actually bound (useful with listen_tcp(0)); 0 for Unix sockets.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  void stop();

 private:
  SocketServer(int listen_fd, std::uint16_t port, FrameHandler handler);

  void accept_loop();
  void serve_connection(int fd);

  int listen_fd_;
  std::uint16_t port_;
  FrameHandler handler_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conns_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;  // live connections, for wake-up on stop()
};

}  // namespace tlrwse::cluster
