// Wire protocol of the distributed serving tier: length-prefixed binary
// frames between the frontend and its shard workers.
//
// Every message is one frame: a fixed 16-byte header
//   [u32 magic "TWRP"][u16 version][u16 type][u64 payload_len]
// followed by payload_len bytes of little-endian fields. Frames carry
// per-frequency spectral slices verbatim (cf32 payloads are memcpy'd), so
// a remote apply moves the exact bytes a local MdcOperator would gather —
// the arithmetic, and therefore the solve, stays bitwise identical.
//
// Decoding is defensive in the test_archive style: a bad magic, an
// unsupported version, or an oversized length throws WireError before any
// allocation sized from attacker-controlled bytes; a short buffer is
// "need more", never a partial parse.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/trace_context.hpp"

namespace tlrwse::cluster {

constexpr std::uint32_t kWireMagic = 0x54575250;  // "PRWT" on disk: TWRP
/// v2 added the optional trailing trace-context field on kApply, the
/// worker clock stamps on kApplyOk, and the kTraceDump/kHealth message
/// types. Frames are still decoded down to kMinWireVersion: a v1 frontend
/// or worker keeps interoperating (the optional trailers simply default).
constexpr std::uint16_t kWireVersion = 2;
constexpr std::uint16_t kMinWireVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 16;
/// Payload cap: a corrupt or hostile length field past this is rejected
/// before it can demand the allocation.
constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

/// Thrown on malformed bytes (bad magic/version, truncated payload,
/// oversized length, short field reads). Distinct from TransportError:
/// WireError means the peer spoke garbage, not that the connection died.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class MsgType : std::uint16_t {
  kLoadShard = 1,    // frontend -> worker: own frequencies [q_begin, q_end)
  kLoadShardOk = 2,  // worker -> frontend: shard dimensions
  kApply = 3,        // frontend -> worker: per-frequency spectral slices
  kApplyOk = 4,      // worker -> frontend: per-frequency results
  kCancel = 5,       // frontend -> worker: abandon a request id
  kCancelOk = 6,
  kMetrics = 7,      // frontend -> worker: snapshot request
  kMetricsOk = 8,    // worker -> frontend: serialized registry snapshot
  kShutdown = 9,     // frontend -> worker: drain and exit
  kShutdownOk = 10,
  kError = 11,       // worker -> frontend: typed failure
  kTraceDump = 12,   // frontend -> worker: return buffered spans of a trace
  kTraceDumpOk = 13, // worker -> frontend: the spans + drop accounting
  kHealth = 14,      // frontend -> worker: liveness/residency probe
  kHealthOk = 15,    // worker -> frontend: shard table, bytes, uptime, ...
};

enum class WireErrorCode : std::uint16_t {
  kBadRequest = 1,
  kArchiveMissing = 2,
  kUnknownShard = 3,
  kCancelled = 4,
  kDeadlineExceeded = 5,
  kInternal = 6,
};
[[nodiscard]] const char* to_string(WireErrorCode c);

struct Frame {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> payload;
};

/// Header + payload as one contiguous buffer, ready for a socket write.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental decode: returns the bytes consumed (header + payload), or 0
/// when `bytes` does not yet hold a whole frame. Throws WireError on a bad
/// magic, unsupported version, or oversized payload length.
[[nodiscard]] std::size_t decode_frame(std::span<const std::uint8_t> bytes,
                                       Frame& out);

/// Little-endian field writer backing every message's to_frame().
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void cf32_span(std::span<const cf32> v) {
    raw(v.data(), v.size() * sizeof(cf32));
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Field reader: every get checks the remaining byte count first, so a
/// truncated payload throws instead of reading past the buffer.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t u8() { return take<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return take<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return take<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return take<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() { return take<std::int64_t>(); }
  [[nodiscard]] double f64() { return take<double>(); }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  /// Reads exactly `count` complex values into `out`.
  void cf32_into(std::span<cf32> out) {
    need(out.size() * sizeof(cf32));
    std::memcpy(out.data(), bytes_.data() + pos_,
                out.size() * sizeof(cf32));
    pos_ += out.size() * sizeof(cf32);
  }
  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Trailing bytes after the last field are as malformed as missing ones.
  void expect_end() const {
    if (remaining() != 0) {
      throw WireError("wire: trailing bytes after message");
    }
  }

 private:
  template <typename T>
  [[nodiscard]] T take() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (remaining() < n) throw WireError("wire: truncated message");
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

// --- Messages -------------------------------------------------------------

struct LoadShardMsg {
  std::uint32_t shard_id = 0;
  index_t q_begin = 0;  // global frequency range owned by this shard
  index_t q_end = 0;
  std::string archive_path;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static LoadShardMsg from_frame(const Frame& f);
};

struct LoadShardOkMsg {
  std::uint32_t shard_id = 0;
  index_t nt = 0;
  index_t ns = 0;  // kernel rows (sources)
  index_t nr = 0;  // kernel cols (receivers)
  std::vector<index_t> freq_bins;  // global rFFT bins of the shard's freqs

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static LoadShardOkMsg from_frame(const Frame& f);
};

/// One remote fan-out: the spectral slices of every frequency this shard
/// owns, packed [freq][rhs][vector] — exactly the per-frequency panels
/// MdcOperator's kernel loop gathers, so the worker feeds its FrequencyMvm
/// the same bytes a local solve would.
struct ApplyMsg {
  std::uint64_t request_id = 0;
  std::uint32_t shard_id = 0;
  bool adjoint = false;
  index_t nrhs = 1;
  double deadline_s = 0.0;  // remaining budget at send time; 0 = none
  std::vector<cf32> data;   // nq * nrhs * (adjoint ? ns : nr) values
  /// Optional v2 trailer: distributed trace identity. A v1 frame ends at
  /// `data`; from_frame leaves the context defaulted (trace_id 0) then.
  obs::TraceContext trace;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ApplyMsg from_frame(const Frame& f);
};

struct ApplyOkMsg {
  std::uint64_t request_id = 0;
  std::vector<cf32> data;  // nq * nrhs * (adjoint ? nr : ns) values
  /// Optional v2 trailer: the worker's steady clock at frame receive and
  /// reply send — one NTP-style clock sample per exchange when paired with
  /// the frontend's send/receive stamps. 0 when absent (v1 peer).
  std::uint64_t worker_recv_ns = 0;
  std::uint64_t worker_send_ns = 0;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ApplyOkMsg from_frame(const Frame& f);
};

struct CancelMsg {
  std::uint64_t request_id = 0;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static CancelMsg from_frame(const Frame& f);
};

struct CancelOkMsg {
  std::uint64_t request_id = 0;
  bool in_flight = false;  // true when the worker saw the request running

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static CancelOkMsg from_frame(const Frame& f);
};

struct MetricsMsg {
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static MetricsMsg from_frame(const Frame& f);
};

struct MetricsOkMsg {
  obs::MetricsRegistry::Snapshot snapshot;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static MetricsOkMsg from_frame(const Frame& f);
};

struct ShutdownMsg {
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ShutdownMsg from_frame(const Frame& f);
};

struct ShutdownOkMsg {
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ShutdownOkMsg from_frame(const Frame& f);
};

struct ErrorMsg {
  std::uint64_t request_id = 0;  // 0 for failures outside a request
  WireErrorCode code = WireErrorCode::kInternal;
  std::string message;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static ErrorMsg from_frame(const Frame& f);
};

/// Asks the worker for the spans it buffered under one trace id (the
/// worker forgets the trace after answering).
struct TraceDumpMsg {
  std::uint64_t trace_id = 0;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static TraceDumpMsg from_frame(const Frame& f);
};

struct TraceDumpOkMsg {
  std::uint64_t trace_id = 0;
  std::uint64_t dropped_spans = 0;  // buffer overflow during recording
  std::vector<obs::RemoteSpan> spans;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static TraceDumpOkMsg from_frame(const Frame& f);
};

struct HealthMsg {
  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static HealthMsg from_frame(const Frame& f);
};

/// One worker's liveness/residency report for the fleet view.
struct HealthOkMsg {
  struct ShardInfo {
    std::uint32_t shard_id = 0;
    index_t q_begin = 0;  // archive frequency-index range (test-injected
    index_t q_end = 0;    // shards report [0, num_freqs))
    std::uint32_t num_freqs = 0;
    double bytes = 0.0;  // compressed payload resident for this shard
  };

  std::uint64_t uptime_ns = 0;
  std::uint64_t inflight = 0;  // applies currently executing
  std::uint64_t applies = 0;   // completed applies since start
  double resident_bytes = 0.0;
  double streamed_bytes = 0.0;  // oocache bytes streamed (0: resident-only)
  double stall_s = 0.0;         // cumulative oocache stall time
  std::uint64_t dropped_spans = 0;  // remote span buffer overflow, total
  std::vector<ShardInfo> shards;

  [[nodiscard]] Frame to_frame() const;
  [[nodiscard]] static HealthOkMsg from_frame(const Frame& f);
};

}  // namespace tlrwse::cluster
