#include "tlrwse/roofline/roofline.hpp"

namespace tlrwse::roofline {

namespace {
constexpr double kTB = 1e12;
constexpr double kPB = 1e15;
constexpr double kTF = 1e12;
constexpr double kPF = 1e15;
}  // namespace

std::vector<MachineSpec> fig15_machines() {
  return {
      // 20 PB/s SRAM and 1.7 PFlop/s FP32 per CS-2 (the paper's Fig. 15
      // shows 120 PB/s and 10.2 PFlop/s for the six-system roof).
      {"Six Cerebras CS-2", 6, 20.0 * kPB, 1.7 * kPF},
      {"One AMD MI250X", 1, 3.2 * kTB, 47.9 * kTF},
      {"Two NVIDIA A100", 2, 2.0 * kTB, 19.5 * kTF},
      {"Four Fujitsu A64FX", 4, 1.024 * kTB, 6.76 * kTF},
      {"Three NEC SX-Aurora TSUBASA", 3, 1.53 * kTB, 4.91 * kTF},
      {"One AMD EPYC Rome", 1, 0.2048 * kTB, 4.6 * kTF},
      {"One Intel Ice Lake", 1, 0.2048 * kTB, 5.3 * kTF},
  };
}

std::vector<MachineSpec> fig16_machines() {
  return {
      // 48 CS-2 = 960 PB/s roof, 81.6 PFlop/s (Fig. 16 annotations).
      {"Condor Galaxy (48 Cerebras CS-2)", 48, 20.0 * kPB, 1.7 * kPF},
      {"Fugaku (158976 Fujitsu A64FX)", 158976, 1.024 * kTB, 6.76 * kTF},
      {"Frontier (37888 AMD MI250X)", 37888, 3.2 * kTB, 47.9 * kTF},
      {"LUMI (10240 AMD MI250X)", 10240, 3.2 * kTB, 47.9 * kTF},
      {"Leonardo (13824 NVIDIA A100)", 13824, 2.0 * kTB, 19.5 * kTF},
      {"Summit (27648 NVIDIA V100)", 27648, 0.9 * kTB, 15.7 * kTF},
  };
}

double tlr_mvm_intensity_relative(double mn, double m, double n) {
  return 2.0 * mn / (4.0 * (mn + m + n));
}

double tlr_mvm_intensity_absolute(double mn, double n) {
  return 2.0 * mn / (4.0 * (3.0 * mn + n));
}

}  // namespace tlrwse::roofline
