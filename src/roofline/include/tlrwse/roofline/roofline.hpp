// Roofline performance models for Figs. 15 and 16.
//
// Machine peaks follow the configurations the paper compares against:
// Fig. 15 pits six CS-2 systems against the MINIMUM number of devices of
// each vendor able to host the compressed dataset in memory; Fig. 16 pits
// 48 CS-2s (Condor Galaxy) against the June '23 Top500 top five. Peak
// numbers are vendor datasheet values (HBM/SRAM bandwidth, FP32 vector
// peak) aggregated over the device counts named in the paper.
#pragma once

#include <string>
#include <vector>

#include "tlrwse/common/types.hpp"

namespace tlrwse::roofline {

struct MachineSpec {
  std::string name;
  index_t units = 1;              // device/node count
  double peak_bw_per_unit = 0.0;  // bytes/s
  double peak_flops_per_unit = 0.0;  // FP32 flop/s

  [[nodiscard]] double peak_bw() const {
    return peak_bw_per_unit * static_cast<double>(units);
  }
  [[nodiscard]] double peak_flops() const {
    return peak_flops_per_unit * static_cast<double>(units);
  }
  /// Attainable flop rate at arithmetic intensity `ai` (flop/byte).
  [[nodiscard]] double attainable_flops(double ai) const {
    const double mem_bound = ai * peak_bw();
    return mem_bound < peak_flops() ? mem_bound : peak_flops();
  }
};

/// A measured/estimated kernel point on the roofline plot.
struct RooflinePoint {
  std::string label;
  double arithmetic_intensity = 0.0;  // flop/byte
  double bandwidth = 0.0;             // bytes/s
  [[nodiscard]] double flops_rate() const {
    return arithmetic_intensity * bandwidth;
  }
};

/// Fig. 15 contenders: the minimum vendor configurations able to host the
/// compressed dataset (six CS-2, one MI250X, two A100, four A64FX, three
/// SX-Aurora, one EPYC Rome, one Ice Lake).
[[nodiscard]] std::vector<MachineSpec> fig15_machines();

/// Fig. 16 contenders: Condor Galaxy (48 CS-2) and the top-5 systems
/// (Fugaku, Frontier, LUMI, Leonardo, Summit) at full scale.
[[nodiscard]] std::vector<MachineSpec> fig16_machines();

/// Arithmetic intensity of TLR-MVM under the two access accountings:
/// flops / bytes = 2*MN / 4(MN+M+N) ~ 0.5 (cache/relative) and
/// 2*MN / 4(3MN+N) ~ 1/6 (flat-SRAM/absolute).
[[nodiscard]] double tlr_mvm_intensity_relative(double mn, double m, double n);
[[nodiscard]] double tlr_mvm_intensity_absolute(double mn, double n);

}  // namespace tlrwse::roofline
