// Singular value decomposition via one-sided Jacobi rotations, plus
// tolerance-based truncation and randomized SVD (Halko–Martinsson–Tropp).
//
// One-sided Jacobi is chosen because (a) it handles complex matrices with a
// simple phase trick, (b) it computes small singular values to high relative
// accuracy, and (c) tiles in this codebase are at most a few hundred rows,
// where Jacobi is competitive. SVD is the reference compression backend of
// the TLR driver (the paper compresses each frequency matrix tile to an
// accuracy `acc`; Sec. 6.1).
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "tlrwse/common/rng.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/matrix.hpp"
#include "tlrwse/la/qr.hpp"

namespace tlrwse::la {

/// Economy SVD A = U * diag(S) * V^H with U m x k, V n x k, k = min(m, n).
/// Singular values are returned in descending order.
template <typename T>
struct SvdResult {
  Matrix<T> U;
  std::vector<real_of_t<T>> S;
  Matrix<T> V;
};

/// One-sided Jacobi SVD. For m < n the routine factorises A^H and swaps the
/// roles of U and V. Cost is O(m n^2) per sweep; convergence in ~log2(n)+3
/// sweeps for the well-scaled tiles used here.
template <typename T>
[[nodiscard]] SvdResult<T> svd_jacobi(const Matrix<T>& A_in) {
  using R = real_of_t<T>;
  if (A_in.rows() < A_in.cols()) {
    SvdResult<T> t = svd_jacobi(A_in.adjoint());
    return {std::move(t.V), std::move(t.S), std::move(t.U)};
  }
  const index_t m = A_in.rows();
  const index_t n = A_in.cols();
  Matrix<T> U = A_in;            // columns converge to U * diag(S)
  Matrix<T> V = Matrix<T>::identity(n);

  const R eps = std::numeric_limits<R>::epsilon();
  const R tol = std::sqrt(static_cast<R>(m)) * eps;
  const int max_sweeps = 60;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool converged = true;
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        T* up = U.col(p);
        T* uq = U.col(q);
        // 2x2 Gram entries of columns (p, q).
        R app{}, aqq{};
        T apq{};
        for (index_t i = 0; i < m; ++i) {
          app += std::norm(up[i]);
          aqq += std::norm(uq[i]);
          apq += conj_if_complex(up[i]) * uq[i];
        }
        const R apq_abs = static_cast<R>(std::abs(apq));
        if (apq_abs <= tol * std::sqrt(app * aqq) || apq_abs == R{}) continue;
        converged = false;

        // Phase factor so the rotated pair sees a real positive coupling.
        const T phase = apq / static_cast<T>(apq_abs);
        const R zeta = (aqq - app) / (R{2} * apq_abs);
        const R t_rot = ((zeta >= R{}) ? R{1} : R{-1}) /
                        (std::abs(zeta) + std::sqrt(R{1} + zeta * zeta));
        const R c = R{1} / std::sqrt(R{1} + t_rot * t_rot);
        const R s = c * t_rot;

        // Rotate U columns: work with the phase-adjusted q column.
        for (index_t i = 0; i < m; ++i) {
          const T uq_adj = conj_if_complex(phase) * uq[i];
          const T new_p = static_cast<T>(c) * up[i] - static_cast<T>(s) * uq_adj;
          const T new_q = static_cast<T>(s) * up[i] + static_cast<T>(c) * uq_adj;
          up[i] = new_p;
          uq[i] = phase * new_q;
        }
        // Apply the same transform to V.
        T* vp = V.col(p);
        T* vq = V.col(q);
        for (index_t i = 0; i < n; ++i) {
          const T vq_adj = conj_if_complex(phase) * vq[i];
          const T new_p = static_cast<T>(c) * vp[i] - static_cast<T>(s) * vq_adj;
          const T new_q = static_cast<T>(s) * vp[i] + static_cast<T>(c) * vq_adj;
          vp[i] = new_p;
          vq[i] = phase * new_q;
        }
      }
    }
    if (converged) break;
  }

  // Extract singular values (column norms), normalise U, sort descending.
  SvdResult<T> out;
  out.S.resize(static_cast<std::size_t>(n));
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    out.S[static_cast<std::size_t>(j)] =
        norm2(std::span<const T>(U.col(j), static_cast<std::size_t>(m)));
    order[static_cast<std::size_t>(j)] = j;
  }
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return out.S[static_cast<std::size_t>(a)] > out.S[static_cast<std::size_t>(b)];
  });

  Matrix<T> Us(m, n);
  Matrix<T> Vs(n, n);
  std::vector<R> Ss(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    const R sv = out.S[static_cast<std::size_t>(src)];
    Ss[static_cast<std::size_t>(j)] = sv;
    const T inv = (sv > R{}) ? T{1} / static_cast<T>(sv) : T{};
    for (index_t i = 0; i < m; ++i) Us(i, j) = U(i, src) * inv;
    for (index_t i = 0; i < n; ++i) Vs(i, j) = V(i, src);
  }
  out.U = std::move(Us);
  out.V = std::move(Vs);
  out.S = std::move(Ss);
  return out;
}

/// Number of leading singular values to keep so that the Frobenius norm of
/// the discarded tail is at most `tol * ||A||_F` (||A||_F = sqrt(sum s_i^2)).
template <typename R>
[[nodiscard]] index_t truncation_rank(const std::vector<R>& s, R tol) {
  R total2{};
  for (R v : s) total2 += v * v;
  if (total2 == R{}) return 0;
  const R budget = tol * tol * total2;
  R tail2{};
  index_t k = static_cast<index_t>(s.size());
  // Walk from the smallest singular value upwards while the discarded tail
  // stays within budget.
  while (k > 0) {
    const R sk = s[static_cast<std::size_t>(k - 1)];
    if (tail2 + sk * sk > budget) break;
    tail2 += sk * sk;
    --k;
  }
  return k;
}

/// Truncated SVD factor pair: A ~= U * Vh with U m x k, Vh k x n,
/// where the singular values are folded into Vh (Vh = diag(S_k) V_k^H).
template <typename T>
struct LowRankFactors {
  Matrix<T> U;
  Matrix<T> Vh;
  [[nodiscard]] index_t rank() const noexcept { return U.cols(); }
};

/// SVD-based compression of A to relative Frobenius tolerance `tol`.
template <typename T>
[[nodiscard]] LowRankFactors<T> compress_svd(const Matrix<T>& A,
                                             real_of_t<T> tol,
                                             index_t max_rank = 0) {
  SvdResult<T> f = svd_jacobi(A);
  index_t k = truncation_rank(f.S, tol);
  if (max_rank > 0) k = std::min(k, max_rank);
  LowRankFactors<T> out;
  out.U = f.U.block(0, 0, f.U.rows(), k);
  out.Vh = Matrix<T>(k, A.cols());
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < A.cols(); ++j) {
      out.Vh(i, j) = static_cast<T>(f.S[static_cast<std::size_t>(i)]) *
                     conj_if_complex(f.V(j, i));
    }
  }
  return out;
}

/// Randomized SVD with oversampling `p` and `q` power iterations.
/// Rank is adapted by doubling the sketch until the tolerance is met or the
/// full rank is reached.
template <typename T>
[[nodiscard]] LowRankFactors<T> compress_rsvd(const Matrix<T>& A,
                                              real_of_t<T> tol, Rng& rng,
                                              index_t initial_rank = 8,
                                              int power_iters = 1,
                                              index_t max_rank = 0) {
  using R = real_of_t<T>;
  const index_t m = A.rows();
  const index_t n = A.cols();
  const index_t full = std::min(m, n);
  const R anorm = frobenius_norm(A);
  if (anorm == R{} || full == 0) {
    return {Matrix<T>(m, 0), Matrix<T>(0, n)};
  }
  index_t sketch = std::min(initial_rank, full);
  for (;;) {
    // Gaussian sketch Y = (A A^H)^q A * Omega, orthonormalised.
    Matrix<T> Omega(n, sketch);
    fill_normal(rng, Omega.data(), static_cast<std::size_t>(Omega.size()));
    Matrix<T> Y = matmul(A, Omega);
    for (int it = 0; it < power_iters; ++it) {
      Y = qr(Y).Q;
      Matrix<T> Z = matmul(A.adjoint(), Y);
      Z = qr(Z).Q;
      Y = matmul(A, Z);
    }
    Matrix<T> Q = qr(Y).Q;
    Matrix<T> B = matmul(Q.adjoint(), A);  // sketch x n
    SvdResult<T> f = svd_jacobi(B);
    const index_t k = truncation_rank(f.S, tol);
    // Accept if the tolerance rank is strictly inside the sketch (so the
    // tail estimate is trustworthy), or we already sketch at full rank.
    if (k < sketch || sketch >= full) {
      index_t keep = (max_rank > 0) ? std::min(k, max_rank) : k;
      keep = std::min(keep, sketch);
      LowRankFactors<T> out;
      Matrix<T> Uk = f.U.block(0, 0, f.U.rows(), keep);
      out.U = matmul(Q, Uk);
      out.Vh = Matrix<T>(keep, n);
      for (index_t i = 0; i < keep; ++i) {
        for (index_t j = 0; j < n; ++j) {
          out.Vh(i, j) = static_cast<T>(f.S[static_cast<std::size_t>(i)]) *
                         conj_if_complex(f.V(j, i));
        }
      }
      return out;
    }
    sketch = std::min(sketch * 2, full);
  }
}

/// Reconstructs the dense matrix U * Vh (for accuracy checks).
template <typename T>
[[nodiscard]] Matrix<T> reconstruct(const LowRankFactors<T>& f) {
  return matmul(f.U, f.Vh);
}

}  // namespace tlrwse::la
