// BLAS-like dense kernels (MVM, GEMM, dot products, norms).
//
// These are the reference kernels against which the TLR and WSE paths are
// validated, and the building blocks of the compression algorithms. Loops
// are written column-major-streaming (axpy-style MVM) — the same access
// pattern the paper's PE kernel uses: for each column A_j and element x_j,
// y += A_j * x_j (Sec. 6.6).
#pragma once

#include <cmath>
#include <span>

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/tsan.hpp"
#include "tlrwse/la/matrix.hpp"

namespace tlrwse::la {

/// y = alpha*A*x + beta*y  (column-sweep axpy formulation).
template <typename T>
void gemv(const Matrix<T>& A, std::span<const T> x, std::span<T> y,
          T alpha = T{1}, T beta = T{0}) {
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == A.cols(), "gemv: x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == A.rows(), "gemv: y size");
  const index_t m = A.rows();
  const index_t n = A.cols();
  if (beta == T{0}) {
    for (index_t i = 0; i < m; ++i) y[static_cast<std::size_t>(i)] = T{};
  } else if (beta != T{1}) {
    for (index_t i = 0; i < m; ++i) y[static_cast<std::size_t>(i)] *= beta;
  }
  // No zero-skip on axj: skipping would block vectorization AND silently
  // drop NaN/Inf propagation from A when x[j] == 0.
  for (index_t j = 0; j < n; ++j) {
    const T axj = alpha * x[static_cast<std::size_t>(j)];
    const T* aj = A.col(j);
    for (index_t i = 0; i < m; ++i) {
      y[static_cast<std::size_t>(i)] += aj[i] * axj;
    }
  }
}

/// y = alpha*A^H*x + beta*y (conjugate-transpose MVM; dot-product form).
template <typename T>
void gemv_adjoint(const Matrix<T>& A, std::span<const T> x, std::span<T> y,
                  T alpha = T{1}, T beta = T{0}) {
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == A.rows(), "gemvH: x size");
  TLRWSE_REQUIRE(static_cast<index_t>(y.size()) == A.cols(), "gemvH: y size");
  const index_t m = A.rows();
  const index_t n = A.cols();
  for (index_t j = 0; j < n; ++j) {
    const T* aj = A.col(j);
    T acc{};
    for (index_t i = 0; i < m; ++i) {
      acc += conj_if_complex(aj[i]) * x[static_cast<std::size_t>(i)];
    }
    auto& yj = y[static_cast<std::size_t>(j)];
    yj = alpha * acc + (beta == T{0} ? T{} : beta * yj);
  }
}

/// C = alpha*A*B + beta*C.
template <typename T>
void gemm(const Matrix<T>& A, const Matrix<T>& B, Matrix<T>& C,
          T alpha = T{1}, T beta = T{0}) {
  TLRWSE_REQUIRE(A.cols() == B.rows(), "gemm: inner dims");
  TLRWSE_REQUIRE(C.rows() == A.rows() && C.cols() == B.cols(),
                 "gemm: output dims");
  const index_t m = A.rows();
  const index_t k = A.cols();
  const index_t n = B.cols();
  if (beta == T{0}) {
    C.fill(T{});
  } else if (beta != T{1}) {
    for (index_t j = 0; j < n; ++j) {
      T* cj = C.col(j);
      for (index_t i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  TLRWSE_TSAN_RELEASE(&C);
#pragma omp parallel if (m * n * k > 1 << 16)
  {
    TLRWSE_TSAN_ACQUIRE(&C);
#pragma omp for schedule(static)
    for (index_t j = 0; j < n; ++j) {
      T* cj = C.col(j);
      const T* bj = B.col(j);
      for (index_t l = 0; l < k; ++l) {
        const T ab = alpha * bj[l];
        const T* al = A.col(l);
        for (index_t i = 0; i < m; ++i) cj[i] += al[i] * ab;
      }
    }
    TLRWSE_TSAN_RELEASE(&C);
  }
  TLRWSE_TSAN_ACQUIRE(&C);
}

/// Convenience GEMM returning a fresh matrix.
template <typename T>
[[nodiscard]] Matrix<T> matmul(const Matrix<T>& A, const Matrix<T>& B) {
  Matrix<T> C(A.rows(), B.cols());
  gemm(A, B, C);
  return C;
}

namespace detail {

/// Reduction block size of the pairwise summations below. 64 keeps the
/// recursion shallow while bounding each sequential run's error growth.
inline constexpr std::size_t kPairwiseBlock = 64;

/// Pairwise (cascade) summation: O(log n) error growth instead of the
/// O(n) of a running sum. LSQR's convergence checks ride on dot/norm2, so
/// their float32 accuracy on long ill-conditioned vectors matters.
template <typename Acc, typename F>
[[nodiscard]] Acc pairwise_sum(std::size_t i0, std::size_t n, F&& term) {
  if (n <= kPairwiseBlock) {
    Acc acc{};
    for (std::size_t i = i0; i < i0 + n; ++i) acc += term(i);
    return acc;
  }
  const std::size_t half = n / 2;
  return pairwise_sum<Acc>(i0, half, term) +
         pairwise_sum<Acc>(i0 + half, n - half, term);
}

}  // namespace detail

/// Hermitian inner product <x, y> = x^H y (blocked pairwise accumulation).
template <typename T>
[[nodiscard]] T dot(std::span<const T> x, std::span<const T> y) {
  TLRWSE_REQUIRE(x.size() == y.size(), "dot: size mismatch");
  return detail::pairwise_sum<T>(
      0, x.size(), [&](std::size_t i) { return conj_if_complex(x[i]) * y[i]; });
}

/// Euclidean norm of a vector.
template <typename T>
[[nodiscard]] real_of_t<T> norm2(std::span<const T> x) {
  using R = real_of_t<T>;
  // Two-pass scaled norm to avoid overflow/underflow in float; the sum of
  // scaled squares uses the same pairwise accumulation as dot().
  R maxabs{};
  for (const T& v : x) maxabs = std::max(maxabs, static_cast<R>(std::abs(v)));
  if (maxabs == R{}) return R{};
  const R sum = detail::pairwise_sum<R>(0, x.size(), [&](std::size_t i) {
    const R s = static_cast<R>(std::abs(x[i])) / maxabs;
    return s * s;
  });
  return maxabs * std::sqrt(sum);
}

/// Frobenius norm of a matrix.
template <typename T>
[[nodiscard]] real_of_t<T> frobenius_norm(const Matrix<T>& A) {
  return norm2(std::span<const T>(A.data(), static_cast<std::size_t>(A.size())));
}

/// ||A - B||_F.
template <typename T>
[[nodiscard]] real_of_t<T> frobenius_distance(const Matrix<T>& A,
                                              const Matrix<T>& B) {
  TLRWSE_REQUIRE(A.rows() == B.rows() && A.cols() == B.cols(),
                 "frobenius_distance: shape mismatch");
  using R = real_of_t<T>;
  R sum{};
  for (index_t j = 0; j < A.cols(); ++j) {
    const T* aj = A.col(j);
    const T* bj = B.col(j);
    for (index_t i = 0; i < A.rows(); ++i) {
      const R d = static_cast<R>(std::abs(aj[i] - bj[i]));
      sum += d * d;
    }
  }
  return std::sqrt(sum);
}

/// y += alpha * x.
template <typename T>
void axpy(T alpha, std::span<const T> x, std::span<T> y) {
  TLRWSE_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// x *= alpha.
template <typename T>
void scal(T alpha, std::span<T> x) {
  for (T& v : x) v *= alpha;
}

}  // namespace tlrwse::la
