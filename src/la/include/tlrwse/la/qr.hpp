// Householder QR and rank-revealing column-pivoted QR (Businger–Golub).
//
// RRQR is one of the compression backends named by the paper (Sec. 4:
// "rank revealing QR [16, 18]"): a tile T is approximated by the first k
// Householder columns once the trailing column norms drop below the
// requested tolerance, yielding T ~= U * V^H with U = Q(:,1:k) and
// V^H = R(1:k,:) * P^T.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/matrix.hpp"

namespace tlrwse::la {

/// Result of a full (economy) Householder QR: A = Q R, Q is m x k with
/// orthonormal columns, R is k x n upper triangular, k = min(m, n).
template <typename T>
struct QrResult {
  Matrix<T> Q;
  Matrix<T> R;
};

namespace detail {

/// Computes and applies the Householder reflector that zeroes column `col`
/// of `A` below row `col`, updating trailing columns in [col+1, ncols).
/// Returns the reflector vector (in-place convention: stored externally).
template <typename T>
void householder_column(Matrix<T>& A, index_t col, std::vector<T>& v,
                        T& tau, index_t ncols) {
  using R = real_of_t<T>;
  const index_t m = A.rows();
  const index_t len = m - col;
  v.assign(static_cast<std::size_t>(len), T{});
  for (index_t i = 0; i < len; ++i) v[static_cast<std::size_t>(i)] = A(col + i, col);

  const R xnorm = norm2(std::span<const T>(v.data(), v.size()));
  if (xnorm == R{}) {
    tau = T{};
    return;
  }
  // alpha = -sign(x0) * ||x|| with complex phase handling.
  T x0 = v[0];
  const R x0abs = static_cast<R>(std::abs(x0));
  T phase = (x0abs == R{}) ? T{1} : x0 / static_cast<T>(x0abs);
  T alpha = -phase * static_cast<T>(xnorm);
  v[0] -= alpha;
  const R vnorm = norm2(std::span<const T>(v.data(), v.size()));
  if (vnorm == R{}) {
    tau = T{};
    return;
  }
  for (auto& e : v) e /= static_cast<T>(vnorm);
  tau = T{2};

  // Apply H = I - tau v v^H to columns [col, ncols).
  for (index_t j = col; j < ncols; ++j) {
    T* aj = A.col(j) + col;
    T w{};
    for (index_t i = 0; i < len; ++i) {
      w += conj_if_complex(v[static_cast<std::size_t>(i)]) * aj[i];
    }
    w *= tau;
    for (index_t i = 0; i < len; ++i) {
      aj[i] -= v[static_cast<std::size_t>(i)] * w;
    }
  }
}

}  // namespace detail

/// Economy QR factorisation via Householder reflections.
template <typename T>
[[nodiscard]] QrResult<T> qr(const Matrix<T>& A_in) {
  const index_t m = A_in.rows();
  const index_t n = A_in.cols();
  const index_t k = std::min(m, n);
  Matrix<T> A = A_in;  // working copy; becomes R in its upper triangle

  std::vector<std::vector<T>> vs(static_cast<std::size_t>(k));
  std::vector<T> taus(static_cast<std::size_t>(k));
  std::vector<T> v;
  for (index_t c = 0; c < k; ++c) {
    detail::householder_column(A, c, v, taus[static_cast<std::size_t>(c)], n);
    vs[static_cast<std::size_t>(c)] = v;
  }

  QrResult<T> out;
  out.R = Matrix<T>(k, n, T{});
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = 0; i <= std::min(j, k - 1); ++i) out.R(i, j) = A(i, j);
  }

  // Accumulate Q = H_0 H_1 ... H_{k-1} applied to the first k identity cols.
  out.Q = Matrix<T>(m, k, T{});
  for (index_t i = 0; i < k; ++i) out.Q(i, i) = T{1};
  for (index_t c = k - 1; c >= 0; --c) {
    const auto& vc = vs[static_cast<std::size_t>(c)];
    const T tau = taus[static_cast<std::size_t>(c)];
    if (tau == T{}) continue;
    const index_t len = m - c;
    for (index_t j = 0; j < k; ++j) {
      T* qj = out.Q.col(j) + c;
      T w{};
      for (index_t i = 0; i < len; ++i) {
        w += conj_if_complex(vc[static_cast<std::size_t>(i)]) * qj[i];
      }
      w *= tau;
      for (index_t i = 0; i < len; ++i) {
        qj[i] -= vc[static_cast<std::size_t>(i)] * w;
      }
    }
  }
  return out;
}

/// Result of a truncated rank-revealing QR: A ~= U * Vh where U (m x k) has
/// orthonormal columns and Vh is k x n, with k chosen adaptively.
template <typename T>
struct RrqrResult {
  Matrix<T> U;
  Matrix<T> Vh;
  index_t rank = 0;
};

/// Column-pivoted Householder QR truncated at the first step where the
/// largest remaining column norm falls below `tol * ||A||_F` (absolute mode)
/// — the per-tile accuracy semantics used by the TLR compression driver.
/// `max_rank` caps the factor size (<= min(m, n); pass 0 for no cap).
template <typename T>
[[nodiscard]] RrqrResult<T> rrqr_truncated(const Matrix<T>& A_in,
                                           real_of_t<T> tol,
                                           index_t max_rank = 0) {
  using R = real_of_t<T>;
  const index_t m = A_in.rows();
  const index_t n = A_in.cols();
  const index_t kmax0 = std::min(m, n);
  const index_t kmax = (max_rank > 0) ? std::min(max_rank, kmax0) : kmax0;

  Matrix<T> A = A_in;
  std::vector<index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});

  // Running squared column norms for pivot selection.
  std::vector<R> colnorm2(static_cast<std::size_t>(n));
  R total2{};
  for (index_t j = 0; j < n; ++j) {
    const R cn = norm2(std::span<const T>(A.col(j), static_cast<std::size_t>(m)));
    colnorm2[static_cast<std::size_t>(j)] = cn * cn;
    total2 += cn * cn;
  }
  const R thresh = tol * std::sqrt(total2);

  std::vector<std::vector<T>> vs;
  std::vector<T> taus;
  std::vector<T> v;
  index_t k = 0;
  for (; k < kmax; ++k) {
    // Pivot: column with largest remaining norm.
    index_t piv = k;
    R best = colnorm2[static_cast<std::size_t>(k)];
    for (index_t j = k + 1; j < n; ++j) {
      if (colnorm2[static_cast<std::size_t>(j)] > best) {
        best = colnorm2[static_cast<std::size_t>(j)];
        piv = j;
      }
    }
    // Frobenius tail = sum of remaining column norms; stop when below tol.
    R tail2{};
    for (index_t j = k; j < n; ++j) tail2 += colnorm2[static_cast<std::size_t>(j)];
    if (std::sqrt(std::max(tail2, R{})) <= thresh) break;

    if (piv != k) {
      for (index_t i = 0; i < m; ++i) std::swap(A(i, k), A(i, piv));
      std::swap(colnorm2[static_cast<std::size_t>(k)],
                colnorm2[static_cast<std::size_t>(piv)]);
      std::swap(perm[static_cast<std::size_t>(k)],
                perm[static_cast<std::size_t>(piv)]);
    }

    T tau;
    detail::householder_column(A, k, v, tau, n);
    vs.push_back(v);
    taus.push_back(tau);

    // Recompute residual column norms exactly. The classic downdate
    // (subtracting |R(k,j)|^2) loses all accuracy once columns become
    // nearly dependent — its O(eps*||A||) noise floor would stop tight
    // tolerances (e.g. 1e-10) from ever being reached. Exact recomputation
    // costs O(mn) per step, the same order as the factorisation itself.
    for (index_t j = k + 1; j < n; ++j) {
      const R cn = norm2(std::span<const T>(A.col(j) + k + 1,
                                            static_cast<std::size_t>(m - k - 1)));
      colnorm2[static_cast<std::size_t>(j)] = cn * cn;
    }
  }

  RrqrResult<T> out;
  out.rank = k;
  // U = first k Householder-accumulated identity columns.
  out.U = Matrix<T>(m, k, T{});
  for (index_t i = 0; i < k; ++i) out.U(i, i) = T{1};
  for (index_t c = k - 1; c >= 0; --c) {
    const auto& vc = vs[static_cast<std::size_t>(c)];
    const T tau = taus[static_cast<std::size_t>(c)];
    if (tau == T{}) continue;
    const index_t len = m - c;
    for (index_t j = 0; j < k; ++j) {
      T* qj = out.U.col(j) + c;
      T w{};
      for (index_t i = 0; i < len; ++i) {
        w += conj_if_complex(vc[static_cast<std::size_t>(i)]) * qj[i];
      }
      w *= tau;
      for (index_t i = 0; i < len; ++i) {
        qj[i] -= vc[static_cast<std::size_t>(i)] * w;
      }
    }
  }
  // Vh = R(1:k, :) unpivoted back to original column order.
  out.Vh = Matrix<T>(k, n, T{});
  for (index_t j = 0; j < n; ++j) {
    const index_t orig = perm[static_cast<std::size_t>(j)];
    for (index_t i = 0; i < std::min<index_t>(k, j + 1); ++i) {
      out.Vh(i, orig) = A(i, j);
    }
  }
  return out;
}

}  // namespace tlrwse::la
