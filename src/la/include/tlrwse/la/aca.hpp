// Adaptive Cross Approximation with partial pivoting (ACA+ style stopping).
//
// ACA is the third compression backend named by the paper (Sec. 4, ref [49]).
// It builds A ~= sum_k u_k v_k^H from individual rows/columns of A without
// ever forming a factorisation, making it the cheapest backend when ranks
// are very low — at the cost of weaker error guarantees than SVD/RRQR.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/matrix.hpp"
#include "tlrwse/la/svd.hpp"

namespace tlrwse::la {

/// Compresses A to relative Frobenius tolerance `tol` via partially pivoted
/// ACA. Stops when ||u_k|| * ||v_k|| <= tol * ||A_k||_F (running estimate of
/// the approximant norm), or when `max_rank` terms have been produced.
template <typename T>
[[nodiscard]] LowRankFactors<T> compress_aca(const Matrix<T>& A,
                                             real_of_t<T> tol,
                                             index_t max_rank = 0) {
  using R = real_of_t<T>;
  const index_t m = A.rows();
  const index_t n = A.cols();
  const index_t kmax = (max_rank > 0) ? std::min(max_rank, std::min(m, n))
                                      : std::min(m, n);

  std::vector<std::vector<T>> us;  // m-vectors
  std::vector<std::vector<T>> vs;  // n-vectors (stored conjugated as rows)
  std::vector<bool> row_used(static_cast<std::size_t>(m), false);
  std::vector<bool> col_used(static_cast<std::size_t>(n), false);

  // Residual row/column evaluation: R_k(i, :) = A(i, :) - sum u_l[i] v_l.
  auto residual_row = [&](index_t i, std::vector<T>& row) {
    row.resize(static_cast<std::size_t>(n));
    for (index_t j = 0; j < n; ++j) row[static_cast<std::size_t>(j)] = A(i, j);
    for (std::size_t l = 0; l < us.size(); ++l) {
      const T ui = us[l][static_cast<std::size_t>(i)];
      for (index_t j = 0; j < n; ++j) {
        row[static_cast<std::size_t>(j)] -= ui * vs[l][static_cast<std::size_t>(j)];
      }
    }
  };
  auto residual_col = [&](index_t j, std::vector<T>& colv) {
    colv.resize(static_cast<std::size_t>(m));
    for (index_t i = 0; i < m; ++i) colv[static_cast<std::size_t>(i)] = A(i, j);
    for (std::size_t l = 0; l < us.size(); ++l) {
      const T vj = vs[l][static_cast<std::size_t>(j)];
      for (index_t i = 0; i < m; ++i) {
        colv[static_cast<std::size_t>(i)] -= us[l][static_cast<std::size_t>(i)] * vj;
      }
    }
  };

  R approx_norm2{};  // running ||A_k||_F^2 of the approximant
  index_t next_row = 0;
  std::vector<T> row, colv;
  for (index_t k = 0; k < kmax; ++k) {
    // Pick the next unused pivot row (cyclic partial pivoting).
    while (next_row < m && row_used[static_cast<std::size_t>(next_row)]) ++next_row;
    if (next_row >= m) break;
    index_t pi = next_row;
    residual_row(pi, row);

    // Pivot column: largest residual entry in the pivot row.
    index_t pj = -1;
    R best{};
    for (index_t j = 0; j < n; ++j) {
      if (col_used[static_cast<std::size_t>(j)]) continue;
      const R a = static_cast<R>(std::abs(row[static_cast<std::size_t>(j)]));
      if (a > best) {
        best = a;
        pj = j;
      }
    }
    if (pj < 0 || best == R{}) {
      // Degenerate row; mark used and retry with the next one.
      row_used[static_cast<std::size_t>(pi)] = true;
      --k;
      continue;
    }

    residual_col(pj, colv);
    // Improve the row pivot: largest entry of the pivot column.
    index_t pi2 = pi;
    R bestc{};
    for (index_t i = 0; i < m; ++i) {
      if (row_used[static_cast<std::size_t>(i)]) continue;
      const R a = static_cast<R>(std::abs(colv[static_cast<std::size_t>(i)]));
      if (a > bestc) {
        bestc = a;
        pi2 = i;
      }
    }
    if (pi2 != pi) {
      pi = pi2;
      residual_row(pi, row);
      // Recompute the column pivot for the improved row.
      pj = -1;
      best = R{};
      for (index_t j = 0; j < n; ++j) {
        if (col_used[static_cast<std::size_t>(j)]) continue;
        const R a = static_cast<R>(std::abs(row[static_cast<std::size_t>(j)]));
        if (a > best) {
          best = a;
          pj = j;
        }
      }
      if (pj < 0 || best == R{}) {
        row_used[static_cast<std::size_t>(pi)] = true;
        --k;
        continue;
      }
      residual_col(pj, colv);
    }

    const T pivot = row[static_cast<std::size_t>(pj)];
    row_used[static_cast<std::size_t>(pi)] = true;
    col_used[static_cast<std::size_t>(pj)] = true;

    // u_k = residual column / pivot, v_k = residual row.
    std::vector<T> u(colv);
    for (T& e : u) e /= pivot;
    std::vector<T> v(row);

    const R un = norm2(std::span<const T>(u.data(), u.size()));
    const R vn = norm2(std::span<const T>(v.data(), v.size()));

    // Update the running approximant norm:
    // ||A_{k+1}||^2 = ||A_k||^2 + 2 Re sum_l (u^H u_l)(v_l v^H) + ||u||^2||v||^2.
    R cross{};
    for (std::size_t l = 0; l < us.size(); ++l) {
      T uu{}, vv{};
      for (index_t i = 0; i < m; ++i) {
        uu += conj_if_complex(us[l][static_cast<std::size_t>(i)]) *
              u[static_cast<std::size_t>(i)];
      }
      for (index_t j = 0; j < n; ++j) {
        // <v_l, v> with Frobenius convention: sum conj(v_l[j]) * v[j].
        vv += conj_if_complex(vs[l][static_cast<std::size_t>(j)]) *
              v[static_cast<std::size_t>(j)];
      }
      cross += R{2} * std::real(uu * vv);
    }
    approx_norm2 += cross + un * un * vn * vn;

    us.push_back(std::move(u));
    vs.push_back(std::move(v));

    if (un * vn <= tol * std::sqrt(std::max(approx_norm2, R{}))) break;
  }

  LowRankFactors<T> out;
  const index_t k = static_cast<index_t>(us.size());
  out.U = Matrix<T>(m, k);
  out.Vh = Matrix<T>(k, n);
  for (index_t l = 0; l < k; ++l) {
    for (index_t i = 0; i < m; ++i) {
      out.U(i, l) = us[static_cast<std::size_t>(l)][static_cast<std::size_t>(i)];
    }
    for (index_t j = 0; j < n; ++j) {
      out.Vh(l, j) = vs[static_cast<std::size_t>(l)][static_cast<std::size_t>(j)];
    }
  }
  return out;
}

}  // namespace tlrwse::la
