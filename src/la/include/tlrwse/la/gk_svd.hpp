// Golub–Kahan SVD for REAL matrices: Householder bidiagonalization followed
// by the implicit-shift bidiagonal QR iteration (Golub & Van Loan, Alg.
// 8.6.1/8.6.2). Complements the one-sided Jacobi SVD: GK is the classic
// O(mn^2) dense factorisation with fast global convergence, used here for
// the real split-basis paths and as an independent cross-check of Jacobi in
// the test suite. Complex matrices route through svd_jacobi.
#pragma once

#include <vector>

#include "tlrwse/la/matrix.hpp"
#include "tlrwse/la/svd.hpp"

namespace tlrwse::la {

/// Economy SVD A = U diag(S) V^T for real A (m >= n internally; transposed
/// inputs are handled by swapping the factors). Singular values descend.
template <typename T>
[[nodiscard]] SvdResult<T> svd_golub_kahan(const Matrix<T>& A);

extern template SvdResult<float> svd_golub_kahan(const Matrix<float>&);
extern template SvdResult<double> svd_golub_kahan(const Matrix<double>&);

}  // namespace tlrwse::la
