// Column-major dense matrix with 64-byte-aligned storage.
//
// Column-major is the layout of the stacked V/U bases in the TLR-MVM design
// (Figs. 4 and 9 of the paper): a batched MVM walks contiguous columns, and
// the Cerebras layout stores per-tile-column bases side by side.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "tlrwse/common/aligned.hpp"
#include "tlrwse/common/error.hpp"
#include "tlrwse/common/types.hpp"

namespace tlrwse::la {

template <typename T>
class Matrix {
 public:
  using value_type = T;

  Matrix() = default;
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols)) {}
  Matrix(index_t rows, index_t cols, T fill_value) : Matrix(rows, cols) {
    std::fill(data_.begin(), data_.end(), fill_value);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t size() const noexcept { return rows_ * cols_; }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] T& operator()(index_t i, index_t j) noexcept {
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  [[nodiscard]] const T& operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  /// Pointer to the first element of column j (columns are contiguous).
  [[nodiscard]] T* col(index_t j) noexcept { return data() + j * rows_; }
  [[nodiscard]] const T* col(index_t j) const noexcept {
    return data() + j * rows_;
  }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  /// Copies the block [r0, r0+nr) x [c0, c0+nc) into a new matrix.
  [[nodiscard]] Matrix block(index_t r0, index_t c0, index_t nr,
                             index_t nc) const {
    TLRWSE_REQUIRE(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_,
                   "block out of range");
    Matrix out(nr, nc);
    for (index_t j = 0; j < nc; ++j) {
      std::copy_n(col(c0 + j) + r0, nr, out.col(j));
    }
    return out;
  }

  /// Writes `b` into this matrix at offset (r0, c0).
  void set_block(index_t r0, index_t c0, const Matrix& b) {
    TLRWSE_REQUIRE(r0 + b.rows() <= rows_ && c0 + b.cols() <= cols_,
                   "set_block out of range");
    for (index_t j = 0; j < b.cols(); ++j) {
      std::copy_n(b.col(j), b.rows(), col(c0 + j) + r0);
    }
  }

  /// Conjugate transpose (plain transpose for real T).
  [[nodiscard]] Matrix adjoint() const {
    Matrix out(cols_, rows_);
    for (index_t j = 0; j < cols_; ++j) {
      for (index_t i = 0; i < rows_; ++i) {
        out(j, i) = conj_if_complex((*this)(i, j));
      }
    }
    return out;
  }

  [[nodiscard]] Matrix transpose() const {
    Matrix out(cols_, rows_);
    for (index_t j = 0; j < cols_; ++j) {
      for (index_t i = 0; i < rows_; ++i) out(j, i) = (*this)(i, j);
    }
    return out;
  }

  [[nodiscard]] static Matrix identity(index_t n) {
    Matrix out(n, n, T{});
    for (index_t i = 0; i < n; ++i) out(i, i) = T{1};
    return out;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  [[nodiscard]] static std::size_t checked_size(index_t rows, index_t cols) {
    TLRWSE_REQUIRE(rows >= 0 && cols >= 0, "negative matrix dims");
    return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  }

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T, AlignedAllocator<T>> data_;
};

using MatrixF = Matrix<float>;
using MatrixD = Matrix<double>;
using MatrixCF = Matrix<cf32>;
using MatrixCD = Matrix<cf64>;

}  // namespace tlrwse::la
