// Bit-exact 16-bit storage formats for the TLR factor planes.
//
// The TLR-MVM is memory-bandwidth-bound (the paper's "memory wall"), so
// halving the bytes per stored factor is worth ~2x effective bandwidth on
// the hot path. Two formats are supported:
//   * IEEE binary16 (fp16): 5-bit exponent, 10-bit mantissa. Fine mantissa,
//     narrow range — right for the normalised seismic bases.
//   * bfloat16 (bf16): 8-bit exponent (same range as float32), 7-bit
//     mantissa. Coarser, but never overflows where float32 does not.
//
// These functions define the PACKING SEMANTICS for the whole repo — the
// mixed-precision rounding helpers (tlr::round_to_fp16/round_to_bf16), the
// plan arenas, and the archive payload encodings all agree by construction
// because they all go through here:
//   * rounding is round-to-nearest-even on the stored mantissa;
//   * NaN packs to the canonical quiet NaN of the format (sign preserved);
//   * +-Inf packs to +-Inf;
//   * finite fp16 overflow SATURATES to +-65504 (the seismic bases are
//     normalised, so overflow means a bug upstream — saturation keeps it
//     finite and visible instead of poisoning the solve with Inf);
//   * finite bf16 overflow rounds to +-Inf (standard bf16: only values
//     above ~3.39e38 qualify, beyond anything a normalised base holds);
//   * fp16 denormals (|v| < 2^-14) flush to SIGNED zero on pack — and the
//     widening side decodes denormal bit patterns exactly anyway, so
//     foreign fp16 data also round-trips;
//   * signed zero is preserved by both formats.
// Widening (16 -> 32 bits) is EXACT for every bit pattern, which is what
// makes the fp32-accumulating kernels bitwise-reproducible: a hardware
// F16C/NEON convert and the scalar bit-manipulation below produce the same
// float, so every dispatch tier computes identical results.
#pragma once

#include <bit>
#include <cstdint>

namespace tlrwse::la {

/// Which 16-bit encoding a packed plane uses.
enum class HalfFormat : std::uint8_t { kFp16 = 0, kBf16 = 1 };

[[nodiscard]] constexpr const char* half_format_name(HalfFormat f) noexcept {
  return f == HalfFormat::kFp16 ? "fp16" : "bf16";
}

/// float -> IEEE binary16 bits (semantics documented above).
[[nodiscard]] constexpr std::uint16_t f32_to_fp16_bits(float v) noexcept {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(v);
  const auto sign = static_cast<std::uint16_t>((u >> 16) & 0x8000u);
  const std::uint32_t exp = (u >> 23) & 0xFFu;
  const std::uint32_t mant = u & 0x7FFFFFu;
  if (exp == 0xFFu) {  // Inf / NaN
    if (mant != 0) return static_cast<std::uint16_t>(sign | 0x7E00u);  // qNaN
    return static_cast<std::uint16_t>(sign | 0x7C00u);                 // Inf
  }
  const std::uint32_t au = u & 0x7FFFFFFFu;
  if (au > 0x477FE000u) {  // |v| > 65504: saturate to the largest finite half
    return static_cast<std::uint16_t>(sign | 0x7BFFu);
  }
  if (au < 0x38800000u) {  // |v| < 2^-14: flush half-denormals to signed zero
    return sign;
  }
  // Round the 23-bit mantissa to 10 bits (round-to-nearest-even), letting a
  // carry propagate into the exponent, then rebias 127 -> 15.
  std::uint32_t b = au;
  const std::uint32_t lsb = 1u << 13;
  const std::uint32_t round_bit = lsb >> 1;
  const std::uint32_t sticky = b & (round_bit - 1u);
  if ((b & round_bit) != 0 && (sticky != 0 || (b & lsb) != 0)) b += lsb;
  b &= ~(lsb - 1u);
  const std::uint32_t hexp = ((b >> 23) & 0xFFu) - 112u;  // 127 - 15
  const std::uint32_t hmant = (b >> 13) & 0x3FFu;
  return static_cast<std::uint16_t>(sign | (hexp << 10) | hmant);
}

/// IEEE binary16 bits -> float. Exact for EVERY bit pattern, including the
/// denormals the packer never emits.
[[nodiscard]] constexpr float fp16_bits_to_f32(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;
  if (exp == 0) {
    if (mant == 0) return std::bit_cast<float>(sign);  // signed zero
    // Denormal half: mant * 2^-24, exact in float32.
    const float r = static_cast<float>(mant) * 0x1p-24f;
    return std::bit_cast<float>(sign | std::bit_cast<std::uint32_t>(r));
  }
  if (exp == 0x1Fu) {  // Inf / NaN (payload widened into the f32 mantissa)
    return std::bit_cast<float>(sign | 0x7F800000u | (mant << 13));
  }
  return std::bit_cast<float>(sign | ((exp + 112u) << 23) | (mant << 13));
}

/// float -> bfloat16 bits (round-to-nearest-even on the top 16 bits).
[[nodiscard]] constexpr std::uint16_t f32_to_bf16_bits(float v) noexcept {
  const std::uint32_t u = std::bit_cast<std::uint32_t>(v);
  if ((u & 0x7F800000u) == 0x7F800000u && (u & 0x7FFFFFu) != 0) {
    // NaN: truncating could zero the stored mantissa bits and turn it into
    // Inf; force a quiet-NaN bit instead (sign preserved).
    return static_cast<std::uint16_t>((u >> 16) | 0x0040u);
  }
  // RNE via the carry trick; a finite overflow carries into Inf, Inf stays
  // Inf (its mantissa field is zero so the bias never reaches the exponent).
  const std::uint32_t bias = 0x7FFFu + ((u >> 16) & 1u);
  return static_cast<std::uint16_t>((u + bias) >> 16);
}

/// bfloat16 bits -> float: exact by construction.
[[nodiscard]] constexpr float bf16_bits_to_f32(std::uint16_t h) noexcept {
  return std::bit_cast<float>(static_cast<std::uint32_t>(h) << 16);
}

/// Pack/widen through the format selected at runtime.
[[nodiscard]] constexpr std::uint16_t f32_to_half_bits(float v,
                                                       HalfFormat f) noexcept {
  return f == HalfFormat::kFp16 ? f32_to_fp16_bits(v) : f32_to_bf16_bits(v);
}

[[nodiscard]] constexpr float half_bits_to_f32(std::uint16_t h,
                                               HalfFormat f) noexcept {
  return f == HalfFormat::kFp16 ? fp16_bits_to_f32(h) : bf16_bits_to_f32(h);
}

}  // namespace tlrwse::la
