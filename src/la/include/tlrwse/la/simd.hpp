// Runtime-dispatched SIMD microkernel engine for the TLR-MVM hot path.
//
// The paper's x86 baseline (Sec. 6.6) splits every complex MVM into real
// batched MVMs precisely so vendor SIMD kernels apply. This module is our
// vendor-kernel equivalent: register-blocked float32 microkernels (plain
// sgemv, fused split-complex gemv computing yr/yi in one pass over Ar/Ai,
// conjugated adjoint forms, and multi-RHS variants that block 4-8
// right-hand sides so repeated applies become small GEMMs), compiled once
// per ISA tier and selected once at startup via cpuid.
//
// Tiers: scalar (always available, the reference), NEON on aarch64, and
// AVX2+FMA / AVX-512 on x86-64. Every tier computes BITWISE-identical
// results by construction: all tiers use fused multiply-add (std::fma in
// the scalar tier) in the same per-element order, and every dot-form
// reduction accumulates into the same fixed 16-lane pattern reduced by the
// same pairwise tree regardless of vector width. The parity fuzz test
// (test_simd) pins this at <= 4 ULP elementwise; in practice the tiers
// agree exactly.
//
// Selection: `dispatch()` resolves the best tier compiled in AND supported
// by the host, overridable by the TLRWSE_SIMD_LEVEL environment variable
// ("scalar" | "neon" | "avx2" | "avx512"; requests above what the host
// supports clamp downward). With -DTLRWSE_SIMD=OFF only the scalar tier is
// compiled and dispatch() always returns it.
#pragma once

#include <cstdint>
#include <span>

#include "tlrwse/common/types.hpp"
#include "tlrwse/la/half.hpp"

namespace tlrwse::la::simd {

/// ISA tiers in ascending preference order. Clamping walks downward, so a
/// level absent on the host resolves to the best available one below it.
enum class Level : int { kScalar = 0, kNeon = 1, kAvx2 = 2, kAvx512 = 3 };

/// One tier's kernel set. All matrices are column-major float32 with an
/// explicit leading dimension (the MvmPlan arena pads leading dimensions
/// to 16 floats so columns start 64-byte aligned, but kernels use
/// unaligned loads and accept any lda >= m). `accumulate` selects y += ...
/// over y = ...; multi-RHS operands are column-major panels with leading
/// dimensions ldx/ldy.
struct KernelTable {
  const char* name;

  /// y (+)= A x  (column-sweep axpy form; m x n).
  void (*sgemv)(index_t m, index_t n, const float* A, index_t lda,
                const float* x, float* y, bool accumulate);
  /// y (+)= A^T x  (dot form; y has n entries, reduction length m).
  void (*sgemv_t)(index_t m, index_t n, const float* A, index_t lda,
                  const float* x, float* y, bool accumulate);
  /// Fused split-complex MVM: (yr + i yi) (+)= (Ar + i Ai)(xr + i xi),
  /// both result planes computed in ONE pass over Ar/Ai (the paper's
  /// four real MVMs fused to halve the matrix traffic).
  void (*sgemv_split)(index_t m, index_t n, const float* Ar, const float* Ai,
                      index_t lda, const float* xr, const float* xi, float* yr,
                      float* yi, bool accumulate);
  /// Fused split-complex adjoint: (yr + i yi) (+)= (Ar + i Ai)^H (xr + i xi).
  void (*sgemv_split_adjoint)(index_t m, index_t n, const float* Ar,
                              const float* Ai, index_t lda, const float* xr,
                              const float* xi, float* yr, float* yi,
                              bool accumulate);
  /// Multi-RHS sgemv: Y (+)= A X for nrhs right-hand sides, register-
  /// blocking 8 RHS columns per sweep over A (~nrhs x the arithmetic
  /// intensity of one MVM). Each RHS column is bitwise identical to a
  /// single-RHS sgemv call.
  void (*sgemv_multi)(index_t m, index_t n, const float* A, index_t lda,
                      const float* X, index_t ldx, float* Y, index_t ldy,
                      index_t nrhs, bool accumulate);
  /// Multi-RHS fused split-complex MVM (register-blocks 4 RHS).
  void (*sgemv_split_multi)(index_t m, index_t n, const float* Ar,
                            const float* Ai, index_t lda, const float* Xr,
                            const float* Xi, index_t ldx, float* Yr, float* Yi,
                            index_t ldy, index_t nrhs, bool accumulate);
  /// Multi-RHS fused split-complex adjoint (register-blocks 4 RHS).
  void (*sgemv_split_adjoint_multi)(index_t m, index_t n, const float* Ar,
                                    const float* Ai, index_t lda,
                                    const float* Xr, const float* Xi,
                                    index_t ldx, float* Yr, float* Yi,
                                    index_t ldy, index_t nrhs, bool accumulate);
  /// Multi-RHS fused split-complex MVM over PACKED 16-bit factor planes
  /// (fp16 or bf16 per `fmt`): each factor register is widened to float32
  /// in-register (F16C / AVX-512 / NEON converts, or the bit-exact scalar
  /// conversion on the scalar tier) and ALL arithmetic accumulates in
  /// float32 with the same fused multiply-add order as sgemv_split_multi.
  /// Because widening is exact, results are bitwise identical across tiers
  /// AND to the float32 kernel applied to the widened planes; nrhs = 1 is
  /// the single-RHS form. `lda` counts uint16 elements.
  void (*hgemv_split_multi)(HalfFormat fmt, index_t m, index_t n,
                            const std::uint16_t* Ar, const std::uint16_t* Ai,
                            index_t lda, const float* Xr, const float* Xi,
                            index_t ldx, float* Yr, float* Yi, index_t ldy,
                            index_t nrhs, bool accumulate);
  /// Multi-RHS fused split-complex adjoint over packed 16-bit factors,
  /// float32 accumulation (same lane pattern as sgemv_split_adjoint).
  void (*hgemv_split_adjoint_multi)(HalfFormat fmt, index_t m, index_t n,
                                    const std::uint16_t* Ar,
                                    const std::uint16_t* Ai, index_t lda,
                                    const float* Xr, const float* Xi,
                                    index_t ldx, float* Yr, float* Yi,
                                    index_t ldy, index_t nrhs,
                                    bool accumulate);
  /// Deinterleave a complex vector into planar re/im.
  void (*split_complex)(index_t n, const cf32* x, float* re, float* im);
  /// Interleave planar re/im back into a complex vector.
  void (*merge_complex)(index_t n, const float* re, const float* im, cf32* y);
};

/// True when the CMake option TLRWSE_SIMD compiled the vector tiers in.
[[nodiscard]] bool compiled_in() noexcept;

[[nodiscard]] const char* level_name(Level level) noexcept;

/// Tiers compiled in AND executable on this host, ascending; always
/// contains at least Level::kScalar.
[[nodiscard]] std::span<const Level> available_levels() noexcept;

/// Parses a TLRWSE_SIMD_LEVEL value; `ok` reports whether `s` named a level.
[[nodiscard]] Level parse_level(const char* s, bool& ok) noexcept;

/// Best available level <= `want` (scalar when nothing else qualifies).
[[nodiscard]] Level resolve_level(Level want) noexcept;

/// Kernel table of resolve_level(want). Valid for the process lifetime.
[[nodiscard]] const KernelTable& table(Level want) noexcept;

/// The tier the process runs on: the best available level, overridden by
/// TLRWSE_SIMD_LEVEL. Resolved once on first use (cpuid + getenv), so the
/// hot path pays one predicted branch and an indirect call.
[[nodiscard]] Level active_level() noexcept;

/// Kernel table of active_level().
[[nodiscard]] const KernelTable& dispatch() noexcept;

/// True when the active tier widens 16-bit factors with hardware converts
/// (F16C on AVX2, AVX-512F, NEON). False on the scalar tier, when the host
/// lacks F16C, or when TLRWSE_NO_F16C is set in the environment — in those
/// cases the hgemv_* entries of every table are patched to the scalar
/// conversion tier. Both paths widen exactly, so results are bitwise
/// identical either way; this only affects throughput.
[[nodiscard]] bool half_hw_convert() noexcept;

}  // namespace tlrwse::la::simd
