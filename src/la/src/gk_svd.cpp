#include "tlrwse/la/gk_svd.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tlrwse/common/error.hpp"
#include "tlrwse/la/blas.hpp"

namespace tlrwse::la {

namespace {

/// Givens rotation [c s; -s c] with c*a + s*b = r, -s*a + c*b = 0.
template <typename T>
void givens(T a, T b, T& c, T& s) {
  if (b == T{0}) {
    c = T{1};
    s = T{0};
    return;
  }
  const T r = std::hypot(a, b);
  c = a / r;
  s = b / r;
}

/// Applies a right rotation to columns (j1, j2) of M: for each row i,
/// [m1, m2] <- [c*m1 + s*m2, -s*m1 + c*m2].
template <typename T>
void rotate_cols(Matrix<T>& M, index_t j1, index_t j2, T c, T s) {
  T* a = M.col(j1);
  T* b = M.col(j2);
  for (index_t i = 0; i < M.rows(); ++i) {
    const T t1 = c * a[i] + s * b[i];
    const T t2 = -s * a[i] + c * b[i];
    a[i] = t1;
    b[i] = t2;
  }
}

/// Householder bidiagonalization: A (m x n, m >= n) = U * B * V^T with B
/// upper bidiagonal (diagonal d, superdiagonal e). U is m x n, V is n x n.
template <typename T>
void bidiagonalize(const Matrix<T>& A, Matrix<T>& U, Matrix<T>& V,
                   std::vector<T>& d, std::vector<T>& e) {
  const index_t m = A.rows();
  const index_t n = A.cols();
  Matrix<T> W = A;  // working copy

  std::vector<std::vector<T>> lv(static_cast<std::size_t>(n));  // left refl.
  std::vector<std::vector<T>> rv(static_cast<std::size_t>(n));  // right refl.

  auto house = [](std::vector<T>& v) -> T {
    // Normalised Householder vector for x (stored in v); returns tau such
    // that (I - tau v v^T) x = -sign(x0)||x|| e1. Empty/zero -> tau = 0.
    T norm{};
    for (T x : v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm == T{0}) return T{0};
    const T alpha = (v[0] >= T{0}) ? -norm : norm;
    v[0] -= alpha;
    T vn{};
    for (T x : v) vn += x * x;
    vn = std::sqrt(vn);
    if (vn == T{0}) return T{0};
    for (T& x : v) x /= vn;
    return T{2};
  };

  for (index_t k = 0; k < n; ++k) {
    // Left reflector annihilating column k below the diagonal.
    auto& v = lv[static_cast<std::size_t>(k)];
    v.assign(static_cast<std::size_t>(m - k), T{});
    for (index_t i = k; i < m; ++i) v[static_cast<std::size_t>(i - k)] = W(i, k);
    const T tau = house(v);
    if (tau != T{0}) {
      for (index_t j = k; j < n; ++j) {
        T w{};
        for (index_t i = k; i < m; ++i) {
          w += v[static_cast<std::size_t>(i - k)] * W(i, j);
        }
        w *= tau;
        for (index_t i = k; i < m; ++i) {
          W(i, j) -= v[static_cast<std::size_t>(i - k)] * w;
        }
      }
    }

    // Right reflector annihilating row k right of the superdiagonal.
    if (k + 2 <= n - 1 || k + 1 <= n - 1) {
      auto& w = rv[static_cast<std::size_t>(k)];
      if (k + 1 < n) {
        w.assign(static_cast<std::size_t>(n - k - 1), T{});
        for (index_t j = k + 1; j < n; ++j) {
          w[static_cast<std::size_t>(j - k - 1)] = W(k, j);
        }
        const T tau_r = house(w);
        if (tau_r != T{0}) {
          for (index_t i = k; i < m; ++i) {
            T acc{};
            for (index_t j = k + 1; j < n; ++j) {
              acc += W(i, j) * w[static_cast<std::size_t>(j - k - 1)];
            }
            acc *= tau_r;
            for (index_t j = k + 1; j < n; ++j) {
              W(i, j) -= acc * w[static_cast<std::size_t>(j - k - 1)];
            }
          }
        }
      }
    }
  }

  d.assign(static_cast<std::size_t>(n), T{});
  e.assign(static_cast<std::size_t>(std::max<index_t>(n - 1, 0)), T{});
  for (index_t k = 0; k < n; ++k) {
    d[static_cast<std::size_t>(k)] = W(k, k);
    if (k + 1 < n) e[static_cast<std::size_t>(k)] = W(k, k + 1);
  }

  // Accumulate U = H_0 ... H_{n-1} I_mn.
  U = Matrix<T>(m, n, T{});
  for (index_t i = 0; i < n; ++i) U(i, i) = T{1};
  for (index_t k = n - 1; k >= 0; --k) {
    const auto& v = lv[static_cast<std::size_t>(k)];
    if (v.empty()) continue;
    for (index_t j = 0; j < n; ++j) {
      T w{};
      for (index_t i = k; i < m; ++i) {
        w += v[static_cast<std::size_t>(i - k)] * U(i, j);
      }
      w *= T{2};
      for (index_t i = k; i < m; ++i) {
        U(i, j) -= v[static_cast<std::size_t>(i - k)] * w;
      }
    }
  }
  // Accumulate V = G_0 ... G_{n-2} I_n (right reflectors act on rows k+1..).
  V = Matrix<T>::identity(n);
  for (index_t k = n - 1; k >= 0; --k) {
    const auto& w = rv[static_cast<std::size_t>(k)];
    if (w.empty()) continue;
    for (index_t j = 0; j < n; ++j) {
      T acc{};
      for (index_t i = k + 1; i < n; ++i) {
        acc += w[static_cast<std::size_t>(i - k - 1)] * V(i, j);
      }
      acc *= T{2};
      for (index_t i = k + 1; i < n; ++i) {
        V(i, j) -= w[static_cast<std::size_t>(i - k - 1)] * acc;
      }
    }
  }
}

/// One implicit-shift Golub-Kahan QR step on the unreduced block
/// [lo, hi] of the bidiagonal (d, e); rotations accumulated into U and V.
template <typename T>
void gk_step(std::vector<T>& d, std::vector<T>& e, index_t lo, index_t hi,
             Matrix<T>& U, Matrix<T>& V) {
  // Wilkinson shift from the trailing 2x2 of B^T B.
  const T dm = d[static_cast<std::size_t>(hi - 1)];
  const T dn = d[static_cast<std::size_t>(hi)];
  const T em = e[static_cast<std::size_t>(hi - 1)];
  const T el = (hi >= 2 && hi - 2 >= lo) ? e[static_cast<std::size_t>(hi - 2)]
                                         : T{0};
  const T t11 = dm * dm + el * el;
  const T t12 = dm * em;
  const T t22 = dn * dn + em * em;
  const T delta = (t11 - t22) / T{2};
  const T denom =
      delta + ((delta >= T{0}) ? T{1} : T{-1}) *
                  std::sqrt(delta * delta + t12 * t12);
  const T mu = (denom != T{0}) ? t22 - t12 * t12 / denom : t22;

  T x = d[static_cast<std::size_t>(lo)] * d[static_cast<std::size_t>(lo)] - mu;
  T z = d[static_cast<std::size_t>(lo)] * e[static_cast<std::size_t>(lo)];

  for (index_t k = lo; k < hi; ++k) {
    T c, s;
    givens(x, z, c, s);
    // The rotation that zeroes the off-bidiagonal bulge also rotates the
    // previous superdiagonal element into place.
    if (k > lo) e[static_cast<std::size_t>(k - 1)] = c * x + s * z;
    // Right rotation on columns (k, k+1) of B.
    const T dk = d[static_cast<std::size_t>(k)];
    const T ek = e[static_cast<std::size_t>(k)];
    const T dk1 = d[static_cast<std::size_t>(k + 1)];
    d[static_cast<std::size_t>(k)] = c * dk + s * ek;
    e[static_cast<std::size_t>(k)] = -s * dk + c * ek;
    d[static_cast<std::size_t>(k + 1)] = c * dk1;
    T bulge = s * dk1;
    rotate_cols(V, k, k + 1, c, s);

    // Left rotation zeroing the bulge below the diagonal.
    givens(d[static_cast<std::size_t>(k)], bulge, c, s);
    d[static_cast<std::size_t>(k)] =
        c * d[static_cast<std::size_t>(k)] + s * bulge;
    const T ek2 = e[static_cast<std::size_t>(k)];
    const T dk2 = d[static_cast<std::size_t>(k + 1)];
    e[static_cast<std::size_t>(k)] = c * ek2 + s * dk2;
    d[static_cast<std::size_t>(k + 1)] = -s * ek2 + c * dk2;
    rotate_cols(U, k, k + 1, c, s);
    if (k + 1 < hi) {
      const T ek1 = e[static_cast<std::size_t>(k + 1)];
      bulge = s * ek1;
      e[static_cast<std::size_t>(k + 1)] = c * ek1;
      x = e[static_cast<std::size_t>(k)];
      z = bulge;
    }
  }
}

}  // namespace

template <typename T>
SvdResult<T> svd_golub_kahan(const Matrix<T>& A) {
  static_assert(!is_complex_v<T>, "GK path is real-only; use svd_jacobi");
  if (A.rows() < A.cols()) {
    SvdResult<T> t = svd_golub_kahan(Matrix<T>(A.transpose()));
    return {std::move(t.V), std::move(t.S), std::move(t.U)};
  }
  const index_t n = A.cols();
  if (n == 0) return {Matrix<T>(A.rows(), 0), {}, Matrix<T>(0, 0)};

  Matrix<T> U, V;
  std::vector<T> d, e;
  bidiagonalize(A, U, V, d, e);

  const T eps = std::numeric_limits<T>::epsilon();
  const int max_iters = 120 * static_cast<int>(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    // Deflate negligible superdiagonals.
    index_t hi = n - 1;
    bool done = true;
    for (index_t k = 0; k < n - 1; ++k) {
      const T tol = eps * (std::abs(d[static_cast<std::size_t>(k)]) +
                           std::abs(d[static_cast<std::size_t>(k + 1)]));
      if (std::abs(e[static_cast<std::size_t>(k)]) <= tol) {
        e[static_cast<std::size_t>(k)] = T{0};
      } else {
        done = false;
      }
    }
    if (done || n == 1) break;
    // Find the trailing unreduced block [lo, hi].
    while (hi > 0 && e[static_cast<std::size_t>(hi - 1)] == T{0}) --hi;
    if (hi == 0) continue;
    index_t lo = hi - 1;
    while (lo > 0 && e[static_cast<std::size_t>(lo - 1)] != T{0}) --lo;
    gk_step(d, e, lo, hi, U, V);
  }

  // Fix signs and sort descending.
  SvdResult<T> out;
  out.S.resize(static_cast<std::size_t>(n));
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    out.S[static_cast<std::size_t>(k)] = std::abs(d[static_cast<std::size_t>(k)]);
    if (d[static_cast<std::size_t>(k)] < T{0}) {
      // Flip the corresponding U column.
      T* u = U.col(k);
      for (index_t i = 0; i < U.rows(); ++i) u[i] = -u[i];
    }
    order[static_cast<std::size_t>(k)] = k;
  }
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return out.S[static_cast<std::size_t>(a)] > out.S[static_cast<std::size_t>(b)];
  });
  Matrix<T> Us(U.rows(), n);
  Matrix<T> Vs(n, n);
  std::vector<real_of_t<T>> Ss(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const index_t src = order[static_cast<std::size_t>(j)];
    Ss[static_cast<std::size_t>(j)] = out.S[static_cast<std::size_t>(src)];
    std::copy_n(U.col(src), U.rows(), Us.col(j));
    std::copy_n(V.col(src), n, Vs.col(j));
  }
  out.U = std::move(Us);
  out.V = std::move(Vs);
  out.S = std::move(Ss);
  return out;
}

template SvdResult<float> svd_golub_kahan(const Matrix<float>&);
template SvdResult<double> svd_golub_kahan(const Matrix<double>&);

}  // namespace tlrwse::la
