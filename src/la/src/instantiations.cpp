// Explicit instantiations of the heavy template entry points for the
// precisions used across the project, so each is compiled exactly once.
#include "tlrwse/la/aca.hpp"
#include "tlrwse/la/blas.hpp"
#include "tlrwse/la/matrix.hpp"
#include "tlrwse/la/qr.hpp"
#include "tlrwse/la/svd.hpp"

namespace tlrwse::la {

template class Matrix<float>;
template class Matrix<double>;
template class Matrix<cf32>;
template class Matrix<cf64>;

template QrResult<float> qr(const Matrix<float>&);
template QrResult<double> qr(const Matrix<double>&);
template QrResult<cf32> qr(const Matrix<cf32>&);
template QrResult<cf64> qr(const Matrix<cf64>&);

template RrqrResult<cf32> rrqr_truncated(const Matrix<cf32>&, float, index_t);
template RrqrResult<cf64> rrqr_truncated(const Matrix<cf64>&, double, index_t);
template RrqrResult<float> rrqr_truncated(const Matrix<float>&, float, index_t);
template RrqrResult<double> rrqr_truncated(const Matrix<double>&, double, index_t);

template SvdResult<float> svd_jacobi(const Matrix<float>&);
template SvdResult<double> svd_jacobi(const Matrix<double>&);
template SvdResult<cf32> svd_jacobi(const Matrix<cf32>&);
template SvdResult<cf64> svd_jacobi(const Matrix<cf64>&);

template LowRankFactors<cf32> compress_svd(const Matrix<cf32>&, float, index_t);
template LowRankFactors<cf64> compress_svd(const Matrix<cf64>&, double, index_t);
template LowRankFactors<cf32> compress_aca(const Matrix<cf32>&, float, index_t);
template LowRankFactors<cf64> compress_aca(const Matrix<cf64>&, double, index_t);
template LowRankFactors<cf32> compress_rsvd(const Matrix<cf32>&, float, Rng&,
                                            index_t, int, index_t);
template LowRankFactors<cf64> compress_rsvd(const Matrix<cf64>&, double, Rng&,
                                            index_t, int, index_t);

}  // namespace tlrwse::la
