// Shared kernel bodies of the SIMD engine, templated over a vector type.
//
// Each ISA tier provides a small Vec wrapper (see table_*.cpp):
//
//   struct Vec {
//     static constexpr index_t kWidth;     // floats per register
//     using reg;
//     static reg zero();
//     static reg load(const float* p);     // unaligned
//     static void store(float* p, reg v);  // unaligned
//     static reg broadcast(float v);
//     static reg fmadd(reg a, reg b, reg c);   //  a*b + c, single rounding
//     static reg fnmadd(reg a, reg b, reg c);  // -a*b + c, single rounding
//     static reg load_f16(const std::uint16_t* p);  // widen kWidth fp16
//     static reg load_bf16(const std::uint16_t* p); // widen kWidth bf16
//   };
//
// and instantiates make_table<Vec>() in a translation unit compiled with
// that ISA's flags. The bodies are written so that EVERY tier produces
// bitwise-identical results:
//   * axpy-form kernels update each element with one fused multiply-add
//     per (column, element) pair in a fixed column order — elementwise,
//     so vector width cannot change the result;
//   * dot-form kernels accumulate into a fixed block of kAccLanes = 16
//     partial sums (lane l takes elements with i % 16 == l) and reduce
//     them with the same pairwise tree, whatever the register width;
//   * the scalar tier uses std::fma, which rounds exactly like the
//     hardware fused multiply-add the vector tiers use.
// The parity fuzz test (test_simd) pins all tiers to <= 4 ULP; by this
// construction they agree exactly.
#pragma once

#include <cmath>

#include "tlrwse/la/simd.hpp"

namespace tlrwse::la::simd::detail {

/// Fixed number of partial sums of every dot-form reduction (one cache
/// line of floats; a multiple of every supported register width).
inline constexpr index_t kAccLanes = 16;

/// The width-independent reduction tree over the 16 lane sums.
inline float reduce_lanes(const float* lanes) {
  float s8[8];
  for (int k = 0; k < 8; ++k) s8[k] = lanes[k] + lanes[k + 8];
  float s4[4];
  for (int k = 0; k < 4; ++k) s4[k] = s8[k] + s8[k + 4];
  const float s20 = s4[0] + s4[2];
  const float s21 = s4[1] + s4[3];
  return s20 + s21;
}

template <class V>
struct Kernels {
  static constexpr index_t W = V::kWidth;
  static_assert(kAccLanes % V::kWidth == 0,
                "register width must divide the fixed lane count");

  static void zero_fill(float* y, index_t m) {
    for (index_t i = 0; i < m; ++i) y[i] = 0.0f;
  }

  // y (+)= A x, column-sweep axpy form.
  static void sgemv(index_t m, index_t n, const float* A, index_t lda,
                    const float* x, float* y, bool accumulate) {
    if (!accumulate) zero_fill(y, m);
    const index_t mv = m - m % W;
    for (index_t j = 0; j < n; ++j) {
      const float xj = x[j];
      const float* aj = A + j * lda;
      const typename V::reg xv = V::broadcast(xj);
      index_t i = 0;
      for (; i < mv; i += W) {
        V::store(y + i, V::fmadd(V::load(aj + i), xv, V::load(y + i)));
      }
      for (; i < m; ++i) y[i] = std::fma(aj[i], xj, y[i]);
    }
  }

  // y (+)= A^T x, dot form with the fixed 16-lane accumulation.
  static void sgemv_t(index_t m, index_t n, const float* A, index_t lda,
                      const float* x, float* y, bool accumulate) {
    constexpr index_t NR = kAccLanes / W;
    const index_t mb = m - m % kAccLanes;
    for (index_t j = 0; j < n; ++j) {
      const float* aj = A + j * lda;
      typename V::reg acc[NR];
      for (index_t r = 0; r < NR; ++r) acc[r] = V::zero();
      for (index_t i = 0; i < mb; i += kAccLanes) {
        for (index_t r = 0; r < NR; ++r) {
          acc[r] = V::fmadd(V::load(aj + i + r * W), V::load(x + i + r * W),
                            acc[r]);
        }
      }
      alignas(64) float lanes[kAccLanes];
      for (index_t r = 0; r < NR; ++r) V::store(lanes + r * W, acc[r]);
      for (index_t i = mb; i < m; ++i) {
        lanes[i - mb] = std::fma(aj[i], x[i], lanes[i - mb]);
      }
      const float s = reduce_lanes(lanes);
      y[j] = accumulate ? y[j] + s : s;
    }
  }

  // (yr + i yi) (+)= (Ar + i Ai)(xr + i xi), one pass over Ar/Ai.
  // Fixed per-element order: yr += ar*xr; yr -= ai*xi; yi += ar*xi;
  // yi += ai*xr — all four as fused multiply-adds.
  static void sgemv_split(index_t m, index_t n, const float* Ar,
                          const float* Ai, index_t lda, const float* xr,
                          const float* xi, float* yr, float* yi,
                          bool accumulate) {
    if (!accumulate) {
      zero_fill(yr, m);
      zero_fill(yi, m);
    }
    const index_t mv = m - m % W;
    for (index_t j = 0; j < n; ++j) {
      const float xrj = xr[j];
      const float xij = xi[j];
      const float* arj = Ar + j * lda;
      const float* aij = Ai + j * lda;
      const typename V::reg xrv = V::broadcast(xrj);
      const typename V::reg xiv = V::broadcast(xij);
      index_t i = 0;
      for (; i < mv; i += W) {
        const typename V::reg ar = V::load(arj + i);
        const typename V::reg ai = V::load(aij + i);
        typename V::reg r = V::load(yr + i);
        r = V::fmadd(ar, xrv, r);
        r = V::fnmadd(ai, xiv, r);
        V::store(yr + i, r);
        typename V::reg im = V::load(yi + i);
        im = V::fmadd(ar, xiv, im);
        im = V::fmadd(ai, xrv, im);
        V::store(yi + i, im);
      }
      for (; i < m; ++i) {
        float r = yr[i];
        r = std::fma(arj[i], xrj, r);
        r = std::fma(-aij[i], xij, r);
        yr[i] = r;
        float im = yi[i];
        im = std::fma(arj[i], xij, im);
        im = std::fma(aij[i], xrj, im);
        yi[i] = im;
      }
    }
  }

  // (yr + i yi) (+)= (Ar + i Ai)^H (xr + i xi): conjugated dot form.
  // Per column j: yr[j] = sum ar*xr + ai*xi ; yi[j] = sum ar*xi - ai*xr.
  static void sgemv_split_adjoint(index_t m, index_t n, const float* Ar,
                                  const float* Ai, index_t lda,
                                  const float* xr, const float* xi, float* yr,
                                  float* yi, bool accumulate) {
    constexpr index_t NR = kAccLanes / W;
    const index_t mb = m - m % kAccLanes;
    for (index_t j = 0; j < n; ++j) {
      const float* arj = Ar + j * lda;
      const float* aij = Ai + j * lda;
      typename V::reg accr[NR];
      typename V::reg acci[NR];
      for (index_t r = 0; r < NR; ++r) {
        accr[r] = V::zero();
        acci[r] = V::zero();
      }
      for (index_t i = 0; i < mb; i += kAccLanes) {
        for (index_t r = 0; r < NR; ++r) {
          const typename V::reg ar = V::load(arj + i + r * W);
          const typename V::reg ai = V::load(aij + i + r * W);
          const typename V::reg vr = V::load(xr + i + r * W);
          const typename V::reg vi = V::load(xi + i + r * W);
          accr[r] = V::fmadd(ar, vr, accr[r]);
          accr[r] = V::fmadd(ai, vi, accr[r]);
          acci[r] = V::fmadd(ar, vi, acci[r]);
          acci[r] = V::fnmadd(ai, vr, acci[r]);
        }
      }
      alignas(64) float lanesr[kAccLanes];
      alignas(64) float lanesi[kAccLanes];
      for (index_t r = 0; r < NR; ++r) {
        V::store(lanesr + r * W, accr[r]);
        V::store(lanesi + r * W, acci[r]);
      }
      for (index_t i = mb; i < m; ++i) {
        const index_t l = i - mb;
        lanesr[l] = std::fma(arj[i], xr[i], lanesr[l]);
        lanesr[l] = std::fma(aij[i], xi[i], lanesr[l]);
        lanesi[l] = std::fma(arj[i], xi[i], lanesi[l]);
        lanesi[l] = std::fma(-aij[i], xr[i], lanesi[l]);
      }
      const float sr = reduce_lanes(lanesr);
      const float si = reduce_lanes(lanesi);
      yr[j] = accumulate ? yr[j] + sr : sr;
      yi[j] = accumulate ? yi[j] + si : si;
    }
  }

  // One register-blocked panel of RB right-hand sides: the y tile stays in
  // registers across the whole reduction over columns of A, so A is
  // streamed once for RB results (RB x the arithmetic intensity).
  template <index_t RB>
  static void multi_panel(index_t m, index_t n, const float* A, index_t lda,
                          const float* X, index_t ldx, float* Y, index_t ldy,
                          bool accumulate) {
    const index_t mv = m - m % W;
    index_t i = 0;
    for (; i < mv; i += W) {
      typename V::reg acc[RB];
      for (index_t r = 0; r < RB; ++r) {
        acc[r] = accumulate ? V::load(Y + r * ldy + i) : V::zero();
      }
      for (index_t j = 0; j < n; ++j) {
        const typename V::reg av = V::load(A + j * lda + i);
        for (index_t r = 0; r < RB; ++r) {
          acc[r] = V::fmadd(av, V::broadcast(X[r * ldx + j]), acc[r]);
        }
      }
      for (index_t r = 0; r < RB; ++r) V::store(Y + r * ldy + i, acc[r]);
    }
    for (; i < m; ++i) {
      for (index_t r = 0; r < RB; ++r) {
        float acc = accumulate ? Y[r * ldy + i] : 0.0f;
        for (index_t j = 0; j < n; ++j) {
          acc = std::fma(A[j * lda + i], X[r * ldx + j], acc);
        }
        Y[r * ldy + i] = acc;
      }
    }
  }

  // Y (+)= A X over nrhs RHS columns; every column bitwise matches a
  // single-RHS sgemv call (same fused multiply-add sequence per element).
  static void sgemv_multi(index_t m, index_t n, const float* A, index_t lda,
                          const float* X, index_t ldx, float* Y, index_t ldy,
                          index_t nrhs, bool accumulate) {
    index_t r0 = 0;
    while (nrhs - r0 >= 8) {
      multi_panel<8>(m, n, A, lda, X + r0 * ldx, ldx, Y + r0 * ldy, ldy,
                     accumulate);
      r0 += 8;
    }
    if (nrhs - r0 >= 4) {
      multi_panel<4>(m, n, A, lda, X + r0 * ldx, ldx, Y + r0 * ldy, ldy,
                     accumulate);
      r0 += 4;
    }
    if (nrhs - r0 >= 2) {
      multi_panel<2>(m, n, A, lda, X + r0 * ldx, ldx, Y + r0 * ldy, ldy,
                     accumulate);
      r0 += 2;
    }
    if (nrhs - r0 >= 1) {
      multi_panel<1>(m, n, A, lda, X + r0 * ldx, ldx, Y + r0 * ldy, ldy,
                     accumulate);
    }
  }

  template <index_t RB>
  static void split_multi_panel(index_t m, index_t n, const float* Ar,
                                const float* Ai, index_t lda, const float* Xr,
                                const float* Xi, index_t ldx, float* Yr,
                                float* Yi, index_t ldy, bool accumulate) {
    const index_t mv = m - m % W;
    index_t i = 0;
    for (; i < mv; i += W) {
      typename V::reg accr[RB];
      typename V::reg acci[RB];
      for (index_t r = 0; r < RB; ++r) {
        accr[r] = accumulate ? V::load(Yr + r * ldy + i) : V::zero();
        acci[r] = accumulate ? V::load(Yi + r * ldy + i) : V::zero();
      }
      for (index_t j = 0; j < n; ++j) {
        const typename V::reg ar = V::load(Ar + j * lda + i);
        const typename V::reg ai = V::load(Ai + j * lda + i);
        for (index_t r = 0; r < RB; ++r) {
          const typename V::reg xrv = V::broadcast(Xr[r * ldx + j]);
          const typename V::reg xiv = V::broadcast(Xi[r * ldx + j]);
          accr[r] = V::fmadd(ar, xrv, accr[r]);
          accr[r] = V::fnmadd(ai, xiv, accr[r]);
          acci[r] = V::fmadd(ar, xiv, acci[r]);
          acci[r] = V::fmadd(ai, xrv, acci[r]);
        }
      }
      for (index_t r = 0; r < RB; ++r) {
        V::store(Yr + r * ldy + i, accr[r]);
        V::store(Yi + r * ldy + i, acci[r]);
      }
    }
    for (; i < m; ++i) {
      for (index_t r = 0; r < RB; ++r) {
        float ar_acc = accumulate ? Yr[r * ldy + i] : 0.0f;
        float ai_acc = accumulate ? Yi[r * ldy + i] : 0.0f;
        for (index_t j = 0; j < n; ++j) {
          const float ar = Ar[j * lda + i];
          const float ai = Ai[j * lda + i];
          ar_acc = std::fma(ar, Xr[r * ldx + j], ar_acc);
          ar_acc = std::fma(-ai, Xi[r * ldx + j], ar_acc);
          ai_acc = std::fma(ar, Xi[r * ldx + j], ai_acc);
          ai_acc = std::fma(ai, Xr[r * ldx + j], ai_acc);
        }
        Yr[r * ldy + i] = ar_acc;
        Yi[r * ldy + i] = ai_acc;
      }
    }
  }

  static void sgemv_split_multi(index_t m, index_t n, const float* Ar,
                                const float* Ai, index_t lda, const float* Xr,
                                const float* Xi, index_t ldx, float* Yr,
                                float* Yi, index_t ldy, index_t nrhs,
                                bool accumulate) {
    index_t r0 = 0;
    while (nrhs - r0 >= 4) {
      split_multi_panel<4>(m, n, Ar, Ai, lda, Xr + r0 * ldx, Xi + r0 * ldx,
                           ldx, Yr + r0 * ldy, Yi + r0 * ldy, ldy, accumulate);
      r0 += 4;
    }
    if (nrhs - r0 >= 2) {
      split_multi_panel<2>(m, n, Ar, Ai, lda, Xr + r0 * ldx, Xi + r0 * ldx,
                           ldx, Yr + r0 * ldy, Yi + r0 * ldy, ldy, accumulate);
      r0 += 2;
    }
    if (nrhs - r0 >= 1) {
      split_multi_panel<1>(m, n, Ar, Ai, lda, Xr + r0 * ldx, Xi + r0 * ldx,
                           ldx, Yr + r0 * ldy, Yi + r0 * ldy, ldy, accumulate);
    }
  }

  static void sgemv_split_adjoint_multi(index_t m, index_t n, const float* Ar,
                                        const float* Ai, index_t lda,
                                        const float* Xr, const float* Xi,
                                        index_t ldx, float* Yr, float* Yi,
                                        index_t ldy, index_t nrhs,
                                        bool accumulate) {
    // Dot form shares no y registers across RHS, so the simple loop over
    // RHS (A streamed per RHS) is already bitwise right; the win of
    // blocking here is small next to the forward kernels and the adjoint
    // multi path is off the LSQR critical loop.
    for (index_t r = 0; r < nrhs; ++r) {
      sgemv_split_adjoint(m, n, Ar, Ai, lda, Xr + r * ldx, Xi + r * ldx,
                          Yr + r * ldy, Yi + r * ldy, accumulate);
    }
  }

  // --- Packed 16-bit factor kernels -------------------------------------
  // Same bodies as the float32 split kernels, except every factor load
  // widens a 16-bit plane (fp16 or bf16) to float32 in-register. Widening
  // is exact (see la/half.hpp), so each element sees the identical fused
  // multiply-add chain as the float32 kernel on pre-widened data — the
  // half kernels are bitwise identical across tiers and to their float32
  // counterparts, only the bytes moved change.

  template <HalfFormat FMT>
  static typename V::reg load_h(const std::uint16_t* p) {
    if constexpr (FMT == HalfFormat::kFp16) {
      return V::load_f16(p);
    } else {
      return V::load_bf16(p);
    }
  }

  template <HalfFormat FMT>
  static float widen1(std::uint16_t b) {
    if constexpr (FMT == HalfFormat::kFp16) {
      return fp16_bits_to_f32(b);
    } else {
      return bf16_bits_to_f32(b);
    }
  }

  template <index_t RB, HalfFormat FMT>
  static void hsplit_multi_panel(index_t m, index_t n, const std::uint16_t* Ar,
                                 const std::uint16_t* Ai, index_t lda,
                                 const float* Xr, const float* Xi, index_t ldx,
                                 float* Yr, float* Yi, index_t ldy,
                                 bool accumulate) {
    const index_t mv = m - m % W;
    index_t i = 0;
    for (; i < mv; i += W) {
      typename V::reg accr[RB];
      typename V::reg acci[RB];
      for (index_t r = 0; r < RB; ++r) {
        accr[r] = accumulate ? V::load(Yr + r * ldy + i) : V::zero();
        acci[r] = accumulate ? V::load(Yi + r * ldy + i) : V::zero();
      }
      for (index_t j = 0; j < n; ++j) {
        const typename V::reg ar = load_h<FMT>(Ar + j * lda + i);
        const typename V::reg ai = load_h<FMT>(Ai + j * lda + i);
        for (index_t r = 0; r < RB; ++r) {
          const typename V::reg xrv = V::broadcast(Xr[r * ldx + j]);
          const typename V::reg xiv = V::broadcast(Xi[r * ldx + j]);
          accr[r] = V::fmadd(ar, xrv, accr[r]);
          accr[r] = V::fnmadd(ai, xiv, accr[r]);
          acci[r] = V::fmadd(ar, xiv, acci[r]);
          acci[r] = V::fmadd(ai, xrv, acci[r]);
        }
      }
      for (index_t r = 0; r < RB; ++r) {
        V::store(Yr + r * ldy + i, accr[r]);
        V::store(Yi + r * ldy + i, acci[r]);
      }
    }
    for (; i < m; ++i) {
      for (index_t r = 0; r < RB; ++r) {
        float ar_acc = accumulate ? Yr[r * ldy + i] : 0.0f;
        float ai_acc = accumulate ? Yi[r * ldy + i] : 0.0f;
        for (index_t j = 0; j < n; ++j) {
          const float ar = widen1<FMT>(Ar[j * lda + i]);
          const float ai = widen1<FMT>(Ai[j * lda + i]);
          ar_acc = std::fma(ar, Xr[r * ldx + j], ar_acc);
          ar_acc = std::fma(-ai, Xi[r * ldx + j], ar_acc);
          ai_acc = std::fma(ar, Xi[r * ldx + j], ai_acc);
          ai_acc = std::fma(ai, Xr[r * ldx + j], ai_acc);
        }
        Yr[r * ldy + i] = ar_acc;
        Yi[r * ldy + i] = ai_acc;
      }
    }
  }

  template <HalfFormat FMT>
  static void hgemv_split_multi_f(index_t m, index_t n, const std::uint16_t* Ar,
                                  const std::uint16_t* Ai, index_t lda,
                                  const float* Xr, const float* Xi, index_t ldx,
                                  float* Yr, float* Yi, index_t ldy,
                                  index_t nrhs, bool accumulate) {
    index_t r0 = 0;
    while (nrhs - r0 >= 4) {
      hsplit_multi_panel<4, FMT>(m, n, Ar, Ai, lda, Xr + r0 * ldx,
                                 Xi + r0 * ldx, ldx, Yr + r0 * ldy,
                                 Yi + r0 * ldy, ldy, accumulate);
      r0 += 4;
    }
    if (nrhs - r0 >= 2) {
      hsplit_multi_panel<2, FMT>(m, n, Ar, Ai, lda, Xr + r0 * ldx,
                                 Xi + r0 * ldx, ldx, Yr + r0 * ldy,
                                 Yi + r0 * ldy, ldy, accumulate);
      r0 += 2;
    }
    if (nrhs - r0 >= 1) {
      hsplit_multi_panel<1, FMT>(m, n, Ar, Ai, lda, Xr + r0 * ldx,
                                 Xi + r0 * ldx, ldx, Yr + r0 * ldy,
                                 Yi + r0 * ldy, ldy, accumulate);
    }
  }

  static void hgemv_split_multi(HalfFormat fmt, index_t m, index_t n,
                                const std::uint16_t* Ar,
                                const std::uint16_t* Ai, index_t lda,
                                const float* Xr, const float* Xi, index_t ldx,
                                float* Yr, float* Yi, index_t ldy, index_t nrhs,
                                bool accumulate) {
    if (fmt == HalfFormat::kFp16) {
      hgemv_split_multi_f<HalfFormat::kFp16>(m, n, Ar, Ai, lda, Xr, Xi, ldx,
                                             Yr, Yi, ldy, nrhs, accumulate);
    } else {
      hgemv_split_multi_f<HalfFormat::kBf16>(m, n, Ar, Ai, lda, Xr, Xi, ldx,
                                             Yr, Yi, ldy, nrhs, accumulate);
    }
  }

  template <HalfFormat FMT>
  static void hgemv_split_adjoint(index_t m, index_t n, const std::uint16_t* Ar,
                                  const std::uint16_t* Ai, index_t lda,
                                  const float* xr, const float* xi, float* yr,
                                  float* yi, bool accumulate) {
    constexpr index_t NR = kAccLanes / W;
    const index_t mb = m - m % kAccLanes;
    for (index_t j = 0; j < n; ++j) {
      const std::uint16_t* arj = Ar + j * lda;
      const std::uint16_t* aij = Ai + j * lda;
      typename V::reg accr[NR];
      typename V::reg acci[NR];
      for (index_t r = 0; r < NR; ++r) {
        accr[r] = V::zero();
        acci[r] = V::zero();
      }
      for (index_t i = 0; i < mb; i += kAccLanes) {
        for (index_t r = 0; r < NR; ++r) {
          const typename V::reg ar = load_h<FMT>(arj + i + r * W);
          const typename V::reg ai = load_h<FMT>(aij + i + r * W);
          const typename V::reg vr = V::load(xr + i + r * W);
          const typename V::reg vi = V::load(xi + i + r * W);
          accr[r] = V::fmadd(ar, vr, accr[r]);
          accr[r] = V::fmadd(ai, vi, accr[r]);
          acci[r] = V::fmadd(ar, vi, acci[r]);
          acci[r] = V::fnmadd(ai, vr, acci[r]);
        }
      }
      alignas(64) float lanesr[kAccLanes];
      alignas(64) float lanesi[kAccLanes];
      for (index_t r = 0; r < NR; ++r) {
        V::store(lanesr + r * W, accr[r]);
        V::store(lanesi + r * W, acci[r]);
      }
      for (index_t i = mb; i < m; ++i) {
        const index_t l = i - mb;
        const float ar = widen1<FMT>(arj[i]);
        const float ai = widen1<FMT>(aij[i]);
        lanesr[l] = std::fma(ar, xr[i], lanesr[l]);
        lanesr[l] = std::fma(ai, xi[i], lanesr[l]);
        lanesi[l] = std::fma(ar, xi[i], lanesi[l]);
        lanesi[l] = std::fma(-ai, xr[i], lanesi[l]);
      }
      const float sr = reduce_lanes(lanesr);
      const float si = reduce_lanes(lanesi);
      yr[j] = accumulate ? yr[j] + sr : sr;
      yi[j] = accumulate ? yi[j] + si : si;
    }
  }

  static void hgemv_split_adjoint_multi(HalfFormat fmt, index_t m, index_t n,
                                        const std::uint16_t* Ar,
                                        const std::uint16_t* Ai, index_t lda,
                                        const float* Xr, const float* Xi,
                                        index_t ldx, float* Yr, float* Yi,
                                        index_t ldy, index_t nrhs,
                                        bool accumulate) {
    for (index_t r = 0; r < nrhs; ++r) {
      if (fmt == HalfFormat::kFp16) {
        hgemv_split_adjoint<HalfFormat::kFp16>(m, n, Ar, Ai, lda, Xr + r * ldx,
                                               Xi + r * ldx, Yr + r * ldy,
                                               Yi + r * ldy, accumulate);
      } else {
        hgemv_split_adjoint<HalfFormat::kBf16>(m, n, Ar, Ai, lda, Xr + r * ldx,
                                               Xi + r * ldx, Yr + r * ldy,
                                               Yi + r * ldy, accumulate);
      }
    }
  }

  static void split_complex(index_t n, const cf32* x, float* re, float* im) {
    const float* p = reinterpret_cast<const float*>(x);
    for (index_t i = 0; i < n; ++i) {
      re[i] = p[2 * i];
      im[i] = p[2 * i + 1];
    }
  }

  static void merge_complex(index_t n, const float* re, const float* im,
                            cf32* y) {
    float* p = reinterpret_cast<float*>(y);
    for (index_t i = 0; i < n; ++i) {
      p[2 * i] = re[i];
      p[2 * i + 1] = im[i];
    }
  }
};

template <class V>
[[nodiscard]] constexpr KernelTable make_table(const char* name) {
  using K = Kernels<V>;
  return KernelTable{name,
                     &K::sgemv,
                     &K::sgemv_t,
                     &K::sgemv_split,
                     &K::sgemv_split_adjoint,
                     &K::sgemv_multi,
                     &K::sgemv_split_multi,
                     &K::sgemv_split_adjoint_multi,
                     &K::hgemv_split_multi,
                     &K::hgemv_split_adjoint_multi,
                     &K::split_complex,
                     &K::merge_complex};
}

}  // namespace tlrwse::la::simd::detail
