// Scalar tier: the always-available reference the vector tiers must match
// bitwise. Width-1 "vectors" over std::fma keep the rounding behaviour
// identical to the hardware FMA the wide tiers use.
#include <cmath>

#include "kernels_impl.hpp"

namespace tlrwse::la::simd::detail {

namespace {

struct VecScalar {
  static constexpr index_t kWidth = 1;
  using reg = float;
  static reg zero() { return 0.0f; }
  static reg load(const float* p) { return *p; }
  static void store(float* p, reg v) { *p = v; }
  static reg broadcast(float v) { return v; }
  static reg fmadd(reg a, reg b, reg c) { return std::fma(a, b, c); }
  static reg fnmadd(reg a, reg b, reg c) { return std::fma(-a, b, c); }
  // The bit-exact scalar conversion tier: same floats as F16C/NEON emit.
  static reg load_f16(const std::uint16_t* p) { return fp16_bits_to_f32(*p); }
  static reg load_bf16(const std::uint16_t* p) { return bf16_bits_to_f32(*p); }
};

}  // namespace

const KernelTable* scalar_table() {
  static constexpr KernelTable t = make_table<VecScalar>("scalar");
  return &t;
}

}  // namespace tlrwse::la::simd::detail
