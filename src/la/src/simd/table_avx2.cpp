// AVX2+FMA tier (8-wide). This TU is always listed in the build; the body
// only materialises when the build enabled TLRWSE_SIMD and compiled this
// file with -mavx2 -mfma (see src/la/CMakeLists.txt), so configurations
// without the flags still link.
#include "kernels_impl.hpp"

#if defined(TLRWSE_SIMD_ENABLED) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace tlrwse::la::simd::detail {

#if defined(TLRWSE_SIMD_ENABLED) && defined(__AVX2__) && defined(__FMA__)

namespace {

struct VecAvx2 {
  static constexpr index_t kWidth = 8;
  using reg = __m256;
  static reg zero() { return _mm256_setzero_ps(); }
  static reg load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, reg v) { _mm256_storeu_ps(p, v); }
  static reg broadcast(float v) { return _mm256_set1_ps(v); }
  static reg fmadd(reg a, reg b, reg c) { return _mm256_fmadd_ps(a, b, c); }
  static reg fnmadd(reg a, reg b, reg c) { return _mm256_fnmadd_ps(a, b, c); }
};

}  // namespace

const KernelTable* avx2_table() {
  static constexpr KernelTable t = make_table<VecAvx2>("avx2");
  return &t;
}

#else

const KernelTable* avx2_table() { return nullptr; }

#endif

}  // namespace tlrwse::la::simd::detail
