// AVX2+FMA tier (8-wide). This TU is always listed in the build; the body
// only materialises when the build enabled TLRWSE_SIMD and compiled this
// file with -mavx2 -mfma (see src/la/CMakeLists.txt), so configurations
// without the flags still link.
#include "kernels_impl.hpp"

#if defined(TLRWSE_SIMD_ENABLED) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

namespace tlrwse::la::simd::detail {

#if defined(TLRWSE_SIMD_ENABLED) && defined(__AVX2__) && defined(__FMA__)

namespace {

struct VecAvx2 {
  static constexpr index_t kWidth = 8;
  using reg = __m256;
  static reg zero() { return _mm256_setzero_ps(); }
  static reg load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, reg v) { _mm256_storeu_ps(p, v); }
  static reg broadcast(float v) { return _mm256_set1_ps(v); }
  static reg fmadd(reg a, reg b, reg c) { return _mm256_fmadd_ps(a, b, c); }
  static reg fnmadd(reg a, reg b, reg c) { return _mm256_fnmadd_ps(a, b, c); }
  static reg load_f16(const std::uint16_t* p) {
#if defined(__F16C__)
    return _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
#else
    // Bit-exact software widen (toolchains without -mf16c); dispatch.cpp
    // additionally verifies F16C via cpuid before handing out this table's
    // half entries, so the hardware path never runs on a non-F16C host.
    return _mm256_setr_ps(fp16_bits_to_f32(p[0]), fp16_bits_to_f32(p[1]),
                          fp16_bits_to_f32(p[2]), fp16_bits_to_f32(p[3]),
                          fp16_bits_to_f32(p[4]), fp16_bits_to_f32(p[5]),
                          fp16_bits_to_f32(p[6]), fp16_bits_to_f32(p[7]));
#endif
  }
  static reg load_bf16(const std::uint16_t* p) {
    // bf16 widen is a zero-extend + 16-bit left shift: plain AVX2 integer
    // ops, exact by construction.
    const __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm256_castsi256_ps(_mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
  }
};

}  // namespace

const KernelTable* avx2_table() {
  static constexpr KernelTable t = make_table<VecAvx2>("avx2");
  return &t;
}

#else

const KernelTable* avx2_table() { return nullptr; }

#endif

}  // namespace tlrwse::la::simd::detail
