// Tier selection for the SIMD engine: which tables this binary carries,
// which the host can execute, and the one-time resolution of the active
// level (cpuid + TLRWSE_SIMD_LEVEL override).
#include <array>
#include <cstdlib>
#include <cstring>

#include "tlrwse/la/simd.hpp"

namespace tlrwse::la::simd {

namespace detail {
// Implemented in the per-ISA TUs; nullptr when a tier is not compiled in.
const KernelTable* scalar_table();
const KernelTable* neon_table();
const KernelTable* avx2_table();
const KernelTable* avx512_table();
}  // namespace detail

namespace {

const KernelTable* raw_table(Level level) {
  switch (level) {
    case Level::kScalar:
      return detail::scalar_table();
    case Level::kNeon:
      return detail::neon_table();
    case Level::kAvx2:
      return detail::avx2_table();
    case Level::kAvx512:
      return detail::avx512_table();
  }
  return nullptr;
}

bool host_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
#if defined(__aarch64__)
      return true;  // Advanced SIMD is architecturally baseline on aarch64.
#else
      return false;
#endif
    case Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

// Whether a tier's compiled-in half-precision loads are real hardware
// converts on THIS host. The AVX2 tier is compiled with -mf16c, so its
// table is only safe where cpuid reports F16C (every AVX2 part shipped has
// it, but the contract is cpuid, not folklore). vcvtph2ps on zmm is part
// of AVX-512F itself and NEON fcvtl is ARMv8-A baseline, so those tiers
// need no extra bit.
bool half_hw_ok(Level level) {
  switch (level) {
    case Level::kScalar:
      return false;
    case Level::kNeon:
      return true;
    case Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("f16c");
#else
      return false;
#endif
    case Level::kAvx512:
      return true;
  }
  return false;
}

// Patched copies of the raw tables: when hardware widening is unavailable
// (no F16C) or explicitly disabled (TLRWSE_NO_F16C set, the CI switch for
// exercising the scalar conversion tier), the hgemv_* entries fall back to
// the scalar tier's bit-exact conversions while every float32 kernel stays
// vectorised. Results are bitwise identical either way.
struct EffectiveTables {
  std::array<KernelTable, 4> tables{};
  std::array<bool, 4> hw_half{};
};

const EffectiveTables& effective_tables() {
  static const EffectiveTables tb = [] {
    EffectiveTables out;
    const bool no_f16c = std::getenv("TLRWSE_NO_F16C") != nullptr;
    const KernelTable* scalar = detail::scalar_table();
    for (int i = 0; i < 4; ++i) {
      const Level l = static_cast<Level>(i);
      const KernelTable* raw = raw_table(l);
      if (raw == nullptr) continue;
      out.tables[i] = *raw;
      const bool hw = !no_f16c && half_hw_ok(l);
      if (!hw) {
        out.tables[i].hgemv_split_multi = scalar->hgemv_split_multi;
        out.tables[i].hgemv_split_adjoint_multi =
            scalar->hgemv_split_adjoint_multi;
      }
      out.hw_half[i] = hw;
    }
    return out;
  }();
  return tb;
}

const KernelTable* effective_table(Level level) {
  if (raw_table(level) == nullptr) return nullptr;
  return &effective_tables().tables[static_cast<int>(level)];
}

struct Availability {
  std::array<Level, 4> levels{};
  std::size_t count = 0;
};

const Availability& availability() {
  static const Availability a = [] {
    Availability out;
    for (const Level l : {Level::kScalar, Level::kNeon, Level::kAvx2,
                          Level::kAvx512}) {
      if (raw_table(l) != nullptr && host_supports(l)) {
        out.levels[out.count++] = l;
      }
    }
    return out;
  }();
  return a;
}

}  // namespace

bool compiled_in() noexcept {
#if defined(TLRWSE_SIMD_ENABLED)
  return true;
#else
  return false;
#endif
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kNeon:
      return "neon";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::span<const Level> available_levels() noexcept {
  const Availability& a = availability();
  return {a.levels.data(), a.count};
}

Level parse_level(const char* s, bool& ok) noexcept {
  ok = true;
  if (s != nullptr) {
    if (std::strcmp(s, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(s, "neon") == 0) return Level::kNeon;
    if (std::strcmp(s, "avx2") == 0) return Level::kAvx2;
    if (std::strcmp(s, "avx512") == 0) return Level::kAvx512;
  }
  ok = false;
  return Level::kScalar;
}

Level resolve_level(Level want) noexcept {
  const Availability& a = availability();
  Level best = Level::kScalar;
  for (std::size_t i = 0; i < a.count; ++i) {
    if (static_cast<int>(a.levels[i]) <= static_cast<int>(want)) {
      best = a.levels[i];
    }
  }
  return best;
}

const KernelTable& table(Level want) noexcept {
  return *effective_table(resolve_level(want));
}

Level active_level() noexcept {
  static const Level active = [] {
    Level want = Level::kAvx512;  // "best available" before clamping
    if (const char* env = std::getenv("TLRWSE_SIMD_LEVEL")) {
      bool ok = false;
      const Level parsed = parse_level(env, ok);
      if (ok) want = parsed;
    }
    return resolve_level(want);
  }();
  return active;
}

const KernelTable& dispatch() noexcept {
  return *effective_table(active_level());
}

bool half_hw_convert() noexcept {
  return effective_tables().hw_half[static_cast<int>(active_level())];
}

}  // namespace tlrwse::la::simd
