// AVX-512 tier (16-wide): one register holds a full dot-form lane block,
// so the fixed 16-lane reduction costs a single store. Compiled with
// -mavx512f only when TLRWSE_SIMD is on (see src/la/CMakeLists.txt).
#include "kernels_impl.hpp"

#if defined(TLRWSE_SIMD_ENABLED) && defined(__AVX512F__)
#include <immintrin.h>
#endif

namespace tlrwse::la::simd::detail {

#if defined(TLRWSE_SIMD_ENABLED) && defined(__AVX512F__)

namespace {

struct VecAvx512 {
  static constexpr index_t kWidth = 16;
  using reg = __m512;
  static reg zero() { return _mm512_setzero_ps(); }
  static reg load(const float* p) { return _mm512_loadu_ps(p); }
  static void store(float* p, reg v) { _mm512_storeu_ps(p, v); }
  static reg broadcast(float v) { return _mm512_set1_ps(v); }
  static reg fmadd(reg a, reg b, reg c) { return _mm512_fmadd_ps(a, b, c); }
  static reg fnmadd(reg a, reg b, reg c) { return _mm512_fnmadd_ps(a, b, c); }
  // vcvtph2ps on zmm is plain AVX512F — no F16C needed at this tier.
  static reg load_f16(const std::uint16_t* p) {
    return _mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)));
  }
  static reg load_bf16(const std::uint16_t* p) {
    const __m256i h = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
    return _mm512_castsi512_ps(_mm512_slli_epi32(_mm512_cvtepu16_epi32(h), 16));
  }
};

}  // namespace

const KernelTable* avx512_table() {
  static constexpr KernelTable t = make_table<VecAvx512>("avx512");
  return &t;
}

#else

const KernelTable* avx512_table() { return nullptr; }

#endif

}  // namespace tlrwse::la::simd::detail
