// NEON tier (4-wide) for aarch64, where Advanced SIMD is baseline and
// needs no extra compile flags. vfmaq_f32 is a true fused multiply-add,
// so the bitwise-parity contract holds here too.
#include "kernels_impl.hpp"

#if defined(TLRWSE_SIMD_ENABLED) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace tlrwse::la::simd::detail {

#if defined(TLRWSE_SIMD_ENABLED) && defined(__aarch64__)

namespace {

struct VecNeon {
  static constexpr index_t kWidth = 4;
  using reg = float32x4_t;
  static reg zero() { return vdupq_n_f32(0.0f); }
  static reg load(const float* p) { return vld1q_f32(p); }
  static void store(float* p, reg v) { vst1q_f32(p, v); }
  static reg broadcast(float v) { return vdupq_n_f32(v); }
  static reg fmadd(reg a, reg b, reg c) { return vfmaq_f32(c, a, b); }
  static reg fnmadd(reg a, reg b, reg c) { return vfmsq_f32(c, a, b); }
};

}  // namespace

const KernelTable* neon_table() {
  static const KernelTable t = make_table<VecNeon>("neon");
  return &t;
}

#else

const KernelTable* neon_table() { return nullptr; }

#endif

}  // namespace tlrwse::la::simd::detail
