// NEON tier (4-wide) for aarch64, where Advanced SIMD is baseline and
// needs no extra compile flags. vfmaq_f32 is a true fused multiply-add,
// so the bitwise-parity contract holds here too.
#include "kernels_impl.hpp"

#if defined(TLRWSE_SIMD_ENABLED) && defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace tlrwse::la::simd::detail {

#if defined(TLRWSE_SIMD_ENABLED) && defined(__aarch64__)

namespace {

struct VecNeon {
  static constexpr index_t kWidth = 4;
  using reg = float32x4_t;
  static reg zero() { return vdupq_n_f32(0.0f); }
  static reg load(const float* p) { return vld1q_f32(p); }
  static void store(float* p, reg v) { vst1q_f32(p, v); }
  static reg broadcast(float v) { return vdupq_n_f32(v); }
  static reg fmadd(reg a, reg b, reg c) { return vfmaq_f32(c, a, b); }
  static reg fnmadd(reg a, reg b, reg c) { return vfmsq_f32(c, a, b); }
  // fp16 storage-format converts (fcvtl) are ARMv8-A baseline.
  static reg load_f16(const std::uint16_t* p) {
    return vcvt_f32_f16(vreinterpret_f16_u16(vld1_u16(p)));
  }
  static reg load_bf16(const std::uint16_t* p) {
    return vreinterpretq_f32_u32(vshlq_n_u32(vmovl_u16(vld1_u16(p)), 16));
  }
};

}  // namespace

const KernelTable* neon_table() {
  static const KernelTable t = make_table<VecNeon>("neon");
  return &t;
}

#else

const KernelTable* neon_table() { return nullptr; }

#endif

}  // namespace tlrwse::la::simd::detail
