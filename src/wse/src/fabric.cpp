#include "tlrwse/wse/fabric.hpp"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "tlrwse/common/error.hpp"

namespace tlrwse::wse {

namespace {

/// Wafer coordinates of a global PE id: system, x, y.
struct PeCoord {
  index_t system;
  index_t x;
  index_t y;
};

PeCoord pe_coord(index_t pe, const WseSpec& spec) {
  const index_t usable = spec.usable_pes();
  const index_t local = pe % usable;
  return {pe / usable, local % spec.usable_cols, local / spec.usable_cols};
}

index_t manhattan(const PeCoord& a, const PeCoord& b) {
  return std::llabs(a.x - b.x) + std::llabs(a.y - b.y);
}

/// Per-tile assignment of rank rows to PEs: list of (pe, count) runs in
/// rank order.
struct TileRuns {
  std::vector<std::pair<index_t, index_t>> runs;  // (pe, count)
};

}  // namespace

FabricReport estimate_3phase_shuffle(const RankSource& source,
                                     const WseSpec& spec,
                                     index_t stack_width) {
  TLRWSE_REQUIRE(stack_width >= 1, "stack width must be >= 1");
  const tlr::TileGrid& g = source.grid();
  FabricReport rep;
  double hop_weighted = 0.0;

  // The U-side chunking starts after all V chunks (V PEs first, then U PEs
  // in enumeration order): count the V chunks first so U PE ids follow on.
  index_t total_v_chunks = 0;
  for (index_t q = 0; q < source.num_freqs(); ++q) {
    const auto ranks = source.tile_ranks(q);
    for (index_t j = 0; j < g.nt(); ++j) {
      index_t kj = 0;
      for (index_t i = 0; i < g.mt(); ++i) {
        kj += ranks[static_cast<std::size_t>(g.tile_index(i, j))];
      }
      total_v_chunks += (kj + stack_width - 1) / stack_width;
    }
  }

  index_t v_pe_cursor = 0;
  index_t u_pe_cursor = total_v_chunks;
  std::vector<TileRuns> v_runs(static_cast<std::size_t>(g.num_tiles()));
  std::vector<TileRuns> u_runs(static_cast<std::size_t>(g.num_tiles()));

  for (index_t q = 0; q < source.num_freqs(); ++q) {
    const auto ranks = source.tile_ranks(q);
    for (auto& t : v_runs) t.runs.clear();
    for (auto& t : u_runs) t.runs.clear();

    // V chunking: per tile column, stacks of <= stack_width rank rows.
    for (index_t j = 0; j < g.nt(); ++j) {
      index_t fill = 0;
      for (index_t i = 0; i < g.mt(); ++i) {
        index_t remaining = ranks[static_cast<std::size_t>(g.tile_index(i, j))];
        while (remaining > 0) {
          if (fill == stack_width) {
            fill = 0;
            ++v_pe_cursor;
          }
          const index_t take = std::min(remaining, stack_width - fill);
          v_runs[static_cast<std::size_t>(g.tile_index(i, j))].runs.push_back(
              {v_pe_cursor, take});
          fill += take;
          remaining -= take;
        }
      }
      if (fill > 0) {
        fill = 0;
        ++v_pe_cursor;
      }
    }

    // U chunking: per tile ROW (the Fig. 4 horizontal stacks).
    for (index_t i = 0; i < g.mt(); ++i) {
      index_t fill = 0;
      for (index_t j = 0; j < g.nt(); ++j) {
        index_t remaining = ranks[static_cast<std::size_t>(g.tile_index(i, j))];
        while (remaining > 0) {
          if (fill == stack_width) {
            fill = 0;
            ++u_pe_cursor;
          }
          const index_t take = std::min(remaining, stack_width - fill);
          u_runs[static_cast<std::size_t>(g.tile_index(i, j))].runs.push_back(
              {u_pe_cursor, take});
          fill += take;
          remaining -= take;
        }
      }
      if (fill > 0) {
        fill = 0;
        ++u_pe_cursor;
      }
    }

    // Shuffle traffic: align the V and U run partitions of each tile.
    for (index_t t = 0; t < g.num_tiles(); ++t) {
      const auto& vr = v_runs[static_cast<std::size_t>(t)].runs;
      const auto& ur = u_runs[static_cast<std::size_t>(t)].runs;
      std::size_t vi = 0, ui = 0;
      index_t v_left = vr.empty() ? 0 : vr[0].second;
      index_t u_left = ur.empty() ? 0 : ur[0].second;
      while (vi < vr.size() && ui < ur.size()) {
        const index_t n = std::min(v_left, u_left);
        const PeCoord a = pe_coord(vr[vi].first, spec);
        const PeCoord b = pe_coord(ur[ui].first, spec);
        rep.shuffle_elements += static_cast<double>(n);
        if (a.system == b.system) {
          const double hops = static_cast<double>(manhattan(a, b));
          // Two 32-bit flits per cf32 element.
          rep.local_flit_hops += 2.0 * static_cast<double>(n) * hops;
          hop_weighted += static_cast<double>(n) * hops;
        } else {
          rep.cross_system_bytes += 8.0 * static_cast<double>(n);
        }
        v_left -= n;
        u_left -= n;
        if (v_left == 0 && ++vi < vr.size()) v_left = vr[vi].second;
        if (u_left == 0 && ++ui < ur.size()) u_left = ur[ui].second;
      }
    }
  }

  rep.shuffle_bytes = 8.0 * rep.shuffle_elements;
  rep.mean_hops =
      rep.shuffle_elements > 0.0 ? hop_weighted / rep.shuffle_elements : 0.0;
  const index_t total_pes = u_pe_cursor;
  rep.systems = std::max<index_t>(
      1, (total_pes + spec.usable_pes() - 1) / spec.usable_pes());
  return rep;
}

}  // namespace tlrwse::wse
