// PowerModel is header-only; this TU anchors the library target.
#include "tlrwse/wse/power.hpp"

namespace tlrwse::wse {
static_assert(sizeof(PowerModel) > 0);
}  // namespace tlrwse::wse
