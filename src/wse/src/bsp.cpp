#include "tlrwse/wse/bsp.hpp"

#include <algorithm>
#include <cmath>

#include "tlrwse/common/error.hpp"

namespace tlrwse::wse {

BspReport simulate_bsp_3phase(const RankSource& source, const IpuSpec& spec,
                              obs::FlightRecorder* recorder) {
  TLRWSE_REQUIRE(spec.tiles >= 1 && spec.clock_hz > 0.0, "bad IPU spec");
  const tlr::TileGrid& g = source.grid();

  // Work and traffic totals over the whole dataset.
  double v_elems = 0.0;   // V-batch fmacs (complex elements x 4 real MVMs)
  double u_elems = 0.0;
  double shuffle_bytes = 0.0;  // every yv element crosses the exchange
  double base_bytes = 0.0;
  for (index_t q = 0; q < source.num_freqs(); ++q) {
    const auto ranks = source.tile_ranks(q);
    for (index_t j = 0; j < g.nt(); ++j) {
      for (index_t i = 0; i < g.mt(); ++i) {
        const auto k = static_cast<double>(
            ranks[static_cast<std::size_t>(g.tile_index(i, j))]);
        v_elems += k * static_cast<double>(g.tile_cols(j));
        u_elems += k * static_cast<double>(g.tile_rows(i));
        shuffle_bytes += 8.0 * k;  // one cf32 per rank row
      }
    }
  }
  base_bytes = 8.0 * (v_elems + u_elems);

  BspReport rep;
  // Devices: bases + vectors must reside in tile SRAM (BSP has no shared
  // memory either). 70% of SRAM usable for data (code + exchange buffers).
  rep.devices = std::max<index_t>(
      1, static_cast<index_t>(std::ceil(base_bytes / (0.7 * spec.sram_total()))));

  // Supersteps 1 and 3: embarrassingly parallel fmacs across all tiles of
  // all devices; 4 real MVMs per basis, 1 fmac per element per MVM.
  const double total_tiles =
      static_cast<double>(rep.devices) * static_cast<double>(spec.tiles);
  const double v_sec = 4.0 * v_elems /
                       (total_tiles * spec.flops_per_cycle_per_tile *
                        spec.clock_hz);
  const double u_sec = 4.0 * u_elems /
                       (total_tiles * spec.flops_per_cycle_per_tile *
                        spec.clock_hz);
  rep.compute_sec = v_sec + u_sec;

  // Superstep 2: the shuffle. Within a device the exchange moves at the
  // all-to-all bandwidth; traffic between devices rides the (much slower)
  // IPU-Link, folded here into an effective 1/4 bandwidth once the dataset
  // spans devices. Both real and imaginary yv planes move, for all 4
  // intermediate vectors of the split-real formulation.
  const double cross_penalty = (rep.devices > 1) ? 4.0 : 1.0;
  const double moved = 4.0 * shuffle_bytes;  // 4 real yv vectors
  rep.exchange_sec =
      moved * cross_penalty /
      (static_cast<double>(rep.devices) * spec.exchange_bytes_per_sec);

  // Three barriers (after each superstep), global across devices.
  rep.barrier_sec = 3.0 * spec.barrier_sec;

  rep.total_sec = rep.compute_sec + rep.exchange_sec + rep.barrier_sec;

#ifdef TLRWSE_TRACING_ENABLED
  if (recorder != nullptr) {
    // One sample per device per superstep (the model assumes perfect
    // balance within a superstep), cycles on the IPU clock with the
    // superstep's barrier folded in so the per-phase critical path sums to
    // total_sec. Traffic uses the paper's relative (cache-style)
    // accounting; the flat-SRAM absolute accounting is a CS-2 concept, so
    // the absolute stream mirrors the relative one on the IPU.
    const double dev = static_cast<double>(rep.devices);
    const double barrier_cy = spec.barrier_sec * spec.clock_hz;
    const auto per_device = [&](double phase_sec, double bytes,
                                double flops) {
      obs::PeSample s;
      s.cycles = phase_sec * spec.clock_hz + barrier_cy;
      s.relative_bytes = bytes / dev;
      s.absolute_bytes = bytes / dev;
      s.flops = flops / dev;
      s.sram_bytes = base_bytes / dev;
      return s;
    };
    const obs::PeSample v = per_device(v_sec, 8.0 * v_elems, 8.0 * v_elems);
    const obs::PeSample sh =
        per_device(rep.exchange_sec, 4.0 * shuffle_bytes, 0.0);
    const obs::PeSample u = per_device(u_sec, 8.0 * u_elems, 8.0 * u_elems);
    for (index_t d = 0; d < rep.devices; ++d) {
      recorder->record(obs::Phase::kVMvm, d, v);
      recorder->record(obs::Phase::kShuffle, d, sh);
      recorder->record(obs::Phase::kUMvm, d, u);
    }
  }
#else
  (void)recorder;
#endif
  return rep;
}

}  // namespace tlrwse::wse
