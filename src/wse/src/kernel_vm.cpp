#include "tlrwse/wse/kernel_vm.hpp"

#include <algorithm>

#include "tlrwse/common/error.hpp"

namespace tlrwse::wse {

index_t PeMemory::alloc(index_t count) {
  // 16-byte alignment = 4 float words.
  const index_t aligned = (top_ + 3) / 4 * 4;
  TLRWSE_REQUIRE(aligned + count <= capacity_words(),
                 "PE SRAM exhausted: need ", count, " words at ", aligned,
                 " of ", capacity_words());
  top_ = aligned + count;
  return aligned;
}

PeStats PeSimulator::run(const std::vector<Instruction>& program) {
  PeStats stats;
  for (const Instruction& ins : program) {
    switch (ins.op) {
      case Instruction::Op::kZero: {
        // One 64-bit write per cycle -> ceil(len/2) cycles + setup.
        for (index_t e = 0; e < ins.len; ++e) {
          mem_->store(ins.y_addr + e, 0.0f);
        }
        const double pairs = static_cast<double>((ins.len + 1) / 2);
        stats.cycles += params_.setup_cycles + pairs;
        stats.writes64 += pairs;
        stats.bytes_accessed += 8.0 * pairs;
        break;
      }
      case Instruction::Op::kLoadX: {
        if (static_cast<index_t>(xregs_.size()) < ins.reg + ins.len) {
          xregs_.resize(static_cast<std::size_t>(ins.reg + ins.len));
        }
        for (index_t e = 0; e < ins.len; ++e) {
          xregs_[static_cast<std::size_t>(ins.reg + e)] =
              mem_->load(ins.a_addr + e);
        }
        const double pairs = static_cast<double>((ins.len + 1) / 2);
        stats.cycles += params_.setup_cycles + pairs;
        stats.reads64 += pairs;
        stats.bytes_accessed += 8.0 * pairs;
        break;
      }
      case Instruction::Op::kFmacCol:
      case Instruction::Op::kAxpyNeg: {
        const float sign =
            (ins.op == Instruction::Op::kAxpyNeg) ? -1.0f : 1.0f;
        const float x = sign * xregs_.at(static_cast<std::size_t>(ins.reg));
        for (index_t e = 0; e < ins.len; ++e) {
          const float a = mem_->load(ins.a_addr + e);
          const float y = mem_->load(ins.y_addr + e);
          mem_->store(ins.y_addr + e, y + a * x);
        }
        // Throughput: each cycle moves an (a-pair, y-pair) through the
        // dual read ports and writes the y-pair back — IF the two reads
        // target distinct banks. Pairs whose banks collide serialise.
        stats.cycles += params_.setup_cycles;
        for (index_t e = 0; e < ins.len; e += 2) {
          const bool conflict =
              mem_->bank(ins.a_addr + e) == mem_->bank(ins.y_addr + e);
          stats.cycles += conflict ? 2.0 : 1.0;
          if (conflict) stats.bank_conflicts += 1.0;
          stats.reads64 += 2.0;
          stats.writes64 += 1.0;
          stats.bytes_accessed += 24.0;
        }
        break;
      }
    }
  }
  return stats;
}

namespace {

/// Copies the real or imaginary parts of a complex column range into the
/// PE memory at `dst`.
void upload_parts(PeMemory& mem, index_t dst, const cf32* src, index_t n,
                  bool imag) {
  for (index_t e = 0; e < n; ++e) {
    mem.store(dst + e, imag ? src[e].imag() : src[e].real());
  }
}

}  // namespace

AssembledChunk assemble_chunk(const WseSpec& spec,
                              const tlr::StackedTlr<cf32>& A, const Chunk& c,
                              std::span<const cf32> x) {
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == c.nb,
                 "x slice must match the tile column width");
  AssembledChunk out(spec);
  PeMemory& mem = out.memory;
  const auto& vs = A.v_stack(c.tile_col);

  // --- data layout -------------------------------------------------------
  // V slices stored column-major (h x nb), real and imaginary planes.
  const index_t v_elems = c.h * c.nb;
  const index_t vr = mem.alloc(v_elems);
  const index_t vi = mem.alloc(v_elems);
  {
    index_t row = 0;
    for (const auto& seg : c.segments) {
      const index_t base = A.v_offset(seg.tile_row, c.tile_col) + seg.rank_begin;
      for (index_t r = 0; r < seg.count; ++r, ++row) {
        for (index_t col = 0; col < c.nb; ++col) {
          const cf32 v = vs(base + r, col);
          mem.store(vr + col * c.h + row, v.real());
          mem.store(vi + col * c.h + row, v.imag());
        }
      }
    }
  }

  // U columns: one column of length mb per stack row, real/imag planes,
  // stored contiguously per row with per-segment offsets recorded.
  index_t u_elems = 0;
  for (const auto& seg : c.segments) u_elems += seg.count * seg.mb;
  const index_t ur = mem.alloc(u_elems);
  const index_t ui = mem.alloc(u_elems);
  {
    index_t off = 0;
    for (const auto& seg : c.segments) {
      const auto& us = A.u_stack(seg.tile_row);
      const index_t ubase = A.u_offset(seg.tile_row, c.tile_col) + seg.rank_begin;
      for (index_t r = 0; r < seg.count; ++r) {
        upload_parts(mem, ur + off, us.col(ubase + r), seg.mb, false);
        upload_parts(mem, ui + off, us.col(ubase + r), seg.mb, true);
        off += seg.mb;
      }
    }
  }

  // Vectors.
  out.xr_addr = mem.alloc(c.nb);
  out.xi_addr = mem.alloc(c.nb);
  upload_parts(mem, out.xr_addr, x.data(), c.nb, false);
  upload_parts(mem, out.xi_addr, x.data(), c.nb, true);
  out.yvr_addr = mem.alloc(c.h);
  out.yvi_addr = mem.alloc(c.h);
  index_t y_rows = 0;
  index_t prev_tile = -1;
  for (const auto& seg : c.segments) {
    if (seg.tile_row != prev_tile) {
      y_rows += seg.mb;
      prev_tile = seg.tile_row;
    }
  }
  out.y_rows = y_rows;
  out.yr_addr = mem.alloc(y_rows);
  out.yi_addr = mem.alloc(y_rows);

  // --- program -----------------------------------------------------------
  auto& prog = out.program;
  auto zero = [&](index_t addr, index_t len) {
    prog.push_back({Instruction::Op::kZero, addr, 0, 0, len});
  };
  auto loadx = [&](index_t addr, index_t reg, index_t len) {
    prog.push_back({Instruction::Op::kLoadX, 0, addr, reg, len});
  };
  auto fmac = [&](index_t y, index_t a, index_t reg, index_t len, bool neg) {
    prog.push_back({neg ? Instruction::Op::kAxpyNeg : Instruction::Op::kFmacCol,
                    y, a, reg, len});
  };

  // x register file: xr in regs [0, nb), xi in regs [nb, 2 nb).
  loadx(out.xr_addr, 0, c.nb);
  loadx(out.xi_addr, c.nb, c.nb);

  // V batch (4 real MVMs over the column-major V planes):
  //   yvr = Vr xr - Vi xi ; yvi = Vr xi + Vi xr.
  zero(out.yvr_addr, c.h);
  zero(out.yvi_addr, c.h);
  for (index_t col = 0; col < c.nb; ++col) {
    fmac(out.yvr_addr, vr + col * c.h, col, c.h, false);        // +Vr xr
    fmac(out.yvi_addr, vi + col * c.h, col, c.h, false);        // +Vi xr
  }
  for (index_t col = 0; col < c.nb; ++col) {
    fmac(out.yvr_addr, vi + col * c.h, c.nb + col, c.h, true);  // -Vi xi
    fmac(out.yvi_addr, vr + col * c.h, c.nb + col, c.h, false); // +Vr xi
  }

  // U batch: scalars are the freshly computed yv values -> reload them
  // into the register file (regs [2 nb, 2 nb + 2 h)).
  const index_t regs_yvr = 2 * c.nb;
  const index_t regs_yvi = 2 * c.nb + c.h;
  loadx(out.yvr_addr, regs_yvr, c.h);
  loadx(out.yvi_addr, regs_yvi, c.h);
  zero(out.yr_addr, y_rows);
  zero(out.yi_addr, y_rows);
  // Walk segments tracking the partial-y offset per distinct tile.
  {
    index_t off = 0;
    index_t row = 0;
    index_t y_off = -1;
    index_t last_tile = -1;
    index_t cur_mb = 0;
    for (const auto& seg : c.segments) {
      if (seg.tile_row != last_tile) {
        y_off = (y_off < 0) ? 0 : y_off + cur_mb;
        cur_mb = seg.mb;
        last_tile = seg.tile_row;
      }
      for (index_t r = 0; r < seg.count; ++r, ++row) {
        // yr += Ur * yvr ; yr -= Ui * yvi ; yi += Ur * yvi ; yi += Ui * yvr.
        fmac(out.yr_addr + y_off, ur + off, regs_yvr + row, seg.mb, false);
        fmac(out.yr_addr + y_off, ui + off, regs_yvi + row, seg.mb, true);
        fmac(out.yi_addr + y_off, ur + off, regs_yvi + row, seg.mb, false);
        fmac(out.yi_addr + y_off, ui + off, regs_yvr + row, seg.mb, false);
        off += seg.mb;
      }
    }
  }
  return out;
}

std::vector<cf32> read_partial_y(const AssembledChunk& chunk) {
  std::vector<cf32> y(static_cast<std::size_t>(chunk.y_rows));
  for (index_t e = 0; e < chunk.y_rows; ++e) {
    y[static_cast<std::size_t>(e)] = {chunk.memory.load(chunk.yr_addr + e),
                                      chunk.memory.load(chunk.yi_addr + e)};
  }
  return y;
}

}  // namespace tlrwse::wse
