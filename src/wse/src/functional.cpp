#include "tlrwse/wse/functional.hpp"

#include "tlrwse/common/error.hpp"
#include "tlrwse/wse/cost_model.hpp"

namespace tlrwse::wse {

TlrRankSource::TlrRankSource(const std::vector<tlr::TlrMatrix<cf32>>& matrices)
    : matrices_(&matrices) {
  TLRWSE_REQUIRE(!matrices.empty(), "need at least one matrix");
  const auto& g0 = matrices.front().grid();
  for (const auto& m : matrices) {
    TLRWSE_REQUIRE(m.grid().rows() == g0.rows() &&
                       m.grid().cols() == g0.cols() && m.grid().nb() == g0.nb(),
                   "all matrices must share a tile grid");
  }
}

const tlr::TileGrid& TlrRankSource::grid() const {
  return matrices_->front().grid();
}

std::vector<index_t> TlrRankSource::tile_ranks(index_t q) const {
  TLRWSE_REQUIRE(q >= 0 && q < num_freqs(), "frequency index");
  const auto& m = (*matrices_)[static_cast<std::size_t>(q)];
  const auto& g = m.grid();
  std::vector<index_t> ranks(static_cast<std::size_t>(g.num_tiles()));
  for (index_t j = 0; j < g.nt(); ++j) {
    for (index_t i = 0; i < g.mt(); ++i) {
      ranks[static_cast<std::size_t>(g.tile_index(i, j))] = m.rank(i, j);
    }
  }
  return ranks;
}

std::vector<cf32> functional_wse_mvm(const tlr::StackedTlr<cf32>& A,
                                     index_t stack_width,
                                     std::span<const cf32> x,
                                     obs::FlightRecorder* recorder) {
  const tlr::TileGrid& g = A.grid();
  TLRWSE_REQUIRE(static_cast<index_t>(x.size()) == g.cols(), "x size");
  std::vector<cf32> y(static_cast<std::size_t>(g.rows()), cf32{});

  // Rank source view over this single matrix.
  struct SingleSource final : RankSource {
    const tlr::StackedTlr<cf32>* stacks;
    [[nodiscard]] index_t num_freqs() const override { return 1; }
    [[nodiscard]] const tlr::TileGrid& grid() const override {
      return stacks->grid();
    }
    [[nodiscard]] std::vector<index_t> tile_ranks(index_t) const override {
      const auto& gg = stacks->grid();
      std::vector<index_t> ranks(static_cast<std::size_t>(gg.num_tiles()));
      for (index_t j = 0; j < gg.nt(); ++j) {
        for (index_t i = 0; i < gg.mt(); ++i) {
          ranks[static_cast<std::size_t>(gg.tile_index(i, j))] =
              stacks->rank(i, j);
        }
      }
      return ranks;
    }
  } source;
  source.stacks = &A;

#ifdef TLRWSE_TRACING_ENABLED
  index_t pe_index = 0;  // one PE per chunk, strategy-1 style
  const CostModelParams cost{};
#else
  (void)recorder;
#endif

  for_each_chunk(source, stack_width, [&](const Chunk& c) {
#ifdef TLRWSE_TRACING_ENABLED
    if (recorder != nullptr) {
      // The chunk's eight MVM shapes (4x V, 4x U), computed in place: the
      // heap-allocating chunk_mvm_shapes() would dominate the hook cost.
      RealMvmShape v;
      v.m = static_cast<double>(c.h);
      v.n = static_cast<double>(c.nb);
      v.mn = v.m * v.n;
      RealMvmShape u;
      u.n = static_cast<double>(c.h);
      index_t prev_tile = -1;
      for (const auto& seg : c.segments) {
        u.mn += static_cast<double>(seg.count) * static_cast<double>(seg.mb);
        if (seg.tile_row != prev_tile) {
          u.m += static_cast<double>(seg.mb);
          prev_tile = seg.tile_row;
        }
      }
      PeWork pe;
      for (int k = 0; k < 4; ++k) pe.add_mvm(cost, v);
      for (int k = 0; k < 4; ++k) pe.add_mvm(cost, u);
      pe.cycles += cost.cycles_per_call;
      recorder->record(
          obs::Phase::kFusedColumn, pe_index,
          obs::PeSample{pe.cycles, pe.relative_bytes, pe.absolute_bytes,
                        pe.flops,
                        static_cast<double>(chunk_sram_bytes_strategy1(c))});
    }
    ++pe_index;
#endif
    const index_t j = c.tile_col;
    const auto& vs = A.v_stack(j);
    const cf32* xj = x.data() + g.col_offset(j);

    // Split-real x for this tile column (each PE keeps its own copy).
    std::vector<float> xr(static_cast<std::size_t>(c.nb));
    std::vector<float> xi(static_cast<std::size_t>(c.nb));
    for (index_t col = 0; col < c.nb; ++col) {
      xr[static_cast<std::size_t>(col)] = xj[col].real();
      xi[static_cast<std::size_t>(col)] = xj[col].imag();
    }

    // V batch, four real MVMs: yv = Vslice * x over the chunk's h rows.
    std::vector<float> yvr(static_cast<std::size_t>(c.h), 0.0f);
    std::vector<float> yvi(static_cast<std::size_t>(c.h), 0.0f);
    index_t row = 0;
    for (const auto& seg : c.segments) {
      const index_t base = A.v_offset(seg.tile_row, j) + seg.rank_begin;
      for (index_t r = 0; r < seg.count; ++r, ++row) {
        float acc_rr = 0.0f, acc_ii = 0.0f, acc_ri = 0.0f, acc_ir = 0.0f;
        for (index_t col = 0; col < c.nb; ++col) {
          const cf32 v = vs(base + r, col);
          // The four real batched MVMs: Vr*xr, Vi*xi, Vr*xi, Vi*xr.
          acc_rr += v.real() * xr[static_cast<std::size_t>(col)];
          acc_ii += v.imag() * xi[static_cast<std::size_t>(col)];
          acc_ri += v.real() * xi[static_cast<std::size_t>(col)];
          acc_ir += v.imag() * xr[static_cast<std::size_t>(col)];
        }
        yvr[static_cast<std::size_t>(row)] = acc_rr - acc_ii;
        yvi[static_cast<std::size_t>(row)] = acc_ri + acc_ir;
      }
    }

    // U batch, four real MVMs accumulated into the host-reduced y.
    row = 0;
    for (const auto& seg : c.segments) {
      const index_t i = seg.tile_row;
      const auto& us = A.u_stack(i);
      const index_t ubase = A.u_offset(i, j) + seg.rank_begin;
      cf32* yi_out = y.data() + g.row_offset(i);
      for (index_t r = 0; r < seg.count; ++r, ++row) {
        const float sr = yvr[static_cast<std::size_t>(row)];
        const float si = yvi[static_cast<std::size_t>(row)];
        const cf32* ucol = us.col(ubase + r);
        for (index_t out = 0; out < seg.mb; ++out) {
          const float ur = ucol[out].real();
          const float ui = ucol[out].imag();
          yi_out[out] += cf32{ur * sr - ui * si, ur * si + ui * sr};
        }
      }
    }
  });

  return y;
}

}  // namespace tlrwse::wse
