#include "tlrwse/wse/host_io.hpp"

#include <algorithm>

#include "tlrwse/common/error.hpp"

namespace tlrwse::wse {

OverlapReport double_buffer_overlap(const HostIoModel& model, HostLink link,
                                    double shard_bytes, index_t num_batches,
                                    double compute_sec_per_batch) {
  TLRWSE_REQUIRE(num_batches >= 1, "need at least one batch");
  TLRWSE_REQUIRE(shard_bytes >= 0.0 && compute_sec_per_batch >= 0.0,
                 "negative workload");
  OverlapReport rep;
  rep.load_sec = model.transfer_sec(shard_bytes, link);
  const double batch_bytes = shard_bytes / static_cast<double>(num_batches);
  rep.batch_io_sec = model.transfer_sec(batch_bytes, link);
  rep.batch_compute_sec = compute_sec_per_batch;
  const double step = std::max(rep.batch_io_sec, rep.batch_compute_sec);
  rep.steady_efficiency = step > 0.0 ? rep.batch_compute_sec / step : 1.0;
  rep.io_bound = rep.batch_io_sec > rep.batch_compute_sec;
  return rep;
}

}  // namespace tlrwse::wse
