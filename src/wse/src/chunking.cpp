#include "tlrwse/wse/chunking.hpp"

#include <algorithm>

#include "tlrwse/common/error.hpp"

namespace tlrwse::wse {

void for_each_chunk(const RankSource& source, index_t stack_width,
                    const std::function<void(const Chunk&)>& fn) {
  TLRWSE_REQUIRE(stack_width >= 1, "stack width must be >= 1");
  const tlr::TileGrid& g = source.grid();
  for (index_t q = 0; q < source.num_freqs(); ++q) {
    const auto ranks = source.tile_ranks(q);
    for (index_t j = 0; j < g.nt(); ++j) {
      Chunk chunk;
      chunk.freq = q;
      chunk.tile_col = j;
      chunk.nb = g.tile_cols(j);
      chunk.h = 0;

      auto flush = [&]() {
        if (chunk.h > 0) {
          fn(chunk);
          chunk.segments.clear();
          chunk.h = 0;
        }
      };

      for (index_t i = 0; i < g.mt(); ++i) {
        index_t remaining =
            ranks[static_cast<std::size_t>(g.tile_index(i, j))];
        index_t consumed = 0;
        while (remaining > 0) {
          const index_t take = std::min(remaining, stack_width - chunk.h);
          chunk.segments.push_back({i, consumed, take, g.tile_rows(i)});
          chunk.h += take;
          consumed += take;
          remaining -= take;
          if (chunk.h == stack_width) flush();
        }
      }
      flush();
    }
  }
}

index_t count_chunks(const RankSource& source, index_t stack_width) {
  index_t count = 0;
  for_each_chunk(source, stack_width, [&](const Chunk&) { ++count; });
  return count;
}

std::vector<RealMvmShape> chunk_mvm_shapes(const Chunk& c) {
  // V batch: y_v (h) = Vslice (h x nb) * x (nb). Four real instances.
  RealMvmShape v;
  v.m = static_cast<double>(c.h);
  v.n = static_cast<double>(c.nb);
  v.mn = static_cast<double>(c.h) * static_cast<double>(c.nb);

  // U batch: columns of length mb (per segment), h columns total; output
  // spans the distinct tiles touched by the chunk.
  RealMvmShape u;
  u.n = static_cast<double>(c.h);
  index_t prev_tile = -1;
  for (const auto& seg : c.segments) {
    u.mn += static_cast<double>(seg.count) * static_cast<double>(seg.mb);
    if (seg.tile_row != prev_tile) {
      u.m += static_cast<double>(seg.mb);
      prev_tile = seg.tile_row;
    }
  }

  return {v, v, v, v, u, u, u, u};
}

namespace {

/// Distinct output rows of the U batch (partial y length).
index_t u_output_rows(const Chunk& c) {
  index_t m = 0;
  index_t prev_tile = -1;
  for (const auto& seg : c.segments) {
    if (seg.tile_row != prev_tile) {
      m += seg.mb;
      prev_tile = seg.tile_row;
    }
  }
  return m;
}

/// Stored element count of the chunk's U bases.
index_t u_elements(const Chunk& c) {
  index_t e = 0;
  for (const auto& seg : c.segments) e += seg.count * seg.mb;
  return e;
}

}  // namespace

index_t chunk_sram_bytes_strategy1(const Chunk& c) {
  const index_t v_elems = c.h * c.nb;
  const index_t u_elems = u_elements(c);
  const index_t y_rows = u_output_rows(c);
  index_t bytes = 0;
  // Split real bases: Vr, Vi, Ur, Ui as separate aligned arrays.
  bytes += 2 * padded_array_bytes(v_elems * 4);
  bytes += 2 * padded_array_bytes(u_elems * 4);
  // Vectors: xr/xi, yvr/yvi (V outputs), yr/yi (partial y).
  bytes += 2 * padded_array_bytes(c.nb * 4);
  bytes += 2 * padded_array_bytes(c.h * 4);
  bytes += 2 * padded_array_bytes(y_rows * 4);
  return bytes;
}

index_t chunk_sram_bytes_strategy2(const Chunk& c) {
  const index_t v_elems = c.h * c.nb;
  const index_t u_elems = u_elements(c);
  const index_t y_rows = u_output_rows(c);
  // Worst PE holds the larger real base plus its in/out vectors.
  const index_t v_pe = padded_array_bytes(v_elems * 4) +
                       padded_array_bytes(c.nb * 4) +
                       padded_array_bytes(c.h * 4);
  const index_t u_pe = padded_array_bytes(u_elems * 4) +
                       padded_array_bytes(c.h * 4) +
                       padded_array_bytes(y_rows * 4);
  return std::max(v_pe, u_pe);
}

}  // namespace tlrwse::wse
