#include "tlrwse/wse/cost_model.hpp"

namespace tlrwse::wse {

double mvm_cycles(const CostModelParams& p, double mn, double n) {
  return p.cycles_per_element * mn + p.cycles_per_column * n +
         p.cycles_per_mvm;
}

index_t padded_array_bytes(index_t raw_bytes) {
  // Round up to 16 bytes and add one 16-byte guard so consecutive arrays
  // start on distinct bank-aligned boundaries.
  const index_t rounded = (raw_bytes + 15) / 16 * 16;
  return rounded + 16;
}

}  // namespace tlrwse::wse
