#include "tlrwse/wse/machine.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>
#include <vector>

#include "tlrwse/common/error.hpp"

namespace tlrwse::wse {

obs::FlightRecorderConfig flight_config_for(const WseSpec& spec) {
  obs::FlightRecorderConfig cfg;
  cfg.pes_per_system = spec.usable_pes();
  cfg.fabric_cols = spec.usable_cols;
  cfg.clock_hz = spec.clock_hz;
  return cfg;
}

ClusterReport simulate_cluster(const RankSource& source,
                               const ClusterConfig& cfg) {
  ClusterReport rep;
  const double call = cfg.cost.cycles_per_call;
  index_t pe_index = 0;  // running PE id for the flight recorder

  for_each_chunk(source, cfg.stack_width, [&](const Chunk& c) {
    ++rep.chunks;
    const auto shapes = chunk_mvm_shapes(c);

    if (cfg.strategy == Strategy::kSplitStackWidth) {
      // One PE executes all eight MVMs back to back.
      PeWork pe;
      for (const auto& s : shapes) pe.add_mvm(cfg.cost, s);
      pe.cycles += call;
      const double sram = static_cast<double>(chunk_sram_bytes_strategy1(c));
      rep.worst_cycles = std::max(rep.worst_cycles, pe.cycles);
      rep.relative_bytes += pe.relative_bytes;
      rep.absolute_bytes += pe.absolute_bytes;
      rep.flops += pe.flops;
      rep.max_sram_bytes = std::max(rep.max_sram_bytes, sram);
      TLRWSE_FLIGHT_RECORD(
          cfg.recorder, obs::Phase::kFusedColumn, pe_index,
          (obs::PeSample{pe.cycles, pe.relative_bytes, pe.absolute_bytes,
                         pe.flops, sram}));
      pe_index += 1;
    } else {
      // Eight PEs execute the chunk's eight real MVMs with their column
      // streams interleaved round-robin, so each PE carries the balanced
      // 1/8 share of the batch's fmac and column-setup work. The per-MVM
      // prologue disappears: a PE issues a single fused launch (c_call)
      // instead of the strategy-1 batch loop. This matches the near-8x
      // cycle reduction the paper's Tables 2 and 5 jointly imply for the
      // scatter runs (19131 -> ~2387 worst cycles on the nb = 70 headline).
      double stream_cycles = 0.0;
      double rel = 0.0, abs_b = 0.0, fl = 0.0;
      for (const auto& s : shapes) {
        stream_cycles +=
            cfg.cost.cycles_per_element * s.mn + cfg.cost.cycles_per_column * s.n;
        rel += s.relative_bytes();
        abs_b += s.absolute_bytes();
        fl += s.flops();
      }
      rep.relative_bytes += rel;
      rep.absolute_bytes += abs_b;
      rep.flops += fl;
      const double per_pe = stream_cycles / 8.0 + call;
      const double sram = static_cast<double>(chunk_sram_bytes_strategy2(c));
      rep.worst_cycles = std::max(rep.worst_cycles, per_pe);
      rep.max_sram_bytes = std::max(rep.max_sram_bytes, sram);
#ifdef TLRWSE_TRACING_ENABLED
      if (cfg.recorder != nullptr) {
        // The interleaved scatter balances cycles and traffic alike, so
        // each of the eight PEs carries 1/8 of the chunk.
        const obs::PeSample sample{per_pe, rel / 8.0, abs_b / 8.0, fl / 8.0,
                                   sram};
        cfg.recorder->record_span(obs::Phase::kFusedColumn, pe_index, 8,
                                  sample);
      }
#endif
      pe_index += 8;
    }
  });

  const index_t pes_per_chunk =
      (cfg.strategy == Strategy::kSplitStackWidth) ? 1 : 8;
  rep.pes_used = rep.chunks * pes_per_chunk;

  const index_t usable = cfg.spec.usable_pes();
  rep.systems = (cfg.systems > 0)
                    ? cfg.systems
                    : std::max<index_t>(1, (rep.pes_used + usable - 1) / usable);
  rep.occupancy = static_cast<double>(rep.pes_used) /
                  (static_cast<double>(rep.systems) * static_cast<double>(usable));
  rep.fits_sram =
      rep.max_sram_bytes <= static_cast<double>(cfg.spec.data_sram_bytes());

  if (rep.worst_cycles > 0.0) {
    rep.time_us = rep.worst_cycles / cfg.spec.clock_hz * 1e6;
    const double per_second = cfg.spec.clock_hz / rep.worst_cycles;
    rep.relative_bw = rep.relative_bytes * per_second;
    rep.absolute_bw = rep.absolute_bytes * per_second;
    rep.flops_rate = rep.flops * per_second;
  }
  return rep;
}

index_t choose_stack_width(const RankSource& source, const WseSpec& spec,
                           index_t systems, Strategy strategy,
                           index_t max_width) {
  const index_t pes_per_chunk = (strategy == Strategy::kSplitStackWidth) ? 1 : 8;
  const index_t capacity = systems * spec.usable_pes();
  // PE demand decreases monotonically with the stack width: binary search
  // the smallest width that fits.
  index_t lo = 1;
  index_t hi = max_width;
  if (count_chunks(source, hi) * pes_per_chunk > capacity) return 0;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    if (count_chunks(source, mid) * pes_per_chunk <= capacity) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return hi;
}

PackedReport simulate_packed_cluster(const RankSource& source,
                                     const ClusterConfig& cfg,
                                     index_t systems) {
  TLRWSE_REQUIRE(systems >= 1, "need at least one system");
  TLRWSE_REQUIRE(cfg.strategy == Strategy::kSplitStackWidth,
                 "packing models strategy 1 (one chunk stream per PE)");
  PackedReport rep;
  const index_t capacity = systems * cfg.spec.usable_pes();

  // Pass 1: per-chunk cycle costs and global traffic totals.
  std::vector<double> chunk_cycles;
  double rel_bytes = 0.0, abs_bytes = 0.0;
  for_each_chunk(source, cfg.stack_width, [&](const Chunk& c) {
    double cycles = cfg.cost.cycles_per_call;
    for (const auto& s : chunk_mvm_shapes(c)) {
      cycles += mvm_cycles(cfg.cost, s.mn, s.n);
      rel_bytes += s.relative_bytes();
      abs_bytes += s.absolute_bytes();
    }
    chunk_cycles.push_back(cycles);
  });
  rep.chunks = static_cast<index_t>(chunk_cycles.size());
  rep.pes = std::min<index_t>(rep.chunks, capacity);
  if (rep.pes == 0) return rep;

  // LPT greedy: biggest chunks first onto the least-loaded PE. A k-way
  // min-heap over PE loads keeps this O(n log p).
  std::sort(chunk_cycles.begin(), chunk_cycles.end(), std::greater<>());
  std::priority_queue<double, std::vector<double>, std::greater<>> loads;
  for (index_t p = 0; p < rep.pes; ++p) loads.push(0.0);
  double total = 0.0;
  for (double c : chunk_cycles) {
    double load = loads.top();
    loads.pop();
    loads.push(load + c);
    total += c;
  }
  double worst = 0.0;
  while (!loads.empty()) {
    worst = std::max(worst, loads.top());
    loads.pop();
  }
  rep.worst_pe_cycles = worst;
  rep.mean_pe_cycles = total / static_cast<double>(rep.pes);
  rep.imbalance = rep.mean_pe_cycles > 0.0 ? worst / rep.mean_pe_cycles : 1.0;
  const double per_second = cfg.spec.clock_hz / worst;
  rep.relative_bw = rel_bytes * per_second;
  rep.absolute_bw = abs_bytes * per_second;
  return rep;
}

namespace {

/// Early-exit sentinel for streaming SRAM checks.
struct SramOverflow {};

/// True when every chunk at this stack width fits the data SRAM budget.
/// Aborts the chunk stream on the first overflow.
bool all_chunks_fit(const RankSource& source, index_t stack_width,
                    Strategy strategy, index_t budget_bytes) {
  try {
    for_each_chunk(source, stack_width, [&](const Chunk& c) {
      const index_t bytes = (strategy == Strategy::kSplitStackWidth)
                                ? chunk_sram_bytes_strategy1(c)
                                : chunk_sram_bytes_strategy2(c);
      if (bytes > budget_bytes) throw SramOverflow{};
    });
  } catch (const SramOverflow&) {
    return false;
  }
  return true;
}

}  // namespace

index_t max_stack_width_for_sram(const RankSource& source, const WseSpec& spec,
                                 Strategy strategy, index_t max_width) {
  // The footprint grows monotonically with the width: binary search the
  // largest width that still fits.
  const auto fits = [&](index_t sw) {
    return all_chunks_fit(source, sw, strategy, spec.data_sram_bytes());
  };
  if (!fits(1)) return 0;
  index_t lo = 1;
  index_t hi = max_width;
  if (fits(hi)) return hi;
  while (lo + 1 < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

index_t minimum_systems(const RankSource& source, const WseSpec& spec,
                        Strategy strategy) {
  const index_t sw = max_stack_width_for_sram(source, spec, strategy);
  TLRWSE_REQUIRE(sw > 0, "dataset tiles do not fit a single PE's SRAM");
  const index_t pes_per_chunk =
      (strategy == Strategy::kSplitStackWidth) ? 1 : 8;
  const index_t pes = count_chunks(source, sw) * pes_per_chunk;
  return (pes + spec.usable_pes() - 1) / spec.usable_pes();
}

ConstantBatchPoint simulate_constant_batch(const WseSpec& spec,
                                           const CostModelParams& cost,
                                           index_t n) {
  TLRWSE_REQUIRE(n >= 1, "matrix size must be positive");
  ConstantBatchPoint pt;
  pt.n = n;
  RealMvmShape s;
  s.m = static_cast<double>(n);
  s.n = static_cast<double>(n);
  s.mn = s.m * s.n;
  PeWork pe;
  for (int k = 0; k < 8; ++k) pe.add_mvm(cost, s);
  pe.cycles += cost.cycles_per_call;
  const double per_second = spec.clock_hz / pe.cycles;
  const double pes = static_cast<double>(spec.usable_pes());
  pt.relative_bw = pe.relative_bytes * per_second * pes;
  pt.absolute_bw = pe.absolute_bytes * per_second * pes;
  return pt;
}

}  // namespace tlrwse::wse
