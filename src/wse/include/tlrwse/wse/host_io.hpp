// Host-to-wafer transfer model (paper Sec. 6.6).
//
// The paper excludes host data transfer from its timed region because the
// CS-2's ethernet ingress "suffers from overheads due to a slow-bandwidth
// ethernet interconnect, which may be mitigated with a double buffering
// mechanism or ... the Compute Express Link (CXL) standard". This model
// quantifies that claim: given a shard size and a per-system ingress
// bandwidth, it computes the one-shot load time and the steady-state
// overlap efficiency when frequency batches are double-buffered against
// compute.
#pragma once

#include "tlrwse/common/types.hpp"

namespace tlrwse::wse {

enum class HostLink {
  kEthernet,  // 12 x 100 GbE ingress of a CS-2 (~150 GB/s aggregate)
  kCxl,       // CXL-attached memory pool (~512 GB/s modelled)
};

struct HostIoModel {
  double ethernet_bytes_per_sec = 150e9;
  double cxl_bytes_per_sec = 512e9;
  double latency_sec = 50e-6;  // per-batch setup latency

  [[nodiscard]] double bandwidth(HostLink link) const {
    return link == HostLink::kEthernet ? ethernet_bytes_per_sec
                                       : cxl_bytes_per_sec;
  }

  /// Time to push `bytes` onto one system.
  [[nodiscard]] double transfer_sec(double bytes, HostLink link) const {
    return latency_sec + bytes / bandwidth(link);
  }
};

struct OverlapReport {
  double load_sec = 0.0;       // cold-start full-shard load
  double batch_io_sec = 0.0;   // per-batch transfer time
  double batch_compute_sec = 0.0;
  double steady_efficiency = 0.0;  // compute / max(compute, io): 1 = hidden
  bool io_bound = false;
};

/// Double-buffering overlap: while batch k computes, batch k+1 streams in.
/// Efficiency is the fraction of wall time spent computing in steady state.
[[nodiscard]] OverlapReport double_buffer_overlap(const HostIoModel& model,
                                                  HostLink link,
                                                  double shard_bytes,
                                                  index_t num_batches,
                                                  double compute_sec_per_batch);

}  // namespace tlrwse::wse
