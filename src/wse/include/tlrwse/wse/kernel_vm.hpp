// Instruction-level PE virtual machine ("CSL-lite").
//
// The paper's kernels are CSL programs of fmac instructions whose
// performance is governed by three microarchitectural rules (Sec. 6.5):
// a PE issues up to two 64-bit reads and one 64-bit write per cycle, the
// two reads of a cycle must target distinct 6 kB SRAM banks, and arrays
// must be aligned/padded so that this holds "for every fmac instruction".
//
// This VM makes those rules executable: a chunk of the TLR mapping is
// assembled into a program over a modelled 48 kB / 8-bank SRAM, executed
// for VALUES (bit-compatible with the split-real kernels) and for CYCLES
// (dual-issue when the operands' banks differ, serialised on conflicts).
// It provides the hardware-bound second opinion on the calibrated analytic
// cost model: vm_cycles <= analytic_cycles, with the gap being the
// software-pipeline inefficiency the calibration absorbs.
#pragma once

#include <cstdint>
#include <vector>

#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/wse/chunking.hpp"
#include "tlrwse/wse/wse_spec.hpp"

namespace tlrwse::wse {

/// Byte-addressable single-PE SRAM with a bump allocator and bank mapping.
class PeMemory {
 public:
  explicit PeMemory(const WseSpec& spec)
      : bank_bytes_(spec.bank_bytes),
        data_(static_cast<std::size_t>(spec.sram_bytes_per_pe / 4), 0.0f) {}

  /// Allocates `count` floats, 16-byte aligned; returns the word address
  /// (index into the float array). Throws when SRAM is exhausted.
  [[nodiscard]] index_t alloc(index_t count);

  /// Bank of a float word address.
  [[nodiscard]] index_t bank(index_t word_addr) const {
    return (word_addr * 4) / bank_bytes_;
  }

  [[nodiscard]] float load(index_t word_addr) const {
    return data_.at(static_cast<std::size_t>(word_addr));
  }
  void store(index_t word_addr, float v) {
    data_.at(static_cast<std::size_t>(word_addr)) = v;
  }

  [[nodiscard]] index_t words_used() const noexcept { return top_; }
  [[nodiscard]] index_t capacity_words() const noexcept {
    return static_cast<index_t>(data_.size());
  }

 private:
  index_t bank_bytes_;
  index_t top_ = 0;
  std::vector<float> data_;
};

/// The instruction set of the kernel VM.
struct Instruction {
  enum class Op {
    kZero,      // y[0..len) = 0
    kLoadX,     // x register file <- mem[addr .. addr+len)
    kFmacCol,   // y[0..len) += a[0..len) * xreg[reg]  (one matrix column)
    kAxpyNeg,   // y[0..len) -= a[0..len) * xreg[reg]
  };
  Op op = Op::kZero;
  index_t y_addr = 0;   // destination base (kZero/kFmacCol/kAxpyNeg)
  index_t a_addr = 0;   // source column base (kFmacCol/kAxpyNeg/kLoadX src)
  index_t reg = 0;      // x register index
  index_t len = 0;      // column length / vector length
};

struct PeStats {
  double cycles = 0.0;
  double reads64 = 0.0;         // 64-bit read transactions issued
  double writes64 = 0.0;        // 64-bit write transactions issued
  double bank_conflicts = 0.0;  // dual-read pairs serialised by banking
  double bytes_accessed = 0.0;  // total SRAM traffic
};

/// Per-instruction overhead of the VM's cycle model (loop setup, DSR
/// configuration); the throughput part follows the 2R+1W/banking rules.
struct VmCostParams {
  double setup_cycles = 6.0;
};

/// Executes a program on a PE memory image, producing values and stats.
class PeSimulator {
 public:
  PeSimulator(PeMemory& mem, VmCostParams params = {})
      : mem_(&mem), params_(params) {}

  /// Runs the program; x registers are a small per-PE register file
  /// (reloaded by kLoadX from memory).
  [[nodiscard]] PeStats run(const std::vector<Instruction>& program);

 private:
  PeMemory* mem_;
  VmCostParams params_;
  std::vector<float> xregs_;
};

/// A chunk assembled onto one PE: the memory image holds the split-real
/// bases and vectors; `program` computes the eight real MVMs of Sec. 6.6
/// (strategy 1 order). Outputs live at yr/yi for the chunk's partial y.
struct AssembledChunk {
  PeMemory memory;
  std::vector<Instruction> program;
  index_t xr_addr = 0, xi_addr = 0;
  index_t yvr_addr = 0, yvi_addr = 0;
  index_t yr_addr = 0, yi_addr = 0;
  index_t y_rows = 0;  // distinct output rows (partial y length)

  explicit AssembledChunk(const WseSpec& spec) : memory(spec) {}
};

/// Assembles chunk `c` of matrix `A` with input slice `x` (the tile
/// column's portion of the full x vector, length c.nb).
[[nodiscard]] AssembledChunk assemble_chunk(const WseSpec& spec,
                                            const tlr::StackedTlr<cf32>& A,
                                            const Chunk& c,
                                            std::span<const cf32> x);

/// Reads the chunk's complex partial-y vector out of the memory image.
[[nodiscard]] std::vector<cf32> read_partial_y(const AssembledChunk& chunk);

}  // namespace tlrwse::wse
