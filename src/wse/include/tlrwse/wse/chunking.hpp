// Decomposition of a TLR dataset into per-PE chunks (the paper's mapping).
//
// Unit of work: for each frequency matrix and each tile column j, the V
// bases are stacked vertically into (K_j x nb) with K_j = sum of the
// column's tile ranks, and the U bases are stored side by side (Fig. 9).
// The stack is cut into chunks of at most `stack_width` consecutive rank
// rows; each chunk is owned by one PE (strategy 1) or eight PEs
// (strategy 2, one per real MVM — Sec. 6.7). This reproduces the paper's
// PE counts: e.g. nb = 25, acc = 1e-4, stack width 64 yields ~4.42M chunks,
// Table 1's "PEs used" on six CS-2 systems.
#pragma once

#include <functional>
#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/tlr/tile_grid.hpp"
#include "tlrwse/wse/cost_model.hpp"

namespace tlrwse::wse {

/// Abstract provider of per-frequency tile-rank fields. Implementations:
/// the paper-scale analytic RankModel and real compressed TlrMatrix sets.
class RankSource {
 public:
  virtual ~RankSource() = default;
  [[nodiscard]] virtual index_t num_freqs() const = 0;
  /// Tile grid shared by all frequency matrices.
  [[nodiscard]] virtual const tlr::TileGrid& grid() const = 0;
  /// Ranks of matrix q, column-of-tiles-major (TileGrid::tile_index).
  [[nodiscard]] virtual std::vector<index_t> tile_ranks(index_t q) const = 0;
};

/// One PE-sized slice of a tile column's stacked bases.
struct Chunk {
  index_t freq = 0;
  index_t tile_col = 0;
  index_t nb = 0;  // width of this tile column (ragged on the last column)
  index_t h = 0;   // rank rows in this chunk (<= stack width)

  /// Contiguous run of rank rows belonging to one tile.
  struct Segment {
    index_t tile_row = 0;
    index_t rank_begin = 0;  // first rank index within the tile
    index_t count = 0;       // rank rows from this tile
    index_t mb = 0;          // tile height (U column length)
  };
  std::vector<Segment> segments;
};

/// Invokes `fn` for every chunk of the dataset at the given stack width.
/// Streaming: chunks are built one at a time and never stored.
void for_each_chunk(const RankSource& source, index_t stack_width,
                    const std::function<void(const Chunk&)>& fn);

/// Total number of chunks (= PEs in strategy 1, PEs/8 in strategy 2).
[[nodiscard]] index_t count_chunks(const RankSource& source,
                                   index_t stack_width);

/// The eight real MVM shapes of a chunk (four for the V batch, four for
/// the U batch), in execution order Vr*xr, Vi*xi, Vr*xi, Vi*xr, then the
/// same pattern for U.
[[nodiscard]] std::vector<RealMvmShape> chunk_mvm_shapes(const Chunk& c);

/// Data SRAM footprint of the chunk on a single PE running all eight MVMs
/// (strategy 1): split real bases, x/y/intermediate vectors, per-array
/// alignment padding.
[[nodiscard]] index_t chunk_sram_bytes_strategy1(const Chunk& c);

/// Worst per-PE data footprint under strategy 2 (each PE holds one real
/// base copy plus its vectors).
[[nodiscard]] index_t chunk_sram_bytes_strategy2(const Chunk& c);

}  // namespace tlrwse::wse
