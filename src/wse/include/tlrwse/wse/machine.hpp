// Cluster-level simulation: maps a TLR dataset onto one or more CS-2
// systems and reports the paper's metrics (PEs used, occupancy, worst
// cycle count, relative/absolute memory accesses and bandwidths, PFlop/s).
//
// Bandwidth reporting follows the paper exactly (Secs. 6.5/7.3): the
// workload is embarrassingly parallel, so the aggregate bandwidth is
//   total bytes accessed * clock / worst cycle count over all PEs.
#pragma once

#include "tlrwse/obs/flight_recorder.hpp"
#include "tlrwse/wse/chunking.hpp"
#include "tlrwse/wse/wse_spec.hpp"

namespace tlrwse::wse {

/// Strong-scaling strategies of Sec. 6.7.
enum class Strategy {
  kSplitStackWidth = 1,  // all 8 real MVMs on one PE; scale by splitting sw
  kScatterRealMvms = 2,  // 8 real MVMs scattered onto 8 PEs (replicated bases)
};

struct ClusterConfig {
  WseSpec spec;
  CostModelParams cost;
  index_t stack_width = 64;
  Strategy strategy = Strategy::kSplitStackWidth;
  /// 0 = derive the system count from the PE demand; otherwise fixed.
  index_t systems = 0;
  /// When set, every simulated PE launch is recorded (phase kFusedColumn,
  /// one sample per PE). Null costs nothing; the hook sites also compile
  /// away entirely under -DTLRWSE_TRACING=OFF.
  obs::FlightRecorder* recorder = nullptr;
};

/// Recorder configuration matching a WseSpec: per-system PE count, fabric
/// placement for the PE-grid heatmaps, and the clock for bandwidths.
[[nodiscard]] obs::FlightRecorderConfig flight_config_for(const WseSpec& spec);

struct ClusterReport {
  index_t chunks = 0;
  index_t pes_used = 0;
  index_t systems = 0;
  double occupancy = 0.0;  // pes_used / (systems * usable_pes)

  double worst_cycles = 0.0;
  double relative_bytes = 0.0;  // summed over all PEs
  double absolute_bytes = 0.0;
  double flops = 0.0;

  double max_sram_bytes = 0.0;
  bool fits_sram = true;

  double time_us = 0.0;
  double relative_bw = 0.0;  // bytes/s
  double absolute_bw = 0.0;
  double flops_rate = 0.0;   // flop/s

  /// worst-PE cycles of a reference report divided by (PE ratio * cycles):
  /// parallel efficiency vs. the reference configuration.
  [[nodiscard]] double parallel_efficiency_vs(const ClusterReport& ref) const {
    if (pes_used == 0 || worst_cycles <= 0.0) return 0.0;
    const double speedup = ref.worst_cycles / worst_cycles;
    const double pe_ratio =
        static_cast<double>(pes_used) / static_cast<double>(ref.pes_used);
    return speedup / pe_ratio;
  }
};

/// Runs the mapping + cost model over every chunk of the dataset.
[[nodiscard]] ClusterReport simulate_cluster(const RankSource& source,
                                             const ClusterConfig& cfg);

/// Smallest stack width whose PE demand fits within `systems` CS-2s —
/// maximises occupancy, the paper's Table 1 tuning rule. Returns 0 when
/// even the largest width (max_width) does not fit.
[[nodiscard]] index_t choose_stack_width(const RankSource& source,
                                         const WseSpec& spec, index_t systems,
                                         Strategy strategy,
                                         index_t max_width = 512);

/// Time-shared execution on a FIXED, possibly undersized machine: chunks
/// are packed onto the available PEs with a longest-processing-time greedy
/// (each PE executes its chunks back to back; bases are streamed between
/// chunks by the host, so SRAM holds one chunk at a time). Models the
/// "fewer than six systems" regime the paper's sizing claim implies, where
/// the kernel stops being single-pass.
struct PackedReport {
  index_t chunks = 0;
  index_t pes = 0;             // PEs actually used (min(chunks, capacity))
  double worst_pe_cycles = 0.0;  // makespan
  double mean_pe_cycles = 0.0;
  double imbalance = 0.0;      // worst / mean (1.0 = perfect)
  double relative_bw = 0.0;
  double absolute_bw = 0.0;
};
[[nodiscard]] PackedReport simulate_packed_cluster(const RankSource& source,
                                                   const ClusterConfig& cfg,
                                                   index_t systems);

/// Largest stack width whose per-PE data footprint (worst chunk, including
/// split-real bases, vectors and alignment padding) still fits the 48 kB
/// SRAM under the given strategy. Returns 0 if even width 1 overflows.
[[nodiscard]] index_t max_stack_width_for_sram(const RankSource& source,
                                               const WseSpec& spec,
                                               Strategy strategy,
                                               index_t max_width = 512);

/// The minimum number of CS-2 systems able to host the dataset: chunks at
/// the SRAM-limited stack width, one PE per chunk (strategy 1) or eight
/// (strategy 2). Reproduces the paper's Sec. 6.5 statement that
/// "accommodating the full compressed matrix in CS-2 SRAM requires a
/// minimum of six CS-2 systems".
[[nodiscard]] index_t minimum_systems(const RankSource& source,
                                      const WseSpec& spec, Strategy strategy);

/// Fig. 14 synthetic: every usable PE runs eight real N x N MVMs
/// (a complex batched MVM with constant matrix size). Returns the
/// aggregate relative/absolute bandwidth over one CS-2.
struct ConstantBatchPoint {
  index_t n = 0;
  double relative_bw = 0.0;
  double absolute_bw = 0.0;
};
[[nodiscard]] ConstantBatchPoint simulate_constant_batch(
    const WseSpec& spec, const CostModelParams& cost, index_t n);

}  // namespace tlrwse::wse
