// CS-2 power model (paper Sec. 7.6).
//
// Calibration: the paper measures a steady 16 kW for the TLR-MVM workload
// on one fully occupied CS-2 (no fabric traffic thanks to the
// communication-avoiding layout) and cites ~23 kW for fabric-heavy stencil
// workloads [25]. Decomposing 16 kW = base + 745,500 PEs x ~12 mW gives a
// 7 kW static/system base; adding ~9.5 mW/PE of fabric switching power
// recovers the stencil figure.
#pragma once

#include "tlrwse/common/types.hpp"
#include "tlrwse/wse/wse_spec.hpp"

namespace tlrwse::wse {

struct PowerModel {
  double base_kw = 7.0;          // fans, IO, static per system
  double pe_active_mw = 12.0;    // per fully-busy PE (fmac stream)
  double fabric_active_mw = 9.5; // extra per PE when the fabric is hot

  /// Sustained power (kW) of one CS-2 with `active_pes` busy PEs.
  [[nodiscard]] double system_power_kw(index_t active_pes,
                                       bool fabric_traffic) const {
    const double per_pe =
        pe_active_mw + (fabric_traffic ? fabric_active_mw : 0.0);
    return base_kw + static_cast<double>(active_pes) * per_pe * 1e-6;
  }

  /// GFlop/s per watt for a cluster sustaining `flops_rate` flop/s with
  /// `systems` machines, each with `active_pes_per_system` busy PEs.
  [[nodiscard]] double efficiency_gflops_per_watt(
      double flops_rate, index_t systems, index_t active_pes_per_system,
      bool fabric_traffic = false) const {
    const double watts = static_cast<double>(systems) *
                         system_power_kw(active_pes_per_system, fabric_traffic) *
                         1e3;
    return watts > 0.0 ? (flops_rate / 1e9) / watts : 0.0;
  }
};

}  // namespace tlrwse::wse
