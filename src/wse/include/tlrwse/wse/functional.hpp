// Functional (value-exact) execution of the WSE mapping.
//
// The performance simulator counts cycles and bytes; this component
// actually computes the MVM through the same chunk decomposition a real
// CS-2 deployment would use — each chunk plays the role of one PE running
// the eight real MVMs on its slice of the stacked bases, and the final
// host-side reduction sums the partial y vectors. Tests compare the result
// bit-for-bit-ish (FP32 reassociation tolerance) against the reference
// TLR-MVM kernels, proving the mapping computes the right answer.
#pragma once

#include <span>
#include <vector>

#include "tlrwse/obs/flight_recorder.hpp"
#include "tlrwse/tlr/stacked.hpp"
#include "tlrwse/tlr/tlr_matrix.hpp"
#include "tlrwse/wse/chunking.hpp"

namespace tlrwse::wse {

/// RankSource adapter over real compressed matrices (all sharing a grid).
class TlrRankSource final : public RankSource {
 public:
  explicit TlrRankSource(const std::vector<tlr::TlrMatrix<cf32>>& matrices);

  [[nodiscard]] index_t num_freqs() const override {
    return static_cast<index_t>(matrices_->size());
  }
  [[nodiscard]] const tlr::TileGrid& grid() const override;
  [[nodiscard]] std::vector<index_t> tile_ranks(index_t q) const override;

 private:
  const std::vector<tlr::TlrMatrix<cf32>>* matrices_;
};

/// Executes y = A x through the chunked PE mapping at the given stack
/// width, with each chunk's arithmetic performed as the eight split-real
/// MVMs of Sec. 6.6 and partial results host-reduced. When a flight
/// recorder is attached, every chunk launch records its cost-model sample
/// (one PE per chunk, the fused column phase); the hook compiles away
/// under -DTLRWSE_TRACING=OFF.
[[nodiscard]] std::vector<cf32> functional_wse_mvm(
    const tlr::StackedTlr<cf32>& A, index_t stack_width,
    std::span<const cf32> x, obs::FlightRecorder* recorder = nullptr);

}  // namespace tlrwse::wse
