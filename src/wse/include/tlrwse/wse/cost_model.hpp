// Cycle and memory-access cost model of the per-PE fmac MVM kernel.
//
// Cycle model: an axpy-style MVM over columns of length L costs
//   cycles = sum_cols (c_elem * L + c_col) + c_mvm        per MVM,
// plus c_call once per kernel invocation on a PE. The constants are
// calibrated against the paper's measured worst cycle counts (Table 2) and
// the single-CS-2 saturation behaviour of Fig. 14: with c_elem = 1.25 the
// relative bandwidth of a constant-size batched MVM saturates at ~2 PB/s
// across 745,500 PEs and the absolute bandwidth at ~3x that — exactly the
// asymptotes of Fig. 14.
//
// Access model (paper Sec. 6.6) per real M x N MVM with MN stored elements:
//   relative bytes = 4 * (MN + M + N)   (cache-based machine: A once,
//                                        x once, y once)
//   absolute bytes = 4 * (3*MN + N)     (flat SRAM: per fmac read y, read
//                                        A, write y; x once per column)
//   flops          = 2 * MN             (multiply + add per element)
#pragma once

#include <cstdint>

#include "tlrwse/common/types.hpp"

namespace tlrwse::wse {

struct CostModelParams {
  double cycles_per_element = 1.25;  // sustained fmac cost (calibrated)
  double cycles_per_column = 6.0;    // loop setup, x broadcast, DSR config
  double cycles_per_mvm = 150.0;     // kernel prologue/epilogue per MVM
  double cycles_per_call = 60.0;     // batch launch overhead per PE
};

/// Shape of one real MVM: output length M, N columns, and the true stored
/// element count MN (== M*N for a rectangular MVM; for the ragged U-batch
/// the columns have differing lengths, so MN < M*N is passed explicitly).
struct RealMvmShape {
  double m = 0.0;
  double n = 0.0;
  double mn = 0.0;

  [[nodiscard]] double relative_bytes() const noexcept {
    return 4.0 * (mn + m + n);
  }
  [[nodiscard]] double absolute_bytes() const noexcept {
    return 4.0 * (3.0 * mn + n);
  }
  [[nodiscard]] double flops() const noexcept { return 2.0 * mn; }
};

/// Cycles of one real MVM whose columns sum to `mn` elements over `n`
/// columns (call overhead excluded; add once per batch).
[[nodiscard]] double mvm_cycles(const CostModelParams& p, double mn, double n);

/// Aggregated counters of a batch of real MVMs executed on one PE.
struct PeWork {
  double cycles = 0.0;
  double relative_bytes = 0.0;
  double absolute_bytes = 0.0;
  double flops = 0.0;
  double sram_bytes = 0.0;  // data footprint (bases + vectors), no padding

  void add_mvm(const CostModelParams& p, const RealMvmShape& s) {
    cycles += mvm_cycles(p, s.mn, s.n);
    relative_bytes += s.relative_bytes();
    absolute_bytes += s.absolute_bytes();
    flops += s.flops();
  }
};

/// SRAM footprint helper: pads an array to the 64-bit dual-read alignment
/// the fmac loop requires (16-byte units, one pad slot per array so the
/// two reads of an fmac never share a bank).
[[nodiscard]] index_t padded_array_bytes(index_t raw_bytes);

}  // namespace tlrwse::wse
