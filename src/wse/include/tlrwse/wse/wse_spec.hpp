// Hardware description of one Cerebras CS-2 Wafer Scale Engine, as used by
// the paper (Sec. 6.5): a 757 x 996 grid of tiles of which 750 x 994 PEs
// are usable for compute (the rest route data on/off the wafer), 850 MHz
// clock, 48 kB of single-cycle SRAM per PE in eight 6 kB banks, and a
// memory pipe of two 64-bit reads plus one 64-bit write per cycle.
#pragma once

#include "tlrwse/common/types.hpp"

namespace tlrwse::wse {

struct WseSpec {
  index_t fabric_rows = 757;
  index_t fabric_cols = 996;
  index_t usable_rows = 750;
  index_t usable_cols = 994;
  double clock_hz = 850e6;
  index_t sram_bytes_per_pe = 48 * 1024;
  index_t sram_banks = 8;
  index_t bank_bytes = 6 * 1024;
  /// SRAM claimed by the kernel code, the CSL runtime, and communication
  /// buffers — unavailable to the stacked bases (one 6 kB bank's worth).
  index_t reserved_sram_bytes = 6 * 1024;
  int reads_per_cycle = 2;   // 64-bit reads
  int writes_per_cycle = 1;  // 64-bit writes

  /// PEs available for compute on one CS-2 (745,500; 48 systems give the
  /// paper's 35,784,000).
  [[nodiscard]] index_t usable_pes() const noexcept {
    return usable_rows * usable_cols;
  }
  /// SRAM available for data after the reserved region.
  [[nodiscard]] index_t data_sram_bytes() const noexcept {
    return sram_bytes_per_pe - reserved_sram_bytes;
  }
};

}  // namespace tlrwse::wse
