// Bulk-Synchronous-Parallel (Graphcore IPU) execution model of the
// 3-phase TLR-MVM — the predecessor implementation the paper improves on.
//
// Sec. 5.3: "our previous implementation on Graphcore IPUs consists of
// porting the three computational phases of TLR-MVM ... the second phase
// (i.e. memory shuffling) requires synchronization across the IPUs, which
// is further exacerbated due to the Bulk Synchronous Parallel (BSP)
// paradigm that characterizes the Graphcore architecture."
//
// The model runs the kernel as three supersteps (V-batch | exchange+barrier
// | U-batch): every tile computes, then ALL traffic moves in a global
// exchange phase bounded by the all-to-all exchange bandwidth, then a
// barrier. The CS-2's fused layout removes the middle superstep entirely;
// comparing the two quantifies the communication-avoiding win.
#pragma once

#include "tlrwse/obs/flight_recorder.hpp"
#include "tlrwse/wse/chunking.hpp"

namespace tlrwse::wse {

/// Graphcore GC200 (IPU-M2000 era) characteristics, per device.
struct IpuSpec {
  index_t tiles = 1472;                  // cores per IPU
  double clock_hz = 1.33e9;
  index_t sram_bytes_per_tile = 624 * 1024;
  double exchange_bytes_per_sec = 47e12; // on-chip all-to-all exchange
  double barrier_sec = 1.5e-6;           // BSP sync cost per superstep
  double flops_per_cycle_per_tile = 2.0; // fp32 AMP-less fmac path

  [[nodiscard]] double sram_total() const {
    return static_cast<double>(tiles) *
           static_cast<double>(sram_bytes_per_tile);
  }
};

struct BspReport {
  index_t devices = 0;          // IPUs needed to hold the bases
  double compute_sec = 0.0;     // supersteps 1 + 3 (perfectly balanced)
  double exchange_sec = 0.0;    // superstep 2: the V->U shuffle
  double barrier_sec = 0.0;     // 3 global barriers
  double total_sec = 0.0;
  /// Fraction of the pass spent NOT computing — the BSP overhead the
  /// fused CS-2 layout eliminates.
  [[nodiscard]] double sync_fraction() const {
    return total_sec > 0.0 ? (exchange_sec + barrier_sec) / total_sec : 0.0;
  }
};

/// Executes one TLR-MVM pass of the dataset under the BSP model. When a
/// recorder is attached, each device contributes one sample per superstep
/// (phases kVMvm / kShuffle / kUMvm, barrier cost folded into each), so
/// the recorder's per-phase critical path reproduces total_sec and the
/// shuffle phase exposes the BSP overhead the fused CS-2 layout removes.
[[nodiscard]] BspReport simulate_bsp_3phase(
    const RankSource& source, const IpuSpec& spec,
    obs::FlightRecorder* recorder = nullptr);

}  // namespace tlrwse::wse
