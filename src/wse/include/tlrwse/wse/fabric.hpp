// Fabric (NoC) cost model for the shuffle phase the paper eliminates.
//
// The classic 3-phase TLR-MVM (Figs. 5-7) stores V stacks per tile COLUMN
// and U stacks per tile ROW; between the two batched MVMs every V-batch
// output element must travel from its V-PE to its U-PE across the 2D mesh
// (or through the host when the two PEs sit on different CS-2 systems).
// The communication-avoiding layout (Fig. 9) removes this phase entirely.
//
// This model maps BOTH layouts onto the wafer and counts the shuffle's
// flit-hops: each cf32 element is two 32-bit flits, each link forwards one
// flit per cycle (the fabric "allows to transfer data at the same rate as
// the SRAM memory although at a higher latency", Sec. 5.2). Contention is
// summarised by the average and a bottleneck estimate of per-router load.
#pragma once

#include "tlrwse/wse/chunking.hpp"
#include "tlrwse/wse/wse_spec.hpp"

namespace tlrwse::wse {

struct FabricReport {
  double shuffle_elements = 0.0;    // yv elements moved (per full pass)
  double shuffle_bytes = 0.0;       // 8 bytes per cf32 element
  double local_flit_hops = 0.0;     // same-system mesh traffic
  double cross_system_bytes = 0.0;  // must leave the wafer via the host
  double mean_hops = 0.0;           // average on-wafer Manhattan distance
  index_t systems = 0;

  /// Average per-router forwarding load in flit-cycles (uniform spread).
  [[nodiscard]] double avg_router_cycles(const WseSpec& spec) const {
    const double routers =
        static_cast<double>(systems) * static_cast<double>(spec.usable_pes());
    return routers > 0.0 ? local_flit_hops / routers : 0.0;
  }
  /// Bottleneck estimate: mesh hotspots concentrate several times the
  /// average load on central routers (dimension-ordered routing).
  [[nodiscard]] double worst_router_cycles(const WseSpec& spec) const {
    return 3.0 * avg_router_cycles(spec);
  }
};

/// Estimates the 3-phase shuffle traffic for a dataset at the given stack
/// width: V chunks are laid out per tile column (as in Fig. 4), U chunks
/// per tile row, both assigned to PEs in enumeration order; every rank row
/// contributes one cf32 element moving from its V-PE to its U-PE.
[[nodiscard]] FabricReport estimate_3phase_shuffle(const RankSource& source,
                                                   const WseSpec& spec,
                                                   index_t stack_width);

}  // namespace tlrwse::wse
