#include "tlrwse/oocache/streamed_operator.hpp"

#include <utility>

#include "tlrwse/common/error.hpp"

namespace tlrwse::oocache {

StreamedOperator make_streamed_operator(const std::string& path,
                                        const StreamConfig& cfg,
                                        mdc::TlrKernel kernel) {
  StreamedOperator out;
  out.info = io::peek_archive_extents(path);
  StreamPlanConfig plan_cfg;
  plan_cfg.budget_bytes = cfg.budget_bytes;
  plan_cfg.cyclic = cfg.cyclic_plan;
  StreamPlan plan = compile_stream_plan(out.info, plan_cfg);
  auto source = std::make_shared<ArchiveShardSource>(path, out.info, kernel);
  out.streamer =
      std::make_shared<ShardStreamer>(std::move(source), std::move(plan), cfg);
  out.op = std::make_unique<mdc::MdcOperator>(out.info.nt, out.info.freq_bins,
                                              out.streamer);
  return out;
}

}  // namespace tlrwse::oocache
