#include "tlrwse/oocache/shard_streamer.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "tlrwse/common/error.hpp"
#include "tlrwse/common/timer.hpp"
#include "tlrwse/mdc/cancellation.hpp"
#include "tlrwse/obs/metrics_registry.hpp"
#include "tlrwse/obs/tracer.hpp"

namespace tlrwse::oocache {

namespace {

/// Registry handles resolved once; every streamer in the process shares
/// them (the per-streamer StreamStats struct keeps instance-local views).
struct StreamMetrics {
  obs::Counter& hits;
  obs::Counter& misses;
  obs::Counter& loads;
  obs::Counter& evictions;
  obs::Gauge& bytes_streamed;
  obs::Gauge& bytes_resident;
  obs::Histogram& stall_s;

  static StreamMetrics& instance() {
    static StreamMetrics m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::instance();
      return StreamMetrics{reg.counter("oocache.prefetch_hits"),
                           reg.counter("oocache.prefetch_misses"),
                           reg.counter("oocache.loads"),
                           reg.counter("oocache.evictions"),
                           reg.gauge("oocache.bytes_streamed"),
                           reg.gauge("oocache.bytes_resident"),
                           reg.histogram("oocache.stall_s")};
    }();
    return m;
  }
};

/// A source that lies about counts or dimensions would corrupt the
/// frequency loop; reject it as an io failure before anything is exposed.
void validate_shard(const ShardKernels& loaded, index_t q_begin,
                    index_t q_end, index_t rows, index_t cols) {
  if (static_cast<index_t>(loaded.kernels.size()) != q_end - q_begin) {
    throw std::runtime_error("shard load returned " +
                             std::to_string(loaded.kernels.size()) +
                             " kernels for " +
                             std::to_string(q_end - q_begin) +
                             " frequencies");
  }
  for (const auto& k : loaded.kernels) {
    if (k == nullptr || k->rows() != rows || k->cols() != cols) {
      throw std::runtime_error(
          "shard load returned mismatched kernel dimensions");
    }
  }
}

}  // namespace

ArchiveShardSource::ArchiveShardSource(std::string path, io::ArchiveInfo info,
                                       mdc::TlrKernel kernel)
    : path_(std::move(path)), info_(std::move(info)), kernel_(kernel) {
  TLRWSE_REQUIRE(info_.has_extents(),
                 "archive shard source needs an extents peek");
  TLRWSE_REQUIRE(info_.rows > 0 && info_.cols > 0,
                 "archive shard source: empty kernel dimensions");
}

ShardKernels ArchiveShardSource::load(index_t q_begin, index_t q_end) {
  ShardKernels out;
  if (info_.shared_basis) {
    const io::SharedKernelArchive slice =
        io::load_shared_archive_slice(path_, q_begin, q_end, info_);
    out.bytes = slice.shared_bytes();
    out.kernels = io::make_kernels(slice);
  } else {
    const io::KernelArchive slice =
        io::load_archive_slice(path_, q_begin, q_end, info_);
    out.bytes = slice.compressed_bytes();
    out.kernels = io::make_kernels(slice, kernel_);
  }
  return out;
}

ShardStreamer::ShardStreamer(std::shared_ptr<ShardSource> source,
                             StreamPlan plan, StreamConfig cfg)
    : source_(std::move(source)),
      plan_(std::move(plan)),
      cfg_(cfg),
      budget_(cfg.budget_bytes) {
  TLRWSE_REQUIRE(source_ != nullptr, "null shard source");
  TLRWSE_REQUIRE(plan_.num_shards() >= 1, "empty stream plan");
  const double window = plan_.window_bytes();
  if (budget_ < window) {
    if (cfg_.grow_to_window) {
      budget_ = window;
    } else {
      throw StreamError(
          StreamError::Code::kBudgetTooSmall,
          "tlrwse::oocache: budget of " + std::to_string(budget_) +
              " bytes cannot hold one double-buffer window of " +
              std::to_string(window) + " bytes");
    }
  }
  slots_.resize(static_cast<std::size_t>(plan_.num_shards()));
  if (cfg_.prefetch) {
    prefetcher_ = std::thread([this] { prefetch_loop(); });
  }
}

ShardStreamer::~ShardStreamer() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  ready_cv_.notify_all();
  work_cv_.notify_all();
  if (prefetcher_.joinable()) prefetcher_.join();
}

void ShardStreamer::begin_sweep() {
  sweep_mu_.lock();
  std::lock_guard<std::mutex> lk(mu_);
  // Realign after an aborted sweep: the next consumer restarts at shard 0.
  const auto S = static_cast<std::uint64_t>(plan_.num_shards());
  if (cursor_ % S != 0) cursor_ += S - cursor_ % S;
  work_cv_.notify_all();
}

void ShardStreamer::end_sweep() noexcept {
  {
    std::lock_guard<std::mutex> lk(mu_);
    // An aborted sweep (deadline, stream failure) may leave its shard
    // pinned and the cursor mid-sweep; clean both so the prefetcher and
    // the next sweep see a consistent plan position.
    for (Slot& s : slots_) s.pinned = false;
    const auto S = static_cast<std::uint64_t>(plan_.num_shards());
    if (cursor_ % S != 0) cursor_ += S - cursor_ % S;
    work_cv_.notify_all();
  }
  sweep_mu_.unlock();
}

std::span<mdc::FrequencyMvm* const> ShardStreamer::acquire_shard(index_t s) {
  StreamMetrics& met = StreamMetrics::instance();
  std::unique_lock<std::mutex> lk(mu_);
  TLRWSE_ENSURE(s == plan_.shard_at_step(cursor_),
                "acquire out of plan order: shard ", s, " at step ", cursor_);
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  if (slot.state == ShardState::kReady) {
    ++stats_.hits;
    met.hits.add();
  } else {
    ++stats_.misses;
    met.misses.add();
    if (!cfg_.prefetch) {
      load_inline(s, lk);
    } else {
      // The shard-ready wait: the prefetcher is (or will be) loading it.
      // Poll the cancel hook so a deadline interrupts a disk stall.
      WallTimer stall;
      {
        TLRWSE_TRACE_SPAN("oocache.stall", "oocache");
        const mdc::CancelScope::Hook* const cancel =
            mdc::CancelScope::current();
        work_cv_.notify_all();
        while (slot.state != ShardState::kReady && !failed_ && !stop_) {
          ready_cv_.wait_for(lk, std::chrono::milliseconds(10));
          if (cancel != nullptr && (*cancel)()) {
            const double waited = stall.seconds();
            stats_.stall_s += waited;
            met.stall_s.record(waited);
            throw mdc::CancelledError();
          }
        }
      }
      const double waited = stall.seconds();
      stats_.stall_s += waited;
      met.stall_s.record(waited);
    }
    if (failed_) throw StreamError(fail_code_, fail_what_);
    if (stop_) {
      throw StreamError(StreamError::Code::kShutdown,
                        "tlrwse::oocache: streamer shut down mid-sweep");
    }
  }
  slot.pinned = true;
  slot.last_use = ++use_tick_;
  return std::span<mdc::FrequencyMvm* const>(slot.raw);
}

void ShardStreamer::release_shard(index_t s) noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  slots_[static_cast<std::size_t>(s)].pinned = false;
  ++cursor_;
  work_cv_.notify_all();
}

StreamStats ShardStreamer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

bool ShardStreamer::make_room(double need, std::uint64_t target_step) {
  StreamMetrics& met = StreamMetrics::instance();
  while (resident_bytes_ + need > budget_) {
    // Both policies refuse to evict a shard the streamer's own sweep needs
    // before the shard being loaded (the streamer enforces that order at
    // acquire time, so this much of the future is known even when the
    // cross-sweep pattern is not). Without the guard, LRU would evict the
    // freshly prefetched, never-yet-used (last_use == 0) upcoming shards
    // first — a livelock where the prefetcher churns the window it is
    // trying to fill while the consumer starves.
    index_t victim = -1;
    if (cfg_.cyclic_plan) {
      // Belady: drop the resident shard used farthest in the future —
      // exact, because cyclic sweeps make next_use the true future.
      std::uint64_t farthest = 0;
      for (index_t v = 0; v < plan_.num_shards(); ++v) {
        const Slot& sl = slots_[static_cast<std::size_t>(v)];
        if (sl.state != ShardState::kReady || sl.pinned) continue;
        const std::uint64_t use = plan_.next_use(v, cursor_);
        if (use <= target_step) continue;
        if (victim < 0 || use > farthest) {
          victim = v;
          farthest = use;
        }
      }
    } else {
      // Cross-sweep order unknown: least-recently-used fallback among the
      // shards this sweep is done with (or not due before the target).
      std::uint64_t oldest = 0;
      for (index_t v = 0; v < plan_.num_shards(); ++v) {
        const Slot& sl = slots_[static_cast<std::size_t>(v)];
        if (sl.state != ShardState::kReady || sl.pinned) continue;
        if (plan_.next_use(v, cursor_) <= target_step) continue;
        if (victim < 0 || sl.last_use < oldest) {
          victim = v;
          oldest = sl.last_use;
        }
      }
    }
    if (victim < 0) return false;
    Slot& sl = slots_[static_cast<std::size_t>(victim)];
    resident_bytes_ -= sl.bytes;
    sl.kernels.clear();
    sl.kernels.shrink_to_fit();
    sl.raw.clear();
    sl.raw.shrink_to_fit();
    sl.bytes = 0.0;
    sl.state = ShardState::kAbsent;
    ++stats_.evictions;
    met.evictions.add();
    met.bytes_resident.set(static_cast<std::int64_t>(resident_bytes_));
  }
  return true;
}

void ShardStreamer::install_loaded(index_t s, ShardKernels&& loaded) {
  StreamMetrics& met = StreamMetrics::instance();
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  slot.kernels = std::move(loaded.kernels);
  slot.raw.clear();
  slot.raw.reserve(slot.kernels.size());
  for (const auto& k : slot.kernels) slot.raw.push_back(k.get());
  slot.bytes = loaded.bytes;
  slot.state = ShardState::kReady;
  resident_bytes_ += slot.bytes;
  stats_.peak_resident_bytes =
      std::max(stats_.peak_resident_bytes, resident_bytes_);
  ++stats_.loads;
  stats_.bytes_streamed += slot.bytes;
  met.loads.add();
  met.bytes_streamed.add(static_cast<std::int64_t>(slot.bytes));
  met.bytes_resident.set(static_cast<std::int64_t>(resident_bytes_));
  ready_cv_.notify_all();
}

void ShardStreamer::fail_stream(StreamError::Code code,
                                const std::string& what) {
  if (!failed_) {
    failed_ = true;
    fail_code_ = code;
    fail_what_ = what;
  }
  ready_cv_.notify_all();
  work_cv_.notify_all();
}

void ShardStreamer::load_inline(index_t s, std::unique_lock<std::mutex>& lk) {
  if (failed_ || stop_) return;
  Slot& slot = slots_[static_cast<std::size_t>(s)];
  const StreamShard& sh = plan_.shard(s);
  if (!make_room(sh.bytes, cursor_)) {
    // Unreachable when budget >= window (nothing is pinned at acquire
    // time), but a typed error beats a wedged sweep if it ever trips.
    fail_stream(StreamError::Code::kBudgetTooSmall,
                "tlrwse::oocache: no evictable shard for a synchronous load");
    return;
  }
  slot.state = ShardState::kLoading;
  lk.unlock();
  ShardKernels loaded;
  bool ok = true;
  std::string err;
  try {
    TLRWSE_TRACE_SPAN("oocache.load", "oocache");
    loaded = source_->load(sh.q_begin, sh.q_end);
    validate_shard(loaded, sh.q_begin, sh.q_end, rows(), cols());
  } catch (const std::exception& e) {
    ok = false;
    err = e.what();
  }
  lk.lock();
  if (!ok) {
    slot.state = ShardState::kAbsent;
    fail_stream(StreamError::Code::kIo,
                "tlrwse::oocache: shard load failed: " + err);
    return;
  }
  install_loaded(s, std::move(loaded));
}

void ShardStreamer::prefetch_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  const auto S = static_cast<std::uint64_t>(plan_.num_shards());
  while (!stop_ && !failed_) {
    // Next absent shard within one sweep of the consumer's position; the
    // nearest one first so the consumer's own stall resolves soonest.
    index_t target = -1;
    std::uint64_t target_step = 0;
    for (std::uint64_t t = cursor_; t < cursor_ + S; ++t) {
      const index_t sh = plan_.shard_at_step(t);
      if (slots_[static_cast<std::size_t>(sh)].state ==
          ShardState::kAbsent) {
        target = sh;
        target_step = t;
        break;
      }
    }
    if (target < 0) {
      work_cv_.wait(lk);
      continue;
    }
    const StreamShard& sh = plan_.shard(target);
    if (!make_room(sh.bytes, target_step)) {
      // Everything evictable is needed sooner than the target; room will
      // appear when the consumer releases its pinned shard.
      work_cv_.wait(lk);
      continue;
    }
    Slot& slot = slots_[static_cast<std::size_t>(target)];
    slot.state = ShardState::kLoading;
    lk.unlock();
    ShardKernels loaded;
    bool ok = true;
    std::string err;
    try {
      TLRWSE_TRACE_SPAN("oocache.load", "oocache");
      loaded = source_->load(sh.q_begin, sh.q_end);
      validate_shard(loaded, sh.q_begin, sh.q_end, rows(), cols());
    } catch (const std::exception& e) {
      ok = false;
      err = e.what();
    }
    lk.lock();
    if (stop_) return;
    if (!ok) {
      slot.state = ShardState::kAbsent;
      fail_stream(StreamError::Code::kIo,
                  "tlrwse::oocache: shard load failed: " + err);
      return;
    }
    install_loaded(target, std::move(loaded));
  }
}

}  // namespace tlrwse::oocache
