#include "tlrwse/oocache/stream_plan.hpp"

#include <algorithm>

#include "tlrwse/common/error.hpp"

namespace tlrwse::oocache {

StreamPlan::StreamPlan(std::vector<StreamShard> shards, StreamPlanConfig cfg)
    : shards_(std::move(shards)), budget_(cfg.budget_bytes),
      cyclic_(cfg.cyclic) {
  TLRWSE_REQUIRE(!shards_.empty(), "stream plan needs at least one shard");
  index_t expect_q = 0;
  index_t expect_g = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const StreamShard& sh = shards_[s];
    TLRWSE_REQUIRE(sh.q_begin == expect_q && sh.q_end > sh.q_begin &&
                       sh.g_begin == expect_g && sh.g_end > sh.g_begin,
                   "stream plan shards must partition frequencies and "
                   "granules in ascending order (shard ",
                   s, ")");
    TLRWSE_REQUIRE(sh.bytes >= 0.0, "negative shard bytes");
    expect_q = sh.q_end;
    expect_g = sh.g_end;
    total_ += sh.bytes;
  }
  // The double-buffer window: while shard t computes, shard t+1 (cyclic:
  // wrapping into the next sweep) must also be resident.
  if (shards_.size() == 1) {
    window_ = shards_.front().bytes;
  } else {
    const std::size_t pairs = cyclic_ ? shards_.size() : shards_.size() - 1;
    for (std::size_t s = 0; s < pairs; ++s) {
      window_ = std::max(window_, shards_[s].bytes +
                                      shards_[(s + 1) % shards_.size()].bytes);
    }
  }
}

StreamPlan compile_stream_plan(std::span<const double> bytes,
                               std::span<const index_t> freqs,
                               const StreamPlanConfig& cfg) {
  TLRWSE_REQUIRE(bytes.size() == freqs.size(),
                 "granule bytes/freqs size mismatch");
  TLRWSE_REQUIRE(!bytes.empty(), "cannot plan a stream over zero granules");
  TLRWSE_REQUIRE(cfg.budget_bytes > 0.0, "stream budget must be positive");
  double max_granule = 0.0;
  for (const double b : bytes) {
    TLRWSE_REQUIRE(b >= 0.0, "negative granule bytes");
    max_granule = std::max(max_granule, b);
  }
  // Half the budget per shard leaves the other half for the prefetching
  // neighbour; an oversized granule becomes its own shard and the budget
  // check at stream construction decides whether it is servable at all.
  const double target = std::max(cfg.budget_bytes / 2.0, max_granule);
  std::vector<StreamShard> shards;
  StreamShard cur;
  for (std::size_t g = 0; g < bytes.size(); ++g) {
    TLRWSE_REQUIRE(freqs[g] > 0, "granule with no frequencies");
    if (cur.g_end > cur.g_begin && cur.bytes + bytes[g] > target) {
      shards.push_back(cur);
      cur = StreamShard{};
      cur.q_begin = shards.back().q_end;
      cur.g_begin = shards.back().g_end;
      cur.q_end = cur.q_begin;
      cur.g_end = cur.g_begin;
    }
    cur.q_end += freqs[g];
    cur.g_end = static_cast<index_t>(g) + 1;
    cur.bytes += bytes[g];
  }
  shards.push_back(cur);
  return StreamPlan(std::move(shards), cfg);
}

StreamPlan compile_stream_plan(const io::ArchiveInfo& info,
                               const StreamPlanConfig& cfg) {
  TLRWSE_REQUIRE(info.has_extents(),
                 "stream plan needs an extents peek (peek_archive_extents)");
  std::vector<double> bytes;
  std::vector<index_t> freqs;
  bytes.reserve(info.extents.size());
  freqs.reserve(info.extents.size());
  for (const io::ShardExtent& e : info.extents) {
    bytes.push_back(e.payload_bytes);
    freqs.push_back(e.num_freqs);
  }
  return compile_stream_plan(bytes, freqs, cfg);
}

}  // namespace tlrwse::oocache
