// ShardStreamer: the double-buffered prefetcher behind a streamed
// MdcOperator.
//
// A background thread walks the StreamPlan ahead of the consumer, loading
// upcoming shards disk->RAM while the consumer's OpenMP team computes the
// current one, so the per-frequency FFT->MVM->IFFT work overlaps storage
// I/O. Eviction is plan-driven: among the resident, unpinned shards, drop
// the one whose next use (in the known cyclic order) is farthest away —
// Belady's rule, exact because LSQR's sweep order is known. When a caller
// declares the order unknown, eviction falls back to LRU. All failure
// modes are typed and prompt: a truncated or deleted archive surfaces as
// StreamError(kIo) on the next acquire (from either the prefetch thread or
// a synchronous load), a budget that cannot hold one double-buffer window
// is rejected at construction as kBudgetTooSmall, and a deadline that
// fires during a stall throws mdc::CancelledError — never a hang, never
// partial data.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tlrwse/io/archive.hpp"
#include "tlrwse/mdc/kernel_stream.hpp"
#include "tlrwse/oocache/stream_plan.hpp"

namespace tlrwse::oocache {

/// Typed failure of the streaming layer, mirroring cluster::TransportError:
/// callers switch on code(), the what() string carries the io detail.
class StreamError : public std::runtime_error {
 public:
  enum class Code {
    kBudgetTooSmall,  // budget cannot hold one double-buffer window
    kIo,              // a shard load failed (truncated, deleted, corrupt)
    kShutdown,        // streamer torn down while a sweep was in flight
  };
  StreamError(Code code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] Code code() const noexcept { return code_; }

 private:
  Code code_;
};

/// One loaded shard: per-frequency kernels plus their true resident bytes
/// (which may exceed the plan's payload estimate, e.g. compiled arenas).
struct ShardKernels {
  std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
  double bytes = 0.0;
};

/// Where shard payloads come from. load() runs on the prefetch thread (or
/// the consumer thread when prefetch is off) and may throw anything; the
/// streamer wraps failures into StreamError(kIo).
class ShardSource {
 public:
  virtual ~ShardSource() = default;
  [[nodiscard]] virtual index_t rows() const = 0;
  [[nodiscard]] virtual index_t cols() const = 0;
  [[nodiscard]] virtual ShardKernels load(index_t q_begin, index_t q_end) = 0;
};

/// Archive-backed source: slices a TLRA/TLRS container with the extent
/// table of one peek, so per-shard loads seek straight to their granules
/// instead of rescanning headers.
class ArchiveShardSource final : public ShardSource {
 public:
  /// `info` must be an extents peek of `path` (has_extents()).
  ArchiveShardSource(std::string path, io::ArchiveInfo info,
                     mdc::TlrKernel kernel = mdc::TlrKernel::kFused);
  [[nodiscard]] index_t rows() const override { return info_.rows; }
  [[nodiscard]] index_t cols() const override { return info_.cols; }
  [[nodiscard]] ShardKernels load(index_t q_begin, index_t q_end) override;

 private:
  std::string path_;
  io::ArchiveInfo info_;
  mdc::TlrKernel kernel_;
};

struct StreamConfig {
  double budget_bytes = 0.0;
  bool prefetch = true;     // background thread; false = load in acquire
  bool cyclic_plan = true;  // plan-driven (Belady) eviction; false = LRU
  /// Lift an undersized budget to the plan's double-buffer window instead
  /// of throwing kBudgetTooSmall (CLI convenience; serve admission keeps
  /// the strict default).
  bool grow_to_window = false;
};

struct StreamStats {
  std::uint64_t hits = 0;       // acquires that found the shard resident
  std::uint64_t misses = 0;     // acquires that had to wait for a load
  std::uint64_t loads = 0;
  std::uint64_t evictions = 0;
  double bytes_streamed = 0.0;  // payload bytes read disk->RAM
  double stall_s = 0.0;         // consumer time blocked in acquire
  double peak_resident_bytes = 0.0;
};

class ShardStreamer final : public mdc::KernelStream {
 public:
  /// Throws StreamError(kBudgetTooSmall) unless cfg.budget_bytes (or the
  /// grown budget) holds the plan's double-buffer window.
  ShardStreamer(std::shared_ptr<ShardSource> source, StreamPlan plan,
                StreamConfig cfg);
  ~ShardStreamer() override;

  ShardStreamer(const ShardStreamer&) = delete;
  ShardStreamer& operator=(const ShardStreamer&) = delete;

  [[nodiscard]] index_t rows() const override { return source_->rows(); }
  [[nodiscard]] index_t cols() const override { return source_->cols(); }
  [[nodiscard]] index_t num_freqs() const override {
    return plan_.num_freqs();
  }
  [[nodiscard]] index_t num_shards() const override {
    return plan_.num_shards();
  }
  [[nodiscard]] std::pair<index_t, index_t> shard_range(
      index_t s) const override {
    const StreamShard& sh = plan_.shard(s);
    return {sh.q_begin, sh.q_end};
  }
  void begin_sweep() override;
  void end_sweep() noexcept override;
  [[nodiscard]] std::span<mdc::FrequencyMvm* const> acquire_shard(
      index_t s) override;
  void release_shard(index_t s) noexcept override;

  [[nodiscard]] const StreamPlan& plan() const noexcept { return plan_; }
  /// The effective budget (equal to the config's unless grow_to_window
  /// lifted it) — what a cache should charge for this stream's residency.
  [[nodiscard]] double budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] StreamStats stats() const;

 private:
  enum class ShardState : std::uint8_t { kAbsent, kLoading, kReady };
  struct Slot {
    ShardState state = ShardState::kAbsent;
    std::vector<std::unique_ptr<mdc::FrequencyMvm>> kernels;
    std::vector<mdc::FrequencyMvm*> raw;
    double bytes = 0.0;
    std::uint64_t last_use = 0;  // LRU clock, unknown-order fallback
    bool pinned = false;         // held by the consumer between acq/rel
  };

  void prefetch_loop();
  /// Evicts until `need` more bytes fit the budget without touching pinned
  /// shards or (cyclic plans) shards needed before `target_step`. Returns
  /// false when nothing more can be evicted yet. Caller holds mu_.
  bool make_room(double need, std::uint64_t target_step);
  void install_loaded(index_t s, ShardKernels&& loaded);
  void fail_stream(StreamError::Code code, const std::string& what);
  /// Synchronous load of shard s on the calling thread (prefetch off).
  void load_inline(index_t s, std::unique_lock<std::mutex>& lk);

  std::shared_ptr<ShardSource> source_;
  StreamPlan plan_;
  StreamConfig cfg_;
  double budget_ = 0.0;

  std::mutex sweep_mu_;  // serialises overlapping sweeps of this stream

  mutable std::mutex mu_;
  std::condition_variable ready_cv_;  // consumer waits: shard ready/failed
  std::condition_variable work_cv_;   // prefetcher waits: work or room
  std::vector<Slot> slots_;
  std::uint64_t cursor_ = 0;    // sweep step the consumer acquires next
  std::uint64_t use_tick_ = 0;  // LRU clock source
  double resident_bytes_ = 0.0;
  bool stop_ = false;
  bool failed_ = false;
  StreamError::Code fail_code_ = StreamError::Code::kIo;
  std::string fail_what_;
  StreamStats stats_;

  std::thread prefetcher_;  // last member: started last, joined in dtor
};

}  // namespace tlrwse::oocache
