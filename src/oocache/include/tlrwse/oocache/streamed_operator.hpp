// One-call assembly of an out-of-core MDC operator: peek the archive's
// extent table (a single directory read shared with every later slice
// load), compile the stream plan against the byte budget, and wire a
// ShardStreamer into MdcOperator's kernel-stream seam. The resulting
// operator is bitwise identical to io::make_operator over the same
// archive — streaming changes when kernels are resident, never what they
// compute.
#pragma once

#include <memory>
#include <string>

#include "tlrwse/io/archive.hpp"
#include "tlrwse/oocache/shard_streamer.hpp"

namespace tlrwse::oocache {

/// A streamed operator plus the handles callers need to observe it: the
/// streamer (stats, plan, effective budget) and the archive metadata.
struct StreamedOperator {
  std::unique_ptr<mdc::MdcOperator> op;
  std::shared_ptr<ShardStreamer> streamer;
  io::ArchiveInfo info;
};

/// Builds a streamed operator over a TLRA/TLRS archive. Throws
/// StreamError(kBudgetTooSmall) when cfg.budget_bytes cannot hold one
/// double-buffer window (unless cfg.grow_to_window lifts it), and the
/// usual io errors for an unreadable archive.
[[nodiscard]] StreamedOperator make_streamed_operator(
    const std::string& path, const StreamConfig& cfg,
    mdc::TlrKernel kernel = mdc::TlrKernel::kFused);

}  // namespace tlrwse::oocache
