// StreamPlan: the compiled disk->RAM schedule of an out-of-core solve.
//
// LSQR's access pattern is known before the first iteration: every apply —
// forward or adjoint — sweeps the frequency shards in ascending order, and
// the solve alternates applies until convergence. That turns cache policy
// from a guessing game into a plan, the same move the paper makes for the
// 48 kB PE scratchpads: group the archive's granules (frequency kernels
// for "TLRA", whole bands for "TLRS" — a band's kernels share one compiled
// basis arena, so splitting it would duplicate basis residency) into
// shards of about half the byte budget, so one half computes while the
// other prefetches, and evict the resident shard whose next use is
// farthest in the cyclic order (Belady's rule, exact here because the
// order is known). LRU survives only as the fallback for callers that
// declare the access order unknown.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tlrwse/common/types.hpp"
#include "tlrwse/io/archive.hpp"

namespace tlrwse::oocache {

/// One planned shard: a run of consecutive frequencies loaded and evicted
/// as a unit.
struct StreamShard {
  index_t q_begin = 0;  // frequency range [q_begin, q_end)
  index_t q_end = 0;
  index_t g_begin = 0;  // granule (extent) range composing the shard
  index_t g_end = 0;
  double bytes = 0.0;   // payload bytes, the residency currency
};

struct StreamPlanConfig {
  double budget_bytes = 0.0;  // RAM allowance for resident shards
  /// Ascending cyclic sweeps (the LSQR pattern). False = access order
  /// unknown: the plan still shards ascending, but consumers must fall
  /// back to LRU eviction instead of next-use distances.
  bool cyclic = true;
};

class StreamPlan {
 public:
  StreamPlan() = default;
  StreamPlan(std::vector<StreamShard> shards, StreamPlanConfig cfg);

  [[nodiscard]] const std::vector<StreamShard>& shards() const noexcept {
    return shards_;
  }
  [[nodiscard]] index_t num_shards() const noexcept {
    return static_cast<index_t>(shards_.size());
  }
  [[nodiscard]] const StreamShard& shard(index_t s) const {
    return shards_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] index_t num_freqs() const noexcept {
    return shards_.empty() ? 0 : shards_.back().q_end;
  }
  [[nodiscard]] double budget_bytes() const noexcept { return budget_; }
  [[nodiscard]] double total_bytes() const noexcept { return total_; }
  [[nodiscard]] bool cyclic() const noexcept { return cyclic_; }
  /// Max bytes of two consecutive shards in the sweep (wrapping when
  /// cyclic): the smallest budget that can double-buffer this plan.
  [[nodiscard]] double window_bytes() const noexcept { return window_; }

  /// Shard consumed at sweep step `step`; steps count monotonically across
  /// sweeps, so step % num_shards() walks each ascending sweep.
  [[nodiscard]] index_t shard_at_step(std::uint64_t step) const {
    return static_cast<index_t>(step %
                                static_cast<std::uint64_t>(num_shards()));
  }
  /// First step >= from_step that consumes `shard` — the next-use distance
  /// behind plan-driven (Belady) eviction. Only meaningful when cyclic().
  [[nodiscard]] std::uint64_t next_use(index_t shard,
                                       std::uint64_t from_step) const {
    const auto S = static_cast<std::uint64_t>(num_shards());
    const std::uint64_t pos = from_step % S;
    const auto sh = static_cast<std::uint64_t>(shard);
    return from_step + (sh + S - pos) % S;
  }

 private:
  std::vector<StreamShard> shards_;
  double budget_ = 0.0;
  double total_ = 0.0;
  double window_ = 0.0;
  bool cyclic_ = true;
};

/// Compiles a plan from the granule extents of one archive peek
/// (peek_archive_extents). Shards target budget_bytes / 2 so a double
/// buffer fits the budget; a granule larger than that becomes its own
/// shard (the budget check happens where the stream is built, not here).
[[nodiscard]] StreamPlan compile_stream_plan(const io::ArchiveInfo& info,
                                             const StreamPlanConfig& cfg);

/// Granule-list form for injected (non-archive) sources: granule g covers
/// freqs[g] consecutive frequencies and weighs bytes[g] payload bytes.
[[nodiscard]] StreamPlan compile_stream_plan(std::span<const double> bytes,
                                             std::span<const index_t> freqs,
                                             const StreamPlanConfig& cfg);

}  // namespace tlrwse::oocache
