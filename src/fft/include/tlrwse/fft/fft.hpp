// Complex FFT with radix-2 Cooley–Tukey for power-of-two sizes and the
// Bluestein chirp-z algorithm for arbitrary sizes, plus real-signal helpers
// and batched transforms along the time axis of seismic gathers.
//
// These implement the F / F^H operators of the MDC equation
// y = F^H K F x (Eqn. 2 of the paper): forward FFT moves time-domain
// wavefields into the frequency domain where the per-frequency kernel
// matrices act; the inverse returns to time.
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "tlrwse/common/types.hpp"

namespace tlrwse::fft {

/// Reusable FFT plan for a fixed transform length `n` (any n >= 1).
/// Precomputes twiddle factors (and, for non-power-of-two n, the Bluestein
/// chirp sequence and its transformed convolution kernel).
class FftPlan {
 public:
  explicit FftPlan(index_t n);

  [[nodiscard]] index_t size() const noexcept { return n_; }

  /// In-place forward DFT: X[k] = sum_t x[t] exp(-2*pi*i*k*t/n).
  void forward(std::span<cf64> x) const;
  /// In-place inverse DFT with 1/n normalisation.
  void inverse(std::span<cf64> x) const;

  /// Single-precision convenience wrappers (convert through double for
  /// accuracy; transform lengths here are a few hundred samples).
  void forward(std::span<cf32> x) const;
  void inverse(std::span<cf32> x) const;

 private:
  void pow2_transform(std::span<cf64> x, bool inv) const;
  void bluestein(std::span<cf64> x, bool inv) const;

  index_t n_ = 0;
  index_t pow2_n_ = 0;            // n_ if power of two, else conv length
  bool is_pow2_ = false;
  std::vector<cf64> twiddle_;     // forward twiddles for the pow2 kernel
  std::vector<cf64> chirp_;       // Bluestein chirp a_t = exp(-i*pi*t^2/n)
  std::vector<cf64> chirp_fft_;   // FFT of the zero-padded conjugate chirp
};

/// Frequency bin values (Hz) for a real signal of length nt sampled at dt:
/// f_k = k / (nt * dt) for k in [0, nt/2].
[[nodiscard]] std::vector<double> rfft_frequencies(index_t nt, double dt);

/// Forward real-to-complex transform: returns the nt/2 + 1 non-negative
/// frequency coefficients of the real signal x.
[[nodiscard]] std::vector<cf64> rfft(std::span<const double> x);

/// Inverse of rfft: reconstructs a real signal of length nt from its
/// non-negative-frequency coefficients (Hermitian symmetry is implied).
[[nodiscard]] std::vector<double> irfft(std::span<const cf64> spec, index_t nt);

/// Reusable per-thread scratch of the batched transforms. Sized on first
/// use; later calls with the same plan are allocation-free (for
/// power-of-two lengths, where the in-place kernel needs no extra buffer).
struct BatchWorkspace {
  std::vector<std::vector<cf64>> trace_buf;  // one nt-length buffer per thread
};

/// Batched forward rfft along the first axis of a (nt x ntraces) page stored
/// column-major: each trace (column) is transformed independently. Output is
/// (nf x ntraces) with nf = nt/2 + 1. OpenMP-parallel across traces.
void rfft_batch(std::span<const float> time_page, index_t nt, index_t ntraces,
                std::span<cf32> freq_page);

/// Batched inverse of rfft_batch.
void irfft_batch(std::span<const cf32> freq_page, index_t nt, index_t ntraces,
                 std::span<float> time_page);

/// Plan-carrying variants for callers that apply the same transform every
/// iteration (the MDC operator inside LSQR): the plan's twiddle tables and
/// the workspace buffers are built once and reused.
void rfft_batch(const FftPlan& plan, std::span<const float> time_page,
                index_t ntraces, std::span<cf32> freq_page,
                BatchWorkspace& ws);
void irfft_batch(const FftPlan& plan, std::span<const cf32> freq_page,
                 index_t ntraces, std::span<float> time_page,
                 BatchWorkspace& ws);

}  // namespace tlrwse::fft
